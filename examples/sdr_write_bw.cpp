// sdr_write_bw: the paper's §5.4.1 benchmarking loop — "resembles the
// standard client-server ib_write_bw test from the RDMA perftest suite".
//
// For each message size the server (receiver) emulates a reliability layer
// by completing the receive when the bitmap fills and immediately
// reposting; the client keeps a window of Writes in flight and times the
// run in virtual time. Output mimics perftest's table: size, iterations,
// average bandwidth, message rate.
//
// Run: ./sdr_write_bw [iterations] [inflight]   (defaults 64, 8)
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT

namespace {

struct RunResult {
  double seconds{0.0};
  std::uint64_t messages{0};
};

RunResult run_size(std::size_t msg_bytes, int iterations, int inflight) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 0.1;  // rack-scale, like the paper's Israel-1 testbed
  cfg.seed = 1;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);

  core::Context client(*nics.a, core::DevAttr{});
  core::Context server(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB >= msg_bytes ? std::max<std::size_t>(4096, msg_bytes)
                                          : 64 * KiB;
  if (attr.chunk_size % attr.mtu != 0) attr.chunk_size = attr.mtu;
  attr.max_msg_size = std::max<std::size_t>(msg_bytes, attr.chunk_size);
  if (attr.max_msg_size % attr.chunk_size != 0) {
    attr.max_msg_size =
        (attr.max_msg_size / attr.chunk_size + 1) * attr.chunk_size;
  }
  attr.max_inflight = static_cast<std::size_t>(inflight) * 2;
  core::Qp* cq = client.create_qp(attr);
  core::Qp* sq = server.create_qp(attr);
  cq->connect(sq->info());
  sq->connect(cq->info());

  std::vector<std::uint8_t> src(msg_bytes, 0xA5);
  std::vector<std::uint8_t> dst(
      static_cast<std::size_t>(inflight) * attr.max_msg_size, 0);
  const auto* mr = server.mr_reg(dst.data(), dst.size());

  RunResult result;
  int posted = 0;
  int completed = 0;

  // Server: complete on bitmap full, repost immediately (the "reliability
  // layer busy polling the completion bitmap" of §5.4.1).
  std::function<void(int)> post_recv = [&](int window_slot) {
    if (posted >= iterations) return;
    ++posted;
    core::RecvHandle* rh = nullptr;
    sq->recv_post(dst.data() + window_slot * attr.max_msg_size, msg_bytes,
                  mr, &rh);
  };
  sq->set_recv_event_handler([&](const core::RecvEvent& ev) {
    if (ev.type != core::RecvEvent::Type::kMessageCompleted) return;
    ++completed;
    const int window_slot =
        static_cast<int>(ev.handle->slot() % static_cast<std::size_t>(inflight));
    sq->recv_complete(ev.handle);
    post_recv(window_slot);
  });

  // Client: keep `inflight` one-shot sends in the pipe, reaping completed
  // handles (send_poll) to recycle their message slots.
  std::vector<core::SendHandle*> handles;
  int sent = 0;
  std::function<void()> pump = [&] {
    for (auto it = handles.begin(); it != handles.end();) {
      if (cq->send_poll(*it).is_ok()) {
        it = handles.erase(it);
      } else {
        ++it;
      }
    }
    while (sent < iterations &&
           handles.size() < static_cast<std::size_t>(inflight)) {
      core::SendHandle* sh = nullptr;
      if (!cq->send_post(src.data(), msg_bytes, 0, false, &sh)) break;
      handles.push_back(sh);
      ++sent;
    }
    if (completed < iterations) {
      sim.schedule(SimTime::from_micros(1), pump);
    }
  };

  for (int w = 0; w < inflight && posted < iterations; ++w) post_recv(w);
  pump();
  sim.run();

  result.seconds = sim.now().seconds();
  result.messages = static_cast<std::uint64_t>(completed);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::stoi(argv[1]) : 64;
  const int inflight = argc > 2 ? std::stoi(argv[2]) : 8;

  std::printf("---------------------------------------------------------\n");
  std::printf(" SDR Write bandwidth test (simulated 400 Gbit/s fabric)\n");
  std::printf(" iterations per size: %d, in-flight Writes: %d\n", iterations,
              inflight);
  std::printf("---------------------------------------------------------\n");
  TextTable t({"#bytes", "#iterations", "BW average", "MsgRate [Mpps]",
               "line rate"});
  for (std::size_t bytes = 4 * KiB; bytes <= 16 * MiB; bytes *= 4) {
    const RunResult r = run_size(bytes, iterations, inflight);
    if (r.messages == 0 || r.seconds <= 0.0) {
      std::fprintf(stderr, "run failed at %zu bytes\n", bytes);
      return 1;
    }
    const double bw =
        static_cast<double>(r.messages) * static_cast<double>(bytes) * 8.0 /
        r.seconds;
    const double mps = static_cast<double>(r.messages) / r.seconds / 1e6;
    t.add_row({format_bytes(bytes), std::to_string(r.messages),
               format_rate(bw), TextTable::num(mps, 4),
               TextTable::num(bw / (400e9) * 100.0, 3) + "%"});
  }
  t.print();
  std::printf("\n(virtual-time measurement of the full SDR data path: CTS, "
              "single-packet unreliable Writes, per-packet completions, "
              "bitmap coalescing, repost)\n");
  return 0;
}
