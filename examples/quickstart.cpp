// Quickstart: the SDR SDK in ~100 lines.
//
// Two simulated NICs are connected by a lossy 400 Gbit/s long-haul channel.
// The receiver posts a buffer and gets a *partial completion bitmap*; the
// sender streams the message as unreliable single-packet Writes. After the
// first pass the bitmap shows exactly which chunks were dropped, and the
// sender re-injects only those (the Selective Repeat primitive) until the
// message completes — all through the public Table 1 style API.
//
// Run: ./quickstart [drop_rate]     (default 0.02)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT — example code

int main(int argc, char** argv) {
  const double drop_rate = argc > 1 ? std::stod(argv[1]) : 0.02;

  // --- Fabric: two NICs on a 400 Gbit/s, 1000 km lossy channel.
  sim::Simulator sim;
  sim::Channel::Config link;
  link.bandwidth_bps = 400 * Gbps;
  link.distance_km = 1000.0;
  link.seed = 2026;
  verbs::NicPair nics = verbs::make_connected_pair(sim, link, drop_rate, 0.0);

  // --- SDR contexts and queue pairs (Table 1: context_create, qp_create,
  // qp_info_get, qp_connect).
  core::Context ctx_client(*nics.a, core::DevAttr{});
  core::Context ctx_server(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;    // one bitmap bit per 16 packets
  attr.max_msg_size = 16 * MiB;
  core::Qp* client = ctx_client.create_qp(attr);
  core::Qp* server = ctx_server.create_qp(attr);
  client->connect(server->info());
  server->connect(client->info());

  // --- Receiver: register memory, post the receive, get the bitmap.
  const std::size_t msg_bytes = 8 * MiB;
  std::vector<std::uint8_t> recv_buf(msg_bytes, 0);
  const verbs::MemoryRegion* mr =
      ctx_server.mr_reg(recv_buf.data(), recv_buf.size());
  core::RecvHandle* rh = nullptr;
  server->recv_post(recv_buf.data(), msg_bytes, mr, &rh);
  const AtomicBitmap* bitmap = nullptr;
  server->recv_bitmap_get(rh, &bitmap);

  // --- Sender: streaming send of the whole message.
  std::vector<std::uint8_t> send_buf(msg_bytes);
  for (std::size_t i = 0; i < msg_bytes; ++i) {
    send_buf[i] = static_cast<std::uint8_t>(i * 131 + (i >> 12));
  }
  core::SendHandle* sh = nullptr;
  client->send_stream_start(/*user_imm=*/0, /*has_user_imm=*/false, &sh);
  client->send_stream_continue(sh, send_buf.data(), 0, msg_bytes);
  sim.run();

  const std::size_t chunks = rh->chunk_count();
  std::printf("first pass over a %.1f%%-lossy link: %zu of %zu chunks "
              "arrived\n",
              drop_rate * 100.0, bitmap->popcount(), chunks);

  // --- Reliability layer in ten lines: retransmit missing chunks until
  // the bitmap is full (the SR use case of the streaming API).
  int rounds = 0;
  while (!server->recv_done(rh) && rounds < 64) {
    ++rounds;
    std::size_t resent = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      if (bitmap->test(c)) continue;
      const std::size_t off = c * attr.chunk_size;
      const std::size_t len = std::min(attr.chunk_size, msg_bytes - off);
      client->send_stream_continue(sh, send_buf.data() + off, off, len);
      ++resent;
    }
    sim.run();
    std::printf("round %d: retransmitted %zu chunks, bitmap now %zu/%zu\n",
                rounds, resent, bitmap->popcount(), chunks);
  }
  client->send_stream_end(sh);
  sim.run();

  // --- Verify end-to-end payload integrity and report.
  if (!server->recv_done(rh) ||
      std::memcmp(recv_buf.data(), send_buf.data(), msg_bytes) != 0) {
    std::printf("FAILED: message did not complete intact\n");
    return 1;
  }
  server->recv_complete(rh);
  std::printf("message of %s delivered intact after %d retransmission "
              "round(s) at virtual time %s\n",
              format_bytes(msg_bytes).c_str(), rounds,
              format_seconds(sim.now().seconds()).c_str());
  return 0;
}
