// Cross-datacenter bulk transfer with guided reliability choice.
//
// Scenario from the paper's §5.2 case study: two datacenters connected by a
// long-haul channel. The tuner evaluates the completion-time model for the
// deployment, recommends a scheme, and then the example *runs* the transfer
// end-to-end with both Selective Repeat and Erasure Coding over the full
// SDR stack to compare measured (virtual-time) completion.
//
// Run: ./cross_dc_transfer [distance_km] [gbps] [packet_drop] [MiB]
//      defaults: 3750 km, 400 Gbit/s, 1e-4, 64 MiB
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "reliability/reliable_channel.hpp"
#include "reliability/tuner.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT — example code

namespace {

double run_transfer(reliability::ReliableChannel::Kind kind,
                    const reliability::LinkProfile& profile,
                    double packet_drop, std::size_t bytes,
                    std::uint64_t* retransmissions) {
  sim::Simulator sim;
  sim::Channel::Config link;
  link.bandwidth_bps = profile.bandwidth_bps;
  link.distance_km = rtt_to_km(profile.rtt_s);
  link.seed = 4242;
  verbs::NicPair nics = verbs::make_connected_pair(sim, link, packet_drop, 0.0);

  reliability::ReliableChannel::Options options;
  options.kind = kind;
  options.profile = profile;
  options.attr.mtu = profile.mtu;
  options.attr.chunk_size = profile.chunk_bytes;
  options.attr.max_msg_size = 16 * MiB;
  options.attr.max_inflight = 256;
  options.ec.k = 32;
  options.ec.m = 8;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nics.a, *nics.b, options);

  // Chop the transfer into 8 MiB reliable Writes (k*chunk-aligned for EC)
  // and pipeline them: all receives pre-posted, all sends in flight — the
  // SDR message table is sized for exactly this.
  const std::size_t piece = 8 * MiB;
  const std::size_t pieces = (bytes + piece - 1) / piece;
  std::vector<std::uint8_t> src(bytes), dst(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  std::size_t completed = 0;
  for (std::size_t p = 0; p < pieces; ++p) {
    const std::size_t off = p * piece;
    const std::size_t len = std::min(piece, bytes - off);
    channel.recv(dst.data() + off, len, [&completed](const Status& s) {
      if (s.is_ok()) ++completed;
    });
  }
  for (std::size_t p = 0; p < pieces; ++p) {
    const std::size_t off = p * piece;
    const std::size_t len = std::min(piece, bytes - off);
    channel.send(src.data() + off, len, [](const Status&) {});
  }
  sim.run();
  if (completed != pieces || std::memcmp(dst.data(), src.data(), bytes) != 0) {
    std::fprintf(stderr, "transfer failed!\n");
    return -1.0;
  }
  const double completion = sim.now().seconds();
  if (retransmissions != nullptr) {
    *retransmissions = channel.retransmissions();
  }
  return completion;
}

}  // namespace

int main(int argc, char** argv) {
  const double km = argc > 1 ? std::stod(argv[1]) : 3750.0;
  const double gbps = argc > 2 ? std::stod(argv[2]) : 400.0;
  const double packet_drop = argc > 3 ? std::stod(argv[3]) : 1e-4;
  const std::size_t mib = argc > 4 ? std::stoul(argv[4]) : 64;
  const std::size_t bytes = mib * MiB;

  reliability::LinkProfile profile;
  profile.bandwidth_bps = gbps * 1e9;
  profile.rtt_s = rtt_s(km);
  profile.p_drop_packet = packet_drop;
  profile.mtu = 4096;
  profile.chunk_bytes = 64 * KiB;

  std::printf("deployment: %s over %.0f km (RTT %s), packet drop %.1e, "
              "transfer %s\n\n",
              format_rate(profile.bandwidth_bps).c_str(), km,
              format_seconds(profile.rtt_s).c_str(), packet_drop,
              format_bytes(bytes).c_str());

  // --- Model-guided recommendation.
  const auto rec = reliability::recommend(profile, bytes);
  std::printf("tuner recommendation: %s\n  %s\n\n",
              model::scheme_name(rec.best.scheme).c_str(),
              rec.rationale.c_str());

  // --- Execute with SR RTO, SR NACK and EC MDS; compare virtual time.
  TextTable table({"scheme", "completion", "vs ideal", "retransmissions"});
  const double ideal = static_cast<double>(bytes) * 8.0 /
                           profile.bandwidth_bps +
                       profile.rtt_s;
  struct Run {
    const char* name;
    reliability::ReliableChannel::Kind kind;
  };
  const Run runs[] = {
      {"SR RTO", reliability::ReliableChannel::Kind::kSrRto},
      {"SR NACK", reliability::ReliableChannel::Kind::kSrNack},
      {"EC MDS(32,8)", reliability::ReliableChannel::Kind::kEcMds},
      {"auto (guided)", reliability::ReliableChannel::Kind::kAuto},
  };
  for (const Run& run : runs) {
    std::uint64_t retr = 0;
    const double t = run_transfer(run.kind, profile, packet_drop, bytes, &retr);
    if (t < 0) return 1;
    table.add_row({run.name, format_seconds(t),
                   TextTable::num(t / ideal, 3) + "x", std::to_string(retr)});
  }
  table.print();
  std::printf("\n(ideal lossless pipeline: %s)\n",
              format_seconds(ideal).c_str());
  return 0;
}
