// Trace explorer: replay a lossy SR transfer with the packet-lifecycle
// tracer armed and print one message's annotated timeline — the journey of
// a chunk that was dropped on the wire and later retransmitted, from
// `posted` through `dropped`, `rto_fired`/`retransmit`, to `delivered`,
// `cqe`, `bitmap_update` and finally `msg_complete`.
//
// This is the debugging workflow the telemetry layer exists for: wire-level
// events (tx/dropped/delivered) carry only the RDMA immediate, SDR- and
// SR-level events carry (message, chunk); the explorer joins the two via
// the immediates observed in `posted` events for the chunk.
//
// Run: ./trace_explorer [packet_drop] [KiB] [seed]
//      defaults: 0.03, 256 KiB, 5
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <vector>

#include "common/units.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT — example code

namespace {

const char* annotate(telemetry::TraceEventType type) {
  using T = telemetry::TraceEventType;
  switch (type) {
    case T::kPosted: return "SDR posts the chunk to a data QP";
    case T::kCts: return "receiver clear-to-send arrives";
    case T::kTx: return "packet enters the lossy channel";
    case T::kDropped: return "channel drop model eats the packet";
    case T::kQueueDrop: return "channel queue overflows (tail drop)";
    case T::kReordered: return "packet held back for reordering";
    case T::kDuplicated: return "channel duplicates the packet";
    case T::kDelivered: return "packet reaches the remote NIC";
    case T::kCqe: return "receive CQE surfaces at the SDR layer";
    case T::kBitmapUpdate: return "receive bitmap marks the chunk done";
    case T::kAckSent: return "receiver emits a cumulative ACK";
    case T::kNackSent: return "receiver NACKs a gap";
    case T::kRtoFired: return "sender retransmission timeout fires";
    case T::kRetransmit: return "sender retransmits the chunk";
    case T::kEcRepair: return "EC decode repairs the submessage";
    case T::kEcFallback: return "EC falls back to retransmission";
    case T::kMsgComplete: return "message fully received";
  }
  return "";
}

void print_event(const telemetry::TraceEvent& e) {
  char ids[64] = "";
  int n = 0;
  if (e.msg != telemetry::kNoMsg) {
    n += std::snprintf(ids + n, sizeof(ids) - static_cast<std::size_t>(n),
                       " msg=%llu", static_cast<unsigned long long>(e.msg));
  }
  if (e.chunk != telemetry::kNoChunk) {
    n += std::snprintf(ids + n, sizeof(ids) - static_cast<std::size_t>(n),
                       " chunk=%u", e.chunk);
  }
  if (e.imm != telemetry::kNoImm) {
    n += std::snprintf(ids + n, sizeof(ids) - static_cast<std::size_t>(n),
                       " imm=0x%08x", e.imm);
  }
  std::printf("  %12.9f s  %-14s qp=%-3u%-38s %s\n", e.t.seconds(),
              telemetry::to_string(e.type), e.qp, ids, annotate(e.type));
}

}  // namespace

int main(int argc, char** argv) {
  const double p_drop = argc > 1 ? std::atof(argv[1]) : 0.03;
  const std::size_t kib = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;
  const std::size_t bytes = kib * KiB;

  // Run-scoped telemetry: local instances installed for this run only, so
  // an embedding process (or another run in the same process) never sees
  // this run's metrics, and nothing mutates the process-wide default.
  telemetry::Registry registry;
  telemetry::Tracer tracer;
  registry.enable();
  tracer.arm();
  telemetry::ScopedTelemetry scoped(&registry, &tracer);

  sim::Simulator sim;
  sim::Channel::Config link;
  link.bandwidth_bps = 100 * Gbps;
  link.distance_km = 100.0;  // ~1 ms RTT
  link.seed = seed;
  verbs::NicPair nics = verbs::make_connected_pair(sim, link, p_drop, 0.0);

  reliability::ReliableChannel::Options options;
  options.kind = reliability::ReliableChannel::Kind::kSrRto;
  options.profile.bandwidth_bps = link.bandwidth_bps;
  options.profile.rtt_s = 2.0 * propagation_delay_s(link.distance_km);
  options.profile.p_drop_packet = p_drop;
  // chunk == MTU so the wire packet index equals the SR chunk index and a
  // chunk's whole life is a single packet stream — the simplest timeline.
  options.profile.mtu = 1024;
  options.profile.chunk_bytes = 1024;
  options.attr.mtu = 1024;
  options.attr.chunk_size = 1024;
  options.attr.max_msg_size = 4 * MiB;
  options.attr.max_inflight = 8;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nics.a, *nics.b, options);

  std::vector<std::uint8_t> src(bytes), dst(bytes, 0);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  bool done = false;
  channel.recv(dst.data(), bytes, [&](const Status& s) {
    done = s.is_ok();
  });
  channel.send(src.data(), bytes, [](const Status&) {});
  sim.run();

  if (!done || std::memcmp(src.data(), dst.data(), bytes) != 0) {
    std::fprintf(stderr, "transfer failed\n");
    return 1;
  }
  std::printf("Transferred %s over %.0f km at %.0f Gbit/s, p_drop=%g: "
              "%llu retransmissions, completion %.6f s (sim time)\n\n",
              format_bytes(bytes).c_str(), link.distance_km,
              link.bandwidth_bps / 1e9, p_drop,
              static_cast<unsigned long long>(channel.retransmissions()),
              sim.now().seconds());

  // Pick the first chunk the SR sender had to retransmit and rebuild its
  // full cross-layer timeline.
  const auto events = telemetry::tracer().collect();
  std::uint64_t msg = telemetry::kNoMsg;
  std::uint32_t chunk = telemetry::kNoChunk;
  for (const auto& e : events) {
    if (e.type == telemetry::TraceEventType::kRetransmit &&
        e.msg != telemetry::kNoMsg) {
      msg = e.msg;
      chunk = e.chunk;
      break;
    }
  }
  if (msg == telemetry::kNoMsg) {
    std::printf("No chunk was retransmitted (drop dice were kind) — rerun "
                "with a higher drop rate or another seed.\n");
    return 0;
  }

  // Wire-level events only know the RDMA immediate; collect every immediate
  // this chunk was posted with (original + retransmissions), then take the
  // SDR/SR-level events for (msg, chunk) plus the wire events for those
  // immediates. This is exactly what Tracer::chunk_timeline does for a
  // single immediate.
  std::set<std::uint32_t> imms;
  for (const auto& e : events) {
    if (e.type == telemetry::TraceEventType::kPosted && e.msg == msg &&
        e.chunk == chunk && e.imm != telemetry::kNoImm) {
      imms.insert(e.imm);
    }
  }
  std::vector<telemetry::TraceEvent> timeline;
  for (const auto& e : events) {
    const bool sdr_level =
        e.msg == msg &&
        (e.chunk == chunk || e.chunk == telemetry::kNoChunk);
    const bool wire_level =
        e.msg == telemetry::kNoMsg && imms.count(e.imm) > 0;
    if (sdr_level || wire_level) timeline.push_back(e);
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const telemetry::TraceEvent& a,
                      const telemetry::TraceEvent& b) { return a.t < b.t; });

  std::printf("Timeline of msg %llu chunk %u (dropped then "
              "retransmitted):\n",
              static_cast<unsigned long long>(msg), chunk);
  // Coalesce runs of identical events (e.g. the periodic cumulative ACK
  // stuck at this chunk while its retransmission is in flight).
  for (std::size_t i = 0; i < timeline.size();) {
    const auto& e = timeline[i];
    std::size_t run = 1;
    while (i + run < timeline.size() &&
           timeline[i + run].type == e.type && timeline[i + run].qp == e.qp &&
           timeline[i + run].msg == e.msg &&
           timeline[i + run].chunk == e.chunk) {
      ++run;
    }
    print_event(e);
    if (run > 1) {
      std::printf("       ... x%zu more until %.9f s\n", run - 1,
                  timeline[i + run - 1].t.seconds());
    }
    i += run;
  }

  std::printf("\nRegistry snapshot (reliability.sr.*):\n");
  std::vector<telemetry::FlatMetric> metrics;
  telemetry::registry().flatten(metrics);
  for (const auto& m : metrics) {
    if (m.name.rfind("reliability.sr.", 0) == 0) {
      std::printf("  %-44s %.6g\n", m.name.c_str(), m.value);
    }
  }
  return 0;
}
