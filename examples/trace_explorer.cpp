// Trace explorer: replay a lossy SR transfer with the causal span recorder
// armed and print the span tree of the transferred message — every chunk
// that needed recovery is expanded into its wire attempts and the protocol
// decisions between them, with cause links:
//
//   chunk 173
//     attempt#0 ... dropped
//     rto_fired      <- caused by attempt#0
//     retransmit     <- caused by rto_fired
//     attempt#1 ... complete   <- caused by retransmit
//
// This is the debugging workflow the telemetry layer exists for: the same
// joined view `--trace-perfetto` renders graphically, as a terminal tree.
// Chunks that sailed through cleanly are elided and counted.
//
// Run: ./trace_explorer [packet_drop] [KiB] [seed]
//      defaults: 0.03, 256 KiB, 5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/span.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/nic.hpp"

using namespace sdr;  // NOLINT — example code

namespace {

const char* annotate(telemetry::TraceEventType type) {
  using T = telemetry::TraceEventType;
  switch (type) {
    case T::kPosted: return "SDR posts the chunk to a data QP";
    case T::kCts: return "receiver clear-to-send arrives";
    case T::kTx: return "packet enters the lossy channel";
    case T::kDropped: return "channel drop model eats the packet";
    case T::kQueueDrop: return "channel queue overflows (tail drop)";
    case T::kReordered: return "packet held back for reordering";
    case T::kDuplicated: return "channel duplicates the packet";
    case T::kDelivered: return "packet reaches the remote NIC";
    case T::kCqe: return "receive CQE surfaces at the SDR layer";
    case T::kBitmapUpdate: return "receive bitmap marks the chunk done";
    case T::kAckSent: return "receiver emits a cumulative ACK";
    case T::kNackSent: return "receiver NACKs a gap";
    case T::kRtoFired: return "sender retransmission timeout fires";
    case T::kRetransmit: return "sender retransmits the chunk";
    case T::kEcRepair: return "EC decode repairs the submessage";
    case T::kEcFallback: return "EC falls back to retransmission";
    case T::kMsgComplete: return "message fully received";
  }
  return "";
}

std::string span_label(const telemetry::Span& s) {
  char buf[48];
  switch (s.kind) {
    case telemetry::SpanKind::kMessage:
      std::snprintf(buf, sizeof(buf), "msg %llu",
                    static_cast<unsigned long long>(s.msg));
      break;
    case telemetry::SpanKind::kChunk:
      std::snprintf(buf, sizeof(buf), "chunk %u", s.chunk);
      break;
    case telemetry::SpanKind::kAttempt:
      std::snprintf(buf, sizeof(buf), "attempt#%u", s.attempt);
      break;
    case telemetry::SpanKind::kInstant:
      std::snprintf(buf, sizeof(buf), "%s", telemetry::to_string(s.what));
      break;
  }
  return buf;
}

void print_span(const telemetry::SpanRecorder& sp, telemetry::SpanIndex i,
                int indent) {
  const telemetry::Span& s = sp.at(i);
  char times[64];
  if (s.kind == telemetry::SpanKind::kInstant) {
    std::snprintf(times, sizeof(times), "@%.9f s", s.begin.seconds());
  } else {
    std::snprintf(times, sizeof(times), "%.9f-%.9f s", s.begin.seconds(),
                  s.end.seconds());
  }
  char detail[96] = "";
  if (s.kind == telemetry::SpanKind::kAttempt) {
    std::snprintf(detail, sizeof(detail), "  %llu B imm=0x%08x",
                  static_cast<unsigned long long>(s.bytes), s.imm);
  } else if (s.kind == telemetry::SpanKind::kInstant) {
    std::snprintf(detail, sizeof(detail), "  (%s)", annotate(s.what));
  }
  std::string cause;
  if (s.cause != telemetry::kNoSpan) {
    cause = "  <- caused by " + span_label(sp.at(s.cause));
  }
  std::printf("%*s%-12s %s  %s%s%s\n", indent, "", span_label(s).c_str(),
              times,
              s.kind == telemetry::SpanKind::kInstant
                  ? ""
                  : telemetry::to_string(s.outcome),
              detail, cause.c_str());
}

/// A chunk earned its place in the tree if anything beyond the happy path
/// happened to it: extra attempts, a lost attempt, or a protocol decision.
bool chunk_is_interesting(const telemetry::SpanRecorder& sp,
                          telemetry::SpanIndex chunk) {
  std::size_t attempts = 0;
  for (telemetry::SpanIndex c : sp.children(chunk)) {
    const telemetry::Span& s = sp.at(c);
    if (s.kind == telemetry::SpanKind::kAttempt) {
      ++attempts;
      if (s.outcome != telemetry::SpanOutcome::kComplete) return true;
    } else if (s.kind == telemetry::SpanKind::kInstant &&
               (s.what == telemetry::TraceEventType::kRtoFired ||
                s.what == telemetry::TraceEventType::kRetransmit ||
                s.what == telemetry::TraceEventType::kNackSent)) {
      return true;
    }
  }
  return attempts > 1;
}

}  // namespace

int main(int argc, char** argv) {
  const double p_drop = argc > 1 ? std::atof(argv[1]) : 0.03;
  const std::size_t kib = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;
  const std::size_t bytes = kib * KiB;

  // Run-scoped telemetry: local instances installed for this run only, so
  // an embedding process (or another run in the same process) never sees
  // this run's metrics, and nothing mutates the process-wide default.
  telemetry::Registry registry;
  telemetry::SpanRecorder span_rec;
  registry.enable();
  span_rec.arm();
  telemetry::ScopedTelemetry scoped(&registry, nullptr, &span_rec);

  sim::Simulator sim;
  sim::Channel::Config link;
  link.bandwidth_bps = 100 * Gbps;
  link.distance_km = 100.0;  // ~1 ms RTT
  link.seed = seed;
  verbs::NicPair nics = verbs::make_connected_pair(sim, link, p_drop, 0.0);

  reliability::ReliableChannel::Options options;
  options.kind = reliability::ReliableChannel::Kind::kSrRto;
  options.profile.bandwidth_bps = link.bandwidth_bps;
  options.profile.rtt_s = 2.0 * propagation_delay_s(link.distance_km);
  options.profile.p_drop_packet = p_drop;
  // chunk == MTU so the wire packet index equals the SR chunk index and a
  // chunk's whole life is a single packet stream — the simplest tree.
  options.profile.mtu = 1024;
  options.profile.chunk_bytes = 1024;
  options.attr.mtu = 1024;
  options.attr.chunk_size = 1024;
  options.attr.max_msg_size = 4 * MiB;
  options.attr.max_inflight = 8;
  options.derive_timeouts();
  reliability::ReliableChannel channel(sim, *nics.a, *nics.b, options);

  std::vector<std::uint8_t> src(bytes), dst(bytes, 0);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  bool done = false;
  channel.recv(dst.data(), bytes, [&](const Status& s) {
    done = s.is_ok();
  });
  channel.send(src.data(), bytes, [](const Status&) {});
  sim.run();

  if (!done || std::memcmp(src.data(), dst.data(), bytes) != 0) {
    std::fprintf(stderr, "transfer failed\n");
    return 1;
  }
  std::printf("Transferred %s over %.0f km at %.0f Gbit/s, p_drop=%g: "
              "%llu retransmissions, completion %.6f s (sim time)\n\n",
              format_bytes(bytes).c_str(), link.distance_km,
              link.bandwidth_bps / 1e9, p_drop,
              static_cast<unsigned long long>(channel.retransmissions()),
              sim.now().seconds());

  // Walk every message span: expand chunks that needed recovery into their
  // attempt/decision subtree, count the clean ones.
  const telemetry::SpanRecorder& sp = span_rec;
  bool any_interesting = false;
  for (telemetry::SpanIndex root : sp.children(telemetry::kNoSpan)) {
    if (sp.at(root).kind != telemetry::SpanKind::kMessage) continue;
    std::printf("Span tree of %s:\n", span_label(sp.at(root)).c_str());
    print_span(sp, root, 0);
    std::size_t clean = 0;
    for (telemetry::SpanIndex chunk : sp.children(root)) {
      const telemetry::Span& cs = sp.at(chunk);
      if (cs.kind != telemetry::SpanKind::kChunk) {
        print_span(sp, chunk, 2);  // message-level instants (cts, ...)
        continue;
      }
      if (!chunk_is_interesting(sp, chunk)) {
        ++clean;
        continue;
      }
      any_interesting = true;
      print_span(sp, chunk, 2);
      // Coalesce runs of identical cause-free instants (e.g. the periodic
      // cumulative ACK stuck at this chunk while its retransmission is in
      // flight) into one line.
      const std::vector<telemetry::SpanIndex> kids = sp.children(chunk);
      for (std::size_t k = 0; k < kids.size();) {
        const telemetry::Span& s = sp.at(kids[k]);
        std::size_t run = 1;
        if (s.kind == telemetry::SpanKind::kInstant) {
          while (k + run < kids.size()) {
            const telemetry::Span& n = sp.at(kids[k + run]);
            if (n.kind != telemetry::SpanKind::kInstant ||
                n.what != s.what || n.cause != telemetry::kNoSpan) {
              break;
            }
            ++run;
          }
        }
        print_span(sp, kids[k], 4);
        if (run > 1) {
          std::printf("      ... x%zu more until %.9f s\n", run - 1,
                      sp.at(kids[k + run - 1]).begin.seconds());
        }
        k += run;
      }
    }
    if (clean > 0) {
      std::printf("  (%zu clean chunks elided: one delivered attempt "
                  "each)\n", clean);
    }
  }
  if (!any_interesting) {
    std::printf("No chunk was retransmitted (drop dice were kind) — rerun "
                "with a higher drop rate or another seed.\n");
  }

  std::printf("\nRegistry snapshot (reliability.sr.*):\n");
  std::vector<telemetry::FlatMetric> metrics;
  telemetry::registry().flatten(metrics);
  for (const auto& m : metrics) {
    if (m.name.rfind("reliability.sr.", 0) == 0) {
      std::printf("  %-44s %.6g\n", m.name.c_str(), m.value);
    }
  }
  return 0;
}
