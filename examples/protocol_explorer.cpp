// Protocol explorer: the C++ counterpart of the paper's released modeling
// library (§4.2: "released as an open-source Python library, enabling
// system architects to design and tune the reliability layer to specific
// RDMA deployments").
//
// Given a deployment (bandwidth, distance, drop rate, chunking) it prints,
// for a sweep of message sizes: expected completion and tail percentiles of
// every reliability scheme, plus the tuner's recommendation per size.
//
// Run: ./protocol_explorer [gbps] [km] [chunk_drop] [samples]
//      defaults: 400 Gbit/s, 3750 km, 1e-5, 2000
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/protocols.hpp"
#include "reliability/tuner.hpp"

using namespace sdr;  // NOLINT — example code

int main(int argc, char** argv) {
  const double gbps = argc > 1 ? std::stod(argv[1]) : 400.0;
  const double km = argc > 2 ? std::stod(argv[2]) : 3750.0;
  const double p_drop = argc > 3 ? std::stod(argv[3]) : 1e-5;
  const std::uint64_t samples = argc > 4 ? std::stoull(argv[4]) : 2000;
  const std::uint64_t seed = 0xC0FFEE;

  model::LinkParams link;
  link.bandwidth_bps = gbps * 1e9;
  link.rtt_s = rtt_s(km);
  link.p_drop = p_drop;
  link.chunk_bytes = 64 * KiB;

  std::printf("link: %s, %.0f km (RTT %s), chunk drop %.2e, chunk %s, "
              "BDP %s   [seed %llu]\n\n",
              format_rate(link.bandwidth_bps).c_str(), km,
              format_seconds(link.rtt_s).c_str(), link.p_drop,
              format_bytes(link.chunk_bytes).c_str(),
              format_bytes(static_cast<std::uint64_t>(
                  bdp_bytes(link.bandwidth_bps, link.rtt_s))).c_str(),
              static_cast<unsigned long long>(seed));

  const model::Scheme schemes[] = {model::Scheme::kSrRto,
                                   model::Scheme::kSrNack,
                                   model::Scheme::kEcMds,
                                   model::Scheme::kEcXor};

  TextTable table({"message", "scheme", "E[T]", "p50", "p99.9",
                   "slowdown"});
  for (const std::size_t mib : {1u, 16u, 128u, 1024u, 8192u}) {
    const std::uint64_t chunks =
        (static_cast<std::uint64_t>(mib) * MiB) / link.chunk_bytes;
    const double ideal = model::ideal_completion_s(link, chunks);
    for (const model::Scheme scheme : schemes) {
      const double expected =
          model::expected_completion_s(scheme, link, chunks);
      const auto dist =
          model::sample_distribution(scheme, link, chunks, samples, seed);
      table.add_row({format_bytes(static_cast<std::uint64_t>(mib) * MiB),
                     model::scheme_name(scheme),
                     format_seconds(expected), format_seconds(dist.p50),
                     format_seconds(dist.p999),
                     TextTable::num(expected / ideal, 3) + "x"});
    }
  }
  table.print();

  // Tuner verdict per message size.
  std::printf("\ntuner recommendations (packet-level drop %.2e at 4 KiB "
              "MTU):\n",
              p_drop);
  reliability::LinkProfile profile;
  profile.bandwidth_bps = link.bandwidth_bps;
  profile.rtt_s = link.rtt_s;
  // Invert the chunk-level drop to a packet-level estimate for the tuner.
  profile.p_drop_packet = p_drop / 16.0;
  profile.mtu = 4096;
  profile.chunk_bytes = link.chunk_bytes;
  for (const std::size_t mib : {1u, 16u, 128u, 1024u, 8192u}) {
    reliability::TunerOptions opt;
    opt.tail_samples = samples / 2;
    const auto rec = reliability::recommend(
        profile, static_cast<std::size_t>(mib) * MiB, opt);
    std::printf("  %7s -> %s\n",
                format_bytes(static_cast<std::uint64_t>(mib) * MiB).c_str(),
                rec.rationale.c_str());
  }
  return 0;
}
