// Multi-datacenter training synchronization (the paper's motivating
// workload, §1/§5.3): a ring Allreduce of gradient buffers across N
// simulated datacenters connected by lossy long-haul links, executed on the
// full SDR stack with SR and EC reliability, verifying numerics and
// comparing completion times.
//
// Run: ./multidc_allreduce [datacenters] [MiB_per_rank] [packet_drop]
//      defaults: 4 DCs, 4 MiB, 1e-3
#include <cstdio>
#include <string>
#include <vector>

#include "collectives/ring_allreduce.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace sdr;  // NOLINT — example code

namespace {

collectives::RingConfig make_config(reliability::ReliableChannel::Kind kind,
                                    std::size_t nodes, std::size_t elements,
                                    double p_drop) {
  collectives::RingConfig cfg;
  cfg.nodes = nodes;
  cfg.elements = elements;
  cfg.p_drop_forward = p_drop;
  cfg.seed = 20260706;

  cfg.link.bandwidth_bps = 100 * Gbps;
  cfg.link.distance_km = 1000.0;  // neighbouring DCs ~1000 km apart
  cfg.link.seed = 31;

  cfg.channel.kind = kind;
  cfg.channel.profile.bandwidth_bps = cfg.link.bandwidth_bps;
  cfg.channel.profile.rtt_s = rtt_s(cfg.link.distance_km);
  cfg.channel.profile.p_drop_packet = p_drop;
  cfg.channel.profile.mtu = 4096;
  cfg.channel.profile.chunk_bytes = 4096;

  cfg.channel.attr.mtu = 4096;
  cfg.channel.attr.chunk_size = 4096;
  cfg.channel.attr.max_msg_size = 8 * MiB;
  cfg.channel.attr.max_inflight = 64;
  cfg.channel.ec.k = 32;
  cfg.channel.ec.m = 8;
  cfg.channel.derive_timeouts();
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::stoul(argv[1]) : 4;
  const std::size_t mib = argc > 2 ? std::stoul(argv[2]) : 4;
  const double p_drop = argc > 3 ? std::stod(argv[3]) : 1e-3;

  // Per-rank gradient buffer; segment must be k*chunk aligned for EC:
  // round elements so that (elements/nodes)*4 bytes % 128 KiB == 0.
  const std::size_t seg_bytes_target = mib * MiB / nodes;
  const std::size_t granularity = 32 * 4096;  // k * chunk
  const std::size_t seg_bytes =
      std::max(granularity, seg_bytes_target / granularity * granularity);
  const std::size_t elements = seg_bytes / sizeof(float) * nodes;

  std::printf("ring allreduce: %zu datacenters, %s per rank "
              "(%s segments), 100 Gbit/s links of 1000 km, packet drop "
              "%.1e\n\n",
              nodes, format_bytes(elements * sizeof(float)).c_str(),
              format_bytes(seg_bytes).c_str(), p_drop);

  // Reference input: rank r contributes r+1 to every element, so the
  // allreduced value everywhere is nodes*(nodes+1)/2.
  auto make_buffers = [&] {
    std::vector<std::vector<float>> buffers(nodes);
    for (std::size_t r = 0; r < nodes; ++r) {
      buffers[r].assign(elements, static_cast<float>(r + 1));
    }
    return buffers;
  };
  const float expect =
      static_cast<float>(nodes * (nodes + 1)) / 2.0f;

  TextTable table({"scheme", "completion", "retransmissions", "verified"});
  struct Run {
    const char* name;
    reliability::ReliableChannel::Kind kind;
  };
  const Run runs[] = {
      {"SR RTO", reliability::ReliableChannel::Kind::kSrRto},
      {"SR NACK", reliability::ReliableChannel::Kind::kSrNack},
      {"EC MDS(32,8)", reliability::ReliableChannel::Kind::kEcMds},
  };
  for (const Run& run : runs) {
    sim::Simulator sim;
    collectives::RingAllreduce ring(
        sim, make_config(run.kind, nodes, elements, p_drop));
    auto buffers = make_buffers();
    const collectives::RingResult result = ring.run(buffers);
    if (!result.status.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", run.name,
                   result.status.message().c_str());
      return 1;
    }
    bool verified = true;
    for (const auto& buf : buffers) {
      for (float v : buf) {
        if (v != expect) {
          verified = false;
          break;
        }
      }
    }
    table.add_row({run.name, format_seconds(result.completion_s),
                   std::to_string(result.total_retransmissions),
                   verified ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nevery rank ends with the elementwise sum %.0f (= "
              "sum of ranks 1..%zu) across all %zu elements\n",
              expect, nodes, elements);
  return 0;
}
