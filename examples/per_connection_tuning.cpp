// Per-connection reliability provisioning (paper §2.1: "a single endpoint
// might communicate with remote endpoints at varying distances. Achieving
// optimal message completion times in this scenario may require
// per-connection reliability protocol provisioning").
//
// One hub datacenter pushes the same 32 MiB update to three peers over
// very different links — metro (100 km, clean), cross-continent (3750 km,
// moderately lossy) and intercontinental (10000 km, lossy). The tuner
// picks a scheme per connection from the model; all three transfers then
// run concurrently over the executable stack, each on its tuned scheme,
// and the result is compared against forcing one global scheme everywhere.
//
// Run: ./per_connection_tuning [MiB]        (default 32)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"
#include "reliability/reliable_channel.hpp"
#include "reliability/tuner.hpp"
#include "sim/simulator.hpp"
#include "verbs/fabric.hpp"

using namespace sdr;  // NOLINT

namespace {

struct Peer {
  const char* name;
  double km;
  double p_drop_packet;
};

const Peer kPeers[] = {
    {"metro (100 km)", 100.0, 1e-7},
    {"cross-continent (3750 km)", 3750.0, 1e-4},
    {"intercontinental (10000 km)", 10000.0, 1e-3},
};

reliability::LinkProfile profile_for(const Peer& peer) {
  reliability::LinkProfile p;
  p.bandwidth_bps = 100 * Gbps;
  p.rtt_s = rtt_s(peer.km);
  p.p_drop_packet = peer.p_drop_packet;
  p.mtu = 4096;
  p.chunk_bytes = 64 * KiB;
  return p;
}

reliability::ReliableChannel::Kind kind_for(model::Scheme scheme) {
  switch (scheme) {
    case model::Scheme::kSrRto: return reliability::ReliableChannel::Kind::kSrRto;
    case model::Scheme::kSrNack: return reliability::ReliableChannel::Kind::kSrNack;
    case model::Scheme::kEcXor: return reliability::ReliableChannel::Kind::kEcXor;
    default: return reliability::ReliableChannel::Kind::kEcMds;
  }
}

/// Run all three transfers concurrently; kinds[i] selects peer i's scheme.
/// Returns the per-peer completion times (virtual seconds).
std::vector<double> run_concurrent(
    const std::vector<reliability::ReliableChannel::Kind>& kinds,
    std::size_t bytes) {
  sim::Simulator sim;
  verbs::Fabric fabric(sim);
  verbs::Nic* hub = fabric.add_nic();

  std::vector<verbs::Nic*> leaves;
  std::vector<std::unique_ptr<reliability::ReliableChannel>> channels;
  for (std::size_t i = 0; i < std::size(kPeers); ++i) {
    verbs::Nic* leaf = fabric.add_nic();
    leaves.push_back(leaf);
    verbs::Fabric::LinkOptions link;
    link.config.bandwidth_bps = 100 * Gbps;
    link.config.distance_km = kPeers[i].km;
    link.p_drop_forward = kPeers[i].p_drop_packet;
    fabric.connect(hub, leaf, link);

    reliability::ReliableChannel::Options options;
    options.kind = kinds[i];
    options.profile = profile_for(kPeers[i]);
    options.attr.mtu = 4096;
    options.attr.chunk_size = 64 * KiB;
    options.attr.max_msg_size = 8 * MiB;
    options.attr.max_inflight = 128;
    options.ec.k = 32;
    options.ec.m = 8;
    options.derive_timeouts();
    channels.push_back(std::make_unique<reliability::ReliableChannel>(
        sim, *hub, *leaf, options));
  }

  std::vector<std::uint8_t> src(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    src[i] = static_cast<std::uint8_t>(i * 131);
  }
  std::vector<std::vector<std::uint8_t>> dst(
      std::size(kPeers), std::vector<std::uint8_t>(bytes, 0));
  std::vector<double> done_at(std::size(kPeers), -1.0);

  const std::size_t piece = 8 * MiB;
  for (std::size_t i = 0; i < std::size(kPeers); ++i) {
    std::size_t* remaining = new std::size_t((bytes + piece - 1) / piece);
    for (std::size_t off = 0; off < bytes; off += piece) {
      const std::size_t len = std::min(piece, bytes - off);
      channels[i]->recv(dst[i].data() + off, len,
                        [&sim, &done_at, i, remaining](const Status& s) {
                          if (s.is_ok() && --(*remaining) == 0) {
                            done_at[i] = sim.now().seconds();
                            delete remaining;
                          }
                        });
      channels[i]->send(src.data() + off, len, [](const Status&) {});
    }
  }
  sim.run();

  for (std::size_t i = 0; i < std::size(kPeers); ++i) {
    if (done_at[i] < 0 ||
        std::memcmp(dst[i].data(), src.data(), bytes) != 0) {
      std::fprintf(stderr, "peer %zu transfer failed\n", i);
      done_at[i] = -1.0;
    }
  }
  return done_at;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t mib = argc > 1 ? std::stoul(argv[1]) : 32;
  const std::size_t bytes = mib * MiB;

  std::printf("hub pushes %s to three peers concurrently "
              "(100 Gbit/s links)\n\n",
              format_bytes(bytes).c_str());

  // Tuner verdict per connection.
  std::vector<reliability::ReliableChannel::Kind> tuned;
  TextTable rec_table({"peer", "RTT", "packet drop", "tuned scheme"});
  for (const Peer& peer : kPeers) {
    reliability::TunerOptions opt;
    opt.tail_samples = 0;
    opt.ec_splits = {{32, 8}};
    const auto rec = reliability::recommend(profile_for(peer), bytes, opt);
    tuned.push_back(kind_for(rec.best.scheme));
    rec_table.add_row({peer.name, format_seconds(rtt_s(peer.km)),
                       TextTable::sci(peer.p_drop_packet, 0),
                       model::scheme_name(rec.best.scheme)});
  }
  rec_table.print();

  // Tuned-per-connection vs one-size-fits-all.
  const auto tuned_times = run_concurrent(tuned, bytes);
  const std::vector<reliability::ReliableChannel::Kind> all_sr(
      std::size(kPeers), reliability::ReliableChannel::Kind::kSrRto);
  const auto sr_times = run_concurrent(all_sr, bytes);
  const std::vector<reliability::ReliableChannel::Kind> all_ec(
      std::size(kPeers), reliability::ReliableChannel::Kind::kEcMds);
  const auto ec_times = run_concurrent(all_ec, bytes);

  std::printf("\n");
  TextTable t({"peer", "tuned", "all SR RTO", "all EC MDS"});
  for (std::size_t i = 0; i < std::size(kPeers); ++i) {
    t.add_row({kPeers[i].name, format_seconds(tuned_times[i]),
               format_seconds(sr_times[i]), format_seconds(ec_times[i])});
  }
  t.print();
  std::printf("\nper-connection provisioning matches or beats both global "
              "policies on every link — the §2.1 takeaway.\n");
  return 0;
}
