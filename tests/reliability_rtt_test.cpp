// Tests for the RFC 6298-style RTT estimator and the adaptive-RTO mode of
// the executable SR protocol (paper §4.1.1: "RTO tuning ... can also be
// supported").
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "reliability/rtt_estimator.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {
namespace {

TEST(RttEstimatorTest, InitialRtoBeforeSamples) {
  RttEstimator::Params params;
  params.initial_rto_s = 0.5;
  RttEstimator est(params);
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.5);
  EXPECT_EQ(est.samples(), 0u);
}

TEST(RttEstimatorTest, FirstSampleSeedsSrttAndVar) {
  RttEstimator est;
  est.update(0.010);
  EXPECT_DOUBLE_EQ(est.srtt_s(), 0.010);
  EXPECT_DOUBLE_EQ(est.rttvar_s(), 0.005);
  EXPECT_NEAR(est.rto_s(), 0.010 + 4.0 * 0.005, 1e-12);
}

TEST(RttEstimatorTest, ConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.update(0.025);
  EXPECT_NEAR(est.srtt_s(), 0.025, 1e-6);
  // Variance decays toward zero on constant samples; RTO approaches SRTT.
  EXPECT_LT(est.rto_s(), 0.030);
  EXPECT_GE(est.rto_s(), 0.025);
}

TEST(RttEstimatorTest, VarianceTracksJitter) {
  RttEstimator jittery, stable;
  for (int i = 0; i < 200; ++i) {
    jittery.update(i % 2 == 0 ? 0.020 : 0.030);
    stable.update(0.025);
  }
  EXPECT_GT(jittery.rto_s(), stable.rto_s());
}

TEST(RttEstimatorTest, BackoffDoublesAndResets) {
  RttEstimator::Params params;
  params.initial_rto_s = 0.1;
  RttEstimator est(params);
  est.backoff();
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.2);
  est.backoff();
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.4);
  est.reset_backoff();
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.1);
}

TEST(RttEstimatorTest, RtoClampedToBounds) {
  RttEstimator::Params params;
  params.min_rto_s = 0.001;
  params.max_rto_s = 0.05;
  RttEstimator est(params);
  est.update(10.0);  // absurd sample
  EXPECT_DOUBLE_EQ(est.rto_s(), 0.05);
  RttEstimator tiny(params);
  for (int i = 0; i < 100; ++i) tiny.update(1e-7);
  EXPECT_DOUBLE_EQ(tiny.rto_s(), 0.001);
}

TEST(RttEstimatorTest, IgnoresNonPositiveSamples) {
  RttEstimator est;
  est.update(0.0);
  est.update(-1.0);
  EXPECT_EQ(est.samples(), 0u);
}

// ---------------------------------------------------------------------------
// Adaptive RTO end-to-end
// ---------------------------------------------------------------------------

class AdaptiveSrFixture : public ::testing::Test {
 protected:
  void wire(double p_drop, double static_rto_s, bool adaptive) {
    // Strict reverse dependency order before replacing the NIC pair.
    sender_.reset();
    receiver_.reset();
    ctrl_a_.reset();
    ctrl_b_.reset();
    ctx_a_.reset();
    ctx_b_.reset();
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 100.0;  // true RTT = 1 ms
    cfg.seed = 9;
    pair_ = verbs::make_connected_pair(sim_, cfg, p_drop, 0.0);
    ctx_a_ = std::make_unique<core::Context>(*pair_.a, core::DevAttr{});
    ctx_b_ = std::make_unique<core::Context>(*pair_.b, core::DevAttr{});
    core::QpAttr attr;
    attr.mtu = 1024;
    attr.chunk_size = 4096;
    attr.max_msg_size = 256 * 1024;
    attr.max_inflight = 8;
    qp_a_ = ctx_a_->create_qp(attr);
    qp_b_ = ctx_b_->create_qp(attr);
    qp_a_->connect(qp_b_->info());
    qp_b_->connect(qp_a_->info());
    ctrl_a_ = std::make_unique<ControlLink>(*pair_.a);
    ctrl_b_ = std::make_unique<ControlLink>(*pair_.b);
    ctrl_a_->connect(pair_.b->id(), ctrl_b_->qp_number());
    ctrl_b_->connect(pair_.a->id(), ctrl_a_->qp_number());

    LinkProfile profile;
    profile.bandwidth_bps = cfg.bandwidth_bps;
    profile.rtt_s = 2.0 * propagation_delay_s(cfg.distance_km);
    profile.mtu = 1024;
    profile.chunk_bytes = 4096;

    SrProtoConfig config;
    config.rto_s = static_rto_s;
    config.adaptive_rto = adaptive;
    config.ack_interval_s = profile.rtt_s / 4.0;
    sender_ = std::make_unique<SrSender>(sim_, *qp_a_, *ctrl_a_, profile,
                                         config);
    receiver_ = std::make_unique<SrReceiver>(sim_, *qp_b_, *ctrl_b_, profile,
                                             config);
  }

  double transfer(std::size_t bytes) {
    static std::vector<std::uint8_t> src;
    src.assign(bytes, 0x3C);
    std::vector<std::uint8_t> dst(bytes, 0);
    const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
    const double start = sim_.now().seconds();
    bool ok = false;
    receiver_->expect(dst.data(), bytes, mr, [&](const Status& s) {
      ok = s.is_ok();
    });
    sender_->write(src.data(), bytes, [](const Status&) {});
    sim_.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
    return sim_.now().seconds() - start;
  }

  sim::Simulator sim_;
  verbs::NicPair pair_;
  std::unique_ptr<core::Context> ctx_a_, ctx_b_;
  core::Qp* qp_a_{nullptr};
  core::Qp* qp_b_{nullptr};
  std::unique_ptr<ControlLink> ctrl_a_, ctrl_b_;
  std::unique_ptr<SrSender> sender_;
  std::unique_ptr<SrReceiver> receiver_;
};

TEST_F(AdaptiveSrFixture, EstimatorLearnsTheChannelRtt) {
  // Static RTO grossly misconfigured (200 ms for a 1 ms channel); after a
  // few lossless messages the estimator must have learned an RTO within a
  // small multiple of the true chunk-ack latency.
  wire(0.0, 0.2, /*adaptive=*/true);
  for (int i = 0; i < 3; ++i) transfer(64 * 1024);
  EXPECT_GT(sender_->rtt_estimator().samples(), 0u);
  EXPECT_LT(sender_->rtt_estimator().rto_s(), 0.02)
      << "learned RTO should approach the ~1-2 ms ack latency";
}

TEST_F(AdaptiveSrFixture, AdaptiveRecoversFasterThanMisconfiguredStatic) {
  // Under loss, a 200 ms static RTO on a 1 ms link pays ~200 ms per drop.
  // The adaptive sender learns the channel during the first message and
  // recovers subsequent drops orders of magnitude faster.
  wire(0.02, 0.2, /*adaptive=*/false);
  double static_total = 0.0;
  for (int i = 0; i < 4; ++i) static_total += transfer(128 * 1024);

  wire(0.02, 0.2, /*adaptive=*/true);
  double adaptive_total = 0.0;
  for (int i = 0; i < 4; ++i) adaptive_total += transfer(128 * 1024);

  EXPECT_LT(adaptive_total, static_total * 0.5)
      << "static=" << static_total << "s adaptive=" << adaptive_total << "s";
}

TEST_F(AdaptiveSrFixture, AdaptiveStillDeliversUnderHeavyLoss) {
  wire(0.15, 0.05, /*adaptive=*/true);
  for (int i = 0; i < 3; ++i) transfer(64 * 1024);
}

// ---------------------------------------------------------------------------
// Property tests (sdrcheck satellite): invariants under randomized
// sample/backoff sequences, all driven by the pinned common::Rng.
// ---------------------------------------------------------------------------

TEST(RttEstimatorProperty, RtoAlwaysWithinBounds) {
  Rng rng(0xB0B0);
  for (int trial = 0; trial < 64; ++trial) {
    RttEstimator::Params params;
    params.min_rto_s = 1e-3 * (1.0 + rng.next_double());
    params.max_rto_s = params.min_rto_s * (2.0 + 100.0 * rng.next_double());
    params.initial_rto_s = 1e-4 + 10.0 * rng.next_double();  // may exceed max
    RttEstimator est(params);
    // Interleave samples (log-uniform 1 us .. 10 s, so both clamp edges are
    // exercised), timeouts, and backoff resets; the invariant must hold
    // after every step — including before the first sample, where the
    // initial RTO times any backoff must also respect the caps.
    for (int step = 0; step < 200; ++step) {
      switch (rng.next_below(4)) {
        case 0:
        case 1:
          est.update(std::pow(10.0, -6.0 + 7.0 * rng.next_double()));
          break;
        case 2:
          est.backoff();
          break;
        case 3:
          est.reset_backoff();
          break;
      }
      const double rto = est.rto_s();
      ASSERT_GE(rto, params.min_rto_s) << "trial " << trial;
      ASSERT_LE(rto, params.max_rto_s) << "trial " << trial;
    }
  }
}

TEST(RttEstimatorProperty, BackoffIsMonotoneUnderConsecutiveTimeouts) {
  Rng rng(0xBACC0FF);
  for (int trial = 0; trial < 32; ++trial) {
    RttEstimator est;
    const int warmup = static_cast<int>(rng.next_below(10));
    for (int i = 0; i < warmup; ++i) {
      est.update(0.01 + 0.01 * rng.next_double());
    }
    double prev = est.rto_s();
    for (int timeouts = 0; timeouts < 12; ++timeouts) {
      est.backoff();
      const double rto = est.rto_s();
      ASSERT_GE(rto, prev) << "trial " << trial << " timeout " << timeouts;
      prev = rto;
    }
  }
}

TEST(RttEstimatorProperty, ConvergesOnAStableLink) {
  // On a stable link (fixed RTT with small jitter) the estimator must
  // settle: SRTT within the jitter band of the true RTT, and the RTO
  // stable from one sample to the next (no oscillation for the tuner to
  // chase).
  Rng rng(0x57AB1E);
  for (double true_rtt : {1e-3, 0.025, 0.1}) {
    RttEstimator est;
    for (int i = 0; i < 500; ++i) {
      est.update(true_rtt * (1.0 + 0.01 * (rng.next_double() - 0.5)));
    }
    EXPECT_NEAR(est.srtt_s(), true_rtt, 0.02 * true_rtt);
    const double rto_a = est.rto_s();
    est.update(true_rtt);
    const double rto_b = est.rto_s();
    EXPECT_NEAR(rto_b, rto_a, 0.05 * rto_a);
    // Converged RTO stays a sane multiple of the true RTT.
    EXPECT_GE(rto_b, true_rtt);
    EXPECT_LE(rto_b, std::max(4.0 * true_rtt, est.srtt_s() * 4.0));
  }
}

}  // namespace
}  // namespace sdr::reliability
