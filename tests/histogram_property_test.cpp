// Property tests for the log-bucketed latency histogram.
//
// Two invariants matter to the fig10/fig13 rollups and were easy to break
// silently:
//   * quantile monotonicity — percentile(p) must be non-decreasing in p for
//     ANY sample set (p50 <= p99 <= p99.9 <= max),
//   * merge commutativity — merging per-trial histograms in any order must
//     give identical buckets, count and percentiles (the sweep engine
//     merges worker-local histograms in nondeterministic completion order).
// Plus the regression that motivated them: 99.9/100.0 rounds UP in binary,
// so on a 1000-sample histogram p99.9 used to land on rank 1000 (the max)
// instead of rank 999.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"

namespace {

using sdr::Histogram;
using sdr::Rng;

// Draw a sample set whose shape varies per seed: mixtures of uniform,
// exponential tails, and point masses exercise sparse and dense buckets.
std::vector<double> sample_set(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  const double point_mass = rng.next_double() * 1e-3 + 1e-6;
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.next_below(3)) {
      case 0: out.push_back(rng.next_double() * 1e-2 + 1e-7); break;
      case 1: out.push_back(rng.exponential(1e4)); break;
      default: out.push_back(point_mass); break;
    }
  }
  return out;
}

TEST(HistogramProperty, QuantilesMonotoneAcrossSeeds) {
  const double pcts[] = {0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0};
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Histogram h(1e-9, 1e3);
    const std::size_t n = 1 + static_cast<std::size_t>(
                                  Rng(seed ^ 0xABCD).next_below(5000));
    for (double v : sample_set(seed, n)) h.record(v);
    double prev = -1.0;
    for (double pct : pcts) {
      const double q = h.percentile(pct);
      EXPECT_GE(q, prev) << "seed=" << seed << " pct=" << pct;
      prev = q;
    }
    EXPECT_LE(h.percentile(100.0), h.max()) << "seed=" << seed;
    EXPECT_GE(h.percentile(0.0), h.min()) << "seed=" << seed;
  }
}

TEST(HistogramProperty, MergeCommutesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const std::size_t parts = 2 + rng.next_below(6);
    std::vector<Histogram> shards(parts, Histogram(1e-9, 1e3));
    for (std::size_t p = 0; p < parts; ++p) {
      const std::size_t n = rng.next_below(800);
      for (double v : sample_set(seed * 131 + p, n)) shards[p].record(v);
    }

    Histogram forward(1e-9, 1e3);
    for (std::size_t p = 0; p < parts; ++p) forward.merge(shards[p]);
    Histogram backward(1e-9, 1e3);
    for (std::size_t p = parts; p-- > 0;) backward.merge(shards[p]);

    EXPECT_EQ(forward.count(), backward.count()) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(forward.mean(), backward.mean()) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(forward.min(), backward.min()) << "seed=" << seed;
    EXPECT_DOUBLE_EQ(forward.max(), backward.max()) << "seed=" << seed;
    for (double pct : {50.0, 99.0, 99.9}) {
      EXPECT_DOUBLE_EQ(forward.percentile(pct), backward.percentile(pct))
          << "seed=" << seed << " pct=" << pct;
    }
  }
}

// Regression: ceil(99.9/100 * 1000) evaluates to 1000 in doubles, so p99.9
// of exactly 1000 samples returned the max instead of the 999th-ranked
// sample. With samples 1..1000 spread across distinct buckets, p99.9 must
// resolve near 999, well clear of the 1000 outlier.
TEST(HistogramProperty, P999OnSparse1000SampleHistogram) {
  Histogram h(1e-1, 1e4, 128);
  for (int i = 1; i <= 999; ++i) h.record(static_cast<double>(i));
  h.record(1e4);  // rank 1000: a far-out max that p99.9 must NOT select
  const double p999 = h.percentile(99.9);
  EXPECT_LT(p999, 1.05 * 999.0);
  EXPECT_GT(p999, 0.95 * 999.0);
  // And p100 still reaches the outlier.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1e4);
}

// The same rank arithmetic at other exact-product percentiles: p50 of an
// even count must select rank n/2, not n/2 + 1.
TEST(HistogramProperty, ExactRankProductsStayExact) {
  Histogram h(1e-1, 1e4, 128);
  for (int i = 0; i < 50; ++i) h.record(1.0);
  for (int i = 0; i < 50; ++i) h.record(100.0);
  // Rank 50 (= ceil(0.5 * 100)) lives in the low cluster.
  EXPECT_LT(h.percentile(50.0), 2.0);
  EXPECT_GT(h.percentile(51.0), 50.0);
}

}  // namespace
