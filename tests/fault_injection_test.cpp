// Deterministic fault-injection tests: with ScriptedDrop the exact loss
// pattern is chosen, so the protocols' responses can be asserted precisely —
// SR retransmits exactly the dropped chunks; EC recovers exactly up to its
// code tolerance and falls back one drop beyond it.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "ec/reed_solomon.hpp"
#include "reliability/ec_protocol.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  }
  return v;
}

/// Two NICs connected by a forward channel whose drops are scripted by
/// SEND INDEX (CTS flows on the lossless backward channel, so data-packet
/// index == channel send index).
struct ScriptedPair {
  sim::Simulator sim;
  std::unique_ptr<verbs::Nic> a;
  std::unique_ptr<verbs::Nic> b;
  std::unique_ptr<sim::DuplexLink> link;

  explicit ScriptedPair(std::vector<std::uint64_t> drops) {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 100.0;
    cfg.seed = 1;
    a = std::make_unique<verbs::Nic>(sim, 1);
    b = std::make_unique<verbs::Nic>(sim, 2);
    link = std::make_unique<sim::DuplexLink>(
        sim, cfg, std::make_unique<sim::ScriptedDrop>(std::move(drops)),
        std::make_unique<sim::IidDrop>(0.0));
    link->forward().set_receiver(
        [nic = b.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
    link->backward().set_receiver(
        [nic = a.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
    a->add_route(2, &link->forward());
    b->add_route(1, &link->backward());
  }
};

core::QpAttr one_packet_chunks() {
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;
  attr.max_msg_size = 64 * 1024;
  attr.max_inflight = 64;
  return attr;
}

TEST(FaultInjectionTest, ScriptedDropHitsExactIndices) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  sim::Channel ch(sim, cfg,
                  std::make_unique<sim::ScriptedDrop>(
                      std::vector<std::uint64_t>{0, 3, 7}));
  std::vector<int> arrived;
  int idx = 0;
  ch.set_receiver([&](sim::Packet&&) { arrived.push_back(idx); });
  for (idx = 0; idx < 10; ++idx) {
    sim::Packet p;
    p.bytes = 100;
    ch.send(std::move(p));
    sim.run();  // deliver one at a time so idx capture is exact
  }
  EXPECT_EQ(arrived, (std::vector<int>{1, 2, 4, 5, 6, 8, 9}));
}

TEST(FaultInjectionTest, SrRetransmitsExactlyTheDroppedChunks) {
  // 16 one-packet chunks; drop chunks 2 and 9 on first transmission.
  ScriptedPair pair({2, 9});
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::Qp* qa = ctx_a.create_qp(one_packet_chunks());
  core::Qp* qb = ctx_b.create_qp(one_packet_chunks());
  qa->connect(qb->info());
  qb->connect(qa->info());
  ControlLink ca(*pair.a), cb(*pair.b);
  ca.connect(2, cb.qp_number());
  cb.connect(1, ca.qp_number());

  LinkProfile profile;
  profile.bandwidth_bps = 100e9;
  profile.rtt_s = rtt_s(100.0);
  profile.mtu = 1024;
  profile.chunk_bytes = 1024;
  SrProtoConfig config;
  config.rto_s = 3.0 * profile.rtt_s;
  config.ack_interval_s = profile.rtt_s / 4.0;
  SrSender sender(pair.sim, *qa, ca, profile, config);
  SrReceiver receiver(pair.sim, *qb, cb, profile, config);

  const std::size_t len = 16 * 1024;
  const auto src = pattern(len, 1);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  bool ok = false;
  receiver.expect(dst.data(), len, mr, [&](const Status& s) {
    ok = s.is_ok();
  });
  sender.write(src.data(), len, [](const Status&) {});
  pair.sim.run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_EQ(sender.stats().retransmissions, 2u)
      << "exactly the two scripted drops must be retransmitted";
}

TEST(FaultInjectionTest, EcRecoversExactlyMDropsInPlace) {
  // One submessage RS(8,4): drop exactly 4 data chunks (= m). The receiver
  // must decode in place — zero retransmissions, no FTO.
  ScriptedPair pair({0, 2, 4, 6});  // 4 of the 8 data packets
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::Qp* qa = ctx_a.create_qp(one_packet_chunks());
  core::Qp* qb = ctx_b.create_qp(one_packet_chunks());
  qa->connect(qb->info());
  qb->connect(qa->info());
  ControlLink ca(*pair.a), cb(*pair.b);
  ca.connect(2, cb.qp_number());
  cb.connect(1, ca.qp_number());

  LinkProfile profile;
  profile.bandwidth_bps = 100e9;
  profile.rtt_s = rtt_s(100.0);
  profile.mtu = 1024;
  profile.chunk_bytes = 1024;
  ec::ReedSolomon codec(8, 4);
  EcProtoConfig config;
  config.k = 8;
  config.m = 4;
  config.fallback_rto_s = 3.0 * profile.rtt_s;
  config.fallback_ack_interval_s = profile.rtt_s / 4.0;
  EcSender sender(pair.sim, *qa, ca, profile, codec, config);
  EcReceiver receiver(pair.sim, *qb, cb, profile, codec, config);

  const std::size_t len = 8 * 1024;  // exactly one submessage
  const auto src = pattern(len, 2);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  bool ok = false;
  receiver.expect(dst.data(), len, mr, [&](const Status& s) {
    ok = s.is_ok();
  });
  sender.write(src.data(), len, [](const Status&) {});
  pair.sim.run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_EQ(receiver.stats().decoded_submessages, 1u);
  EXPECT_EQ(receiver.stats().ftos_fired, 0u);
  EXPECT_EQ(sender.stats().fallback_retransmissions, 0u);
}

TEST(FaultInjectionTest, EcFallsBackExactlyBeyondTolerance) {
  // Drop m+1 = 5 chunks of the single submessage: decode is impossible,
  // the FTO must fire, and the SR fallback must deliver.
  ScriptedPair pair({0, 1, 2, 3, 4});
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::Qp* qa = ctx_a.create_qp(one_packet_chunks());
  core::Qp* qb = ctx_b.create_qp(one_packet_chunks());
  qa->connect(qb->info());
  qb->connect(qa->info());
  ControlLink ca(*pair.a), cb(*pair.b);
  ca.connect(2, cb.qp_number());
  cb.connect(1, ca.qp_number());

  LinkProfile profile;
  profile.bandwidth_bps = 100e9;
  profile.rtt_s = rtt_s(100.0);
  profile.mtu = 1024;
  profile.chunk_bytes = 1024;
  ec::ReedSolomon codec(8, 4);
  EcProtoConfig config;
  config.k = 8;
  config.m = 4;
  config.fallback_rto_s = 3.0 * profile.rtt_s;
  config.fallback_ack_interval_s = profile.rtt_s / 4.0;
  EcSender sender(pair.sim, *qa, ca, profile, codec, config);
  EcReceiver receiver(pair.sim, *qb, cb, profile, codec, config);

  const std::size_t len = 8 * 1024;
  const auto src = pattern(len, 3);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  bool ok = false;
  receiver.expect(dst.data(), len, mr, [&](const Status& s) {
    ok = s.is_ok();
  });
  sender.write(src.data(), len, [](const Status&) {});
  pair.sim.run();

  EXPECT_TRUE(ok);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_EQ(receiver.stats().ftos_fired, 1u);
  EXPECT_EQ(receiver.stats().fallback_submessages, 1u);
  EXPECT_GT(sender.stats().fallback_retransmissions, 0u);
}

TEST(FaultInjectionTest, BurstInsideOneChunkIsOneChunkDrop) {
  // Paper §3.1.1: "with a chunk size of 16 packets, dropping 7 packets
  // inside a chunk would appear to the upper layer as a single chunk
  // drop". Script a 7-packet burst inside chunk 1 of a 4-chunk message.
  ScriptedPair pair({16, 17, 18, 19, 20, 21, 22});  // inside packets 16..31
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 16 * 1024;  // 16 packets per chunk
  attr.max_msg_size = 64 * 1024;
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());

  const std::size_t len = 64 * 1024;  // 4 chunks
  const auto src = pattern(len, 4);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  core::RecvHandle* rh = nullptr;
  ASSERT_TRUE(qb->recv_post(dst.data(), len, mr, &rh).is_ok());
  core::SendHandle* sh = nullptr;
  ASSERT_TRUE(qa->send_post(src.data(), len, 0, false, &sh).is_ok());
  pair.sim.run();

  const AtomicBitmap* bitmap = nullptr;
  ASSERT_TRUE(qb->recv_bitmap_get(rh, &bitmap).is_ok());
  EXPECT_TRUE(bitmap->test(0));
  EXPECT_FALSE(bitmap->test(1)) << "the burst chunk is the only gap";
  EXPECT_TRUE(bitmap->test(2));
  EXPECT_TRUE(bitmap->test(3));
  EXPECT_EQ(bitmap->popcount(), 3u);
}

}  // namespace
}  // namespace sdr::reliability
