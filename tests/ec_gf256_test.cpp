// Property-based tests for GF(256) arithmetic and matrices: field axioms,
// inverse/division consistency, Cauchy submatrix invertibility (the MDS
// property's foundation), Gauss-Jordan inversion.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "ec/gf256.hpp"
#include "ec/matrix.hpp"

namespace sdr::ec {
namespace {

const Gf256& gf() { return Gf256::instance(); }

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(gf().add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf().sub(0x53, 0xCA), 0x53 ^ 0xCA);  // char 2: sub == add
}

TEST(Gf256Test, MultiplicativeIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().mul(x, 1), x);
    EXPECT_EQ(gf().mul(1, x), x);
    EXPECT_EQ(gf().mul(x, 0), 0);
    EXPECT_EQ(gf().mul(0, x), 0);
  }
}

TEST(Gf256Test, MultiplicationCommutesExhaustively) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = a; b < 256; ++b) {
      ASSERT_EQ(gf().mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                gf().mul(static_cast<std::uint8_t>(b),
                         static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, AssociativityRandomized) {
  Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_EQ(gf().mul(gf().mul(a, b), c), gf().mul(a, gf().mul(b, c)));
  }
}

TEST(Gf256Test, DistributivityRandomized) {
  Rng rng(103);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_EQ(gf().mul(a, gf().add(b, c)),
              gf().add(gf().mul(a, b), gf().mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    const std::uint8_t inv = gf().inv(x);
    ASSERT_EQ(gf().mul(x, inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(107);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    ASSERT_EQ(gf().div(gf().mul(a, b), b), a);
  }
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  for (unsigned a = 0; a < 256; ++a) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 8; ++e) {
      ASSERT_EQ(gf().pow(static_cast<std::uint8_t>(a), e), acc);
      acc = gf().mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256Test, MulAccKernelMatchesScalar) {
  Rng rng(109);
  std::vector<std::uint8_t> src(1000), dst(1000), expect(1000);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(rng.next_below(256));
    dst[i] = static_cast<std::uint8_t>(rng.next_below(256));
    expect[i] = dst[i];
  }
  const std::uint8_t c = 0x7a;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expect[i] ^= gf().mul(c, src[i]);
  }
  gf().mul_acc(dst.data(), src.data(), c, dst.size());
  EXPECT_EQ(dst, expect);
}

TEST(Gf256Test, MulAccSpecialConstants) {
  std::vector<std::uint8_t> src(64, 0x5b), dst(64, 0x11);
  // c == 0: no-op.
  gf().mul_acc(dst.data(), src.data(), 0, dst.size());
  EXPECT_EQ(dst, std::vector<std::uint8_t>(64, 0x11));
  // c == 1: plain XOR.
  gf().mul_acc(dst.data(), src.data(), 1, dst.size());
  EXPECT_EQ(dst, std::vector<std::uint8_t>(64, 0x11 ^ 0x5b));
}

TEST(Gf256Test, MulSetMatchesMul) {
  std::vector<std::uint8_t> src(128), dst(128);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 7);
  }
  gf().mul_set(dst.data(), src.data(), 0x3c, dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(dst[i], gf().mul(0x3c, src[i]));
  }
  gf().mul_set(dst.data(), src.data(), 0, dst.size());
  EXPECT_EQ(dst, std::vector<std::uint8_t>(128, 0));
}

// ---------------------------------------------------------------------------
// Matrices
// ---------------------------------------------------------------------------

TEST(GfMatrixTest, IdentityMultiplication) {
  const GfMatrix id = GfMatrix::identity(5);
  GfMatrix m(5, 5);
  Rng rng(113);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  EXPECT_EQ(id.multiply(m), m);
  EXPECT_EQ(m.multiply(id), m);
}

TEST(GfMatrixTest, InversionRoundTripRandomized) {
  Rng rng(127);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(12);
    GfMatrix m(n, n);
    // Random matrices over GF(256) are invertible w.h.p.; retry otherwise.
    GfMatrix inv;
    do {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) {
          m.at(r, c) = static_cast<std::uint8_t>(rng.next_below(256));
        }
      }
    } while (!m.invert(inv));
    EXPECT_EQ(m.multiply(inv), GfMatrix::identity(n));
    EXPECT_EQ(inv.multiply(m), GfMatrix::identity(n));
  }
}

TEST(GfMatrixTest, SingularMatrixDetected) {
  GfMatrix m(3, 3);
  // Row 2 = row 0 XOR row 1 -> linearly dependent.
  m.at(0, 0) = 1; m.at(0, 1) = 2; m.at(0, 2) = 3;
  m.at(1, 0) = 4; m.at(1, 1) = 5; m.at(1, 2) = 6;
  for (std::size_t c = 0; c < 3; ++c) m.at(2, c) = m.at(0, c) ^ m.at(1, c);
  GfMatrix inv;
  EXPECT_FALSE(m.invert(inv));
}

TEST(GfMatrixTest, CauchyEverySquareSubmatrixInvertible) {
  // The MDS property: any k rows of [I; Cauchy] are invertible. Verify on
  // the Cauchy part directly for a (8, 8) construction: every square
  // submatrix made of distinct rows/cols must be invertible. Spot-check
  // many random submatrices.
  const std::size_t k = 8, m = 8;
  const GfMatrix cauchy =
      GfMatrix::cauchy(m, k, static_cast<std::uint8_t>(k), 0);
  Rng rng(131);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = 1 + rng.next_below(m);
    // Pick `size` distinct rows and cols.
    std::vector<std::size_t> rows, cols;
    while (rows.size() < size) {
      const std::size_t r = rng.next_below(m);
      if (std::find(rows.begin(), rows.end(), r) == rows.end()) {
        rows.push_back(r);
      }
    }
    while (cols.size() < size) {
      const std::size_t c = rng.next_below(k);
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    GfMatrix sub(size, size);
    for (std::size_t r = 0; r < size; ++r) {
      for (std::size_t c = 0; c < size; ++c) {
        sub.at(r, c) = cauchy.at(rows[r], cols[c]);
      }
    }
    GfMatrix inv;
    ASSERT_TRUE(sub.invert(inv)) << "Cauchy submatrix must be invertible";
  }
}

TEST(GfMatrixTest, SelectRows) {
  GfMatrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    m.at(r, 0) = static_cast<std::uint8_t>(r);
    m.at(r, 1) = static_cast<std::uint8_t>(r * 10);
  }
  const GfMatrix sel = m.select_rows({3, 1});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_EQ(sel.at(0, 1), 30);
  EXPECT_EQ(sel.at(1, 0), 1);
}

}  // namespace
}  // namespace sdr::ec
