// Tests for the discrete-event simulator: event ordering, cancellation,
// channel serialization/propagation timing, drop models.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/channel.hpp"
#include "sim/cross_traffic.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"

namespace sdr::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime{300}, [&] { order.push_back(3); });
  sim.schedule(SimTime{100}, [&] { order.push_back(1); });
  sim.schedule(SimTime{200}, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().ns, 300);
}

TEST(SimulatorTest, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<std::int64_t> times;
  sim.schedule(SimTime{10}, [&] {
    times.push_back(sim.now().ns);
    sim.schedule(SimTime{5}, [&] { times.push_back(sim.now().ns); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<std::int64_t>{10, 15}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(SimTime{10}, [&] { ++fired; });
  sim.schedule(SimTime{20}, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelInvalidIdIsSafe) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
  EXPECT_FALSE(EventId{}.valid());
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(SimTime{10}, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The slot was retired (and may have a new generation); the old handle
  // must be recognized as stale.
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, CancelAfterFireWithSlotReuse) {
  // Fire an event, then schedule another (which reuses the freed slot);
  // the stale handle must not cancel the new occupant.
  Simulator sim;
  int first = 0, second = 0;
  const EventId id = sim.schedule(SimTime{10}, [&] { ++first; });
  sim.run();
  sim.schedule(SimTime{10}, [&] { ++second; });
  EXPECT_FALSE(sim.cancel(id));  // stale: generation moved on
  sim.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(SimulatorTest, RunUntilLeavesCancelledHeadPastDeadline) {
  // Regression for the seed's re-queue path: cancelled events before the
  // deadline used to force a pop of the first live event *past* the
  // deadline, which was then re-inserted — racing any concurrent cancel of
  // that id. The head past the deadline must never be popped at all.
  Simulator sim;
  int fired = 0;
  const EventId before = sim.schedule(SimTime{20}, [&] { ++fired; });
  const EventId after = sim.schedule(SimTime{100}, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(before));
  EXPECT_EQ(sim.run_until(SimTime{50}), 0u);
  EXPECT_EQ(sim.now().ns, 50);
  // The event beyond the deadline is still cancellable exactly once.
  EXPECT_TRUE(sim.cancel(after));
  EXPECT_FALSE(sim.cancel(after));
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, FifoOrderingSurvivesSlotReuse) {
  // Cancelling events frees pool slots; later same-timestamp events reuse
  // them. FIFO ordering is keyed on the schedule sequence, so it must be
  // unaffected by which slot an event happens to occupy.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 8; ++i) {
    cancelled.push_back(sim.schedule(SimTime{50}, [] {}));
  }
  sim.schedule(SimTime{50}, [&] { order.push_back(0); });
  for (const EventId id : cancelled) EXPECT_TRUE(sim.cancel(id));
  // These reuse the 8 freed slots (in LIFO free-list order) yet must fire
  // in scheduling order.
  for (int i = 1; i <= 8; ++i) {
    sim.schedule(SimTime{50}, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, PoolMemoryBoundedByPendingEvents) {
  // The seed kept one tombstone bit per id ever scheduled (unbounded over
  // a long sweep). The pool must stay at the high-water mark of *pending*
  // events regardless of how many schedule/cancel cycles run.
  Simulator sim;
  for (int i = 0; i < 100000; ++i) {
    const EventId id = sim.schedule(SimTime{1000}, [] {});
    EXPECT_TRUE(sim.cancel(id));
  }
  EXPECT_LE(sim.pool_slots(), 4u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimulatorTest, InlineCallableHoldsFullBudget) {
  // A capture at exactly the inline budget must compile and run (anything
  // larger is rejected at compile time by InlineFunction's static_assert).
  Simulator sim;
  struct Blob {
    char data[kEventInlineBytes - sizeof(int*)];
  };
  Blob blob{};
  blob.data[0] = 42;
  int out = 0;
  int* out_ptr = &out;
  sim.schedule(SimTime{1}, [blob, out_ptr] { *out_ptr = blob.data[0]; });
  sim.run();
  EXPECT_EQ(out, 42);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime{10}, [&] { ++fired; });
  sim.schedule(SimTime{20}, [&] { ++fired; });
  sim.schedule(SimTime{30}, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime{20}), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now().ns, 20);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule(SimTime{1}, [&] { ++fired; });
  sim.schedule(SimTime{2}, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, ManyEventsStress) {
  Simulator sim;
  Rng rng(3);
  std::uint64_t executed = 0;
  for (int i = 0; i < 100000; ++i) {
    sim.schedule(SimTime{static_cast<std::int64_t>(rng.next_below(1000000))},
                 [&] { ++executed; });
  }
  sim.run();
  EXPECT_EQ(executed, 100000u);
}

// ---------------------------------------------------------------------------
// Timer-wheel edge cases: overflow horizon, cascades, bucket boundaries.
// ---------------------------------------------------------------------------

TEST(SimulatorTest, FarFutureOverflowFiresInOrderAfterCascades) {
  // Events past the wheel horizon start in the overflow heap, migrate into
  // coarse buckets as the cursor approaches, cascade down to level 0, and
  // must fire in global timestamp order (FIFO among equal timestamps).
  Simulator sim;
  std::vector<int> seen;
  const auto h = static_cast<std::int64_t>(Simulator::kWheelHorizonNs);
  sim.schedule_at(SimTime{3 * h + 123}, [&] { seen.push_back(6); });
  sim.schedule_at(SimTime{h + 7}, [&] { seen.push_back(3); });
  sim.schedule_at(SimTime{h + 7}, [&] { seen.push_back(4); });  // same-ns FIFO
  sim.schedule_at(SimTime{h - 1}, [&] { seen.push_back(2); });  // in-wheel
  sim.schedule_at(SimTime{42}, [&] { seen.push_back(1); });
  sim.schedule_at(SimTime{2 * h}, [&] { seen.push_back(5); });
  EXPECT_EQ(sim.overflow_pending(), 4u);
  EXPECT_EQ(sim.run(), 6u);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(sim.now().ns, 3 * h + 123);
  EXPECT_EQ(sim.overflow_pending(), 0u);
}

TEST(SimulatorTest, CancelHeavyChurnKeepsPoolBounded) {
  // Schedule/cancel churn across both the wheel and the overflow heap:
  // pool slots must track the high-water mark of *live* events (2 here),
  // not the number of events ever scheduled. Stale overflow heap entries
  // are discarded lazily — the next run() sweeps every one of them.
  Simulator sim;
  const auto h = static_cast<std::int64_t>(Simulator::kWheelHorizonNs);
  int fired = 0;
  for (int round = 0; round < 50000; ++round) {
    const EventId near = sim.schedule_at(
        SimTime{100 + (round % 977)}, [&] { ++fired; });
    const EventId far = sim.schedule_at(
        SimTime{h + (round % 4096)}, [&] { ++fired; });
    EXPECT_TRUE(sim.cancel(near));
    EXPECT_TRUE(sim.cancel(far));
  }
  EXPECT_LE(sim.pool_slots(), 4u);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.overflow_pending(), 0u);
}

TEST(SimulatorTest, SameTickFifoAcrossBucketBoundaries) {
  // Two events for tick 197 land in a level-1 bucket (scheduled from t=0,
  // which differs from 197 in the second 6-bit group) and cascade to level
  // 0 when the cursor reaches their 64-tick group; a third is scheduled
  // *inside* that group (from the t=192 handler) straight into the level-0
  // bucket. Scheduling order must survive the cascade.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{197}, [&] { order.push_back(0); });
  sim.schedule_at(SimTime{197}, [&] { order.push_back(1); });
  sim.schedule_at(SimTime{192}, [&] {
    sim.schedule_at(SimTime{197}, [&] { order.push_back(2); });
  });
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, RunUntilExactlyOnBucketEdge) {
  // 64 and 4096 are level-1 / level-2 bucket boundaries: deadlines landing
  // exactly on them must fire boundary events and stop the clock there.
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{63}, [&] { ++fired; });
  sim.schedule_at(SimTime{64}, [&] { ++fired; });
  sim.schedule_at(SimTime{65}, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime{64}), 2u);
  EXPECT_EQ(sim.now().ns, 64);
  sim.schedule_at(SimTime{4096}, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(SimTime{4095}), 1u);  // the event at 65 only
  EXPECT_EQ(sim.now().ns, 4095);
  EXPECT_EQ(sim.run_until(SimTime{4096}), 1u);
  EXPECT_EQ(sim.now().ns, 4096);
  EXPECT_EQ(fired, 4);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorTest, NextDeadlineProbeAndAdvanceNow) {
  // The batched-delivery hooks: next_deadline() answers "does anything fire
  // at or before t" without popping, and advance_now() moves the clock in
  // the gap it vouched for.
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{500}, [&] { ++fired; });
  EXPECT_EQ(sim.next_deadline(SimTime{499}), SimTime::max());
  EXPECT_EQ(sim.next_deadline(SimTime{500}).ns, 500);
  EXPECT_EQ(sim.next_deadline(SimTime{10000}).ns, 500);
  sim.advance_now(SimTime{499});
  EXPECT_EQ(sim.now().ns, 499);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ns, 500);
  EXPECT_EQ(sim.next_deadline(SimTime{1 << 30}), SimTime::max());
}

// ---------------------------------------------------------------------------
// Drop models
// ---------------------------------------------------------------------------

TEST(DropModelTest, IidDropRateConverges) {
  IidDrop model(0.01);
  Rng rng(5);
  int drops = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) drops += model.should_drop(rng, 4096) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.01, 0.002);
}

TEST(DropModelTest, GilbertElliottStationaryLoss) {
  GilbertElliott model(0.001, 0.1, 1e-5, 0.2);
  Rng rng(7);
  model.reset(rng);
  int drops = 0;
  const int n = 1000000;
  for (int i = 0; i < n; ++i) drops += model.should_drop(rng, 4096) ? 1 : 0;
  const double measured = static_cast<double>(drops) / n;
  EXPECT_NEAR(measured, model.stationary_loss(), model.stationary_loss() * 0.3);
}

TEST(DropModelTest, GilbertElliottProducesBursts) {
  // In the bad state losses cluster: the conditional probability of a drop
  // immediately after a drop must exceed the marginal drop rate.
  GilbertElliott model(0.001, 0.05, 0.0, 0.5);
  Rng rng(11);
  model.reset(rng);
  int drops = 0, pairs = 0, after_drop = 0;
  bool prev = false;
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    const bool d = model.should_drop(rng, 4096);
    if (prev) {
      ++pairs;
      after_drop += d ? 1 : 0;
    }
    drops += d ? 1 : 0;
    prev = d;
  }
  const double marginal = static_cast<double>(drops) / n;
  const double conditional = static_cast<double>(after_drop) / pairs;
  EXPECT_GT(conditional, 3.0 * marginal);
}

TEST(DropModelTest, CongestionDropSizeCorrelation) {
  // Larger packets must observe higher drop probability (Fig 2 trend).
  CongestionDrop model(CongestionDrop::Params{});
  Rng rng(13);
  model.reset(rng);
  EXPECT_GT(model.drop_probability(8192), model.drop_probability(1024));
}

TEST(DropModelTest, CongestionDropTrialVariability) {
  // Across trials the drop probability must span orders of magnitude
  // (paper Fig 2: three decades for a fixed payload).
  CongestionDrop model(CongestionDrop::Params{});
  Rng rng(17);
  double mn = 1.0, mx = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    model.reset(rng);
    const double p = model.drop_probability(1024);
    mn = std::min(mn, p);
    mx = std::max(mx, p);
  }
  EXPECT_GT(mx / std::max(mn, 1e-12), 100.0);
}

// ---------------------------------------------------------------------------
// Channel
// ---------------------------------------------------------------------------

Channel::Config test_channel_config() {
  Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 350.0;
  cfg.seed = 99;
  return cfg;
}

TEST(ChannelTest, SerializationPlusPropagationTiming) {
  Simulator sim;
  Channel ch(sim, test_channel_config(), std::make_unique<IidDrop>(0.0));
  SimTime arrival{0};
  ch.set_receiver([&](Packet&&) { arrival = sim.now(); });

  Packet p;
  p.bytes = 125000;  // 1 Mbit -> 10 us at 100 Gbit/s
  ch.send(std::move(p));
  sim.run();

  const double expected =
      injection_time_s(125000, 100 * Gbps) + propagation_delay_s(350.0);
  EXPECT_NEAR(arrival.seconds(), expected, 1e-9);
}

TEST(ChannelTest, BackToBackPacketsQueueOnTheWire) {
  Simulator sim;
  Channel ch(sim, test_channel_config(), std::make_unique<IidDrop>(0.0));
  std::vector<double> arrivals;
  ch.set_receiver([&](Packet&&) { arrivals.push_back(sim.now().seconds()); });

  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.bytes = 125000;
    ch.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 3u);
  const double ser = injection_time_s(125000, 100 * Gbps);
  EXPECT_NEAR(arrivals[1] - arrivals[0], ser, 1e-12);
  EXPECT_NEAR(arrivals[2] - arrivals[1], ser, 1e-12);
}

TEST(ChannelTest, DropsMatchConfiguredRate) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.05));
  int delivered = 0;
  ch.set_receiver([&](Packet&&) { ++delivered; });
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.bytes = 1500;
    ch.send(std::move(p));
  }
  sim.run();
  EXPECT_NEAR(ch.stats().drop_rate(), 0.05, 0.005);
  EXPECT_EQ(delivered + static_cast<int>(ch.stats().dropped_packets), n);
  EXPECT_EQ(ch.stats().sent_packets, static_cast<std::uint64_t>(n));
}

TEST(ChannelTest, DroppedPacketsStillConsumeWireTime) {
  // A dropped packet occupies the serializer: the wire stays busy exactly
  // as if the drop had not happened ("the bits still occupied the wire").
  Simulator sim;
  Channel lossy(sim, test_channel_config(), std::make_unique<IidDrop>(1.0));
  int delivered = 0;
  lossy.set_receiver([&](Packet&&) { ++delivered; });
  Packet p1;
  p1.bytes = 125000;
  lossy.send(std::move(p1));
  EXPECT_NEAR(lossy.next_free().seconds(),
              injection_time_s(125000, 100 * Gbps), 1e-12);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(lossy.stats().dropped_packets, 1u);
}

TEST(ChannelTest, ReorderingAddsDelay) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  cfg.reorder_probability = 1.0;
  cfg.reorder_extra_delay_s = 0.001;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  SimTime arrival{0};
  ch.set_receiver([&](Packet&&) { arrival = sim.now(); });
  Packet p;
  p.bytes = 1500;
  ch.send(std::move(p));
  sim.run();
  const double base =
      injection_time_s(1500, 100 * Gbps) + propagation_delay_s(350.0);
  EXPECT_NEAR(arrival.seconds(), base + 0.001, 1e-9);
  EXPECT_EQ(ch.stats().reordered_packets, 1u);
}

TEST(ChannelTest, DuplicationDeliversTwice) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  cfg.duplicate_probability = 1.0;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  int deliveries = 0;
  ch.set_receiver([&](Packet&&) { ++deliveries; });
  Packet p;
  p.bytes = 1000;
  ch.send(std::move(p));
  sim.run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(ch.stats().duplicated_packets, 1u);
  EXPECT_EQ(ch.stats().delivered_packets, 2u);
}

TEST(ChannelTest, DuplicationRateConverges) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  cfg.duplicate_probability = 0.1;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  int deliveries = 0;
  ch.set_receiver([&](Packet&&) { ++deliveries; });
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.bytes = 100;
    ch.send(std::move(p));
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(deliveries) / n, 1.1, 0.01);
}

// ---------------------------------------------------------------------------
// Queue-based congestion (tail drop) + cross traffic
// ---------------------------------------------------------------------------

TEST(QueueTest, NoDropsUnderCapacity) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  cfg.queue_capacity_bytes = 1 << 20;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  int delivered = 0;
  ch.set_receiver([&](Packet&&) { ++delivered; });
  // 100 x 1 KiB back to back: backlog peaks at ~100 KiB < 1 MiB capacity.
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.bytes = 1024;
    ch.send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(ch.stats().queue_drops, 0u);
}

TEST(QueueTest, TailDropWhenSaturated) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  cfg.queue_capacity_bytes = 16 * 1024;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  int delivered = 0;
  ch.set_receiver([&](Packet&&) { ++delivered; });
  // Burst of 64 KiB into a 16 KiB buffer: most of it tail-drops.
  for (int i = 0; i < 64; ++i) {
    Packet p;
    p.bytes = 1024;
    ch.send(std::move(p));
  }
  sim.run();
  EXPECT_GT(ch.stats().queue_drops, 40u);
  EXPECT_LT(delivered, 20);
  EXPECT_EQ(ch.stats().queue_drops + delivered, 64u);
}

TEST(QueueTest, BacklogReportsAndDrains) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  ch.set_receiver([](Packet&&) {});
  Packet p;
  p.bytes = 125000;  // 10 us at 100G
  ch.send(std::move(p));
  EXPECT_NEAR(static_cast<double>(ch.queue_backlog_bytes()), 125000.0,
              125000.0 * 0.01);
  sim.run();
  EXPECT_EQ(ch.queue_backlog_bytes(), 0u);
}

TEST(CrossTrafficTest, CongestionDropsGrowWithPacketSize) {
  // The Fig 2 mechanism: under bursty cross traffic and a bounded buffer,
  // larger foreground packets see higher loss.
  auto loss_for = [&](std::size_t fg_bytes) {
    Simulator sim;
    Channel::Config cfg;
    cfg.bandwidth_bps = 100 * Gbps;
    cfg.distance_km = 350.0;
    cfg.queue_capacity_bytes = 64 * 1024;
    cfg.seed = 2;
    Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
    ch.set_receiver([](Packet&&) {});
    CrossTraffic::Params params;
    params.burst_load = 0.98;
    params.packet_bytes = 8192;
    CrossTraffic bg(sim, ch, params);
    bg.start(SimTime::from_millis(50));

    // Foreground: one packet every 5 us.
    const int fg_packets = 5000;
    std::uint64_t fg_drops = 0;
    for (int i = 0; i < fg_packets; ++i) {
      sim.schedule_at(SimTime::from_micros(5.0 * i), [&, fg_bytes] {
        const std::uint64_t before = ch.stats().queue_drops;
        Packet p;
        p.bytes = fg_bytes;
        ch.send(std::move(p));
        fg_drops += ch.stats().queue_drops - before;
      });
    }
    sim.run();
    return static_cast<double>(fg_drops) / fg_packets;
  };

  const double small_loss = loss_for(1024);
  const double big_loss = loss_for(8192);
  EXPECT_GT(big_loss, small_loss) << "larger packets must drop more";
  EXPECT_GT(big_loss, 0.0);
}

TEST(DuplexLinkTest, RttIsTwicePropagation) {
  Simulator sim;
  auto link = make_iid_link(sim, test_channel_config(), 0.0, 0.0);
  EXPECT_NEAR(link->rtt_s(), 2.0 * propagation_delay_s(350.0), 1e-12);
}

TEST(DuplexLinkTest, IndependentDirections) {
  Simulator sim;
  Channel::Config cfg = test_channel_config();
  auto link = std::make_unique<DuplexLink>(
      sim, cfg, std::make_unique<IidDrop>(1.0), std::make_unique<IidDrop>(0.0));
  int fwd = 0, bwd = 0;
  link->forward().set_receiver([&](Packet&&) { ++fwd; });
  link->backward().set_receiver([&](Packet&&) { ++bwd; });
  for (int i = 0; i < 100; ++i) {
    Packet a;
    a.bytes = 100;
    link->forward().send(std::move(a));
    Packet b;
    b.bytes = 100;
    link->backward().send(std::move(b));
  }
  sim.run();
  EXPECT_EQ(fwd, 0);
  EXPECT_EQ(bwd, 100);
}

TEST(ScriptedDropTest, DropsExactlyTheScriptedIndices) {
  Rng rng(1);
  ScriptedDrop drop({1, 3});
  std::vector<bool> fates;
  for (int i = 0; i < 5; ++i) fates.push_back(drop.should_drop(rng, 100));
  EXPECT_EQ(fates, (std::vector<bool>{false, true, false, true, false}));
  EXPECT_EQ(drop.unused_count(), 0u);
  EXPECT_TRUE(drop.unused_indices().empty());
}

TEST(ScriptedDropTest, ReportsIndicesPastTheLastSend) {
  // A scripted index the traffic never reaches is almost always a test
  // author's arithmetic error (the "drop packet 40" of a 30-packet run
  // silently tests nothing) — it must be observable, not ignored.
  Rng rng(1);
  ScriptedDrop drop({0, 7, 9});
  for (int i = 0; i < 5; ++i) drop.should_drop(rng, 100);
  EXPECT_EQ(drop.packets_seen(), 5u);
  EXPECT_EQ(drop.unused_count(), 2u);
  EXPECT_EQ(drop.unused_indices(), (std::vector<std::uint64_t>{7, 9}));
}

TEST(ScriptedDropTest, UnusedTracksTheHighWaterAcrossTrials) {
  Rng rng(1);
  ScriptedDrop drop({2, 6});
  for (int i = 0; i < 7; ++i) drop.should_drop(rng, 100);  // reaches 6
  drop.reset(rng);
  for (int i = 0; i < 3; ++i) drop.should_drop(rng, 100);  // shorter trial
  // Index 6 was consumed in the first trial; the short second trial must
  // not resurrect it as "unused".
  EXPECT_EQ(drop.unused_count(), 0u);
  drop.reset(rng);
  EXPECT_EQ(drop.unused_count(), 0u);
}

}  // namespace
}  // namespace sdr::sim
