// Tests for the software RDMA device: memory registration & indirect keys,
// UC ePSN semantics (the paper's §2.3/§3.2.1 design rationale), UD
// datagrams, RC Go-Back-N reliability.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sim/simulator.hpp"
#include "verbs/cq.hpp"
#include "verbs/mr.hpp"
#include "verbs/nic.hpp"
#include "verbs/qp.hpp"

namespace sdr::verbs {
namespace {

sim::Channel::Config fast_link() {
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 7;
  return cfg;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Memory registration
// ---------------------------------------------------------------------------

TEST(MrTest, RegisterAndResolve) {
  ProtectionDomain pd;
  std::vector<std::uint8_t> buf(4096);
  const MemoryRegion* mr = pd.register_mr(buf.data(), buf.size());
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->length(), 4096u);
  EXPECT_FALSE(mr->is_null());

  const ResolvedAccess ok = pd.resolve(mr->rkey(), 100, 200);
  EXPECT_TRUE(ok.valid);
  EXPECT_EQ(ok.addr, buf.data() + 100);
  EXPECT_FALSE(ok.discard);

  const ResolvedAccess oob = pd.resolve(mr->rkey(), 4000, 200);
  EXPECT_FALSE(oob.valid);

  const ResolvedAccess badkey = pd.resolve(0xdeadbeef, 0, 16);
  EXPECT_FALSE(badkey.valid);
}

TEST(MrTest, DeregisterInvalidatesKey) {
  ProtectionDomain pd;
  std::vector<std::uint8_t> buf(256);
  const MemoryRegion* mr = pd.register_mr(buf.data(), buf.size());
  const MemoryKey rkey = mr->rkey();
  EXPECT_TRUE(pd.deregister_mr(mr).is_ok());
  EXPECT_FALSE(pd.resolve(rkey, 0, 16).valid);
  EXPECT_EQ(pd.deregister_mr(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(MrTest, NullMrDiscardsButCompletes) {
  ProtectionDomain pd;
  const MemoryRegion* null_mr = pd.alloc_null_mr();
  EXPECT_TRUE(null_mr->is_null());
  const ResolvedAccess acc = pd.resolve(null_mr->rkey(), 12345, 100000);
  EXPECT_TRUE(acc.valid);
  EXPECT_TRUE(acc.discard);
  EXPECT_EQ(acc.addr, nullptr);
}

TEST(IndirectMkeyTest, ZeroBasedSlotAddressing) {
  // Figure 5: message i targets [i*M, i*M + M).
  ProtectionDomain pd;
  std::vector<std::uint8_t> buf_a(1024), buf_b(1024);
  const MemoryRegion* mra = pd.register_mr(buf_a.data(), buf_a.size());
  const MemoryRegion* mrb = pd.register_mr(buf_b.data(), buf_b.size());
  IndirectMkeyTable* table = pd.create_indirect_table(4, 1024);

  ASSERT_TRUE(table->bind(0, mra, 0).is_ok());
  ASSERT_TRUE(table->bind(2, mrb, 0).is_ok());

  const ResolvedAccess a = pd.resolve(table->key(), 100, 16);
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.addr, buf_a.data() + 100);

  const ResolvedAccess b = pd.resolve(table->key(), 2 * 1024 + 8, 16);
  EXPECT_TRUE(b.valid);
  EXPECT_EQ(b.addr, buf_b.data() + 8);

  // Unbound slot fails.
  EXPECT_FALSE(pd.resolve(table->key(), 1 * 1024, 16).valid);
  // Beyond table fails.
  EXPECT_FALSE(pd.resolve(table->key(), 4 * 1024, 16).valid);
}

TEST(IndirectMkeyTest, SlotStraddleRejected) {
  ProtectionDomain pd;
  std::vector<std::uint8_t> buf(2048);
  const MemoryRegion* mr = pd.register_mr(buf.data(), buf.size());
  IndirectMkeyTable* table = pd.create_indirect_table(2, 1024);
  table->bind(0, mr, 0);
  table->bind(1, mr, 1024);
  EXPECT_TRUE(pd.resolve(table->key(), 1000, 24).valid);
  EXPECT_FALSE(pd.resolve(table->key(), 1000, 25).valid);  // straddles
}

TEST(IndirectMkeyTest, NullRebindDiscards) {
  ProtectionDomain pd;
  std::vector<std::uint8_t> buf(1024);
  const MemoryRegion* mr = pd.register_mr(buf.data(), buf.size());
  const MemoryRegion* null_mr = pd.alloc_null_mr();
  IndirectMkeyTable* table = pd.create_indirect_table(2, 1024);
  table->bind(0, mr, 0);
  EXPECT_FALSE(pd.resolve(table->key(), 0, 8).discard);
  table->bind_null(0, null_mr);
  const ResolvedAccess acc = pd.resolve(table->key(), 0, 8);
  EXPECT_TRUE(acc.valid);
  EXPECT_TRUE(acc.discard);
}

TEST(IndirectMkeyTest, BindOutOfRangeSlot) {
  ProtectionDomain pd;
  IndirectMkeyTable* table = pd.create_indirect_table(2, 1024);
  const MemoryRegion* null_mr = pd.alloc_null_mr();
  EXPECT_EQ(table->bind_null(5, null_mr).code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Fixture: two NICs on a configurable link
// ---------------------------------------------------------------------------

class QpFixture : public ::testing::Test {
 protected:
  void connect(double p_drop_fwd, double p_drop_bwd = 0.0,
               sim::Channel::Config cfg = fast_link()) {
    pair_ = make_connected_pair(sim_, cfg, p_drop_fwd, p_drop_bwd);
  }

  Qp* make_qp(Nic& nic, QpType type, CompletionQueue* send_cq,
              CompletionQueue* recv_cq, std::size_t mtu = 1024) {
    QpConfig cfg;
    cfg.type = type;
    cfg.mtu = mtu;
    cfg.send_cq = send_cq;
    cfg.recv_cq = recv_cq;
    cfg.rc_ack_timeout_s = 0.01;
    return nic.create_qp(cfg);
  }

  sim::Simulator sim_;
  NicPair pair_;
};

// ---------------------------------------------------------------------------
// UD
// ---------------------------------------------------------------------------

TEST_F(QpFixture, UdDatagramDelivery) {
  connect(0.0);
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUD, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUD, nullptr, &rx_cq);

  std::vector<std::uint8_t> recv_buf(512);
  RecvWr rwr;
  rwr.wr_id = 77;
  rwr.addr = recv_buf.data();
  rwr.length = recv_buf.size();
  rx->post_recv(rwr);

  const auto msg = pattern(256);
  SendWr swr;
  swr.local_addr = msg.data();
  swr.length = msg.size();
  swr.with_imm = true;
  swr.imm = 0xabcd1234;
  swr.dst_nic = pair_.b->id();
  swr.dst_qp = rx->num();
  ASSERT_TRUE(tx->post_send(swr).is_ok());
  sim_.run();

  ASSERT_EQ(rx_cq.size(), 1u);
  const Cqe cqe = *rx_cq.poll_one();
  EXPECT_EQ(cqe.wr_id, 77u);
  EXPECT_EQ(cqe.byte_len, 256u);
  EXPECT_TRUE(cqe.imm_valid);
  EXPECT_EQ(cqe.imm, 0xabcd1234u);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), msg.size()), 0);
}

TEST_F(QpFixture, UdReceiverNotReadyDrops) {
  connect(0.0);
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUD, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUD, nullptr, &rx_cq);

  const auto msg = pattern(64);
  SendWr swr;
  swr.local_addr = msg.data();
  swr.length = msg.size();
  swr.dst_nic = pair_.b->id();
  swr.dst_qp = rx->num();
  tx->post_send(swr);  // no posted receive
  sim_.run();
  EXPECT_EQ(rx_cq.size(), 0u);
  EXPECT_EQ(rx->stats().packets_discarded, 1u);
}

TEST_F(QpFixture, UdRejectsOversizedSend) {
  connect(0.0);
  Qp* tx = make_qp(*pair_.a, QpType::kUD, nullptr, nullptr, 1024);
  std::vector<std::uint8_t> big(2048);
  SendWr swr;
  swr.local_addr = big.data();
  swr.length = big.size();
  swr.dst_qp = 1;
  EXPECT_EQ(tx->post_send(swr).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// UC
// ---------------------------------------------------------------------------

TEST_F(QpFixture, UcMultiPacketWriteDelivers) {
  connect(0.0);
  CompletionQueue tx_cq, rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUC, &tx_cq, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());

  std::vector<std::uint8_t> dst(8192, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(5000);

  WriteWr wr;
  wr.wr_id = 5;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.remote_offset = 100;
  wr.with_imm = true;
  wr.imm = 42;
  ASSERT_TRUE(tx->post_write(wr).is_ok());
  sim_.run();

  // 5000 bytes at MTU 1024 -> 5 packets; payload placed at offset 100.
  EXPECT_EQ(std::memcmp(dst.data() + 100, src.data(), src.size()), 0);
  ASSERT_EQ(rx_cq.size(), 1u);
  const Cqe cqe = *rx_cq.poll_one();
  EXPECT_TRUE(cqe.imm_valid);
  EXPECT_EQ(cqe.imm, 42u);
  EXPECT_EQ(cqe.byte_len, 5000u);
  // Local send completion at injection.
  EXPECT_EQ(tx_cq.size(), 1u);
}

TEST_F(QpFixture, UcPlainWriteRaisesNoReceiverCqe) {
  connect(0.0);
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());

  std::vector<std::uint8_t> dst(4096, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(1000);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = false;
  tx->post_write(wr);
  sim_.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_EQ(rx_cq.size(), 0u);  // no immediate, no consumer-side CQE
}

TEST_F(QpFixture, UcDropsWholeMessageOnMidMessageLoss) {
  // Paper §2.3: "If at least one packet within the UC message is dropped,
  // the whole message will be dropped" — no CQE is raised.
  connect(0.10);  // 10% per-packet loss
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());

  std::vector<std::uint8_t> dst(64 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(32 * 1024);  // 32 packets at 1 KiB MTU

  const int messages = 300;
  for (int i = 0; i < messages; ++i) {
    WriteWr wr;
    wr.local_addr = src.data();
    wr.length = src.size();
    wr.rkey = mr->rkey();
    wr.with_imm = true;
    wr.imm = static_cast<std::uint32_t>(i);
    tx->post_write(wr);
  }
  sim_.run();

  // P(message survives) = 0.9^32 ~ 3.4%; far fewer CQEs than messages, and
  // every drop is a whole-message drop.
  EXPECT_LT(rx_cq.size(), 40u);
  EXPECT_GT(rx->stats().messages_dropped_epsn, 200u);
  // All delivered CQEs carry the full message length.
  while (auto cqe = rx_cq.poll_one()) {
    EXPECT_EQ(cqe->byte_len, src.size());
  }
}

TEST_F(QpFixture, UcSinglePacketMessagesSurviveLoss) {
  // The SDR backend's counter-design: one Write-with-imm per packet makes
  // every packet its own message, so each loss costs exactly one packet.
  connect(0.10);
  CompletionQueue rx_cq(1 << 14);
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());

  std::vector<std::uint8_t> dst(1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(1024);

  const int packets = 3000;
  for (int i = 0; i < packets; ++i) {
    WriteWr wr;
    wr.local_addr = src.data();
    wr.length = 1024;  // exactly one packet
    wr.rkey = mr->rkey();
    wr.with_imm = true;
    wr.imm = static_cast<std::uint32_t>(i);
    tx->post_write(wr);
  }
  sim_.run();
  // ~90% of single-packet messages arrive.
  EXPECT_NEAR(static_cast<double>(rx_cq.size()), 2700.0, 120.0);
  EXPECT_EQ(rx->stats().messages_dropped_epsn, 0u);
}

TEST_F(QpFixture, UcRemoteAccessErrorDropsSilently) {
  connect(0.0);
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());
  const auto src = pattern(512);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = 0xbad;  // unknown key
  wr.with_imm = true;
  tx->post_write(wr);
  sim_.run();
  EXPECT_EQ(rx_cq.size(), 0u);
  EXPECT_EQ(rx->stats().remote_access_errors, 1u);
}

TEST_F(QpFixture, WriteRequiresConnection) {
  connect(0.0);
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  const auto src = pattern(64);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  EXPECT_EQ(tx->post_write(wr).code(), StatusCode::kNotConnected);
}

TEST_F(QpFixture, WriteRejectedOnUd) {
  connect(0.0);
  Qp* tx = make_qp(*pair_.a, QpType::kUD, nullptr, nullptr);
  const auto src = pattern(64);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  EXPECT_EQ(tx->post_write(wr).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// RC (Go-Back-N baseline)
// ---------------------------------------------------------------------------

TEST_F(QpFixture, RcDeliversLosslessly) {
  connect(0.0);
  CompletionQueue tx_cq, rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kRC, &tx_cq, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kRC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());
  rx->connect(pair_.a->id(), tx->num());

  std::vector<std::uint8_t> dst(16 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(10000);
  WriteWr wr;
  wr.wr_id = 9;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim_.run();

  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  ASSERT_EQ(tx_cq.size(), 1u);  // completion after the cumulative ACK
  EXPECT_EQ(tx_cq.poll_one()->status, WcStatus::kSuccess);
  EXPECT_EQ(rx_cq.size(), 1u);
}

TEST_F(QpFixture, RcRecoversFromLoss) {
  connect(0.05, 0.0);
  CompletionQueue tx_cq, rx_cq(1 << 12);
  Qp* tx = make_qp(*pair_.a, QpType::kRC, &tx_cq, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kRC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());
  rx->connect(pair_.a->id(), tx->num());

  std::vector<std::uint8_t> dst(256 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(200 * 1024);  // 200 packets at 1 KiB
  WriteWr wr;
  wr.wr_id = 1;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim_.run();

  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0)
      << "RC must deliver the exact payload despite 5% loss";
  ASSERT_EQ(tx_cq.size(), 1u);
  EXPECT_EQ(tx_cq.poll_one()->status, WcStatus::kSuccess);
  EXPECT_GT(tx->stats().rc_retransmissions, 0u);
}

TEST_F(QpFixture, RcGivesUpAfterRetryLimit) {
  connect(1.0, 0.0);  // black hole
  CompletionQueue tx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kRC, &tx_cq, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kRC, nullptr, nullptr);
  tx->connect(pair_.b->id(), rx->num());
  rx->connect(pair_.a->id(), tx->num());

  const auto src = pattern(512);
  std::vector<std::uint8_t> dst(1024);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  WriteWr wr;
  wr.wr_id = 3;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim_.run();

  ASSERT_EQ(tx_cq.size(), 1u);
  EXPECT_EQ(tx_cq.poll_one()->status, WcStatus::kRetryExceeded);
}

TEST_F(QpFixture, RcManyMessagesUnderLossAllComplete) {
  connect(0.02, 0.01);  // losses in both directions (ACKs too)
  CompletionQueue tx_cq(1 << 12), rx_cq(1 << 12);
  Qp* tx = make_qp(*pair_.a, QpType::kRC, &tx_cq, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kRC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());
  rx->connect(pair_.a->id(), tx->num());

  std::vector<std::uint8_t> dst(8 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(4096);
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    WriteWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i);
    wr.local_addr = src.data();
    wr.length = src.size();
    wr.rkey = mr->rkey();
    wr.with_imm = true;
    tx->post_write(wr);
  }
  sim_.run();
  int successes = 0;
  while (auto cqe = tx_cq.poll_one()) {
    successes += (cqe->status == WcStatus::kSuccess) ? 1 : 0;
  }
  EXPECT_EQ(successes, n);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

// ---------------------------------------------------------------------------
// RC (hardware Selective Repeat mode)
// ---------------------------------------------------------------------------

class RcSrFixture : public QpFixture {
 protected:
  void make_rc_pair(double p_drop, RcMode mode,
                    sim::Channel::Config cfg = fast_link()) {
    connect(p_drop, 0.0, cfg);
    QpConfig qcfg;
    qcfg.type = QpType::kRC;
    qcfg.mtu = 1024;
    qcfg.rc_mode = mode;
    qcfg.rc_ack_timeout_s = 0.01;
    qcfg.send_cq = &tx_cq_;
    tx_ = pair_.a->create_qp(qcfg);
    qcfg.send_cq = nullptr;
    qcfg.recv_cq = &rx_cq_;
    rx_ = pair_.b->create_qp(qcfg);
    tx_->connect(pair_.b->id(), rx_->num());
    rx_->connect(pair_.a->id(), tx_->num());
  }

  CompletionQueue tx_cq_{1 << 12};
  CompletionQueue rx_cq_{1 << 12};
  Qp* tx_{nullptr};
  Qp* rx_{nullptr};
};

TEST_F(RcSrFixture, SelectiveRepeatDeliversUnderLoss) {
  make_rc_pair(0.05, RcMode::kSelectiveRepeat);
  std::vector<std::uint8_t> dst(256 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(200 * 1024);
  WriteWr wr;
  wr.wr_id = 1;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx_->post_write(wr);
  sim_.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  ASSERT_EQ(tx_cq_.size(), 1u);
  EXPECT_EQ(tx_cq_.poll_one()->status, WcStatus::kSuccess);
  EXPECT_EQ(rx_cq_.size(), 1u);
}

TEST_F(RcSrFixture, SelectiveRepeatRetransmitsLessThanGoBackN) {
  // Same seed/loss: GBN rewinds whole windows; SR resends only the missing
  // packets.
  std::uint64_t retrans[2] = {0, 0};
  int idx = 0;
  for (const RcMode mode : {RcMode::kGoBackN, RcMode::kSelectiveRepeat}) {
    make_rc_pair(0.03, mode);
    std::vector<std::uint8_t> dst(512 * 1024, 0);
    const MemoryRegion* mr =
        pair_.b->pd().register_mr(dst.data(), dst.size());
    const auto src = pattern(400 * 1024);  // 400 packets
    WriteWr wr;
    wr.local_addr = src.data();
    wr.length = src.size();
    wr.rkey = mr->rkey();
    wr.with_imm = true;
    tx_->post_write(wr);
    sim_.run();
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
    retrans[idx++] = tx_->stats().rc_retransmissions;
  }
  EXPECT_GT(retrans[0], retrans[1])
      << "GBN=" << retrans[0] << " SR=" << retrans[1];
  EXPECT_GT(retrans[1], 0u);
}

TEST_F(RcSrFixture, SelectiveRepeatToleratesReordering) {
  // A reordering (multi-path-like) fabric: SR places out-of-order packets
  // without any retransmission; GBN on the same fabric retransmits.
  sim::Channel::Config cfg = fast_link();
  cfg.reorder_probability = 0.05;
  cfg.reorder_extra_delay_s = 20e-6;

  make_rc_pair(0.0, RcMode::kSelectiveRepeat, cfg);
  std::vector<std::uint8_t> dst(256 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(200 * 1024);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx_->post_write(wr);
  sim_.run();
  ASSERT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  const std::uint64_t sr_retrans = tx_->stats().rc_retransmissions;

  make_rc_pair(0.0, RcMode::kGoBackN, cfg);
  std::vector<std::uint8_t> dst2(256 * 1024, 0);
  const MemoryRegion* mr2 =
      pair_.b->pd().register_mr(dst2.data(), dst2.size());
  WriteWr wr2;
  wr2.local_addr = src.data();
  wr2.length = src.size();
  wr2.rkey = mr2->rkey();
  wr2.with_imm = true;
  tx_->post_write(wr2);
  sim_.run();
  ASSERT_EQ(std::memcmp(dst2.data(), src.data(), src.size()), 0);
  const std::uint64_t gbn_retrans = tx_->stats().rc_retransmissions;

  EXPECT_GT(gbn_retrans, sr_retrans);
}

TEST_F(RcSrFixture, InOrderCompletionDeliveryAcrossMessages) {
  // Two messages; packets of the second may arrive while the first has a
  // hole. CQEs must still be delivered in posting order.
  make_rc_pair(0.05, RcMode::kSelectiveRepeat);
  std::vector<std::uint8_t> dst(64 * 1024, 0);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(16 * 1024);
  for (int i = 0; i < 4; ++i) {
    WriteWr wr;
    wr.local_addr = src.data();
    wr.length = src.size();
    wr.rkey = mr->rkey();
    wr.with_imm = true;
    wr.imm = static_cast<std::uint32_t>(i);
    tx_->post_write(wr);
  }
  sim_.run();
  ASSERT_EQ(rx_cq_.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto cqe = rx_cq_.poll_one();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->imm, i) << "completions must be delivered in order";
  }
}

// ---------------------------------------------------------------------------
// NIC routing
// ---------------------------------------------------------------------------

TEST_F(QpFixture, UnroutablePacketsCounted) {
  connect(0.0);
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  tx->connect(999, 1);  // no route to nic 999
  const auto src = pattern(64);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  tx->post_write(wr);
  sim_.run();
  EXPECT_EQ(pair_.a->unroutable_packets(), 1u);
}

TEST_F(QpFixture, PacketsForDestroyedQpDropped) {
  connect(0.0);
  CompletionQueue rx_cq;
  Qp* tx = make_qp(*pair_.a, QpType::kUC, nullptr, nullptr);
  Qp* rx = make_qp(*pair_.b, QpType::kUC, nullptr, &rx_cq);
  tx->connect(pair_.b->id(), rx->num());
  std::vector<std::uint8_t> dst(1024);
  const MemoryRegion* mr = pair_.b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(256);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  pair_.b->destroy_qp(rx->num());  // destroy before delivery
  sim_.run();
  EXPECT_EQ(pair_.b->unknown_qp_packets(), 1u);
}

}  // namespace
}  // namespace sdr::verbs
