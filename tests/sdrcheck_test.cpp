// sdrcheck harness self-tests.
//
// Locks in the contracts the CI fuzz jobs rely on:
//  * seed -> scenario mapping is pinned (a CI seed replays bit-for-bit
//    locally; the underlying xoshiro256** vectors are pinned in
//    common_test),
//  * the shrink ladder is deterministic and monotone,
//  * a 200-seed smoke batch passes every oracle (the tier-1 gate),
//  * serial and parallel sweeps produce byte-identical records,
//  * an intentionally injected protocol bug (off-by-one in the SR bitmap
//    ACK's cumulative field, armed via a failpoint) is caught by the
//    oracles and shrunk to a small repro,
//  * repeated runs do not grow live heap allocations (leak oracle on the
//    harness itself, same global operator-new hook as datapath_alloc_test
//    but tracking live count rather than allocation count).
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "check/runner.hpp"
#include "check/scenario.hpp"
#include "common/failpoint.hpp"
#include "common/units.hpp"

// ---------------------------------------------------------------------------
// Global live-allocation counter. gtest and the harness allocate freely;
// tests only compare snapshots around identical repeated runs.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::int64_t> g_live{0};
}  // namespace

void* operator new(std::size_t n) {
  g_live.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_live.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(a);
  if (void* p = std::aligned_alloc(align, (n + align - 1) & ~(align - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
// Nothrow variants must be replaced too: std::stable_sort's temporary
// buffer allocates through nothrow new, and under ASan the unreplaced
// interceptor would pair with our free-based delete as a mismatch.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_live.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  g_live.fetch_add(1, std::memory_order_relaxed);
  const std::size_t align = static_cast<std::size_t>(a);
  return std::aligned_alloc(align, (n + align - 1) & ~(align - 1));
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t& t) noexcept {
  return ::operator new(n, a, t);
}
void operator delete(void* p) noexcept {
  if (p) g_live.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

namespace sdr::check {
namespace {

// Base seed shared with the CI smoke job (the CLI default).
constexpr std::uint64_t kSmokeBaseSeed = 0x5EED5EED5EED5EEDULL;

TEST(Scenario, SeedMappingIsPinned) {
  // Golden pin of generate_scenario(1): any change to the generator's draw
  // order or the RNG breaks seed reproducibility for recorded CI failures
  // and must be a conscious, version-noted decision.
  const Scenario s = generate_scenario(1);
  EXPECT_DOUBLE_EQ(s.bandwidth_bps, 400 * Gbps);
  EXPECT_EQ(s.mtu, 512u);
  EXPECT_EQ(s.packets_per_chunk, 1u);
  ASSERT_EQ(s.messages.size(), 2u);
  EXPECT_EQ(s.messages[0].chunks, 7u);
  EXPECT_EQ(s.messages[1].chunks, 23u);
  EXPECT_EQ(s.drop, DropKind::kIid);
  EXPECT_NEAR(s.iid_p, 0.04013, 1e-4);
  EXPECT_EQ(s.sr_flavor, SrFlavor::kNack);
  EXPECT_FALSE(s.adaptive_rto);
  EXPECT_EQ(s.ec_k, 4u);
  EXPECT_EQ(s.ec_m, 2u);
  EXPECT_TRUE(s.rc_go_back_n);
  EXPECT_TRUE(s.perturb_rto);
}

TEST(Scenario, GenerationIsDeterministic) {
  for (std::uint64_t seed : {0ull, 7ull, 42ull, 0xDEADBEEFull}) {
    EXPECT_EQ(generate_scenario(seed).describe(),
              generate_scenario(seed).describe())
        << "seed " << seed;
  }
}

TEST(Scenario, ShrinkLadderIsDeterministicAndMonotone) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const Scenario full = generate_scenario(seed);
    std::size_t prev_msgs = full.messages.size() + 1;
    std::size_t prev_chunks = full.total_chunks() + 1;
    bool reached_fixpoint = false;
    for (int level = 0; level <= 32; ++level) {
      const Scenario a = shrink_scenario(full, level);
      const Scenario b = shrink_scenario(full, level);
      ASSERT_EQ(a.describe(), b.describe()) << "seed " << seed;
      ASSERT_LE(a.messages.size(), prev_msgs);
      ASSERT_LE(a.total_chunks(), prev_chunks);
      if (a.drop == DropKind::kScripted) {
        ASSERT_GE(a.scripted_drops.size(), 1u) << "seed " << seed;
        for (const std::uint64_t idx : a.scripted_drops) {
          ASSERT_LT(idx, a.total_data_packets()) << "seed " << seed;
        }
      }
      prev_msgs = a.messages.size();
      prev_chunks = a.total_chunks();
      if (fully_shrunk(a)) {
        reached_fixpoint = true;
        // Fully shrunk means a single 1-chunk message.
        ASSERT_EQ(a.messages.size(), 1u);
        ASSERT_EQ(a.messages[0].chunks, 1u);
        break;
      }
    }
    ASSERT_TRUE(reached_fixpoint) << "seed " << seed;
  }
}

TEST(Sdrcheck, SingleSeedPassesAllOracles) {
  const CheckOptions opts;
  const SeedReport report = check_seed(1, opts);
  EXPECT_TRUE(report.ok()) << report.failure_text();
  ASSERT_EQ(report.arms.size(), 3u);
}

TEST(Sdrcheck, Smoke200Seeds) {
  const CheckOptions opts;
  const BatchResult batch = check_seeds(kSmokeBaseSeed, 200, opts, 2);
  EXPECT_TRUE(batch.ok());
  for (const ShrinkOutcome& shrunk : batch.shrunk) {
    ADD_FAILURE() << "seed " << shrunk.minimal.seed << " failed ("
                  << shrunk.repro
                  << "):\n" << shrunk.minimal.failure_text();
  }
}

TEST(Sdrcheck, SerialAndParallelSweepsAreIdentical) {
  const CheckOptions opts;
  const BatchResult serial = check_seeds(kSmokeBaseSeed, 40, opts, 1);
  const BatchResult parallel = check_seeds(kSmokeBaseSeed, 40, opts, 4);
  EXPECT_TRUE(serial.ok());
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
}

TEST(Sdrcheck, ReproCommandFormat) {
  EXPECT_EQ(repro_command(17, 0), "sdrcheck --seed=17");
  EXPECT_EQ(repro_command(17, 3), "sdrcheck --seed=17 --shrink-level=3");
}

TEST(Sdrcheck, FlightAndSpanCapturesMergePerArm) {
  CheckOptions opts;  // capture_flight defaults on
  opts.capture_spans = true;
  const SeedReport report = check_seed(1, opts);
  ASSERT_TRUE(report.ok()) << report.failure_text();
  ASSERT_EQ(report.arms.size(), 3u);

  // Every arm filled both postmortem channels.
  for (const ArmResult& arm : report.arms) {
    EXPECT_FALSE(arm.flight_json.empty()) << arm.name;
    EXPECT_FALSE(arm.chrome_events.empty()) << arm.name;
  }

  // The merged flight dump names the seed and every arm.
  const std::string flight = report.flight_json();
  EXPECT_NE(flight.find("\"seed\":1"), std::string::npos);
  for (const ArmResult& arm : report.arms) {
    EXPECT_NE(flight.find("\"arm\":\"" + arm.name + "\""), std::string::npos);
  }

  // The merged Chrome document wraps all arms' events; per-arm pid bases
  // keep their metadata rows distinct.
  const std::string chrome = report.chrome_json();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"pid\":8"), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\":16"), std::string::npos);

  // Off by default: the plain path records no spans.
  const SeedReport plain = check_seed(1, CheckOptions{});
  for (const ArmResult& arm : plain.arms) {
    EXPECT_TRUE(arm.chrome_events.empty()) << arm.name;
  }
  EXPECT_TRUE(plain.chrome_json().empty());
}

/// First seed >= `from` whose scenario exposes the SR cumulative-ACK bug:
/// plain RTO flavor (NACK recovery would re-request the skipped chunk and
/// mask it) with a deterministic scripted drop (so the ACK path observes a
/// hole in the bitmap).
std::uint64_t find_sr_rto_scripted_seed(std::uint64_t from) {
  for (std::uint64_t seed = from; seed < from + 4096; ++seed) {
    const Scenario s = generate_scenario(seed);
    if (s.sr_flavor == SrFlavor::kRto && !s.adaptive_rto &&
        s.drop == DropKind::kScripted) {
      return seed;
    }
  }
  ADD_FAILURE() << "no SR-RTO + scripted-drop seed in range";
  return from;
}

TEST(Sdrcheck, InjectedAckOffByOneIsCaughtAndShrunk) {
  const std::uint64_t seed = find_sr_rto_scripted_seed(100);
  CheckOptions opts;
  // The bug lives in the SR path; skipping the other arms keeps the
  // shrink search fast and the repro focused.
  opts.run_ec = false;
  opts.run_rc = false;

  // Sanity: the seed passes with the failpoint disarmed.
  ASSERT_TRUE(check_seed(seed, opts).ok());

  common::ScopedFailpoint fp("sr.ack_cumulative_off_by_one");
  const SeedReport broken = check_seed(seed, opts);
  ASSERT_FALSE(broken.ok())
      << "injected off-by-one went undetected for seed " << seed;
  EXPECT_GT(common::failpoint_hits("sr.ack_cumulative_off_by_one"), 0u);

  const ShrinkOutcome shrunk = shrink_failure(seed, opts);
  ASSERT_FALSE(shrunk.minimal.ok());
  // Acceptance bar: minimized to a tiny scenario with a one-line repro.
  EXPECT_LE(shrunk.minimal.scenario.messages.size(), 2u);
  EXPECT_LE(shrunk.minimal.scenario.scripted_drops.size(), 4u);
  EXPECT_EQ(shrunk.repro, repro_command(seed, shrunk.level));
  // The minimal report carries flight-recorder postmortem data (the CLI
  // dumps it next to the repro line). The ring's last-N window tells the
  // stall story directly: the off-by-one leaves the sender one packet
  // short forever, so the tail of the ring is a loop of duplicate ACKs
  // for the same cumulative edge, with the early write/ack records long
  // since overwritten.
  const std::string flight = shrunk.minimal.flight_json();
  EXPECT_NE(flight.find("\"arm\":\"sr_"), std::string::npos) << flight;
  EXPECT_NE(flight.find("\"what\":\"ack_sent\""), std::string::npos) << flight;
  EXPECT_NE(flight.find("\"overwritten\":"), std::string::npos) << flight;

  // The repro command's (seed, level) pair replays the same failure.
  const SeedReport replay = check_seed(seed, opts, shrunk.level);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.scenario.describe(), shrunk.minimal.scenario.describe());
}

TEST(Sdrcheck, RepeatedRunsDoNotLeak) {
  const CheckOptions opts;
  // Warm thread-local pools (payload pool, telemetry instances, allocator
  // caches) before snapshotting. The bound is <=, not ==: runtimes may
  // still release a lazily-cached internal allocation on a later run
  // (observed under TSan), which is the opposite of a leak.
  ASSERT_TRUE(check_seed(3, opts).ok());
  const std::int64_t after_first = g_live.load(std::memory_order_relaxed);
  ASSERT_TRUE(check_seed(3, opts).ok());
  const std::int64_t after_second = g_live.load(std::memory_order_relaxed);
  EXPECT_LE(after_second, after_first)
      << "live allocation count grew across identical runs";
}

}  // namespace
}  // namespace sdr::check
