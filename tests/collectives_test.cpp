// Executable inter-datacenter ring Allreduce over the full stack (sim
// channels -> software NIC -> SDR -> SR/EC reliability): numerical
// correctness across schemes, loss levels and ring sizes, plus timing
// sanity against the model's lower bound.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "collectives/ring_allreduce.hpp"
#include "common/rng.hpp"

namespace sdr::collectives {
namespace {

RingConfig base_config(reliability::ReliableChannel::Kind kind,
                       std::size_t nodes, std::size_t elements,
                       double p_drop) {
  RingConfig cfg;
  cfg.nodes = nodes;
  cfg.elements = elements;
  cfg.p_drop_forward = p_drop;
  cfg.p_drop_backward = 0.0;
  cfg.seed = 1234;

  cfg.link.bandwidth_bps = 100e9;
  cfg.link.distance_km = 500.0;  // 5 ms RTT per hop
  cfg.link.seed = 77;

  cfg.channel.kind = kind;
  cfg.channel.profile.bandwidth_bps = cfg.link.bandwidth_bps;
  cfg.channel.profile.rtt_s = 2.0 * propagation_delay_s(cfg.link.distance_km);
  cfg.channel.profile.p_drop_packet = p_drop;
  cfg.channel.profile.mtu = 1024;
  cfg.channel.profile.chunk_bytes = 1024;

  cfg.channel.attr.mtu = 1024;
  cfg.channel.attr.chunk_size = 1024;
  cfg.channel.attr.max_msg_size = 256 * 1024;
  cfg.channel.attr.max_inflight = 64;
  cfg.channel.attr.generations = 2;

  cfg.channel.ec.k = 8;
  cfg.channel.ec.m = 4;
  cfg.channel.derive_timeouts();
  return cfg;
}

std::vector<std::vector<float>> make_inputs(std::size_t nodes,
                                            std::size_t elements,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(nodes);
  for (auto& buf : buffers) {
    buf.resize(elements);
    for (auto& v : buf) {
      v = static_cast<float>(rng.next_below(1000)) * 0.25f;
    }
  }
  return buffers;
}

std::vector<float> reference_sum(
    const std::vector<std::vector<float>>& inputs) {
  std::vector<float> sum(inputs[0].size(), 0.0f);
  for (const auto& buf : inputs) {
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += buf[i];
  }
  return sum;
}

void expect_allreduced(const std::vector<std::vector<float>>& buffers,
                       const std::vector<float>& expect) {
  for (std::size_t rank = 0; rank < buffers.size(); ++rank) {
    for (std::size_t i = 0; i < expect.size(); ++i) {
      // Ring reduction order differs from the reference order; float sums
      // may differ in the last ulp.
      ASSERT_NEAR(buffers[rank][i], expect[i],
                  std::abs(expect[i]) * 1e-5f + 1e-4f)
          << "rank " << rank << " element " << i;
    }
  }
}

struct RingCase {
  reliability::ReliableChannel::Kind kind;
  std::size_t nodes;
  double p_drop;
};

class RingAllreduceParamTest : public ::testing::TestWithParam<RingCase> {};

TEST_P(RingAllreduceParamTest, ComputesElementwiseSum) {
  const RingCase c = GetParam();
  // Segment: elements/nodes floats; for EC must be multiple of k*chunk =
  // 8 KiB -> segment 2048 floats.
  const std::size_t elements = 2048 * c.nodes;
  sim::Simulator sim;
  RingConfig cfg = base_config(c.kind, c.nodes, elements, c.p_drop);
  RingAllreduce ring(sim, cfg);

  auto buffers = make_inputs(c.nodes, elements, 99 + c.nodes);
  const auto expect = reference_sum(buffers);
  const RingResult result = ring.run(buffers);
  ASSERT_TRUE(result.status.is_ok()) << result.status;
  EXPECT_GT(result.completion_s, 0.0);
  expect_allreduced(buffers, expect);
  if (c.p_drop > 0.0 &&
      c.kind == reliability::ReliableChannel::Kind::kSrRto) {
    EXPECT_GT(result.total_retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RingAllreduceParamTest,
    ::testing::Values(
        RingCase{reliability::ReliableChannel::Kind::kSrRto, 2, 0.0},
        RingCase{reliability::ReliableChannel::Kind::kSrRto, 4, 0.02},
        RingCase{reliability::ReliableChannel::Kind::kSrNack, 4, 0.02},
        RingCase{reliability::ReliableChannel::Kind::kEcMds, 4, 0.02},
        RingCase{reliability::ReliableChannel::Kind::kEcXor, 4, 0.005},
        RingCase{reliability::ReliableChannel::Kind::kEcMds, 8, 0.01},
        RingCase{reliability::ReliableChannel::Kind::kSrRto, 8, 0.0}),
    [](const ::testing::TestParamInfo<RingCase>& pinfo) {
      const char* kind = "";
      switch (pinfo.param.kind) {
        case reliability::ReliableChannel::Kind::kSrRto: kind = "SrRto"; break;
        case reliability::ReliableChannel::Kind::kSrNack: kind = "SrNack"; break;
        case reliability::ReliableChannel::Kind::kEcMds: kind = "EcMds"; break;
        case reliability::ReliableChannel::Kind::kEcXor: kind = "EcXor"; break;
      }
      return std::string(kind) + "_n" + std::to_string(pinfo.param.nodes) +
             "_p" + std::to_string(static_cast<int>(pinfo.param.p_drop * 1000));
    });

TEST(RingAllreduceTest, CompletionTimeRespectsStageBound) {
  // 2N-2 stages of at least (segment injection + RTT) each, pipelined:
  // completion >= (2N-2) * ideal stage time is the Appendix C bound for
  // the lossless case.
  const std::size_t nodes = 4;
  const std::size_t elements = 2048 * nodes;
  sim::Simulator sim;
  RingConfig cfg = base_config(reliability::ReliableChannel::Kind::kSrRto,
                               nodes, elements, 0.0);
  RingAllreduce ring(sim, cfg);
  auto buffers = make_inputs(nodes, elements, 7);
  const RingResult result = ring.run(buffers);
  ASSERT_TRUE(result.status.is_ok());

  const double seg_bytes = 2048 * sizeof(float);
  const double stage_floor =
      seg_bytes * 8.0 / cfg.link.bandwidth_bps + cfg.channel.profile.rtt_s;
  EXPECT_GE(result.completion_s, (2.0 * nodes - 2.0) * stage_floor * 0.9);
}

TEST(RingAllreduceTest, LossSlowsCompletion) {
  const std::size_t nodes = 4;
  const std::size_t elements = 2048 * nodes;
  auto run_with = [&](double p) {
    sim::Simulator sim;
    RingConfig cfg = base_config(reliability::ReliableChannel::Kind::kSrRto,
                                 nodes, elements, p);
    RingAllreduce ring(sim, cfg);
    auto buffers = make_inputs(nodes, elements, 5);
    const RingResult r = ring.run(buffers);
    EXPECT_TRUE(r.status.is_ok());
    return r.completion_s;
  };
  EXPECT_GT(run_with(0.05), run_with(0.0));
}

TEST(RingAllreduceTest, InvalidConfigurationRejected) {
  sim::Simulator sim;
  RingConfig cfg = base_config(reliability::ReliableChannel::Kind::kSrRto, 4,
                               1002, 0.0);  // 1002 % 4 != 0
  RingAllreduce ring(sim, cfg);
  auto buffers = make_inputs(4, 1002, 3);
  EXPECT_EQ(ring.run(buffers).status.code(), StatusCode::kInvalidArgument);

  // EC granularity violation: segment not a multiple of k*chunk.
  sim::Simulator sim2;
  RingConfig cfg2 = base_config(reliability::ReliableChannel::Kind::kEcMds, 4,
                                4 * 512, 0.0);  // 2 KiB segment < 8 KiB
  RingAllreduce ring2(sim2, cfg2);
  auto buffers2 = make_inputs(4, 4 * 512, 3);
  EXPECT_EQ(ring2.run(buffers2).status.code(), StatusCode::kInvalidArgument);

  // Buffer count mismatch.
  sim::Simulator sim3;
  RingConfig cfg3 = base_config(reliability::ReliableChannel::Kind::kSrRto, 4,
                                2048 * 4, 0.0);
  RingAllreduce ring3(sim3, cfg3);
  auto buffers3 = make_inputs(3, 2048 * 4, 3);
  EXPECT_EQ(ring3.run(buffers3).status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdr::collectives
