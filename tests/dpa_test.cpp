// Tests for the software DPA: SPSC completion rings, multi-worker engine
// correctness (atomic bitmap updates, exactly-once chunk coalescing),
// calibration sanity and the packet-rate scaling model.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dpa/calibrate.hpp"
#include "dpa/engine.hpp"
#include "dpa/ring.hpp"
#include "sdr/message_table.hpp"

namespace sdr::dpa {
namespace {

core::QpAttr engine_attr() {
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * 1024;    // 16 packets per chunk
  attr.max_msg_size = 1024 * 1024;  // 256 packets, 16 chunks
  attr.max_inflight = 16;
  attr.generations = 2;
  return attr;
}

TEST(CompletionRingTest, FifoOrder) {
  CompletionRing ring(16);
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.push(RawCqe{i, 0}));
  }
  EXPECT_EQ(ring.size(), 10u);
  RawCqe out;
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.imm, i);
  }
  EXPECT_FALSE(ring.pop(out));
}

TEST(CompletionRingTest, FullRingRejectsPush) {
  CompletionRing ring(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.push(RawCqe{i, 0}));
  }
  EXPECT_FALSE(ring.push(RawCqe{99, 0}));
  RawCqe out;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.push(RawCqe{99, 0}));
}

TEST(CompletionRingTest, SpscAcrossThreads) {
  CompletionRing ring(1 << 10);
  constexpr std::uint32_t kCount = 200000;
  std::thread producer([&ring] {
    for (std::uint32_t i = 0; i < kCount; ++i) {
      while (!ring.push(RawCqe{i, 0})) std::this_thread::yield();
    }
  });
  std::uint64_t sum = 0;
  std::uint32_t received = 0;
  RawCqe out;
  while (received < kCount) {
    if (ring.pop(out)) {
      sum += out.imm;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kCount - 1) * kCount / 2);
}

TEST(DpaEngineTest, SingleWorkerProcessesFullMessage) {
  const core::QpAttr attr = engine_attr();
  core::MessageTable table(attr);
  table.arm(0, 0, attr.max_msg_size);

  Engine engine(table, 1);
  engine.start();
  const core::ImmCodec codec(attr.imm);
  for (std::uint32_t p = 0; p < attr.max_packets_per_msg(); ++p) {
    while (!engine.ring(0).push(RawCqe{codec.encode(0, p, 0), 0})) {
      std::this_thread::yield();
    }
  }
  engine.stop();

  const WorkerStats stats = engine.total_stats();
  EXPECT_EQ(stats.processed, attr.max_packets_per_msg());
  EXPECT_EQ(stats.chunks_completed, attr.max_chunks_per_msg());
  EXPECT_EQ(stats.messages_completed, 1u);
  EXPECT_TRUE(table.message_complete(0));
}

TEST(DpaEngineTest, MultiWorkerChannelsShareOneMessage) {
  // Packets of a message striped across 4 worker rings (the multi-channel
  // design): every chunk must coalesce exactly once despite concurrency.
  const core::QpAttr attr = engine_attr();
  core::MessageTable table(attr);
  table.arm(0, 0, attr.max_msg_size);

  constexpr std::size_t kWorkers = 4;
  Engine engine(table, kWorkers);
  engine.start();
  const core::ImmCodec codec(attr.imm);
  for (std::uint32_t p = 0; p < attr.max_packets_per_msg(); ++p) {
    const std::size_t w = p % kWorkers;
    while (!engine.ring(w).push(RawCqe{codec.encode(0, p, 0), 0})) {
      std::this_thread::yield();
    }
  }
  engine.stop();

  const WorkerStats stats = engine.total_stats();
  EXPECT_EQ(stats.processed, attr.max_packets_per_msg());
  EXPECT_EQ(stats.chunks_completed, attr.max_chunks_per_msg())
      << "each chunk must be promoted exactly once";
  EXPECT_EQ(stats.messages_completed, 1u);
  EXPECT_EQ(stats.discarded, 0u);
  EXPECT_EQ(table.chunk_bitmap(0).popcount(), attr.max_chunks_per_msg());
}

TEST(DpaEngineTest, StaleGenerationDiscardedConcurrently) {
  const core::QpAttr attr = engine_attr();
  core::MessageTable table(attr);
  table.arm(0, 1, attr.max_msg_size);  // generation 1

  Engine engine(table, 2);
  engine.start();
  const core::ImmCodec codec(attr.imm);
  // Half the packets arrive with a stale generation 0.
  for (std::uint32_t p = 0; p < 64; ++p) {
    const std::uint32_t gen = (p % 2 == 0) ? 1 : 0;
    while (!engine.ring(p % 2).push(RawCqe{codec.encode(0, p, 0), gen})) {
      std::this_thread::yield();
    }
  }
  engine.stop();
  const WorkerStats stats = engine.total_stats();
  EXPECT_EQ(stats.processed, 64u);
  EXPECT_EQ(stats.discarded, 32u);
  EXPECT_EQ(table.packets_received(0), 32u);
}

TEST(DpaEngineTest, DuplicateCompletionsIdempotent) {
  const core::QpAttr attr = engine_attr();
  core::MessageTable table(attr);
  table.arm(0, 0, attr.max_msg_size);
  Engine engine(table, 2);
  engine.start();
  const core::ImmCodec codec(attr.imm);
  // Every packet delivered twice, split across the two rings.
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t p = 0; p < attr.max_packets_per_msg(); ++p) {
      while (!engine.ring(round).push(RawCqe{codec.encode(0, p, 0), 0})) {
        std::this_thread::yield();
      }
    }
  }
  engine.stop();
  EXPECT_EQ(table.packets_received(0), attr.max_packets_per_msg());
  EXPECT_EQ(engine.total_stats().chunks_completed, attr.max_chunks_per_msg());
  EXPECT_EQ(engine.total_stats().messages_completed, 1u);
}

TEST(DpaEngineTest, RestartAfterStop) {
  const core::QpAttr attr = engine_attr();
  core::MessageTable table(attr);
  table.arm(0, 0, 64 * 1024);
  Engine engine(table, 1);
  engine.start();
  engine.stop();
  EXPECT_FALSE(engine.running());
  engine.start();
  const core::ImmCodec codec(attr.imm);
  engine.ring(0).push(RawCqe{codec.encode(0, 0, 0), 0});
  engine.stop();
  EXPECT_EQ(engine.total_stats().processed, 1u);
}

// ---------------------------------------------------------------------------
// Calibration & scaling model
// ---------------------------------------------------------------------------

TEST(CalibrationTest, CostsArePositiveAndSane) {
  const core::QpAttr attr = engine_attr();
  const Calibration cal = calibrate(attr, 1 << 16);
  EXPECT_GT(cal.ns_per_cqe, 1.0);     // sub-ns per CQE would be implausible
  EXPECT_LT(cal.ns_per_cqe, 10000.0); // and >10us means something is broken
  EXPECT_GT(cal.ns_per_repost, 0.0);
}

TEST(CalibrationTest, PacketRateScalesLinearlyInWorkers) {
  Calibration cal;
  cal.ns_per_cqe = 100.0;
  EXPECT_DOUBLE_EQ(achievable_packet_rate(cal, 1), 1e7);
  EXPECT_DOUBLE_EQ(achievable_packet_rate(cal, 16), 16e7);
  EXPECT_DOUBLE_EQ(achievable_packet_rate(cal, 128), 128e7);
}

TEST(CalibrationTest, WirePacketRateMatchesPaperFigure) {
  // Paper §5.4.2: "theoretical packet rate of 400 Gbit/s link at 4 KiB MTU
  // is 11.6 million [pps]".
  const double pps = wire_packet_rate(400e9, 4096);
  EXPECT_NEAR(pps / 1e6, 11.96, 0.5);
}

TEST(CalibrationTest, ThroughputModelShape) {
  // The modeled SDR goodput must (a) saturate for large messages and
  // (b) degrade for small messages due to repost overhead (Fig 14 shape).
  Calibration cal;
  cal.ns_per_cqe = 80.0;
  cal.ns_per_repost = 2000.0;
  core::QpAttr attr = engine_attr();
  const double line = 400e9;
  const double small = modeled_throughput_bps(cal, attr, line, 64 * 1024, 20);
  const double mid = modeled_throughput_bps(cal, attr, line, 512 * 1024, 20);
  const double big = modeled_throughput_bps(cal, attr, line, 16 << 20, 20);
  EXPECT_LT(small, mid);
  EXPECT_LE(mid, big * 1.001);
  EXPECT_NEAR(big, line, line * 0.1);  // saturation near line rate
}

TEST(CalibrationTest, MoreWorkersNeverSlower) {
  Calibration cal;
  cal.ns_per_cqe = 80.0;
  cal.ns_per_repost = 2000.0;
  core::QpAttr attr = engine_attr();
  double prev = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double t =
        modeled_throughput_bps(cal, attr, 3.2e12, 1 << 20, workers);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace sdr::dpa
