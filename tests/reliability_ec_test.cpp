// End-to-end tests of the executable EC reliability protocol: in-place
// recovery from drops via parity, clean path without fallback, FTO-driven
// SR fallback when losses exceed the code's tolerance, XOR vs MDS behavior.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"
#include "reliability/ec_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {
namespace {

core::QpAttr proto_attr() {
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;          // 1 packet per chunk: fine-grained EC
  attr.max_msg_size = 64 * 1024;   // submessages: k chunks each
  attr.max_inflight = 64;          // data + parity submessages in flight
  attr.generations = 2;
  return attr;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed * 3 + i * 197 + (i >> 10));
  }
  return v;
}

class EcProtoFixture : public ::testing::Test {
 protected:
  void wire(double p_drop_fwd, double p_drop_bwd, bool use_xor = false,
            std::size_t k = 8, std::size_t m = 4) {
    // Tear down in strict reverse dependency order before replacing the
    // NIC pair: protocols reference QPs/controls, controls and contexts
    // reference the NICs.
    sender_.reset();
    receiver_.reset();
    ctrl_a_.reset();
    ctrl_b_.reset();
    ctx_a_.reset();
    ctx_b_.reset();
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 100.0;
    cfg.seed = 23;
    pair_ = verbs::make_connected_pair(sim_, cfg, p_drop_fwd, p_drop_bwd);
    ctx_a_ = std::make_unique<core::Context>(*pair_.a, core::DevAttr{});
    ctx_b_ = std::make_unique<core::Context>(*pair_.b, core::DevAttr{});
    qp_a_ = ctx_a_->create_qp(proto_attr());
    qp_b_ = ctx_b_->create_qp(proto_attr());
    qp_a_->connect(qp_b_->info());
    qp_b_->connect(qp_a_->info());

    ctrl_a_ = std::make_unique<ControlLink>(*pair_.a);
    ctrl_b_ = std::make_unique<ControlLink>(*pair_.b);
    ctrl_a_->connect(pair_.b->id(), ctrl_b_->qp_number());
    ctrl_b_->connect(pair_.a->id(), ctrl_a_->qp_number());

    profile_.bandwidth_bps = cfg.bandwidth_bps;
    profile_.rtt_s = 2.0 * propagation_delay_s(cfg.distance_km);
    profile_.p_drop_packet = p_drop_fwd;
    profile_.mtu = proto_attr().mtu;
    profile_.chunk_bytes = proto_attr().chunk_size;

    if (use_xor) {
      codec_ = std::make_unique<ec::XorCode>(k, m);
    } else {
      codec_ = std::make_unique<ec::ReedSolomon>(k, m);
    }
    EcProtoConfig config;
    config.k = k;
    config.m = m;
    config.fallback_rto_s = 3.0 * profile_.rtt_s;
    config.fallback_ack_interval_s = profile_.rtt_s / 4.0;
    sender_ = std::make_unique<EcSender>(sim_, *qp_a_, *ctrl_a_, profile_,
                                         *codec_, config);
    receiver_ = std::make_unique<EcReceiver>(sim_, *qp_b_, *ctrl_b_,
                                             profile_, *codec_, config);
  }

  void transfer(std::size_t bytes, std::uint8_t seed,
                bool expect_ok = true) {
    const auto src = pattern(bytes, seed);
    std::vector<std::uint8_t> dst(bytes, 0);
    const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
    bool send_done = false, recv_done = false;
    ASSERT_TRUE(receiver_
                    ->expect(dst.data(), bytes, mr,
                             [&](const Status& s) {
                               EXPECT_EQ(s.is_ok(), expect_ok);
                               recv_done = true;
                             })
                    .is_ok());
    ASSERT_TRUE(sender_
                    ->write(src.data(), bytes,
                            [&](const Status& s) {
                              EXPECT_TRUE(s.is_ok());
                              send_done = true;
                            })
                    .is_ok());
    sim_.run();
    EXPECT_TRUE(recv_done);
    if (expect_ok) {
      EXPECT_TRUE(send_done);
      EXPECT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
    }
  }

  sim::Simulator sim_;
  verbs::NicPair pair_;
  std::unique_ptr<core::Context> ctx_a_, ctx_b_;
  core::Qp* qp_a_{nullptr};
  core::Qp* qp_b_{nullptr};
  std::unique_ptr<ControlLink> ctrl_a_, ctrl_b_;
  LinkProfile profile_;
  std::unique_ptr<ec::ErasureCodec> codec_;
  std::unique_ptr<EcSender> sender_;
  std::unique_ptr<EcReceiver> receiver_;
};

TEST_F(EcProtoFixture, LosslessCleanPath) {
  wire(0.0, 0.0);
  transfer(32 * 1024, 1);  // 4 submessages of 8 KiB
  EXPECT_EQ(receiver_->stats().decoded_submessages, 0u);
  EXPECT_EQ(receiver_->stats().clean_submessages, 4u);
  EXPECT_EQ(receiver_->stats().ftos_fired, 0u);
  EXPECT_EQ(sender_->stats().ec_nacks, 0u);
}

TEST_F(EcProtoFixture, RecoversDropsInPlaceWithoutRetransmission) {
  // With k=8, m=4 (tolerates 4 losses per submessage) and 3% loss, parity
  // almost always recovers: no FTO, no retransmission (Fig 8 right).
  wire(0.03, 0.0);
  transfer(64 * 1024, 2);  // 8 submessages
  EXPECT_GT(receiver_->stats().decoded_submessages +
                receiver_->stats().clean_submessages,
            7u);
  EXPECT_EQ(sender_->stats().fallback_retransmissions, 0u);
  EXPECT_GT(receiver_->stats().decoded_submessages, 0u)
      << "3% loss over 512 packets should require at least one decode";
}

TEST_F(EcProtoFixture, FallsBackToSrUnderExcessiveLoss) {
  // 30% loss overwhelms RS(8,4) regularly: the FTO fires, failed
  // submessages are selectively repeated, and delivery still completes.
  wire(0.30, 0.0);
  transfer(32 * 1024, 3);
  EXPECT_GT(receiver_->stats().ftos_fired, 0u);
  EXPECT_GT(receiver_->stats().fallback_submessages, 0u);
  EXPECT_GT(sender_->stats().fallback_retransmissions, 0u);
}

TEST_F(EcProtoFixture, XorRecoversLightLoss) {
  wire(0.01, 0.0, /*use_xor=*/true);
  transfer(32 * 1024, 4);
}

TEST_F(EcProtoFixture, XorFallsBackEarlierThanMds) {
  // Fig 11 narrative: XOR trades CPU efficiency for resilience. At the
  // same loss rate XOR should need fallback (strictly weaker tolerance)
  // while MDS recovers in place. Compare fallback counts statistically.
  wire(0.08, 0.0, /*use_xor=*/true);
  for (int i = 0; i < 6; ++i) transfer(32 * 1024, static_cast<std::uint8_t>(i));
  const auto xor_ftos = receiver_->stats().ftos_fired;

  wire(0.08, 0.0, /*use_xor=*/false);
  for (int i = 0; i < 6; ++i) transfer(32 * 1024, static_cast<std::uint8_t>(i));
  const auto mds_ftos = receiver_->stats().ftos_fired;
  EXPECT_GT(xor_ftos, mds_ftos);
}

TEST_F(EcProtoFixture, SequentialMessages) {
  wire(0.05, 0.0);
  for (int i = 0; i < 8; ++i) {
    transfer(16 * 1024, static_cast<std::uint8_t>(10 + i));
  }
  EXPECT_EQ(sender_->stats().messages, 8u);
}

TEST_F(EcProtoFixture, SurvivesControlLoss) {
  wire(0.10, 0.05);
  transfer(32 * 1024, 5);
}

TEST_F(EcProtoFixture, MisalignedLengthRejected) {
  wire(0.0, 0.0);
  std::vector<std::uint8_t> buf(10 * 1024);
  const auto* mr = ctx_b_->mr_reg(buf.data(), buf.size());
  EXPECT_EQ(receiver_->expect(buf.data(), 10 * 1024 + 1, mr, nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sender_->write(buf.data(), 1000, nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EcProtoFixture, ParityBandwidthAccounting) {
  wire(0.0, 0.0);
  transfer(32 * 1024, 6);  // 4 submessages x (8 data + 4 parity) chunks
  EXPECT_EQ(sender_->stats().data_chunks_sent, 32u);
  EXPECT_EQ(sender_->stats().parity_chunks_sent, 16u);
}

}  // namespace
}  // namespace sdr::reliability
