// Tests for the eager small-message path of ReliableChannel: latency
// advantage over the rendezvous (CTS-gated) path, correctness under control
// loss, mixing eager and rendezvous messages, and early-data stashing.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "reliability/reliable_channel.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {
namespace {

struct EagerHarness {
  sim::Simulator sim;
  verbs::NicPair pair;
  std::unique_ptr<ReliableChannel> channel;

  EagerHarness(std::size_t eager_threshold, double p_drop_fwd,
               double p_drop_bwd) {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 1000.0;  // 10 ms RTT: CTS cost is clearly visible
    cfg.seed = 77;
    pair = verbs::make_connected_pair(sim, cfg, p_drop_fwd, p_drop_bwd);

    ReliableChannel::Options options;
    options.kind = ReliableChannel::Kind::kSrRto;
    options.profile.bandwidth_bps = cfg.bandwidth_bps;
    options.profile.rtt_s = rtt_s(cfg.distance_km);
    options.profile.mtu = 1024;
    options.profile.chunk_bytes = 4096;
    options.attr.mtu = 1024;
    options.attr.chunk_size = 4096;
    options.attr.max_msg_size = 64 * 1024;
    options.attr.max_inflight = 8;
    options.eager_threshold_bytes = eager_threshold;
    options.derive_timeouts();
    channel = std::make_unique<ReliableChannel>(sim, *pair.a, *pair.b,
                                                options);
  }

  /// Round-trips one message and returns its virtual completion time.
  double transfer(std::size_t bytes, std::uint8_t seed) {
    std::vector<std::uint8_t> src(bytes), dst(bytes, 0);
    for (std::size_t i = 0; i < bytes; ++i) {
      src[i] = static_cast<std::uint8_t>(seed + i * 131);
    }
    const double start = sim.now().seconds();
    bool ok = false;
    channel->recv(dst.data(), bytes, [&](const Status& s) {
      ok = s.is_ok();
    });
    channel->send(src.data(), bytes, [](const Status&) {});
    sim.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
    return sim.now().seconds() - start;
  }
};

TEST(EagerPathTest, SkipsTheCtsRoundTrip) {
  // Rendezvous small message: CTS (rtt/2) + data (rtt/2) + ack ~ 1.5 rtt.
  // Eager: data (rtt/2) + sender-side ack wait... the RECEIVER completes
  // at rtt/2 — measure receiver completion, which is what collective
  // latency chains on.
  EagerHarness rendezvous(0, 0.0, 0.0);
  const double t_rendezvous = rendezvous.transfer(1024, 1);
  EagerHarness eager(2048, 0.0, 0.0);
  const double t_eager = eager.transfer(1024, 1);
  EXPECT_LT(t_eager, t_rendezvous * 0.8)
      << "eager must save the CTS round trip: eager=" << t_eager
      << "s rendezvous=" << t_rendezvous << "s";
  EXPECT_EQ(eager.channel->eager_messages(), 1u);
  EXPECT_EQ(rendezvous.channel->eager_messages(), 0u);
}

TEST(EagerPathTest, LargeMessagesStillUseRendezvous) {
  EagerHarness h(2048, 0.0, 0.0);
  h.transfer(32 * 1024, 2);
  EXPECT_EQ(h.channel->eager_messages(), 0u);
  h.transfer(1024, 3);
  EXPECT_EQ(h.channel->eager_messages(), 1u);
}

TEST(EagerPathTest, SurvivesControlPathLoss) {
  // 20% loss on the data/control direction: eager data or its ack may
  // vanish; the stop-and-wait retransmission must converge.
  EagerHarness h(2048, 0.2, 0.0);
  for (int i = 0; i < 10; ++i) {
    h.transfer(512, static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(h.channel->eager_messages(), 10u);
}

TEST(EagerPathTest, SurvivesAckLoss) {
  EagerHarness h(2048, 0.0, 0.2);
  for (int i = 0; i < 10; ++i) {
    h.transfer(512, static_cast<std::uint8_t>(i));
  }
  EXPECT_EQ(h.channel->eager_messages(), 10u);
}

TEST(EagerPathTest, EarlyDataIsStashedUntilRecvPosted) {
  EagerHarness h(2048, 0.0, 0.0);
  std::vector<std::uint8_t> src(256, 0x7E), dst(256, 0);
  // Send BEFORE the receive is posted.
  h.channel->send(src.data(), src.size(), [](const Status&) {});
  h.sim.run();
  bool ok = false;
  h.channel->recv(dst.data(), dst.size(), [&](const Status& s) {
    ok = s.is_ok();
  });
  h.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST(EagerPathTest, MixedSizesKeepOrderBasedMatchingConsistent) {
  // Alternate eager and rendezvous messages; both sides classify by length
  // so the SDR message numbering never skews.
  EagerHarness h(2048, 0.01, 0.0);
  const std::size_t sizes[] = {512, 16 * 1024, 1024, 32 * 1024, 2048, 8192};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    h.transfer(sizes[i], static_cast<std::uint8_t>(40 + i));
  }
  EXPECT_EQ(h.channel->eager_messages(), 3u);
}

TEST(EagerPathTest, OversizedEagerRejected) {
  EagerHarness h(8192, 0.0, 0.0);  // threshold above the datagram limit
  std::vector<std::uint8_t> big(6000, 1);
  EXPECT_EQ(h.channel->send(big.data(), big.size(), nullptr).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// kAuto: model-guided per-message scheme routing
// ---------------------------------------------------------------------------

struct AutoHarness {
  sim::Simulator sim;
  verbs::NicPair pair;
  std::unique_ptr<ReliableChannel> channel;

  explicit AutoHarness(double p_drop, std::size_t eager_threshold = 2048) {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 3750.0;  // BDP-heavy link: EC wins mid-size
    cfg.seed = 31;
    pair = verbs::make_connected_pair(sim, cfg, p_drop, 0.0);

    ReliableChannel::Options options;
    options.kind = ReliableChannel::Kind::kAuto;
    options.profile.bandwidth_bps = cfg.bandwidth_bps;
    options.profile.rtt_s = rtt_s(cfg.distance_km);
    options.profile.p_drop_packet = std::max(p_drop, 1e-4);
    options.profile.mtu = 1024;
    options.profile.chunk_bytes = 1024;
    options.attr.mtu = 1024;
    options.attr.chunk_size = 1024;
    options.attr.max_msg_size = 1024 * 1024;
    options.attr.max_inflight = 64;
    options.ec.k = 8;
    options.ec.m = 4;
    options.eager_threshold_bytes = eager_threshold;
    options.derive_timeouts();
    channel = std::make_unique<ReliableChannel>(sim, *pair.a, *pair.b,
                                                options);
  }

  void transfer(std::size_t bytes, std::uint8_t seed) {
    std::vector<std::uint8_t> src(bytes), dst(bytes, 0);
    for (std::size_t i = 0; i < bytes; ++i) {
      src[i] = static_cast<std::uint8_t>(seed + i * 131);
    }
    bool ok = false;
    channel->recv(dst.data(), bytes, [&](const Status& s) {
      ok = s.is_ok();
    });
    channel->send(src.data(), bytes, [](const Status&) {});
    sim.run();
    ASSERT_TRUE(ok) << bytes << " bytes";
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
  }
};

TEST(AutoChannelTest, RoutesBySizeAcrossAllThreeTiers) {
  AutoHarness h(0.001);
  h.transfer(1024, 1);        // eager tier
  h.transfer(256 * 1024, 2);  // BDP-scale at 1e-3: the model picks EC
  h.transfer(9 * 1024, 3);    // not a whole submessage (8 KiB grain) -> SR
  EXPECT_EQ(h.channel->eager_messages(), 1u);
  EXPECT_EQ(h.channel->auto_ec_messages(), 1u);
  EXPECT_EQ(h.channel->auto_sr_messages(), 1u);
}

TEST(AutoChannelTest, MixedTrafficUnderLossStaysCorrect) {
  AutoHarness h(0.02);
  const std::size_t sizes[] = {512,       64 * 1024, 1500,
                               128 * 1024, 8 * 1024, 256 * 1024};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    h.transfer(sizes[i], static_cast<std::uint8_t>(50 + i));
  }
  EXPECT_GT(h.channel->eager_messages(), 0u);
  EXPECT_GT(h.channel->auto_ec_messages() + h.channel->auto_sr_messages(),
            0u);
}

TEST(AutoChannelTest, ChoiceIsDeterministicAndCached) {
  AutoHarness h(0.001);
  // Same-size transfers must route identically (cache or not).
  h.transfer(256 * 1024, 9);
  const auto ec_before = h.channel->auto_ec_messages();
  h.transfer(256 * 1024, 10);
  EXPECT_EQ(h.channel->auto_ec_messages(), ec_before + 1);
}

TEST(AckCodecPayloadTest, EagerDataRoundTrip) {
  ControlMessage msg;
  msg.type = ControlType::kEagerData;
  msg.msg_number = 99;
  msg.payload.resize(777);
  for (std::size_t i = 0; i < msg.payload.size(); ++i) {
    msg.payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto wire = encode_control(msg);
  const auto decoded = decode_control(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
  // Truncation anywhere must be rejected.
  for (std::size_t cut : {0u, 10u, 30u, 100u}) {
    EXPECT_FALSE(decode_control(wire.data(), cut).has_value());
  }
}

}  // namespace
}  // namespace sdr::reliability
