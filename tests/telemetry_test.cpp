// Telemetry acceptance tests: the registry mirrors the legacy stats structs
// exactly (external-pointer binding, not duplication), the tracer tells a
// dropped-then-retransmitted chunk's full cross-layer story in sim-time
// order, and the periodic sampler's time series is bit-identical across two
// same-seed runs. Plus edge-case coverage for the Histogram/RunningStats
// primitives the registry builds on.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/nic.hpp"

namespace sdr::telemetry {
namespace {

using reliability::ControlLink;
using reliability::LinkProfile;
using reliability::SrProtoConfig;
using reliability::SrReceiver;
using reliability::SrSender;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131 + (i >> 9));
  }
  return v;
}

/// A full SR-over-SDR stack on one lossy simulated link, built fresh per
/// test (the telemetry registry registers components at construction, so
/// each rig starts from a clean registry). Owns its simulator so repeated
/// rigs replay identical sim-time histories.
struct LossyRig {
  LossyRig(double p_drop_fwd, std::size_t chunk_size, std::uint64_t seed,
           bool nack = false) {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 100.0;  // ~1 ms RTT
    cfg.seed = seed;
    pair = verbs::make_connected_pair(sim, cfg, p_drop_fwd, 0.0);
    ctx_a = std::make_unique<core::Context>(*pair.a, core::DevAttr{});
    ctx_b = std::make_unique<core::Context>(*pair.b, core::DevAttr{});
    core::QpAttr attr;
    attr.mtu = 1024;
    attr.chunk_size = static_cast<std::uint32_t>(chunk_size);
    attr.max_msg_size = 256 * 1024;
    attr.max_inflight = 8;
    attr.generations = 2;
    qp_a = ctx_a->create_qp(attr);
    qp_b = ctx_b->create_qp(attr);
    qp_a->connect(qp_b->info());
    qp_b->connect(qp_a->info());

    ctrl_a = std::make_unique<ControlLink>(*pair.a);
    ctrl_b = std::make_unique<ControlLink>(*pair.b);
    ctrl_a->connect(pair.b->id(), ctrl_b->qp_number());
    ctrl_b->connect(pair.a->id(), ctrl_a->qp_number());

    profile.bandwidth_bps = cfg.bandwidth_bps;
    profile.rtt_s = 2.0 * propagation_delay_s(cfg.distance_km);
    profile.p_drop_packet = p_drop_fwd;
    profile.mtu = attr.mtu;
    profile.chunk_bytes = chunk_size;

    SrProtoConfig config;
    config.rto_s = 3.0 * profile.rtt_s;
    config.ack_interval_s = profile.rtt_s / 4.0;
    config.nack_enabled = nack;
    config.nack_holdoff_s = profile.rtt_s;
    sender = std::make_unique<SrSender>(sim, *qp_a, *ctrl_a, profile, config);
    receiver =
        std::make_unique<SrReceiver>(sim, *qp_b, *ctrl_b, profile, config);
  }

  void transfer(std::size_t bytes, std::uint8_t seed) {
    const auto src = pattern(bytes, seed);
    std::vector<std::uint8_t> dst(bytes, 0);
    const auto* mr = ctx_b->mr_reg(dst.data(), dst.size());
    bool send_done = false, recv_done = false;
    ASSERT_TRUE(receiver
                    ->expect(dst.data(), bytes, mr,
                             [&](const Status& s) {
                               EXPECT_TRUE(s.is_ok());
                               recv_done = true;
                             })
                    .is_ok());
    ASSERT_TRUE(sender
                    ->write(src.data(), bytes,
                            [&](const Status& s) {
                              EXPECT_TRUE(s.is_ok());
                              send_done = true;
                            })
                    .is_ok());
    sim.run();
    ASSERT_TRUE(send_done && recv_done);
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
  }

  sim::Simulator sim;
  verbs::NicPair pair;
  std::unique_ptr<core::Context> ctx_a, ctx_b;
  core::Qp* qp_a{nullptr};
  core::Qp* qp_b{nullptr};
  std::unique_ptr<ControlLink> ctrl_a, ctrl_b;
  LinkProfile profile;
  std::unique_ptr<SrSender> sender;
  std::unique_ptr<SrReceiver> receiver;
};

class TelemetryStackTest : public ::testing::Test {
 protected:
  void TearDown() override {
    tracer().disarm();
    registry().disable();
    spans().disarm();
    flight().disarm();
    profiler().disarm();
  }
};

// --- tentpole acceptance: registry mirrors legacy stats structs ----------

TEST_F(TelemetryStackTest, RegistryCountersMatchLegacyStats) {
  registry().enable();
  LossyRig rig(0.02, 4096, /*seed=*/5);
  rig.transfer(128 * 1024, 2);

  const auto& ss = rig.sender->stats();
  EXPECT_GT(ss.retransmissions, 0u) << "want a genuinely lossy transfer";

  auto& reg = registry();
  // The first SR sender/receiver constructed after enable() get instance 0.
  EXPECT_EQ(reg.counter_value("reliability.sr.sender0.messages"), ss.messages);
  EXPECT_EQ(reg.counter_value("reliability.sr.sender0.chunks_sent"),
            ss.chunks_sent);
  EXPECT_EQ(reg.counter_value("reliability.sr.sender0.retransmissions"),
            ss.retransmissions);
  EXPECT_EQ(reg.counter_value("reliability.sr.sender0.acks_received"),
            ss.acks_received);
  EXPECT_EQ(reg.counter_value("reliability.sr.sender0.nacks_received"),
            ss.nacks_received);

  const auto& rs = rig.receiver->stats();
  EXPECT_EQ(reg.counter_value("reliability.sr.receiver0.acks_sent"),
            rs.acks_sent);
  EXPECT_EQ(reg.counter_value("reliability.sr.receiver0.nacks_sent"),
            rs.nacks_sent);

  // SDR QP a (sender side) registers first -> sdr.qp0.
  const auto& qa = rig.qp_a->stats();
  EXPECT_EQ(reg.counter_value("sdr.qp0.cts_received"), qa.cts_received);
  EXPECT_EQ(reg.counter_value("sdr.qp0.data_packets_sent"),
            qa.data_packets_sent);
  EXPECT_EQ(reg.counter_value("sdr.qp0.completions_processed"),
            qa.completions_processed);
  const auto& qb = rig.qp_b->stats();
  EXPECT_EQ(reg.counter_value("sdr.qp1.cts_sent"), qb.cts_sent);
  EXPECT_EQ(reg.counter_value("sdr.qp1.completions_processed"),
            qb.completions_processed);

  // The channel saw every drop the SR layer had to repair.
  EXPECT_GT(reg.counter_value("sim.channel0.dropped_packets") +
                reg.counter_value("sim.channel1.dropped_packets"),
            0u);

  // RTT histogram fed by mark_acked: one sample per first-transmission ACK.
  const Histogram* rtt =
      reg.find_histogram("reliability.sr.sender0.rtt_sample_s");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->count(), 0u);
  EXPECT_GE(rtt->mean(), rig.profile.rtt_s * 0.5);

  // Export is well-formed and covers every entry.
  std::vector<FlatMetric> flat;
  reg.flatten(flat);
  EXPECT_GE(flat.size(), reg.size());
  const std::string jsonl = reg.to_jsonl();
  EXPECT_NE(jsonl.find("reliability.sr.sender0.retransmissions"),
            std::string::npos);
}

// --- tentpole acceptance: tracer timeline for a retransmitted chunk ------

TEST_F(TelemetryStackTest, TracerChunkTimelineForDroppedChunk) {
  registry().enable();
  tracer().arm();
  // chunk == MTU so the SDR packet index equals the SR chunk index and one
  // chunk is exactly one wire packet.
  LossyRig rig(0.05, 1024, /*seed=*/7);
  rig.transfer(64 * 1024, 3);
  ASSERT_GT(rig.sender->stats().retransmissions, 0u);

  const auto events = tracer().collect();
  ASSERT_FALSE(events.empty());

  // Events are emitted while the simulator clock advances, so the ring is
  // already sim-time ordered.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t);
  }

  // Find a retransmitted chunk whose first transmission was dropped on the
  // wire, and check its full cross-layer story.
  bool found = false;
  for (const auto& r : events) {
    if (r.type != TraceEventType::kRetransmit || r.msg == kNoMsg) continue;
    const std::uint64_t msg = r.msg;
    const std::uint32_t chunk = r.chunk;
    // The chunk's immediate, learned from its posted event.
    std::uint32_t imm = kNoImm;
    for (const auto& e : events) {
      if (e.type == TraceEventType::kPosted && e.msg == msg &&
          e.chunk == chunk) {
        imm = e.imm;
        break;
      }
    }
    ASSERT_NE(imm, kNoImm) << "retransmitted chunk was never posted?";
    const auto timeline = tracer().chunk_timeline(msg, chunk, imm);
    ASSERT_FALSE(timeline.empty());

    auto first_time = [&](TraceEventType type) -> double {
      for (const auto& e : timeline) {
        if (e.type == type) return e.t.seconds();
      }
      return -1.0;
    };
    auto last_time = [&](TraceEventType type) -> double {
      double t = -1.0;
      for (const auto& e : timeline) {
        if (e.type == type) t = e.t.seconds();
      }
      return t;
    };

    const double posted = first_time(TraceEventType::kPosted);
    const double tx = first_time(TraceEventType::kTx);
    const double dropped = first_time(TraceEventType::kDropped);
    if (dropped < 0.0) continue;  // retransmit caused by a late ACK, skip
    const double rto = first_time(TraceEventType::kRtoFired);
    const double retx = first_time(TraceEventType::kRetransmit);
    const double delivered = last_time(TraceEventType::kDelivered);
    const double cqe = last_time(TraceEventType::kCqe);
    const double bitmap = last_time(TraceEventType::kBitmapUpdate);
    const double complete = first_time(TraceEventType::kMsgComplete);

    ASSERT_GE(posted, 0.0);
    ASSERT_GE(tx, 0.0);
    ASSERT_GE(rto, 0.0);
    ASSERT_GE(retx, 0.0);
    ASSERT_GE(delivered, 0.0);
    ASSERT_GE(cqe, 0.0);
    ASSERT_GE(bitmap, 0.0);
    ASSERT_GE(complete, 0.0);

    EXPECT_LE(posted, tx);
    EXPECT_LE(tx, dropped);
    EXPECT_LE(dropped, rto);
    EXPECT_LE(rto, retx);
    EXPECT_LE(retx, delivered);
    EXPECT_LE(delivered, cqe);
    EXPECT_LE(cqe, bitmap);
    EXPECT_LE(bitmap, complete);
    found = true;
    break;
  }
  EXPECT_TRUE(found)
      << "no retransmitted chunk had a wire-level drop in its timeline";

  // JSONL export: filterable, one object per line, named event types.
  Tracer::Filter filter;
  filter.qp = kNoImm;
  const std::string jsonl = tracer().to_jsonl(filter);
  EXPECT_NE(jsonl.find("\"event\":\"retransmit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"event\":\"msg_complete\""), std::string::npos);
}

// --- tentpole acceptance: sampler time series is run-to-run identical ----

TEST_F(TelemetryStackTest, SamplerTimeSeriesDeterministic) {
  auto run_once = [&]() -> std::string {
    registry().enable();
    Sampler sampler(registry(), /*period_s=*/1e-4);
    LossyRig rig(0.03, 1024, /*seed=*/11);
    sampler.attach(rig.sim);
    rig.transfer(64 * 1024, 4);
    std::string csv = sampler.to_csv();
    registry().disable();  // reset instance counters for the second run
    return csv;
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_GT(first.find('\n'), 0u);
  EXPECT_EQ(first, second) << "same seed must give a bit-identical series";
}

// --- registry unit behaviour ---------------------------------------------

TEST_F(TelemetryStackTest, DisabledRegistryHandsOutInertHandles) {
  ASSERT_FALSE(registry().enabled());
  Counter c = registry().counter("nobody.home");
  EXPECT_FALSE(c.live());
  c.inc(42);  // must be a no-op, not a crash
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(registry().has("nobody.home"));

  Scope scope(registry(), "dead.scope");
  EXPECT_FALSE(scope.active());
  Gauge g = scope.gauge("g");
  g.set(1.0);
  EXPECT_EQ(g.value(), 0.0);

  // Components built while disabled never register, so the instrumented
  // stack stays metric-free.
  LossyRig rig(0.0, 4096, /*seed=*/1);
  EXPECT_EQ(registry().size(), 0u);
}

TEST_F(TelemetryStackTest, ScopeFreezesFinalValuesOnDestruction) {
  registry().enable();
  std::uint64_t bound = 0;
  double live_state = 7.5;
  {
    Scope scope(registry(), "ephemeral");
    Counter c = scope.counter("hits");
    c.inc(3);
    scope.bind_counter("bound", &bound);
    scope.bind_gauge("gauge", [&live_state] { return live_state; });
    bound = 41;
    EXPECT_EQ(registry().counter_value("ephemeral.hits"), 3u);
    EXPECT_EQ(registry().counter_value("ephemeral.bound"), 41u);
  }
  // The scope died (component gone) but the last values survive for
  // end-of-run export, detached from the dead component's storage.
  bound = 999;       // must not show through: the registry copied 41
  live_state = -1.0;  // ditto for the gauge callback
  EXPECT_EQ(registry().counter_value("ephemeral.hits"), 3u);
  EXPECT_EQ(registry().counter_value("ephemeral.bound"), 41u);
  EXPECT_DOUBLE_EQ(registry().gauge_value("ephemeral.gauge"), 7.5);
  registry().disable();
  EXPECT_FALSE(registry().has("ephemeral.hits"));
  EXPECT_EQ(registry().size(), 0u);
}

TEST_F(TelemetryStackTest, InstanceNamesCountPerBase) {
  registry().enable();
  EXPECT_EQ(registry().instance_name("x.y"), "x.y0");
  EXPECT_EQ(registry().instance_name("x.y"), "x.y1");
  EXPECT_EQ(registry().instance_name("z"), "z0");
  registry().disable();
  registry().enable();
  EXPECT_EQ(registry().instance_name("x.y"), "x.y0") << "disable resets";
}

TEST_F(TelemetryStackTest, TracerRingIsBoundedAndOverwritesOldest) {
  tracer().arm(/*capacity=*/8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    tracer().emit(SimTime::from_seconds(i * 1e-3), TraceEventType::kTx,
                  /*qp=*/i);
  }
  EXPECT_EQ(tracer().size(), 8u);
  EXPECT_EQ(tracer().overwritten(), 12u);
  const auto events = tracer().collect();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().qp, 12u) << "oldest surviving event";
  EXPECT_EQ(events.back().qp, 19u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t);
  }
}

// --- spans: causal tree for a dropped-then-retransmitted chunk -----------

TEST_F(TelemetryStackTest, SpanTreeReconstructsDroppedChunkRecovery) {
  spans().arm();
  spans().track("sr_test");
  // chunk == MTU so one chunk is one wire attempt and indices line up.
  LossyRig rig(0.05, 1024, /*seed=*/7);
  rig.transfer(64 * 1024, 3);
  ASSERT_GT(rig.sender->stats().retransmissions, 0u);

  auto& sp = spans();
  ASSERT_GT(sp.size(), 0u);
  EXPECT_EQ(sp.truncated(), 0u);

  // Find a dropped wire attempt whose chunk tells the full recovery story:
  // attempt#0 (dropped) -> rto_fired -> retransmit -> attempt#1 delivered.
  bool found = false;
  for (SpanIndex i = 0; i < sp.size() && !found; ++i) {
    const Span& first = sp.at(i);
    if (first.kind != SpanKind::kAttempt ||
        first.outcome != SpanOutcome::kDropped) {
      continue;
    }
    ASSERT_NE(first.parent, kNoSpan);
    const Span& chunk = sp.at(first.parent);
    ASSERT_EQ(chunk.kind, SpanKind::kChunk);

    SpanIndex rto = kNoSpan, rtx = kNoSpan, second = kNoSpan;
    for (SpanIndex c : sp.children(first.parent)) {
      const Span& s = sp.at(c);
      if (s.kind == SpanKind::kInstant &&
          s.what == TraceEventType::kRtoFired && s.cause == i) {
        rto = c;
      } else if (s.kind == SpanKind::kInstant &&
                 s.what == TraceEventType::kRetransmit && rto != kNoSpan &&
                 s.cause == rto) {
        rtx = c;
      } else if (s.kind == SpanKind::kAttempt && rtx != kNoSpan &&
                 s.cause == rtx && s.outcome == SpanOutcome::kComplete) {
        second = c;
      }
    }
    if (rto == kNoSpan || rtx == kNoSpan || second == kNoSpan) continue;

    // Sim-time ordering along the causal chain.
    EXPECT_LE(first.begin, first.end);
    EXPECT_LE(first.end, sp.at(rto).begin);
    EXPECT_LE(sp.at(rto).begin, sp.at(rtx).begin);
    EXPECT_LE(sp.at(rtx).begin, sp.at(second).begin);
    EXPECT_GT(sp.at(second).attempt, first.attempt);

    // The chunk closed after its successful attempt, and the owning
    // message span closed after the chunk.
    EXPECT_EQ(chunk.outcome, SpanOutcome::kComplete);
    EXPECT_LE(sp.at(second).end, chunk.end);
    ASSERT_NE(chunk.parent, kNoSpan);
    const Span& msg = sp.at(chunk.parent);
    EXPECT_EQ(msg.kind, SpanKind::kMessage);
    EXPECT_EQ(msg.outcome, SpanOutcome::kComplete);
    EXPECT_LE(chunk.end, msg.end);
    EXPECT_EQ(sp.find_message(msg.msg), chunk.parent);
    found = true;
  }
  EXPECT_TRUE(found)
      << "no dropped attempt had a complete rto->retransmit->redelivery "
         "chain in the span tree";

  // Chrome export: valid wrapper, named track, named instants, flow links.
  const std::string json = sp.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("sr_test"), std::string::npos);
  EXPECT_NE(json.find("rto_fired"), std::string::npos);
  EXPECT_EQ(json[json.find_last_not_of('\n')], '}');
}

TEST_F(TelemetryStackTest, SpanPoolIsBoundedAndCountsTruncation) {
  spans().arm(/*capacity=*/4);
  LossyRig rig(0.05, 1024, /*seed=*/7);
  rig.transfer(16 * 1024, 3);
  EXPECT_LE(spans().size(), 4u);
  EXPECT_GT(spans().truncated(), 0u);
  // Export still works on a saturated pool.
  EXPECT_NE(spans().to_chrome_json().find("\"traceEvents\""),
            std::string::npos);
}

// --- flight recorder: bounded postmortem rings ---------------------------

TEST_F(TelemetryStackTest, FlightRingOverwritesOldestPerConnection) {
  flight().arm(/*per_conn_capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight().record(FlightLayer::kSr, /*conn=*/1, "tick",
                    SimTime::from_seconds(i * 1e-3), /*msg=*/i, i);
  }
  flight().record(FlightLayer::kRc, /*conn=*/2, "once", SimTime{}, 0);
  EXPECT_EQ(flight().connections(), 2u);
  const auto h = flight().history(1);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h.front().msg, 6u) << "oldest surviving record";
  EXPECT_EQ(h.back().msg, 9u);
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_LE(h[i - 1].t, h[i].t);
  }
  const std::string json = flight().to_json();
  EXPECT_NE(json.find("\"overwritten\":6"), std::string::npos);
  EXPECT_NE(json.find("\"conn\":2"), std::string::npos);
}

TEST_F(TelemetryStackTest, FlightRecordsProtocolStoryOfLossyTransfer) {
  flight().arm();
  LossyRig rig(0.05, 1024, /*seed=*/7);
  rig.transfer(64 * 1024, 3);
  ASSERT_GT(rig.sender->stats().retransmissions, 0u);
  EXPECT_GT(flight().connections(), 0u);
  const std::string json = flight().to_json();
  EXPECT_NE(json.find("\"what\":\"write\""), std::string::npos);
  EXPECT_NE(json.find("\"what\":\"rto_fired\""), std::string::npos);
  EXPECT_NE(json.find("\"what\":\"retransmit\""), std::string::npos);
  EXPECT_NE(json.find("\"what\":\"msg_done\""), std::string::npos);
}

// --- profiler: nested self-time attribution ------------------------------

TEST(ProfilerTest, NestedScopesAttributeSelfTime) {
  Profiler p;
  p.arm();
  auto spin = [] {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink += i;
  };
  ASSERT_TRUE(p.enter(ProfCategory::kSim));
  spin();
  ASSERT_TRUE(p.enter(ProfCategory::kChannel));
  spin();
  p.leave();
  spin();
  p.leave();

  const auto& sim = p.entry(ProfCategory::kSim);
  const auto& chan = p.entry(ProfCategory::kChannel);
  EXPECT_EQ(sim.calls, 1u);
  EXPECT_EQ(chan.calls, 1u);
  EXPECT_GT(sim.self_ns, 0u);
  EXPECT_GT(chan.self_ns, 0u);
  // Self time excludes the nested scope, so neither side swallowed the
  // other: both spins attribute separately and sum to the total.
  EXPECT_EQ(p.total_self_ns(), sim.self_ns + chan.self_ns);
  const std::string table = p.table();
  EXPECT_NE(table.find("sim"), std::string::npos);
  EXPECT_NE(table.find("channel"), std::string::npos);
  p.disarm();
}

// --- ScopedTelemetry: full five-instrument install and restore -----------

TEST(ScopedTelemetryFullStack, FiveInstrumentsInstallNestAndRestore) {
  Registry reg;
  Tracer trc;
  SpanRecorder sp;
  FlightRecorder fl;
  Profiler pr;
  reg.enable();
  trc.arm(256);
  sp.arm(1024);
  fl.arm(8);
  pr.arm();
  ASSERT_FALSE(spanning());
  ASSERT_FALSE(flight_recording());
  ASSERT_FALSE(profiling());
  {
    ScopedTelemetry scoped(&reg, &trc, &sp, &fl, &pr);
    EXPECT_TRUE(spanning());
    EXPECT_TRUE(flight_recording());
    EXPECT_TRUE(profiling());
    EXPECT_EQ(&spans(), &sp);
    EXPECT_EQ(&flight(), &fl);
    EXPECT_EQ(&profiler(), &pr);
    flight().record(FlightLayer::kSr, 1, "probe", SimTime{}, 7);
    {
      SpanRecorder inner;  // deliberately disarmed
      ScopedTelemetry nested(nullptr, nullptr, &inner);
      EXPECT_EQ(&spans(), &inner);
      EXPECT_FALSE(spanning()) << "fast flag must track the disarmed inner";
      // nullptr slots mean "process default", not "inherit the enclosing
      // override" — the nested scope swaps flight back to the (disarmed)
      // default and the destructor reinstates fl.
      EXPECT_FALSE(flight_recording());
      EXPECT_NE(&flight(), &fl);
    }
    EXPECT_TRUE(flight_recording());
    EXPECT_EQ(&spans(), &sp);
    EXPECT_TRUE(spanning()) << "fast flag must resync on restore";
  }
  EXPECT_FALSE(spanning());
  EXPECT_FALSE(flight_recording());
  EXPECT_FALSE(profiling());
  EXPECT_EQ(fl.history(1).size(), 1u) << "record landed in the override";
}

// --- sampler: late-column footer ------------------------------------------

TEST(SamplerFooterTest, ColumnsFooterAppearsOnlyForMidRunColumns) {
  auto run_once = [](bool late_column) -> std::string {
    Registry reg;
    reg.enable();
    Sampler sampler(reg, 1e-3);
    Counter a = reg.counter("early.metric");
    a.inc(3);
    sampler.sample(0.0);
    if (late_column) {
      Counter b = reg.counter("late.metric");
      b.inc(5);
    }
    sampler.sample(1e-3);
    return sampler.to_csv();
  };

  const std::string with_late = run_once(true);
  EXPECT_NE(with_late.find("# columns: sim_time_s,early.metric,late.metric"),
            std::string::npos)
      << with_late;
  // The footer is the last line, after every data row.
  EXPECT_GT(with_late.find("# columns:"), with_late.rfind("0.001,"));

  const std::string without = run_once(false);
  EXPECT_EQ(without.find("# columns:"), std::string::npos) << without;

  // Determinism: identical runs give bit-identical output, footer included.
  EXPECT_EQ(with_late, run_once(true));
  EXPECT_EQ(without, run_once(false));
}

// --- satellite: Histogram / RunningStats edge cases ----------------------

TEST(ThreadScopedTelemetryTest, ThreadsWithOwnInstancesNeverCrossWire) {
  // Two threads each install a private Registry/Tracer via ScopedTelemetry
  // and hammer identically named metrics. With any shared state the counts,
  // instance names, or trace rings would interleave; per-thread resolution
  // keeps every observation local, and the process-wide default stays
  // untouched throughout.
  Registry& process_default = registry();
  ASSERT_FALSE(process_default.enabled());

  constexpr int kIters = 5000;
  struct Outcome {
    std::uint64_t count{0};
    std::size_t traces{0};
    std::string instance0;
    bool saw_own_registry{false};
  };
  Outcome outcomes[2];
  auto body = [&](int id) {
    Registry reg;
    Tracer trc;
    reg.enable();
    trc.arm(1u << 14);  // holds both threads' full event streams

    ScopedTelemetry scoped(&reg, &trc);
    outcomes[id].saw_own_registry = (&registry() == &reg) && enabled();
    outcomes[id].instance0 = registry().instance_name("sim.channel");
    auto c = registry().counter("contended.name");
    for (int i = 0; i < kIters * (id + 1); ++i) {
      c.inc();
      if (tracing()) {
        tracer().emit(SimTime::from_seconds(i * 1e-6),
                      TraceEventType::kTx, static_cast<std::uint32_t>(id));
      }
    }
    outcomes[id].count = reg.counter_value("contended.name");
    outcomes[id].traces = trc.size();
  };
  std::thread t0(body, 0), t1(body, 1);
  t0.join();
  t1.join();

  for (int id = 0; id < 2; ++id) {
    EXPECT_TRUE(outcomes[id].saw_own_registry) << id;
    EXPECT_EQ(outcomes[id].instance0, "sim.channel0") << id;
    EXPECT_EQ(outcomes[id].count,
              static_cast<std::uint64_t>(kIters * (id + 1))) << id;
    EXPECT_EQ(outcomes[id].traces,
              static_cast<std::size_t>(kIters * (id + 1))) << id;
  }
  EXPECT_FALSE(process_default.enabled());
  EXPECT_FALSE(process_default.has("contended.name"));
  EXPECT_EQ(&registry(), &process_default);
}

TEST(HistogramEdgeCases, MergeEmptyIsIdentity) {
  Histogram a(1e-6, 10.0);
  a.record(0.5);
  a.record(2.0);
  const Histogram empty(1e-6, 10.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.25);

  Histogram b(1e-6, 10.0);
  b.merge(a);  // merge into empty
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.percentile(100.0), a.percentile(100.0));
}

TEST(HistogramEdgeCases, ValuesClampToRange) {
  Histogram h(1e-3, 1.0);
  h.record(1e-9);   // below range -> clamped into the bottom bucket
  h.record(100.0);  // above range -> clamped into the top bucket
  EXPECT_EQ(h.count(), 2u);
  // True extremes are preserved by the min/max trackers even when the
  // bucket index saturates.
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Percentile answers stay inside the representable range.
  EXPECT_GE(h.percentile(50.0), 0.0);
  EXPECT_LE(h.percentile(0.0), h.percentile(100.0));
}

TEST(HistogramEdgeCases, SingleBucketPercentiles) {
  Histogram h(1e-6, 10.0);
  for (int i = 0; i < 1000; ++i) h.record(0.123);
  EXPECT_EQ(h.count(), 1000u);
  // Everything is in one bucket: every percentile lands near the value.
  const double p50 = h.percentile(50.0);
  const double p999 = h.percentile(99.9);
  EXPECT_NEAR(p50, 0.123, 0.123 * 0.1);
  EXPECT_NEAR(p999, 0.123, 0.123 * 0.1);
  EXPECT_DOUBLE_EQ(h.median(), p50);
}

TEST(RunningStatsEdgeCases, MergeMatchesSinglePassReference) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-5.0, 20.0);
  RunningStats whole, left, right;
  for (int i = 0; i < 2000; ++i) {
    const double x = dist(rng);
    whole.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsEdgeCases, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty right side
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  EXPECT_DOUBLE_EQ(a.stddev(), a_copy.stddev());
  b.merge(a);  // empty left side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 3.0);
}

}  // namespace
}  // namespace sdr::telemetry
