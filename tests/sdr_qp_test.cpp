// End-to-end tests of the SDR middleware over the software NIC + simulated
// long-haul link: order-based matching, CTS flow, partial-completion
// bitmaps under loss, streaming retransmission, one-shot sends, user
// immediates, late-packet protection (NULL key + generations), message-ID
// wraparound.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::core {
namespace {

QpAttr test_attr() {
  QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;         // 4 packets per chunk
  attr.max_msg_size = 64 * 1024;  // 16 chunks per message slot
  attr.max_inflight = 8;
  attr.generations = 2;
  attr.channels = 1;
  return attr;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131 + (i >> 8));
  }
  return v;
}

class SdrFixture : public ::testing::Test {
 protected:
  void wire(double p_drop_fwd, double p_drop_bwd = 0.0,
            QpAttr attr = test_attr()) {
    // Destruction order matters on re-wire: SDR QPs unregister from their
    // NIC, so contexts must go before the NIC pair.
    ctx_a_.reset();
    ctx_b_.reset();
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 10.0;
    cfg.seed = 11;
    pair_ = verbs::make_connected_pair(sim_, cfg, p_drop_fwd, p_drop_bwd);
    ctx_a_ = std::make_unique<Context>(*pair_.a, DevAttr{});
    ctx_b_ = std::make_unique<Context>(*pair_.b, DevAttr{});
    qp_a_ = ctx_a_->create_qp(attr);
    qp_b_ = ctx_b_->create_qp(attr);
    ASSERT_NE(qp_a_, nullptr);
    ASSERT_NE(qp_b_, nullptr);
    ASSERT_TRUE(qp_a_->connect(qp_b_->info()).is_ok());
    ASSERT_TRUE(qp_b_->connect(qp_a_->info()).is_ok());
  }

  sim::Simulator sim_;
  verbs::NicPair pair_;
  std::unique_ptr<Context> ctx_a_, ctx_b_;
  Qp* qp_a_{nullptr};
  Qp* qp_b_{nullptr};
};

TEST_F(SdrFixture, InvalidAttrRejected) {
  wire(0.0);
  QpAttr bad = test_attr();
  bad.chunk_size = 1000;
  EXPECT_EQ(ctx_a_->create_qp(bad), nullptr);
}

TEST_F(SdrFixture, AttrMismatchRejectedAtConnect) {
  wire(0.0);
  QpAttr other = test_attr();
  other.chunk_size = 8192;
  Qp* odd = ctx_a_->create_qp(other);
  ASSERT_NE(odd, nullptr);
  EXPECT_EQ(odd->connect(qp_b_->info()).code(), StatusCode::kInvalidArgument);
}

TEST_F(SdrFixture, OneShotSendLossless) {
  wire(0.0);
  const auto src = pattern(20000);
  std::vector<std::uint8_t> dst(64 * 1024, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), src.size(), mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), src.size(), 0, false, &sh).is_ok());
  sim_.run();

  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_TRUE(qp_a_->send_poll(sh).is_ok());
  EXPECT_TRUE(qp_b_->recv_complete(rh).is_ok());
}

TEST_F(SdrFixture, BitmapShowsPartialCompletionUnderLoss) {
  // The core SDR service: a lossy transfer leaves exactly the dropped
  // chunks unset in the frontend bitmap.
  wire(0.05);
  const std::size_t len = 64 * 1024;  // 64 packets, 16 chunks
  const auto src = pattern(len);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();

  const AtomicBitmap* bitmap = nullptr;
  ASSERT_TRUE(qp_b_->recv_bitmap_get(rh, &bitmap).is_ok());
  ASSERT_EQ(bitmap->size(), 16u);

  // Every set chunk bit corresponds to fully intact data.
  const MessageTable& table = qp_b_->message_table();
  std::size_t set_chunks = 0;
  for (std::size_t c = 0; c < 16; ++c) {
    if (!bitmap->test(c)) continue;
    ++set_chunks;
    EXPECT_EQ(std::memcmp(dst.data() + c * 4096, src.data() + c * 4096, 4096),
              0)
        << "chunk " << c << " signaled complete but data differs";
  }
  // With 5% packet loss over 64 packets, some chunks are typically missing
  // and the message is not complete; the per-packet bitmap matches counts.
  EXPECT_LT(set_chunks, 16u);
  EXPECT_GT(set_chunks, 0u);
  EXPECT_EQ(table.packets_received(rh->slot()),
            table.packet_bitmap(rh->slot()).popcount());
}

TEST_F(SdrFixture, StreamingRetransmissionFillsBitmap) {
  // The SR use case: poll the bitmap, re-send missing chunks through
  // send_stream_continue until the receive completes.
  wire(0.05);
  const std::size_t len = 64 * 1024;
  const auto src = pattern(len, 7);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_stream_start(0, false, &sh).is_ok());
  ASSERT_TRUE(qp_a_->send_stream_continue(sh, src.data(), 0, len).is_ok());
  sim_.run();

  const AtomicBitmap* bitmap = nullptr;
  ASSERT_TRUE(qp_b_->recv_bitmap_get(rh, &bitmap).is_ok());
  // Retransmit missing chunks until done (bounded rounds: loss is 5%).
  for (int round = 0; round < 50 && !qp_b_->recv_done(rh); ++round) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (bitmap->test(c)) continue;
      ASSERT_TRUE(qp_a_
                      ->send_stream_continue(sh, src.data() + c * 4096,
                                             c * 4096, 4096)
                      .is_ok());
    }
    sim_.run();
  }
  ASSERT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  ASSERT_TRUE(qp_a_->send_stream_end(sh).is_ok());
  sim_.run();
  EXPECT_TRUE(qp_a_->send_poll(sh).is_ok());
}

TEST_F(SdrFixture, OrderBasedMatching) {
  // Paper §3.1.3: Send1 lands in Recv1, Send2 in Recv2 — no rkey exchange.
  wire(0.0);
  const auto src1 = pattern(8192, 1);
  const auto src2 = pattern(8192, 2);
  std::vector<std::uint8_t> dst1(8192, 0), dst2(8192, 0);
  const auto* mr1 = ctx_b_->mr_reg(dst1.data(), dst1.size());
  const auto* mr2 = ctx_b_->mr_reg(dst2.data(), dst2.size());

  RecvHandle *rh1 = nullptr, *rh2 = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst1.data(), 8192, mr1, &rh1).is_ok());
  ASSERT_TRUE(qp_b_->recv_post(dst2.data(), 8192, mr2, &rh2).is_ok());
  SendHandle *sh1 = nullptr, *sh2 = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src1.data(), 8192, 0, false, &sh1).is_ok());
  ASSERT_TRUE(qp_a_->send_post(src2.data(), 8192, 0, false, &sh2).is_ok());
  sim_.run();

  EXPECT_EQ(std::memcmp(dst1.data(), src1.data(), 8192), 0);
  EXPECT_EQ(std::memcmp(dst2.data(), src2.data(), 8192), 0);
}

TEST_F(SdrFixture, SendBeforeReceiveIsQueuedUntilCts) {
  // The sender may start before the receiver posts; chunks queue and flush
  // when the CTS arrives.
  wire(0.0);
  const auto src = pattern(8192, 3);
  std::vector<std::uint8_t> dst(8192, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), 8192, 0, false, &sh).is_ok());
  sim_.run();  // no receive posted: nothing happens
  EXPECT_EQ(qp_a_->send_poll(sh).code(), StatusCode::kNotReady);
  EXPECT_GT(qp_a_->stats().sends_queued_waiting_cts, 0u);

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), 8192, mr, &rh).is_ok());
  sim_.run();
  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 8192), 0);
  EXPECT_TRUE(qp_a_->send_poll(sh).is_ok());
}

TEST_F(SdrFixture, UserImmediateReconstruction) {
  wire(0.0);
  const std::size_t len = 16 * 1024;  // 16 packets >= 8 fragments
  const auto src = pattern(len, 4);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  std::uint32_t imm_out = 0;
  EXPECT_EQ(qp_b_->recv_imm_get(rh, &imm_out).code(), StatusCode::kNotReady);

  SendHandle* sh = nullptr;
  ASSERT_TRUE(
      qp_a_->send_post(src.data(), len, 0xFEEDC0DE, true, &sh).is_ok());
  sim_.run();
  ASSERT_TRUE(qp_b_->recv_imm_get(rh, &imm_out).is_ok());
  EXPECT_EQ(imm_out, 0xFEEDC0DE);
}

TEST_F(SdrFixture, RecvEventsFireChunkAndMessage) {
  wire(0.0);
  const std::size_t len = 16 * 1024;  // 4 chunks
  const auto src = pattern(len, 5);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  int chunk_events = 0, msg_events = 0;
  qp_b_->set_recv_event_handler([&](const RecvEvent& ev) {
    if (ev.type == RecvEvent::Type::kChunkCompleted) ++chunk_events;
    if (ev.type == RecvEvent::Type::kMessageCompleted) ++msg_events;
  });
  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();
  EXPECT_EQ(chunk_events, 4);
  EXPECT_EQ(msg_events, 1);
}

TEST_F(SdrFixture, EarlyCompletionDiscardsLatePackets) {
  // Paper §3.3.1/Fig 6: completing a receive while packets are in flight
  // must not corrupt the buffer (NULL key) or the bitmaps (generation).
  wire(0.0);
  const std::size_t len = 32 * 1024;
  const auto src = pattern(len, 6);
  std::vector<std::uint8_t> dst(len, 0xAA);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());

  // Run only until the first few packets arrived, then complete early.
  sim_.run_until(SimTime::from_micros(40));
  ASSERT_TRUE(qp_b_->recv_complete(rh).is_ok());
  const std::vector<std::uint8_t> snapshot = dst;
  const std::uint64_t discarded_before = qp_b_->stats().completions_discarded;
  sim_.run();  // remaining packets arrive late

  // Buffer unchanged after completion; all late completions discarded.
  EXPECT_EQ(dst, snapshot);
  EXPECT_GT(qp_b_->stats().completions_discarded, discarded_before);
}

TEST_F(SdrFixture, SlotReuseWithGenerationsIsClean) {
  // Post/complete enough receives to wrap the message-ID space and cycle
  // generations; every transfer must be isolated from its predecessors.
  wire(0.0);
  const std::size_t len = 8192;
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  // 8 slots x 2 generations x 2 = 32 sequential messages.
  for (int i = 0; i < 32; ++i) {
    const auto src = pattern(len, static_cast<std::uint8_t>(i + 1));
    RecvHandle* rh = nullptr;
    ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok()) << i;
    SendHandle* sh = nullptr;
    ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok()) << i;
    sim_.run();
    ASSERT_TRUE(qp_b_->recv_done(rh)) << i;
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), len), 0) << i;
    ASSERT_TRUE(qp_b_->recv_complete(rh).is_ok());
    ASSERT_TRUE(qp_a_->send_poll(sh).is_ok());
  }
}

TEST_F(SdrFixture, InFlightLimitEnforced) {
  wire(0.0);
  std::vector<std::uint8_t> dst(64 * 1024);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  std::vector<RecvHandle*> handles;
  for (std::size_t i = 0; i < test_attr().max_inflight; ++i) {
    RecvHandle* rh = nullptr;
    ASSERT_TRUE(qp_b_->recv_post(dst.data(), 1024, mr, &rh).is_ok());
    handles.push_back(rh);
  }
  RecvHandle* extra = nullptr;
  EXPECT_EQ(qp_b_->recv_post(dst.data(), 1024, mr, &extra).code(),
            StatusCode::kResourceExhausted);
  // Completing the oldest frees its slot.
  ASSERT_TRUE(qp_b_->recv_complete(handles[0]).is_ok());
  EXPECT_TRUE(qp_b_->recv_post(dst.data(), 1024, mr, &extra).is_ok());
}

TEST_F(SdrFixture, ApiMisuseErrors) {
  wire(0.0);
  const auto src = pattern(4096);
  std::vector<std::uint8_t> dst(4096);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_stream_start(0, false, &sh).is_ok());
  // Unaligned offset.
  EXPECT_EQ(qp_a_->send_stream_continue(sh, src.data(), 100, 1024).code(),
            StatusCode::kInvalidArgument);
  // Beyond max message size.
  EXPECT_EQ(
      qp_a_->send_stream_continue(sh, src.data(), 63 * 1024, 4096).code(),
      StatusCode::kOutOfRange);
  // Continue after end.
  ASSERT_TRUE(qp_a_->send_stream_end(sh).is_ok());
  EXPECT_EQ(qp_a_->send_stream_continue(sh, src.data(), 0, 1024).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(qp_a_->send_stream_end(sh).code(),
            StatusCode::kFailedPrecondition);

  // Receive: buffer outside the MR.
  RecvHandle* rh = nullptr;
  EXPECT_EQ(
      qp_b_->recv_post(dst.data() + 1, dst.size(), mr, &rh).code(),
      StatusCode::kOutOfRange);
  // Oversized receive.
  std::vector<std::uint8_t> big(128 * 1024);
  const auto* big_mr = ctx_b_->mr_reg(big.data(), big.size());
  EXPECT_EQ(qp_b_->recv_post(big.data(), big.size(), big_mr, &rh).code(),
            StatusCode::kOutOfRange);
  // Null arguments.
  EXPECT_EQ(qp_b_->recv_post(nullptr, 10, mr, &rh).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(qp_b_->recv_complete(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(qp_a_->send_poll(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST_F(SdrFixture, MultiChannelDistributesTraffic) {
  QpAttr attr = test_attr();
  attr.channels = 4;
  wire(0.0, 0.0, attr);
  const std::size_t len = 64 * 1024;  // 64 packets over 4 channels
  const auto src = pattern(len, 9);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();
  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
}

// ---------------------------------------------------------------------------
// UD staging transport (paper §2.3)
// ---------------------------------------------------------------------------

TEST_F(SdrFixture, UdTransportDeliversWithStagingCopies) {
  QpAttr attr = test_attr();
  attr.transport = Transport::kUd;
  wire(0.0, 0.0, attr);
  const std::size_t len = 32 * 1024;
  const auto src = pattern(len, 21);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());

  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();

  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  // Every packet was staged and copied (the §2.3 cost UC avoids).
  EXPECT_EQ(qp_b_->stats().staged_packets, len / attr.mtu);
  EXPECT_EQ(qp_b_->stats().staged_bytes, len);
}

TEST_F(SdrFixture, UdTransportPartialBitmapUnderLoss) {
  QpAttr attr = test_attr();
  attr.transport = Transport::kUd;
  wire(0.1, 0.0, attr);
  const std::size_t len = 64 * 1024;
  const auto src = pattern(len, 22);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();
  const AtomicBitmap* bitmap = nullptr;
  ASSERT_TRUE(qp_b_->recv_bitmap_get(rh, &bitmap).is_ok());
  EXPECT_LT(bitmap->popcount(), bitmap->size());
  for (std::size_t c = 0; c < bitmap->size(); ++c) {
    if (bitmap->test(c)) {
      EXPECT_EQ(std::memcmp(dst.data() + c * 4096, src.data() + c * 4096,
                            4096),
                0);
    }
  }
}

TEST_F(SdrFixture, UdTransportLatePacketsNeverTouchUserMemory) {
  // The software staging backend checks generations BEFORE copying; an
  // early-completed receive leaves the destination byte-identical.
  QpAttr attr = test_attr();
  attr.transport = Transport::kUd;
  wire(0.0, 0.0, attr);
  const std::size_t len = 32 * 1024;
  const auto src = pattern(len, 23);
  std::vector<std::uint8_t> dst(len, 0xCC);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run_until(SimTime::from_micros(40));
  ASSERT_TRUE(qp_b_->recv_complete(rh).is_ok());
  const std::vector<std::uint8_t> snapshot = dst;
  sim_.run();
  EXPECT_EQ(dst, snapshot);
}

TEST_F(SdrFixture, TransportMismatchRejectedAtConnect) {
  wire(0.0);
  QpAttr ud_attr = test_attr();
  ud_attr.transport = Transport::kUd;
  Qp* ud_qp = ctx_a_->create_qp(ud_attr);
  ASSERT_NE(ud_qp, nullptr);
  EXPECT_EQ(ud_qp->connect(qp_b_->info()).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Reordering tolerance (the §3.2.1 design rationale)
// ---------------------------------------------------------------------------

TEST_F(SdrFixture, SurvivesReorderingWherePlainUcWritesDie) {
  // Channel with heavy reordering. A plain multi-packet UC Write loses
  // whole messages to ePSN mismatches; SDR's one-Write-per-packet backend
  // delivers everything.
  ctx_a_.reset();
  ctx_b_.reset();
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 77;
  cfg.reorder_probability = 0.05;
  cfg.reorder_extra_delay_s = 20e-6;  // hold packets back past neighbours
  pair_ = verbs::make_connected_pair(sim_, cfg, 0.0, 0.0);
  ctx_a_ = std::make_unique<Context>(*pair_.a, DevAttr{});
  ctx_b_ = std::make_unique<Context>(*pair_.b, DevAttr{});
  qp_a_ = ctx_a_->create_qp(test_attr());
  qp_b_ = ctx_b_->create_qp(test_attr());
  qp_a_->connect(qp_b_->info());
  qp_b_->connect(qp_a_->info());

  // Baseline: plain UC multi-packet Writes on the same fabric.
  verbs::CompletionQueue uc_rx_cq(1 << 12);
  verbs::QpConfig uc_cfg;
  uc_cfg.type = verbs::QpType::kUC;
  uc_cfg.mtu = 1024;
  uc_cfg.recv_cq = &uc_rx_cq;
  verbs::Qp* uc_tx = pair_.a->create_qp(uc_cfg);
  verbs::Qp* uc_rx = pair_.b->create_qp(uc_cfg);
  uc_tx->connect(pair_.b->id(), uc_rx->num());
  std::vector<std::uint8_t> uc_dst(16 * 1024);
  const auto* uc_mr = pair_.b->pd().register_mr(uc_dst.data(), uc_dst.size());
  const auto uc_src = pattern(16 * 1024, 31);
  const int uc_messages = 100;
  for (int i = 0; i < uc_messages; ++i) {
    verbs::WriteWr wr;
    wr.local_addr = uc_src.data();
    wr.length = uc_src.size();  // 16 packets
    wr.rkey = uc_mr->rkey();
    wr.with_imm = true;
    uc_tx->post_write(wr);
  }
  sim_.run();
  EXPECT_LT(uc_rx_cq.size(), 70u)
      << "plain UC should lose a significant fraction to reordering";

  // SDR on the same reordering fabric: every message completes.
  const std::size_t len = 16 * 1024;
  const auto src = pattern(len, 32);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  for (int i = 0; i < 8; ++i) {
    RecvHandle* rh = nullptr;
    ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
    SendHandle* sh = nullptr;
    ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
    sim_.run();
    ASSERT_TRUE(qp_b_->recv_done(rh)) << "message " << i;
    ASSERT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
    ASSERT_TRUE(qp_b_->recv_complete(rh).is_ok());
    ASSERT_TRUE(qp_a_->send_poll(sh).is_ok());
  }
}

TEST_F(SdrFixture, WireDuplicatesAreFilteredByThePacketBitmap) {
  // A duplicating channel (e.g. WAN path failover) delivers some packets
  // twice; the per-packet bitmap dedups them, the message completes once,
  // and data is intact.
  ctx_a_.reset();
  ctx_b_.reset();
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 41;
  cfg.duplicate_probability = 0.2;
  pair_ = verbs::make_connected_pair(sim_, cfg, 0.0, 0.0);
  ctx_a_ = std::make_unique<Context>(*pair_.a, DevAttr{});
  ctx_b_ = std::make_unique<Context>(*pair_.b, DevAttr{});
  qp_a_ = ctx_a_->create_qp(test_attr());
  qp_b_ = ctx_b_->create_qp(test_attr());
  qp_a_->connect(qp_b_->info());
  qp_b_->connect(qp_a_->info());

  const std::size_t len = 32 * 1024;  // 32 packets
  const auto src = pattern(len, 17);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  int msg_completions = 0;
  qp_b_->set_recv_event_handler([&](const RecvEvent& ev) {
    if (ev.type == RecvEvent::Type::kMessageCompleted) ++msg_completions;
  });
  RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
  SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim_.run();

  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(msg_completions, 1) << "duplicates must not re-complete";
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  EXPECT_GT(qp_b_->message_table().stats(rh->slot()).duplicates, 0u);
}

TEST_F(SdrFixture, LossyTransferNeverCorruptsReceivedChunks) {
  // Property over several lossy runs: whatever the bitmap claims complete
  // is byte-exact; whatever it does not claim is untouched or partial.
  for (const double p : {0.01, 0.1, 0.3}) {
    wire(p);
    const std::size_t len = 32 * 1024;
    const auto src = pattern(len, 11);
    std::vector<std::uint8_t> dst(len, 0x55);
    const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
    RecvHandle* rh = nullptr;
    ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());
    SendHandle* sh = nullptr;
    ASSERT_TRUE(qp_a_->send_post(src.data(), len, 0, false, &sh).is_ok());
    sim_.run();
    const AtomicBitmap* bitmap = nullptr;
    ASSERT_TRUE(qp_b_->recv_bitmap_get(rh, &bitmap).is_ok());
    for (std::size_t c = 0; c < bitmap->size(); ++c) {
      if (bitmap->test(c)) {
        ASSERT_EQ(
            std::memcmp(dst.data() + c * 4096, src.data() + c * 4096, 4096),
            0);
      }
    }
  }
}

}  // namespace
}  // namespace sdr::core
