// Cross-cutting integration tests: bidirectional SDR traffic, interleaved
// reliable transfers, failure-path behaviour (black-hole links, aborts),
// stats accounting, and small utilities (logging, status) not covered by
// the per-module suites.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/status.hpp"
#include "ec/reed_solomon.hpp"
#include "reliability/ec_protocol.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/fabric.hpp"
#include "verbs/nic.hpp"

namespace sdr {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  }
  return v;
}

core::QpAttr small_attr() {
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;
  attr.max_msg_size = 64 * 1024;
  attr.max_inflight = 8;
  return attr;
}

// ---------------------------------------------------------------------------
// Bidirectional SDR traffic on one QP pair
// ---------------------------------------------------------------------------

TEST(SdrIntegrationTest, BidirectionalTrafficOnOneQpPair) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 50.0;
  cfg.seed = 3;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.01, 0.01);
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::Qp* qa = ctx_a.create_qp(small_attr());
  core::Qp* qb = ctx_b.create_qp(small_attr());
  qa->connect(qb->info());
  qb->connect(qa->info());

  const std::size_t len = 32 * 1024;
  const auto src_ab = pattern(len, 1);
  const auto src_ba = pattern(len, 2);
  std::vector<std::uint8_t> dst_b(len, 0), dst_a(len, 0);
  const auto* mr_b = ctx_b.mr_reg(dst_b.data(), dst_b.size());
  const auto* mr_a = ctx_a.mr_reg(dst_a.data(), dst_a.size());

  core::RecvHandle *rh_b = nullptr, *rh_a = nullptr;
  ASSERT_TRUE(qb->recv_post(dst_b.data(), len, mr_b, &rh_b).is_ok());
  ASSERT_TRUE(qa->recv_post(dst_a.data(), len, mr_a, &rh_a).is_ok());
  core::SendHandle *sh_a = nullptr, *sh_b = nullptr;
  ASSERT_TRUE(qa->send_post(src_ab.data(), len, 0, false, &sh_a).is_ok());
  ASSERT_TRUE(qb->send_post(src_ba.data(), len, 0, false, &sh_b).is_ok());
  sim.run();

  // 1% loss: most chunks present in each direction; whatever completed is
  // byte-exact and the two directions never interfere.
  const core::MessageTable& tb = qb->message_table();
  const core::MessageTable& ta = qa->message_table();
  EXPECT_GT(tb.packets_received(rh_b->slot()), 0u);
  EXPECT_GT(ta.packets_received(rh_a->slot()), 0u);
  for (std::size_t c = 0; c < rh_b->chunk_count(); ++c) {
    if (tb.chunk_bitmap(rh_b->slot()).test(c)) {
      EXPECT_EQ(std::memcmp(dst_b.data() + c * 4096,
                            src_ab.data() + c * 4096, 4096),
                0);
    }
  }
  for (std::size_t c = 0; c < rh_a->chunk_count(); ++c) {
    if (ta.chunk_bitmap(rh_a->slot()).test(c)) {
      EXPECT_EQ(std::memcmp(dst_a.data() + c * 4096,
                            src_ba.data() + c * 4096, 4096),
                0);
    }
  }
}

TEST(SdrIntegrationTest, StatsCountersAreConsistent) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 5;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::Qp* qa = ctx_a.create_qp(small_attr());
  core::Qp* qb = ctx_b.create_qp(small_attr());
  qa->connect(qb->info());
  qb->connect(qa->info());

  const std::size_t len = 16 * 1024;  // 16 packets
  const auto src = pattern(len, 9);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  for (int i = 0; i < 3; ++i) {
    core::RecvHandle* rh = nullptr;
    ASSERT_TRUE(qb->recv_post(dst.data(), len, mr, &rh).is_ok());
    core::SendHandle* sh = nullptr;
    ASSERT_TRUE(qa->send_post(src.data(), len, 0, false, &sh).is_ok());
    sim.run();
    ASSERT_TRUE(qb->recv_complete(rh).is_ok());
    ASSERT_TRUE(qa->send_poll(sh).is_ok());
  }
  EXPECT_EQ(qb->stats().cts_sent, 3u);
  EXPECT_EQ(qa->stats().cts_received, 3u);
  EXPECT_EQ(qa->stats().data_packets_sent, 3u * 16u);
  EXPECT_EQ(qb->stats().completions_processed, 3u * 16u);
  EXPECT_EQ(qb->stats().completions_discarded, 0u);
  EXPECT_EQ(qa->stats().staged_packets, 0u);  // UC: zero-copy, no staging
}

// ---------------------------------------------------------------------------
// Reliability failure paths
// ---------------------------------------------------------------------------

TEST(ReliabilityIntegrationTest, EcGlobalTimeoutAbortsOnBlackHole) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 100.0;
  cfg.seed = 7;
  // Forward direction drops everything: nothing ever arrives.
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 1.0, 0.0);
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;
  attr.max_msg_size = 64 * 1024;
  attr.max_inflight = 16;
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());
  reliability::ControlLink ca(*pair.a), cb(*pair.b);
  ca.connect(pair.b->id(), cb.qp_number());
  cb.connect(pair.a->id(), ca.qp_number());

  reliability::LinkProfile profile;
  profile.bandwidth_bps = cfg.bandwidth_bps;
  profile.rtt_s = rtt_s(cfg.distance_km);
  profile.mtu = attr.mtu;
  profile.chunk_bytes = attr.chunk_size;
  ec::ReedSolomon codec(8, 4);
  reliability::EcProtoConfig config;
  config.k = 8;
  config.m = 4;
  config.global_timeout_factor = 5.0;  // fail fast for the test
  reliability::EcSender sender(sim, *qa, ca, profile, codec, config);
  reliability::EcReceiver receiver(sim, *qb, cb, profile, codec, config);

  const std::size_t len = 16 * 1024;  // 2 submessages
  const auto src = pattern(len, 4);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  Status final_status = Status::ok();
  bool called = false;
  ASSERT_TRUE(receiver
                  .expect(dst.data(), len, mr,
                          [&](const Status& s) {
                            final_status = s;
                            called = true;
                          })
                  .is_ok());
  ASSERT_TRUE(sender.write(src.data(), len, [](const Status&) {}).is_ok());
  sim.run_until(SimTime::from_seconds(60.0));

  ASSERT_TRUE(called) << "global timeout must fire on a black-hole link";
  EXPECT_EQ(final_status.code(), StatusCode::kAborted);
}

TEST(ReliabilityIntegrationTest, InterleavedSrMessagesComplete) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 100.0;
  cfg.seed = 13;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.03, 0.0);
  core::Context ctx_a(*pair.a, core::DevAttr{});
  core::Context ctx_b(*pair.b, core::DevAttr{});
  core::QpAttr attr = small_attr();
  attr.max_inflight = 8;
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());
  reliability::ControlLink ca(*pair.a), cb(*pair.b);
  ca.connect(pair.b->id(), cb.qp_number());
  cb.connect(pair.a->id(), ca.qp_number());
  reliability::LinkProfile profile;
  profile.bandwidth_bps = cfg.bandwidth_bps;
  profile.rtt_s = rtt_s(cfg.distance_km);
  profile.mtu = attr.mtu;
  profile.chunk_bytes = attr.chunk_size;
  reliability::SrProtoConfig config;
  config.rto_s = 3.0 * profile.rtt_s;
  config.ack_interval_s = profile.rtt_s / 4.0;
  reliability::SrSender sender(sim, *qa, ca, profile, config);
  reliability::SrReceiver receiver(sim, *qb, cb, profile, config);

  // Four messages in flight simultaneously on one sender/receiver pair.
  const std::size_t len = 32 * 1024;
  std::vector<std::vector<std::uint8_t>> srcs, dsts;
  for (int i = 0; i < 4; ++i) {
    srcs.push_back(pattern(len, static_cast<std::uint8_t>(10 + i)));
    dsts.emplace_back(len, 0);
  }
  int recv_done = 0, send_done = 0;
  for (int i = 0; i < 4; ++i) {
    const auto* mr = ctx_b.mr_reg(dsts[i].data(), dsts[i].size());
    ASSERT_TRUE(receiver
                    .expect(dsts[i].data(), len, mr,
                            [&](const Status& s) {
                              EXPECT_TRUE(s.is_ok());
                              ++recv_done;
                            })
                    .is_ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sender
                    .write(srcs[i].data(), len,
                           [&](const Status& s) {
                             EXPECT_TRUE(s.is_ok());
                             ++send_done;
                           })
                    .is_ok());
  }
  sim.run();
  EXPECT_EQ(recv_done, 4);
  EXPECT_EQ(send_done, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(std::memcmp(dsts[i].data(), srcs[i].data(), len), 0) << i;
  }
}

// ---------------------------------------------------------------------------
// Channel bookkeeping
// ---------------------------------------------------------------------------

TEST(ChannelIntegrationTest, StatsResetAndTrialRedraw) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 21;
  sim::Channel ch(sim, cfg, std::make_unique<sim::IidDrop>(0.5));
  ch.set_receiver([](sim::Packet&&) {});
  for (int i = 0; i < 1000; ++i) {
    sim::Packet p;
    p.bytes = 100;
    ch.send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(ch.stats().sent_packets, 1000u);
  EXPECT_GT(ch.stats().dropped_packets, 300u);
  ch.reset_stats();
  EXPECT_EQ(ch.stats().sent_packets, 0u);
  EXPECT_EQ(ch.stats().dropped_packets, 0u);
  ch.new_trial();  // must not crash / affect a stateless model
}

// ---------------------------------------------------------------------------
// Utilities
// ---------------------------------------------------------------------------

TEST(StatusTest, CodesAndFacadeMapping) {
  const Status ok = Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_int(), 0);
  const Status bad(StatusCode::kOutOfRange, "boom");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.to_int(), -5);
  EXPECT_EQ(to_string(bad.code()), "OUT_OF_RANGE");
  EXPECT_EQ(bad.message(), "boom");

  const Result<int> good(42);
  EXPECT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 42);
  const Result<int> fail(Status(StatusCode::kNotFound, "nope"));
  EXPECT_FALSE(fail.is_ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kNotFound);
}

TEST(LoggingTest, LevelGate) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // These must be no-ops (no crash, nothing asserted beyond the gate).
  SDR_DEBUG("dropped %d", 1);
  SDR_INFO("dropped %s", "too");
  set_log_level(before);
}

}  // namespace
}  // namespace sdr
