// Property tests for the erasure codecs: Reed-Solomon (MDS) recovers from
// ANY m erasures; XOR recovers exactly the patterns Appendix B.0.2 predicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"

namespace sdr::ec {
namespace {

struct CodecCase {
  std::size_t k;
  std::size_t m;
  bool mds;
};

class Blocks {
 public:
  Blocks(std::size_t k, std::size_t m, std::size_t block_len,
         std::uint64_t seed)
      : k_(k), m_(m), len_(block_len), storage_((k + m) * block_len) {
    Rng rng(seed);
    for (std::size_t i = 0; i < k * block_len; ++i) {
      storage_[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    original_.assign(storage_.begin(), storage_.begin() + k * block_len);
  }

  std::uint8_t* block(std::size_t i) { return storage_.data() + i * len_; }
  std::vector<const std::uint8_t*> data_ptrs() const {
    std::vector<const std::uint8_t*> v(k_);
    for (std::size_t i = 0; i < k_; ++i) v[i] = storage_.data() + i * len_;
    return v;
  }
  std::vector<std::uint8_t*> parity_ptrs() {
    std::vector<std::uint8_t*> v(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      v[i] = storage_.data() + (k_ + i) * len_;
    }
    return v;
  }
  std::vector<std::uint8_t*> all_ptrs() {
    std::vector<std::uint8_t*> v(k_ + m_);
    for (std::size_t i = 0; i < k_ + m_; ++i) {
      v[i] = storage_.data() + i * len_;
    }
    return v;
  }

  void erase(std::size_t i) {
    std::fill_n(block(i), len_, 0xEE);  // poison
  }

  bool data_intact() const {
    return std::equal(original_.begin(), original_.end(), storage_.begin());
  }

 private:
  std::size_t k_, m_, len_;
  std::vector<std::uint8_t> storage_;
  std::vector<std::uint8_t> original_;
};

std::unique_ptr<ErasureCodec> make_codec(const CodecCase& c) {
  if (c.mds) return std::make_unique<ReedSolomon>(c.k, c.m);
  return std::make_unique<XorCode>(c.k, c.m);
}

class CodecParamTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecParamTest, NoErasuresIsTriviallyRecoverable) {
  const CodecCase c = GetParam();
  auto codec = make_codec(c);
  Blocks blocks(c.k, c.m, 512, 1);
  auto data = blocks.data_ptrs();
  auto parity = blocks.parity_ptrs();
  codec->encode(std::span<const std::uint8_t* const>(data),
                std::span<std::uint8_t* const>(parity), 512);
  PresenceMap present(c.k + c.m, true);
  EXPECT_TRUE(codec->can_recover(present));
  auto all = blocks.all_ptrs();
  EXPECT_TRUE(codec->decode(std::span<std::uint8_t* const>(all), present, 512));
  EXPECT_TRUE(blocks.data_intact());
}

TEST_P(CodecParamTest, RandomRecoverableErasurePatterns) {
  const CodecCase c = GetParam();
  auto codec = make_codec(c);
  Rng rng(1000 + c.k * 10 + c.m);

  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t block_len = 64 + rng.next_below(512);
    Blocks blocks(c.k, c.m, block_len, trial * 7 + 3);
    auto data = blocks.data_ptrs();
    auto parity = blocks.parity_ptrs();
    codec->encode(std::span<const std::uint8_t* const>(data),
                  std::span<std::uint8_t* const>(parity), block_len);

    // Random erasure pattern with a bounded number of losses.
    PresenceMap present(c.k + c.m, true);
    const std::size_t losses = rng.next_below(c.m + 1);
    std::vector<std::size_t> order(c.k + c.m);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = 0; i < losses; ++i) {
      const std::size_t j = i + rng.next_below(order.size() - i);
      std::swap(order[i], order[j]);
      present[order[i]] = false;
    }
    if (!codec->can_recover(present)) continue;  // XOR may reject; skip

    for (std::size_t i = 0; i < c.k + c.m; ++i) {
      if (!present[i] && i < c.k) blocks.erase(i);
    }
    auto all = blocks.all_ptrs();
    ASSERT_TRUE(codec->decode(std::span<std::uint8_t* const>(all), present,
                              block_len));
    ASSERT_TRUE(blocks.data_intact()) << codec->name() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecParamTest,
    ::testing::Values(CodecCase{4, 2, true}, CodecCase{8, 4, true},
                      CodecCase{32, 8, true}, CodecCase{32, 4, true},
                      CodecCase{16, 8, true}, CodecCase{5, 3, true},
                      CodecCase{4, 2, false}, CodecCase{8, 4, false},
                      CodecCase{32, 8, false}, CodecCase{16, 8, false}),
    [](const ::testing::TestParamInfo<CodecCase>& param_info) {
      return std::string(param_info.param.mds ? "RS" : "XOR") + "_k" +
             std::to_string(param_info.param.k) + "_m" +
             std::to_string(param_info.param.m);
    });

// ---------------------------------------------------------------------------
// Reed-Solomon specifics
// ---------------------------------------------------------------------------

TEST(ReedSolomonTest, RecoversFromAnyMErasures) {
  // Exhaustively test all erasure patterns of exactly m losses for a small
  // code: the defining MDS property.
  const std::size_t k = 6, m = 3;
  ReedSolomon rs(k, m);
  for (std::size_t a = 0; a < k + m; ++a) {
    for (std::size_t b = a + 1; b < k + m; ++b) {
      for (std::size_t c = b + 1; c < k + m; ++c) {
        Blocks blocks(k, m, 128, a * 100 + b * 10 + c);
        auto data = blocks.data_ptrs();
        auto parity = blocks.parity_ptrs();
        rs.encode(std::span<const std::uint8_t* const>(data),
                  std::span<std::uint8_t* const>(parity), 128);
        PresenceMap present(k + m, true);
        present[a] = present[b] = present[c] = false;
        if (a < k) blocks.erase(a);
        if (b < k) blocks.erase(b);
        if (c < k) blocks.erase(c);
        ASSERT_TRUE(rs.can_recover(present));
        auto all = blocks.all_ptrs();
        ASSERT_TRUE(
            rs.decode(std::span<std::uint8_t* const>(all), present, 128));
        ASSERT_TRUE(blocks.data_intact())
            << "erasures " << a << "," << b << "," << c;
      }
    }
  }
}

TEST(ReedSolomonTest, FailsBeyondMErasures) {
  const std::size_t k = 4, m = 2;
  ReedSolomon rs(k, m);
  PresenceMap present(k + m, true);
  present[0] = present[1] = present[4] = false;  // 3 > m erasures
  EXPECT_FALSE(rs.can_recover(present));
}

TEST(ReedSolomonTest, RejectsInvalidParameters) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
}

TEST(ReedSolomonTest, ParityIsDeterministic) {
  ReedSolomon rs(4, 2);
  Blocks b1(4, 2, 256, 9), b2(4, 2, 256, 9);
  auto d1 = b1.data_ptrs();
  auto p1 = b1.parity_ptrs();
  auto d2 = b2.data_ptrs();
  auto p2 = b2.parity_ptrs();
  rs.encode(std::span<const std::uint8_t* const>(d1),
            std::span<std::uint8_t* const>(p1), 256);
  rs.encode(std::span<const std::uint8_t* const>(d2),
            std::span<std::uint8_t* const>(p2), 256);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(std::memcmp(p1[i], p2[i], 256), 0);
  }
}

TEST(ReedSolomonTest, LargeBlocksParallelEncodeMatchesSerial) {
  // Above the OpenMP threshold the parallel path must produce identical
  // parity to a byte-range-serial reference.
  const std::size_t k = 8, m = 4;
  const std::size_t big = 512 * 1024;  // above kParallelThreshold
  ReedSolomon rs(k, m);
  Blocks blocks(k, m, big, 77);
  auto data = blocks.data_ptrs();
  auto parity = blocks.parity_ptrs();
  rs.encode(std::span<const std::uint8_t* const>(data),
            std::span<std::uint8_t* const>(parity), big);

  // Reference: encode only the first 64 bytes with a fresh call and
  // compare the prefix (the kernel is byte-local).
  Blocks ref(k, m, big, 77);
  auto rdata = ref.data_ptrs();
  auto rparity = ref.parity_ptrs();
  rs.encode(std::span<const std::uint8_t* const>(rdata),
            std::span<std::uint8_t* const>(rparity), 64);
  for (std::size_t p = 0; p < m; ++p) {
    EXPECT_EQ(std::memcmp(parity[p], rparity[p], 64), 0);
  }
}

// ---------------------------------------------------------------------------
// XOR specifics
// ---------------------------------------------------------------------------

TEST(XorCodeTest, OneLossPerGroupRecovers) {
  const std::size_t k = 8, m = 4;  // groups of 2 data blocks + 1 parity
  XorCode xc(k, m);
  Blocks blocks(k, m, 256, 21);
  auto data = blocks.data_ptrs();
  auto parity = blocks.parity_ptrs();
  xc.encode(std::span<const std::uint8_t* const>(data),
            std::span<std::uint8_t* const>(parity), 256);
  // Lose one data block in every group: indices 0,1,2,3 (mod 4 groups).
  PresenceMap present(k + m, true);
  for (std::size_t g = 0; g < m; ++g) {
    present[g] = false;
    blocks.erase(g);
  }
  ASSERT_TRUE(xc.can_recover(present));
  auto all = blocks.all_ptrs();
  ASSERT_TRUE(xc.decode(std::span<std::uint8_t* const>(all), present, 256));
  EXPECT_TRUE(blocks.data_intact());
}

TEST(XorCodeTest, TwoLossesInOneGroupUnrecoverable) {
  const std::size_t k = 8, m = 4;
  XorCode xc(k, m);
  PresenceMap present(k + m, true);
  present[0] = present[4] = false;  // both in group 0 (0 mod 4 == 4 mod 4)
  EXPECT_FALSE(xc.can_recover(present));
}

TEST(XorCodeTest, DataLossWithParityLossUnrecoverable) {
  const std::size_t k = 8, m = 4;
  XorCode xc(k, m);
  PresenceMap present(k + m, true);
  present[1] = false;      // data in group 1
  present[k + 1] = false;  // parity of group 1
  EXPECT_FALSE(xc.can_recover(present));
}

TEST(XorCodeTest, ParityOnlyLossIsFine) {
  const std::size_t k = 8, m = 4;
  XorCode xc(k, m);
  PresenceMap present(k + m, true);
  for (std::size_t p = 0; p < m; ++p) present[k + p] = false;
  EXPECT_TRUE(xc.can_recover(present));
}

TEST(XorCodeTest, RejectsInvalidParameters) {
  EXPECT_THROW(XorCode(4, 0), std::invalid_argument);
  EXPECT_THROW(XorCode(2, 4), std::invalid_argument);
}

TEST(XorCodeTest, MatchesManualXor) {
  const std::size_t k = 6, m = 3;
  XorCode xc(k, m);
  Blocks blocks(k, m, 64, 31);
  auto data = blocks.data_ptrs();
  auto parity = blocks.parity_ptrs();
  xc.encode(std::span<const std::uint8_t* const>(data),
            std::span<std::uint8_t* const>(parity), 64);
  // parity[i] = XOR of data[j] with j % m == i.
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t byte = 0; byte < 64; ++byte) {
      std::uint8_t expect = 0;
      for (std::size_t j = p; j < k; j += m) expect ^= data[j][byte];
      ASSERT_EQ(parity[p][byte], expect);
    }
  }
}

}  // namespace
}  // namespace sdr::ec
