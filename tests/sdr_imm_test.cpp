// Tests for the 32-bit transport-immediate codec (paper §3.2.4): the
// default 10+18+4 split, the alternative 8+22+2 split, and user-immediate
// fragment sampling.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sdr/imm_codec.hpp"

namespace sdr::core {
namespace {

TEST(ImmLayoutTest, DefaultSplitMatchesPaper) {
  // 10 bits message ID -> 1024 in-flight descriptors; 18 bits offset ->
  // 1 GiB messages at 4 KiB MTU (2^18 packets); 4 user bits.
  EXPECT_TRUE(kDefaultImmLayout.valid());
  EXPECT_EQ(kDefaultImmLayout.max_messages(), 1024u);
  EXPECT_EQ(kDefaultImmLayout.max_packets() * 4096, 1ull << 30);
  EXPECT_EQ(kDefaultImmLayout.user_fragments(), 8u);
}

TEST(ImmLayoutTest, AlternativeSplit) {
  // 8+22+2: fewer in-flight messages, larger (16 GiB at 4 KiB) messages.
  EXPECT_TRUE(kLargeMessageImmLayout.valid());
  EXPECT_EQ(kLargeMessageImmLayout.max_messages(), 256u);
  EXPECT_EQ(kLargeMessageImmLayout.max_packets() * 4096, 16ull << 30);
  EXPECT_EQ(kLargeMessageImmLayout.user_fragments(), 16u);
}

TEST(ImmLayoutTest, InvalidSplitsRejected) {
  EXPECT_FALSE((ImmLayout{10, 18, 5}.valid()));  // 33 bits
  EXPECT_FALSE((ImmLayout{0, 28, 4}.valid()));
  EXPECT_FALSE((ImmLayout{31, 0, 1}.valid()));
}

class ImmCodecParamTest : public ::testing::TestWithParam<ImmLayout> {};

TEST_P(ImmCodecParamTest, EncodeDecodeRoundTrip) {
  const ImmCodec codec(GetParam());
  Rng rng(GetParam().msg_id_bits * 1000 + GetParam().offset_bits);
  for (int i = 0; i < 50000; ++i) {
    const auto msg = static_cast<std::uint32_t>(
        rng.next_below(codec.layout().max_messages()));
    const auto pkt = static_cast<std::uint32_t>(
        rng.next_below(codec.layout().max_packets()));
    const auto usr = static_cast<std::uint32_t>(
        rng.next_below(1ull << codec.layout().user_bits));
    const std::uint32_t imm = codec.encode(msg, pkt, usr);
    const ImmFields f = codec.decode(imm);
    ASSERT_EQ(f.msg_id, msg);
    ASSERT_EQ(f.packet_index, pkt);
    ASSERT_EQ(f.user_fragment, usr);
  }
}

TEST_P(ImmCodecParamTest, FieldsDoNotOverlap) {
  const ImmCodec codec(GetParam());
  // Max values in every field simultaneously survive the round trip.
  const std::uint32_t msg = codec.layout().max_messages() - 1;
  const auto pkt =
      static_cast<std::uint32_t>(codec.layout().max_packets() - 1);
  const std::uint32_t usr = (1u << codec.layout().user_bits) - 1;
  const ImmFields f = codec.decode(codec.encode(msg, pkt, usr));
  EXPECT_EQ(f.msg_id, msg);
  EXPECT_EQ(f.packet_index, pkt);
  EXPECT_EQ(f.user_fragment, usr);
}

INSTANTIATE_TEST_SUITE_P(Layouts, ImmCodecParamTest,
                         ::testing::Values(kDefaultImmLayout,
                                           kLargeMessageImmLayout,
                                           ImmLayout{12, 16, 4},
                                           ImmLayout{16, 16, 0}),
                         [](const auto& info) {
                           return "L" + std::to_string(info.param.msg_id_bits) +
                                  "_" + std::to_string(info.param.offset_bits) +
                                  "_" + std::to_string(info.param.user_bits);
                         });

TEST(ImmCodecTest, UserFragmentReassembly) {
  const ImmCodec codec(kDefaultImmLayout);
  const std::uint32_t user_imm = 0xDEADBEEF;
  // Collect fragments from packets 0..7 and reassemble.
  std::uint32_t rebuilt = 0;
  for (std::uint32_t pkt = 0; pkt < 8; ++pkt) {
    const std::uint32_t frag = codec.sample_user_fragment(user_imm, pkt);
    rebuilt |= frag << (codec.fragment_slot(pkt) * 4);
  }
  EXPECT_EQ(rebuilt, user_imm);
}

TEST(ImmCodecTest, FragmentsCycleBeyondEight) {
  const ImmCodec codec(kDefaultImmLayout);
  const std::uint32_t user_imm = 0x12345678;
  for (std::uint32_t pkt = 0; pkt < 64; ++pkt) {
    EXPECT_EQ(codec.sample_user_fragment(user_imm, pkt),
              codec.sample_user_fragment(user_imm, pkt % 8));
    EXPECT_EQ(codec.fragment_slot(pkt), pkt % 8);
  }
}

TEST(ImmCodecTest, ZeroUserBitsLayout) {
  const ImmCodec codec(ImmLayout{16, 16, 0});
  EXPECT_EQ(codec.layout().user_fragments(), 0u);
  EXPECT_EQ(codec.sample_user_fragment(0xFFFFFFFF, 3), 0u);
}

}  // namespace
}  // namespace sdr::core
