// Tests for the guided reliability-scheme tuner (paper §5.2): it must
// reproduce the paper's regime map — EC for BDP-scale messages at moderate
// drop rates, SR for huge messages at low drop rates and for tiny messages.
#include <gtest/gtest.h>

#include "reliability/tuner.hpp"

namespace sdr::reliability {
namespace {

LinkProfile cross_continent(double p_drop_packet) {
  LinkProfile p;
  p.bandwidth_bps = 400e9;
  p.rtt_s = 0.025;  // 3750 km
  p.p_drop_packet = p_drop_packet;
  p.mtu = 4096;
  p.chunk_bytes = 64 * 1024;
  return p;
}

TunerOptions fast_options() {
  TunerOptions opt;
  opt.tail_samples = 0;  // expectation-only for speed
  return opt;
}

TEST(TunerTest, EcWinsInTheRedRegion) {
  // Fig 9: 128 MiB at packet drop 1e-5..1e-3 -> EC outperforms SR.
  for (double p : {1e-5, 1e-4}) {
    const auto rec = recommend(cross_continent(p), 128u << 20, fast_options());
    EXPECT_TRUE(rec.best.scheme == model::Scheme::kEcMds ||
                rec.best.scheme == model::Scheme::kEcXor)
        << "p=" << p << " chose " << model::scheme_name(rec.best.scheme);
  }
}

TEST(TunerTest, SrWinsForHugeMessagesAtLowDrop) {
  // §5.2.2: 8 GiB at 1e-6 packet drop — injection hides retransmissions.
  const auto rec =
      recommend(cross_continent(1e-7), 8ull << 30, fast_options());
  EXPECT_TRUE(rec.best.scheme == model::Scheme::kSrRto ||
              rec.best.scheme == model::Scheme::kSrNack)
      << model::scheme_name(rec.best.scheme);
}

TEST(TunerTest, SmallMessagesDoNotJustifyEcCompute) {
  // Bottom rows of Fig 9: for small messages SR and EC tie; the ranking
  // must place an SR variant within a whisker of the best.
  const auto rec = recommend(cross_continent(1e-5), 64u << 10, fast_options());
  double best_sr = 1e30;
  for (const auto& c : rec.ranked) {
    if (c.scheme == model::Scheme::kSrRto ||
        c.scheme == model::Scheme::kSrNack) {
      best_sr = std::min(best_sr, c.expected_s);
    }
  }
  EXPECT_LT(best_sr / rec.best.expected_s, 1.05);
}

TEST(TunerTest, RankedListSortedAndComplete) {
  TunerOptions opt = fast_options();
  const auto rec = recommend(cross_continent(1e-4), 128u << 20, opt);
  // SR RTO + SR NACK + (MDS + XOR) x 4 splits = 10 candidates.
  EXPECT_EQ(rec.ranked.size(), 10u);
  for (std::size_t i = 1; i < rec.ranked.size(); ++i) {
    EXPECT_LE(rec.ranked[i - 1].expected_s, rec.ranked[i].expected_s + 1e-15);
  }
  EXPECT_EQ(rec.ranked.front().expected_s, rec.best.expected_s);
  EXPECT_FALSE(rec.rationale.empty());
}

TEST(TunerTest, TailWeightCanFlipTheChoice) {
  // With heavy drop, SR's p99.9 is catastrophically worse than its mean;
  // weighting the tail must never pick a scheme with a worse tail than the
  // unweighted winner's tail.
  TunerOptions opt;
  opt.tail_samples = 1500;
  opt.tail_weight = 0.0;
  const auto mean_rec = recommend(cross_continent(1e-4), 128u << 20, opt);
  opt.tail_weight = 1.0;
  const auto tail_rec = recommend(cross_continent(1e-4), 128u << 20, opt);
  EXPECT_LE(tail_rec.best.p999_s, mean_rec.best.p999_s * 1.001);
}

TEST(TunerTest, HigherDropPrefersMoreParity) {
  // Fig 10d: at higher drop rates lower data-to-parity ratios win among
  // the MDS splits.
  TunerOptions opt = fast_options();
  auto best_mds_ratio = [&](double p) {
    const auto rec = recommend(cross_continent(p), 128u << 20, opt);
    for (const auto& c : rec.ranked) {
      if (c.scheme == model::Scheme::kEcMds) {
        return static_cast<double>(c.params.ec.k) /
               static_cast<double>(c.params.ec.m);
      }
    }
    return 0.0;
  };
  EXPECT_GE(best_mds_ratio(1e-6), best_mds_ratio(2e-3));
}

TEST(TunerTest, ProfileChunkDropConversion) {
  // LinkProfile -> model params applies 1-(1-p)^N chunk amplification.
  const LinkProfile prof = cross_continent(1e-5);
  const auto link = prof.to_model();
  EXPECT_NEAR(link.p_drop, 1.6e-4, 2e-6);  // 16 packets per 64 KiB chunk
  EXPECT_EQ(link.chunk_bytes, prof.chunk_bytes);
}

// ---------------------------------------------------------------------------
// Property tests (sdrcheck satellite): the recommendation must be a pure,
// reproducible function of its inputs, and stable on a stable link —
// re-profiling an unchanged channel must not flip the scheme choice.
// ---------------------------------------------------------------------------

TEST(TunerProperty, RecommendationIsDeterministic) {
  TunerOptions opt;
  opt.tail_samples = 500;  // exercise the sampled-tail path, seeded
  for (double p : {1e-6, 1e-4, 1e-3}) {
    const auto a = recommend(cross_continent(p), 32u << 20, opt);
    const auto b = recommend(cross_continent(p), 32u << 20, opt);
    ASSERT_EQ(a.ranked.size(), b.ranked.size());
    EXPECT_EQ(a.best.scheme, b.best.scheme);
    EXPECT_DOUBLE_EQ(a.best.expected_s, b.best.expected_s);
    EXPECT_DOUBLE_EQ(a.best.p999_s, b.best.p999_s);
    for (std::size_t i = 0; i < a.ranked.size(); ++i) {
      EXPECT_EQ(a.ranked[i].scheme, b.ranked[i].scheme);
      EXPECT_DOUBLE_EQ(a.ranked[i].expected_s, b.ranked[i].expected_s);
    }
  }
}

TEST(TunerProperty, ConvergesOnAStableLink) {
  // Feed the tuner a profile whose RTT estimate wobbles within a converged
  // estimator's band (±2%, per RttEstimatorProperty.ConvergesOnAStableLink)
  // — the recommended scheme must not flip.
  TunerOptions opt = fast_options();
  for (double p : {1e-6, 1e-4}) {
    const auto baseline = recommend(cross_continent(p), 64u << 20, opt);
    for (double wobble : {0.98, 0.99, 1.01, 1.02}) {
      LinkProfile prof = cross_continent(p);
      prof.rtt_s *= wobble;
      const auto rec = recommend(prof, 64u << 20, opt);
      EXPECT_EQ(rec.best.scheme, baseline.best.scheme)
          << "p=" << p << " wobble=" << wobble;
    }
  }
}

}  // namespace
}  // namespace sdr::reliability
