// Tests for the SDR message table: per-packet -> chunk bitmap coalescing,
// generation checks (late-packet protection stage 2), duplicate filtering,
// user-immediate reassembly, slot lifecycle.
#include <gtest/gtest.h>

#include "sdr/message_table.hpp"

namespace sdr::core {
namespace {

QpAttr small_attr() {
  QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;        // 4 packets per chunk
  attr.max_msg_size = 64 * 1024;  // 64 packets, 16 chunks
  attr.max_inflight = 8;
  attr.generations = 4;
  return attr;
}

ImmFields fields(std::uint32_t slot, std::uint32_t pkt,
                 std::uint32_t frag = 0) {
  return ImmFields{slot, pkt, frag};
}

TEST(MessageTableTest, AttrValidation) {
  QpAttr bad = small_attr();
  bad.chunk_size = 1000;  // not a multiple of MTU
  EXPECT_FALSE(bad.valid());
  bad = small_attr();
  bad.max_msg_size = 10000;  // not a multiple of chunk
  EXPECT_FALSE(bad.valid());
  bad = small_attr();
  bad.max_inflight = 4096;  // exceeds 2^10 imm message ids
  EXPECT_FALSE(bad.valid());
  EXPECT_TRUE(small_attr().valid());
}

TEST(MessageTableTest, ArmReleaseLifecycle) {
  MessageTable table(small_attr());
  EXPECT_TRUE(table.arm(0, 0, 8192).is_ok());
  EXPECT_TRUE(table.slot_active(0));
  // Re-arming an active slot is an API error.
  EXPECT_EQ(table.arm(0, 1, 8192).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(table.release(0).is_ok());
  EXPECT_FALSE(table.slot_active(0));
  EXPECT_EQ(table.release(0).code(), StatusCode::kFailedPrecondition);
  // Slot range / size checks.
  EXPECT_EQ(table.arm(99, 0, 8192).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.arm(1, 0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.arm(1, 0, 1 << 20).code(), StatusCode::kInvalidArgument);
}

TEST(MessageTableTest, ChunkCoalescing) {
  // A chunk bit is set exactly when ALL its packets arrived (paper §3.2.1:
  // "A chunk is only signaled when all its packets arrive").
  MessageTable table(small_attr());
  table.arm(0, 0, 16384);  // 16 packets, 4 chunks

  // Deliver packets 0..2 of chunk 0: no chunk completion yet.
  for (std::uint32_t p = 0; p < 3; ++p) {
    const auto r = table.process_completion(fields(0, p), 0);
    EXPECT_TRUE(r.accepted);
    EXPECT_TRUE(r.new_packet);
    EXPECT_FALSE(r.chunk_completed);
  }
  EXPECT_FALSE(table.chunk_bitmap(0).test(0));
  // Final packet of chunk 0 completes it.
  const auto r = table.process_completion(fields(0, 3), 0);
  EXPECT_TRUE(r.chunk_completed);
  EXPECT_EQ(r.chunk_index, 0u);
  EXPECT_TRUE(table.chunk_bitmap(0).test(0));
  EXPECT_FALSE(r.message_completed);
}

TEST(MessageTableTest, OutOfOrderDeliveryStillCoalesces) {
  MessageTable table(small_attr());
  table.arm(0, 0, 16384);
  // Chunk 2 = packets 8..11, delivered in reverse.
  for (std::uint32_t p : {11u, 10u, 9u}) {
    EXPECT_FALSE(table.process_completion(fields(0, p), 0).chunk_completed);
  }
  EXPECT_TRUE(table.process_completion(fields(0, 8), 0).chunk_completed);
  EXPECT_TRUE(table.chunk_bitmap(0).test(2));
}

TEST(MessageTableTest, MessageCompletion) {
  MessageTable table(small_attr());
  table.arm(2, 0, 8192);  // 8 packets, 2 chunks
  for (std::uint32_t p = 0; p < 7; ++p) {
    EXPECT_FALSE(table.process_completion(fields(2, p), 0).message_completed);
  }
  const auto r = table.process_completion(fields(2, 7), 0);
  EXPECT_TRUE(r.message_completed);
  EXPECT_TRUE(table.message_complete(2));
  EXPECT_EQ(table.packets_received(2), 8u);
}

TEST(MessageTableTest, PartialFinalChunk) {
  // 5 KiB message at 1 KiB MTU / 4 KiB chunks: chunk 1 holds one packet.
  MessageTable table(small_attr());
  table.arm(0, 0, 5 * 1024);
  EXPECT_EQ(table.packets(0), 5u);
  EXPECT_EQ(table.chunks(0), 2u);
  // The single packet of the final chunk completes that chunk.
  const auto r = table.process_completion(fields(0, 4), 0);
  EXPECT_TRUE(r.chunk_completed);
  EXPECT_EQ(r.chunk_index, 1u);
}

TEST(MessageTableTest, DuplicatesFiltered) {
  MessageTable table(small_attr());
  table.arm(0, 0, 4096);
  EXPECT_TRUE(table.process_completion(fields(0, 1), 0).new_packet);
  const auto dup = table.process_completion(fields(0, 1), 0);
  EXPECT_TRUE(dup.accepted);
  EXPECT_FALSE(dup.new_packet);
  EXPECT_EQ(table.stats(0).duplicates, 1u);
  EXPECT_EQ(table.packets_received(0), 1u);
}

TEST(MessageTableTest, StaleGenerationDiscarded) {
  // Stage-2 late-packet protection (paper §3.3.2): completions delivered by
  // a QP of the wrong generation never touch the bitmaps.
  MessageTable table(small_attr());
  table.arm(3, 2, 8192);
  const auto wrong = table.process_completion(fields(3, 0), 1);
  EXPECT_FALSE(wrong.accepted);
  EXPECT_EQ(table.stats(3).stale_generation, 1u);
  EXPECT_EQ(table.packets_received(3), 0u);
  const auto right = table.process_completion(fields(3, 0), 2);
  EXPECT_TRUE(right.accepted);
}

TEST(MessageTableTest, InactiveSlotDiscards) {
  MessageTable table(small_attr());
  table.arm(1, 0, 4096);
  table.release(1);
  EXPECT_FALSE(table.process_completion(fields(1, 0), 0).accepted);
}

TEST(MessageTableTest, PacketBeyondMessageDiscarded) {
  MessageTable table(small_attr());
  table.arm(0, 0, 4096);  // 4 packets
  EXPECT_FALSE(table.process_completion(fields(0, 4), 0).accepted);
  EXPECT_FALSE(table.process_completion(fields(0, 63), 0).accepted);
}

TEST(MessageTableTest, BadSlotIdDiscarded) {
  MessageTable table(small_attr());
  EXPECT_FALSE(table.process_completion(fields(200, 0), 0).accepted);
}

TEST(MessageTableTest, SlotReuseClearsState) {
  MessageTable table(small_attr());
  table.arm(0, 0, 8192);
  for (std::uint32_t p = 0; p < 8; ++p) {
    table.process_completion(fields(0, p), 0);
  }
  EXPECT_TRUE(table.message_complete(0));
  table.release(0);
  table.arm(0, 1, 8192);
  EXPECT_FALSE(table.message_complete(0));
  EXPECT_EQ(table.packets_received(0), 0u);
  EXPECT_EQ(table.chunk_bitmap(0).popcount(), 0u);
  // Old-generation packet for the reused slot is rejected.
  EXPECT_FALSE(table.process_completion(fields(0, 0), 0).accepted);
  EXPECT_TRUE(table.process_completion(fields(0, 0), 1).accepted);
}

TEST(MessageTableTest, UserImmReassembly) {
  MessageTable table(small_attr());
  table.arm(0, 0, 16384);  // 16 packets >= 8 fragments
  const ImmCodec codec(small_attr().imm);
  const std::uint32_t user_imm = 0xCAFEF00D;
  std::uint32_t out = 0;
  EXPECT_FALSE(table.user_imm_ready(0, &out));
  for (std::uint32_t p = 0; p < 7; ++p) {
    table.process_completion(
        fields(0, p, codec.sample_user_fragment(user_imm, p)), 0);
  }
  EXPECT_FALSE(table.user_imm_ready(0, &out)) << "7 of 8 fragments seen";
  table.process_completion(
      fields(0, 7, codec.sample_user_fragment(user_imm, 7)), 0);
  ASSERT_TRUE(table.user_imm_ready(0, &out));
  EXPECT_EQ(out, user_imm);
}

TEST(MessageTableTest, UserImmShortMessageReachableSubset) {
  // A 4-packet message can only ever deliver fragments 0..3; the immediate
  // is "ready" once those arrive (low 16 bits valid).
  MessageTable table(small_attr());
  table.arm(0, 0, 4096);  // 4 packets
  const ImmCodec codec(small_attr().imm);
  const std::uint32_t user_imm = 0x0000BEEF;  // fits in 16 bits
  for (std::uint32_t p = 0; p < 4; ++p) {
    table.process_completion(
        fields(0, p, codec.sample_user_fragment(user_imm, p)), 0);
  }
  std::uint32_t out = 0;
  ASSERT_TRUE(table.user_imm_ready(0, &out));
  EXPECT_EQ(out & 0xFFFF, 0xBEEFu);
}

TEST(MessageTableTest, AlternativeImmLayout) {
  QpAttr attr = small_attr();
  attr.imm = kLargeMessageImmLayout;  // 8+22+2
  attr.max_inflight = 8;
  ASSERT_TRUE(attr.valid());
  MessageTable table(attr);
  table.arm(0, 0, 16384);
  const ImmCodec codec(attr.imm);
  // Round-trip a completion through the wire encoding.
  const std::uint32_t imm = codec.encode(0, 15, 1);
  const ImmFields f = codec.decode(imm);
  const auto r = table.process_completion(f, 0);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(table.packet_bitmap(0).test(15));
}

}  // namespace
}  // namespace sdr::core
