// Exercises the C-style Table 1 facade end-to-end: context/QP creation,
// out-of-band info exchange, one-shot send with user immediate, bitmap
// polling, receive completion.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sdr/sdr.h"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace {

using namespace sdr;  // NOLINT

TEST(SdrCApiTest, QuickstartFlow) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 5.0;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
  sdr_register_device("mlx5_0", pair.a.get());
  sdr_register_device("mlx5_1", pair.b.get());

  sdr_ctx* ctx_a = sdr_context_create("mlx5_0", nullptr);
  sdr_ctx* ctx_b = sdr_context_create("mlx5_1", nullptr);
  ASSERT_NE(ctx_a, nullptr);
  ASSERT_NE(ctx_b, nullptr);
  EXPECT_EQ(sdr_context_create("no_such_dev", nullptr), nullptr);

  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;
  attr.max_msg_size = 64 * 1024;
  attr.max_inflight = 8;
  sdr_qp* qa = sdr_qp_create(ctx_a, &attr);
  sdr_qp* qb = sdr_qp_create(ctx_b, &attr);
  ASSERT_NE(qa, nullptr);
  ASSERT_NE(qb, nullptr);

  core::QpInfo info_a, info_b;
  ASSERT_EQ(sdr_qp_info_get(qa, &info_a), 0);
  ASSERT_EQ(sdr_qp_info_get(qb, &info_b), 0);
  ASSERT_EQ(sdr_qp_connect(qa, &info_b), 0);
  ASSERT_EQ(sdr_qp_connect(qb, &info_a), 0);

  std::vector<std::uint8_t> src(16 * 1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i * 13);
  }
  std::vector<std::uint8_t> dst(16 * 1024, 0);
  sdr_mr* mr = sdr_mr_reg(ctx_b, dst.data(), dst.size());
  ASSERT_NE(mr, nullptr);

  sdr_rcv_wr rwr{dst.data(), dst.size(), mr};
  sdr_rcv_handle* rh = nullptr;
  ASSERT_EQ(sdr_recv_post(qb, &rwr, &rh), 0);

  sdr_snd_wr swr{src.data(), src.size(), 0xAB12CD34u, 1};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_post(qa, &swr, &sh), 0);
  sim.run();

  // Bitmap: all four chunks complete.
  const std::uint64_t* bitmap = nullptr;
  std::size_t bits = 0;
  ASSERT_EQ(sdr_recv_bitmap_get(rh, qb, &bitmap, &bits), 0);
  EXPECT_EQ(bits, 4u);
  EXPECT_EQ(*bitmap & 0xF, 0xFu);

  std::uint32_t imm = 0;
  ASSERT_EQ(sdr_recv_imm_get(rh, qb, &imm), 0);
  EXPECT_EQ(imm, 0xAB12CD34u);

  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_EQ(sdr_send_poll(sh, qa), 0);
  EXPECT_EQ(sdr_recv_complete(rh, qb), 0);

  sdr_unregister_devices();
}

TEST(SdrCApiTest, StreamingCalls) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 5.0;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
  sdr_register_device("a", pair.a.get());
  sdr_register_device("b", pair.b.get());
  sdr_ctx* ctx_a = sdr_context_create("a", nullptr);
  sdr_ctx* ctx_b = sdr_context_create("b", nullptr);

  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;
  attr.max_msg_size = 8 * 1024;
  attr.max_inflight = 4;
  sdr_qp* qa = sdr_qp_create(ctx_a, &attr);
  sdr_qp* qb = sdr_qp_create(ctx_b, &attr);
  core::QpInfo ia, ib;
  sdr_qp_info_get(qa, &ia);
  sdr_qp_info_get(qb, &ib);
  sdr_qp_connect(qa, &ib);
  sdr_qp_connect(qb, &ia);

  std::vector<std::uint8_t> src(4096, 0x5A), dst(4096, 0);
  sdr_mr* mr = sdr_mr_reg(ctx_b, dst.data(), dst.size());
  sdr_rcv_wr rwr{dst.data(), dst.size(), mr};
  sdr_rcv_handle* rh = nullptr;
  ASSERT_EQ(sdr_recv_post(qb, &rwr, &rh), 0);

  sdr_start_wr start{0, 0};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_stream_start(qa, &start, &sh), 0);
  // Two chunk writes at explicit offsets (out of order).
  sdr_continue_wr second{src.data() + 2048, 2048, 2048};
  sdr_continue_wr first{src.data(), 0, 2048};
  ASSERT_EQ(sdr_send_stream_continue(sh, qa, &second), 0);
  ASSERT_EQ(sdr_send_stream_continue(sh, qa, &first), 0);
  ASSERT_EQ(sdr_send_stream_end(sh, qa), 0);
  sim.run();

  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_EQ(sdr_send_poll(sh, qa), 0);
  EXPECT_EQ(sdr_recv_complete(rh, qb), 0);
  sdr_unregister_devices();
}

TEST(SdrCApiTest, NullArgumentHandling) {
  EXPECT_EQ(sdr_qp_create(nullptr, nullptr), nullptr);
  EXPECT_LT(sdr_qp_info_get(nullptr, nullptr), 0);
  EXPECT_LT(sdr_qp_connect(nullptr, nullptr), 0);
  EXPECT_EQ(sdr_mr_reg(nullptr, nullptr, 0), nullptr);
  EXPECT_LT(sdr_send_post(nullptr, nullptr, nullptr), 0);
  EXPECT_LT(sdr_recv_post(nullptr, nullptr, nullptr), 0);
}

// ---------------------------------------------------------------------------
// Negative paths: every misuse must map to the documented negative status
// code, not to silence or UB. The sdrcheck harness relies on these codes
// ("fails loudly") when classifying oracle violations.
// ---------------------------------------------------------------------------

struct CApiFixture : ::testing::Test {
  void SetUp() override {
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 5.0;
    pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
    sdr_register_device("neg_a", pair.a.get());
    sdr_register_device("neg_b", pair.b.get());
    ctx_a = sdr_context_create("neg_a", nullptr);
    ctx_b = sdr_context_create("neg_b", nullptr);
    ASSERT_NE(ctx_a, nullptr);
    ASSERT_NE(ctx_b, nullptr);
    attr.mtu = 1024;
    attr.chunk_size = 1024;
    attr.max_msg_size = 4 * 1024;
    attr.max_inflight = 4;
    qa = sdr_qp_create(ctx_a, &attr);
    qb = sdr_qp_create(ctx_b, &attr);
    ASSERT_NE(qa, nullptr);
    ASSERT_NE(qb, nullptr);
  }
  void TearDown() override { sdr_unregister_devices(); }

  void Connect() {
    core::QpInfo ia, ib;
    ASSERT_EQ(sdr_qp_info_get(qa, &ia), 0);
    ASSERT_EQ(sdr_qp_info_get(qb, &ib), 0);
    ASSERT_EQ(sdr_qp_connect(qa, &ib), 0);
    ASSERT_EQ(sdr_qp_connect(qb, &ia), 0);
  }

  sim::Simulator sim;
  sim::Channel::Config cfg;
  verbs::NicPair pair;
  sdr_ctx* ctx_a{nullptr};
  sdr_ctx* ctx_b{nullptr};
  core::QpAttr attr;
  sdr_qp* qa{nullptr};
  sdr_qp* qb{nullptr};
  std::vector<std::uint8_t> buf = std::vector<std::uint8_t>(4 * 1024, 0x5A);
};

TEST_F(CApiFixture, PostBeforeConnectIsRejected) {
  sdr_snd_wr swr{buf.data(), 1024, 0, 0};
  sdr_snd_handle* sh = nullptr;
  EXPECT_EQ(sdr_send_post(qa, &swr, &sh),
            static_cast<int>(StatusCode::kNotConnected));
  sdr_mr* mr = sdr_mr_reg(ctx_b, buf.data(), buf.size());
  sdr_rcv_wr rwr{buf.data(), 1024, mr};
  sdr_rcv_handle* rh = nullptr;
  EXPECT_EQ(sdr_recv_post(qb, &rwr, &rh),
            static_cast<int>(StatusCode::kNotConnected));
}

TEST_F(CApiFixture, DoubleRecvCompleteIsRejected) {
  Connect();
  sdr_mr* mr = sdr_mr_reg(ctx_b, buf.data(), buf.size());
  sdr_rcv_wr rwr{buf.data(), 1024, mr};
  sdr_rcv_handle* rh = nullptr;
  ASSERT_EQ(sdr_recv_post(qb, &rwr, &rh), 0);
  sdr_snd_wr swr{buf.data(), 1024, 0, 0};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_post(qa, &swr, &sh), 0);
  sim.run();
  ASSERT_EQ(sdr_recv_complete(rh, qb), 0);
  // The handle's slot is released; a second complete is an invalid handle.
  EXPECT_EQ(sdr_recv_complete(rh, qb),
            static_cast<int>(StatusCode::kInvalidArgument));
  // So is reading the bitmap or immediate through the dead handle.
  const std::uint64_t* bitmap = nullptr;
  std::size_t bits = 0;
  EXPECT_EQ(sdr_recv_bitmap_get(rh, qb, &bitmap, &bits),
            static_cast<int>(StatusCode::kInvalidArgument));
  std::uint32_t imm = 0;
  EXPECT_EQ(sdr_recv_imm_get(rh, qb, &imm),
            static_cast<int>(StatusCode::kInvalidArgument));
}

TEST_F(CApiFixture, OversizeSendIsOutOfRange) {
  Connect();
  sdr_snd_wr swr{buf.data(), attr.max_msg_size + attr.chunk_size, 0, 0};
  sdr_snd_handle* sh = nullptr;
  EXPECT_EQ(sdr_send_post(qa, &swr, &sh),
            static_cast<int>(StatusCode::kOutOfRange));
}

TEST_F(CApiFixture, UnalignedStreamOffsetIsRejected) {
  Connect();
  sdr_start_wr start{0, 0};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_stream_start(qa, &start, &sh), 0);
  sdr_continue_wr unaligned{buf.data(), 512, 1024};  // offset % mtu != 0
  EXPECT_EQ(sdr_send_stream_continue(sh, qa, &unaligned),
            static_cast<int>(StatusCode::kInvalidArgument));
}

TEST_F(CApiFixture, ContinueAfterEndIsFailedPrecondition) {
  Connect();
  sdr_start_wr start{0, 0};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_stream_start(qa, &start, &sh), 0);
  sdr_continue_wr chunk{buf.data(), 0, 1024};
  ASSERT_EQ(sdr_send_stream_continue(sh, qa, &chunk), 0);
  ASSERT_EQ(sdr_send_stream_end(sh, qa), 0);
  EXPECT_EQ(sdr_send_stream_continue(sh, qa, &chunk),
            static_cast<int>(StatusCode::kFailedPrecondition));
}

TEST_F(CApiFixture, SendSlotExhaustionIsResourceExhausted) {
  Connect();
  // Fill every send slot (no receiver posted, so none completes).
  std::vector<sdr_snd_handle*> handles;
  for (std::size_t i = 0; i < attr.max_inflight; ++i) {
    sdr_start_wr start{0, 0};
    sdr_snd_handle* sh = nullptr;
    ASSERT_EQ(sdr_send_stream_start(qa, &start, &sh), 0) << "slot " << i;
    handles.push_back(sh);
  }
  sdr_start_wr start{0, 0};
  sdr_snd_handle* sh = nullptr;
  EXPECT_EQ(sdr_send_stream_start(qa, &start, &sh),
            static_cast<int>(StatusCode::kResourceExhausted));
}

TEST_F(CApiFixture, SendPollBeforeCompletionIsNotReady) {
  Connect();
  sdr_start_wr start{0, 0};
  sdr_snd_handle* sh = nullptr;
  ASSERT_EQ(sdr_send_stream_start(qa, &start, &sh), 0);
  EXPECT_EQ(sdr_send_poll(sh, qa), static_cast<int>(StatusCode::kNotReady));
}

}  // namespace
