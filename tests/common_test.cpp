// Unit and property tests for src/common: RNG, bitmaps, histograms, units,
// running stats, tables.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/bitmap.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sdr {
namespace {

// ---------------------------------------------------------------------------
// SimTime / units
// ---------------------------------------------------------------------------

TEST(SimTimeTest, ConversionsRoundTrip) {
  const SimTime t = SimTime::from_seconds(0.025);
  EXPECT_EQ(t.ns, 25'000'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.025);
  EXPECT_DOUBLE_EQ(t.millis(), 25.0);
  EXPECT_DOUBLE_EQ(SimTime::from_millis(25.0).seconds(), 0.025);
  EXPECT_DOUBLE_EQ(SimTime::from_micros(3.0).ns, 3000);
}

TEST(SimTimeTest, ArithmeticAndOrdering) {
  const SimTime a{100};
  const SimTime b{250};
  EXPECT_EQ((a + b).ns, 350);
  EXPECT_EQ((b - a).ns, 150);
  EXPECT_LT(a, b);
  EXPECT_EQ((a * 3).ns, 300);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.ns, 350);
}

TEST(PropagationTest, PaperQuotedDelayPer1000Km) {
  // The paper: ~6.5 ms of added RTT per 1000 km of cable.
  const double rtt_ms = rtt_s(1000.0) * 1e3;
  EXPECT_NEAR(rtt_ms, 10.0, 5.0);  // 2/3c fiber -> 10 ms RTT per 1000 km
  EXPECT_NEAR(rtt_to_km(rtt_s(3750.0)), 3750.0, 1e-6);
}

TEST(UnitsTest, InjectionTime) {
  // 4 KiB at 400 Gbit/s.
  const double t = injection_time_s(4096, 400 * Gbps);
  EXPECT_NEAR(t, 4096.0 * 8.0 / 400e9, 1e-15);
}

TEST(UnitsTest, BdpMatchesPaperScale) {
  // 400 Gbit/s x 25 ms = 1.25 GB BDP; paper calls 8 GiB ~ 8x smaller than
  // BDP at the Fig 12 extremes -- our helper must be in the right regime.
  const double bdp = bdp_bytes(400 * Gbps, 0.025);
  EXPECT_NEAR(bdp, 1.25e9, 1e3);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(128 * MiB), "128 MiB");
  EXPECT_EQ(format_bytes(4 * KiB), "4 KiB");
  EXPECT_EQ(format_bytes(1), "1 B");
  EXPECT_EQ(format_bytes(3ull * GiB + GiB / 2), "3.50 GiB");
}

TEST(UnitsTest, FormatRate) {
  EXPECT_EQ(format_rate(400e9), "400 Gbit/s");
  EXPECT_EQ(format_rate(3.2e12), "3.20 Tbit/s");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.025), "25.000 ms");
  EXPECT_EQ(format_seconds(3.2e-6), "3.200 us");
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(12345), b(12345), c(54321);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool any_diff = false;
  Rng a2(12345);
  for (int i = 0; i < 100; ++i) {
    any_diff |= (a2.next_u64() != c.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, SplitMix64PinnedReferenceVector) {
  // First outputs of the SplitMix64 stream seeded with 0 — the published
  // reference vector. Pins splitmix64()/splitmix64_mix() forever: an
  // accidental edit would silently reseed every experiment in the repo.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
  EXPECT_EQ(splitmix64(state), 0xf88bb8a8724c81ecULL);
}

TEST(RngTest, DeriveSeedPinnedAndMatchesStream) {
  // derive_seed(base, i) must equal element i+1 of the SplitMix64 stream
  // seeded at base (an O(1) state jump), and is pinned so recorded sweep
  // results stay reproducible across refactors.
  EXPECT_EQ(derive_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_seed(0x5A11DA7E, 0), 0xf9c75ac5c536d38aULL);
  EXPECT_EQ(derive_seed(0x5A11DA7E, 7), 0x3b0f6cc797f2851bULL);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 41), 0xf5dfbdab76a2839dULL);
  std::uint64_t state = 0xDEADBEEF;
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(derive_seed(0xDEADBEEF, i), splitmix64(state)) << i;
  }
  static_assert(derive_seed(0, 0) == 0xe220a8397b1dcdafULL);  // constexpr
}

TEST(RngTest, UniformDoublesInRange) {
  Rng rng(7);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.next_double();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  const double p = 0.137;
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(RngTest, GeometricMeanMatchesTheory) {
  Rng rng(13);
  const double p = 0.25;  // mean 1/p = 4
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(p));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, GeometricEdgeCases) {
  Rng rng(17);
  EXPECT_EQ(rng.geometric(1.0), 1u);
  EXPECT_EQ(rng.geometric(0.0), std::numeric_limits<std::uint64_t>::max());
}

class BinomialParamTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>> {};

TEST_P(BinomialParamTest, MeanAndVarianceMatchTheory) {
  const auto [n, p] = GetParam();
  Rng rng(n * 31 + static_cast<std::uint64_t>(p * 1000));
  RunningStats stats;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    stats.add(static_cast<double>(rng.binomial(n, p)));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  EXPECT_NEAR(stats.mean(), mean, 5.0 * std::sqrt(var / reps) + 0.02 * mean + 1e-9);
  if (var > 1.0) {
    EXPECT_NEAR(stats.variance(), var, 0.15 * var);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialParamTest,
    ::testing::Values(std::make_pair(10ull, 0.5), std::make_pair(100ull, 0.01),
                      std::make_pair(1000ull, 0.001),
                      std::make_pair(100000ull, 1e-5),
                      std::make_pair(1000ull, 0.9),
                      std::make_pair(1000000ull, 0.3)));

TEST(RngTest, BinomialBoundaries) {
  Rng rng(19);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(RngTest, MaxOfUniformDistribution) {
  // P(max <= x) = (x/m)^n; check the mean of max of n=4 over m=100:
  // E[max] = sum_x x*((x/m)^n - ((x-1)/m)^n) ~ 80.7.
  Rng rng(23);
  double sum = 0.0;
  const int reps = 100000;
  for (int i = 0; i < reps; ++i) {
    const auto v = rng.max_of_uniform(4, 100);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, 100u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / reps, 80.7, 0.5);
  EXPECT_EQ(rng.max_of_uniform(0, 100), 0u);
  EXPECT_EQ(rng.max_of_uniform(5, 0), 0u);
}

TEST(RngTest, NextBelowIsUnbiased) {
  Rng rng(29);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

// ---------------------------------------------------------------------------
// Fleet traffic samplers (Zipf / Poisson / trace)
// ---------------------------------------------------------------------------

TEST(ZipfSamplerTest, PinnedReferenceVector) {
  // Locked-in draw sequence: the fleet plan generator depends on these
  // exact values staying stable across refactors (same guarantee the
  // SplitMix64 pinned vector gives the sweep engine).
  Rng rng(derive_seed(0xF1EE7, 0));
  ASSERT_EQ(derive_seed(0xF1EE7, 0), 0xa38ada2a25e4a04bULL);
  ZipfSampler zipf(8, 1.2);
  const std::size_t expected[] = {1, 4, 1, 3, 1, 5, 6, 1, 6, 3, 3, 2};
  for (std::size_t want : expected) EXPECT_EQ(zipf.sample(rng), want);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndRankOneDominates) {
  ZipfSampler zipf(16, 1.2);
  double total = 0.0;
  for (std::size_t r = 1; r <= zipf.ranks(); ++r) {
    EXPECT_GT(zipf.pmf(r), 0.0);
    if (r > 1) EXPECT_LT(zipf.pmf(r), zipf.pmf(r - 1));
    total += zipf.pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(17), 0.0);
}

TEST(ZipfSamplerTest, SampleConsumesExactlyOneDraw) {
  // The one-draw-per-sample contract is what keeps interleaved samplers on
  // derived seeds reproducible; a rejection loop would break it silently.
  Rng a(123), b(123);
  ZipfSampler zipf(32, 0.9);
  for (int i = 0; i < 100; ++i) {
    zipf.sample(a);
    b.next_double();
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(PoissonProcessTest, PinnedReferenceVector) {
  Rng rng(derive_seed(0xF1EE7, 1));
  ASSERT_EQ(derive_seed(0xF1EE7, 1), 0x3ca1419009548005ULL);
  PoissonProcess proc(2000.0);
  const long long expected_ns[] = {1163576, 1390298, 1677705,
                                   2028820, 3482015, 3723761};
  for (long long want : expected_ns) {
    EXPECT_EQ(static_cast<long long>(proc.next(rng) * 1e9), want);
  }
}

TEST(PoissonProcessTest, ArrivalsStrictlyIncreaseAtMeanRate) {
  Rng rng(7);
  PoissonProcess proc(1000.0, 0.5);
  double prev = 0.5;
  const int n = 20000;
  double last = 0.0;
  for (int i = 0; i < n; ++i) {
    last = proc.next(rng);
    EXPECT_GT(last, prev);
    prev = last;
  }
  // n arrivals at 1000/s from t=0.5 should land near t = 0.5 + n/1000.
  EXPECT_NEAR(last, 0.5 + n / 1000.0, 0.5);
}

TEST(TraceArrivalsTest, ReplaysAndWrapsWithSpanShift) {
  TraceArrivals trace({0.1, 0.3, 0.4}, 0.5);
  EXPECT_DOUBLE_EQ(trace.next(), 0.1);
  EXPECT_DOUBLE_EQ(trace.next(), 0.3);
  EXPECT_DOUBLE_EQ(trace.next(), 0.4);
  // Second cycle: same shape shifted by the span.
  EXPECT_DOUBLE_EQ(trace.next(), 0.6);
  EXPECT_DOUBLE_EQ(trace.next(), 0.8);
  EXPECT_DOUBLE_EQ(trace.next(), 0.9);
  EXPECT_DOUBLE_EQ(trace.next(), 1.1);
}

TEST(TraceArrivalsTest, DefaultSpanIsLastTimestampAndDegenerateIsFinite) {
  TraceArrivals trace({0.0, 0.2});
  EXPECT_DOUBLE_EQ(trace.span(), 0.2);
  // An all-zero trace must not wrap onto itself forever.
  TraceArrivals zeros({0.0, 0.0});
  EXPECT_GT(zeros.span(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.next(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.next(), 0.0);
  EXPECT_GT(zeros.next(), 0.0);
}

// ---------------------------------------------------------------------------
// Bitmap
// ---------------------------------------------------------------------------

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_TRUE(bm.none_set());
  bm.set(0);
  bm.set(64);
  bm.set(129);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(bm.popcount(), 3u);
  bm.clear(64);
  EXPECT_FALSE(bm.test(64));
  EXPECT_EQ(bm.popcount(), 2u);
}

TEST(BitmapTest, FirstZeroAndFirstSet) {
  Bitmap bm(200);
  EXPECT_EQ(bm.first_zero(), 0u);
  EXPECT_EQ(bm.first_set(), 200u);
  for (std::size_t i = 0; i < 67; ++i) bm.set(i);
  EXPECT_EQ(bm.first_zero(), 67u);
  EXPECT_EQ(bm.first_set(), 0u);
  bm.set_all();
  EXPECT_EQ(bm.first_zero(), 200u);
  EXPECT_TRUE(bm.all_set());
}

TEST(BitmapTest, CollectZeros) {
  Bitmap bm(20);
  for (std::size_t i = 0; i < 20; i += 2) bm.set(i);
  std::vector<std::size_t> zeros;
  bm.collect_zeros(0, 20, zeros);
  ASSERT_EQ(zeros.size(), 10u);
  EXPECT_EQ(zeros.front(), 1u);
  EXPECT_EQ(zeros.back(), 19u);
}

TEST(BitmapTest, SetAllMasksTail) {
  Bitmap bm(70);
  bm.set_all();
  EXPECT_EQ(bm.popcount(), 70u);
}

TEST(AtomicBitmapTest, SetAndCheckReportsTransition) {
  AtomicBitmap bm(128);
  EXPECT_TRUE(bm.set_and_check(5));
  EXPECT_FALSE(bm.set_and_check(5));
  EXPECT_TRUE(bm.test(5));
  EXPECT_EQ(bm.popcount(), 1u);
}

TEST(AtomicBitmapTest, RangeAllSet) {
  AtomicBitmap bm(256);
  for (std::size_t i = 64; i < 80; ++i) bm.set_and_check(i);
  EXPECT_TRUE(bm.range_all_set(64, 16));
  EXPECT_FALSE(bm.range_all_set(64, 17));
  EXPECT_FALSE(bm.range_all_set(63, 2));
  // Range straddling a word boundary.
  for (std::size_t i = 120; i < 136; ++i) bm.set_and_check(i);
  EXPECT_TRUE(bm.range_all_set(120, 16));
}

TEST(AtomicBitmapTest, ConcurrentSettersEachBitWonOnce) {
  constexpr std::size_t kBits = 4096;
  AtomicBitmap bm(kBits);
  std::atomic<std::uint64_t> wins{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bm, &wins] {
      std::uint64_t local = 0;
      for (std::size_t i = 0; i < kBits; ++i) {
        if (bm.set_and_check(i)) ++local;
      }
      wins += local;
    });
  }
  for (auto& t : threads) t.join();
  // Every bit set exactly once across all threads.
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bm.popcount(), kBits);
}

TEST(AtomicBitmapTest, WordLayoutIsPlainUint64) {
  static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));
  static_assert(alignof(std::atomic<std::uint64_t>) == alignof(std::uint64_t));
  AtomicBitmap bm(64);
  bm.set_and_check(3);
  EXPECT_EQ(bm.load_word(0), 8u);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, MeanAndCount) {
  Histogram h(1e-6, 1e3);
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(HistogramTest, PercentileRelativeErrorBounded) {
  Histogram h(1e-6, 1e3);
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.exponential(1.0) + 0.01;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double pct : {50.0, 90.0, 99.0, 99.9}) {
    const double exact = values[static_cast<std::size_t>(
        pct / 100.0 * (values.size() - 1))];
    EXPECT_NEAR(h.percentile(pct), exact, exact * 0.05)
        << "percentile " << pct;
  }
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a(1e-6, 1e3), b(1e-6, 1e3), combined(1e-6, 1e3);
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.exponential(2.0) + 1e-3;
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_DOUBLE_EQ(a.percentile(99), combined.percentile(99));
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(1e-3, 1e3);
  h.record(1e-9);
  h.record(1e9);
  EXPECT_EQ(h.count(), 2u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.record(1.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

TEST(RunningStatsTest, WelfordMatchesDirect) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 4.0, 9.0, 16.0, 25.0};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 11.0);
  // Sample variance: sum of squared deviations 374 over n-1 = 4.
  EXPECT_NEAR(s.variance(), 93.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 25.0);
}

TEST(RunningStatsTest, MergePreservesMoments) {
  RunningStats a, b, all;
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal() * 3.0 + 10.0;
    (i < 400 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumnsAndCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "name,value\nalpha,1\nb,22.5\n");
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::sci(0.000123, 1), "1.2e-04");
}

}  // namespace
}  // namespace sdr
