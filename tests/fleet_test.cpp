// Tests for the fleet scenario engine (src/fleet/): plan determinism,
// run_fleet purity (serial == threaded digest equality, the property the
// bench's --jobs=N sweep relies on), completion accounting and quiesce for
// every scheme, and seed sensitivity.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/traffic.hpp"

namespace sdr::fleet {
namespace {

// Small but non-trivial: 2 DCs x 8 endpoints, both tenant shapes, the ring
// collective, NIC model on — every subsystem exercised, runs in well under
// a second.
FleetConfig small_config(Scheme scheme) {
  FleetConfig cfg = FleetConfig::defaults();
  cfg.dcs = 2;
  cfg.endpoints_per_dc = 8;
  cfg.messages_per_connection = 6;
  cfg.collective_iterations = 1;
  cfg.scheme = scheme;
  cfg.distance_km = 500.0;
  cfg.p_drop = 1e-3;
  cfg.seed = 0xF1EE7;
  return cfg;
}

// ---------------------------------------------------------------------------
// Traffic plans
// ---------------------------------------------------------------------------

TEST(TrafficPlanTest, DeterministicPerConnectionAndUncorrelated) {
  TenantTraffic tenant;
  tenant.msgs_per_s = 5000.0;
  tenant.base_msg_bytes = 4096;
  tenant.size_ranks = 4;

  const auto a0 = plan_messages(tenant, 32, 99, 0);
  const auto a0_again = plan_messages(tenant, 32, 99, 0);
  const auto a1 = plan_messages(tenant, 32, 99, 1);
  ASSERT_EQ(a0.size(), 32u);
  for (std::size_t i = 0; i < a0.size(); ++i) {
    EXPECT_EQ(a0[i].arrival_ns, a0_again[i].arrival_ns);
    EXPECT_EQ(a0[i].bytes, a0_again[i].bytes);
    if (i > 0) EXPECT_GT(a0[i].arrival_ns, a0[i - 1].arrival_ns);
  }
  // Different connection index => a different (derived-seed) schedule.
  bool differs = false;
  for (std::size_t i = 0; i < a0.size(); ++i) {
    if (a0[i].arrival_ns != a1[i].arrival_ns || a0[i].bytes != a1[i].bytes) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TrafficPlanTest, TraceArrivalsReplayTheRecordedShape) {
  TenantTraffic tenant;
  tenant.arrivals = ArrivalKind::kTrace;
  tenant.trace_s = {0.001, 0.002, 0.010};
  const auto plan = plan_messages(tenant, 5, 7, 0);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_EQ(plan[0].arrival_ns, 1'000'000);
  EXPECT_EQ(plan[1].arrival_ns, 2'000'000);
  EXPECT_EQ(plan[2].arrival_ns, 10'000'000);
  // Wrapped cycle: shifted by the trace span (last timestamp, 10 ms).
  EXPECT_EQ(plan[3].arrival_ns, 11'000'000);
  EXPECT_EQ(plan[4].arrival_ns, 12'000'000);
}

// ---------------------------------------------------------------------------
// run_fleet purity and accounting
// ---------------------------------------------------------------------------

class FleetSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(FleetSchemeTest, CompletesAccountsAndQuiesces) {
  const FleetResult r = run_fleet(small_config(GetParam()));
  EXPECT_EQ(r.endpoints, 16u);
  EXPECT_GT(r.messages_posted, 0u);
  EXPECT_EQ(r.messages_completed, r.messages_posted);
  EXPECT_EQ(r.messages_failed, 0u);
  EXPECT_TRUE(r.quiesced);
  EXPECT_EQ(r.payload_live_slots, 0u);
  EXPECT_GT(r.peak_concurrent, 0u);
  EXPECT_GT(r.fleet_goodput_gbps, 0.0);
  EXPECT_GT(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.0 + 1e-12);
  EXPECT_EQ(r.unknown_qp_packets, 0u);
  EXPECT_EQ(r.unroutable_packets, 0u);
  // Tenant rollups partition the totals.
  std::uint64_t posted = 0, completed = 0, bytes = 0;
  for (const auto& t : r.tenants) {
    posted += t.posted;
    completed += t.completed;
    bytes += t.useful_bytes;
  }
  EXPECT_EQ(posted, r.messages_posted);
  EXPECT_EQ(completed, r.messages_completed);
  EXPECT_EQ(bytes, r.useful_bytes);  // per-tenant byte conservation
}

TEST_P(FleetSchemeTest, SerialEqualsThreadedDigest) {
  // The bench's --jobs=N bit-identity reduces to exactly this: run_fleet is
  // pure in its config, so a worker thread must reproduce the main thread's
  // digest and every counter.
  const FleetConfig cfg = small_config(GetParam());
  const FleetResult serial = run_fleet(cfg);
  auto task = std::async(std::launch::async, [&cfg] { return run_fleet(cfg); });
  const FleetResult threaded = task.get();
  EXPECT_EQ(serial.digest, threaded.digest);
  EXPECT_EQ(serial.messages_posted, threaded.messages_posted);
  EXPECT_EQ(serial.messages_completed, threaded.messages_completed);
  EXPECT_EQ(serial.useful_bytes, threaded.useful_bytes);
  EXPECT_EQ(serial.peak_concurrent, threaded.peak_concurrent);
  EXPECT_EQ(serial.retransmissions, threaded.retransmissions);
  EXPECT_EQ(serial.trunk_drops, threaded.trunk_drops);
  EXPECT_DOUBLE_EQ(serial.p999_ms, threaded.p999_ms);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FleetSchemeTest,
                         ::testing::Values(Scheme::kSr, Scheme::kEc,
                                           Scheme::kRc),
                         [](const auto& info) {
                           return std::string(scheme_name(info.param));
                         });

TEST(FleetTest, DifferentSeedsDifferentDigests) {
  FleetConfig a = small_config(Scheme::kSr);
  FleetConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(run_fleet(a).digest, run_fleet(b).digest);
}

TEST(FleetTest, LossyLongHaulStillCompletesEverything) {
  // The regime that historically wedged: long RTT + real loss means lost
  // CTS datagrams and fallback recovery; the CTS retry must save every
  // message without the horizon safety net.
  for (const Scheme scheme : {Scheme::kSr, Scheme::kEc}) {
    FleetConfig cfg = small_config(scheme);
    cfg.distance_km = 3750.0;
    cfg.p_drop = 1e-3;
    const FleetResult r = run_fleet(cfg);
    EXPECT_EQ(r.messages_completed, r.messages_posted)
        << scheme_name(scheme);
    EXPECT_EQ(r.messages_failed, 0u) << scheme_name(scheme);
    EXPECT_TRUE(r.quiesced) << scheme_name(scheme);
  }
}

}  // namespace
}  // namespace sdr::fleet
