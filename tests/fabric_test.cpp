// Tests for the Fabric topology builder and ECMP multi-path routing
// (paper §3.4.1): flow-sticky path selection, path spreading across QPs,
// SDR multi-channel traffic over skewed multi-path trunks, and the
// topology helpers.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/fabric.hpp"

namespace sdr::verbs {
namespace {

Fabric::LinkOptions fast_link(std::size_t paths = 1, double skew_s = 0.0) {
  Fabric::LinkOptions opt;
  opt.config.bandwidth_bps = 100e9;
  opt.config.distance_km = 10.0;
  opt.paths = paths;
  opt.path_skew_s = skew_s;
  return opt;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  }
  return v;
}

TEST(FabricTest, NicIdsAreSequential) {
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  EXPECT_EQ(a->id(), 1u);
  EXPECT_EQ(b->id(), 2u);
  EXPECT_EQ(fabric.nic_count(), 2u);
}

TEST(FabricTest, ConnectedPairExchangesWrites) {
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  fabric.connect(a, b, fast_link());

  CompletionQueue rx_cq;
  QpConfig cfg;
  cfg.type = QpType::kUC;
  cfg.mtu = 1024;
  cfg.recv_cq = &rx_cq;
  Qp* tx = a->create_qp(cfg);
  Qp* rx = b->create_qp(cfg);
  tx->connect(b->id(), rx->num());

  std::vector<std::uint8_t> dst(4096);
  const MemoryRegion* mr = b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(2048);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim.run();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  EXPECT_EQ(rx_cq.size(), 1u);
}

TEST(FabricTest, TopologyHelpers) {
  sim::Simulator sim;
  Fabric ring_fab(sim);
  const auto ring = ring_fab.make_ring(5, fast_link());
  EXPECT_EQ(ring.size(), 5u);
  // Every ring neighbour is mutually routable.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NE(ring[i]->route_to(ring[(i + 1) % 5]->id()), nullptr);
    EXPECT_NE(ring[(i + 1) % 5]->route_to(ring[i]->id()), nullptr);
  }
  // Non-neighbours are not.
  EXPECT_EQ(ring[0]->route_to(ring[2]->id()), nullptr);

  sim::Simulator sim2;
  Fabric mesh_fab(sim2);
  const auto mesh = mesh_fab.make_full_mesh(4, fast_link());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_NE(mesh[i]->route_to(mesh[j]->id()), nullptr);
    }
  }

  sim::Simulator sim3;
  Fabric star_fab(sim3);
  const auto star = star_fab.make_star(3, fast_link());
  ASSERT_EQ(star.size(), 4u);
  for (std::size_t leaf = 1; leaf <= 3; ++leaf) {
    EXPECT_NE(star[0]->route_to(star[leaf]->id()), nullptr);
    EXPECT_NE(star[leaf]->route_to(star[0]->id()), nullptr);
    // Leaves have no direct leaf-to-leaf routes.
    EXPECT_EQ(star[leaf]->route_to(star[leaf % 3 + 1]->id()), nullptr);
  }
}

// ---------------------------------------------------------------------------
// ECMP multi-path
// ---------------------------------------------------------------------------

TEST(MultipathTest, FlowStickyPathSelection) {
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  fabric.connect(a, b, fast_link(/*paths=*/4));

  // The same (src, dst) QP pair always hashes to the same path.
  sim::Channel* first = a->route_to(b->id(), 0x100, 0x200);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a->route_to(b->id(), 0x100, 0x200), first);
  }
}

TEST(MultipathTest, DistinctFlowsSpreadAcrossPaths) {
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  fabric.connect(a, b, fast_link(/*paths=*/4));

  std::set<sim::Channel*> used;
  for (QpNumber q = 0x100; q < 0x140; ++q) {
    used.insert(a->route_to(b->id(), q, q + 0x1000));
  }
  // 64 flows over 4 paths: all paths should see traffic.
  EXPECT_EQ(used.size(), 4u);
}

TEST(MultipathTest, PerFlowOrderingPreservedDespiteSkew) {
  // Heavily skewed path delays reorder traffic ACROSS flows, but a single
  // QP pair (one flow) stays in order — the property UC depends on.
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  fabric.connect(a, b, fast_link(/*paths=*/4, /*skew_s=*/100e-6));

  CompletionQueue rx_cq(1 << 12);
  QpConfig cfg;
  cfg.type = QpType::kUC;
  cfg.mtu = 1024;
  cfg.recv_cq = &rx_cq;
  Qp* tx = a->create_qp(cfg);
  Qp* rx = b->create_qp(cfg);
  tx->connect(b->id(), rx->num());

  std::vector<std::uint8_t> dst(64 * 1024);
  const MemoryRegion* mr = b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(32 * 1024);  // 32-packet message on ONE flow
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim.run();
  // No ePSN message drop: the flow rode a single path.
  EXPECT_EQ(rx->stats().messages_dropped_epsn, 0u);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST(MultipathTest, SdrMultiChannelRidesAllPathsAndCompletes) {
  // The §3.4.1 design: SDR spreads packets over channel QPs; with 4 ECMP
  // paths of skewed delay the packets arrive heavily reordered across
  // channels, yet the bitmap completes and data is intact.
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  fabric.connect(a, b, fast_link(/*paths=*/4, /*skew_s=*/50e-6));

  core::Context ctx_a(*a, core::DevAttr{});
  core::Context ctx_b(*b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;
  attr.max_msg_size = 256 * 1024;
  attr.channels = 4;  // multi-channel backend
  core::Qp* qa = ctx_a.create_qp(attr);
  core::Qp* qb = ctx_b.create_qp(attr);
  qa->connect(qb->info());
  qb->connect(qa->info());

  const std::size_t len = 256 * 1024;
  const auto src = pattern(len, 3);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b.mr_reg(dst.data(), dst.size());
  core::RecvHandle* rh = nullptr;
  ASSERT_TRUE(qb->recv_post(dst.data(), len, mr, &rh).is_ok());
  core::SendHandle* sh = nullptr;
  ASSERT_TRUE(qa->send_post(src.data(), len, 0, false, &sh).is_ok());
  sim.run();

  EXPECT_TRUE(qb->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  // And the traffic genuinely used multiple paths: distinct channel QPs
  // hash to distinct channels.
  std::set<sim::Channel*> used;
  const core::QpInfo info_a = qa->info();
  const core::QpInfo info_b = qb->info();
  for (std::size_t i = 0; i < info_a.data_qps.size(); ++i) {
    used.insert(a->route_to(b->id(), info_a.data_qps[i], info_b.data_qps[i]));
  }
  EXPECT_GT(used.size(), 1u);
}

TEST(MultipathTest, LossOnOnePathOnlyPartialBitmap) {
  // Per-path loss state: a lossy member of the trunk harms only the flows
  // hashed onto it.
  sim::Simulator sim;
  Fabric fabric(sim);
  Nic* a = fabric.add_nic();
  Nic* b = fabric.add_nic();
  Fabric::LinkOptions opt = fast_link(/*paths=*/2);
  fabric.connect(a, b, opt);
  // Make path 0 of the a->b direction lossy by reaching into the routing
  // table: easiest equivalent is a fresh fabric with asymmetric drop; here
  // we simply verify the trunk delivers when lossless (structural test).
  CompletionQueue rx_cq(1 << 12);
  QpConfig cfg;
  cfg.type = QpType::kUC;
  cfg.mtu = 1024;
  cfg.recv_cq = &rx_cq;
  Qp* tx = a->create_qp(cfg);
  Qp* rx = b->create_qp(cfg);
  tx->connect(b->id(), rx->num());
  std::vector<std::uint8_t> dst(8192);
  const MemoryRegion* mr = b->pd().register_mr(dst.data(), dst.size());
  const auto src = pattern(4096);
  WriteWr wr;
  wr.local_addr = src.data();
  wr.length = src.size();
  wr.rkey = mr->rkey();
  wr.with_imm = true;
  tx->post_write(wr);
  sim.run();
  EXPECT_EQ(rx_cq.size(), 1u);
}

}  // namespace
}  // namespace sdr::verbs
