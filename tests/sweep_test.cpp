// Tests for the deterministic parallel sweep engine (src/sweep/): grid
// indexing, seed derivation, serial==parallel bit-identity, failure
// capture/retry, per-trial telemetry isolation, and edge cases.
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::sweep {
namespace {

// ---------------------------------------------------------------------------
// ParamGrid
// ---------------------------------------------------------------------------

TEST(ParamGridTest, CartesianOrderLastAxisFastest) {
  ParamGrid grid;
  grid.axis_i64("outer", {1, 2}).axis_str("inner", {"a", "b", "c"});
  ASSERT_EQ(grid.size(), 6u);
  // Same order as: for outer { for inner { ... } }.
  const std::pair<std::int64_t, std::string> want[] = {
      {1, "a"}, {1, "b"}, {1, "c"}, {2, "a"}, {2, "b"}, {2, "c"}};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const ParamPoint p = grid.point(i);
    EXPECT_EQ(p.index(), i);
    EXPECT_EQ(p.i64("outer"), want[i].first);
    EXPECT_EQ(p.str("inner"), want[i].second);
  }
}

TEST(ParamGridTest, TypedAccessAndRendering) {
  ParamGrid grid;
  grid.axis_i64("bytes", {65536})
      .axis_f64("p_drop", {1e-5})
      .axis_flag("bursty", {true});
  const ParamPoint p = grid.point(0);
  EXPECT_EQ(p.i64("bytes"), 65536);
  EXPECT_DOUBLE_EQ(p.f64("p_drop"), 1e-5);
  EXPECT_TRUE(p.flag("bursty"));
  EXPECT_TRUE(p.has("bytes"));
  EXPECT_FALSE(p.has("nope"));
  EXPECT_THROW(p.i64("nope"), std::out_of_range);
  EXPECT_THROW(p.f64("bytes"), std::bad_variant_access);
  EXPECT_EQ(p.to_string(), "bytes=65536 p_drop=1e-05 bursty=true");
  EXPECT_EQ(p.to_json(), "{\"bytes\":65536,\"p_drop\":1e-05,\"bursty\":true}");
}

TEST(ParamGridTest, EmptyGridShapes) {
  ParamGrid no_axes;
  EXPECT_EQ(no_axes.size(), 0u);

  ParamGrid empty_axis;
  empty_axis.axis_i64("x", {1, 2, 3}).axis_f64("y", {});
  EXPECT_EQ(empty_axis.size(), 0u);
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(DeriveSeedTest, PinnedValues) {
  // derive_seed(base, i) is element i+1 of the SplitMix64 stream seeded at
  // base; derive_seed(0, 0) is the published SplitMix64 test vector.
  EXPECT_EQ(derive_seed(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(derive_seed(0, 1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(derive_seed(0x5A11DA7E, 0), 0xf9c75ac5c536d38aULL);
  EXPECT_EQ(derive_seed(0x5A11DA7E, 7), 0x3b0f6cc797f2851bULL);
  EXPECT_EQ(derive_seed(0xDEADBEEF, 41), 0xf5dfbdab76a2839dULL);
}

TEST(DeriveSeedTest, MatchesStatefulSplitMix64Stream) {
  std::uint64_t state = 0x5A11DA7E;
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(derive_seed(0x5A11DA7E, i), splitmix64(state)) << i;
  }
}

TEST(DeriveSeedTest, NeighbouringIndicesUncorrelated) {
  // Coarse check: seeds of adjacent trials differ in roughly half the bits.
  for (std::uint64_t i = 0; i < 64; ++i) {
    const int bits = __builtin_popcountll(derive_seed(99, i) ^
                                          derive_seed(99, i + 1));
    EXPECT_GT(bits, 8) << i;
    EXPECT_LT(bits, 56) << i;
  }
}

// ---------------------------------------------------------------------------
// Engine: bit-identity serial vs parallel
// ---------------------------------------------------------------------------

/// A trial with data-dependent cost and output: draws from its derived
/// seed, burns a seed-dependent amount of work (so dynamic scheduling
/// actually interleaves), and records values plus free-form lines.
void stochastic_trial(Trial& trial) {
  Rng rng(trial.seed());
  const std::uint64_t spin = rng.next_below(2000);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < spin; ++i) acc += rng.next_double();
  trial.record("spin", static_cast<std::int64_t>(spin));
  trial.record("acc", acc);
  trial.record("tag", "t" + std::to_string(trial.index()));
  trial.emit("line A of trial " + std::to_string(trial.index()));
  trial.emit("draw=" + std::to_string(rng.next_u64()));
}

ParamGrid mini_grid() {
  ParamGrid grid;
  grid.axis_i64("bytes", {4096, 65536, 1048576})
      .axis_f64("p", {1e-5, 1e-3, 1e-2})
      .axis_str("scheme", {"sr", "ec"});
  return grid;  // 18 trials
}

TEST(SweepEngineTest, SerialAndParallelBitIdentical) {
  const ParamGrid grid = mini_grid();
  SweepOptions serial;
  serial.jobs = 1;
  serial.base_seed = 0xBEEF;
  const SweepResult a = run_sweep(grid, serial, stochastic_trial);
  ASSERT_EQ(a.trials.size(), 18u);
  EXPECT_EQ(a.failures(), 0u);

  for (const auto schedule : {SweepOptions::Schedule::kDynamic,
                              SweepOptions::Schedule::kStatic}) {
    SweepOptions parallel = serial;
    parallel.jobs = 4;
    parallel.schedule = schedule;
    const SweepResult b = run_sweep(grid, parallel, stochastic_trial);
    EXPECT_EQ(b.jobs, 4u);
    EXPECT_EQ(a.to_jsonl(), b.to_jsonl());
    EXPECT_EQ(a.to_csv(), b.to_csv());
  }
}

TEST(SweepEngineTest, CapturedTelemetryBitIdentical) {
  const ParamGrid grid = mini_grid();
  auto fn = [](Trial& trial) {
    // Exercise registration through the thread-installed current registry
    // and tracer, the way instrumented components do.
    auto c = telemetry::registry().counter("trial.events");
    c.inc(trial.index() + 1);
    telemetry::registry().gauge("trial.seed_low32")
        .set(static_cast<double>(trial.seed() & 0xFFFFFFFFu));
    if (telemetry::tracing()) {
      telemetry::tracer().emit(SimTime::from_seconds(1e-6),
                               telemetry::TraceEventType::kTx,
                               static_cast<std::uint32_t>(trial.index()));
    }
  };
  SweepOptions serial;
  serial.jobs = 1;
  serial.capture_telemetry = true;
  const SweepResult a = run_sweep(grid, serial, fn);
  SweepOptions parallel = serial;
  parallel.jobs = 4;
  const SweepResult b = run_sweep(grid, parallel, fn);

  EXPECT_FALSE(a.merged_metrics_jsonl().empty());
  EXPECT_FALSE(a.merged_trace_jsonl().empty());
  EXPECT_EQ(a.merged_metrics_jsonl(), b.merged_metrics_jsonl());
  EXPECT_EQ(a.merged_trace_jsonl(), b.merged_trace_jsonl());
  EXPECT_EQ(a.merged_timeseries_csv(), b.merged_timeseries_csv());
  // Labeled per trial, in index order.
  EXPECT_NE(a.merged_metrics_jsonl().find("{\"trial\":0,"),
            std::string::npos);
  EXPECT_NE(a.merged_metrics_jsonl().find("{\"trial\":17,"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine: failure capture and retry
// ---------------------------------------------------------------------------

TEST(SweepEngineTest, FlakyTrialRetriedOnceAndRecorded) {
  ParamGrid grid;
  grid.axis_i64("i", {0, 1, 2, 3, 4, 5, 6, 7});
  auto fn = [](Trial& trial) {
    if (trial.index() == 3 && trial.attempt() == 1) {
      throw std::runtime_error("transient failure");
    }
    trial.record("value", static_cast<std::int64_t>(trial.index() * 10));
  };
  for (const unsigned jobs : {1u, 4u}) {
    SweepOptions opt;
    opt.jobs = jobs;
    const SweepResult r = run_sweep(grid, opt, fn);
    EXPECT_EQ(r.failures(), 0u);
    EXPECT_TRUE(r.at(3).ok);
    EXPECT_EQ(r.at(3).attempts, 2);
    EXPECT_EQ(r.at(3).first_error, "transient failure");
    EXPECT_TRUE(r.at(3).error.empty());
    EXPECT_EQ(r.at(2).attempts, 1);
    EXPECT_EQ(r.at(3).f64("value"), 30.0);
  }
}

TEST(SweepEngineTest, PersistentFailureNeverPoisonsThePool) {
  ParamGrid grid;
  grid.axis_i64("i", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  std::atomic<int> attempts_on_bad{0};
  auto fn = [&](Trial& trial) {
    if (trial.index() == 5) {
      attempts_on_bad.fetch_add(1);
      throw std::runtime_error("always broken");
    }
    if (trial.index() == 7) throw 42;  // non-std::exception path
    trial.record("ok_index", static_cast<std::int64_t>(trial.index()));
  };
  SweepOptions opt;
  opt.jobs = 4;
  const SweepResult r = run_sweep(grid, opt, fn);
  EXPECT_EQ(r.failures(), 2u);
  EXPECT_EQ(attempts_on_bad.load(), 2);  // retried exactly once
  EXPECT_FALSE(r.at(5).ok);
  EXPECT_EQ(r.at(5).attempts, 2);
  EXPECT_EQ(r.at(5).error, "always broken");
  EXPECT_EQ(r.at(5).first_error, "always broken");
  EXPECT_FALSE(r.at(7).ok);
  EXPECT_EQ(r.at(7).error, "non-std::exception thrown");
  for (const std::size_t i : {0u, 4u, 6u, 11u}) {
    EXPECT_TRUE(r.at(i).ok) << i;
    EXPECT_EQ(r.at(i).attempts, 1) << i;
  }
  // Failed trials still serialize (with error set), in order.
  const std::string jsonl = r.to_jsonl();
  EXPECT_NE(jsonl.find("\"error\":\"always broken\""), std::string::npos);
}

TEST(SweepEngineTest, EmptyGridAndSingleCell) {
  ParamGrid empty;
  SweepOptions opt;
  opt.jobs = 4;
  int calls = 0;
  const SweepResult none =
      run_sweep(empty, opt, [&](Trial&) { ++calls; });
  EXPECT_EQ(none.trials.size(), 0u);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(none.to_jsonl(), "");
  EXPECT_EQ(none.to_csv(), "trial,ok,attempts\n");

  ParamGrid one;
  one.axis_f64("p", {0.5});
  const SweepResult single = run_sweep(one, opt, [&](Trial& t) {
    ++calls;
    t.record("p_echo", t.params().f64("p"));
  });
  EXPECT_EQ(single.trials.size(), 1u);
  EXPECT_EQ(single.jobs, 1u);  // clamped to grid size
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(single.at(0).f64("p_echo"), 0.5);
}

TEST(SweepEngineTest, CsvShapeAndColumnUnion) {
  ParamGrid grid;
  grid.axis_i64("n", {1, 2});
  auto fn = [](Trial& trial) {
    trial.record("always", static_cast<std::int64_t>(1));
    if (trial.index() == 1) trial.record("late", 2.5);
  };
  SweepOptions opt;
  const SweepResult r = run_sweep(grid, opt, fn);
  EXPECT_EQ(r.to_csv(),
            "trial,n,ok,attempts,always,late\n"
            "0,1,true,1,1,\n"
            "1,2,true,1,1,2.5\n");
}

// ---------------------------------------------------------------------------
// Telemetry isolation across concurrent trials
// ---------------------------------------------------------------------------

TEST(SweepTelemetryTest, ConcurrentTrialsNeverInterleaveMetrics) {
  // Every trial registers the SAME metric names and bumps them a
  // trial-specific number of times; with any shared registry the counts
  // (or the instance names) would cross-wire. Each trial asserts its own
  // view mid-flight; the merged export is checked per trial afterwards.
  ParamGrid grid;
  grid.axis_i64("i", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  auto fn = [](Trial& trial) {
    auto& reg = telemetry::registry();
    ASSERT_TRUE(reg.enabled());
    ASSERT_EQ(&reg, &trial.registry());  // thread-installed == per-trial
    // Instance names restart at 0 in every trial: isolation of the
    // per-base counters, not a process-wide sequence.
    ASSERT_EQ(reg.instance_name("sim.channel"), "sim.channel0");
    auto c = reg.counter("shared.name");
    const std::uint64_t mine = trial.index() + 1;
    for (std::uint64_t k = 0; k < mine; ++k) {
      c.inc();
      ASSERT_EQ(reg.counter_value("shared.name"), k + 1);
    }
    telemetry::tracer().emit(SimTime::from_seconds(0.0),
                             telemetry::TraceEventType::kDelivered,
                             static_cast<std::uint32_t>(trial.index()));
    ASSERT_EQ(trial.tracer().size(), 1u);
  };
  SweepOptions opt;
  opt.jobs = 8;
  opt.capture_telemetry = true;
  const SweepResult r = run_sweep(grid, opt, fn);
  ASSERT_EQ(r.failures(), 0u);
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const std::string want = "{\"trial\":" + std::to_string(i) +
                             ",\"metric\":\"shared.name\",\"value\":" +
                             std::to_string(i + 1) + "}";
    EXPECT_NE(r.merged_metrics_jsonl().find(want), std::string::npos) << i;
    // Exactly one trace event per trial, tagged with its own qp==index.
    const std::string trace_want =
        "{\"trial\":" + std::to_string(i) + ",\"t_s\":";
    EXPECT_NE(r.merged_trace_jsonl().find(trace_want), std::string::npos)
        << i;
  }
}

TEST(SweepTelemetryTest, TrialsLeaveProcessWideTelemetryUntouched) {
  auto& global = telemetry::registry();
  const bool was_enabled = global.enabled();
  ParamGrid grid;
  grid.axis_i64("i", {0, 1, 2, 3});
  SweepOptions opt;
  opt.jobs = 4;
  opt.capture_telemetry = true;
  run_sweep(grid, opt, [](Trial&) {
    telemetry::registry().counter("leak.check").inc();
  });
  EXPECT_EQ(&telemetry::registry(), &global);
  EXPECT_EQ(global.enabled(), was_enabled);
  EXPECT_FALSE(global.has("leak.check"));
}

}  // namespace
}  // namespace sdr::sweep
