// Golden-run regression for Channel's duplicate + reorder + tail-drop
// interactions. The delivery trace below (packet id, arrival time, size)
// and the final stats counters were recorded from the seed implementation
// (shared_ptr packets + std::any payloads) under a fixed seed; the pooled
// packet path must preserve them bit-for-bit — same RNG draw order, same
// event scheduling order, same stats accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"

namespace sdr::sim {
namespace {

struct Delivery {
  std::uint64_t id;
  std::int64_t arrival_ns;
  std::size_t bytes;
  bool operator==(const Delivery&) const = default;
};

TEST(ChannelGoldenTest, DuplicateReorderTailDropTracePreserved) {
  Simulator sim;
  Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 350.0;
  cfg.reorder_probability = 0.3;
  cfg.reorder_extra_delay_s = 200e-6;
  cfg.duplicate_probability = 0.2;
  cfg.queue_capacity_bytes = 8192;
  cfg.seed = 12345;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.1));

  std::vector<Delivery> trace;
  ch.set_receiver([&](Packet&& p) {
    trace.push_back(Delivery{p.id, sim.now().ns, p.bytes});
  });

  // Three bursts of 12 packets, 60 us apart; sizes cycle with the index so
  // tail drops hit different sizes.
  for (int burst = 0; burst < 3; ++burst) {
    sim.schedule_at(SimTime::from_micros(60.0 * burst), [&ch, burst] {
      for (int i = 0; i < 12; ++i) {
        Packet p;
        p.bytes = 500 + ((burst * 12 + i) % 7) * 300;
        ch.send(std::move(p));
      }
    });
  }
  sim.run();

  // Recorded from the seed implementation (commit d1b5102). Duplicated ids
  // (24, 25, 2, 13) arrive twice, reordered packets arrive late, and ids
  // swallowed by tail drops or the drop model never arrive.
  const std::vector<Delivery> kGolden = {
      {3, 1750304, 1400},  {4, 1750440, 1700},  {7, 1750640, 500},
      {16, 1810536, 1100}, {17, 1810648, 1400}, {24, 1870112, 1400},
      {25, 1870248, 1700}, {26, 1870408, 2000}, {27, 1870592, 2300},
      {0, 1950040, 500},   {2, 1950192, 1100},  {5, 1950600, 2000},
      {12, 2010160, 2000}, {13, 2010344, 2300}, {28, 2070632, 500},
      {24, 3620112, 1400}, {25, 3620248, 1700}, {2, 3700192, 1100},
      {13, 3760344, 2300},
  };
  ASSERT_EQ(trace.size(), kGolden.size());
  for (std::size_t i = 0; i < kGolden.size(); ++i) {
    EXPECT_EQ(trace[i], kGolden[i]) << "delivery " << i;
  }

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.sent_packets, 36u);
  EXPECT_EQ(s.sent_bytes, 49500u);
  EXPECT_EQ(s.dropped_packets, 21u);
  EXPECT_EQ(s.queue_drops, 18u);
  EXPECT_EQ(s.reordered_packets, 6u);
  EXPECT_EQ(s.duplicated_packets, 4u);
  EXPECT_EQ(s.delivered_packets, 19u);
}

TEST(ChannelGoldenTest, PacketPoolBoundedByInFlightPackets) {
  // The pool must not grow with traffic volume — only with the peak number
  // of packets simultaneously on the wire.
  Simulator sim;
  Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 10.0;
  cfg.duplicate_probability = 0.1;
  cfg.seed = 7;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  int delivered = 0;
  ch.set_receiver([&](Packet&&) { ++delivered; });

  std::size_t peak_pool = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 32; ++i) {
      Packet p;
      p.bytes = 1024;
      ch.send(std::move(p));
    }
    sim.run();
    peak_pool = std::max(peak_pool, ch.pool_size());
  }
  EXPECT_GT(delivered, 6400);
  // 32 packets in flight per round plus duplicates; 200 rounds of traffic
  // must reuse those same slots.
  EXPECT_LE(ch.pool_size(), 64u);
  EXPECT_EQ(ch.pool_size(), peak_pool);
}

TEST(ChannelGoldenTest, TypedPayloadRoundTrip) {
  // The std::variant payload replaces std::any: a TestPayload must survive
  // the pooled delivery path (including duplication) intact.
  Simulator sim;
  Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 10.0;
  cfg.duplicate_probability = 1.0;
  cfg.seed = 3;
  Channel ch(sim, cfg, std::make_unique<IidDrop>(0.0));
  std::vector<std::uint64_t> tags;
  ch.set_receiver([&](Packet&& p) {
    auto* tp = std::get_if<TestPayload>(&p.payload);
    ASSERT_NE(tp, nullptr);
    tags.push_back(tp->tag);
  });
  Packet p;
  p.bytes = 256;
  p.payload = TestPayload{0xBEEFu};
  ch.send(std::move(p));
  sim.run();
  ASSERT_EQ(tags.size(), 2u);  // original + duplicate
  EXPECT_EQ(tags[0], 0xBEEFu);
  EXPECT_EQ(tags[1], 0xBEEFu);
}

}  // namespace
}  // namespace sdr::sim
