// End-to-end tests of the executable Selective Repeat protocol over the SDR
// stack: delivery under loss (data and control directions), NACK mode, ACK
// wire codec, multiple sequential messages.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "reliability/ack_codec.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::reliability {
namespace {

core::QpAttr proto_attr() {
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 4096;
  attr.max_msg_size = 256 * 1024;
  attr.max_inflight = 8;
  attr.generations = 2;
  return attr;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 1) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131 + (i >> 9));
  }
  return v;
}

class SrProtoFixture : public ::testing::Test {
 protected:
  void wire(double p_drop_fwd, double p_drop_bwd, bool nack = false) {
    // Strict reverse dependency order before replacing the NIC pair.
    sender_.reset();
    receiver_.reset();
    ctrl_a_.reset();
    ctrl_b_.reset();
    ctx_a_.reset();
    ctx_b_.reset();
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 100.0;  // 1 ms RTT
    cfg.seed = 5;
    pair_ = verbs::make_connected_pair(sim_, cfg, p_drop_fwd, p_drop_bwd);
    ctx_a_ = std::make_unique<core::Context>(*pair_.a, core::DevAttr{});
    ctx_b_ = std::make_unique<core::Context>(*pair_.b, core::DevAttr{});
    qp_a_ = ctx_a_->create_qp(proto_attr());
    qp_b_ = ctx_b_->create_qp(proto_attr());
    qp_a_->connect(qp_b_->info());
    qp_b_->connect(qp_a_->info());

    ctrl_a_ = std::make_unique<ControlLink>(*pair_.a);
    ctrl_b_ = std::make_unique<ControlLink>(*pair_.b);
    ctrl_a_->connect(pair_.b->id(), ctrl_b_->qp_number());
    ctrl_b_->connect(pair_.a->id(), ctrl_a_->qp_number());

    profile_.bandwidth_bps = cfg.bandwidth_bps;
    profile_.rtt_s = 2.0 * propagation_delay_s(cfg.distance_km);
    profile_.p_drop_packet = p_drop_fwd;
    profile_.mtu = proto_attr().mtu;
    profile_.chunk_bytes = proto_attr().chunk_size;

    SrProtoConfig config;
    config.rto_s = 3.0 * profile_.rtt_s;
    config.ack_interval_s = profile_.rtt_s / 4.0;
    config.nack_enabled = nack;
    config.nack_holdoff_s = profile_.rtt_s;
    sender_ = std::make_unique<SrSender>(sim_, *qp_a_, *ctrl_a_, profile_,
                                         config);
    receiver_ = std::make_unique<SrReceiver>(sim_, *qp_b_, *ctrl_b_, profile_,
                                             config);
  }

  void transfer(std::size_t bytes, std::uint8_t seed) {
    const auto src = pattern(bytes, seed);
    std::vector<std::uint8_t> dst(bytes, 0);
    const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
    bool send_done = false, recv_done = false;
    ASSERT_TRUE(receiver_
                    ->expect(dst.data(), bytes, mr,
                             [&](const Status& s) {
                               EXPECT_TRUE(s.is_ok());
                               recv_done = true;
                             })
                    .is_ok());
    ASSERT_TRUE(sender_
                    ->write(src.data(), bytes,
                            [&](const Status& s) {
                              EXPECT_TRUE(s.is_ok());
                              send_done = true;
                            })
                    .is_ok());
    sim_.run();
    EXPECT_TRUE(send_done) << "sender never saw the final ACK";
    EXPECT_TRUE(recv_done) << "receiver never completed";
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), bytes), 0);
  }

  sim::Simulator sim_;
  verbs::NicPair pair_;
  std::unique_ptr<core::Context> ctx_a_, ctx_b_;
  core::Qp* qp_a_{nullptr};
  core::Qp* qp_b_{nullptr};
  std::unique_ptr<ControlLink> ctrl_a_, ctrl_b_;
  LinkProfile profile_;
  std::unique_ptr<SrSender> sender_;
  std::unique_ptr<SrReceiver> receiver_;
};

TEST_F(SrProtoFixture, LosslessDelivery) {
  wire(0.0, 0.0);
  transfer(64 * 1024, 1);
  EXPECT_EQ(sender_->stats().retransmissions, 0u);
}

TEST_F(SrProtoFixture, DeliveryUnderModerateLoss) {
  wire(0.02, 0.0);
  transfer(128 * 1024, 2);
  EXPECT_GT(sender_->stats().retransmissions, 0u);
}

TEST_F(SrProtoFixture, DeliveryUnderHeavyLoss) {
  wire(0.2, 0.0);
  transfer(64 * 1024, 3);
  EXPECT_GT(sender_->stats().retransmissions, 0u);
}

TEST_F(SrProtoFixture, SurvivesControlPathLoss) {
  // ACKs can be dropped too: RTO retransmissions and repeated final ACKs
  // must still converge.
  wire(0.05, 0.05);
  transfer(64 * 1024, 4);
}

TEST_F(SrProtoFixture, NackModeRecovers) {
  wire(0.05, 0.0, /*nack=*/true);
  transfer(128 * 1024, 5);
  EXPECT_GT(receiver_->stats().nacks_sent, 0u);
}

TEST_F(SrProtoFixture, SequentialMessagesReuseSlots) {
  wire(0.02, 0.0);
  for (int i = 0; i < 20; ++i) {
    transfer(16 * 1024, static_cast<std::uint8_t>(i + 1));
  }
  EXPECT_EQ(sender_->stats().messages, 20u);
  EXPECT_EQ(receiver_->stats().messages, 20u);
}

TEST_F(SrProtoFixture, NonChunkAlignedLength) {
  wire(0.01, 0.0);
  transfer(10 * 1024 + 512, 6);  // partial final chunk
}

TEST_F(SrProtoFixture, SingleChunkMessage) {
  wire(0.05, 0.0);
  transfer(4096, 7);
  transfer(1024, 8);  // sub-chunk message
}

TEST_F(SrProtoFixture, EmptyWriteRejected) {
  wire(0.0, 0.0);
  EXPECT_EQ(sender_->write(nullptr, 0, nullptr).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ACK wire codec
// ---------------------------------------------------------------------------

TEST(AckCodecTest, RoundTripAck) {
  ControlMessage msg;
  msg.type = ControlType::kSrAck;
  msg.msg_number = 0x123456789ABCDEFull;
  msg.cumulative = 77;
  msg.selective_base = 64;
  msg.selective = {0xDEADBEEFCAFEF00Dull, 0x1ull};
  const auto wire = encode_control(msg);
  const auto decoded = decode_control(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(AckCodecTest, RoundTripNackWithIndices) {
  ControlMessage msg;
  msg.type = ControlType::kEcNack;
  msg.msg_number = 42;
  msg.indices = {1, 5, 1000, 65535};
  const auto wire = encode_control(msg);
  const auto decoded = decode_control(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

TEST(AckCodecTest, TruncatedInputRejected) {
  ControlMessage msg;
  msg.type = ControlType::kSrAck;
  msg.selective = {1, 2, 3};
  const auto wire = encode_control(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_control(wire.data(), cut).has_value()) << cut;
  }
}

TEST(AckCodecTest, GarbageTypeRejected) {
  ControlMessage msg;
  auto wire = encode_control(msg);
  wire[0] = 99;
  EXPECT_FALSE(decode_control(wire.data(), wire.size()).has_value());
}

TEST(AckCodecTest, EmptyPayloadsRoundTrip) {
  ControlMessage msg;
  msg.type = ControlType::kEcAck;
  msg.msg_number = 7;
  const auto wire = encode_control(msg);
  const auto decoded = decode_control(wire.data(), wire.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, msg);
}

}  // namespace
}  // namespace sdr::reliability
