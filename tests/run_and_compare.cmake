# Golden-output test driver: run `CMD ARGS...`, capture stdout, compare it
# byte-for-byte against GOLDEN. Invoked in script mode:
#
#   cmake -DCMD=<binary> "-DARGS=a b c" -DGOLDEN=<file> -P run_and_compare.cmake
#
# On mismatch the actual output is saved as <golden-name>.actual in the
# working directory (ctest runs tests in the build tree) so
# `diff tests/golden/x.txt x.txt.actual` explains the failure — and, for an
# intentional output change, `cp` refreshes the golden.
if(NOT DEFINED CMD OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "usage: cmake -DCMD=... [-DARGS=...] -DGOLDEN=... -P run_and_compare.cmake")
endif()

separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${CMD} ${arg_list}
  OUTPUT_VARIABLE actual
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${CMD} ${ARGS} exited with ${rc}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  get_filename_component(golden_name "${GOLDEN}" NAME)
  file(WRITE "${golden_name}.actual" "${actual}")
  message(FATAL_ERROR
    "output of ${CMD} ${ARGS} differs from ${GOLDEN}\n"
    "actual output saved to ${golden_name}.actual")
endif()
