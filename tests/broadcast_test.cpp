// Executable binomial-tree broadcast over the full stack: correctness for
// various node counts, schemes and loss levels; log2 round structure.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "collectives/broadcast.hpp"
#include "common/rng.hpp"

namespace sdr::collectives {
namespace {

BroadcastConfig make_config(reliability::ReliableChannel::Kind kind,
                            std::size_t nodes, std::size_t bytes,
                            double p_drop) {
  BroadcastConfig cfg;
  cfg.nodes = nodes;
  cfg.bytes = bytes;
  cfg.seed = 99;

  cfg.link.config.bandwidth_bps = 100e9;
  cfg.link.config.distance_km = 500.0;
  cfg.link.p_drop_forward = p_drop;
  cfg.link.p_drop_backward = 0.0;

  cfg.channel.kind = kind;
  cfg.channel.profile.bandwidth_bps = cfg.link.config.bandwidth_bps;
  cfg.channel.profile.rtt_s = rtt_s(cfg.link.config.distance_km);
  cfg.channel.profile.p_drop_packet = p_drop;
  cfg.channel.profile.mtu = 1024;
  cfg.channel.profile.chunk_bytes = 1024;
  cfg.channel.attr.mtu = 1024;
  cfg.channel.attr.chunk_size = 1024;
  cfg.channel.attr.max_msg_size = 256 * 1024;
  cfg.channel.attr.max_inflight = 64;
  cfg.channel.ec.k = 8;
  cfg.channel.ec.m = 4;
  cfg.channel.derive_timeouts();
  return cfg;
}

std::vector<std::vector<std::uint8_t>> make_buffers(std::size_t nodes,
                                                    std::size_t bytes) {
  Rng rng(5);
  std::vector<std::vector<std::uint8_t>> buffers(
      nodes, std::vector<std::uint8_t>(bytes, 0));
  for (auto& b : buffers[0]) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return buffers;
}

struct BcastCase {
  reliability::ReliableChannel::Kind kind;
  std::size_t nodes;
  double p_drop;
};

class BroadcastParamTest : public ::testing::TestWithParam<BcastCase> {};

TEST_P(BroadcastParamTest, EveryNodeReceivesRootPayload) {
  const BcastCase c = GetParam();
  const std::size_t bytes = 64 * 1024;  // 8 submessages at k=8, 1 KiB chunk
  sim::Simulator sim;
  BinomialBroadcast bcast(sim, make_config(c.kind, c.nodes, bytes, c.p_drop));
  auto buffers = make_buffers(c.nodes, bytes);
  const std::vector<std::uint8_t> root_copy = buffers[0];

  const BroadcastResult result = bcast.run(buffers);
  ASSERT_TRUE(result.status.is_ok()) << result.status;
  EXPECT_GT(result.completion_s, 0.0);
  for (std::size_t i = 0; i < c.nodes; ++i) {
    ASSERT_EQ(std::memcmp(buffers[i].data(), root_copy.data(), bytes), 0)
        << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BroadcastParamTest,
    ::testing::Values(
        BcastCase{reliability::ReliableChannel::Kind::kSrRto, 2, 0.0},
        BcastCase{reliability::ReliableChannel::Kind::kSrRto, 8, 0.02},
        BcastCase{reliability::ReliableChannel::Kind::kSrNack, 5, 0.02},
        BcastCase{reliability::ReliableChannel::Kind::kEcMds, 8, 0.02},
        BcastCase{reliability::ReliableChannel::Kind::kEcMds, 3, 0.05},
        BcastCase{reliability::ReliableChannel::Kind::kSrRto, 16, 0.01}),
    [](const ::testing::TestParamInfo<BcastCase>& pinfo) {
      const char* kind = "";
      switch (pinfo.param.kind) {
        case reliability::ReliableChannel::Kind::kSrRto: kind = "SrRto"; break;
        case reliability::ReliableChannel::Kind::kSrNack: kind = "SrNack"; break;
        case reliability::ReliableChannel::Kind::kEcMds: kind = "EcMds"; break;
        case reliability::ReliableChannel::Kind::kEcXor: kind = "EcXor"; break;
      }
      return std::string(kind) + "_n" + std::to_string(pinfo.param.nodes) +
             "_p" + std::to_string(static_cast<int>(pinfo.param.p_drop * 1000));
    });

TEST(BroadcastTest, RoundCountIsCeilLog2) {
  for (const auto& [n, rounds] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}}) {
    sim::Simulator sim;
    BinomialBroadcast bcast(
        sim, make_config(reliability::ReliableChannel::Kind::kSrRto, n,
                         8 * 1024, 0.0));
    auto buffers = make_buffers(n, 8 * 1024);
    const BroadcastResult result = bcast.run(buffers);
    ASSERT_TRUE(result.status.is_ok());
    EXPECT_EQ(result.rounds, rounds) << "n=" << n;
  }
}

TEST(BroadcastTest, CompletionGrowsLogarithmically) {
  // Lossless: doubling the node count adds ~one round, not ~N rounds.
  auto completion = [&](std::size_t n) {
    sim::Simulator sim;
    BinomialBroadcast bcast(
        sim, make_config(reliability::ReliableChannel::Kind::kSrRto, n,
                         8 * 1024, 0.0));
    auto buffers = make_buffers(n, 8 * 1024);
    const BroadcastResult r = bcast.run(buffers);
    EXPECT_TRUE(r.status.is_ok());
    return r.completion_s;
  };
  const double t4 = completion(4);
  const double t16 = completion(16);
  // 16 nodes = 4 rounds vs 2 rounds: about 2x, far below the 5x a linear
  // chain would cost.
  EXPECT_LT(t16, t4 * 3.0);
  EXPECT_GT(t16, t4 * 1.2);
}

TEST(BroadcastTest, BufferValidation) {
  sim::Simulator sim;
  BinomialBroadcast bcast(
      sim, make_config(reliability::ReliableChannel::Kind::kSrRto, 4,
                       8 * 1024, 0.0));
  std::vector<std::vector<std::uint8_t>> wrong_count(3);
  EXPECT_EQ(bcast.run(wrong_count).status.code(),
            StatusCode::kInvalidArgument);
  std::vector<std::vector<std::uint8_t>> wrong_size(
      4, std::vector<std::uint8_t>(100));
  EXPECT_EQ(bcast.run(wrong_size).status.code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sdr::collectives
