// Tests for the NIC injection resource model (verbs/nic_model.hpp): token
// bucket conservation, SQ-depth backpressure ordering, doorbell batching,
// and the disabled-model fast path.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "verbs/cq.hpp"
#include "verbs/mr.hpp"
#include "verbs/nic.hpp"
#include "verbs/nic_model.hpp"
#include "verbs/qp.hpp"

namespace sdr::verbs {
namespace {

sim::Channel::Config fast_link() {
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 7;
  return cfg;
}

// ---------------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, UnlimitedBypasses) {
  TokenBucket bucket;  // rate 0 = unlimited
  EXPECT_FALSE(bucket.limited());
  const SimTime t = SimTime::from_micros(5);
  EXPECT_EQ(bucket.acquire(100.0, t), t);
}

TEST(TokenBucketTest, BurstThenPaced) {
  TokenBucket bucket(1000.0, 4.0);  // 1 op/ms, burst 4
  SimTime t = SimTime::zero();
  // The burst is admitted instantly...
  for (int i = 0; i < 4; ++i) EXPECT_EQ(bucket.acquire(1.0, t), t);
  // ...then each op waits one full refill period.
  SimTime prev = t;
  for (int i = 0; i < 5; ++i) {
    const SimTime ready = bucket.acquire(1.0, prev);
    EXPECT_EQ((ready - prev).ns, 1'000'000);
    prev = ready;
  }
}

TEST(TokenBucketTest, ConservationUnderArbitraryDemand) {
  // However demand arrives, the number of ops admitted by time T can never
  // exceed burst + rate*T: the bucket may defer but never mints tokens.
  const double rate = 2500.0;
  const double burst = 8.0;
  TokenBucket bucket(rate, burst);
  Rng rng(0x70CE17);
  SimTime clock = SimTime::zero();
  std::uint64_t admitted = 0;
  for (int i = 0; i < 2000; ++i) {
    // Bursty demand: sometimes ask from the current admission frontier,
    // sometimes after an idle gap that refills the bucket.
    if (rng.bernoulli(0.1)) {
      clock = clock + SimTime::from_micros(rng.next_below(5000));
    }
    const SimTime ready = bucket.acquire(1.0, clock);
    EXPECT_GE(ready, clock);
    clock = ready;
    ++admitted;
    const double budget = burst + rate * clock.seconds();
    EXPECT_LE(static_cast<double>(admitted), budget + 1e-6);
  }
  // Tokens never exceed the burst, even after a long idle stretch.
  EXPECT_LE(bucket.tokens_at(clock + SimTime::from_seconds(10.0)),
            burst + 1e-9);
}

// ---------------------------------------------------------------------------
// Injector end-to-end (through a caps-enabled NIC)
// ---------------------------------------------------------------------------

class InjectorFixture : public ::testing::Test {
 protected:
  void connect(const NicCaps& caps) {
    pair_ = make_connected_pair(sim_, fast_link(), 0.0, 0.0);
    pair_.a->set_caps(caps);  // before create_qp: QPs snapshot at init
    tx_ = make_qp(*pair_.a, &tx_cq_, nullptr);
    rx_ = make_qp(*pair_.b, nullptr, &rx_cq_);
    tx_->connect(pair_.b->id(), rx_->num());
    dst_.assign(1 << 20, 0);
    mr_ = pair_.b->pd().register_mr(dst_.data(), dst_.size());
  }

  Qp* make_qp(Nic& nic, CompletionQueue* send_cq, CompletionQueue* recv_cq) {
    QpConfig cfg;
    cfg.type = QpType::kUC;
    cfg.mtu = 1024;
    cfg.send_cq = send_cq;
    cfg.recv_cq = recv_cq;
    return nic.create_qp(cfg);
  }

  // One write-with-immediate; imm tags the post order. Write payloads are
  // zero-copy borrows, so each post gets its own stable source buffer.
  void post_one(std::uint32_t tag, std::size_t bytes = 512) {
    src_.emplace_back(bytes, static_cast<std::uint8_t>(tag));
    WriteWr wr;
    wr.wr_id = tag;
    wr.local_addr = src_.back().data();
    wr.length = src_.back().size();
    wr.rkey = mr_->rkey();
    wr.remote_offset = static_cast<std::size_t>(tag) * 1024;
    wr.with_imm = true;
    wr.imm = tag;
    wr.signaled = true;
    ASSERT_TRUE(tx_->post_write(wr).is_ok());
  }

  sim::Simulator sim_;
  NicPair pair_;
  CompletionQueue tx_cq_, rx_cq_;
  Qp* tx_{nullptr};
  Qp* rx_{nullptr};
  std::vector<std::uint8_t> dst_;
  std::deque<std::vector<std::uint8_t>> src_;
  const MemoryRegion* mr_{nullptr};
};

TEST_F(InjectorFixture, DisabledCapsBuildNoInjector) {
  connect(NicCaps{});  // enabled = false
  EXPECT_EQ(tx_->injector(), nullptr);
}

TEST_F(InjectorFixture, SqBackpressureBlocksAndPreservesOrder) {
  NicCaps caps;
  caps.enabled = true;
  caps.sq_depth = 2;
  caps.pcie_desc_s = 0.0;
  caps.pcie_doorbell_s = 0.0;
  connect(caps);

  const int n = 32;
  for (int i = 0; i < n; ++i) post_one(static_cast<std::uint32_t>(i), 4096);
  ASSERT_NE(tx_->injector(), nullptr);
  sim_.run();

  // Posting 32 multi-packet writes into a 2-deep SQ must have blocked.
  EXPECT_GT(tx_->injector()->stats().sq_full_waits, 0u);
  EXPECT_EQ(tx_->injector()->stats().posted_packets,
            static_cast<std::uint64_t>(n) * 4);  // 4096 B at MTU 1024

  // Receive completions land in post order despite the backpressure...
  ASSERT_EQ(rx_cq_.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const Cqe cqe = *rx_cq_.poll_one();
    EXPECT_EQ(cqe.imm, static_cast<std::uint32_t>(i));
  }
  // ...and so do the sender's signaled completions.
  ASSERT_EQ(tx_cq_.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(tx_cq_.poll_one()->wr_id, static_cast<std::uint64_t>(i));
  }
  // Payload integrity: each region carries its tag byte.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dst_[static_cast<std::size_t>(i) * 1024],
              static_cast<std::uint8_t>(i));
  }
}

TEST_F(InjectorFixture, DoorbellPaidOncePerBatchBoundary) {
  NicCaps caps;
  caps.enabled = true;
  caps.doorbell_batch = 4;
  caps.sq_depth = 0;  // isolate the doorbell accounting
  connect(caps);

  // 10 single-packet posts with batch 4 -> doorbells at posts 1, 5, 9.
  for (int i = 0; i < 10; ++i) post_one(static_cast<std::uint32_t>(i));
  sim_.run();
  ASSERT_NE(tx_->injector(), nullptr);
  EXPECT_EQ(tx_->injector()->stats().posted_packets, 10u);
  EXPECT_EQ(tx_->injector()->stats().doorbells_rung, 3u);
  EXPECT_EQ(rx_cq_.size(), 10u);
}

TEST_F(InjectorFixture, PcieCostsSetTheInjectionClock) {
  NicCaps caps;
  caps.enabled = true;
  caps.doorbell_batch = 8;
  caps.pcie_desc_s = 100e-9;
  caps.pcie_doorbell_s = 1e-6;
  caps.sq_depth = 0;
  connect(caps);

  for (int i = 0; i < 8; ++i) post_one(static_cast<std::uint32_t>(i));
  ASSERT_NE(tx_->injector(), nullptr);
  // One doorbell (batch of 8) + 8 descriptor fetches, all admitted at t=0.
  const SimTime ready = tx_->injector()->post_ready_at();
  EXPECT_EQ(ready.ns, 1000 + 8 * 100);
  sim_.run();
  EXPECT_EQ(rx_cq_.size(), 8u);
}

TEST_F(InjectorFixture, TokenBucketPacesSmallOps) {
  NicCaps caps;
  caps.enabled = true;
  caps.write_ops_per_s = 100'000.0;  // 10 us per op
  caps.burst_ops = 2.0;
  caps.pcie_desc_s = 0.0;
  caps.pcie_doorbell_s = 0.0;
  caps.sq_depth = 0;
  connect(caps);

  const int n = 12;
  for (int i = 0; i < n; ++i) post_one(static_cast<std::uint32_t>(i));
  ASSERT_NE(tx_->injector(), nullptr);
  EXPECT_GT(tx_->injector()->stats().token_bucket_waits, 0u);
  // Burst of 2 at t=0, then one op per 10 us: last admitted at (n-2)*10us.
  EXPECT_EQ(tx_->injector()->post_ready_at().ns,
            static_cast<std::int64_t>(n - 2) * 10'000);
  sim_.run();
  EXPECT_EQ(rx_cq_.size(), static_cast<std::size_t>(n));
}

}  // namespace
}  // namespace sdr::verbs
