// Data-path allocation regression tests.
//
// Two guarantees of the zero-copy wire work are locked in here:
//  * PayloadRef lifetime — every pooled payload reference is released back
//    to the thread-local PayloadPool on delivery, on channel drop, and when
//    a retransmission supersedes the original in-flight copy (no slot leaks
//    across any packet fate).
//  * Zero allocations per packet in steady state — the end-to-end path
//    (post -> verbs packetization -> channel -> CQE -> SDR bitmap update ->
//    completion -> repost) must not touch the allocator once warmed up,
//    measured with the same global operator-new hook bench_simcore and
//    bench_datapath use.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/payload_pool.hpp"
#include "common/units.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same hook as bench_simcore / bench_datapath).
// gtest allocates freely outside the measured windows; tests only compare
// snapshots taken around their steady-state region.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace sdr {
namespace {

// ---------------------------------------------------------------------------
// PayloadPool / PayloadRef unit semantics
// ---------------------------------------------------------------------------

TEST(PayloadPoolTest, AcquireReleaseAndFreeListReuse) {
  common::PayloadPool pool;
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  const std::uint32_t slot = pool.acquire(bytes, sizeof(bytes));
  EXPECT_EQ(pool.live_slots(), 1u);
  EXPECT_EQ(std::memcmp(pool.data(slot), bytes, sizeof(bytes)), 0);

  pool.add_ref(slot);
  pool.release(slot);  // refcount 2 -> 1: still live
  EXPECT_EQ(pool.live_slots(), 1u);
  pool.release(slot);  // refcount 1 -> 0: free-listed
  EXPECT_EQ(pool.live_slots(), 0u);

  const std::size_t total = pool.total_slots();
  const std::uint32_t again = pool.acquire(bytes, sizeof(bytes));
  EXPECT_EQ(again, slot);                   // free list hands the slot back
  EXPECT_EQ(pool.total_slots(), total);     // no new slot appended
  pool.release(again);
}

TEST(PayloadPoolTest, RefCopyMoveRelease) {
  common::PayloadPool& pool = common::payload_pool();
  const std::size_t live_before = pool.live_slots();
  const std::uint8_t bytes[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  {
    common::PayloadRef a = common::PayloadRef::pooled_copy(bytes, sizeof(bytes));
    EXPECT_TRUE(a.pooled());
    EXPECT_EQ(a.size(), sizeof(bytes));
    EXPECT_EQ(std::memcmp(a.data(), bytes, sizeof(bytes)), 0);
    EXPECT_EQ(pool.live_slots(), live_before + 1);

    common::PayloadRef b = a;  // copy bumps the refcount, same slot
    EXPECT_EQ(pool.live_slots(), live_before + 1);
    common::PayloadRef c = std::move(a);  // move steals, no refcount change
    EXPECT_EQ(pool.live_slots(), live_before + 1);
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(std::memcmp(c.data(), b.data(), sizeof(bytes)), 0);
  }
  EXPECT_EQ(pool.live_slots(), live_before);  // all refs gone: slot released
}

TEST(PayloadPoolTest, BorrowDoesNotTouchPool) {
  common::PayloadPool& pool = common::payload_pool();
  const std::size_t live_before = pool.live_slots();
  const std::size_t total_before = pool.total_slots();
  const std::uint8_t bytes[16] = {};
  {
    common::PayloadRef ref = common::PayloadRef::borrow(bytes, sizeof(bytes));
    EXPECT_FALSE(ref.pooled());
    EXPECT_EQ(ref.data(), bytes);
    common::PayloadRef copy = ref;
    EXPECT_EQ(copy.data(), bytes);
  }
  EXPECT_EQ(pool.live_slots(), live_before);
  EXPECT_EQ(pool.total_slots(), total_before);
}

// ---------------------------------------------------------------------------
// Pooled reference lifetime through the wire: delivery, drop, retransmit
// ---------------------------------------------------------------------------

sim::Channel::Config test_link() {
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100 * Gbps;
  cfg.distance_km = 0.1;
  cfg.seed = 42;
  return cfg;
}

TEST(PayloadLifetimeTest, ReleasedOnDelivery) {
  const std::size_t live_before = common::payload_pool().live_slots();
  sim::Simulator sim;
  verbs::NicPair pair = verbs::make_connected_pair(sim, test_link(), 0.0, 0.0);
  verbs::CompletionQueue rx_cq;
  verbs::QpConfig cfg;
  cfg.type = verbs::QpType::kUD;
  cfg.mtu = 1024;
  verbs::Qp* tx = pair.a->create_qp(cfg);
  cfg.recv_cq = &rx_cq;
  verbs::Qp* rx = pair.b->create_qp(cfg);

  std::vector<std::uint8_t> recv_buf(512);
  verbs::RecvWr rwr;
  rwr.addr = recv_buf.data();
  rwr.length = recv_buf.size();
  rx->post_recv(rwr);

  std::vector<std::uint8_t> msg(256, 0xAB);
  verbs::SendWr swr;
  swr.local_addr = msg.data();
  swr.length = msg.size();
  swr.dst_nic = pair.b->id();
  swr.dst_qp = rx->num();
  ASSERT_TRUE(tx->post_send(swr).is_ok());
  // The in-flight datagram holds a pooled copy (the sender's buffer is not
  // required to stay valid after injection for UD).
  EXPECT_GT(common::payload_pool().live_slots(), live_before);
  sim.run();

  EXPECT_EQ(rx_cq.size(), 1u);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), msg.size()), 0);
  // Delivered: the receive path copied once into the posted buffer and the
  // wire packet's reference died with it.
  EXPECT_EQ(common::payload_pool().live_slots(), live_before);
}

TEST(PayloadLifetimeTest, ReleasedOnDrop) {
  const std::size_t live_before = common::payload_pool().live_slots();
  sim::Simulator sim;
  // Forward loss 1.0: every data packet dies inside the channel.
  verbs::NicPair pair = verbs::make_connected_pair(sim, test_link(), 1.0, 0.0);
  verbs::QpConfig cfg;
  cfg.type = verbs::QpType::kUD;
  cfg.mtu = 1024;
  verbs::Qp* tx = pair.a->create_qp(cfg);

  std::vector<std::uint8_t> msg(300, 0xCD);
  for (int i = 0; i < 8; ++i) {
    verbs::SendWr swr;
    swr.local_addr = msg.data();
    swr.length = msg.size();
    swr.dst_nic = pair.b->id();
    swr.dst_qp = 0x999;  // never delivered anyway
    ASSERT_TRUE(tx->post_send(swr).is_ok());
  }
  sim.run();
  // Dropped packets are destroyed by the channel; their references must be
  // returned to the pool, not leaked with the packet.
  EXPECT_EQ(common::payload_pool().live_slots(), live_before);
}

TEST(PayloadLifetimeTest, ReleasedWhenRetransmitSupersedes) {
  const std::size_t live_before = common::payload_pool().live_slots();
  sim::Simulator sim;
  // Lossy forward path: RC Go-Back-N keeps every send in the unacked queue
  // (one pooled reference each), and every retransmission duplicates a
  // reference rather than the bytes. All of them must drain by completion.
  verbs::NicPair pair = verbs::make_connected_pair(sim, test_link(), 0.25, 0.0);
  verbs::CompletionQueue tx_cq, rx_cq;
  verbs::QpConfig cfg;
  cfg.type = verbs::QpType::kRC;
  cfg.mtu = 1024;
  cfg.rc_ack_timeout_s = 0.001;
  verbs::QpConfig tx_cfg = cfg;
  tx_cfg.send_cq = &tx_cq;
  verbs::Qp* tx = pair.a->create_qp(tx_cfg);
  verbs::QpConfig rx_cfg = cfg;
  rx_cfg.recv_cq = &rx_cq;
  verbs::Qp* rx = pair.b->create_qp(rx_cfg);
  tx->connect(pair.b->id(), rx->num());
  rx->connect(pair.a->id(), tx->num());

  constexpr int kSends = 50;
  std::vector<std::vector<std::uint8_t>> recv_bufs(kSends);
  for (auto& buf : recv_bufs) {
    buf.assign(512, 0);
    verbs::RecvWr rwr;
    rwr.addr = buf.data();
    rwr.length = buf.size();
    ASSERT_TRUE(rx->post_recv(rwr).is_ok());
  }
  std::vector<std::uint8_t> msg(512, 0xEF);
  for (int i = 0; i < kSends; ++i) {
    verbs::SendWr swr;
    swr.wr_id = static_cast<std::uint64_t>(i);
    swr.local_addr = msg.data();
    swr.length = msg.size();
    ASSERT_TRUE(tx->post_send(swr).is_ok());
  }
  sim.run();

  EXPECT_EQ(rx_cq.size(), static_cast<std::size_t>(kSends));
  EXPECT_GT(tx->stats().rc_retransmissions, 0u);
  // Acked originals, superseded in-flight copies and retransmissions alike:
  // every reference must be back in the pool.
  EXPECT_EQ(common::payload_pool().live_slots(), live_before);
}

// ---------------------------------------------------------------------------
// Zero allocations per packet, end to end, in steady state. Compact version
// of bench_datapath's sdr_clean workload: pipelined SDR messages with CTS
// matching, per-packet Write-with-immediate CQEs, bitmap coalescing,
// completion and repost; after `warmup` completed messages the allocator
// must not be touched again until the run ends.
// ---------------------------------------------------------------------------
TEST(AllocRegressionTest, ZeroAllocsPerPacketSdrCleanSteadyState) {
  // Warmup must outlast every lazy first-touch growth. The latest one is
  // the data CQs of the last QP generation, first used at message
  // generations * max_inflight - max_inflight (= 48 here); 64 completed
  // messages covers it with margin.
  constexpr int kIterations = 96;
  constexpr int kWarmup = 64;
  constexpr int kInflight = 8;
  constexpr std::size_t kMsgBytes = 1 * MiB;

  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 400 * Gbps;
  cfg.distance_km = 0.1;
  cfg.seed = 11;
  verbs::NicPair nics = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);

  core::Context client(*nics.a, core::DevAttr{});
  core::Context server(*nics.b, core::DevAttr{});
  core::QpAttr attr;
  attr.mtu = 4096;
  attr.chunk_size = 64 * KiB;
  attr.max_msg_size = kMsgBytes;
  attr.max_inflight = kInflight * 2;
  core::Qp* cq = client.create_qp(attr);
  core::Qp* sq = server.create_qp(attr);
  ASSERT_TRUE(cq->connect(sq->info()).is_ok());
  ASSERT_TRUE(sq->connect(cq->info()).is_ok());

  std::vector<std::uint8_t> src(kMsgBytes, 0xA5);
  std::vector<std::uint8_t> dst(kInflight * attr.max_msg_size, 0);
  const auto* mr = server.mr_reg(dst.data(), dst.size());

  std::uint64_t allocs_at_steady = 0;
  int posted = 0;
  int completed = 0;

  std::function<void(int)> post_recv = [&](int window_slot) {
    if (posted >= kIterations) return;
    ++posted;
    core::RecvHandle* rh = nullptr;
    sq->recv_post(dst.data() + window_slot * attr.max_msg_size, kMsgBytes, mr,
                  &rh);
  };
  sq->set_recv_event_handler([&](const core::RecvEvent& ev) {
    if (ev.type != core::RecvEvent::Type::kMessageCompleted) return;
    ++completed;
    if (completed == kWarmup) allocs_at_steady = g_allocs.load();
    const int window_slot =
        static_cast<int>(ev.handle->slot() % kInflight);
    sq->recv_complete(ev.handle);
    post_recv(window_slot);
  });

  std::vector<core::SendHandle*> handles;
  int sent = 0;
  std::function<void()> pump = [&] {
    for (auto it = handles.begin(); it != handles.end();) {
      if (cq->send_poll(*it).is_ok()) {
        it = handles.erase(it);
      } else {
        ++it;
      }
    }
    while (sent < kIterations &&
           handles.size() < static_cast<std::size_t>(kInflight)) {
      core::SendHandle* sh = nullptr;
      if (!cq->send_post(src.data(), kMsgBytes, 0, false, &sh)) break;
      handles.push_back(sh);
      ++sent;
    }
    if (completed < kIterations) {
      // One-pointer capture: copying the fat std::function would allocate.
      sim.schedule(SimTime::from_micros(1), [&pump] { pump(); });
    }
  };

  for (int w = 0; w < kInflight && posted < kIterations; ++w) post_recv(w);
  pump();
  sim.run();

  ASSERT_EQ(completed, kIterations);
  const std::uint64_t steady_allocs = g_allocs.load() - allocs_at_steady;
  EXPECT_EQ(steady_allocs, 0u)
      << steady_allocs << " allocations in the steady-state window ("
      << (kIterations - kWarmup) << " messages of "
      << kMsgBytes / attr.mtu << " packets)";
  // And end-to-end correctness of the measured transfer: last window's
  // buffers hold the source pattern.
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), kMsgBytes), 0);
}

}  // namespace
}  // namespace sdr
