// Validate the Appendix B decode-probability formulas against Monte-Carlo
// simulation of the actual codecs' can_recover predicates.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ec/probability.hpp"
#include "ec/reed_solomon.hpp"
#include "ec/xor_code.hpp"

namespace sdr::ec {
namespace {

double monte_carlo_success(const ErasureCodec& codec, double p_drop,
                           std::uint64_t trials, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t total = codec.k() + codec.m();
  PresenceMap present(total);
  std::uint64_t ok = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < total; ++i) {
      present[i] = !rng.bernoulli(p_drop);
    }
    ok += codec.can_recover(present) ? 1 : 0;
  }
  return static_cast<double>(ok) / static_cast<double>(trials);
}

struct ProbCase {
  std::size_t k;
  std::size_t m;
  double p;
};

class MdsProbTest : public ::testing::TestWithParam<ProbCase> {};

TEST_P(MdsProbTest, FormulaMatchesMonteCarlo) {
  const auto [k, m, p] = GetParam();
  ReedSolomon rs(k, m);
  const double formula = p_ec_mds(k, m, p);
  const double mc = monte_carlo_success(rs, p, 200000,
                                        k * 7919 + m * 104729 + 13);
  EXPECT_NEAR(mc, formula, 0.01) << "k=" << k << " m=" << m << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MdsProbTest,
    ::testing::Values(ProbCase{32, 8, 0.01}, ProbCase{32, 8, 0.05},
                      ProbCase{32, 8, 0.2}, ProbCase{8, 4, 0.1},
                      ProbCase{16, 2, 0.05}, ProbCase{4, 2, 0.3}));

class XorProbTest : public ::testing::TestWithParam<ProbCase> {};

TEST_P(XorProbTest, FormulaMatchesMonteCarlo) {
  const auto [k, m, p] = GetParam();
  XorCode xc(k, m);
  const double formula = p_ec_xor(k, m, p);
  const double mc = monte_carlo_success(xc, p, 200000,
                                        k * 7919 + m * 104729 + 29);
  // The closed form assumes each group independently loses <= 1 of its n
  // blocks; our can_recover additionally demands the parity be present
  // when a data block is missing -- identical condition, so they agree.
  EXPECT_NEAR(mc, formula, 0.01) << "k=" << k << " m=" << m << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, XorProbTest,
    ::testing::Values(ProbCase{32, 8, 0.01}, ProbCase{32, 8, 0.05},
                      ProbCase{8, 4, 0.1}, ProbCase{16, 8, 0.02},
                      ProbCase{8, 8, 0.3}));

TEST(ProbabilityTest, MdsStrongerThanXor) {
  // Paper Fig 11 narrative: "XOR falls back to SR at ~1e-3 drop rate,
  // while MDS remains robust beyond 1e-2" — at equal (k, m) the MDS
  // success probability dominates the XOR one.
  for (double p : {1e-4, 1e-3, 1e-2, 5e-2}) {
    EXPECT_GE(p_ec_mds(32, 8, p) + 1e-15, p_ec_xor(32, 8, p)) << p;
  }
}

TEST(ProbabilityTest, MonotoneInDropRate) {
  double prev_mds = 1.0, prev_xor = 1.0;
  for (double p = 1e-5; p < 0.5; p *= 3.0) {
    const double cur_mds = p_ec_mds(32, 8, p);
    const double cur_xor = p_ec_xor(32, 8, p);
    EXPECT_LE(cur_mds, prev_mds + 1e-12);
    EXPECT_LE(cur_xor, prev_xor + 1e-12);
    prev_mds = cur_mds;
    prev_xor = cur_xor;
  }
}

TEST(ProbabilityTest, MoreParityHelps) {
  for (double p : {1e-3, 1e-2, 0.1}) {
    EXPECT_GE(p_ec_mds(32, 8, p), p_ec_mds(32, 4, p) - 1e-12);
    EXPECT_GE(p_ec_mds(32, 16, p), p_ec_mds(32, 8, p) - 1e-12);
  }
}

TEST(ProbabilityTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(p_ec_mds(32, 8, 0.0), 1.0);
  EXPECT_NEAR(p_ec_mds(32, 8, 1.0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(p_ec_xor(32, 8, 0.0), 1.0);
  EXPECT_NEAR(p_ec_xor(32, 8, 1.0), 0.0, 1e-12);
}

TEST(ProbabilityTest, BinomialHelpers) {
  // C(5,2) = 10.
  EXPECT_NEAR(std::exp(log_binomial_coefficient(5, 2)), 10.0, 1e-9);
  // PMF sums to 1.
  double total = 0.0;
  for (std::uint64_t x = 0; x <= 20; ++x) total += binomial_pmf(20, x, 0.3);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // CDF at n is 1.
  EXPECT_NEAR(binomial_cdf(100, 100, 0.77), 1.0, 1e-12);
  // Large-n stability (the regime the models hit).
  const double v = binomial_pmf(1u << 20, 10, 1e-5);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1.0);
}

TEST(ProbabilityTest, ChunkDropProbability) {
  // Fig 15: P_chunk = 1 - (1-p)^N.
  EXPECT_NEAR(chunk_drop_probability(1e-5, 1), 1e-5, 1e-9);
  EXPECT_NEAR(chunk_drop_probability(1e-5, 16), 1.6e-4, 2e-6);
  EXPECT_NEAR(chunk_drop_probability(1e-5, 64), 6.4e-4, 1e-5);
  EXPECT_NEAR(chunk_drop_probability(0.5, 2), 0.75, 1e-12);
}

}  // namespace
}  // namespace sdr::ec
