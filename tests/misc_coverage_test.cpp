// Final coverage batch: streaming sends with user immediates, multi-QP
// contexts, RC two-sided sends, UD receive queues, model helpers and
// histogram weighting not exercised elsewhere.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/histogram.hpp"
#include "model/ec_model.hpp"
#include "model/link_params.hpp"
#include "sdr/sdr.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  }
  return v;
}

// ---------------------------------------------------------------------------
// SDR streaming + user immediate
// ---------------------------------------------------------------------------

class StreamImmFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = 100e9;
    cfg.distance_km = 10.0;
    cfg.seed = 3;
    pair_ = verbs::make_connected_pair(sim_, cfg, 0.0, 0.0);
    ctx_a_ = std::make_unique<core::Context>(*pair_.a, core::DevAttr{});
    ctx_b_ = std::make_unique<core::Context>(*pair_.b, core::DevAttr{});
    core::QpAttr attr;
    attr.mtu = 1024;
    attr.chunk_size = 1024;
    attr.max_msg_size = 32 * 1024;
    attr.max_inflight = 8;
    qp_a_ = ctx_a_->create_qp(attr);
    qp_b_ = ctx_b_->create_qp(attr);
    qp_a_->connect(qp_b_->info());
    qp_b_->connect(qp_a_->info());
  }

  void TearDown() override {
    ctx_a_.reset();
    ctx_b_.reset();
  }

  sim::Simulator sim_;
  verbs::NicPair pair_;
  std::unique_ptr<core::Context> ctx_a_, ctx_b_;
  core::Qp* qp_a_{nullptr};
  core::Qp* qp_b_{nullptr};
};

TEST_F(StreamImmFixture, StreamingSendCarriesUserImmediate) {
  // The user immediate is sampled across STREAMED chunks, including
  // out-of-order offsets, and reassembles once >= 8 packets arrived.
  const std::size_t len = 16 * 1024;  // 16 packets
  const auto src = pattern(len, 1);
  std::vector<std::uint8_t> dst(len, 0);
  const auto* mr = ctx_b_->mr_reg(dst.data(), dst.size());
  core::RecvHandle* rh = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst.data(), len, mr, &rh).is_ok());

  core::SendHandle* sh = nullptr;
  ASSERT_TRUE(qp_a_->send_stream_start(0x1234ABCD, true, &sh).is_ok());
  // Second half first, then the first half.
  ASSERT_TRUE(
      qp_a_->send_stream_continue(sh, src.data() + len / 2, len / 2, len / 2)
          .is_ok());
  ASSERT_TRUE(qp_a_->send_stream_continue(sh, src.data(), 0, len / 2).is_ok());
  ASSERT_TRUE(qp_a_->send_stream_end(sh).is_ok());
  sim_.run();

  EXPECT_TRUE(qp_b_->recv_done(rh));
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), len), 0);
  std::uint32_t imm = 0;
  ASSERT_TRUE(qp_b_->recv_imm_get(rh, &imm).is_ok());
  EXPECT_EQ(imm, 0x1234ABCDu);
  EXPECT_TRUE(qp_a_->send_poll(sh).is_ok());
}

TEST_F(StreamImmFixture, MultipleQpsPerContextAreIndependent) {
  core::QpAttr attr;
  attr.mtu = 1024;
  attr.chunk_size = 1024;
  attr.max_msg_size = 8 * 1024;
  attr.max_inflight = 4;
  core::Qp* qa2 = ctx_a_->create_qp(attr);
  core::Qp* qb2 = ctx_b_->create_qp(attr);
  ASSERT_NE(qa2, nullptr);
  qa2->connect(qb2->info());
  qb2->connect(qa2->info());

  const auto src1 = pattern(4096, 5);
  const auto src2 = pattern(4096, 6);
  std::vector<std::uint8_t> dst1(4096, 0), dst2(4096, 0);
  const auto* mr1 = ctx_b_->mr_reg(dst1.data(), dst1.size());
  const auto* mr2 = ctx_b_->mr_reg(dst2.data(), dst2.size());
  core::RecvHandle *rh1 = nullptr, *rh2 = nullptr;
  ASSERT_TRUE(qp_b_->recv_post(dst1.data(), 4096, mr1, &rh1).is_ok());
  ASSERT_TRUE(qb2->recv_post(dst2.data(), 4096, mr2, &rh2).is_ok());
  core::SendHandle *sh1 = nullptr, *sh2 = nullptr;
  ASSERT_TRUE(qp_a_->send_post(src1.data(), 4096, 0, false, &sh1).is_ok());
  ASSERT_TRUE(qa2->send_post(src2.data(), 4096, 0, false, &sh2).is_ok());
  sim_.run();
  EXPECT_EQ(std::memcmp(dst1.data(), src1.data(), 4096), 0);
  EXPECT_EQ(std::memcmp(dst2.data(), src2.data(), 4096), 0);
}

// ---------------------------------------------------------------------------
// Verbs odds and ends
// ---------------------------------------------------------------------------

TEST(VerbsCoverageTest, RcTwoSidedSendConsumesPostedReceive) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 9;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
  verbs::CompletionQueue tx_cq, rx_cq;
  verbs::QpConfig qcfg;
  qcfg.type = verbs::QpType::kRC;
  qcfg.mtu = 1024;
  qcfg.send_cq = &tx_cq;
  qcfg.recv_cq = &rx_cq;
  verbs::Qp* tx = pair.a->create_qp(qcfg);
  verbs::Qp* rx = pair.b->create_qp(qcfg);
  tx->connect(pair.b->id(), rx->num());
  rx->connect(pair.a->id(), tx->num());

  std::vector<std::uint8_t> recv_buf(512, 0);
  verbs::RecvWr rwr;
  rwr.wr_id = 42;
  rwr.addr = recv_buf.data();
  rwr.length = recv_buf.size();
  rx->post_recv(rwr);

  const auto msg = pattern(300, 7);
  verbs::SendWr swr;
  swr.wr_id = 1;
  swr.local_addr = msg.data();
  swr.length = msg.size();
  swr.with_imm = true;
  swr.imm = 777;
  ASSERT_TRUE(tx->post_send(swr).is_ok());
  sim.run();

  ASSERT_EQ(rx_cq.size(), 1u);
  const auto cqe = rx_cq.poll_one();
  EXPECT_EQ(cqe->wr_id, 42u);
  EXPECT_EQ(cqe->imm, 777u);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), msg.size()), 0);
  // RC send completes after the ACK.
  ASSERT_EQ(tx_cq.size(), 1u);
  EXPECT_EQ(tx_cq.poll_one()->status, verbs::WcStatus::kSuccess);
}

TEST(VerbsCoverageTest, UdReceiveQueueConsumedInOrder) {
  sim::Simulator sim;
  sim::Channel::Config cfg;
  cfg.bandwidth_bps = 100e9;
  cfg.distance_km = 10.0;
  cfg.seed = 11;
  verbs::NicPair pair = verbs::make_connected_pair(sim, cfg, 0.0, 0.0);
  verbs::CompletionQueue rx_cq;
  verbs::QpConfig qcfg;
  qcfg.type = verbs::QpType::kUD;
  qcfg.mtu = 1024;
  qcfg.recv_cq = &rx_cq;
  verbs::Qp* tx = pair.a->create_qp(qcfg);
  verbs::Qp* rx = pair.b->create_qp(qcfg);

  std::vector<std::vector<std::uint8_t>> bufs(3,
                                              std::vector<std::uint8_t>(64));
  for (std::size_t i = 0; i < 3; ++i) {
    verbs::RecvWr rwr;
    rwr.wr_id = 100 + i;
    rwr.addr = bufs[i].data();
    rwr.length = bufs[i].size();
    rx->post_recv(rwr);
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto msg = pattern(32, static_cast<std::uint8_t>(i));
    verbs::SendWr swr;
    swr.local_addr = msg.data();
    swr.length = msg.size();
    swr.with_imm = true;
    swr.imm = i;
    swr.dst_nic = pair.b->id();
    swr.dst_qp = rx->num();
    tx->post_send(swr);
  }
  sim.run();
  ASSERT_EQ(rx_cq.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const auto cqe = rx_cq.poll_one();
    EXPECT_EQ(cqe->wr_id, 100 + i) << "receives consumed in posting order";
    EXPECT_EQ(cqe->imm, i);
  }
}

// ---------------------------------------------------------------------------
// Model / histogram helpers
// ---------------------------------------------------------------------------

TEST(ModelCoverageTest, LinkParamsFromDistance) {
  const auto link = model::LinkParams::from_distance(400e9, 3750.0, 1e-5,
                                                     64 * 1024);
  EXPECT_NEAR(link.rtt_s, 0.0375, 1e-9);
  EXPECT_DOUBLE_EQ(link.bandwidth_bps, 400e9);
  EXPECT_DOUBLE_EQ(link.p_drop, 1e-5);
}

TEST(ModelCoverageTest, EcFallbackProbabilityGrowsWithSubmessages) {
  model::EcConfig config;
  const double p = 2e-2;
  double prev = 0.0;
  for (std::uint64_t L : {1ull, 4ull, 16ull, 64ull, 256ull}) {
    const double pf = model::ec_fallback_probability(config, p, L);
    EXPECT_GE(pf, prev - 1e-15);
    EXPECT_LE(pf, 1.0);
    prev = pf;
  }
}

TEST(HistogramCoverageTest, WeightedRecordingMatchesRepeated) {
  Histogram a(1e-6, 1e3), b(1e-6, 1e3);
  a.record_n(0.5, 100);
  a.record_n(2.0, 50);
  for (int i = 0; i < 100; ++i) b.record(0.5);
  for (int i = 0; i < 50; ++i) b.record(2.0);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.percentile(90), b.percentile(90));
  EXPECT_DOUBLE_EQ(a.stddev(), b.stddev());
}

}  // namespace
}  // namespace sdr
