// Exhaustive properties for the vectorized GF(256) kernel layer
// (src/ec/gf256_kernels.*): every compiled ISA tier must be byte-identical
// to the scalar reference for all 256 constants, across lengths that cover
// sub-vector tails and every head/tail misalignment, for mul_set, mul_acc,
// and the fused multi-row kernel. Plus unit tests for the pure SDR_EC_ISA
// resolution logic and the force/dispatch plumbing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "ec/gf256.hpp"
#include "ec/gf256_kernels.hpp"
#include "ec/reed_solomon.hpp"

namespace sdr::ec {
namespace {

constexpr GfIsa kAllIsas[] = {GfIsa::kScalar, GfIsa::kSsse3, GfIsa::kAvx2,
                              GfIsa::kGfni};

// Lengths chosen to hit: empty, single byte, sub-16 tails, exact 16/32/64
// lane counts, one-past, and a long run exercising main loop + tail.
constexpr std::size_t kLengths[] = {0,  1,  7,  15,  16,  17,  31, 32,
                                    33, 63, 64, 65, 127, 255, 1000};

/// Bytewise reference straight from the multiplication table.
void reference_mul(std::uint8_t* dst, const std::uint8_t* src,
                   std::uint8_t c, std::size_t n, bool accumulate) {
  const Gf256& gf = Gf256::instance();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t p = gf.mul(c, src[i]);
    dst[i] = accumulate ? static_cast<std::uint8_t>(dst[i] ^ p) : p;
  }
}

std::vector<const GfKernels*> compiled_tiers() {
  std::vector<const GfKernels*> tiers;
  for (GfIsa isa : kAllIsas) {
    const GfKernels* k = gf_kernels_for(isa);
    if (k != nullptr && isa_supported(isa)) tiers.push_back(k);
  }
  return tiers;
}

// Every supported tier, every constant, every tail length: mul_set and
// mul_acc match the table reference byte for byte.
TEST(Gf256Kernels, AllConstantsAllLengthsMatchReference) {
  Rng rng(2024);
  std::vector<std::uint8_t> src(1024), expect(1024), got(1024), base(1024);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : base) b = static_cast<std::uint8_t>(rng.next_below(256));

  for (const GfKernels* k : compiled_tiers()) {
    SCOPED_TRACE(isa_name(k->isa));
    for (unsigned c = 0; c < 256; ++c) {
      for (std::size_t n : kLengths) {
        // mul_set
        expect = base;
        got = base;
        reference_mul(expect.data(), src.data(),
                      static_cast<std::uint8_t>(c), n, false);
        k->mul_set(got.data(), src.data(), static_cast<std::uint8_t>(c), n);
        ASSERT_EQ(0, std::memcmp(expect.data(), got.data(), expect.size()))
            << "mul_set c=" << c << " n=" << n;
        // mul_acc
        expect = base;
        got = base;
        reference_mul(expect.data(), src.data(),
                      static_cast<std::uint8_t>(c), n, true);
        k->mul_acc(got.data(), src.data(), static_cast<std::uint8_t>(c), n);
        ASSERT_EQ(0, std::memcmp(expect.data(), got.data(), expect.size()))
            << "mul_acc c=" << c << " n=" << n;
      }
    }
  }
}

// Unaligned src and dst in every combination of offsets 0..15: the vector
// kernels use unaligned loads/stores plus scalar tails, so no alignment
// may change the result (or touch bytes outside [0, n)).
TEST(Gf256Kernels, UnalignedSrcDstOffsets) {
  Rng rng(7);
  constexpr std::size_t kPad = 64;
  constexpr std::size_t kN = 100;
  std::vector<std::uint8_t> src_buf(kPad + kN + kPad);
  std::vector<std::uint8_t> dst_buf(kPad + kN + kPad);
  std::vector<std::uint8_t> expect(kN);
  for (auto& b : src_buf) b = static_cast<std::uint8_t>(rng.next_below(256));

  for (const GfKernels* k : compiled_tiers()) {
    SCOPED_TRACE(isa_name(k->isa));
    for (std::size_t so = 0; so < 16; ++so) {
      for (std::size_t dof = 0; dof < 16; ++dof) {
        const std::uint8_t c = static_cast<std::uint8_t>(
            2 + rng.next_below(254));  // skip 0/1 fast paths
        for (auto& b : dst_buf) {
          b = static_cast<std::uint8_t>(rng.next_below(256));
        }
        const std::vector<std::uint8_t> dst_before = dst_buf;
        const std::uint8_t* src = src_buf.data() + so;
        std::uint8_t* dst = dst_buf.data() + dof;
        std::memcpy(expect.data(), dst, kN);
        reference_mul(expect.data(), src, c, kN, true);
        k->mul_acc(dst, src, c, kN);
        ASSERT_EQ(0, std::memcmp(expect.data(), dst, kN))
            << "so=" << so << " dof=" << dof;
        // Out-of-range bytes untouched.
        ASSERT_EQ(0, std::memcmp(dst_buf.data(), dst_before.data(), dof));
        ASSERT_EQ(0, std::memcmp(dst_buf.data() + dof + kN,
                                 dst_before.data() + dof + kN,
                                 dst_buf.size() - dof - kN));
      }
    }
  }
}

// The fused multi-row kernel equals row-at-a-time mul_acc for every row
// count around the register-group size, including zero coefficients
// (skipped rows) interleaved with nonzero ones.
TEST(Gf256Kernels, MulAccMultiMatchesRowAtATime) {
  Rng rng(99);
  constexpr std::size_t kMaxRows = 11;
  for (const GfKernels* k : compiled_tiers()) {
    SCOPED_TRACE(isa_name(k->isa));
    for (std::size_t rows = 1; rows <= kMaxRows; ++rows) {
      for (std::size_t n : {std::size_t{1}, std::size_t{31}, std::size_t{64},
                            std::size_t{100}, std::size_t{1000}}) {
        std::vector<std::uint8_t> src(n);
        for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
        std::vector<std::uint8_t> coeffs(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          // Mix zeros (skip), ones, and general constants.
          const unsigned roll = rng.next_below(4);
          coeffs[r] = roll == 0 ? 0
                                : static_cast<std::uint8_t>(
                                      rng.next_below(256));
        }
        std::vector<std::vector<std::uint8_t>> expect(rows),
            got(rows);
        std::vector<std::uint8_t*> got_ptrs(rows);
        for (std::size_t r = 0; r < rows; ++r) {
          expect[r].resize(n);
          for (auto& b : expect[r]) {
            b = static_cast<std::uint8_t>(rng.next_below(256));
          }
          got[r] = expect[r];
          got_ptrs[r] = got[r].data();
          reference_mul(expect[r].data(), src.data(), coeffs[r], n, true);
        }
        k->mul_acc_multi(got_ptrs.data(), coeffs.data(), rows, src.data(), n);
        for (std::size_t r = 0; r < rows; ++r) {
          ASSERT_EQ(expect[r], got[r])
              << "rows=" << rows << " n=" << n << " r=" << r;
        }
      }
    }
  }
}

// The high-level Gf256 entry points route through the dispatcher and must
// agree with the reference for the full constant range too (c==0 / c==1
// take fast paths there).
TEST(Gf256Kernels, Gf256WrappersMatchReference) {
  const Gf256& gf = Gf256::instance();
  Rng rng(5);
  std::vector<std::uint8_t> src(257), expect(257), got(257);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (unsigned c = 0; c < 256; ++c) {
    for (auto& b : got) b = static_cast<std::uint8_t>(rng.next_below(256));
    expect = got;
    reference_mul(expect.data(), src.data(), static_cast<std::uint8_t>(c),
                  src.size(), true);
    gf.mul_acc(got.data(), src.data(), static_cast<std::uint8_t>(c),
               src.size());
    ASSERT_EQ(expect, got) << "c=" << c;
  }
}

// ReedSolomon::encode_with produces identical parity under every compiled
// tier — the bench lanes and the sdrcheck oracle rely on this exactly.
TEST(Gf256Kernels, ReedSolomonEncodeIdenticalAcrossIsas) {
  constexpr std::size_t kK = 10, kM = 4, kLen = 4099;  // non-multiple of 4K
  ReedSolomon rs(kK, kM);
  Rng rng(42);
  std::vector<std::uint8_t> data(kK * kLen);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<const std::uint8_t*> data_ptrs(kK);
  for (std::size_t i = 0; i < kK; ++i) data_ptrs[i] = &data[i * kLen];

  const GfKernels* scalar = gf_kernels_for(GfIsa::kScalar);
  ASSERT_NE(scalar, nullptr);
  std::vector<std::uint8_t> ref_parity(kM * kLen, 0xAA);
  std::vector<std::uint8_t*> ref_ptrs(kM);
  for (std::size_t i = 0; i < kM; ++i) ref_ptrs[i] = &ref_parity[i * kLen];
  rs.encode_with(*scalar,
                 std::span<const std::uint8_t* const>(data_ptrs),
                 std::span<std::uint8_t* const>(ref_ptrs), kLen);

  for (const GfKernels* k : compiled_tiers()) {
    std::vector<std::uint8_t> parity(kM * kLen, 0x55);
    std::vector<std::uint8_t*> parity_ptrs(kM);
    for (std::size_t i = 0; i < kM; ++i) parity_ptrs[i] = &parity[i * kLen];
    rs.encode_with(*k, std::span<const std::uint8_t* const>(data_ptrs),
                   std::span<std::uint8_t* const>(parity_ptrs), kLen);
    EXPECT_EQ(ref_parity, parity) << isa_name(k->isa);
  }
}

// ---------------------------------------------------------------------------
// Dispatch resolution (pure logic, no env/CPUID games needed)
// ---------------------------------------------------------------------------

common::CpuFeatures features(bool ssse3, bool avx2, bool avx512bw,
                             bool gfni) {
  common::CpuFeatures f;
  f.ssse3 = ssse3;
  f.avx2 = avx2;
  f.avx512bw = avx512bw;
  f.gfni = gfni;
  return f;
}

TEST(GfIsaResolve, AutoPicksBestSupported) {
  for (const char* env : {static_cast<const char*>(nullptr), "", "auto"}) {
    EXPECT_EQ(resolve_isa(env, features(true, true, true, true)).isa,
              GfIsa::kGfni);
    EXPECT_EQ(resolve_isa(env, features(true, true, false, true)).isa,
              GfIsa::kAvx2);  // gfni tier needs avx512bw too
    EXPECT_EQ(resolve_isa(env, features(true, true, false, false)).isa,
              GfIsa::kAvx2);
    EXPECT_EQ(resolve_isa(env, features(true, false, false, false)).isa,
              GfIsa::kSsse3);
    EXPECT_EQ(resolve_isa(env, features(false, false, false, false)).isa,
              GfIsa::kScalar);
    EXPECT_FALSE(resolve_isa(env, features(true, true, true, true)).fell_back);
  }
}

TEST(GfIsaResolve, ExplicitSupportedRequestHonored) {
  const auto all = features(true, true, true, true);
  EXPECT_EQ(resolve_isa("scalar", all).isa, GfIsa::kScalar);
  EXPECT_EQ(resolve_isa("ssse3", all).isa, GfIsa::kSsse3);
  EXPECT_EQ(resolve_isa("avx2", all).isa, GfIsa::kAvx2);
  EXPECT_EQ(resolve_isa("gfni", all).isa, GfIsa::kGfni);
  EXPECT_FALSE(resolve_isa("avx2", all).fell_back);
}

TEST(GfIsaResolve, UnsupportedRequestFallsBackToScalarNotLowerVector) {
  // avx2 requested on an ssse3-only host: scalar, never silently ssse3.
  const IsaChoice c = resolve_isa("avx2", features(true, false, false, false));
  EXPECT_EQ(c.isa, GfIsa::kScalar);
  EXPECT_TRUE(c.fell_back);
  EXPECT_FALSE(c.message.empty());

  const IsaChoice g = resolve_isa("gfni", features(true, true, false, true));
  EXPECT_EQ(g.isa, GfIsa::kScalar);  // gfni without avx512bw is unusable
  EXPECT_TRUE(g.fell_back);
}

TEST(GfIsaResolve, UnknownStringFallsBackToAuto) {
  const IsaChoice c = resolve_isa("bogus", features(true, true, false, false));
  EXPECT_EQ(c.isa, GfIsa::kAvx2);
  EXPECT_TRUE(c.fell_back);
  EXPECT_NE(c.message.find("not recognized"), std::string::npos);
}

TEST(GfIsaDispatch, ScalarTierAlwaysPresent) {
  EXPECT_NE(gf_kernels_for(GfIsa::kScalar), nullptr);
  EXPECT_TRUE(isa_supported(GfIsa::kScalar));
  EXPECT_EQ(gf_kernels_for(GfIsa::kScalar)->isa, GfIsa::kScalar);
}

TEST(GfIsaDispatch, ForceRoundTrip) {
  const GfIsa original = active_isa();
  const GfIsa prev = force_gf_isa(GfIsa::kScalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(active_isa(), GfIsa::kScalar);
  EXPECT_EQ(gf_kernels().isa, GfIsa::kScalar);
  force_gf_isa(original);
  EXPECT_EQ(active_isa(), original);
}

TEST(GfIsaDispatch, BestSupportedMatchesHostFeatures) {
  // Whatever the host is, the dispatched tier must report itself supported
  // and be one of the four named tiers.
  const GfIsa best = best_supported_isa();
  EXPECT_TRUE(isa_supported(best));
  EXPECT_NE(gf_kernels_for(best), nullptr);
  EXPECT_STRNE(isa_name(best), "unknown");
}

}  // namespace
}  // namespace sdr::ec
