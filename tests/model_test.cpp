// Validation of the completion-time models (paper §4.2, §5.1.1): the
// stochastic simulation must match the analytical expectation within 5%,
// the fast thinning sampler must match the direct O(M) reference, and the
// models must reproduce the qualitative regimes of Figs 3/10/12.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "model/allreduce_model.hpp"
#include "model/ec_model.hpp"
#include "model/protocols.hpp"
#include "model/sr_model.hpp"

namespace sdr::model {
namespace {

LinkParams paper_link(double p_drop = 1e-5) {
  LinkParams link;
  link.bandwidth_bps = 400e9;
  link.rtt_s = 0.025;  // 3750 km
  link.p_drop = p_drop;
  link.chunk_bytes = 64 * 1024;
  return link;
}

// ---------------------------------------------------------------------------
// SR model
// ---------------------------------------------------------------------------

TEST(SrModelTest, LosslessIsInjectionPlusRtt) {
  const LinkParams link = paper_link(0.0);
  const std::uint64_t chunks = 1000;
  const double expected = chunks * link.t_inj() + link.rtt_s;
  EXPECT_NEAR(sr_expected_completion_s(link, chunks), expected, 1e-12);
  Rng rng(1);
  EXPECT_NEAR(sr_sample_completion_s(rng, link, chunks), expected, 1e-12);
}

TEST(SrModelTest, ZeroChunksIsRtt) {
  const LinkParams link = paper_link();
  EXPECT_DOUBLE_EQ(sr_expected_completion_s(link, 0), link.rtt_s);
}

struct SrCase {
  std::uint64_t chunks;
  double p_drop;
  double rto_mult;
};

class SrValidationTest : public ::testing::TestWithParam<SrCase> {};

TEST_P(SrValidationTest, StochasticMatchesAnalyticalWithin5Percent) {
  // Paper §5.1.1: "The mean of 1000 samples from the stochastic model
  // matches the analytical solution within 5% accuracy."
  const auto [chunks, p_drop, rto_mult] = GetParam();
  const LinkParams link = paper_link(p_drop);
  const SrConfig config{rto_mult};

  const double analytical = sr_expected_completion_s(link, chunks, config);
  Rng rng(chunks * 131 + static_cast<std::uint64_t>(rto_mult));
  RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add(sr_sample_completion_s(rng, link, chunks, config));
  }
  EXPECT_NEAR(stats.mean(), analytical, 0.05 * analytical)
      << "chunks=" << chunks << " p=" << p_drop << " rto=" << rto_mult;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SrValidationTest,
    ::testing::Values(SrCase{16, 1e-3, 3.0}, SrCase{2048, 1e-5, 3.0},
                      SrCase{2048, 1e-3, 3.0}, SrCase{2048, 1e-2, 1.0},
                      SrCase{65536, 1e-4, 3.0}, SrCase{512, 0.05, 3.0},
                      SrCase{1u << 17, 1e-5, 1.0}, SrCase{64, 0.2, 3.0}));

TEST(SrModelTest, ThinningSamplerMatchesDirectReference) {
  const LinkParams link = paper_link(5e-3);
  const std::uint64_t chunks = 4096;
  RunningStats fast, direct;
  Rng rng_fast(7), rng_direct(7919);
  for (int i = 0; i < 3000; ++i) {
    fast.add(sr_sample_completion_s(rng_fast, link, chunks));
    direct.add(sr_sample_completion_direct_s(rng_direct, link, chunks));
  }
  EXPECT_NEAR(fast.mean(), direct.mean(), 0.03 * direct.mean());
  EXPECT_NEAR(fast.stddev(), direct.stddev(), 0.25 * direct.stddev() + 1e-6);
}

TEST(SrModelTest, PeakSlowdownNearInverseDropRate) {
  // Fig 3a: SR slowdown peaks when the message is large enough that a drop
  // is likely (M ~ 1/p) but small enough that RTO cannot be hidden. The
  // paper's Fig 3 operates at packet (MTU) granularity.
  LinkParams link = paper_link(1e-5);
  link.chunk_bytes = 4096;
  // Slowdown at M = 1/p = 1e5 chunks vs a small message (drops unlikely)
  // and a huge message (retransmissions hidden by injection).
  auto slowdown = [&](std::uint64_t chunks) {
    return sr_expected_completion_s(link, chunks) /
           ideal_completion_s(link, chunks);
  };
  const double at_peak = slowdown(100000);
  const double tiny = slowdown(64);
  const double huge = slowdown(32u << 20);  // 128 GiB: injection-dominated
  EXPECT_GT(at_peak, 1.5);
  EXPECT_LT(tiny, 1.05);
  EXPECT_LT(huge, at_peak * 0.7);
}

TEST(SrModelTest, NackBeatsRtoWhenDropsHurt) {
  // Fig 10: reducing drop detection to 1 RTT improves SR by up to ~4x.
  const LinkParams link = paper_link(1e-4);
  const std::uint64_t chunks = 2048;  // 128 MiB / 64 KiB
  const double rto = sr_expected_completion_s(link, chunks, SrConfig{3.0});
  const double nack = sr_expected_completion_s(link, chunks, SrConfig{1.0});
  EXPECT_LT(nack, rto);
}

TEST(SrModelTest, MonotoneInDropRate) {
  const std::uint64_t chunks = 2048;
  double prev = 0.0;
  for (double p = 1e-7; p < 0.3; p *= 10.0) {
    const double t = sr_expected_completion_s(paper_link(p), chunks);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// ---------------------------------------------------------------------------
// SR analytical CDF / quantiles
// ---------------------------------------------------------------------------

TEST(SrQuantileTest, CdfIsMonotoneAndBounded) {
  const LinkParams link = paper_link(1e-3);
  const std::uint64_t chunks = 2048;
  double prev = 0.0;
  const double lo = chunks * link.t_inj() + link.rtt_s;
  for (double t = lo * 0.5; t < lo + 1.0; t += 0.01) {
    const double cdf = sr_completion_cdf(link, chunks, SrConfig{3.0}, t);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(sr_completion_cdf(link, chunks, SrConfig{3.0}, lo * 0.9),
                   0.0);
}

TEST(SrQuantileTest, QuantileInvertsCdf) {
  const LinkParams link = paper_link(1e-3);
  const std::uint64_t chunks = 2048;
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double t = sr_completion_quantile(link, chunks, SrConfig{3.0}, q);
    const double cdf = sr_completion_cdf(link, chunks, SrConfig{3.0}, t);
    // The completion time has atoms (discrete retransmission counts), so
    // the CDF at the quantile may overshoot q but must never undershoot.
    EXPECT_GE(cdf, q - 1e-9) << "q=" << q;
    EXPECT_LE(cdf, q + 0.05) << "q=" << q;
  }
}

TEST(SrQuantileTest, MatchesSampledPercentiles) {
  const LinkParams link = paper_link(1e-3);
  const std::uint64_t chunks = 2048;
  const auto dist =
      sample_distribution(Scheme::kSrRto, link, chunks, 20000, 99);
  const double p50 = sr_completion_quantile(link, chunks, SrConfig{3.0}, 0.5);
  const double p999 =
      sr_completion_quantile(link, chunks, SrConfig{3.0}, 0.999);
  EXPECT_NEAR(dist.p50, p50, p50 * 0.05);
  EXPECT_NEAR(dist.p999, p999, p999 * 0.10);
}

TEST(SrQuantileTest, LosslessQuantileIsDeterministic) {
  const LinkParams link = paper_link(0.0);
  const double t = sr_completion_quantile(link, 1000, SrConfig{3.0}, 0.999);
  EXPECT_NEAR(t, 1000 * link.t_inj() + link.rtt_s, 1e-12);
}

// ---------------------------------------------------------------------------
// EC model
// ---------------------------------------------------------------------------

TEST(EcModelTest, NoDropsCostsParityBandwidthOnly) {
  const LinkParams link = paper_link(0.0);
  const std::uint64_t chunks = 2048;
  EcConfig config;  // (32, 8): 25% parity overhead
  const double t = ec_expected_completion_s(link, chunks, config);
  const double expected = (chunks + chunks / 4) * link.t_inj() + link.rtt_s;
  EXPECT_NEAR(t, expected, expected * 1e-9);
}

TEST(EcModelTest, StochasticMatchesExpectationLowFallback) {
  // In the regime where fallback is rare the expectation terms must agree
  // with sampling (within 5%, as for SR).
  const LinkParams link = paper_link(1e-4);
  const std::uint64_t chunks = 2048;
  EcConfig config;
  const double analytical = ec_expected_completion_s(link, chunks, config);
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 4000; ++i) {
    stats.add(ec_sample_completion_s(rng, link, chunks, config));
  }
  EXPECT_NEAR(stats.mean(), analytical, 0.05 * analytical);
}

TEST(EcModelTest, FallbackProbabilityMatchesFormula) {
  EcConfig config;
  const double p = 0.05;
  const std::uint64_t L = 64;
  const double p_ok = ec_submessage_success(config, p);
  EXPECT_NEAR(ec_fallback_probability(config, p, L),
              1.0 - std::pow(p_ok, static_cast<double>(L)), 1e-12);
}

TEST(EcModelTest, EcBeatsSrInTheRedRegion) {
  // Fig 9 red region: 128 MiB at p in [1e-4, 1e-2] on the 400G/25ms link.
  const std::uint64_t chunks = 2048;  // 128 MiB
  for (double p : {1e-4, 1e-3}) {
    const LinkParams link = paper_link(p);
    const double sr = sr_expected_completion_s(link, chunks, SrConfig{3.0});
    const double ec = ec_expected_completion_s(link, chunks, EcConfig{});
    EXPECT_LT(ec, sr) << "p=" << p;
  }
}

TEST(EcModelTest, SrWinsForHugeMessagesAtLowDrop) {
  // Fig 3a/§5.2.2: above the BDP the injection pipeline hides SR
  // retransmissions while EC pays its parity bandwidth.
  const LinkParams link = paper_link(1e-6);
  const std::uint64_t chunks = 2u << 20;  // 128 GiB at 64 KiB chunks
  const double sr = sr_expected_completion_s(link, chunks, SrConfig{3.0});
  const double ec = ec_expected_completion_s(link, chunks, EcConfig{});
  EXPECT_LT(sr, ec);
}

TEST(EcModelTest, XorWeakerThanMdsAtHighDrop) {
  const LinkParams link = paper_link(5e-3);
  const std::uint64_t chunks = 2048;
  EcConfig mds;
  mds.kind = EcCodeKind::kMds;
  EcConfig xorc;
  xorc.kind = EcCodeKind::kXor;
  EXPECT_LE(ec_expected_completion_s(link, chunks, mds),
            ec_expected_completion_s(link, chunks, xorc));
}

TEST(EcModelTest, WireChunksAccounting) {
  EcConfig config;  // k=32, m=8 -> R=4
  EXPECT_EQ(ec_wire_chunks(config, 2048), 2048u + 512u);
  EXPECT_EQ(ec_wire_chunks(config, 1), 2u);  // ceil(1/4) = 1 parity chunk
}

// ---------------------------------------------------------------------------
// EC analytical CDF / quantiles
// ---------------------------------------------------------------------------

TEST(EcQuantileTest, CleanRegimeIsAnAtom) {
  // At negligible drop the EC completion is deterministic: every quantile
  // equals injection(data+parity) + RTT.
  const LinkParams link = paper_link(1e-9);
  const std::uint64_t chunks = 2048;
  EcConfig config;
  const double atom =
      static_cast<double>(ec_wire_chunks(config, chunks)) * link.t_inj() +
      link.rtt_s;
  for (double q : {0.1, 0.5, 0.999}) {
    EXPECT_NEAR(ec_completion_quantile(link, chunks, config, q), atom,
                atom * 1e-6)
        << q;
  }
}

TEST(EcQuantileTest, CdfMonotoneAndMatchesFallbackMass) {
  const LinkParams link = paper_link(5e-3);
  const std::uint64_t chunks = 2048;
  EcConfig config;
  const double base =
      static_cast<double>(ec_wire_chunks(config, chunks)) * link.t_inj();
  const double atom_cdf =
      ec_completion_cdf(link, chunks, config, base + link.rtt_s);
  // Right at the atom the CDF equals the no-fallback probability.
  EXPECT_NEAR(atom_cdf, 1.0 - ec_fallback_probability(config, link.p_drop,
                                                      chunks / config.k),
              1e-9);
  double prev = 0.0;
  for (double t = base; t < base + 1.0; t += 0.005) {
    const double cdf = ec_completion_cdf(link, chunks, config, t);
    EXPECT_GE(cdf, prev - 1e-12);
    prev = cdf;
  }
}

TEST(EcQuantileTest, MatchesSampledPercentiles) {
  const LinkParams link = paper_link(8e-3);  // fallback-prone regime
  const std::uint64_t chunks = 2048;
  EcConfig config;
  const auto dist =
      sample_distribution(Scheme::kEcMds, link, chunks, 20000, 77);
  const double p50 = ec_completion_quantile(link, chunks, config, 0.5);
  const double p999 = ec_completion_quantile(link, chunks, config, 0.999);
  EXPECT_NEAR(dist.p50, p50, p50 * 0.05);
  EXPECT_NEAR(dist.p999, p999, p999 * 0.15);
}

TEST(EcQuantileTest, UnifiedDispatcherAgrees) {
  const LinkParams link = paper_link(1e-3);
  const std::uint64_t chunks = 1024;
  EXPECT_DOUBLE_EQ(
      quantile_completion_s(Scheme::kSrRto, link, chunks, 0.999),
      sr_completion_quantile(link, chunks, SrConfig{3.0}, 0.999));
  EXPECT_DOUBLE_EQ(
      quantile_completion_s(Scheme::kEcMds, link, chunks, 0.999),
      ec_completion_quantile(link, chunks, EcConfig{}, 0.999));
  EXPECT_DOUBLE_EQ(quantile_completion_s(Scheme::kIdeal, link, chunks, 0.999),
                   ideal_completion_s(link, chunks));
}

// ---------------------------------------------------------------------------
// Scheme dispatcher
// ---------------------------------------------------------------------------

TEST(ProtocolsTest, SchemeNamesAndDispatch) {
  EXPECT_EQ(scheme_name(Scheme::kSrRto), "SR RTO");
  EXPECT_EQ(scheme_name(Scheme::kEcMds), "EC MDS");
  const LinkParams link = paper_link(1e-4);
  // Ideal <= every scheme.
  const double ideal = expected_completion_s(Scheme::kIdeal, link, 2048);
  for (Scheme s : {Scheme::kSrRto, Scheme::kSrNack, Scheme::kEcMds,
                   Scheme::kEcXor}) {
    EXPECT_GE(expected_completion_s(s, link, 2048), ideal * 0.999);
  }
}

TEST(ProtocolsTest, DistributionSummaryIsDeterministicPerSeed) {
  const LinkParams link = paper_link(1e-3);
  const auto a = sample_distribution(Scheme::kSrRto, link, 2048, 500, 42);
  const auto b = sample_distribution(Scheme::kSrRto, link, 2048, 500, 42);
  const auto c = sample_distribution(Scheme::kSrRto, link, 2048, 500, 43);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p999, b.p999);
  EXPECT_NE(a.mean, c.mean);
  EXPECT_GE(a.p999, a.p50);
  EXPECT_GE(a.p50, 0.0);
}

TEST(ProtocolsTest, TailDominatesMeanUnderLoss) {
  const LinkParams link = paper_link(1e-4);
  const auto d = sample_distribution(Scheme::kSrRto, link, 2048, 4000, 7);
  EXPECT_GT(d.p999, d.mean);
}

// ---------------------------------------------------------------------------
// Allreduce model (Appendix C / Fig 13)
// ---------------------------------------------------------------------------

TEST(AllreduceModelTest, LowerBoundHolds) {
  AllreduceParams params;
  params.datacenters = 4;
  params.buffer_bytes = 128ull << 20;
  params.link = paper_link(1e-4);
  params.scheme = Scheme::kSrRto;
  const double bound = allreduce_expected_lower_bound_s(params);
  const auto dist = allreduce_distribution(params, 300, 11);
  EXPECT_GE(dist.mean, bound * 0.95)
      << "sampled mean must respect the Appendix C lower bound";
}

TEST(AllreduceModelTest, CostScalesWithStages) {
  // (2N-2) stages: the lossless bound grows linearly in N for fixed
  // segment size (buffer scaled with N).
  AllreduceParams base;
  base.link = paper_link(0.0);
  base.scheme = Scheme::kIdeal;
  base.datacenters = 4;
  base.buffer_bytes = 4ull << 20;
  AllreduceParams big = base;
  big.datacenters = 8;
  big.buffer_bytes = 8ull << 20;  // same segment size
  const double t4 = allreduce_expected_lower_bound_s(base);
  const double t8 = allreduce_expected_lower_bound_s(big);
  EXPECT_NEAR(t8 / t4, 14.0 / 6.0, 0.01);  // (2*8-2)/(2*4-2)
}

TEST(AllreduceModelTest, EcBeatsSrAtTailUnderLoss) {
  // Fig 13: EC yields 3-6x p99.9 speedups over SR RTO in the lossy regime.
  AllreduceParams params;
  params.datacenters = 4;
  params.buffer_bytes = 128ull << 20;
  params.link = paper_link(1e-3);
  params.scheme = Scheme::kSrRto;
  const auto sr = allreduce_distribution(params, 400, 3);
  params.scheme = Scheme::kEcMds;
  const auto ec = allreduce_distribution(params, 400, 3);
  EXPECT_GT(sr.p999 / ec.p999, 1.5);
}

TEST(TreeAllreduceModelTest, LowerBoundHolds) {
  AllreduceParams params;
  params.datacenters = 8;
  params.buffer_bytes = 64ull << 20;
  params.link = paper_link(1e-4);
  params.scheme = Scheme::kSrRto;
  const double bound = tree_allreduce_expected_lower_bound_s(params);
  const auto dist = tree_allreduce_distribution(params, 300, 13);
  EXPECT_GE(dist.mean, bound * 0.95);
}

TEST(TreeAllreduceModelTest, RoundCountIsTwiceCeilLog2) {
  // Lossless + ideal scheme: completion = 2*ceil(log2 N) * (full-buffer
  // injection + RTT).
  AllreduceParams params;
  params.datacenters = 8;
  params.buffer_bytes = 16ull << 20;
  params.link = paper_link(0.0);
  params.scheme = Scheme::kIdeal;
  Rng rng(3);
  const std::uint64_t chunks =
      params.buffer_bytes / params.link.chunk_bytes;
  const double stage = ideal_completion_s(params.link, chunks);
  EXPECT_NEAR(tree_allreduce_sample_s(rng, params), 6.0 * stage, 1e-9);
}

TEST(TreeAllreduceModelTest, RingBeatsTreeForLargeBuffers) {
  // Bandwidth-optimal ring (segments of buffer/N) vs latency-optimal tree
  // (full buffer per stage): once segment injection dominates the 25 ms
  // RTT (segments of several GiB) the ring wins.
  AllreduceParams params;
  params.datacenters = 8;
  params.buffer_bytes = 64ull << 30;
  params.link = paper_link(1e-6);
  params.scheme = Scheme::kSrRto;
  const auto ring = allreduce_distribution(params, 200, 21);
  const auto tree = tree_allreduce_distribution(params, 200, 21);
  EXPECT_LT(ring.mean, tree.mean);
}

TEST(TreeAllreduceModelTest, TreeCompetitiveForSmallBuffers) {
  // For latency-dominated (tiny) buffers the tree's 2*log2(N) stages beat
  // the ring's 2N-2 RTT-bound stages.
  AllreduceParams params;
  params.datacenters = 16;
  params.buffer_bytes = 16ull << 20;  // segments tiny vs BDP
  params.link = paper_link(1e-6);
  params.scheme = Scheme::kSrRto;
  const auto ring = allreduce_distribution(params, 200, 22);
  const auto tree = tree_allreduce_distribution(params, 200, 22);
  EXPECT_LT(tree.mean, ring.mean);
}

TEST(AllreduceModelTest, SampleIsDeterministicPerSeed) {
  AllreduceParams params;
  params.link = paper_link(1e-3);
  Rng a(5), b(5);
  EXPECT_DOUBLE_EQ(allreduce_sample_s(a, params), allreduce_sample_s(b, params));
}

}  // namespace
}  // namespace sdr::model
