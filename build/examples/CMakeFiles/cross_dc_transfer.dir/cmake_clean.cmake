file(REMOVE_RECURSE
  "CMakeFiles/cross_dc_transfer.dir/cross_dc_transfer.cpp.o"
  "CMakeFiles/cross_dc_transfer.dir/cross_dc_transfer.cpp.o.d"
  "cross_dc_transfer"
  "cross_dc_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_dc_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
