# Empty dependencies file for cross_dc_transfer.
# This may be replaced when dependencies are built.
