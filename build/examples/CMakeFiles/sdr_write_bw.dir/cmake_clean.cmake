file(REMOVE_RECURSE
  "CMakeFiles/sdr_write_bw.dir/sdr_write_bw.cpp.o"
  "CMakeFiles/sdr_write_bw.dir/sdr_write_bw.cpp.o.d"
  "sdr_write_bw"
  "sdr_write_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_write_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
