# Empty compiler generated dependencies file for sdr_write_bw.
# This may be replaced when dependencies are built.
