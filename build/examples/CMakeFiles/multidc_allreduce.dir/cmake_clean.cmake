file(REMOVE_RECURSE
  "CMakeFiles/multidc_allreduce.dir/multidc_allreduce.cpp.o"
  "CMakeFiles/multidc_allreduce.dir/multidc_allreduce.cpp.o.d"
  "multidc_allreduce"
  "multidc_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidc_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
