# Empty compiler generated dependencies file for multidc_allreduce.
# This may be replaced when dependencies are built.
