# Empty compiler generated dependencies file for per_connection_tuning.
# This may be replaced when dependencies are built.
