file(REMOVE_RECURSE
  "CMakeFiles/per_connection_tuning.dir/per_connection_tuning.cpp.o"
  "CMakeFiles/per_connection_tuning.dir/per_connection_tuning.cpp.o.d"
  "per_connection_tuning"
  "per_connection_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_connection_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
