# Empty compiler generated dependencies file for bench_fig03_reliability_impact.
# This may be replaced when dependencies are built.
