file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_allreduce.dir/bench_fig13_allreduce.cpp.o"
  "CMakeFiles/bench_fig13_allreduce.dir/bench_fig13_allreduce.cpp.o.d"
  "bench_fig13_allreduce"
  "bench_fig13_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
