# Empty compiler generated dependencies file for bench_fig13_allreduce.
# This may be replaced when dependencies are built.
