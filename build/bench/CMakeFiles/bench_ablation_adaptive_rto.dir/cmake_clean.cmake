file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_rto.dir/bench_ablation_adaptive_rto.cpp.o"
  "CMakeFiles/bench_ablation_adaptive_rto.dir/bench_ablation_adaptive_rto.cpp.o.d"
  "bench_ablation_adaptive_rto"
  "bench_ablation_adaptive_rto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_rto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
