# Empty dependencies file for bench_ablation_adaptive_rto.
# This may be replaced when dependencies are built.
