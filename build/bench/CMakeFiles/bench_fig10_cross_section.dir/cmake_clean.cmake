file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cross_section.dir/bench_fig10_cross_section.cpp.o"
  "CMakeFiles/bench_fig10_cross_section.dir/bench_fig10_cross_section.cpp.o.d"
  "bench_fig10_cross_section"
  "bench_fig10_cross_section.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cross_section.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
