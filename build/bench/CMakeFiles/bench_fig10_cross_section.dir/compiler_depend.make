# Empty compiler generated dependencies file for bench_fig10_cross_section.
# This may be replaced when dependencies are built.
