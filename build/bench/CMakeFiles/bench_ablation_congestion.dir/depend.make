# Empty dependencies file for bench_ablation_congestion.
# This may be replaced when dependencies are built.
