# Empty dependencies file for bench_ablation_imm_split.
# This may be replaced when dependencies are built.
