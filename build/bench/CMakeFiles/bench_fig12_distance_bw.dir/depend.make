# Empty dependencies file for bench_fig12_distance_bw.
# This may be replaced when dependencies are built.
