file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_droprate.dir/bench_fig02_droprate.cpp.o"
  "CMakeFiles/bench_fig02_droprate.dir/bench_fig02_droprate.cpp.o.d"
  "bench_fig02_droprate"
  "bench_fig02_droprate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_droprate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
