# Empty dependencies file for bench_fig02_droprate.
# This may be replaced when dependencies are built.
