# Empty dependencies file for bench_ablation_generations.
# This may be replaced when dependencies are built.
