file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_generations.dir/bench_ablation_generations.cpp.o"
  "CMakeFiles/bench_ablation_generations.dir/bench_ablation_generations.cpp.o.d"
  "bench_ablation_generations"
  "bench_ablation_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
