# Empty dependencies file for bench_fig09_heatmap.
# This may be replaced when dependencies are built.
