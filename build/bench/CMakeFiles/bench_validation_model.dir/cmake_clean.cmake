file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_model.dir/bench_validation_model.cpp.o"
  "CMakeFiles/bench_validation_model.dir/bench_validation_model.cpp.o.d"
  "bench_validation_model"
  "bench_validation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
