# Empty compiler generated dependencies file for bench_fig11_ec_encode.
# This may be replaced when dependencies are built.
