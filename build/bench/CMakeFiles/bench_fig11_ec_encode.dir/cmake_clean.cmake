file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ec_encode.dir/bench_fig11_ec_encode.cpp.o"
  "CMakeFiles/bench_fig11_ec_encode.dir/bench_fig11_ec_encode.cpp.o.d"
  "bench_fig11_ec_encode"
  "bench_fig11_ec_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ec_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
