
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tuner_test.cpp" "tests/CMakeFiles/tuner_test.dir/tuner_test.cpp.o" "gcc" "tests/CMakeFiles/tuner_test.dir/tuner_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collectives/CMakeFiles/sdr_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/sdr_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sdr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dpa/CMakeFiles/sdr_dpa.dir/DependInfo.cmake"
  "/root/repo/build/src/sdr/CMakeFiles/sdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/sdr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/sdr_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
