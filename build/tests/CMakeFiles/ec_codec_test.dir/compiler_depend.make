# Empty compiler generated dependencies file for ec_codec_test.
# This may be replaced when dependencies are built.
