file(REMOVE_RECURSE
  "CMakeFiles/ec_codec_test.dir/ec_codec_test.cpp.o"
  "CMakeFiles/ec_codec_test.dir/ec_codec_test.cpp.o.d"
  "ec_codec_test"
  "ec_codec_test.pdb"
  "ec_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
