file(REMOVE_RECURSE
  "CMakeFiles/sdr_table_test.dir/sdr_table_test.cpp.o"
  "CMakeFiles/sdr_table_test.dir/sdr_table_test.cpp.o.d"
  "sdr_table_test"
  "sdr_table_test.pdb"
  "sdr_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
