# Empty compiler generated dependencies file for sdr_table_test.
# This may be replaced when dependencies are built.
