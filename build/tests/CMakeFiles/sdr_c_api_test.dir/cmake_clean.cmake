file(REMOVE_RECURSE
  "CMakeFiles/sdr_c_api_test.dir/sdr_c_api_test.cpp.o"
  "CMakeFiles/sdr_c_api_test.dir/sdr_c_api_test.cpp.o.d"
  "sdr_c_api_test"
  "sdr_c_api_test.pdb"
  "sdr_c_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_c_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
