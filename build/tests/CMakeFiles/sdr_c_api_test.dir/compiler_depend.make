# Empty compiler generated dependencies file for sdr_c_api_test.
# This may be replaced when dependencies are built.
