file(REMOVE_RECURSE
  "CMakeFiles/ec_gf256_test.dir/ec_gf256_test.cpp.o"
  "CMakeFiles/ec_gf256_test.dir/ec_gf256_test.cpp.o.d"
  "ec_gf256_test"
  "ec_gf256_test.pdb"
  "ec_gf256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_gf256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
