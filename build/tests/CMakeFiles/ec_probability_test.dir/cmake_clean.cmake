file(REMOVE_RECURSE
  "CMakeFiles/ec_probability_test.dir/ec_probability_test.cpp.o"
  "CMakeFiles/ec_probability_test.dir/ec_probability_test.cpp.o.d"
  "ec_probability_test"
  "ec_probability_test.pdb"
  "ec_probability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
