# Empty compiler generated dependencies file for sdr_qp_test.
# This may be replaced when dependencies are built.
