file(REMOVE_RECURSE
  "CMakeFiles/sdr_qp_test.dir/sdr_qp_test.cpp.o"
  "CMakeFiles/sdr_qp_test.dir/sdr_qp_test.cpp.o.d"
  "sdr_qp_test"
  "sdr_qp_test.pdb"
  "sdr_qp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_qp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
