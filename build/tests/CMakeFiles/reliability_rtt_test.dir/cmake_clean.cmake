file(REMOVE_RECURSE
  "CMakeFiles/reliability_rtt_test.dir/reliability_rtt_test.cpp.o"
  "CMakeFiles/reliability_rtt_test.dir/reliability_rtt_test.cpp.o.d"
  "reliability_rtt_test"
  "reliability_rtt_test.pdb"
  "reliability_rtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
