# Empty dependencies file for reliability_rtt_test.
# This may be replaced when dependencies are built.
