file(REMOVE_RECURSE
  "CMakeFiles/reliability_ec_test.dir/reliability_ec_test.cpp.o"
  "CMakeFiles/reliability_ec_test.dir/reliability_ec_test.cpp.o.d"
  "reliability_ec_test"
  "reliability_ec_test.pdb"
  "reliability_ec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
