file(REMOVE_RECURSE
  "CMakeFiles/sdr_imm_test.dir/sdr_imm_test.cpp.o"
  "CMakeFiles/sdr_imm_test.dir/sdr_imm_test.cpp.o.d"
  "sdr_imm_test"
  "sdr_imm_test.pdb"
  "sdr_imm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_imm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
