file(REMOVE_RECURSE
  "CMakeFiles/reliability_sr_test.dir/reliability_sr_test.cpp.o"
  "CMakeFiles/reliability_sr_test.dir/reliability_sr_test.cpp.o.d"
  "reliability_sr_test"
  "reliability_sr_test.pdb"
  "reliability_sr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_sr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
