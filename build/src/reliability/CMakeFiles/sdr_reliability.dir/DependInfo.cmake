
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/ack_codec.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/ack_codec.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/ack_codec.cpp.o.d"
  "/root/repo/src/reliability/control_link.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/control_link.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/control_link.cpp.o.d"
  "/root/repo/src/reliability/ec_protocol.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/ec_protocol.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/ec_protocol.cpp.o.d"
  "/root/repo/src/reliability/reliable_channel.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/reliable_channel.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/reliable_channel.cpp.o.d"
  "/root/repo/src/reliability/sr_protocol.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/sr_protocol.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/sr_protocol.cpp.o.d"
  "/root/repo/src/reliability/tuner.cpp" "src/reliability/CMakeFiles/sdr_reliability.dir/tuner.cpp.o" "gcc" "src/reliability/CMakeFiles/sdr_reliability.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdr/CMakeFiles/sdr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/sdr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/sdr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/sdr_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
