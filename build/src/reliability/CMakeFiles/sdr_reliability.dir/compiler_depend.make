# Empty compiler generated dependencies file for sdr_reliability.
# This may be replaced when dependencies are built.
