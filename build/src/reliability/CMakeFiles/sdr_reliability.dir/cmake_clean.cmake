file(REMOVE_RECURSE
  "CMakeFiles/sdr_reliability.dir/ack_codec.cpp.o"
  "CMakeFiles/sdr_reliability.dir/ack_codec.cpp.o.d"
  "CMakeFiles/sdr_reliability.dir/control_link.cpp.o"
  "CMakeFiles/sdr_reliability.dir/control_link.cpp.o.d"
  "CMakeFiles/sdr_reliability.dir/ec_protocol.cpp.o"
  "CMakeFiles/sdr_reliability.dir/ec_protocol.cpp.o.d"
  "CMakeFiles/sdr_reliability.dir/reliable_channel.cpp.o"
  "CMakeFiles/sdr_reliability.dir/reliable_channel.cpp.o.d"
  "CMakeFiles/sdr_reliability.dir/sr_protocol.cpp.o"
  "CMakeFiles/sdr_reliability.dir/sr_protocol.cpp.o.d"
  "CMakeFiles/sdr_reliability.dir/tuner.cpp.o"
  "CMakeFiles/sdr_reliability.dir/tuner.cpp.o.d"
  "libsdr_reliability.a"
  "libsdr_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
