file(REMOVE_RECURSE
  "libsdr_reliability.a"
)
