# Empty dependencies file for sdr_common.
# This may be replaced when dependencies are built.
