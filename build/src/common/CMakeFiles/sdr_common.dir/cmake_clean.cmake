file(REMOVE_RECURSE
  "CMakeFiles/sdr_common.dir/bitmap.cpp.o"
  "CMakeFiles/sdr_common.dir/bitmap.cpp.o.d"
  "CMakeFiles/sdr_common.dir/histogram.cpp.o"
  "CMakeFiles/sdr_common.dir/histogram.cpp.o.d"
  "CMakeFiles/sdr_common.dir/logging.cpp.o"
  "CMakeFiles/sdr_common.dir/logging.cpp.o.d"
  "CMakeFiles/sdr_common.dir/table.cpp.o"
  "CMakeFiles/sdr_common.dir/table.cpp.o.d"
  "CMakeFiles/sdr_common.dir/units.cpp.o"
  "CMakeFiles/sdr_common.dir/units.cpp.o.d"
  "libsdr_common.a"
  "libsdr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
