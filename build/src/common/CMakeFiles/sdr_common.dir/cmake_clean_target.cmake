file(REMOVE_RECURSE
  "libsdr_common.a"
)
