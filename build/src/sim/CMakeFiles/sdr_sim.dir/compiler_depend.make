# Empty compiler generated dependencies file for sdr_sim.
# This may be replaced when dependencies are built.
