file(REMOVE_RECURSE
  "libsdr_sim.a"
)
