file(REMOVE_RECURSE
  "CMakeFiles/sdr_sim.dir/channel.cpp.o"
  "CMakeFiles/sdr_sim.dir/channel.cpp.o.d"
  "CMakeFiles/sdr_sim.dir/drop_model.cpp.o"
  "CMakeFiles/sdr_sim.dir/drop_model.cpp.o.d"
  "CMakeFiles/sdr_sim.dir/simulator.cpp.o"
  "CMakeFiles/sdr_sim.dir/simulator.cpp.o.d"
  "libsdr_sim.a"
  "libsdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
