# Empty compiler generated dependencies file for sdr_model.
# This may be replaced when dependencies are built.
