file(REMOVE_RECURSE
  "libsdr_model.a"
)
