
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/allreduce_model.cpp" "src/model/CMakeFiles/sdr_model.dir/allreduce_model.cpp.o" "gcc" "src/model/CMakeFiles/sdr_model.dir/allreduce_model.cpp.o.d"
  "/root/repo/src/model/ec_model.cpp" "src/model/CMakeFiles/sdr_model.dir/ec_model.cpp.o" "gcc" "src/model/CMakeFiles/sdr_model.dir/ec_model.cpp.o.d"
  "/root/repo/src/model/protocols.cpp" "src/model/CMakeFiles/sdr_model.dir/protocols.cpp.o" "gcc" "src/model/CMakeFiles/sdr_model.dir/protocols.cpp.o.d"
  "/root/repo/src/model/sr_model.cpp" "src/model/CMakeFiles/sdr_model.dir/sr_model.cpp.o" "gcc" "src/model/CMakeFiles/sdr_model.dir/sr_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ec/CMakeFiles/sdr_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
