file(REMOVE_RECURSE
  "CMakeFiles/sdr_model.dir/allreduce_model.cpp.o"
  "CMakeFiles/sdr_model.dir/allreduce_model.cpp.o.d"
  "CMakeFiles/sdr_model.dir/ec_model.cpp.o"
  "CMakeFiles/sdr_model.dir/ec_model.cpp.o.d"
  "CMakeFiles/sdr_model.dir/protocols.cpp.o"
  "CMakeFiles/sdr_model.dir/protocols.cpp.o.d"
  "CMakeFiles/sdr_model.dir/sr_model.cpp.o"
  "CMakeFiles/sdr_model.dir/sr_model.cpp.o.d"
  "libsdr_model.a"
  "libsdr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
