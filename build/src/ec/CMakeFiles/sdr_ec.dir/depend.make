# Empty dependencies file for sdr_ec.
# This may be replaced when dependencies are built.
