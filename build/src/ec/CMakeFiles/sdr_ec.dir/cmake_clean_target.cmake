file(REMOVE_RECURSE
  "libsdr_ec.a"
)
