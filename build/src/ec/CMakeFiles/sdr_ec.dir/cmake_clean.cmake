file(REMOVE_RECURSE
  "CMakeFiles/sdr_ec.dir/gf256.cpp.o"
  "CMakeFiles/sdr_ec.dir/gf256.cpp.o.d"
  "CMakeFiles/sdr_ec.dir/matrix.cpp.o"
  "CMakeFiles/sdr_ec.dir/matrix.cpp.o.d"
  "CMakeFiles/sdr_ec.dir/probability.cpp.o"
  "CMakeFiles/sdr_ec.dir/probability.cpp.o.d"
  "CMakeFiles/sdr_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/sdr_ec.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/sdr_ec.dir/xor_code.cpp.o"
  "CMakeFiles/sdr_ec.dir/xor_code.cpp.o.d"
  "libsdr_ec.a"
  "libsdr_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
