file(REMOVE_RECURSE
  "CMakeFiles/sdr_collectives.dir/broadcast.cpp.o"
  "CMakeFiles/sdr_collectives.dir/broadcast.cpp.o.d"
  "CMakeFiles/sdr_collectives.dir/ring_allreduce.cpp.o"
  "CMakeFiles/sdr_collectives.dir/ring_allreduce.cpp.o.d"
  "libsdr_collectives.a"
  "libsdr_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
