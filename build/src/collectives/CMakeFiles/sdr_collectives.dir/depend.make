# Empty dependencies file for sdr_collectives.
# This may be replaced when dependencies are built.
