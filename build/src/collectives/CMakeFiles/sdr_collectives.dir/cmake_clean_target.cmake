file(REMOVE_RECURSE
  "libsdr_collectives.a"
)
