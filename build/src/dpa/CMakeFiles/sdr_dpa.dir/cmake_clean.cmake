file(REMOVE_RECURSE
  "CMakeFiles/sdr_dpa.dir/calibrate.cpp.o"
  "CMakeFiles/sdr_dpa.dir/calibrate.cpp.o.d"
  "CMakeFiles/sdr_dpa.dir/engine.cpp.o"
  "CMakeFiles/sdr_dpa.dir/engine.cpp.o.d"
  "libsdr_dpa.a"
  "libsdr_dpa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_dpa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
