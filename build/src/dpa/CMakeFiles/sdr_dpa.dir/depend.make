# Empty dependencies file for sdr_dpa.
# This may be replaced when dependencies are built.
