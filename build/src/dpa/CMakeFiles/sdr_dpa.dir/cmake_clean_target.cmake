file(REMOVE_RECURSE
  "libsdr_dpa.a"
)
