# Empty dependencies file for sdr_core.
# This may be replaced when dependencies are built.
