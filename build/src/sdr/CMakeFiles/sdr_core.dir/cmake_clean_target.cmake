file(REMOVE_RECURSE
  "libsdr_core.a"
)
