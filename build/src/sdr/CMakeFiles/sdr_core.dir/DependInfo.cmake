
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdr/message_table.cpp" "src/sdr/CMakeFiles/sdr_core.dir/message_table.cpp.o" "gcc" "src/sdr/CMakeFiles/sdr_core.dir/message_table.cpp.o.d"
  "/root/repo/src/sdr/sdr.cpp" "src/sdr/CMakeFiles/sdr_core.dir/sdr.cpp.o" "gcc" "src/sdr/CMakeFiles/sdr_core.dir/sdr.cpp.o.d"
  "/root/repo/src/sdr/sdr_c.cpp" "src/sdr/CMakeFiles/sdr_core.dir/sdr_c.cpp.o" "gcc" "src/sdr/CMakeFiles/sdr_core.dir/sdr_c.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verbs/CMakeFiles/sdr_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
