file(REMOVE_RECURSE
  "CMakeFiles/sdr_core.dir/message_table.cpp.o"
  "CMakeFiles/sdr_core.dir/message_table.cpp.o.d"
  "CMakeFiles/sdr_core.dir/sdr.cpp.o"
  "CMakeFiles/sdr_core.dir/sdr.cpp.o.d"
  "CMakeFiles/sdr_core.dir/sdr_c.cpp.o"
  "CMakeFiles/sdr_core.dir/sdr_c.cpp.o.d"
  "libsdr_core.a"
  "libsdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
