# Empty compiler generated dependencies file for sdr_verbs.
# This may be replaced when dependencies are built.
