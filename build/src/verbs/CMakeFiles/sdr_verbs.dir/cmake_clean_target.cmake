file(REMOVE_RECURSE
  "libsdr_verbs.a"
)
