file(REMOVE_RECURSE
  "CMakeFiles/sdr_verbs.dir/cq.cpp.o"
  "CMakeFiles/sdr_verbs.dir/cq.cpp.o.d"
  "CMakeFiles/sdr_verbs.dir/fabric.cpp.o"
  "CMakeFiles/sdr_verbs.dir/fabric.cpp.o.d"
  "CMakeFiles/sdr_verbs.dir/mr.cpp.o"
  "CMakeFiles/sdr_verbs.dir/mr.cpp.o.d"
  "CMakeFiles/sdr_verbs.dir/nic.cpp.o"
  "CMakeFiles/sdr_verbs.dir/nic.cpp.o.d"
  "CMakeFiles/sdr_verbs.dir/qp.cpp.o"
  "CMakeFiles/sdr_verbs.dir/qp.cpp.o.d"
  "libsdr_verbs.a"
  "libsdr_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdr_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
