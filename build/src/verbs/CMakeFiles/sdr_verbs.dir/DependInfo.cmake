
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verbs/cq.cpp" "src/verbs/CMakeFiles/sdr_verbs.dir/cq.cpp.o" "gcc" "src/verbs/CMakeFiles/sdr_verbs.dir/cq.cpp.o.d"
  "/root/repo/src/verbs/fabric.cpp" "src/verbs/CMakeFiles/sdr_verbs.dir/fabric.cpp.o" "gcc" "src/verbs/CMakeFiles/sdr_verbs.dir/fabric.cpp.o.d"
  "/root/repo/src/verbs/mr.cpp" "src/verbs/CMakeFiles/sdr_verbs.dir/mr.cpp.o" "gcc" "src/verbs/CMakeFiles/sdr_verbs.dir/mr.cpp.o.d"
  "/root/repo/src/verbs/nic.cpp" "src/verbs/CMakeFiles/sdr_verbs.dir/nic.cpp.o" "gcc" "src/verbs/CMakeFiles/sdr_verbs.dir/nic.cpp.o.d"
  "/root/repo/src/verbs/qp.cpp" "src/verbs/CMakeFiles/sdr_verbs.dir/qp.cpp.o" "gcc" "src/verbs/CMakeFiles/sdr_verbs.dir/qp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sdr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sdr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
