#include "sdr/sdr.h"

#include <map>
#include <memory>
#include <string>

#include "common/bitmap.hpp"
#include "sdr/sdr.hpp"
#include "verbs/nic.hpp"

namespace {

using sdr::Status;
using sdr::StatusCode;

std::map<std::string, sdr::verbs::Nic*>& device_registry() {
  static std::map<std::string, sdr::verbs::Nic*> registry;
  return registry;
}

/// Contexts created through the C facade are owned here (the facade has no
/// destroy call in Table 1; teardown happens at process exit or via
/// sdr_unregister_devices in tests).
std::vector<std::unique_ptr<sdr::core::Context>>& context_pool() {
  static std::vector<std::unique_ptr<sdr::core::Context>> pool;
  return pool;
}

int to_int(const Status& s) { return s.to_int(); }

}  // namespace

void sdr_register_device(const char* dev_name, sdr::verbs::Nic* nic) {
  device_registry()[dev_name] = nic;
}

void sdr_unregister_devices() {
  context_pool().clear();
  device_registry().clear();
}

sdr_ctx* sdr_context_create(const char* dev_name,
                            const sdr::core::DevAttr* dev_attr) {
  const auto it = device_registry().find(dev_name ? dev_name : "");
  if (it == device_registry().end()) return nullptr;
  sdr::core::DevAttr attr = dev_attr ? *dev_attr : sdr::core::DevAttr{};
  context_pool().push_back(
      std::make_unique<sdr::core::Context>(*it->second, attr));
  return context_pool().back().get();
}

sdr_qp* sdr_qp_create(sdr_ctx* ctx, const sdr::core::QpAttr* qp_attr) {
  if (ctx == nullptr || qp_attr == nullptr) return nullptr;
  return ctx->create_qp(*qp_attr);
}

int sdr_qp_info_get(sdr_qp* qp, sdr::core::QpInfo* info) {
  if (qp == nullptr || info == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  *info = qp->info();
  return 0;
}

int sdr_qp_connect(sdr_qp* qp, const sdr::core::QpInfo* remote_qp_info) {
  if (qp == nullptr || remote_qp_info == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return to_int(qp->connect(*remote_qp_info));
}

sdr_mr* sdr_mr_reg(sdr_ctx* ctx, void* addr, std::size_t length) {
  if (ctx == nullptr) return nullptr;
  return ctx->mr_reg(addr, length);
}

int sdr_send_stream_start(sdr_qp* qp, const sdr_start_wr* wr,
                          sdr_snd_handle** hdl) {
  if (qp == nullptr || wr == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return to_int(
      qp->send_stream_start(wr->user_imm, wr->has_user_imm != 0, hdl));
}

int sdr_send_stream_continue(sdr_snd_handle* hdl, sdr_qp* qp,
                             const sdr_continue_wr* wr) {
  if (qp == nullptr || wr == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return to_int(qp->send_stream_continue(
      hdl, static_cast<const std::uint8_t*>(wr->data), wr->remote_offset,
      wr->length));
}

int sdr_send_stream_end(sdr_snd_handle* hdl, sdr_qp* qp) {
  if (qp == nullptr) return static_cast<int>(StatusCode::kInvalidArgument);
  return to_int(qp->send_stream_end(hdl));
}

int sdr_send_post(sdr_qp* qp, const sdr_snd_wr* wr, sdr_snd_handle** hdl) {
  if (qp == nullptr || wr == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return to_int(qp->send_post(static_cast<const std::uint8_t*>(wr->data),
                              wr->length, wr->user_imm,
                              wr->has_user_imm != 0, hdl));
}

int sdr_send_poll(sdr_snd_handle* hdl, sdr_qp* qp) {
  if (qp == nullptr) return static_cast<int>(StatusCode::kInvalidArgument);
  return to_int(qp->send_poll(hdl));
}

int sdr_recv_post(sdr_qp* qp, const sdr_rcv_wr* wr, sdr_rcv_handle** hdl) {
  if (qp == nullptr || wr == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  return to_int(qp->recv_post(static_cast<std::uint8_t*>(wr->addr),
                              wr->length, wr->mr, hdl));
}

int sdr_recv_bitmap_get(sdr_rcv_handle* hdl, sdr_qp* qp,
                        const std::uint64_t** bitmap, std::size_t* len) {
  if (qp == nullptr || bitmap == nullptr || len == nullptr) {
    return static_cast<int>(StatusCode::kInvalidArgument);
  }
  const sdr::AtomicBitmap* bits = nullptr;
  const Status s = qp->recv_bitmap_get(hdl, &bits);
  if (!s) return to_int(s);
  // std::atomic<uint64_t> is layout-compatible with uint64_t on every
  // supported platform (static_assert in bitmap tests); the reliability
  // layer reads the words with plain loads, exactly like host software
  // polling DPA-updated memory.
  *bitmap = reinterpret_cast<const std::uint64_t*>(bits->word_data());
  // Report the posted message's chunk count, not the slot capacity.
  *len = hdl->chunk_count();
  return 0;
}

int sdr_recv_imm_get(sdr_rcv_handle* hdl, sdr_qp* qp, std::uint32_t* imm) {
  if (qp == nullptr) return static_cast<int>(StatusCode::kInvalidArgument);
  return to_int(qp->recv_imm_get(hdl, imm));
}

int sdr_recv_complete(sdr_rcv_handle* hdl, sdr_qp* qp) {
  if (qp == nullptr) return static_cast<int>(StatusCode::kInvalidArgument);
  return to_int(qp->recv_complete(hdl));
}
