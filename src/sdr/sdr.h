// C-style SDR SDK facade — mirrors Table 1 of the paper verbatim.
//
// Thin wrappers over the C++ classes in sdr/sdr.hpp; every call returns 0 on
// success or a negative sdr::StatusCode on failure, matching the paper's
// `int`-returning convention. Objects are opaque handles.
//
//   | Subset          | API call                 |
//   |-----------------|--------------------------|
//   | Data path setup | sdr_context_create, sdr_qp_create, sdr_qp_info_get,
//   |                 | sdr_qp_connect
//   | Memory          | sdr_mr_reg
//   | Send            | sdr_send_stream_start, sdr_send_stream_continue,
//   |                 | sdr_send_stream_end, sdr_send_post, sdr_send_poll
//   | Receive         | sdr_recv_post, sdr_recv_bitmap_get, sdr_recv_imm_get,
//   |                 | sdr_recv_complete
#pragma once

#include <cstddef>
#include <cstdint>

#include "sdr/config.hpp"

namespace sdr::verbs {
class Nic;
class MemoryRegion;
}  // namespace sdr::verbs

namespace sdr::core {
class Context;
class Qp;
class SendHandle;
class RecvHandle;
struct QpInfo;
}  // namespace sdr::core

extern "C++" {

typedef sdr::core::Context sdr_ctx;
typedef sdr::core::Qp sdr_qp;
typedef sdr::core::SendHandle sdr_snd_handle;
typedef sdr::core::RecvHandle sdr_rcv_handle;
typedef const sdr::verbs::MemoryRegion sdr_mr;

struct sdr_start_wr {
  std::uint32_t user_imm;
  int has_user_imm;
};

struct sdr_continue_wr {
  const void* data;
  std::size_t remote_offset;  // byte offset into the remote receive buffer
  std::size_t length;
};

struct sdr_snd_wr {
  const void* data;
  std::size_t length;
  std::uint32_t user_imm;
  int has_user_imm;
};

struct sdr_rcv_wr {
  void* addr;
  std::size_t length;
  sdr_mr* mr;
};

// --- Data path setup ---
/// Allocate HW resources (CQs, DPA threads) shared by QPs. `dev_name`
/// selects the software NIC registered under that name (see
/// sdr_register_device in the simulator harness).
sdr_ctx* sdr_context_create(const char* dev_name,
                            const sdr::core::DevAttr* dev_attr);
/// Create a queue pair within a context.
sdr_qp* sdr_qp_create(sdr_ctx* ctx, const sdr::core::QpAttr* qp_attr);
/// Retrieve QP info for out-of-band exchange.
int sdr_qp_info_get(sdr_qp* qp, sdr::core::QpInfo* info);
/// Establish a connection between queue pairs using QP info.
int sdr_qp_connect(sdr_qp* qp, const sdr::core::QpInfo* remote_qp_info);

// --- Memory ---
/// Register memory for send/receive via QPs in the context.
sdr_mr* sdr_mr_reg(sdr_ctx* ctx, void* addr, std::size_t length);

// --- Send ---
int sdr_send_stream_start(sdr_qp* qp, const sdr_start_wr* wr,
                          sdr_snd_handle** hdl);
int sdr_send_stream_continue(sdr_snd_handle* hdl, sdr_qp* qp,
                             const sdr_continue_wr* wr);
int sdr_send_stream_end(sdr_snd_handle* hdl, sdr_qp* qp);
int sdr_send_post(sdr_qp* qp, const sdr_snd_wr* wr, sdr_snd_handle** hdl);
int sdr_send_poll(sdr_snd_handle* hdl, sdr_qp* qp);

// --- Receive ---
int sdr_recv_post(sdr_qp* qp, const sdr_rcv_wr* wr, sdr_rcv_handle** hdl);
/// Get a pointer to the chunk bitmap words associated with a receive
/// buffer. `len` receives the bitmap length in BITS (chunks).
int sdr_recv_bitmap_get(sdr_rcv_handle* hdl, sdr_qp* qp,
                        const std::uint64_t** bitmap, std::size_t* len);
/// Retrieve the reassembled user immediate if it is ready.
int sdr_recv_imm_get(sdr_rcv_handle* hdl, sdr_qp* qp, std::uint32_t* imm);
/// Mark a receive message as complete.
int sdr_recv_complete(sdr_rcv_handle* hdl, sdr_qp* qp);

// --- Simulator-harness device registry (not part of Table 1) ---
/// Bind `dev_name` to a software NIC so sdr_context_create can resolve it.
void sdr_register_device(const char* dev_name, sdr::verbs::Nic* nic);
void sdr_unregister_devices();

}  // extern "C++"
