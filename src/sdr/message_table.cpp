#include "sdr/message_table.hpp"

#include <cassert>

namespace sdr::core {

MessageTable::MessageTable(const QpAttr& attr) : attr_(attr), codec_(attr.imm) {
  assert(attr_.valid());
  slots_.reserve(attr_.max_inflight);
  for (std::size_t i = 0; i < attr_.max_inflight; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->packet_bits.resize(attr_.max_packets_per_msg());
    slot->chunk_bits.resize(attr_.max_chunks_per_msg());
    slots_.push_back(std::move(slot));
  }
}

Status MessageTable::arm(std::size_t slot_idx, std::uint32_t generation,
                         std::size_t msg_bytes) {
  if (slot_idx >= slots_.size()) {
    return Status(StatusCode::kOutOfRange, "slot index out of range");
  }
  if (msg_bytes == 0 || msg_bytes > attr_.max_msg_size) {
    return Status(StatusCode::kInvalidArgument,
                  "message size outside (0, max_msg_size]");
  }
  Slot& s = *slots_[slot_idx];
  if (s.active.load(std::memory_order_acquire)) {
    return Status(StatusCode::kFailedPrecondition,
                  "slot still active: complete the previous receive first");
  }
  s.msg_bytes = msg_bytes;
  s.packets = (msg_bytes + attr_.mtu - 1) / attr_.mtu;
  s.chunks = (msg_bytes + attr_.chunk_size - 1) / attr_.chunk_size;
  s.packet_bits.clear_all();
  s.chunk_bits.clear_all();
  s.packets_received.store(0, std::memory_order_relaxed);
  s.imm_frag_mask.store(0, std::memory_order_relaxed);
  s.imm_value.store(0, std::memory_order_relaxed);
  s.packets_accepted.store(0, std::memory_order_relaxed);
  s.duplicates.store(0, std::memory_order_relaxed);
  s.stale_generation.store(0, std::memory_order_relaxed);
  s.generation.store(generation, std::memory_order_release);
  s.active.store(true, std::memory_order_release);
  return Status::ok();
}

Status MessageTable::release(std::size_t slot_idx) {
  if (slot_idx >= slots_.size()) {
    return Status(StatusCode::kOutOfRange, "slot index out of range");
  }
  Slot& s = *slots_[slot_idx];
  if (!s.active.load(std::memory_order_acquire)) {
    return Status(StatusCode::kFailedPrecondition, "slot is not active");
  }
  s.active.store(false, std::memory_order_release);
  return Status::ok();
}

ProcessResult MessageTable::process_completion(const ImmFields& fields,
                                               std::uint32_t qp_generation) {
  ProcessResult result;
  if (fields.msg_id >= slots_.size()) return result;
  Slot& s = *slots_[fields.msg_id];

  // Stage-2 late-packet protection: the completion's generation (identified
  // by the internal QP that delivered it) must match the slot's current
  // generation, and the slot must be armed.
  if (!s.active.load(std::memory_order_acquire) ||
      s.generation.load(std::memory_order_acquire) != qp_generation) {
    s.stale_generation.fetch_add(1, std::memory_order_relaxed);
    return result;
  }
  if (fields.packet_index >= s.packets) {
    // Offset beyond the posted message: stale or corrupt packet.
    s.stale_generation.fetch_add(1, std::memory_order_relaxed);
    return result;
  }

  result.accepted = true;
  if (!s.packet_bits.set_and_check(fields.packet_index)) {
    s.duplicates.fetch_add(1, std::memory_order_relaxed);
    return result;  // duplicate delivery (e.g. SR retransmission overlap)
  }
  result.new_packet = true;
  s.packets_accepted.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t received =
      s.packets_received.fetch_add(1, std::memory_order_acq_rel) + 1;

  // User-immediate reassembly.
  const unsigned frags = codec_.layout().user_fragments();
  if (frags > 0) {
    const unsigned frag_slot = codec_.fragment_slot(fields.packet_index);
    const std::uint32_t shifted = fields.user_fragment
                                  << (frag_slot * codec_.layout().user_bits);
    s.imm_value.fetch_or(shifted, std::memory_order_relaxed);
    s.imm_frag_mask.fetch_or(1u << frag_slot, std::memory_order_release);
  }

  // Chunk coalescing: the worker that observes the last packet of a chunk
  // promotes the chunk bit to the frontend bitmap (paper §3.4.2).
  const std::size_t ppc = attr_.packets_per_chunk();
  const std::size_t chunk = fields.packet_index / ppc;
  const std::size_t chunk_first = chunk * ppc;
  const std::size_t chunk_packets =
      std::min(ppc, s.packets - chunk_first);  // final chunk may be partial
  if (s.packet_bits.range_all_set(chunk_first, chunk_packets)) {
    if (s.chunk_bits.set_and_check(chunk)) {
      result.chunk_completed = true;
      result.chunk_index = static_cast<std::uint32_t>(chunk);
    }
  }
  if (received >= s.packets) result.message_completed = true;
  return result;
}

bool MessageTable::user_imm_ready(std::size_t slot_idx,
                                  std::uint32_t* imm) const {
  const Slot& s = *slots_[slot_idx];
  const unsigned frags = codec_.layout().user_fragments();
  if (frags == 0) return false;
  // For messages shorter than `frags` packets only the low fragment slots
  // can ever arrive; require the reachable subset.
  const unsigned reachable =
      static_cast<unsigned>(std::min<std::size_t>(frags, s.packets));
  const std::uint32_t needed = (reachable >= 32)
                                   ? ~0u
                                   : ((1u << reachable) - 1);
  if ((s.imm_frag_mask.load(std::memory_order_acquire) & needed) != needed) {
    return false;
  }
  if (imm != nullptr) *imm = s.imm_value.load(std::memory_order_relaxed);
  return true;
}

}  // namespace sdr::core
