// 32-bit transport immediate encoding (paper §3.2.4).
//
// Every SDR packet is an RDMA Write-with-immediate whose 32-bit immediate is
// split into three fields:
//   * message ID     — which message-table slot the packet belongs to,
//   * packet index   — the packet's offset within the message (in MTUs),
//   * user fragment  — a sampled fragment of the application's 32-bit user
//                      immediate, reassembled at the receiver.
// The paper's default split is 10 + 18 + 4 (1024 in-flight messages, 1 GiB
// max message at 4 KiB MTU); alternative splits such as 8 + 22 + 2 are
// supported and tested.
#pragma once

#include <cstdint>

namespace sdr::core {

struct ImmLayout {
  unsigned msg_id_bits{10};
  unsigned offset_bits{18};
  unsigned user_bits{4};

  constexpr bool valid() const {
    return msg_id_bits >= 1 && offset_bits >= 1 &&
           msg_id_bits + offset_bits + user_bits == 32;
  }
  constexpr std::uint32_t max_messages() const {
    return 1u << msg_id_bits;
  }
  constexpr std::uint64_t max_packets() const {
    return 1ull << offset_bits;
  }
  /// Number of user-immediate fragments needed to reassemble 32 bits
  /// (0 when the layout carries no user bits).
  constexpr unsigned user_fragments() const {
    return user_bits == 0 ? 0 : (32 + user_bits - 1) / user_bits;
  }
};

inline constexpr ImmLayout kDefaultImmLayout{10, 18, 4};
inline constexpr ImmLayout kLargeMessageImmLayout{8, 22, 2};

struct ImmFields {
  std::uint32_t msg_id{0};
  std::uint32_t packet_index{0};
  std::uint32_t user_fragment{0};
};

class ImmCodec {
 public:
  constexpr explicit ImmCodec(ImmLayout layout = kDefaultImmLayout)
      : layout_(layout) {}

  constexpr ImmLayout layout() const { return layout_; }

  constexpr std::uint32_t encode(std::uint32_t msg_id,
                                 std::uint32_t packet_index,
                                 std::uint32_t user_fragment) const {
    const std::uint32_t id_mask = layout_.max_messages() - 1;
    const std::uint32_t off_mask =
        static_cast<std::uint32_t>(layout_.max_packets() - 1);
    const std::uint32_t usr_mask =
        layout_.user_bits == 0 ? 0 : (1u << layout_.user_bits) - 1;
    std::uint32_t v = (msg_id & id_mask);
    v = (v << layout_.offset_bits) | (packet_index & off_mask);
    v = (v << layout_.user_bits) | (user_fragment & usr_mask);
    return v;
  }

  constexpr ImmFields decode(std::uint32_t imm) const {
    const std::uint32_t usr_mask =
        layout_.user_bits == 0 ? 0 : (1u << layout_.user_bits) - 1;
    const std::uint32_t off_mask =
        static_cast<std::uint32_t>(layout_.max_packets() - 1);
    ImmFields f;
    f.user_fragment = imm & usr_mask;
    f.packet_index = (imm >> layout_.user_bits) & off_mask;
    f.msg_id = (imm >> (layout_.user_bits + layout_.offset_bits)) &
               (layout_.max_messages() - 1);
    return f;
  }

  /// Fragment of the 32-bit user immediate carried by packet `packet_index`.
  /// Fragments cycle: packet i carries bits
  /// [user_bits * (i % fragments), ...). A message therefore needs at least
  /// `user_fragments()` packets to deliver a complete user immediate.
  constexpr std::uint32_t sample_user_fragment(std::uint32_t user_imm,
                                               std::uint32_t packet_index) const {
    const unsigned frags = layout_.user_fragments();
    if (frags == 0) return 0;
    const unsigned idx = packet_index % frags;
    return (user_imm >> (idx * layout_.user_bits)) &
           ((1u << layout_.user_bits) - 1);
  }

  constexpr unsigned fragment_slot(std::uint32_t packet_index) const {
    const unsigned frags = layout_.user_fragments();
    return frags == 0 ? 0 : packet_index % frags;
  }

 private:
  ImmLayout layout_;
};

}  // namespace sdr::core
