#include "sdr/sdr.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.hpp"

namespace sdr::core {

namespace {
constexpr std::uint64_t kCtsBufferFactor = 2;  // posted CTS recvs per slot
constexpr std::size_t kCqeBatch = 64;  // stack batch for CQ drains
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Context::Context(verbs::Nic& nic, DevAttr dev_attr)
    : nic_(nic), dev_attr_(dev_attr) {}

Qp* Context::create_qp(const QpAttr& attr) {
  if (!attr.valid()) return nullptr;
  qps_.push_back(std::make_unique<Qp>(*this, attr));
  return qps_.back().get();
}

const verbs::MemoryRegion* Context::mr_reg(void* addr, std::size_t length) {
  if (addr == nullptr || length == 0) return nullptr;
  return nic_.pd().register_mr(static_cast<std::uint8_t*>(addr), length);
}

// ---------------------------------------------------------------------------
// Qp setup
// ---------------------------------------------------------------------------

Qp::Qp(Context& ctx, const QpAttr& attr)
    : ctx_(ctx), attr_(attr), codec_(attr.imm), table_(attr) {
  assert(attr_.valid());
  verbs::Nic& nic = ctx_.nic();

  // Control path: one UD QP for CTS datagrams.
  control_cq_ = std::make_unique<verbs::CompletionQueue>(
      attr_.max_inflight * kCtsBufferFactor + 64);
  send_cq_ = std::make_unique<verbs::CompletionQueue>(1 << 16);
  verbs::QpConfig control_cfg;
  control_cfg.type = verbs::QpType::kUD;
  control_cfg.mtu = attr_.mtu;
  control_cfg.send_cq = nullptr;  // CTS sends are unsignaled
  control_cfg.recv_cq = control_cq_.get();
  control_qp_ = nic.create_qp(control_cfg);
  control_cq_->set_notify([this] { on_control_cqe(); });

  // Pre-post CTS receive buffers (one flat allocation for all slots).
  const std::size_t n_cts = attr_.max_inflight * kCtsBufferFactor;
  cts_buffers_.resize(n_cts * sizeof(CtsMessage));
  for (std::size_t i = 0; i < n_cts; ++i) {
    verbs::RecvWr rwr;
    rwr.wr_id = i;
    rwr.addr = cts_buffers_.data() + i * sizeof(CtsMessage);
    rwr.length = sizeof(CtsMessage);
    control_qp_->post_recv(rwr);
  }

  // Data path: generations x channels QPs, one recv CQ per QP (the
  // per-channel CQs that DPA workers poll), a shared send CQ. Transport is
  // UC (zero-copy, the default) or UD (two-sided with staging, §2.3).
  const bool ud = attr_.transport == Transport::kUd;
  const std::size_t n_qps = attr_.generations * attr_.channels;
  data_qps_.reserve(n_qps);
  data_cqs_.reserve(n_qps);
  if (ud) ud_staging_.resize(n_qps);
  for (std::size_t i = 0; i < n_qps; ++i) {
    auto cq = std::make_unique<verbs::CompletionQueue>(1 << 16);
    // One growth step up front: a channel CQ that sees its first packet
    // deep into a run (rare generation/channel combinations) must not
    // allocate on the data path (the zero-alloc steady-state gate).
    cq->reserve(64);
    verbs::QpConfig cfg;
    cfg.type = ud ? verbs::QpType::kUD : verbs::QpType::kUC;
    cfg.mtu = attr_.mtu;
    cfg.send_cq = send_cq_.get();
    cfg.recv_cq = cq.get();
    verbs::Qp* qp = nic.create_qp(cfg);
    if (ud) {
      // Pre-post staging datagram buffers (one flat allocation per QP);
      // payload is copied out to the user buffer by the receive backend
      // and the buffer reposted.
      auto& staging = ud_staging_[i];
      staging.resize(attr_.ud_staging_depth * attr_.mtu);
      for (std::size_t b = 0; b < attr_.ud_staging_depth; ++b) {
        verbs::RecvWr rwr;
        rwr.wr_id = b;
        rwr.addr = staging.data() + b * attr_.mtu;
        rwr.length = attr_.mtu;
        qp->post_recv(rwr);
      }
    }
    const std::size_t qp_index = i;
    cq->set_notify([this, qp_index] { on_data_cqe(qp_index); });
    data_qps_.push_back(qp);
    data_cqs_.push_back(std::move(cq));
  }
  send_cq_->set_notify([this] { on_send_cqe(); });

  // Receive-side root indirect memory key (Figure 5): one slot of
  // max_msg_size bytes per message-table entry, all initially NULL-bound.
  root_table_ =
      nic.pd().create_indirect_table(attr_.max_inflight, attr_.max_msg_size);
  null_mr_ = nic.pd().alloc_null_mr();
  for (std::size_t s = 0; s < attr_.max_inflight; ++s) {
    root_table_->bind_null(s, null_mr_);
  }

  // Handle pools: one handle per slot bounds in-flight messages. The CTS
  // pending array is slot-indexed for the same reason (see sdr.hpp).
  send_handles_.resize(attr_.max_inflight);
  recv_handles_.resize(attr_.max_inflight);
  cts_pending_.resize(attr_.max_inflight);

  if (telemetry::enabled()) register_metrics();
}

void Qp::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("sdr.qp"));
  tele_.bind_counter("cts_sent", &stats_.cts_sent);
  tele_.bind_counter("cts_received", &stats_.cts_received);
  tele_.bind_counter("data_packets_sent", &stats_.data_packets_sent);
  tele_.bind_counter("completions_processed", &stats_.completions_processed);
  tele_.bind_counter("completions_discarded", &stats_.completions_discarded);
  tele_.bind_counter("sends_queued_waiting_cts",
                     &stats_.sends_queued_waiting_cts);
  tele_.bind_counter("staged_packets", &stats_.staged_packets);
  tele_.bind_counter("staged_bytes", &stats_.staged_bytes);
  tele_.bind_gauge("active_sends", [this] {
    return static_cast<double>(active_send_count_);
  });
  tele_.bind_gauge("send_cq_depth", [this] {
    return static_cast<double>(send_cq_->size());
  });
  tele_.bind_gauge("send_cq_overruns", [this] {
    return static_cast<double>(send_cq_->overruns());
  });
  tele_.bind_gauge("control_cq_depth", [this] {
    return static_cast<double>(control_cq_->size());
  });
  // Completion-latency rollups (recv_post -> chunk bit / full message):
  // flatten() derives .p50/.p99/.p999 columns, so fig10/fig13 sweeps export
  // the tail per trial.
  chunk_completion_hist_ = tele_.histogram("chunk_completion_s", 1e-6, 1e3);
  msg_completion_hist_ = tele_.histogram("msg_completion_s", 1e-6, 1e3);
}

SimTime Qp::sim_now() const { return ctx_.nic().simulator().now(); }

verbs::QpNumber Qp::control_qp_num() const {
  return control_qp_ != nullptr ? control_qp_->num() : 0;
}

Qp::~Qp() {
  verbs::Nic& nic = ctx_.nic();
  if (control_qp_ != nullptr) nic.destroy_qp(control_qp_->num());
  for (verbs::Qp* qp : data_qps_) nic.destroy_qp(qp->num());
}

QpInfo Qp::info() const {
  QpInfo info;
  info.nic = ctx_.nic().id();
  info.control_qp = control_qp_->num();
  info.data_qps.reserve(data_qps_.size());
  for (const verbs::Qp* qp : data_qps_) info.data_qps.push_back(qp->num());
  info.root_key = root_table_->key();
  info.attr = attr_;
  return info;
}

Status Qp::connect(const QpInfo& remote) {
  if (remote.data_qps.size() != data_qps_.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "generation/channel configuration mismatch");
  }
  const QpAttr& r = remote.attr;
  if (r.max_msg_size != attr_.max_msg_size || r.mtu != attr_.mtu ||
      r.chunk_size != attr_.chunk_size ||
      r.max_inflight != attr_.max_inflight ||
      r.generations != attr_.generations || r.channels != attr_.channels ||
      r.imm.msg_id_bits != attr_.imm.msg_id_bits ||
      r.imm.offset_bits != attr_.imm.offset_bits) {
    return Status(StatusCode::kInvalidArgument, "QP attribute mismatch");
  }
  if (r.transport != attr_.transport) {
    return Status(StatusCode::kInvalidArgument, "transport mismatch");
  }
  remote_nic_ = remote.nic;
  remote_control_qp_ = remote.control_qp;
  remote_root_key_ = remote.root_key;
  remote_data_qps_ = remote.data_qps;
  for (std::size_t i = 0; i < data_qps_.size(); ++i) {
    data_qps_[i]->connect(remote.nic, remote.data_qps[i]);
  }
  connected_ = true;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Status Qp::send_stream_start(std::uint32_t user_imm, bool has_user_imm,
                             SendHandle** handle) {
  if (!connected_) return Status(StatusCode::kNotConnected, "connect first");
  if (handle == nullptr) {
    return Status(StatusCode::kInvalidArgument, "null handle out-param");
  }
  const std::uint64_t msg_number = send_counter_;
  const std::size_t slot = slot_of(msg_number);
  SendHandle* h = &send_handles_[slot];
  if (h->in_use_) {
    return Status(StatusCode::kResourceExhausted,
                  "message table full: poll previous sends to completion");
  }
  ++send_counter_;
  h->reset();
  h->in_use_ = true;
  h->msg_number_ = msg_number;
  h->slot_ = slot;
  h->generation_ = generation_of(msg_number);
  h->user_imm_ = user_imm;
  h->has_user_imm_ = has_user_imm;
  ++active_send_count_;

  // Consume an already-arrived CTS (receiver posted before we started).
  if (PendingCts& pending = cts_pending_[slot];
      pending.valid && pending.msg.msg_number == msg_number) {
    h->cts_ready_ = true;
    h->remote_msg_bytes_ = pending.msg.msg_bytes;
    pending.valid = false;
  }
  *handle = h;
  return Status::ok();
}

Status Qp::send_stream_continue(SendHandle* handle, const std::uint8_t* data,
                                std::size_t remote_offset,
                                std::size_t length) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid send handle");
  }
  if (handle->ended_) {
    return Status(StatusCode::kFailedPrecondition,
                  "stream already ended: no new chunks may be added");
  }
  if (data == nullptr || length == 0) {
    return Status(StatusCode::kInvalidArgument, "empty chunk");
  }
  if (remote_offset % attr_.mtu != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "chunk offset must be MTU-aligned");
  }
  if (remote_offset + length > attr_.max_msg_size) {
    return Status(StatusCode::kOutOfRange,
                  "chunk exceeds the maximum message size");
  }
  if (handle->cts_ready_) {
    if (remote_offset + length > handle->remote_msg_bytes_) {
      return Status(StatusCode::kOutOfRange,
                    "chunk exceeds the posted receive buffer");
    }
    inject(handle, data, remote_offset, length);
  } else {
    // Receiver has not posted yet: queue the op; it flushes on CTS.
    handle->queued_.push_back(SendHandle::PendingOp{data, remote_offset,
                                                    length});
    ++stats_.sends_queued_waiting_cts;
  }
  return Status::ok();
}

Status Qp::send_stream_end(SendHandle* handle) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid send handle");
  }
  if (handle->ended_) {
    return Status(StatusCode::kFailedPrecondition, "stream already ended");
  }
  handle->ended_ = true;
  return Status::ok();
}

Status Qp::send_post(const std::uint8_t* data, std::size_t length,
                     std::uint32_t user_imm, bool has_user_imm,
                     SendHandle** handle) {
  SendHandle* h = nullptr;
  if (Status s = send_stream_start(user_imm, has_user_imm, &h); !s) return s;
  if (Status s = send_stream_continue(h, data, 0, length); !s) {
    // Roll the message context back so the slot is not leaked.
    h->in_use_ = false;
    --active_send_count_;
    --send_counter_;
    return s;
  }
  if (Status s = send_stream_end(h); !s) return s;
  *handle = h;
  return Status::ok();
}

Status Qp::send_poll(SendHandle* handle) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid send handle");
  }
  if (!handle->ended_ || !handle->cts_ready_ || !handle->queued_.empty() ||
      handle->packets_pending_ != 0) {
    return Status(StatusCode::kNotReady, "");
  }
  // Completed: destroy the message context (one-shot semantics §3.1.2).
  handle->in_use_ = false;
  --active_send_count_;
  return Status::ok();
}

Status Qp::send_abort(SendHandle* handle) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid send handle");
  }
  if (handle->packets_pending_ != 0 || handle->packets_injected_ != 0) {
    return Status(StatusCode::kFailedPrecondition,
                  "send already injecting: drain it through send_poll");
  }
  handle->queued_.clear();
  handle->in_use_ = false;
  --active_send_count_;
  return Status::ok();
}

void Qp::inject(SendHandle* handle, const std::uint8_t* data,
                std::size_t remote_offset, std::size_t length) {
  const std::size_t mtu = attr_.mtu;
  const std::size_t slot = handle->slot_;
  const std::uint32_t gen = handle->generation_;
  std::size_t sent = 0;
  while (sent < length) {
    const std::size_t chunk = std::min(mtu, length - sent);
    const std::size_t byte_off = remote_offset + sent;
    const auto packet_index = static_cast<std::uint32_t>(byte_off / mtu);
    const std::uint32_t frag =
        handle->has_user_imm_
            ? codec_.sample_user_fragment(handle->user_imm_, packet_index)
            : 0;

    // Multi-channel distribution (§3.4.1): spread packets across channel
    // QPs of this message's generation.
    const std::size_t channel = packet_index % attr_.channels;
    const std::uint32_t imm =
        codec_.encode(static_cast<std::uint32_t>(slot), packet_index, frag);

    // Emit before the post: the post may traverse the whole channel
    // synchronously in sim time, and within one timestamp the ring keeps
    // emission order, so the timeline should read posted -> tx -> ...
    if (telemetry::tracing()) {
      telemetry::tracer().emit(
          sim_now(), telemetry::TraceEventType::kPosted,
          remote_data_qps_[gen * attr_.channels + channel],
          handle->msg_number_, packet_index, imm, chunk);
    }
    if (telemetry::spanning()) {
      // The span tree keys chunks at reliability granularity
      // (attr.chunk_size) so SR/EC rto/retransmit instants join the same
      // chunk span as the packets they re-send.
      telemetry::spans().on_posted(
          sim_now(), remote_data_qps_[gen * attr_.channels + channel],
          handle->msg_number_,
          static_cast<std::uint32_t>(byte_off / attr_.chunk_size),
          packet_index, imm, chunk);
    }

    if (attr_.transport == Transport::kUd) {
      // Two-sided datagram: the receiver resolves placement from the
      // immediate (offset) itself and copies out of its staging buffer.
      verbs::SendWr wr;
      wr.wr_id = slot;
      wr.local_addr = data + sent;
      wr.length = chunk;
      wr.with_imm = true;
      wr.imm = imm;
      wr.signaled = true;
      wr.dst_nic = remote_nic_;
      wr.dst_qp = remote_data_qps_[gen * attr_.channels + channel];
      data_qp(gen, channel)->post_send(wr);
    } else {
      verbs::WriteWr wr;
      wr.wr_id = slot;  // identifies the handle in the send CQ
      wr.local_addr = data + sent;
      wr.length = chunk;
      wr.rkey = remote_root_key_;
      wr.remote_offset =
          static_cast<std::uint64_t>(slot) * attr_.max_msg_size + byte_off;
      wr.with_imm = true;
      wr.imm = imm;
      wr.signaled = true;
      data_qp(gen, channel)->post_write(wr);
    }
    ++handle->packets_injected_;
    ++handle->packets_pending_;
    ++stats_.data_packets_sent;
    sent += chunk;
  }
}

void Qp::flush_queued(SendHandle* handle) {
  while (!handle->queued_.empty()) {
    const SendHandle::PendingOp op = handle->queued_.front();
    handle->queued_.pop_front();
    if (op.offset + op.length <= handle->remote_msg_bytes_) {
      inject(handle, op.data, op.offset, op.length);
    } else {
      SDR_WARN("dropping queued send beyond posted buffer (msg %llu)",
               static_cast<unsigned long long>(handle->msg_number_));
    }
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

Status Qp::recv_post(std::uint8_t* addr, std::size_t length,
                     const verbs::MemoryRegion* mr, RecvHandle** handle) {
  if (!connected_) return Status(StatusCode::kNotConnected, "connect first");
  if (handle == nullptr || addr == nullptr || mr == nullptr || length == 0) {
    return Status(StatusCode::kInvalidArgument, "invalid receive arguments");
  }
  if (length > attr_.max_msg_size) {
    return Status(StatusCode::kOutOfRange,
                  "receive exceeds the maximum message size");
  }
  if (addr < mr->addr() || addr + length > mr->addr() + mr->length()) {
    return Status(StatusCode::kOutOfRange,
                  "buffer is outside the registered region");
  }
  const std::uint64_t msg_number = recv_counter_;
  const std::size_t slot = slot_of(msg_number);
  RecvHandle* h = &recv_handles_[slot];
  if (h->in_use_) {
    return Status(StatusCode::kResourceExhausted,
                  "message table full: complete the oldest receive first");
  }
  const std::uint32_t gen = generation_of(msg_number);
  if (Status s = table_.arm(slot, gen, length); !s) return s;

  // Bind the root-key slot to the user buffer (§3.2.3: "updates the
  // indirect root memory key table with the user buffer's key").
  const std::uint64_t base = static_cast<std::uint64_t>(addr - mr->addr());
  root_table_->bind(slot, mr, base);

  ++recv_counter_;
  *h = RecvHandle{};
  h->in_use_ = true;
  h->posted_at_s_ = sim_now().seconds();
  h->msg_number_ = msg_number;
  h->slot_ = slot;
  h->generation_ = gen;
  h->msg_bytes_ = length;
  h->chunk_count_ = (length + attr_.chunk_size - 1) / attr_.chunk_size;
  h->mr_ = mr;

  // Clear-to-send: tell the sender the buffer is ready (§3.2.3).
  send_cts(CtsMessage{msg_number, static_cast<std::uint32_t>(slot), gen,
                      static_cast<std::uint64_t>(length)});
  *handle = h;
  return Status::ok();
}

Status Qp::resend_cts(RecvHandle* handle) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid receive handle");
  }
  send_cts(CtsMessage{handle->msg_number_,
                      static_cast<std::uint32_t>(handle->slot_),
                      handle->generation_,
                      static_cast<std::uint64_t>(handle->msg_bytes_)});
  return Status::ok();
}

Status Qp::recv_bitmap_get(RecvHandle* handle,
                           const AtomicBitmap** bitmap) const {
  if (handle == nullptr || !handle->in_use_ || bitmap == nullptr) {
    return Status(StatusCode::kInvalidArgument, "invalid receive handle");
  }
  *bitmap = &table_.chunk_bitmap(handle->slot_);
  return Status::ok();
}

Status Qp::recv_imm_get(RecvHandle* handle, std::uint32_t* imm) const {
  if (handle == nullptr || !handle->in_use_ || imm == nullptr) {
    return Status(StatusCode::kInvalidArgument, "invalid receive handle");
  }
  if (!table_.user_imm_ready(handle->slot_, imm)) {
    return Status(StatusCode::kNotReady, "");
  }
  return Status::ok();
}

Status Qp::recv_complete(RecvHandle* handle) {
  if (handle == nullptr || !handle->in_use_) {
    return Status(StatusCode::kInvalidArgument, "invalid receive handle");
  }
  // Stage-1 late-packet protection: rebind the slot to the NULL memory key
  // so in-flight packets complete harmlessly with their payload discarded.
  root_table_->bind_null(handle->slot_, null_mr_);
  table_.release(handle->slot_);
  handle->in_use_ = false;
  return Status::ok();
}

bool Qp::recv_done(const RecvHandle* handle) const {
  return handle != nullptr && handle->in_use_ &&
         table_.message_complete(handle->slot_);
}

std::uint64_t Qp::recv_packets(const RecvHandle* handle) const {
  return handle != nullptr && handle->in_use_
             ? table_.packets_received(handle->slot_)
             : 0;
}

// ---------------------------------------------------------------------------
// Backend completion processing
// ---------------------------------------------------------------------------

void Qp::send_cts(const CtsMessage& cts) {
  verbs::SendWr wr;
  wr.local_addr = reinterpret_cast<const std::uint8_t*>(&cts);
  wr.length = sizeof(cts);
  wr.signaled = false;
  wr.dst_nic = remote_nic_;
  wr.dst_qp = remote_control_qp_;
  control_qp_->post_send(wr);
  ++stats_.cts_sent;
}

void Qp::on_control_cqe() {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSdr);
  verbs::Cqe batch[kCqeBatch];
  std::size_t n;
  while ((n = control_cq_->poll(batch, kCqeBatch)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const verbs::Cqe& cqe = batch[i];
      if (!cqe.is_recv || cqe.byte_len < sizeof(CtsMessage)) continue;
      const std::size_t buf = static_cast<std::size_t>(cqe.wr_id);
      CtsMessage cts;
      std::uint8_t* cts_buf = cts_buffers_.data() + buf * sizeof(CtsMessage);
      std::memcpy(&cts, cts_buf, sizeof(cts));
      // Recycle the CTS buffer.
      verbs::RecvWr rwr;
      rwr.wr_id = buf;
      rwr.addr = cts_buf;
      rwr.length = sizeof(CtsMessage);
      control_qp_->post_recv(rwr);
      ++stats_.cts_received;
      if (telemetry::tracing()) {
        telemetry::tracer().emit(sim_now(), telemetry::TraceEventType::kCts,
                                 control_qp_->num(), cts.msg_number);
      }
      if (telemetry::spanning()) {
        telemetry::spans().on_instant(sim_now(),
                                      telemetry::TraceEventType::kCts,
                                      cts.msg_number, telemetry::kNoChunk);
      }

      // Order-based matching: the in-flight send for this msg_number, if
      // started, lives at its slot.
      const std::size_t slot = slot_of(cts.msg_number);
      SendHandle* h = &send_handles_[slot];
      if (h->in_use_ && h->msg_number_ == cts.msg_number) {
        // Receiver-side CTS retry can deliver duplicates; the first one
        // already flushed the queue and armed the protocol timers.
        if (h->cts_ready_) continue;
        h->cts_ready_ = true;
        h->remote_msg_bytes_ = cts.msg_bytes;
        flush_queued(h);
      } else {
        cts_pending_[slot] = PendingCts{cts, true};
      }
      if (cts_handler_) cts_handler_(cts.msg_number);
    }
  }
}

void Qp::on_data_cqe(std::size_t qp_index) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSdr);
  const auto qp_generation =
      static_cast<std::uint32_t>(qp_index / attr_.channels);
  const bool ud = attr_.transport == Transport::kUd;
  verbs::CompletionQueue& cq = *data_cqs_[qp_index];
  verbs::Cqe batch[kCqeBatch];
  std::size_t n;
  while ((n = cq.poll(batch, kCqeBatch)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const verbs::Cqe& cqe = batch[i];
      if (!cqe.is_recv || !cqe.imm_valid) continue;
      ++stats_.completions_processed;
      const ImmFields fields = codec_.decode(cqe.imm);

      ProcessResult result;
      if (ud) {
        // Staging path (§2.3): the datagram landed in a runtime buffer. The
        // software backend runs the generation/slot checks BEFORE copying —
        // unlike the zero-copy path, where the NIC has already placed the
        // payload — so stale packets never touch user memory. The staging
        // buffer is reposted either way.
        std::uint8_t* staging =
            ud_staging_[qp_index].data() + cqe.wr_id * attr_.mtu;
        result = table_.process_completion(fields, qp_generation);
        if (result.accepted && result.new_packet) {
          const std::uint64_t offset =
              static_cast<std::uint64_t>(fields.msg_id) * attr_.max_msg_size +
              static_cast<std::uint64_t>(fields.packet_index) * attr_.mtu;
          const verbs::ResolvedAccess access =
              root_table_->resolve(offset, cqe.byte_len);
          if (access.valid && !access.discard && access.addr != nullptr) {
            std::memcpy(access.addr, staging, cqe.byte_len);
            ++stats_.staged_packets;
            stats_.staged_bytes += cqe.byte_len;
          }
        }
        verbs::RecvWr rwr;
        rwr.wr_id = cqe.wr_id;
        rwr.addr = staging;
        rwr.length = attr_.mtu;
        data_qps_[qp_index]->post_recv(rwr);
      } else {
        result = table_.process_completion(fields, qp_generation);
      }
      if (!result.accepted) {
        ++stats_.completions_discarded;
        continue;
      }
      RecvHandle* h = &recv_handles_[fields.msg_id];
      if (telemetry::tracing()) {
        const std::uint64_t msg =
            h->in_use_ ? h->msg_number_ : telemetry::kNoMsg;
        auto& tr = telemetry::tracer();
        const SimTime now = sim_now();
        const std::uint32_t qp_num = data_qps_[qp_index]->num();
        tr.emit(now, telemetry::TraceEventType::kCqe, qp_num, msg,
                fields.packet_index, cqe.imm, cqe.byte_len);
        if (result.chunk_completed) {
          tr.emit(now, telemetry::TraceEventType::kBitmapUpdate, qp_num, msg,
                  result.chunk_index);
        }
        if (result.message_completed) {
          tr.emit(now, telemetry::TraceEventType::kMsgComplete, qp_num, msg);
        }
      }
      if (h->in_use_) {
        if (telemetry::spanning()) {
          auto& sp = telemetry::spans();
          const SimTime now = sim_now();
          if (result.chunk_completed) {
            sp.on_chunk_done(now, h->msg_number_, result.chunk_index);
          }
          if (result.message_completed) {
            sp.on_msg_complete(now, h->msg_number_);
          }
        }
        if (h->posted_at_s_ >= 0.0 &&
            (result.chunk_completed && chunk_completion_hist_.live())) {
          chunk_completion_hist_.record(sim_now().seconds() -
                                        h->posted_at_s_);
        }
        if (h->posted_at_s_ >= 0.0 &&
            (result.message_completed && msg_completion_hist_.live())) {
          msg_completion_hist_.record(sim_now().seconds() - h->posted_at_s_);
        }
      }
      if (!recv_event_handler_) continue;
      if (!h->in_use_) continue;
      if (result.chunk_completed) {
        recv_event_handler_(RecvEvent{RecvEvent::Type::kChunkCompleted, h,
                                      result.chunk_index});
      }
      if (result.message_completed) {
        recv_event_handler_(
            RecvEvent{RecvEvent::Type::kMessageCompleted, h, 0});
      }
    }
  }
}

void Qp::on_send_cqe() {
  telemetry::ProfScope prof(telemetry::ProfCategory::kSdr);
  verbs::Cqe batch[kCqeBatch];
  std::size_t n;
  while ((n = send_cq_->poll(batch, kCqeBatch)) > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const verbs::Cqe& cqe = batch[i];
      if (cqe.is_recv) continue;
      const std::size_t slot = static_cast<std::size_t>(cqe.wr_id);
      if (slot >= send_handles_.size()) continue;
      SendHandle* h = &send_handles_[slot];
      if (h->in_use_ && h->packets_pending_ > 0) --h->packets_pending_;
    }
  }
}

}  // namespace sdr::core
