// The SDR receive-side message table: per-slot state, per-packet (backend)
// bitmaps and chunk (frontend) bitmaps, generation checking and user-
// immediate reassembly (paper §3.2.2-§3.2.4, §3.3).
//
// process_completion() is the exact logic the paper offloads to DPA worker
// threads — it is thread-safe (atomic bitmaps, relaxed counters) so the same
// code path serves both the deterministic simulator backend and the
// multi-threaded dpa::Engine used by the line-rate benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitmap.hpp"
#include "common/status.hpp"
#include "sdr/config.hpp"
#include "sdr/imm_codec.hpp"

namespace sdr::core {

/// Outcome of processing one packet completion.
struct ProcessResult {
  bool accepted{false};          // false: discarded (stale gen / bad slot)
  bool new_packet{false};        // bit transitioned 0 -> 1
  bool chunk_completed{false};   // this packet completed its chunk
  bool message_completed{false}; // this packet completed the whole message
  std::uint32_t chunk_index{0};
};

/// Snapshot of a slot's counters (the live counters are relaxed atomics —
/// DPA workers bump them concurrently).
struct SlotStats {
  std::uint64_t packets_accepted{0};
  std::uint64_t duplicates{0};
  std::uint64_t stale_generation{0};
};

class MessageTable {
 public:
  explicit MessageTable(const QpAttr& attr);

  std::size_t slot_count() const { return slots_.size(); }
  const QpAttr& attr() const { return attr_; }

  /// Arm slot for a message of `msg_bytes` (<= max_msg_size) at generation
  /// `generation`. Clears bitmaps. Returns kFailedPrecondition if the slot
  /// is still active (receive not completed).
  Status arm(std::size_t slot, std::uint32_t generation,
             std::size_t msg_bytes);

  /// Deactivate slot (recv_complete): subsequent completions carrying a
  /// different generation are discarded; same-generation completions are
  /// also discarded because the slot is inactive.
  Status release(std::size_t slot);

  /// The DPA/backend hot path: decode already done by the caller (fields),
  /// `qp_generation` identifies the internal QP (generation) that delivered
  /// the CQE (paper §3.3.2 stage-2 protection).
  ProcessResult process_completion(const ImmFields& fields,
                                   std::uint32_t qp_generation);

  // ---- frontend (user-facing) accessors ----
  bool slot_active(std::size_t slot) const {
    return slots_[slot]->active.load(std::memory_order_acquire);
  }
  std::size_t msg_bytes(std::size_t slot) const {
    return slots_[slot]->msg_bytes;
  }
  std::size_t chunks(std::size_t slot) const { return slots_[slot]->chunks; }
  std::size_t packets(std::size_t slot) const { return slots_[slot]->packets; }

  /// Chunk (frontend) bitmap word access — what recv_bitmap_get exposes.
  const AtomicBitmap& chunk_bitmap(std::size_t slot) const {
    return slots_[slot]->chunk_bits;
  }
  const AtomicBitmap& packet_bitmap(std::size_t slot) const {
    return slots_[slot]->packet_bits;
  }

  std::uint64_t packets_received(std::size_t slot) const {
    return slots_[slot]->packets_received.load(std::memory_order_relaxed);
  }
  bool message_complete(std::size_t slot) const {
    const Slot& s = *slots_[slot];
    return s.packets_received.load(std::memory_order_acquire) >= s.packets &&
           s.packets > 0;
  }

  /// User-immediate reassembly (paper §3.2.4 field 3): returns true and the
  /// 32-bit immediate once every fragment slot has been observed.
  bool user_imm_ready(std::size_t slot, std::uint32_t* imm) const;

  SlotStats stats(std::size_t slot) const {
    const Slot& s = *slots_[slot];
    return SlotStats{
        s.packets_accepted.load(std::memory_order_relaxed),
        s.duplicates.load(std::memory_order_relaxed),
        s.stale_generation.load(std::memory_order_relaxed)};
  }

 private:
  struct Slot {
    std::atomic<bool> active{false};
    std::atomic<std::uint32_t> generation{0};
    std::size_t msg_bytes{0};
    std::size_t packets{0};
    std::size_t chunks{0};
    AtomicBitmap packet_bits;   // backend per-packet bitmap (DPA memory)
    AtomicBitmap chunk_bits;    // frontend chunk bitmap (host memory)
    std::atomic<std::uint64_t> packets_received{0};
    std::atomic<std::uint32_t> imm_frag_mask{0};
    std::atomic<std::uint32_t> imm_value{0};
    std::atomic<std::uint64_t> packets_accepted{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> stale_generation{0};
  };

  QpAttr attr_;
  ImmCodec codec_;
  // unique_ptr per slot: Slot contains atomics and is neither copyable nor
  // movable; the table size is fixed at construction.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace sdr::core
