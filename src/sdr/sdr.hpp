// SDR middleware SDK — the paper's core contribution (Table 1).
//
// The SDK extends standard point-to-point RDMA semantics with unreliable
// arbitrary-length messaging and a *partial message completion* bitmap:
// the receiver posts a buffer, the sender streams MTU-sized packets into it
// as single-packet unreliable Writes-with-immediate, and the receive backend
// coalesces per-packet completions into a chunk bitmap the reliability layer
// polls. Matching is order-based; generations + the NULL memory key protect
// against late packets (§3.3); the backend logic is the same code the DPA
// engine runs multi-threaded (src/dpa).
//
// C++ class API below; a C-style facade mirroring Table 1 verbatim is in
// sdr/sdr.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/status.hpp"
#include "sdr/config.hpp"
#include "sdr/imm_codec.hpp"
#include "sdr/message_table.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/cq.hpp"
#include "verbs/nic.hpp"

namespace sdr::core {

class Context;
class Qp;

/// Out-of-band connection blob (qp_info_get / qp_connect). In a real
/// deployment this crosses a TCP socket; in the simulator it is passed by
/// value.
struct QpInfo {
  verbs::NicId nic{0};
  verbs::QpNumber control_qp{0};
  std::vector<verbs::QpNumber> data_qps;  // [generation * channels + channel]
  verbs::MemoryKey root_key{0};
  QpAttr attr;
};

/// Streaming / one-shot send message context (snd_handle).
class SendHandle {
 public:
  std::uint64_t msg_number() const { return msg_number_; }
  std::size_t slot() const { return slot_; }
  std::uint32_t generation() const { return generation_; }
  bool ended() const { return ended_; }
  /// True once the receiver's clear-to-send arrived (injection can start).
  bool cts_ready() const { return cts_ready_; }
  std::uint64_t packets_injected() const { return packets_injected_; }
  std::uint64_t packets_pending() const { return packets_pending_; }

 private:
  friend class Qp;
  std::uint64_t msg_number_{0};
  std::size_t slot_{0};
  std::uint32_t generation_{0};
  std::uint32_t user_imm_{0};
  bool has_user_imm_{false};
  bool ended_{false};
  bool cts_ready_{false};
  std::uint64_t packets_injected_{0};
  std::uint64_t packets_pending_{0};  // handed to NIC, not yet serialized
  std::size_t remote_msg_bytes_{0};   // from CTS: posted buffer length
  struct PendingOp {
    const std::uint8_t* data;
    std::size_t offset;
    std::size_t length;
  };
  // Ops issued before CTS arrived. Ring (not deque): a deque's cursor
  // marches through its blocks, freeing and reallocating one every ~21
  // push/pop cycles even when the queue never holds more than one element.
  common::RingBuffer<PendingOp> queued_;
  bool in_use_{false};

  /// Recycle for the next message on this slot without rebuilding the
  /// deque (steady-state message turnover must not touch the allocator).
  void reset() {
    msg_number_ = 0;
    slot_ = 0;
    generation_ = 0;
    user_imm_ = 0;
    has_user_imm_ = false;
    ended_ = false;
    cts_ready_ = false;
    packets_injected_ = 0;
    packets_pending_ = 0;
    remote_msg_bytes_ = 0;
    queued_.clear();
    in_use_ = false;
  }
};

/// Receive message context (rcv_handle).
class RecvHandle {
 public:
  std::uint64_t msg_number() const { return msg_number_; }
  std::size_t slot() const { return slot_; }
  std::size_t msg_bytes() const { return msg_bytes_; }
  std::size_t chunk_count() const { return chunk_count_; }

 private:
  friend class Qp;
  std::uint64_t msg_number_{0};
  std::size_t slot_{0};
  std::uint32_t generation_{0};
  std::size_t msg_bytes_{0};
  std::size_t chunk_count_{0};
  const verbs::MemoryRegion* mr_{nullptr};
  double posted_at_s_{-1.0};  // recv_post sim time (completion latency)
  bool in_use_{false};
};

/// Receive-side events fired from inside the backend (the event-driven
/// equivalent of busy-polling the bitmap; see cq.hpp::set_notify).
struct RecvEvent {
  enum class Type { kChunkCompleted, kMessageCompleted } type;
  RecvHandle* handle;
  std::uint32_t chunk_index;  // valid for kChunkCompleted
};

struct SdrQpStats {
  std::uint64_t cts_sent{0};
  std::uint64_t cts_received{0};
  std::uint64_t data_packets_sent{0};
  std::uint64_t completions_processed{0};
  std::uint64_t completions_discarded{0};  // stale generation / inactive slot
  std::uint64_t sends_queued_waiting_cts{0};
  // UD-transport staging costs (paper §2.3): packets copied from runtime
  // staging buffers into the user buffer, and bytes so copied.
  std::uint64_t staged_packets{0};
  std::uint64_t staged_bytes{0};
};

/// The SDR queue pair: order-based matched, bitmap-completing unreliable
/// messaging endpoint.
class Qp {
 public:
  Qp(Context& ctx, const QpAttr& attr);
  ~Qp();
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  const QpAttr& attr() const { return attr_; }

  /// Table 1: qp_info_get.
  QpInfo info() const;

  /// Table 1: qp_connect.
  Status connect(const QpInfo& remote);
  bool connected() const { return connected_; }

  // ---- send path ----
  Status send_stream_start(std::uint32_t user_imm, bool has_user_imm,
                           SendHandle** handle);
  Status send_stream_continue(SendHandle* handle, const std::uint8_t* data,
                              std::size_t remote_offset, std::size_t length);
  Status send_stream_end(SendHandle* handle);
  /// One-shot: start + continue(offset 0) + end in a single call.
  Status send_post(const std::uint8_t* data, std::size_t length,
                   std::uint32_t user_imm, bool has_user_imm,
                   SendHandle** handle);
  /// kOk once all injected packets have left the NIC and the stream has
  /// ended; kNotReady otherwise. A completed handle is recycled.
  Status send_poll(SendHandle* handle);
  /// Release a send whose injection never started (its CTS never arrived
  /// and the message completed by other means, e.g. EC parity recovery).
  /// Drops the queued ops and recycles the handle. kFailedPrecondition if
  /// packets have already been handed to the NIC — such a send must drain
  /// through send_poll instead.
  Status send_abort(SendHandle* handle);

  // ---- receive path ----
  Status recv_post(std::uint8_t* addr, std::size_t length,
                   const verbs::MemoryRegion* mr, RecvHandle** handle);
  /// Table 1: recv_bitmap_get — the frontend chunk bitmap for this receive.
  Status recv_bitmap_get(RecvHandle* handle, const AtomicBitmap** bitmap) const;
  /// Table 1: recv_imm_get — reassembled user immediate, kNotReady until
  /// every fragment slot has been observed.
  Status recv_imm_get(RecvHandle* handle, std::uint32_t* imm) const;
  /// Table 1: recv_complete — release the receive; arms late-packet
  /// protection (NULL-key rebind + generation bump on slot reuse).
  Status recv_complete(RecvHandle* handle);

  /// Re-send the CTS for a posted receive. The CTS is a single unreliable
  /// datagram; if it is lost the sender never starts injecting and the
  /// message wedges. Reliability layers that arm a CTS-retry timer call
  /// this until the first data chunk lands. Duplicate CTSes are ignored by
  /// the sender (the handle is already cts_ready).
  Status resend_cts(RecvHandle* handle);

  /// Convenience for reliability layers: has every chunk arrived?
  bool recv_done(const RecvHandle* handle) const;
  std::uint64_t recv_packets(const RecvHandle* handle) const;

  /// Event-driven notification for simulator-resident reliability layers.
  void set_recv_event_handler(std::function<void(const RecvEvent&)> fn) {
    recv_event_handler_ = std::move(fn);
  }
  /// Fired when a CTS arrives for a message the app may not have started.
  void set_cts_handler(std::function<void(std::uint64_t msg_number)> fn) {
    cts_handler_ = std::move(fn);
  }

  const SdrQpStats& stats() const { return stats_; }
  MessageTable& message_table() { return table_; }
  Context& context() { return ctx_; }

  /// Stable connection id for flight-recorder records (the control QP
  /// number; 0 before connect).
  verbs::QpNumber control_qp_num() const;

 private:
  struct CtsMessage {
    std::uint64_t msg_number;
    std::uint32_t slot;
    std::uint32_t generation;
    std::uint64_t msg_bytes;
  };

  verbs::Qp* data_qp(std::uint32_t generation, std::size_t channel) {
    return data_qps_[generation * attr_.channels + channel];
  }
  std::uint32_t generation_of(std::uint64_t msg_number) const {
    return static_cast<std::uint32_t>((msg_number / attr_.max_inflight) %
                                      attr_.generations);
  }
  std::size_t slot_of(std::uint64_t msg_number) const {
    return static_cast<std::size_t>(msg_number % attr_.max_inflight);
  }

  void send_cts(const CtsMessage& cts);
  void on_control_cqe();
  void on_data_cqe(std::size_t qp_index);
  void on_send_cqe();
  void inject(SendHandle* handle, const std::uint8_t* data,
              std::size_t remote_offset, std::size_t length);
  void flush_queued(SendHandle* handle);
  void register_metrics();
  SimTime sim_now() const;

  Context& ctx_;
  QpAttr attr_;
  ImmCodec codec_;
  MessageTable table_;

  bool connected_{false};
  verbs::NicId remote_nic_{0};
  verbs::QpNumber remote_control_qp_{0};
  verbs::MemoryKey remote_root_key_{0};
  std::vector<verbs::QpNumber> remote_data_qps_;  // UD datagram targets

  // Internal verbs resources.
  verbs::Qp* control_qp_{nullptr};
  std::unique_ptr<verbs::CompletionQueue> control_cq_;
  std::unique_ptr<verbs::CompletionQueue> send_cq_;
  std::vector<verbs::Qp*> data_qps_;  // [gen * channels + chan]
  std::vector<std::unique_ptr<verbs::CompletionQueue>> data_cqs_;
  verbs::IndirectMkeyTable* root_table_{nullptr};
  const verbs::MemoryRegion* null_mr_{nullptr};

  // Order-based matching state. A CTS that outruns its send_stream_start
  // parks in the per-slot pending array: order-based matching means at most
  // one CTS can be pending per slot (the receiver cannot post msg
  // n+max_inflight until msg n completed, which required the sender to have
  // consumed CTS n), so no map is needed.
  std::uint64_t send_counter_{0};
  std::uint64_t recv_counter_{0};
  struct PendingCts {
    CtsMessage msg{};
    bool valid{false};
  };
  std::vector<PendingCts> cts_pending_;

  // Handles: one per message-table slot (bounded in-flight). The handle
  // for in-flight send msg_number is send_handles_[slot_of(msg_number)];
  // CTS arrival re-derives it the same way. Stored by value (sized once in
  // the constructor, never resized) so handle addresses stay stable without
  // one heap node per slot.
  std::vector<SendHandle> send_handles_;
  std::vector<RecvHandle> recv_handles_;
  std::size_t active_send_count_{0};

  // Control-plane receive buffers for CTS datagrams: one flat allocation,
  // slot i at [i * sizeof(CtsMessage)].
  std::vector<std::uint8_t> cts_buffers_;

  // UD transport: per-data-QP staging datagram buffers, one flat
  // allocation per QP; wr_id of a staging recv is its buffer index,
  // buffer b at [b * mtu].
  std::vector<std::vector<std::uint8_t>> ud_staging_;

  std::function<void(const RecvEvent&)> recv_event_handler_;
  std::function<void(std::uint64_t)> cts_handler_;
  SdrQpStats stats_;
  // Tail-latency rollups (Figs 10/13): recv_post -> chunk-bit / message
  // completion latency, exported per trial via the registry flattening.
  telemetry::HistogramHandle chunk_completion_hist_;
  telemetry::HistogramHandle msg_completion_hist_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

/// SDR device context: wraps a software NIC, owns QPs and registered memory
/// (Table 1: context_create / mr_reg).
/// Lifetime: contexts (and their QPs) unregister verbs resources from the
/// NIC on destruction — the NIC must outlive every Context created on it.
class Context {
 public:
  Context(verbs::Nic& nic, DevAttr dev_attr);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  verbs::Nic& nic() { return nic_; }
  const DevAttr& dev_attr() const { return dev_attr_; }

  Qp* create_qp(const QpAttr& attr);
  const verbs::MemoryRegion* mr_reg(void* addr, std::size_t length);

 private:
  verbs::Nic& nic_;
  DevAttr dev_attr_;
  std::vector<std::unique_ptr<Qp>> qps_;
};

}  // namespace sdr::core
