// SDR queue-pair and context configuration (paper §3.2.2).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "sdr/imm_codec.hpp"

namespace sdr::core {

/// Backend transport for the SDR data path (paper §2.3/§3.2.1).
///  * kUc — zero-copy: single-packet unreliable Writes land directly in the
///    user buffer through the root indirect memory key (the default).
///  * kUd — two-sided datagrams: packets land in runtime-owned staging
///    buffers and are copied to the user buffer by the backend ("it comes
///    at the cost of intermediate packet staging in the host CPU").
enum class Transport : std::uint8_t { kUc, kUd };

struct QpAttr {
  /// M: maximum message size; message i targets root-key offsets
  /// [i*M, i*M + M). Must be a multiple of chunk_size.
  std::size_t max_msg_size{16 * MiB};

  /// Receive bitmap chunk size — one frontend bitmap bit per chunk. Must be
  /// a multiple of the MTU (paper §3.1.1).
  std::size_t chunk_size{64 * KiB};

  std::size_t mtu{4096};

  /// In-flight message descriptors (message table slots). Bounded by
  /// 2^msg_id_bits of the immediate layout.
  std::size_t max_inflight{1024};

  /// Message-ID generations: internal QP sets cycled per slot reuse for
  /// late-packet protection (paper §3.3.2).
  std::size_t generations{4};

  /// Parallel channels per generation (paper §3.4.1 multi-channel design).
  std::size_t channels{1};

  Transport transport{Transport::kUc};

  /// Staging datagram buffers pre-posted per data QP (kUd only).
  std::size_t ud_staging_depth{256};

  ImmLayout imm{kDefaultImmLayout};

  std::size_t packets_per_chunk() const { return chunk_size / mtu; }
  std::size_t max_packets_per_msg() const { return max_msg_size / mtu; }
  std::size_t max_chunks_per_msg() const { return max_msg_size / chunk_size; }

  bool valid() const {
    return mtu > 0 && chunk_size % mtu == 0 && chunk_size >= mtu &&
           max_msg_size % chunk_size == 0 && max_msg_size >= chunk_size &&
           max_inflight >= 1 && max_inflight <= imm.max_messages() &&
           generations >= 1 && channels >= 1 && imm.valid() &&
           max_packets_per_msg() <= imm.max_packets();
  }
};

struct DevAttr {
  /// DPA receive worker threads available to this context (paper §3.4).
  std::size_t dpa_threads{16};
};

}  // namespace sdr::core
