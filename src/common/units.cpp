#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace sdr {
namespace {

std::string trim_number(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (v >= 1024.0 && idx + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++idx;
  }
  return trim_number(v) + " " + kSuffix[idx];
}

std::string format_rate(double bits_per_second) {
  static constexpr std::array<const char*, 5> kSuffix = {
      "bit/s", "Kbit/s", "Mbit/s", "Gbit/s", "Tbit/s"};
  double v = bits_per_second;
  std::size_t idx = 0;
  while (v >= 1000.0 && idx + 1 < kSuffix.size()) {
    v /= 1000.0;
    ++idx;
  }
  return trim_number(v) + " " + kSuffix[idx];
}

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  char buf[64];
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace sdr
