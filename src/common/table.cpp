#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sdr {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(FILE* out) const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TextTable::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace sdr
