#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/units.hpp"

namespace sdr {

Histogram::Histogram(double min_value, double max_value,
                     std::size_t sub_buckets)
    : min_value_(min_value),
      max_value_(max_value),
      sub_buckets_(sub_buckets),
      log_min_(std::log(min_value)),
      observed_min_(std::numeric_limits<double>::infinity()),
      observed_max_(-std::numeric_limits<double>::infinity()) {
  // Each decade of dynamic range is split into sub_buckets_ log-spaced
  // buckets; total bucket count covers [min_value, max_value].
  const double decades = std::log10(max_value / min_value);
  const std::size_t total =
      static_cast<std::size_t>(std::ceil(decades * static_cast<double>(sub_buckets_))) + 2;
  log_base_ = std::log(10.0) / static_cast<double>(sub_buckets_);
  buckets_.assign(total, 0);
}

std::size_t Histogram::bucket_index(double value) const {
  if (value <= min_value_) return 0;
  if (value >= max_value_) return buckets_.size() - 1;
  const double idx = (std::log(value) - log_min_) / log_base_;
  const auto i = static_cast<std::size_t>(idx) + 1;
  return std::min(i, buckets_.size() - 1);
}

double Histogram::bucket_low(std::size_t index) const {
  if (index == 0) return 0.0;
  return std::exp(log_min_ + static_cast<double>(index - 1) * log_base_);
}

double Histogram::bucket_high(std::size_t index) const {
  if (index + 1 >= buckets_.size()) return max_value_;
  return std::exp(log_min_ + static_cast<double>(index) * log_base_);
}

void Histogram::record(double value) { record_n(value, 1); }

void Histogram::record_n(double value, std::uint64_t n) {
  if (n == 0) return;
  buckets_[bucket_index(value)] += n;
  count_ += n;
  const double dn = static_cast<double>(n);
  sum_ += value * dn;
  sum_sq_ += value * value * dn;
  observed_min_ = std::min(observed_min_, value);
  observed_max_ = std::max(observed_max_, value);
}

double Histogram::min() const { return count_ ? observed_min_ : 0.0; }
double Histogram::max() const { return count_ ? observed_max_ : 0.0; }

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
  return std::sqrt(var);
}

double Histogram::percentile(double pct) const {
  if (count_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  // 99.9/100.0 rounds UP in binary (0.99900000000000011...), so a bare
  // ceil(pct/100 * count) lands on rank 1000 of 1000 samples instead of
  // 999 — p99.9 silently became max on sparse histograms. Shave one ulp's
  // worth before ceiling so exact-rank products stay at their exact rank.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(pct / 100.0 * static_cast<double>(count_) - 1e-9)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Midpoint of the bucket (geometric mean keeps relative error small),
      // clamped to observed extremes so tiny sample sets stay exact-ish.
      const double low = bucket_low(i);
      const double high = bucket_high(i);
      const double mid = low > 0.0 ? std::sqrt(low * high) : high * 0.5;
      return std::clamp(mid, observed_min_, observed_max_);
    }
  }
  return observed_max_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  observed_min_ = std::numeric_limits<double>::infinity();
  observed_max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size() && i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  observed_min_ = std::min(observed_min_, other.observed_min_);
  observed_max_ = std::max(observed_max_, other.observed_max_);
}

std::string Histogram::summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6g%s p50=%.6g%s p99=%.6g%s p99.9=%.6g%s "
                "max=%.6g%s",
                static_cast<unsigned long long>(count_), mean(), unit.c_str(),
                percentile(50), unit.c_str(), percentile(99), unit.c_str(),
                percentile(99.9), unit.c_str(), max(), unit.c_str());
  return buf;
}

}  // namespace sdr
