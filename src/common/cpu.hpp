// Runtime CPU feature detection for the SIMD kernel dispatchers.
//
// One CPUID probe at first use, cached for the process lifetime. Detection
// is deliberately conservative: a vector extension is reported only when
// both the CPU advertises it AND the OS saves the corresponding register
// state across context switches (OSXSAVE + XCR0 bits) — executing AVX on a
// kernel that does not preserve ymm state corrupts data silently.
#pragma once

#include <string>

namespace sdr::common {

struct CpuFeatures {
  bool ssse3{false};    // pshufb — the 16-byte split-table GF kernels
  bool avx2{false};     // vpshufb across 32 lanes
  bool avx512bw{false}; // 64-lane byte shuffles (implies avx512f)
  bool gfni{false};     // GF2P8AFFINEQB (usable with the avx512 path)
};

/// Cached process-wide probe (CPUID + XGETBV on x86; all-false elsewhere).
const CpuFeatures& cpu_features();

/// "ssse3=1 avx2=1 avx512bw=0 gfni=0" — for logs and the cpu probe tool.
std::string cpu_feature_summary();

}  // namespace sdr::common
