// ASCII table printer used by the bench harness to emit paper-style rows.
//
// Each bench binary regenerates one figure/table of the paper; emitting the
// series as aligned text tables (plus machine-readable CSV) makes visual
// shape comparison against the paper straightforward.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sdr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment to a string.
  std::string render() const;

  /// Render as CSV (headers + rows) — consumed by plotting scripts.
  std::string render_csv() const;

  void print(FILE* out = stdout) const;

  /// Convenience cell formatters.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdr
