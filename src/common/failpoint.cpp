#include "common/failpoint.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace sdr::common {

namespace detail {
thread_local int tl_failpoint_count = 0;
}  // namespace detail

namespace {
struct FailpointState {
  bool armed{false};
  std::uint64_t hits{0};
};

std::unordered_map<std::string, FailpointState>& table() {
  thread_local std::unordered_map<std::string, FailpointState> t;
  return t;
}
}  // namespace

void set_failpoint(std::string_view name, bool armed) {
  FailpointState& st = table()[std::string(name)];
  if (st.armed == armed) return;
  st.armed = armed;
  detail::tl_failpoint_count += armed ? 1 : -1;
  if (armed) st.hits = 0;
}

bool failpoint_armed(std::string_view name) {
  auto& t = table();
  const auto it = t.find(std::string(name));
  if (it == t.end() || !it->second.armed) return false;
  ++it->second.hits;
  return true;
}

std::uint64_t failpoint_hits(std::string_view name) {
  auto& t = table();
  const auto it = t.find(std::string(name));
  return it == t.end() ? 0 : it->second.hits;
}

}  // namespace sdr::common
