// Minimal leveled logging.
//
// The data path never logs (logging in a packet-rate loop would invalidate
// every measurement); logging is for control-path events, test diagnostics
// and bench harness progress.
#pragma once

#include <cstdio>
#include <string>

namespace sdr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kWarn so
/// tests and benches stay quiet unless they opt in, overridable at startup
/// via the SDR_LOG_LEVEL environment variable (debug|info|warn|error).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg);

namespace detail {
std::string log_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define SDR_LOG(level, ...)                                              \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::sdr::log_level())) \
      ::sdr::log_message(level, __FILE__, __LINE__,                      \
                         ::sdr::detail::log_format(__VA_ARGS__));        \
  } while (0)

#define SDR_DEBUG(...) SDR_LOG(::sdr::LogLevel::kDebug, __VA_ARGS__)
#define SDR_INFO(...) SDR_LOG(::sdr::LogLevel::kInfo, __VA_ARGS__)
#define SDR_WARN(...) SDR_LOG(::sdr::LogLevel::kWarn, __VA_ARGS__)
#define SDR_ERROR(...) SDR_LOG(::sdr::LogLevel::kError, __VA_ARGS__)

}  // namespace sdr
