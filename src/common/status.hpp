// Error handling for the SDR SDK.
//
// The public SDR API mirrors the paper's C-style int-returning calls
// (Table 1); internally we carry a Status so call sites can attach context.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sdr {

enum class StatusCode : std::int32_t {
  kOk = 0,
  kInvalidArgument = -1,
  kResourceExhausted = -2,   // e.g. message table full, CQ overrun
  kNotConnected = -3,        // QP used before qp_connect()
  kNotReady = -4,            // poll: completion not available yet
  kOutOfRange = -5,          // offset/length outside registered buffer
  kAlreadyExists = -6,
  kNotFound = -7,
  kFailedPrecondition = -8,  // API misuse (e.g. continue after end)
  kAborted = -9,             // message dropped / receiver gave up
  kUnimplemented = -10,
  kInternal = -11,
};

std::string_view to_string(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// The integer the C-style facade returns: 0 on success, negative errno-
  /// style code on failure (matching the paper's `int` API convention).
  std::int32_t to_int() const { return static_cast<std::int32_t>(code_); }

 private:
  StatusCode code_{StatusCode::kOk};
  std::string message_;
};

inline std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotConnected: return "NOT_CONNECTED";
    case StatusCode::kNotReady: return "NOT_READY";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  os << to_string(s.code());
  if (!s.message().empty()) os << ": " << s.message();
  return os;
}

/// Minimal expected-like wrapper for fallible constructors/factories.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT
  Result(Status status) : status_(std::move(status)), ok_(false) {}  // NOLINT

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Status& status() const { return status_; }
  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  T value_{};
  Status status_{};
  bool ok_{false};
};

}  // namespace sdr
