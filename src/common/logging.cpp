#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace sdr {
namespace {

/// Initial level from the SDR_LOG_LEVEL environment variable
/// (debug/info/warn/error, case-insensitive); kWarn when unset or
/// unrecognised. Evaluated once, before main, so even static-init-time
/// logging honours it.
int initial_level() {
  const char* env = std::getenv("SDR_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
  std::string v;
  for (const char* p = env; *p != '\0'; ++p) {
    v.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (v == "debug") return static_cast<int>(LogLevel::kDebug);
  if (v == "info") return static_cast<int>(LogLevel::kInfo);
  if (v == "warn" || v == "warning") return static_cast<int>(LogLevel::kWarn);
  if (v == "error") return static_cast<int>(LogLevel::kError);
  std::fprintf(stderr,
               "[WARN  logging] unrecognised SDR_LOG_LEVEL=\"%s\" "
               "(want debug|info|warn|error); keeping warn\n", env);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line,
               msg.c_str());
}

namespace detail {

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) {
    va_end(args);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  va_end(args);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace detail
}  // namespace sdr
