#include "common/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <vector>

namespace sdr {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), base, line,
               msg.c_str());
}

namespace detail {

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (needed <= 0) {
    va_end(args);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args);
  va_end(args);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace detail
}  // namespace sdr
