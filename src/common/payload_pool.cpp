#include "common/payload_pool.hpp"

#include <algorithm>
#include <cstring>

namespace sdr::common {

namespace {
// Most pooled payloads are control-path datagrams well under one MTU;
// rounding capacities up lets the free list satisfy any request without
// per-size buckets.
constexpr std::uint32_t kMinSlotBytes = 4096;
}  // namespace

std::uint32_t PayloadPool::acquire(const std::uint8_t* src,
                                   std::uint32_t len) {
  std::uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
    if (slots_[index].capacity < len) {
      slots_[index].bytes.reset(new std::uint8_t[len]);
      slots_[index].capacity = len;
    }
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    const std::uint32_t cap = std::max(len, kMinSlotBytes);
    slots_[index].bytes.reset(new std::uint8_t[cap]);
    slots_[index].capacity = cap;
  }
  slots_[index].refs = 1;
  slots_[index].next_free = kNil;
  if (len > 0 && src != nullptr) {
    std::memcpy(slots_[index].bytes.get(), src, len);
  }
  ++live_;
  return index;
}

PayloadPool& payload_pool() {
  thread_local PayloadPool pool;
  return pool;
}

PayloadRef PayloadRef::pooled_copy(const std::uint8_t* data,
                                   std::size_t len) {
  PayloadRef ref;
  if (len == 0) return ref;
  PayloadPool& pool = payload_pool();
  ref.slot_ = pool.acquire(data, static_cast<std::uint32_t>(len));
  ref.pool_ = &pool;
  ref.data_ = pool.data(ref.slot_);
  ref.len_ = static_cast<std::uint32_t>(len);
  return ref;
}

}  // namespace sdr::common
