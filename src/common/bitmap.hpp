// Dense bitmaps used throughout the SDR stack.
//
// Two variants share one word-level layout:
//  * Bitmap        — single-threaded, used by frontends, models, tests.
//  * AtomicBitmap  — lock-free concurrent set/test, used by DPA workers that
//                    update per-packet bitmaps from multiple threads
//                    (paper §3.4.2: "atomically update the corresponding
//                    chunk in the per-packet bitmap").
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdr {

/// Number of 64-bit words required to hold `bits` bits.
constexpr std::size_t bitmap_words(std::size_t bits) {
  return (bits + 63) / 64;
}

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t bits)
      : bits_(bits), words_(bitmap_words(bits), 0) {}

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_.assign(bitmap_words(bits), 0);
  }

  void set(std::size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void clear(std::size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear_all() { words_.assign(words_.size(), 0); }
  void set_all() {
    words_.assign(words_.size(), ~0ULL);
    mask_tail();
  }

  /// Number of set bits.
  std::size_t popcount() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  bool all_set() const { return popcount() == bits_; }
  bool none_set() const {
    for (std::uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Index of the first zero bit, or size() if all bits are set. Used by
  /// SR receivers to compute the cumulative ACK point.
  std::size_t first_zero() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      const std::uint64_t inverted = ~words_[wi];
      if (inverted != 0) {
        const std::size_t bit =
            (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(inverted));
        return bit < bits_ ? bit : bits_;
      }
    }
    return bits_;
  }

  /// Index of the first set bit, or size() if none. Used by EC receivers to
  /// arm the fallback timeout when "the first bit is observed".
  std::size_t first_set() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      if (words_[wi] != 0) {
        return (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(words_[wi]));
      }
    }
    return bits_;
  }

  /// Append the zero-bit indices within [begin, end) to `out`.
  /// Used by SR receivers/EC decoders to enumerate missing chunks.
  /// Word scan: skips fully-set words in one compare instead of 64 tests.
  void collect_zeros(std::size_t begin, std::size_t end,
                     std::vector<std::size_t>& out) const {
    end = std::min(end, bits_);
    std::size_t i = begin;
    while (i < end) {
      const std::size_t wi = i >> 6;
      const std::size_t word_base = wi << 6;
      std::uint64_t missing = ~words_[wi] & (~0ULL << (i & 63));
      while (missing != 0) {
        const std::size_t bit =
            word_base + static_cast<std::size_t>(__builtin_ctzll(missing));
        if (bit >= end) break;
        out.push_back(bit);
        missing &= missing - 1;
      }
      i = word_base + 64;
    }
  }

  /// Raw word access — the SDR API hands the reliability layer a pointer to
  /// the chunk bitmap (recv_bitmap_get), so the words are the wire/ABI form.
  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* words() { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

 private:
  void mask_tail() {
    const std::size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ULL << tail) - 1;
    }
  }

  std::size_t bits_{0};
  std::vector<std::uint64_t> words_;
};

/// Concurrent bitmap with the semantics DPA workers need: `set_and_check`
/// atomically sets a bit and reports whether this call was the one that set
/// it (so exactly one worker performs the chunk-coalescing follow-up).
class AtomicBitmap {
 public:
  AtomicBitmap() = default;
  explicit AtomicBitmap(std::size_t bits) { resize(bits); }

  void resize(std::size_t bits) {
    bits_ = bits;
    words_ = std::vector<std::atomic<std::uint64_t>>(bitmap_words(bits));
    clear_all();
  }

  std::size_t size() const { return bits_; }

  void clear_all() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Atomically set bit i; returns true iff the bit transitioned 0 -> 1.
  bool set_and_check(std::size_t i) {
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

  bool test(std::size_t i) const {
    return (words_[i >> 6].load(std::memory_order_acquire) >> (i & 63)) & 1ULL;
  }

  std::size_t popcount() const {
    std::size_t n = 0;
    for (const auto& w : words_)
      n += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_acquire)));
    return n;
  }

  /// True iff all `count` bits in the word-aligned range starting at
  /// `first` are set. `first` must be a multiple of 64 or the range must
  /// stay within one word; DPA chunk coalescing always passes packet ranges
  /// of a chunk, which the config layer aligns accordingly.
  bool range_all_set(std::size_t first, std::size_t count) const {
    std::size_t i = first;
    const std::size_t end = first + count;
    while (i < end) {
      const std::size_t word = i >> 6;
      const std::size_t bit = i & 63;
      const std::size_t span = std::min<std::size_t>(64 - bit, end - i);
      const std::uint64_t mask =
          span == 64 ? ~0ULL : (((1ULL << span) - 1) << bit);
      if ((words_[word].load(std::memory_order_acquire) & mask) != mask)
        return false;
      i += span;
    }
    return true;
  }

  /// Raw word access for consumers that poll the bitmap with plain loads
  /// (host software reading DPA-updated memory). Word count follows
  /// bitmap_words(size()).
  const std::atomic<std::uint64_t>* word_data() const { return words_.data(); }
  std::uint64_t load_word(std::size_t w) const {
    return words_[w].load(std::memory_order_acquire);
  }
  std::size_t word_count() const { return words_.size(); }

  /// First zero bit among the low `limit` bits (cumulative-ACK helper),
  /// or `limit` if they are all set. Word scan: the SR receiver calls this
  /// on every ACK/NACK construction, so the per-bit version was O(chunks)
  /// atomic loads per control message.
  std::size_t first_zero(std::size_t limit) const {
    const std::size_t nwords = bitmap_words(limit);
    for (std::size_t wi = 0; wi < nwords; ++wi) {
      const std::uint64_t inverted =
          ~words_[wi].load(std::memory_order_acquire);
      if (inverted != 0) {
        const std::size_t bit =
            (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(inverted));
        return bit < limit ? bit : limit;
      }
    }
    return limit;
  }

 private:
  std::size_t bits_{0};
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace sdr
