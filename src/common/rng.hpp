// Deterministic, seedable random number generation.
//
// Every stochastic component in the repository (drop models, completion-time
// samplers, workload generators) draws from an explicitly seeded Xoshiro256**
// generator so that each experiment is exactly reproducible from the seed
// printed by the bench harness. We do not use std::mt19937 because its state
// is large and its distributions are not portable across standard library
// implementations; the samplers below are self-contained.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace sdr {

/// SplitMix64 output function (the finalizer applied to each state word).
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The additive constant of the SplitMix64 stream (golden-ratio increment).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64: used only to expand a 64-bit seed into Xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += kSplitMix64Gamma;
  return splitmix64_mix(state);
}

/// Per-trial / per-stream seed derivation: element `index + 1` of the
/// SplitMix64 stream seeded with `base_seed`, computed in O(1) by jumping
/// the state. Trials seeded with derive_seed(base, 0), derive_seed(base, 1),
/// ... get uncorrelated generators whose values depend only on (base, index)
/// — never on thread count, scheduling, or evaluation order. The sweep
/// engine (src/sweep/) relies on this for bit-identical parallel results.
constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                    std::uint64_t trial_index) {
  return splitmix64_mix(base_seed + (trial_index + 1) * kSplitMix64Gamma);
}

/// Xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5d6e38f4a12c9b07ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double next_double_open() {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Geometric distribution: number of Bernoulli(p) trials until the first
  /// success, support {1, 2, ...}. Matches the paper's Y_i ~ Geom(1-Pdrop)
  /// (number of transmissions needed for delivery). Uses inversion, which is
  /// exact and O(1) for any p.
  std::uint64_t geometric(double p_success) {
    if (p_success >= 1.0) return 1;
    if (p_success <= 0.0) return std::numeric_limits<std::uint64_t>::max();
    const double u = next_double_open();
    const double v = std::ceil(std::log(u) / std::log1p(-p_success));
    if (v >= 9.2e18) return std::numeric_limits<std::uint64_t>::max();
    return v < 1.0 ? 1 : static_cast<std::uint64_t>(v);
  }

  /// Exponential distribution with rate lambda (mean 1/lambda).
  double exponential(double lambda) {
    return -std::log(next_double_open()) / lambda;
  }

  /// Standard normal via Box-Muller (the spare draw is discarded: the cost
  /// is irrelevant compared to the surrounding sampling loops, and keeping
  /// the sampler stateless simplifies reproducibility reasoning).
  double normal() {
    const double u1 = next_double_open();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Binomial(n, p) sampler.
  ///
  /// Used by the completion-time models to draw "how many of the M chunks
  /// were dropped at least k times" without iterating over every chunk. For
  /// small mean (n*p <= 32) we walk geometric inter-success gaps, which is
  /// exact and O(np); for a large mean we use the normal approximation with
  /// continuity correction — at that scale the relative error is far below
  /// the Monte-Carlo noise of the surrounding experiment.
  std::uint64_t binomial(std::uint64_t n, double p) {
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    const double mean = static_cast<double>(n) * p;
    if (mean <= 32.0) {
      // Count successes by jumping between them with geometric gaps.
      std::uint64_t successes = 0;
      std::uint64_t position = 0;
      while (true) {
        const std::uint64_t gap = geometric(p);  // trials up to next success
        if (gap > n - position) break;
        position += gap;
        ++successes;
        if (position >= n) break;
      }
      return successes;
    }
    const double stddev = std::sqrt(mean * (1.0 - p));
    const double draw = std::round(mean + stddev * normal());
    if (draw < 0.0) return 0;
    if (draw > static_cast<double>(n)) return n;
    return static_cast<std::uint64_t>(draw);
  }

  /// Maximum of `n` i.i.d. uniform draws over the integers {1, ..., m}.
  /// Sampled directly through the CDF P(max <= x) = (x/m)^n, avoiding the
  /// O(n) loop. Returns 0 when n == 0.
  std::uint64_t max_of_uniform(std::uint64_t n, std::uint64_t m) {
    if (n == 0 || m == 0) return 0;
    const double u = next_double_open();
    const double x =
        std::ceil(static_cast<double>(m) *
                  std::pow(u, 1.0 / static_cast<double>(n)));
    if (x < 1.0) return 1;
    if (x > static_cast<double>(m)) return m;
    return static_cast<std::uint64_t>(x);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

/// Zipf(s) sampler over ranks {1, ..., n}: P(rank k) proportional to k^-s.
/// The fleet traffic model uses it for message-size ranks — datacenter
/// traffic is dominated by small ops with a heavy bulk tail (Storm-style
/// mixes), which a power law captures with one parameter.
///
/// The CDF is precomputed once and sampled by binary search, so draws are
/// exact (no rejection loop whose iteration count could depend on float
/// rounding) and consume exactly one generator value each — the property
/// the pinned-vector determinism tests lock in, mirroring derive_seed.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n > 0 ? n : 1) {
    const std::size_t ranks = cdf_.size();
    double total = 0.0;
    for (std::size_t k = 1; k <= ranks; ++k) {
      total += std::pow(static_cast<double>(k), -s);
      cdf_[k - 1] = total;
    }
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;  // guard against rounding shortfall at the tail
  }

  std::size_t ranks() const { return cdf_.size(); }

  /// Probability of drawing `rank` (1-based); 0 outside [1, ranks()].
  double pmf(std::size_t rank) const {
    if (rank < 1 || rank > cdf_.size()) return 0.0;
    return rank == 1 ? cdf_[0] : cdf_[rank - 1] - cdf_[rank - 2];
  }

  /// Draw a rank in [1, ranks()]; rank 1 is the most probable.
  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo + 1;
  }

 private:
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

/// Homogeneous Poisson arrival process: successive calls return strictly
/// increasing absolute arrival times whose gaps are Exponential(rate). One
/// generator value per arrival (the inversion sampler), so interleaving
/// several processes over derived seeds stays reproducible.
class PoissonProcess {
 public:
  explicit PoissonProcess(double rate_per_s, double start_s = 0.0)
      : rate_(rate_per_s), last_(start_s) {}

  double rate() const { return rate_; }
  double last() const { return last_; }

  double next(Rng& rng) {
    last_ += rng.exponential(rate_);
    return last_;
  }

 private:
  double rate_;
  double last_;
};

/// Trace-driven arrival process: replays a recorded schedule of absolute
/// arrival offsets (seconds). When the trace is exhausted the schedule
/// wraps, shifted by the trace span each cycle, so a short recorded burst
/// can drive an arbitrarily long run while preserving its temporal shape.
/// Fully deterministic — no generator draws.
class TraceArrivals {
 public:
  /// `times_s` must be non-decreasing and non-empty; `span_s` is the wrap
  /// period (defaults to the last timestamp, i.e. back-to-back replay).
  explicit TraceArrivals(std::vector<double> times_s, double span_s = 0.0)
      : times_(std::move(times_s)),
        span_(span_s > 0.0 ? span_s : (times_.empty() ? 1.0 : times_.back())) {
    if (times_.empty()) times_.push_back(0.0);
    if (span_ <= 0.0) span_ = 1.0;  // all-zero trace: degenerate but finite
  }

  std::size_t size() const { return times_.size(); }
  double span() const { return span_; }

  double next() {
    const double t =
        static_cast<double>(cycle_) * span_ + times_[index_];
    if (++index_ == times_.size()) {
      index_ = 0;
      ++cycle_;
    }
    return t;
  }

 private:
  std::vector<double> times_;
  double span_;
  std::size_t index_{0};
  std::uint64_t cycle_{0};
};

}  // namespace sdr
