// Named failpoints: test-armed fault injection sites compiled into the
// production code at (near) zero cost.
//
// A failpoint is a named boolean the conformance harness (src/check/) can
// arm to make a protocol misbehave in a precisely chosen way — e.g.
// "sr.ack_cumulative_off_by_one" corrupts the SR receiver's cumulative ACK
// by one chunk. The harness uses this to prove it detects and shrinks an
// injected protocol bug; production code pays one thread-local integer load
// per site while no failpoint is armed.
//
// Failpoints are thread-local on purpose: parallel sweep workers
// (src/sweep/) run trials concurrently, and an armed failpoint must never
// leak into a sibling trial. Always arm through ScopedFailpoint so worker
// threads are restored on scope exit.
#pragma once

#include <cstdint>
#include <string_view>

namespace sdr::common {

namespace detail {
// Fast-path gate: number of armed failpoints on this thread. The
// SDR_FAILPOINT macro reads only this when nothing is armed.
extern thread_local int tl_failpoint_count;
}  // namespace detail

/// Arm/disarm `name` on the calling thread. Prefer ScopedFailpoint.
void set_failpoint(std::string_view name, bool armed);

/// True when `name` is armed on the calling thread. Call through the
/// SDR_FAILPOINT macro so the disarmed fast path stays a single load.
bool failpoint_armed(std::string_view name);

/// Number of times `name` fired (SDR_FAILPOINT evaluated true) on this
/// thread since it was last armed.
std::uint64_t failpoint_hits(std::string_view name);

/// RAII guard: arms `name` for the guard's lifetime on this thread.
class ScopedFailpoint {
 public:
  explicit ScopedFailpoint(std::string_view name) : name_(name) {
    set_failpoint(name_, true);
  }
  ~ScopedFailpoint() { set_failpoint(name_, false); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string_view name_;
};

}  // namespace sdr::common

/// Use at the injection site:
///   if (SDR_FAILPOINT("sr.ack_cumulative_off_by_one")) { ...misbehave... }
#define SDR_FAILPOINT(name)                        \
  (::sdr::common::detail::tl_failpoint_count > 0 && \
   ::sdr::common::failpoint_armed(name))
