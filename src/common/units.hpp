// Byte-size and bandwidth unit helpers shared across the stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sdr {

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

/// Bandwidths are expressed in bits per second throughout the code base
/// (the paper uses Gbit/s everywhere).
inline constexpr double Gbps = 1e9;
inline constexpr double Tbps = 1e12;

/// Seconds to serialize `bytes` onto a link of `bits_per_second`.
constexpr double injection_time_s(std::size_t bytes, double bits_per_second) {
  return static_cast<double>(bytes) * 8.0 / bits_per_second;
}

/// Bandwidth-delay product in bytes for a link (`bits_per_second`, `rtt_s`).
constexpr double bdp_bytes(double bits_per_second, double rtt_seconds) {
  return bits_per_second * rtt_seconds / 8.0;
}

/// Human-readable rendering of a byte count ("128 MiB", "4 KiB", "3.5 GiB").
std::string format_bytes(std::uint64_t bytes);

/// Human-readable rendering of a bit rate ("400 Gbit/s", "3.2 Tbit/s").
std::string format_rate(double bits_per_second);

/// Human-readable rendering of a duration in seconds ("25 ms", "3.2 us").
std::string format_seconds(double seconds);

}  // namespace sdr
