// Latency histogram with log-spaced buckets and percentile queries.
//
// The paper reports mean and 99.9th-percentile Write completion times
// (Figs 10, 13). For tail percentiles over millions of stochastic samples we
// keep an HdrHistogram-style log-linear bucketing: values are grouped into
// buckets whose width grows geometrically, giving a bounded relative error
// (default < 1%) at O(1) record cost and O(buckets) memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdr {

class Histogram {
 public:
  /// `min_value` and `max_value` bound the recordable range (values are
  /// clamped); `sub_buckets` controls relative precision (128 -> <1% error).
  explicit Histogram(double min_value = 1e-9, double max_value = 1e6,
                     std::size_t sub_buckets = 128);

  void record(double value);
  void record_n(double value, std::uint64_t count);

  std::uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double stddev() const;

  /// Percentile in [0, 100]; e.g. percentile(99.9).
  double percentile(double pct) const;
  double median() const { return percentile(50.0); }

  void clear();

  /// Merge another histogram with identical configuration.
  void merge(const Histogram& other);

  /// Multi-line textual summary used by bench binaries.
  std::string summary(const std::string& unit = "s") const;

 private:
  std::size_t bucket_index(double value) const;
  double bucket_low(std::size_t index) const;
  double bucket_high(std::size_t index) const;

  double min_value_;
  double max_value_;
  std::size_t sub_buckets_;
  double log_min_;
  double log_base_;  // log of per-sub-bucket growth factor
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_{0};
  double sum_{0.0};
  double sum_sq_{0.0};
  double observed_min_{0.0};
  double observed_max_{0.0};
};

}  // namespace sdr
