#include "common/cpu.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>
#endif

namespace sdr::common {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XCR0 via XGETBV: which register states the OS restores on context switch.
std::uint64_t xcr0() {
  std::uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  f.ssse3 = (ecx & bit_SSSE3) != 0;

  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  // AVX needs xmm+ymm state saved (XCR0 bits 1,2); AVX-512 additionally the
  // opmask/zmm-hi/zmm16-31 triplet (bits 5,6,7).
  const std::uint64_t x = osxsave ? xcr0() : 0;
  const bool os_avx = (x & 0x6) == 0x6;
  const bool os_avx512 = os_avx && (x & 0xE0) == 0xE0;

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) == 0) return f;
  f.avx2 = os_avx && (ebx7 & bit_AVX2) != 0;
  const bool avx512f = os_avx512 && (ebx7 & bit_AVX512F) != 0;
  f.avx512bw = avx512f && (ebx7 & bit_AVX512BW) != 0;
  f.gfni = (ecx7 & bit_GFNI) != 0;
  return f;
}

#else  // non-x86: every SIMD tier reports unsupported, scalar dispatch wins

CpuFeatures probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

std::string cpu_feature_summary() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  const auto add = [&out](const char* name, bool on) {
    if (!out.empty()) out += ' ';
    out += name;
    out += on ? "=1" : "=0";
  };
  add("ssse3", f.ssse3);
  add("avx2", f.avx2);
  add("avx512bw", f.avx512bw);
  add("gfni", f.gfni);
  return out;
}

}  // namespace sdr::common
