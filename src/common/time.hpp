// Strongly typed simulation time.
//
// All latency/throughput math in the SDR stack and its models is carried out
// in double-precision *seconds*; the discrete-event simulator uses integer
// nanoseconds to get exact event ordering. This header provides both views
// and the conversions between them.
#pragma once

#include <cstdint>
#include <limits>

namespace sdr {

/// Integer nanosecond timestamp used by the discrete-event simulator.
/// A strong type (rather than a raw int64_t) so that times and durations
/// cannot be silently mixed with packet counts or byte offsets.
struct SimTime {
  std::int64_t ns{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanoseconds) : ns(nanoseconds) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + 0.5)};
  }
  static constexpr SimTime from_micros(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e3 + 0.5)};
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e6 + 0.5)};
  }

  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
  constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns += o.ns;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns -= o.ns;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns * k}; }
};

/// Speed of light in fiber, used to convert inter-datacenter cable distance
/// into one-way propagation delay. The paper quotes ~6.5 ms of added RTT per
/// 1000 km, i.e. ~3.25 ms one-way per 1000 km -> ~2.0e8 m/s * (1/refractive
/// overhead); we use the standard 2/3 c fiber velocity which matches.
inline constexpr double kFiberMetersPerSecond = 2.0e8;

/// One-way propagation delay of `km` kilometers of fiber, in seconds.
constexpr double propagation_delay_s(double km) {
  return km * 1000.0 / kFiberMetersPerSecond;
}

/// Round-trip time of a link of `km` kilometers, in seconds.
constexpr double rtt_s(double km) { return 2.0 * propagation_delay_s(km); }

/// Inverse: cable distance (km) corresponding to a round-trip time.
constexpr double rtt_to_km(double rtt) {
  return rtt * kFiberMetersPerSecond / 2.0 / 1000.0;
}

}  // namespace sdr
