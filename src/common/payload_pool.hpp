// PayloadRef / PayloadPool: reference-counted payload slices for the
// simulated wire.
//
// The paper's data path never copies payload bytes per packet — the NIC
// DMAs straight out of the registered buffer (§3.4, Fig 16), the way
// NCCL's pre-registered rings and DPDK mbuf pools do. The reproduction's
// WirePacket used to carry a std::vector copy of every MTU's bytes; a
// PayloadRef instead points at the bytes and owns (at most) a pooled,
// free-listed slot:
//
//  * borrowed — points directly into caller memory (the registered MR for
//    RDMA Writes). No ownership; copying the ref is trivial. Valid for as
//    long as the verbs contract keeps the source buffer valid: until the
//    send completion (UC/UD injection-complete, RC final ACK), which by
//    construction outlasts every in-flight or unacked reference.
//  * pooled — one MTU-or-less of bytes copied into a pool slot at post
//    time (two-sided sends, whose source may be a stack temporary).
//    Refcounted: duplicating channels and RC retransmit queues bump the
//    count instead of copying bytes; the slot returns to the free list
//    when the last ref drops.
//
// The pool is thread-local (like the telemetry registry): packets never
// cross threads — each sweep trial owns a simulator on its own thread —
// so the refcounts stay plain integers.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

namespace sdr::common {

class PayloadPool {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Copy [src, src+len) into a slot (refcount 1) and return its index.
  std::uint32_t acquire(const std::uint8_t* src, std::uint32_t len);

  void add_ref(std::uint32_t slot) { ++slots_[slot].refs; }
  void release(std::uint32_t slot) {
    Slot& s = slots_[slot];
    if (--s.refs == 0) {
      s.next_free = free_head_;
      free_head_ = slot;
      --live_;
    }
  }

  const std::uint8_t* data(std::uint32_t slot) const {
    return slots_[slot].bytes.get();
  }

  /// Slots currently holding at least one reference.
  std::size_t live_slots() const { return live_; }
  /// Slots ever created (live + free-listed); growth stops in steady state.
  std::size_t total_slots() const { return slots_.size(); }

 private:
  struct Slot {
    std::unique_ptr<std::uint8_t[]> bytes;
    std::uint32_t capacity{0};
    std::uint32_t refs{0};
    std::uint32_t next_free{kNil};
  };
  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNil};
  std::size_t live_{0};
};

/// The calling thread's pool (simulation packets never cross threads).
PayloadPool& payload_pool();

class PayloadRef {
 public:
  PayloadRef() = default;

  /// View of caller-owned memory; caller guarantees lifetime (verbs buffer
  /// contract — valid until send completion).
  static PayloadRef borrow(const std::uint8_t* data, std::size_t len) {
    PayloadRef ref;
    ref.data_ = data;
    ref.len_ = static_cast<std::uint32_t>(len);
    return ref;
  }

  /// Copy into the thread-local pool (for sources that may die before the
  /// packet is delivered, e.g. stack-built control messages).
  static PayloadRef pooled_copy(const std::uint8_t* data, std::size_t len);

  PayloadRef(const PayloadRef& other)
      : data_(other.data_), len_(other.len_), slot_(other.slot_),
        pool_(other.pool_) {
    if (pool_ != nullptr) pool_->add_ref(slot_);
  }
  PayloadRef(PayloadRef&& other) noexcept
      : data_(other.data_), len_(other.len_), slot_(other.slot_),
        pool_(other.pool_) {
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.len_ = 0;
  }
  PayloadRef& operator=(const PayloadRef& other) {
    if (this != &other) {
      if (other.pool_ != nullptr) other.pool_->add_ref(other.slot_);
      reset();
      data_ = other.data_;
      len_ = other.len_;
      slot_ = other.slot_;
      pool_ = other.pool_;
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      len_ = other.len_;
      slot_ = other.slot_;
      pool_ = other.pool_;
      other.pool_ = nullptr;
      other.data_ = nullptr;
      other.len_ = 0;
    }
    return *this;
  }
  ~PayloadRef() { reset(); }

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  bool pooled() const { return pool_ != nullptr; }

 private:
  void reset() {
    if (pool_ != nullptr) {
      pool_->release(slot_);
      pool_ = nullptr;
    }
    data_ = nullptr;
    len_ = 0;
  }

  const std::uint8_t* data_{nullptr};
  std::uint32_t len_{0};
  std::uint32_t slot_{PayloadPool::kNil};
  PayloadPool* pool_{nullptr};
};

}  // namespace sdr::common
