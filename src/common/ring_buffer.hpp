// RingBuffer: a FIFO over a power-of-two array that never releases its
// storage. std::deque frees blocks as elements pop, so steady-state
// push/pop cycles — the RC unacked window, posted-receive queues — pay the
// allocator every few entries; this ring grows to the high-water mark once
// and is allocation-free from then on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sdr::common {

template <typename T>
class RingBuffer {
 public:
  void push_back(T value) {
    if (tail_ - head_ == ring_.size()) grow();
    ring_[tail_ & mask_] = std::move(value);
    ++tail_;
  }

  T& front() { return ring_[head_ & mask_]; }
  const T& front() const { return ring_[head_ & mask_]; }
  void pop_front() {
    // Reset the slot so popped elements release resources (payload refs)
    // now, not when the slot is next overwritten.
    ring_[head_ & mask_] = T{};
    ++head_;
  }

  /// i-th element counted from the front.
  T& operator[](std::size_t i) { return ring_[(head_ + i) & mask_]; }
  const T& operator[](std::size_t i) const {
    return ring_[(head_ + i) & mask_];
  }

  std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
  bool empty() const { return head_ == tail_; }
  void clear() {
    for (std::uint64_t i = head_; i != tail_; ++i) ring_[i & mask_] = T{};
    head_ = tail_ = 0;
  }

 private:
  void grow() {
    const std::size_t old_size = ring_.size();
    const std::size_t new_size = old_size == 0 ? 16 : old_size * 2;
    std::vector<T> next(new_size);
    for (std::uint64_t i = head_; i != tail_; ++i) {
      next[i & (new_size - 1)] = std::move(ring_[i & mask_]);
    }
    ring_ = std::move(next);
    mask_ = new_size - 1;
  }

  std::vector<T> ring_;
  std::size_t mask_{0};
  std::uint64_t head_{0};
  std::uint64_t tail_{0};
};

}  // namespace sdr::common
