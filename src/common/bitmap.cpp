#include "common/bitmap.hpp"

// Bitmap is header-only today; this TU anchors the library target and keeps
// a stable home for future out-of-line additions.
