// Small numerically stable running statistics (Welford) helper.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace sdr {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval under a normal approximation.
  double ci95_halfwidth() const {
    return n_ > 1 ? 1.96 * stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{std::numeric_limits<double>::infinity()};
  double max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace sdr
