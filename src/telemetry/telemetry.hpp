// Umbrella header for the telemetry subsystem.
//
//   registry()  — hierarchical counters/gauges/histograms, sampled over time
//   tracer()    — packet-lifecycle event ring with JSONL export
//   Sampler     — periodic registry snapshots -> CSV/JSONL time series
//
// Typical bring-up (before constructing the instrumented stack):
//
//   telemetry::registry().enable();
//   telemetry::tracer().arm();
//   telemetry::Sampler sampler(telemetry::registry(), /*period_s=*/1e-3);
//   sampler.attach(sim);
//
// See src/telemetry/registry.hpp for the zero-overhead-when-disabled
// contract.
#pragma once

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"
