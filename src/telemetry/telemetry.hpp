// Umbrella header for the telemetry subsystem.
//
//   registry()  — hierarchical counters/gauges/histograms, sampled over time
//   tracer()    — packet-lifecycle event ring with JSONL export
//   Sampler     — periodic registry snapshots -> CSV/JSONL time series
//
// Typical bring-up (before constructing the instrumented stack):
//
//   telemetry::registry().enable();
//   telemetry::tracer().arm();
//   telemetry::Sampler sampler(telemetry::registry(), /*period_s=*/1e-3);
//   sampler.attach(sim);
//
// See src/telemetry/registry.hpp for the zero-overhead-when-disabled
// contract.
// Both accessors resolve per thread: ScopedTelemetry below installs a
// private Registry/Tracer pair as the calling thread's current instances,
// which is how the sweep engine (src/sweep/) gives every trial fully
// isolated telemetry with no shared globals.
#pragma once

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"

namespace sdr::telemetry {

/// RAII guard: makes `reg`/`trc` the calling thread's current registry and
/// tracer for the guard's lifetime (either may be nullptr to fall back to
/// the process-wide default). Restores the previous installation — guards
/// nest. Everything the guarded code registers or emits through
/// telemetry::registry()/tracer() lands in the scoped instances, so
/// concurrent scopes on different threads cannot interleave.
class ScopedTelemetry {
 public:
  ScopedTelemetry(Registry* reg, Tracer* trc)
      : prev_registry_(set_thread_registry(reg)),
        prev_tracer_(set_thread_tracer(trc)) {}

  ~ScopedTelemetry() {
    set_thread_tracer(prev_tracer_);
    set_thread_registry(prev_registry_);
  }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Registry* prev_registry_;
  Tracer* prev_tracer_;
};

}  // namespace sdr::telemetry
