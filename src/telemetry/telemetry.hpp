// Umbrella header for the telemetry subsystem.
//
//   registry()  — hierarchical counters/gauges/histograms, sampled over time
//   tracer()    — packet-lifecycle event ring with JSONL export
//   spans()     — causal span tree (msg -> chunk -> attempt) + Perfetto JSON
//   profiler()  — wall-clock self-time attribution by subsystem category
//   flight()    — per-connection ring of protocol state transitions
//   Sampler     — periodic registry snapshots -> CSV/JSONL time series
//
// Typical bring-up (before constructing the instrumented stack):
//
//   telemetry::registry().enable();
//   telemetry::tracer().arm();
//   telemetry::Sampler sampler(telemetry::registry(), /*period_s=*/1e-3);
//   sampler.attach(sim);
//
// See src/telemetry/registry.hpp for the zero-overhead-when-disabled
// contract.
// Both accessors resolve per thread: ScopedTelemetry below installs a
// private Registry/Tracer pair as the calling thread's current instances,
// which is how the sweep engine (src/sweep/) gives every trial fully
// isolated telemetry with no shared globals.
#pragma once

#include "telemetry/flight_recorder.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace.hpp"

namespace sdr::telemetry {

/// RAII guard: makes `reg`/`trc` (and optionally a span recorder, flight
/// recorder, and profiler) the calling thread's current instances for the
/// guard's lifetime (any may be nullptr to fall back to the process-wide
/// default). Restores the previous installation — guards nest. Everything
/// the guarded code registers or emits through telemetry::registry()/
/// tracer()/spans()/flight()/profiler() lands in the scoped instances, so
/// concurrent scopes on different threads cannot interleave.
class ScopedTelemetry {
 public:
  ScopedTelemetry(Registry* reg, Tracer* trc, SpanRecorder* sp = nullptr,
                  FlightRecorder* fl = nullptr, Profiler* pr = nullptr)
      : prev_registry_(set_thread_registry(reg)),
        prev_tracer_(set_thread_tracer(trc)),
        prev_spans_(set_thread_spans(sp)),
        prev_flight_(set_thread_flight(fl)),
        prev_profiler_(set_thread_profiler(pr)) {}

  ~ScopedTelemetry() {
    set_thread_profiler(prev_profiler_);
    set_thread_flight(prev_flight_);
    set_thread_spans(prev_spans_);
    set_thread_tracer(prev_tracer_);
    set_thread_registry(prev_registry_);
  }

  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Registry* prev_registry_;
  Tracer* prev_tracer_;
  SpanRecorder* prev_spans_;
  FlightRecorder* prev_flight_;
  Profiler* prev_profiler_;
};

}  // namespace sdr::telemetry
