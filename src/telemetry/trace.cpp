#include "telemetry/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/logging.hpp"

namespace sdr::telemetry {

namespace detail {
thread_local constinit bool g_tracing_on = false;
}  // namespace detail

namespace {

Tracer& default_tracer() {
  static Tracer instance;
  return instance;
}

thread_local Tracer* t_tracer = nullptr;

}  // namespace

const char* to_string(TraceEventType type) {
  switch (type) {
    case TraceEventType::kPosted: return "posted";
    case TraceEventType::kCts: return "cts";
    case TraceEventType::kTx: return "tx";
    case TraceEventType::kDropped: return "dropped";
    case TraceEventType::kQueueDrop: return "queue_drop";
    case TraceEventType::kReordered: return "reordered";
    case TraceEventType::kDuplicated: return "duplicated";
    case TraceEventType::kDelivered: return "delivered";
    case TraceEventType::kCqe: return "cqe";
    case TraceEventType::kBitmapUpdate: return "bitmap_update";
    case TraceEventType::kAckSent: return "ack_sent";
    case TraceEventType::kNackSent: return "nack_sent";
    case TraceEventType::kRtoFired: return "rto_fired";
    case TraceEventType::kRetransmit: return "retransmit";
    case TraceEventType::kEcRepair: return "ec_repair";
    case TraceEventType::kEcFallback: return "ec_fallback";
    case TraceEventType::kMsgComplete: return "msg_complete";
  }
  return "unknown";
}

void Tracer::arm(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
  armed_ = true;
  if (this == &tracer()) detail::g_tracing_on = true;
  SDR_INFO("packet tracer armed (ring capacity %zu events)", capacity);
}

void Tracer::disarm() {
  SDR_INFO("packet tracer disarmed (%zu events buffered, %" PRIu64
           " overwritten)",
           size_, static_cast<std::uint64_t>(overwritten_));
  armed_ = false;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
  if (this == &tracer()) detail::g_tracing_on = false;
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  overwritten_ = 0;
}

template <class Fn>
void Tracer::for_each_oldest_first(Fn&& fn) const {
  if (size_ == 0) return;
  // Oldest event sits at head_ when the ring has wrapped, else at 0.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring_.size()) idx -= ring_.size();
    fn(ring_[idx]);
  }
}

std::vector<TraceEvent> Tracer::collect(const Filter& filter) const {
  std::vector<TraceEvent> out;
  for_each_oldest_first([&](const TraceEvent& e) {
    if (filter.matches(e)) out.push_back(e);
  });
  return out;
}

std::vector<TraceEvent> Tracer::chunk_timeline(std::uint64_t msg,
                                               std::uint32_t chunk,
                                               std::uint32_t imm) const {
  std::vector<TraceEvent> out;
  for_each_oldest_first([&](const TraceEvent& e) {
    const bool sdr_level =
        e.msg == msg && (e.chunk == chunk || e.chunk == kNoChunk);
    const bool wire_level = e.msg == kNoMsg && imm != kNoImm && e.imm == imm;
    if (sdr_level || wire_level) out.push_back(e);
  });
  return out;
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"t_s\":%.9f,\"event\":\"%s\",\"qp\":%" PRIu32,
                        e.t.seconds(), to_string(e.type), e.qp);
  out.append(buf, static_cast<std::size_t>(n));
  if (e.msg != kNoMsg) {
    n = std::snprintf(buf, sizeof(buf), ",\"msg\":%" PRIu64, e.msg);
  } else {
    n = std::snprintf(buf, sizeof(buf), ",\"msg\":null");
  }
  out.append(buf, static_cast<std::size_t>(n));
  if (e.chunk != kNoChunk) {
    n = std::snprintf(buf, sizeof(buf), ",\"chunk\":%" PRIu32, e.chunk);
  } else {
    n = std::snprintf(buf, sizeof(buf), ",\"chunk\":null");
  }
  out.append(buf, static_cast<std::size_t>(n));
  if (e.imm != kNoImm) {
    n = std::snprintf(buf, sizeof(buf), ",\"imm\":%" PRIu32, e.imm);
  } else {
    n = std::snprintf(buf, sizeof(buf), ",\"imm\":null");
  }
  out.append(buf, static_cast<std::size_t>(n));
  n = std::snprintf(buf, sizeof(buf), ",\"bytes\":%" PRIu64 "}\n", e.bytes);
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

std::string Tracer::to_jsonl(const Filter& filter) const {
  std::string out;
  out.reserve(size_ * 96);
  for_each_oldest_first([&](const TraceEvent& e) {
    if (filter.matches(e)) append_event_json(out, e);
  });
  return out;
}

std::string Tracer::to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& e : events) append_event_json(out, e);
  return out;
}

Tracer& tracer() {
  return t_tracer != nullptr ? *t_tracer : default_tracer();
}

Tracer* set_thread_tracer(Tracer* t) {
  Tracer* prev = t_tracer;
  t_tracer = t;
  detail::g_tracing_on = tracer().armed();
  return prev;
}

}  // namespace sdr::telemetry
