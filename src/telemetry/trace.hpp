// Packet-lifecycle tracer: structured, sim-time-stamped events in a bounded
// in-memory ring.
//
// The tracer answers "why did this message finish when it did?": a chunk's
// journey is posted -> tx -> (dropped -> rto_fired -> retransmit -> tx)* ->
// delivered -> cqe -> bitmap_update -> msg_complete, and a p99.9 outlier in
// Fig 10/13 is exactly one of those loops. Events are tiny PODs pushed into
// a preallocated ring (oldest overwritten, count kept), exported as JSONL
// and joinable across layers:
//   * SDR/reliability-level events carry (msg, chunk) — the protocol's view.
//   * Channel-level events can't decode the SDR immediate, so they carry the
//     raw wire `imm` (and dst QP); `chunk_timeline` joins both via the OR of
//     (msg, chunk) and imm equality.
//
// Hot-path contract: `tracing()` is a plain bool load; every emit site is
// `if (telemetry::tracing()) { ... }` so a disarmed tracer costs one
// never-taken branch per event site and zero allocations either way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sdr::telemetry {

namespace detail {
// Mirrors the *current thread's* tracer armed state (kept in sync by
// Tracer::arm/disarm and set_thread_tracer).
extern thread_local constinit bool g_tracing_on;
}  // namespace detail

/// Sentinels for fields an event's layer cannot know.
inline constexpr std::uint64_t kNoMsg = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoChunk = 0xFFFFFFFFu;
inline constexpr std::uint32_t kNoImm = 0xFFFFFFFFu;

enum class TraceEventType : std::uint8_t {
  kPosted,        // SDR staged a packet for a data QP
  kCts,           // clear-to-send control message processed
  kTx,            // packet entered the channel
  kDropped,       // drop model discarded the packet
  kQueueDrop,     // channel tail-drop (queue capacity exceeded)
  kReordered,     // packet got extra reorder delay
  kDuplicated,    // channel emitted a duplicate copy
  kDelivered,     // packet handed to the receiving NIC
  kCqe,           // completion queue entry processed by SDR
  kBitmapUpdate,  // message-table chunk bit set
  kAckSent,       // SR receiver sent a (cumulative/selective) ACK
  kNackSent,      // SR receiver sent a NACK
  kRtoFired,      // retransmission/fallback timeout fired
  kRetransmit,    // chunk/packet re-sent
  kEcRepair,      // erasure-coded block recovered from parity
  kEcFallback,    // EC sender fell back to SR for a block
  kMsgComplete,   // message fully received (all chunk bits set)
};

const char* to_string(TraceEventType type);

struct TraceEvent {
  SimTime t{};
  TraceEventType type{TraceEventType::kPosted};
  std::uint32_t qp{0};
  std::uint32_t chunk{kNoChunk};
  std::uint64_t msg{kNoMsg};
  std::uint32_t imm{kNoImm};
  std::uint64_t bytes{0};
};

/// AND-match trace filter; sentinel-valued fields match everything.
struct TraceFilter {
  std::uint32_t qp{kNoImm};       // kNoImm = any
  std::uint64_t msg{kNoMsg};      // kNoMsg = any
  std::uint32_t chunk{kNoChunk};  // kNoChunk = any
  std::uint32_t imm{kNoImm};      // kNoImm = any

  bool matches(const TraceEvent& e) const {
    if (qp != kNoImm && e.qp != qp) return false;
    if (msg != kNoMsg && e.msg != msg) return false;
    if (chunk != kNoChunk && e.chunk != chunk) return false;
    if (imm != kNoImm && e.imm != imm) return false;
    return true;
  }
};

class Tracer {
 public:
  using Filter = TraceFilter;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Preallocates the ring and starts accepting events.
  void arm(std::size_t capacity = 1u << 20);
  /// Stops accepting events and frees the ring.
  void disarm();
  bool armed() const { return armed_; }
  void clear();

  void emit(SimTime t, TraceEventType type, std::uint32_t qp,
            std::uint64_t msg = kNoMsg, std::uint32_t chunk = kNoChunk,
            std::uint32_t imm = kNoImm, std::uint64_t bytes = 0) {
    if (!armed_) return;
    TraceEvent& e = ring_[head_];
    e.t = t;
    e.type = type;
    e.qp = qp;
    e.chunk = chunk;
    e.msg = msg;
    e.imm = imm;
    e.bytes = bytes;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t overwritten() const { return overwritten_; }

  /// Events matching `filter`, oldest first (ring order == sim-time order
  /// because emission follows the simulator clock).
  std::vector<TraceEvent> collect(const Filter& filter = Filter{}) const;

  /// Every event belonging to one chunk's story, joined across layers:
  /// SDR-level events match on (msg, chunk) — message-scoped events like
  /// msg_complete (chunk == kNoChunk) are included — and wire-level events
  /// (msg == kNoMsg) match on the packet's immediate.
  std::vector<TraceEvent> chunk_timeline(std::uint64_t msg, std::uint32_t chunk,
                                         std::uint32_t imm) const;

  /// One JSON object per event, one per line; sentinel fields emitted as
  /// null so downstream tooling can tell "unknown" from 0.
  std::string to_jsonl(const Filter& filter = Filter{}) const;
  static std::string to_jsonl(const std::vector<TraceEvent>& events);

 private:
  template <class Fn>
  void for_each_oldest_first(Fn&& fn) const;

  bool armed_{false};
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  // next write position
  std::size_t size_{0};
  std::uint64_t overwritten_{0};
};

/// The calling thread's current tracer: the instance installed with
/// set_thread_tracer, or the process-wide default when none is installed.
Tracer& tracer();

/// Install `t` as the calling thread's current tracer (nullptr restores the
/// process-wide default) and resync detail::g_tracing_on to it. Returns the
/// previous override; prefer the ScopedTelemetry RAII guard (telemetry.hpp).
Tracer* set_thread_tracer(Tracer* t);

/// True when this thread's tracer accepts events; one predictable branch.
inline bool tracing() { return detail::g_tracing_on; }

}  // namespace sdr::telemetry
