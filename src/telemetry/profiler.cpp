#include "telemetry/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace sdr::telemetry {

namespace detail {
thread_local constinit bool g_profiling_on = false;
}  // namespace detail

namespace {

Profiler& default_profiler() {
  static Profiler instance;
  return instance;
}

thread_local Profiler* t_profiler = nullptr;

}  // namespace

const char* to_string(ProfCategory category) {
  switch (category) {
    case ProfCategory::kSim: return "sim";
    case ProfCategory::kChannel: return "channel";
    case ProfCategory::kSr: return "sr";
    case ProfCategory::kEc: return "ec";
    case ProfCategory::kRc: return "rc";
    case ProfCategory::kSdr: return "sdr";
    case ProfCategory::kCollectives: return "collectives";
    case ProfCategory::kCount: break;
  }
  return "unknown";
}

std::uint64_t Profiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::arm() {
  entries_.fill(Entry{});
  depth_ = 0;
  last_mark_ns_ = now_ns();
  armed_ = true;
  if (this == &profiler()) detail::g_profiling_on = true;
}

void Profiler::disarm() {
  armed_ = false;
  depth_ = 0;
  if (this == &profiler()) detail::g_profiling_on = false;
}

void Profiler::clear() {
  entries_.fill(Entry{});
  depth_ = 0;
  last_mark_ns_ = now_ns();
}

void Profiler::attribute(std::uint64_t now) {
  if (depth_ > 0) {
    entries_[static_cast<std::size_t>(stack_[depth_ - 1])].self_ns +=
        now - last_mark_ns_;
  }
  last_mark_ns_ = now;
}

bool Profiler::enter(ProfCategory category) {
  const std::uint64_t now = now_ns();
  attribute(now);
  ++entries_[static_cast<std::size_t>(category)].calls;
  if (depth_ == kMaxDepth) return false;
  stack_[depth_++] = category;
  return true;
}

void Profiler::leave() {
  const std::uint64_t now = now_ns();
  attribute(now);
  if (depth_ > 0) --depth_;
}

std::uint64_t Profiler::total_self_ns() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.self_ns;
  return total;
}

std::string Profiler::table() const {
  const std::uint64_t total = total_self_ns();
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].calls != 0 || entries_[i].self_ns != 0) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return entries_[a].self_ns > entries_[b].self_ns;
  });
  std::string out;
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "%-12s %12s %12s %7s %10s\n",
                        "category", "firings", "self_ms", "self%", "ns/call");
  out.append(buf, static_cast<std::size_t>(n));
  for (const std::size_t i : order) {
    const Entry& e = entries_[i];
    const double pct =
        total != 0 ? 100.0 * static_cast<double>(e.self_ns) /
                         static_cast<double>(total)
                   : 0.0;
    const double per_call =
        e.calls != 0
            ? static_cast<double>(e.self_ns) / static_cast<double>(e.calls)
            : 0.0;
    n = std::snprintf(buf, sizeof(buf),
                      "%-12s %12" PRIu64 " %12.3f %6.1f%% %10.1f\n",
                      to_string(static_cast<ProfCategory>(i)), e.calls,
                      static_cast<double>(e.self_ns) / 1e6, pct, per_call);
    out.append(buf, static_cast<std::size_t>(n));
  }
  if (order.empty()) out.append("(no profiled handler fired)\n");
  return out;
}

Profiler& profiler() {
  return t_profiler != nullptr ? *t_profiler : default_profiler();
}

Profiler* set_thread_profiler(Profiler* p) {
  Profiler* prev = t_profiler;
  t_profiler = p;
  detail::g_profiling_on = profiler().armed();
  return prev;
}

}  // namespace sdr::telemetry
