#include "telemetry/sampler.hpp"

#include <cstdio>
#include <sstream>

namespace sdr::telemetry {

void Sampler::sample(double now_s) {
  scratch_.clear();
  registry_->flatten(scratch_);
  Row row;
  row.t_s = now_s;
  row.values.reserve(scratch_.size());
  for (const FlatMetric& m : scratch_) {
    auto it = column_index_.find(m.name);
    std::uint32_t idx;
    if (it == column_index_.end()) {
      idx = static_cast<std::uint32_t>(columns_.size());
      column_index_.emplace(m.name, idx);
      columns_.push_back(m.name);
    } else {
      idx = it->second;
    }
    row.values.emplace_back(idx, m.value);
  }
  rows_.push_back(std::move(row));
}

void Sampler::write_csv(std::ostream& os) const {
  os << "sim_time_s";
  for (const std::string& col : columns_) os << ',' << col;
  os << '\n';
  char buf[64];
  std::vector<double> dense(columns_.size());
  std::vector<bool> present(columns_.size());
  for (const Row& row : rows_) {
    std::fill(present.begin(), present.end(), false);
    for (const auto& [idx, value] : row.values) {
      dense[idx] = value;
      present[idx] = true;
    }
    std::snprintf(buf, sizeof(buf), "%.10g", row.t_s);
    os << buf;
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      os << ',';
      if (present[i]) {
        std::snprintf(buf, sizeof(buf), "%.10g", dense[i]);
        os << buf;
      }
    }
    os << '\n';
  }
  // Columns that registered mid-run leave early rows ragged relative to the
  // final schema; restate it as a trailing comment so row-streaming readers
  // (which saw the narrow prefix) can reconcile without reparsing.
  if (!rows_.empty() && rows_.front().values.size() < columns_.size()) {
    os << "# columns: sim_time_s";
    for (const std::string& col : columns_) os << ',' << col;
    os << '\n';
  }
}

std::string Sampler::to_csv() const {
  std::ostringstream oss;
  write_csv(oss);
  return oss.str();
}

void Sampler::write_jsonl(std::ostream& os) const {
  char buf[64];
  for (const Row& row : rows_) {
    std::snprintf(buf, sizeof(buf), "%.10g", row.t_s);
    os << "{\"sim_time_s\":" << buf;
    for (const auto& [idx, value] : row.values) {
      std::snprintf(buf, sizeof(buf), "%.10g", value);
      os << ",\"" << columns_[idx] << "\":" << buf;
    }
    os << "}\n";
  }
}

std::string Sampler::to_jsonl() const {
  std::ostringstream oss;
  write_jsonl(oss);
  return oss.str();
}

void Sampler::clear() {
  columns_.clear();
  column_index_.clear();
  rows_.clear();
}

}  // namespace sdr::telemetry
