// Periodic sim-time sampler: snapshots the metrics registry every N
// sim-seconds into a sparse time series exportable as CSV or JSONL.
//
// Turns every bench figure from an endpoint assertion into an explainable
// curve: goodput over a transfer, outstanding chunks during an RTO stall,
// retransmissions clustering at the Gilbert-Elliott bad state. Columns grow
// as components register (a channel built mid-run adds columns mid-series);
// rows store sparse (column, value) pairs so early rows simply leave later
// columns blank.
//
// Determinism contract: sampling is driven by simulator events at fixed
// sim-time periods over registry contents iterated in registration order,
// with fixed "%.10g" formatting — two runs with the same seed produce
// bit-identical CSV/JSONL output (an acceptance test relies on this).
//
// Layering note: `attach` is a header-only template so this library never
// includes simulator headers (sim links *against* telemetry, not the other
// way around). The tick stops rescheduling once the simulator has no other
// pending events, so `Simulator::run()` still drains.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "telemetry/registry.hpp"

namespace sdr::telemetry {

class Sampler {
 public:
  Sampler(Registry& registry, double period_s)
      : registry_(&registry), period_s_(period_s > 0.0 ? period_s : 1e-3) {}

  double period_s() const { return period_s_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return columns_.size(); }

  /// Snapshot every registry metric at sim time `now_s`.
  void sample(double now_s);

  /// Self-rescheduling sampling tick on `sim` (any type with schedule/now/
  /// pending, i.e. sdr::sim::Simulator). Stops once the simulator would
  /// otherwise be idle so run() terminates.
  template <class Sim>
  void attach(Sim& sim, double first_delay_s = 0.0) {
    struct Tick {
      Sampler* sampler;
      Sim* sim;
      void operator()() const {
        sampler->sample(sim->now().seconds());
        if (sim->pending() == 0) return;  // nothing left but us: stop
        sim->schedule(SimTime::from_seconds(sampler->period_s_),
                      Tick{sampler, sim});
      }
    };
    sim.schedule(SimTime::from_seconds(first_delay_s), Tick{this, &sim});
  }

  /// `sim_time_s,<col>,<col>,...` header then one row per sample; columns a
  /// row never saw are left blank. When any column first appeared after the
  /// first sample, a final `# columns: ...` comment restates the full
  /// schema for row-streaming readers.
  void write_csv(std::ostream& os) const;
  std::string to_csv() const;

  /// One JSON object per sample row; absent columns are omitted.
  void write_jsonl(std::ostream& os) const;
  std::string to_jsonl() const;

  void clear();

 private:
  struct Row {
    double t_s{0.0};
    std::vector<std::pair<std::uint32_t, double>> values;  // (col idx, value)
  };

  Registry* registry_;
  double period_s_;
  std::vector<std::string> columns_;  // first-seen order
  std::unordered_map<std::string, std::uint32_t> column_index_;
  std::vector<Row> rows_;
  std::vector<FlatMetric> scratch_;  // reused across samples
};

}  // namespace sdr::telemetry
