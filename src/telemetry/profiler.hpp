// Hot-loop profiler: wall-clock self-time attribution of simulator handler
// firings by subsystem category.
//
// The discrete-event core fires tens of millions of handlers per second;
// knowing *which subsystem* burns the cycles (channel drain? SR ACK scan?
// SDR completion batch?) is what future perf PRs aim at. Each instrumented
// handler opens a ProfScope with its category; nested scopes attribute
// *self time* — the wall clock between scope transitions goes to the
// innermost open category, so a channel drain that calls into SDR which
// calls into SR splits its wall time three ways instead of triple-counting.
//
// Clock reads are batched: one steady_clock read per scope transition,
// shared between the scope being left and the one resuming underneath —
// entering and leaving a nested scope costs two reads total, not four.
//
// Same zero-overhead-when-disabled contract as the rest of telemetry:
// `profiling()` is a plain thread-local bool load, and a disarmed profiler
// costs one never-taken branch per instrumented handler. Surfaced as a
// `--profile` table in bench_simcore / bench_datapath.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sdr::telemetry {

namespace detail {
// Mirrors the *current thread's* profiler armed state (kept in sync by
// Profiler::arm/disarm and set_thread_profiler).
extern thread_local constinit bool g_profiling_on;
}  // namespace detail

enum class ProfCategory : std::uint8_t {
  kSim,          // event-core dispatch + uninstrumented handlers
  kChannel,      // channel FIFO drain / delivery
  kSr,           // selective-repeat sender/receiver handlers
  kEc,           // erasure-coding sender/receiver handlers
  kRc,           // RC transport (GBN timers, receive path)
  kSdr,          // SDR backend completion processing
  kCollectives,  // collective algorithm step handlers
  kCount,
};

const char* to_string(ProfCategory category);

class Profiler {
 public:
  struct Entry {
    std::uint64_t calls{0};
    std::uint64_t self_ns{0};
  };

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void arm();
  void disarm();
  bool armed() const { return armed_; }
  void clear();

  /// Scope transitions (used by ProfScope; callable directly in tests).
  /// enter() returns false when the nesting stack is exhausted — the time
  /// still attributes to the enclosing scope; skip the matching leave().
  bool enter(ProfCategory category);
  void leave();

  const Entry& entry(ProfCategory category) const {
    return entries_[static_cast<std::size_t>(category)];
  }
  std::uint64_t total_self_ns() const;

  /// Human-readable attribution table, categories sorted by self time.
  std::string table() const;

 private:
  static std::uint64_t now_ns();
  void attribute(std::uint64_t now);

  bool armed_{false};
  std::array<Entry, static_cast<std::size_t>(ProfCategory::kCount)> entries_{};
  static constexpr std::size_t kMaxDepth = 64;
  std::array<ProfCategory, kMaxDepth> stack_{};
  std::size_t depth_{0};
  std::uint64_t last_mark_ns_{0};
};

/// The calling thread's current profiler (set_thread_profiler override or
/// the process-wide default).
Profiler& profiler();
Profiler* set_thread_profiler(Profiler* p);

/// True when this thread's profiler accepts scopes; one plain branch.
inline bool profiling() { return detail::g_profiling_on; }

/// RAII category scope; no-op (one branch) when the profiler is disarmed.
class ProfScope {
 public:
  explicit ProfScope(ProfCategory category) {
    if (profiling()) engaged_ = profiler().enter(category);
  }
  ~ProfScope() {
    if (engaged_) profiler().leave();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool engaged_{false};
};

}  // namespace sdr::telemetry
