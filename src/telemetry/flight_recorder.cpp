#include "telemetry/flight_recorder.hpp"

#include <cinttypes>
#include <cstdio>

namespace sdr::telemetry {

namespace detail {
thread_local constinit bool g_flight_on = false;
}  // namespace detail

namespace {

FlightRecorder& default_flight() {
  static FlightRecorder instance;
  return instance;
}

thread_local FlightRecorder* t_flight = nullptr;

}  // namespace

const char* to_string(FlightLayer layer) {
  switch (layer) {
    case FlightLayer::kSr: return "sr";
    case FlightLayer::kEc: return "ec";
    case FlightLayer::kRc: return "rc";
    case FlightLayer::kSdr: return "sdr";
  }
  return "unknown";
}

void FlightRecorder::arm(std::size_t per_conn_capacity) {
  per_conn_ = per_conn_capacity == 0 ? 1 : per_conn_capacity;
  rings_.clear();
  armed_ = true;
  if (this == &flight()) detail::g_flight_on = true;
}

void FlightRecorder::disarm() {
  armed_ = false;
  rings_.clear();
  if (this == &flight()) detail::g_flight_on = false;
}

void FlightRecorder::clear() { rings_.clear(); }

void FlightRecorder::record(FlightLayer layer, std::uint64_t conn,
                            const char* what, SimTime t, std::uint64_t msg,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t c) {
  if (!armed_) return;
  Ring& ring = rings_[conn];
  if (ring.buf.empty()) ring.buf.resize(per_conn_);
  FlightRecord& r = ring.buf[ring.head];
  r.t = t;
  r.layer = layer;
  r.what = what;
  r.msg = msg;
  r.a = a;
  r.b = b;
  r.c = c;
  ring.head = ring.head + 1 == ring.buf.size() ? 0 : ring.head + 1;
  if (ring.size < ring.buf.size()) {
    ++ring.size;
  } else {
    ++ring.overwritten;
  }
}

std::vector<FlightRecord> FlightRecorder::history(std::uint64_t conn) const {
  std::vector<FlightRecord> out;
  const auto it = rings_.find(conn);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  out.reserve(ring.size);
  const std::size_t start =
      ring.size == ring.buf.size() ? ring.head : 0;
  for (std::size_t i = 0; i < ring.size; ++i) {
    std::size_t idx = start + i;
    if (idx >= ring.buf.size()) idx -= ring.buf.size();
    out.push_back(ring.buf[idx]);
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  std::string out;
  out.append("{\"connections\":[");
  char buf[256];
  bool first_conn = true;
  for (const auto& [conn, ring] : rings_) {
    if (!first_conn) out.push_back(',');
    first_conn = false;
    int n = std::snprintf(buf, sizeof(buf),
                          "{\"conn\":%" PRIu64 ",\"overwritten\":%" PRIu64
                          ",\"records\":[",
                          conn, ring.overwritten);
    out.append(buf, static_cast<std::size_t>(n));
    const std::size_t start =
        ring.size == ring.buf.size() ? ring.head : 0;
    for (std::size_t i = 0; i < ring.size; ++i) {
      std::size_t idx = start + i;
      if (idx >= ring.buf.size()) idx -= ring.buf.size();
      const FlightRecord& r = ring.buf[idx];
      n = std::snprintf(buf, sizeof(buf),
                        "%s{\"t_s\":%.9f,\"layer\":\"%s\",\"what\":\"%s\","
                        "\"msg\":%" PRIu64 ",\"a\":%" PRIu64 ",\"b\":%" PRIu64
                        ",\"c\":%" PRIu64 "}",
                        i == 0 ? "" : ",", r.t.seconds(), to_string(r.layer),
                        r.what, r.msg, r.a, r.b, r.c);
      out.append(buf, static_cast<std::size_t>(n));
    }
    out.append("]}");
  }
  out.append("]}\n");
  return out;
}

FlightRecorder& flight() {
  return t_flight != nullptr ? *t_flight : default_flight();
}

FlightRecorder* set_thread_flight(FlightRecorder* f) {
  FlightRecorder* prev = t_flight;
  t_flight = f;
  detail::g_flight_on = flight().armed();
  return prev;
}

}  // namespace sdr::telemetry
