// Unified sim-time metrics registry.
//
// The paper's evaluation is only explainable with a time dimension: mean vs
// p99.9 completion (Figs 10, 13), SR's RTO-driven slowdown peak, EC's
// repair-vs-fallback behaviour. Before this registry every component kept an
// ad-hoc stats struct (`SrSenderStats`, `SdrQpStats`, `ChannelStats`) with
// no common naming and no way to snapshot them over a transfer. The registry
// gives all of them one hierarchically named namespace
// ("sim.channel0.dropped_packets", "reliability.sr.sender0.retransmissions")
// that the periodic Sampler can turn into a time series and benches can
// export with --telemetry-out.
//
// Zero-overhead-when-disabled contract:
//  * Components keep bumping their own stats structs exactly as before; the
//    registry *binds* those fields by pointer (Prometheus-collector style)
//    and only reads them at snapshot/sample/export time. The packet-rate hot
//    path gains no instruction when telemetry is off AND none when it is on.
//  * Owned metrics (for components without a stats struct) hand out
//    pre-resolved handles: one null check + one increment when enabled, the
//    same null check alone when disabled.
//  * Registration happens at component construction and only when the
//    registry is enabled — enable telemetry BEFORE building the stack.
//
// Threading: the registry serves the single-threaded simulator path (like
// the rest of the sim stack); the threaded DPA engine keeps its own atomics.
// The "global" accessors registry()/tracer() are per *thread*: each thread
// resolves them to its own installed instance (set_thread_registry /
// ScopedTelemetry), falling back to the process-wide default. The sweep
// engine installs one private Registry+Tracer per trial, so parallel trials
// never share telemetry state and registration/freeze need no locks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"

namespace sdr::telemetry {

namespace detail {
// Mirrors the *current thread's* registry enabled state (kept in sync by
// Registry::enable/disable and set_thread_registry).
extern thread_local constinit bool g_metrics_on;
}  // namespace detail

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Pre-resolved counter handle: one branch + one increment when live,
/// one (perfectly predicted) branch when inert.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  bool live() const { return slot_ != nullptr; }
  std::uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

 private:
  friend class Registry;
  friend class Scope;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_{nullptr};
};

/// Pre-resolved gauge handle (owned storage; external gauges are read-only
/// callbacks bound via Scope::bind_gauge).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (slot_ != nullptr) *slot_ = v;
  }
  void add(double v) {
    if (slot_ != nullptr) *slot_ += v;
  }
  bool live() const { return slot_ != nullptr; }
  double value() const { return slot_ != nullptr ? *slot_ : 0.0; }

 private:
  friend class Registry;
  friend class Scope;
  explicit Gauge(double* slot) : slot_(slot) {}
  double* slot_{nullptr};
};

/// Pre-resolved histogram handle; records are dropped when inert.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  void record(double v) {
    if (hist_ != nullptr) hist_->record(v);
  }
  bool live() const { return hist_ != nullptr; }
  const Histogram* get() const { return hist_; }

 private:
  friend class Registry;
  friend class Scope;
  explicit HistogramHandle(Histogram* hist) : hist_(hist) {}
  Histogram* hist_{nullptr};
};

/// One flattened metric value (histograms expand into derived columns).
struct FlatMetric {
  std::string name;
  double value{0.0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void enable();
  /// Disables and drops every metric and instance-name counter (metrics may
  /// reference component fields that are about to die).
  void disable();
  bool enabled() const { return enabled_; }
  void clear();

  // ---- owned metrics (registry-allocated storage) ----
  /// Re-requesting an existing name returns a handle to the same slot.
  /// Inert handles are returned while the registry is disabled.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name, double min_value = 1e-9,
                            double max_value = 1e6);

  /// "sim.channel" -> "sim.channel0", "sim.channel1", ... (per-base running
  /// index, reset by clear/disable). Deterministic given deterministic
  /// construction order, which the seeded sims guarantee.
  std::string instance_name(const std::string& base);

  // ---- queries / export ----
  std::size_t size() const { return entries_.size(); }
  bool has(const std::string& name) const;
  /// Value of a counter (owned or bound); 0 if absent.
  std::uint64_t counter_value(const std::string& name) const;
  /// Value of a gauge (owned or bound); 0.0 if absent.
  double gauge_value(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Flatten every metric to (name, value) in registration order.
  /// Histograms expand to .count/.mean/.p50/.p99/.p999/.max.
  void flatten(std::vector<FlatMetric>& out) const;

  /// One JSON object per metric, one per line.
  std::string to_jsonl() const;

 private:
  friend class Scope;

  struct Entry {
    std::uint64_t id{0};
    std::string name;
    MetricKind kind{MetricKind::kCounter};
    // Exactly one of the following groups is populated.
    const std::uint64_t* counter{nullptr};  // external or owned_counter.get()
    std::unique_ptr<std::uint64_t> owned_counter;
    std::function<double()> gauge_fn;  // external gauge
    std::unique_ptr<double> owned_gauge;
    const Histogram* hist{nullptr};
    std::unique_ptr<Histogram> owned_hist;
  };

  double entry_value(const Entry& e) const;
  std::uint64_t add_entry(Entry e);
  void freeze_entries(const std::vector<std::uint64_t>& ids);
  const Entry* find(const std::string& name) const;

  bool enabled_{false};
  std::uint64_t next_id_{1};
  std::vector<Entry> entries_;  // registration order (export determinism)
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<std::string, std::uint64_t> instance_counters_;
};

/// RAII registration scope: a component constructs one with its hierarchical
/// prefix and binds its stats fields / registers owned metrics through it.
/// When the component (and thus the scope) dies, bound metrics are *frozen*:
/// their final values are copied into registry-owned storage, so end-of-run
/// exports (bench --telemetry-out) still see every component that ever
/// lived, and no dangling pointer survives. A scope built while the
/// registry is disabled is inert.
class Scope {
 public:
  Scope() = default;
  Scope(Registry& registry, std::string prefix);
  Scope(Scope&& other) noexcept;
  Scope& operator=(Scope&& other) noexcept;
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
  ~Scope();

  bool active() const { return registry_ != nullptr; }
  const std::string& prefix() const { return prefix_; }

  Counter counter(const char* name);
  Gauge gauge(const char* name);
  HistogramHandle histogram(const char* name, double min_value = 1e-9,
                            double max_value = 1e6);

  /// Bind an existing stats-struct field; the registry reads it at
  /// sample/export time. The pointee must outlive this scope (declare the
  /// scope after the stats struct so it is destroyed first).
  void bind_counter(const char* name, const std::uint64_t* value);
  void bind_gauge(const char* name, std::function<double()> fn);
  void bind_histogram(const char* name, const Histogram* hist);

 private:
  void release();
  std::string full(const char* name) const;

  Registry* registry_{nullptr};
  std::string prefix_;
  std::vector<std::uint64_t> ids_;
};

/// The calling thread's current registry: the instance installed with
/// set_thread_registry, or the process-wide default when none is installed.
Registry& registry();

/// Install `r` as the calling thread's current registry (nullptr restores
/// the process-wide default) and resync detail::g_metrics_on to it. Returns
/// the previously installed override so callers can nest/restore; prefer
/// the ScopedTelemetry RAII guard (telemetry.hpp).
Registry* set_thread_registry(Registry* r);

/// True when the calling thread's registry accepts registrations.
inline bool enabled() { return detail::g_metrics_on; }

}  // namespace sdr::telemetry
