#include "telemetry/registry.hpp"

#include <cstdio>
#include <utility>

#include "common/logging.hpp"

namespace sdr::telemetry {

namespace detail {
thread_local constinit bool g_metrics_on = false;
}  // namespace detail

namespace {

Registry& default_registry() {
  static Registry instance;
  return instance;
}

thread_local Registry* t_registry = nullptr;

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

void Registry::enable() {
  enabled_ = true;
  if (this == &registry()) detail::g_metrics_on = true;
  SDR_INFO("telemetry registry enabled");
}

void Registry::disable() {
  SDR_INFO("telemetry registry disabled (%zu metrics dropped)",
           entries_.size());
  clear();
  enabled_ = false;
  if (this == &registry()) detail::g_metrics_on = false;
}

void Registry::clear() {
  entries_.clear();
  by_name_.clear();
  instance_counters_.clear();
  next_id_ = 1;
}

Counter Registry::counter(const std::string& name) {
  if (!enabled_) return Counter{};
  if (const Entry* e = find(name); e != nullptr && e->owned_counter) {
    return Counter{e->owned_counter.get()};
  }
  Entry e;
  e.name = name;
  e.kind = MetricKind::kCounter;
  e.owned_counter = std::make_unique<std::uint64_t>(0);
  e.counter = e.owned_counter.get();
  std::uint64_t* slot = e.owned_counter.get();
  add_entry(std::move(e));
  return Counter{slot};
}

Gauge Registry::gauge(const std::string& name) {
  if (!enabled_) return Gauge{};
  if (const Entry* e = find(name); e != nullptr && e->owned_gauge) {
    return Gauge{e->owned_gauge.get()};
  }
  Entry e;
  e.name = name;
  e.kind = MetricKind::kGauge;
  e.owned_gauge = std::make_unique<double>(0.0);
  double* slot = e.owned_gauge.get();
  add_entry(std::move(e));
  return Gauge{slot};
}

HistogramHandle Registry::histogram(const std::string& name, double min_value,
                                    double max_value) {
  if (!enabled_) return HistogramHandle{};
  if (const Entry* e = find(name); e != nullptr && e->owned_hist) {
    return HistogramHandle{e->owned_hist.get()};
  }
  Entry e;
  e.name = name;
  e.kind = MetricKind::kHistogram;
  e.owned_hist = std::make_unique<Histogram>(min_value, max_value);
  e.hist = e.owned_hist.get();
  Histogram* slot = e.owned_hist.get();
  add_entry(std::move(e));
  return HistogramHandle{slot};
}

std::string Registry::instance_name(const std::string& base) {
  const std::uint64_t idx = instance_counters_[base]++;
  return base + std::to_string(idx);
}

bool Registry::has(const std::string& name) const {
  return find(name) != nullptr;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr || e->counter == nullptr) return 0;
  return *e->counter;
}

double Registry::gauge_value(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) return 0.0;
  return entry_value(*e);
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->hist : nullptr;
}

double Registry::entry_value(const Entry& e) const {
  switch (e.kind) {
    case MetricKind::kCounter:
      return e.counter != nullptr ? static_cast<double>(*e.counter) : 0.0;
    case MetricKind::kGauge:
      if (e.gauge_fn) return e.gauge_fn();
      return e.owned_gauge ? *e.owned_gauge : 0.0;
    case MetricKind::kHistogram:
      return e.hist != nullptr ? static_cast<double>(e.hist->count()) : 0.0;
  }
  return 0.0;
}

void Registry::flatten(std::vector<FlatMetric>& out) const {
  for (const Entry& e : entries_) {
    if (e.kind == MetricKind::kHistogram && e.hist != nullptr) {
      out.push_back({e.name + ".count", static_cast<double>(e.hist->count())});
      out.push_back({e.name + ".mean", e.hist->mean()});
      out.push_back({e.name + ".p50", e.hist->percentile(50.0)});
      out.push_back({e.name + ".p99", e.hist->percentile(99.0)});
      out.push_back({e.name + ".p999", e.hist->percentile(99.9)});
      out.push_back({e.name + ".max", e.hist->max()});
    } else {
      out.push_back({e.name, entry_value(e)});
    }
  }
}

std::string Registry::to_jsonl() const {
  std::vector<FlatMetric> flat;
  flatten(flat);
  std::string out;
  out.reserve(flat.size() * 64);
  char buf[512];
  for (const FlatMetric& m : flat) {
    std::snprintf(buf, sizeof(buf), "{\"metric\":\"%s\",\"value\":%.10g}\n",
                  m.name.c_str(), m.value);
    out += buf;
  }
  return out;
}

std::uint64_t Registry::add_entry(Entry e) {
  e.id = next_id_++;
  const std::uint64_t id = e.id;
  by_name_[e.name] = entries_.size();
  entries_.push_back(std::move(e));
  return id;
}

void Registry::freeze_entries(const std::vector<std::uint64_t>& ids) {
  if (ids.empty() || entries_.empty()) return;
  auto listed = [&ids](const Entry& e) {
    for (const std::uint64_t id : ids) {
      if (e.id == id) return true;
    }
    return false;
  };
  for (Entry& e : entries_) {
    if (!listed(e)) continue;
    // Copy the last value out of the component that is about to die, so the
    // metric survives for end-of-run export (bench --telemetry-out dumps
    // after the stacks are destroyed). Owned storage is already safe.
    switch (e.kind) {
      case MetricKind::kCounter:
        if (!e.owned_counter && e.counter != nullptr) {
          e.owned_counter = std::make_unique<std::uint64_t>(*e.counter);
          e.counter = e.owned_counter.get();
        }
        break;
      case MetricKind::kGauge:
        if (e.gauge_fn) {
          e.owned_gauge = std::make_unique<double>(e.gauge_fn());
          e.gauge_fn = nullptr;
        }
        break;
      case MetricKind::kHistogram:
        if (!e.owned_hist && e.hist != nullptr) {
          e.owned_hist = std::make_unique<Histogram>(*e.hist);
          e.hist = e.owned_hist.get();
        }
        break;
    }
  }
}

const Registry::Entry* Registry::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return nullptr;
  return &entries_[it->second];
}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

Scope::Scope(Registry& registry, std::string prefix)
    : registry_(registry.enabled() ? &registry : nullptr),
      prefix_(std::move(prefix)) {}

Scope::Scope(Scope&& other) noexcept
    : registry_(other.registry_),
      prefix_(std::move(other.prefix_)),
      ids_(std::move(other.ids_)) {
  other.registry_ = nullptr;
  other.ids_.clear();
}

Scope& Scope::operator=(Scope&& other) noexcept {
  if (this != &other) {
    release();
    registry_ = other.registry_;
    prefix_ = std::move(other.prefix_);
    ids_ = std::move(other.ids_);
    other.registry_ = nullptr;
    other.ids_.clear();
  }
  return *this;
}

Scope::~Scope() { release(); }

void Scope::release() {
  if (registry_ != nullptr && !ids_.empty()) {
    registry_->freeze_entries(ids_);
  }
  registry_ = nullptr;
  ids_.clear();
}

std::string Scope::full(const char* name) const {
  std::string out = prefix_;
  out += '.';
  out += name;
  return out;
}

Counter Scope::counter(const char* name) {
  if (registry_ == nullptr) return Counter{};
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kCounter;
  e.owned_counter = std::make_unique<std::uint64_t>(0);
  e.counter = e.owned_counter.get();
  std::uint64_t* slot = e.owned_counter.get();
  ids_.push_back(registry_->add_entry(std::move(e)));
  return Counter{slot};
}

Gauge Scope::gauge(const char* name) {
  if (registry_ == nullptr) return Gauge{};
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kGauge;
  e.owned_gauge = std::make_unique<double>(0.0);
  double* slot = e.owned_gauge.get();
  ids_.push_back(registry_->add_entry(std::move(e)));
  return Gauge{slot};
}

HistogramHandle Scope::histogram(const char* name, double min_value,
                                 double max_value) {
  if (registry_ == nullptr) return HistogramHandle{};
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kHistogram;
  e.owned_hist = std::make_unique<Histogram>(min_value, max_value);
  e.hist = e.owned_hist.get();
  Histogram* slot = e.owned_hist.get();
  ids_.push_back(registry_->add_entry(std::move(e)));
  return HistogramHandle{slot};
}

void Scope::bind_counter(const char* name, const std::uint64_t* value) {
  if (registry_ == nullptr) return;
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kCounter;
  e.counter = value;
  ids_.push_back(registry_->add_entry(std::move(e)));
}

void Scope::bind_gauge(const char* name, std::function<double()> fn) {
  if (registry_ == nullptr) return;
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kGauge;
  e.gauge_fn = std::move(fn);
  ids_.push_back(registry_->add_entry(std::move(e)));
}

void Scope::bind_histogram(const char* name, const Histogram* hist) {
  if (registry_ == nullptr) return;
  Registry::Entry e;
  e.name = full(name);
  e.kind = MetricKind::kHistogram;
  e.hist = hist;
  ids_.push_back(registry_->add_entry(std::move(e)));
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

Registry& registry() {
  return t_registry != nullptr ? *t_registry : default_registry();
}

Registry* set_thread_registry(Registry* r) {
  Registry* prev = t_registry;
  t_registry = r;
  detail::g_metrics_on = registry().enabled();
  return prev;
}

}  // namespace sdr::telemetry
