// Flight recorder: per-connection ring of the last-N protocol state
// transitions, snapshot-dumpable as JSON for postmortems.
//
// When an sdrcheck oracle fails, the seed repro line says *which* run broke;
// the flight recorder says *what the protocol was doing* right before: SR
// window fill and RTO decisions, EC repair/fallback state, RC ePSN motion.
// Each connection (keyed by its control/transport QP number) keeps a bounded
// ring of tagged records — old transitions are overwritten, so a dump is
// always "the last N things each connection did", which is exactly the
// postmortem view.
//
// Records are PODs with a static-string tag and three generic operand
// slots; per-tag operand meaning is documented at the record sites and in
// DESIGN.md §4f. Same zero-overhead-when-disabled contract as the tracer:
// `flight_recording()` is a plain thread-local bool load, and record sites
// are guarded by it, so the disarmed recorder costs one never-taken branch
// and zero allocations.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sdr::telemetry {

namespace detail {
// Mirrors the *current thread's* flight-recorder armed state. constinit
// (here and on the other fast flags) keeps cross-TU reads a bare TLS load:
// without it the compiler must route every access through the dynamic-init
// guard, which costs a branch per guard check and miscompiles under
// -fsanitize=null on GCC 12 (stale-flags branch into the null trap).
extern thread_local constinit bool g_flight_on;
}  // namespace detail

enum class FlightLayer : std::uint8_t { kSr, kEc, kRc, kSdr };

const char* to_string(FlightLayer layer);

struct FlightRecord {
  SimTime t{};
  FlightLayer layer{FlightLayer::kSr};
  const char* what{""};  // static string literal at the record site
  std::uint64_t msg{0};
  std::uint64_t a{0};
  std::uint64_t b{0};
  std::uint64_t c{0};
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts accepting records; each connection's ring holds the last
  /// `per_conn_capacity` transitions (ring storage is allocated lazily on a
  /// connection's first record — arming itself allocates nothing).
  void arm(std::size_t per_conn_capacity = 128);
  void disarm();
  bool armed() const { return armed_; }
  void clear();

  void record(FlightLayer layer, std::uint64_t conn, const char* what,
              SimTime t, std::uint64_t msg, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0);

  std::size_t connections() const { return rings_.size(); }
  std::size_t per_conn_capacity() const { return per_conn_; }
  /// A connection's surviving records, oldest first.
  std::vector<FlightRecord> history(std::uint64_t conn) const;

  /// {"connections":[{"conn":N,"overwritten":K,"records":[...]}]} with
  /// connections in ascending id order (deterministic dumps).
  std::string to_json() const;

 private:
  struct Ring {
    std::vector<FlightRecord> buf;
    std::size_t head{0};  // next write position
    std::size_t size{0};
    std::uint64_t overwritten{0};
  };

  bool armed_{false};
  std::size_t per_conn_{128};
  std::map<std::uint64_t, Ring> rings_;  // ordered: deterministic JSON
};

/// The calling thread's current flight recorder (set_thread_flight override
/// or the process-wide default).
FlightRecorder& flight();
FlightRecorder* set_thread_flight(FlightRecorder* f);

/// True when this thread's flight recorder accepts records; one branch.
inline bool flight_recording() { return detail::g_flight_on; }

}  // namespace sdr::telemetry
