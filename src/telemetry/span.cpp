#include "telemetry/span.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/logging.hpp"

namespace sdr::telemetry {

namespace detail {
thread_local constinit bool g_spans_on = false;
}  // namespace detail

namespace {

SpanRecorder& default_spans() {
  static SpanRecorder instance;
  return instance;
}

thread_local SpanRecorder* t_spans = nullptr;

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kMessage: return "message";
    case SpanKind::kChunk: return "chunk";
    case SpanKind::kAttempt: return "attempt";
    case SpanKind::kInstant: return "instant";
  }
  return "unknown";
}

const char* to_string(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kOpen: return "open";
    case SpanOutcome::kComplete: return "complete";
    case SpanOutcome::kDropped: return "dropped";
    case SpanOutcome::kQueueDrop: return "queue_drop";
    case SpanOutcome::kSuperseded: return "superseded";
  }
  return "unknown";
}

void SpanRecorder::arm(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  pool_.assign(capacity, Span{});
  size_ = 0;
  truncated_ = 0;
  last_t_ = SimTime{};
  current_track_ = 0;
  track_names_.assign(1, "default");
  open_msgs_.clear();
  open_chunks_.clear();
  open_attempts_.clear();
  armed_ = true;
  if (this == &spans()) detail::g_spans_on = true;
  SDR_INFO("span recorder armed (pool capacity %zu spans)", capacity);
}

void SpanRecorder::disarm() {
  SDR_INFO("span recorder disarmed (%zu spans recorded, %" PRIu64
           " truncated)",
           size_, truncated_);
  armed_ = false;
  pool_.clear();
  pool_.shrink_to_fit();
  size_ = 0;
  truncated_ = 0;
  track_names_.clear();
  open_msgs_.clear();
  open_chunks_.clear();
  open_attempts_.clear();
  if (this == &spans()) detail::g_spans_on = false;
}

void SpanRecorder::clear() {
  size_ = 0;
  truncated_ = 0;
  last_t_ = SimTime{};
  open_msgs_.clear();
  open_chunks_.clear();
  open_attempts_.clear();
}

std::uint16_t SpanRecorder::track(const std::string& name) {
  if (!armed_) return 0;
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) {
      current_track_ = static_cast<std::uint16_t>(i);
      return current_track_;
    }
  }
  track_names_.push_back(name);
  current_track_ = static_cast<std::uint16_t>(track_names_.size() - 1);
  return current_track_;
}

SpanIndex SpanRecorder::alloc(SimTime t, SpanKind kind) {
  if (size_ == pool_.size()) {
    ++truncated_;
    return kNoSpan;
  }
  const auto i = static_cast<SpanIndex>(size_++);
  Span& s = pool_[i];
  s = Span{};
  s.begin = t;
  s.end = t;
  s.kind = kind;
  s.track = current_track_;
  return i;
}

SpanIndex SpanRecorder::ensure_message(SimTime t, std::uint64_t msg,
                                       std::uint32_t qp) {
  if (const auto it = open_msgs_.find(msg); it != open_msgs_.end()) {
    return it->second;
  }
  const SpanIndex i = alloc(t, SpanKind::kMessage);
  if (i == kNoSpan) return kNoSpan;
  pool_[i].msg = msg;
  pool_[i].qp = qp;
  open_msgs_.emplace(msg, i);
  return i;
}

SpanRecorder::OpenChunk* SpanRecorder::ensure_chunk(SimTime t,
                                                    std::uint64_t msg,
                                                    std::uint32_t chunk) {
  const ChunkKey key{msg, chunk};
  if (const auto it = open_chunks_.find(key); it != open_chunks_.end()) {
    return &it->second;
  }
  const SpanIndex parent = ensure_message(t, msg, 0);
  const SpanIndex i = alloc(t, SpanKind::kChunk);
  if (i == kNoSpan) return nullptr;
  pool_[i].msg = msg;
  pool_[i].chunk = chunk;
  pool_[i].parent = parent;
  return &open_chunks_.emplace(key, OpenChunk{i, kNoSpan, 0}).first->second;
}

void SpanRecorder::close(SpanIndex i, SimTime t, SpanOutcome outcome) {
  Span& s = pool_[i];
  s.end = t;
  s.outcome = outcome;
}

void SpanRecorder::on_posted(SimTime t, std::uint32_t qp, std::uint64_t msg,
                             std::uint32_t chunk, std::uint32_t packet,
                             std::uint32_t imm, std::uint64_t bytes) {
  if (!armed_) return;
  last_t_ = t;
  ensure_message(t, msg, qp);
  OpenChunk* oc = ensure_chunk(t, msg, chunk);
  if (oc == nullptr) return;
  // A re-post of an attempt still in flight (spurious RTO): the old attempt
  // span yields to the new one.
  if (const auto it = open_attempts_.find(imm); it != open_attempts_.end()) {
    close(it->second, t, SpanOutcome::kSuperseded);
    open_attempts_.erase(it);
  }
  const SpanIndex i = alloc(t, SpanKind::kAttempt);
  if (i == kNoSpan) return;
  Span& s = pool_[i];
  s.qp = qp;
  s.msg = msg;
  s.chunk = chunk;
  s.packet = packet;
  s.imm = imm;
  s.bytes = bytes;
  s.parent = oc->span;
  s.attempt = oc->attempts++;
  s.cause = oc->pending_cause;
  open_attempts_.emplace(imm, i);
}

void SpanRecorder::on_wire(SimTime t, TraceEventType type, std::uint32_t imm) {
  if (!armed_) return;
  last_t_ = t;
  const auto it = open_attempts_.find(imm);
  if (it == open_attempts_.end()) return;  // duplicate copy / unknown packet
  const SpanIndex i = it->second;
  Span& s = pool_[i];
  s.what = type;
  switch (type) {
    case TraceEventType::kDelivered:
      close(i, t, SpanOutcome::kComplete);
      break;
    case TraceEventType::kDropped:
      close(i, t, SpanOutcome::kDropped);
      break;
    case TraceEventType::kQueueDrop:
      close(i, t, SpanOutcome::kQueueDrop);
      break;
    default:
      return;  // tx/reorder markers: attempt stays open
  }
  open_attempts_.erase(it);
  // A lost attempt seeds the chunk's recovery chain: the rto/nack instant
  // and the retransmission attempt that follow link back to it.
  if (s.outcome != SpanOutcome::kComplete) {
    if (const auto cit = open_chunks_.find(ChunkKey{s.msg, s.chunk});
        cit != open_chunks_.end()) {
      cit->second.pending_cause = i;
    }
  }
}

void SpanRecorder::on_chunk_done(SimTime t, std::uint64_t msg,
                                 std::uint32_t chunk) {
  if (!armed_) return;
  last_t_ = t;
  const auto it = open_chunks_.find(ChunkKey{msg, chunk});
  if (it == open_chunks_.end()) return;
  close(it->second.span, t, SpanOutcome::kComplete);
  open_chunks_.erase(it);
}

void SpanRecorder::on_msg_complete(SimTime t, std::uint64_t msg) {
  if (!armed_) return;
  last_t_ = t;
  const auto it = open_msgs_.find(msg);
  if (it == open_msgs_.end()) return;
  close(it->second, t, SpanOutcome::kComplete);
  open_msgs_.erase(it);
  // Chunks whose bitmap event raced the completion close with the message.
  for (auto cit = open_chunks_.begin(); cit != open_chunks_.end();) {
    if (cit->first.msg == msg) {
      close(cit->second.span, t, SpanOutcome::kComplete);
      cit = open_chunks_.erase(cit);
    } else {
      ++cit;
    }
  }
}

void SpanRecorder::on_rto(SimTime t, std::uint64_t msg, std::uint32_t chunk) {
  if (!armed_) return;
  last_t_ = t;
  OpenChunk* oc =
      chunk != kNoChunk ? ensure_chunk(t, msg, chunk) : nullptr;
  const SpanIndex i = alloc(t, SpanKind::kInstant);
  if (i == kNoSpan) return;
  Span& s = pool_[i];
  s.what = TraceEventType::kRtoFired;
  s.msg = msg;
  s.chunk = chunk;
  if (oc != nullptr) {
    s.parent = oc->span;
    s.cause = oc->pending_cause;
    oc->pending_cause = i;
  } else if (msg != kNoMsg) {
    s.parent = ensure_message(t, msg, 0);
  }
}

void SpanRecorder::on_retransmit(SimTime t, std::uint64_t msg,
                                 std::uint32_t chunk, std::uint64_t bytes) {
  if (!armed_) return;
  last_t_ = t;
  OpenChunk* oc = ensure_chunk(t, msg, chunk);
  const SpanIndex i = alloc(t, SpanKind::kInstant);
  if (i == kNoSpan) return;
  Span& s = pool_[i];
  s.what = TraceEventType::kRetransmit;
  s.msg = msg;
  s.chunk = chunk;
  s.bytes = bytes;
  if (oc != nullptr) {
    s.parent = oc->span;
    s.cause = oc->pending_cause;
    oc->pending_cause = i;
  }
}

void SpanRecorder::on_instant(SimTime t, TraceEventType what,
                              std::uint64_t msg, std::uint32_t chunk) {
  if (!armed_) return;
  last_t_ = t;
  const SpanIndex i = alloc(t, SpanKind::kInstant);
  if (i == kNoSpan) return;
  Span& s = pool_[i];
  s.what = what;
  s.msg = msg;
  s.chunk = chunk;
  if (msg == kNoMsg) return;
  if (chunk != kNoChunk) {
    if (const auto it = open_chunks_.find(ChunkKey{msg, chunk});
        it != open_chunks_.end()) {
      s.parent = it->second.span;
      return;
    }
  }
  if (const auto it = open_msgs_.find(msg); it != open_msgs_.end()) {
    s.parent = it->second;
  }
}

std::vector<SpanIndex> SpanRecorder::children(SpanIndex parent) const {
  std::vector<SpanIndex> out;
  for (std::size_t i = 0; i < size_; ++i) {
    if (pool_[i].parent == parent) out.push_back(static_cast<SpanIndex>(i));
  }
  return out;
}

SpanIndex SpanRecorder::find_message(std::uint64_t msg) const {
  for (std::size_t i = 0; i < size_; ++i) {
    if (pool_[i].kind == SpanKind::kMessage && pool_[i].msg == msg) {
      return static_cast<SpanIndex>(i);
    }
  }
  return kNoSpan;
}

SimTime SpanRecorder::effective_end(const Span& s) const {
  if (s.outcome != SpanOutcome::kOpen) return s.end;
  return std::max(s.begin, last_t_);
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof(buf) - 1));
}

// Trace-event rows: one Perfetto "thread" per span kind inside each scheme's
// "process".
int tid_of(SpanKind kind) {
  switch (kind) {
    case SpanKind::kMessage: return 1;
    case SpanKind::kChunk: return 2;
    case SpanKind::kAttempt: return 3;
    case SpanKind::kInstant: return 2;  // decisions render on the chunk row
  }
  return 0;
}

}  // namespace

void SpanRecorder::append_chrome_events(std::string& out, int pid_base) const {
  bool first = out.empty();
  const auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  // Track-group metadata: process_name per scheme, thread_name per row.
  for (std::size_t tr = 0; tr < track_names_.size(); ++tr) {
    const int pid = pid_base + static_cast<int>(tr);
    comma();
    append_fmt(out,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
               "\"tid\":0,\"args\":{\"name\":\"scheme: %s\"}}",
               pid, track_names_[tr].c_str());
    static const char* kRows[] = {"messages", "chunks", "packets"};
    for (int row = 0; row < 3; ++row) {
      comma();
      append_fmt(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 pid, row + 1, kRows[row]);
    }
  }
  std::uint64_t flow_id = 1;
  for (std::size_t i = 0; i < size_; ++i) {
    const Span& s = pool_[i];
    const int pid = pid_base + s.track;
    const int tid = tid_of(s.kind);
    const double ts_us = s.begin.seconds() * 1e6;
    char name[96];
    switch (s.kind) {
      case SpanKind::kMessage:
        std::snprintf(name, sizeof(name), "msg %" PRIu64, s.msg);
        break;
      case SpanKind::kChunk:
        std::snprintf(name, sizeof(name), "chunk %" PRIu32, s.chunk);
        break;
      case SpanKind::kAttempt:
        std::snprintf(name, sizeof(name), "pkt %" PRIu32 " #%" PRIu32,
                      s.packet, s.attempt);
        break;
      case SpanKind::kInstant:
        std::snprintf(name, sizeof(name), "%s", to_string(s.what));
        break;
    }
    comma();
    if (s.kind == SpanKind::kInstant) {
      append_fmt(out,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                 "\"ts\":%.3f,\"pid\":%d,\"tid\":%d",
                 name, to_string(s.kind), ts_us, pid, tid);
    } else {
      const double dur_us =
          std::max(0.0, (effective_end(s) - s.begin).seconds() * 1e6);
      append_fmt(out,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d",
                 name, to_string(s.kind), ts_us, dur_us, pid, tid);
    }
    append_fmt(out, ",\"args\":{\"outcome\":\"%s\"", to_string(s.outcome));
    if (s.msg != kNoMsg) append_fmt(out, ",\"msg\":%" PRIu64, s.msg);
    if (s.chunk != kNoChunk) append_fmt(out, ",\"chunk\":%" PRIu32, s.chunk);
    if (s.kind == SpanKind::kAttempt) {
      append_fmt(out, ",\"packet\":%" PRIu32 ",\"attempt\":%" PRIu32, s.packet,
                 s.attempt);
      if (s.imm != kNoImm) append_fmt(out, ",\"imm\":%" PRIu32, s.imm);
    }
    if (s.bytes != 0) append_fmt(out, ",\"bytes\":%" PRIu64, s.bytes);
    out.append("}}");
    // Cause link: a flow arrow from the end of the cause span to this
    // span's begin.
    if (s.cause != kNoSpan && s.cause < size_) {
      const Span& c = pool_[s.cause];
      const double cts_us = effective_end(c).seconds() * 1e6;
      comma();
      append_fmt(out,
                 "{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"s\","
                 "\"id\":%" PRIu64 ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}",
                 flow_id, cts_us, pid_base + c.track, tid_of(c.kind));
      comma();
      append_fmt(out,
                 "{\"name\":\"cause\",\"cat\":\"cause\",\"ph\":\"f\","
                 "\"bp\":\"e\",\"id\":%" PRIu64
                 ",\"ts\":%.3f,\"pid\":%d,\"tid\":%d}",
                 flow_id, ts_us, pid, tid);
      ++flow_id;
    }
  }
}

std::string SpanRecorder::wrap_chrome_events(const std::string& events) {
  std::string out;
  out.reserve(events.size() + 64);
  out.append("{\"traceEvents\":[");
  out.append(events);
  out.append("],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string SpanRecorder::to_chrome_json() const {
  std::string events;
  events.reserve(size_ * 160);
  append_chrome_events(events, /*pid_base=*/1);
  return wrap_chrome_events(events);
}

SpanRecorder& spans() {
  return t_spans != nullptr ? *t_spans : default_spans();
}

SpanRecorder* set_thread_spans(SpanRecorder* s) {
  SpanRecorder* prev = t_spans;
  t_spans = s;
  detail::g_spans_on = spans().armed();
  return prev;
}

}  // namespace sdr::telemetry
