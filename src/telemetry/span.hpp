// Causal span recorder: the tracer's flat event stream turned into a
// message -> chunk -> packet-attempt tree with cause links.
//
// The tracer (trace.hpp) answers "what happened"; spans answer "why was this
// message slow". Each message owns one span per chunk, each chunk owns one
// span per wire attempt (original injection and every retransmission), and
// instant spans mark the protocol decisions in between (rto_fired, ack_sent,
// ec_repair, ...). Cause links chain a chunk's recovery story:
//
//   attempt#0 --dropped--> rto_fired --> retransmit --> attempt#1 (delivered)
//
// which is exactly the p99.9 outlier loop in Figs 10/13. The recorder is fed
// from the same emit sites as the tracer via typed hooks (on_posted /
// on_wire / on_rto / ...) guarded by `telemetry::spanning()` — a plain
// thread-local bool load, so a disarmed recorder costs one never-taken
// branch per site and zero allocations, the same contract as the registry
// and tracer.
//
// Spans live in a bounded pool preallocated at arm(); when it fills, new
// spans are counted as truncated and dropped (existing spans keep closing).
// Export is Chrome trace-event JSON (to_chrome_json) loadable in Perfetto /
// chrome://tracing: one process ("track group") per scheme registered with
// track(), one thread row per span kind, and s/f flow arrows for the cause
// links.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "telemetry/trace.hpp"

namespace sdr::telemetry {

namespace detail {
// Mirrors the *current thread's* span-recorder armed state (kept in sync by
// SpanRecorder::arm/disarm and set_thread_spans).
extern thread_local constinit bool g_spans_on;
}  // namespace detail

using SpanIndex = std::uint32_t;
inline constexpr SpanIndex kNoSpan = 0xFFFFFFFFu;

enum class SpanKind : std::uint8_t {
  kMessage,  // recv_post/first injection .. msg_complete
  kChunk,    // first packet posted .. bitmap chunk completion
  kAttempt,  // one wire attempt: posted .. delivered/dropped/superseded
  kInstant,  // zero-duration protocol decision (rto_fired, ack_sent, ...)
};

enum class SpanOutcome : std::uint8_t {
  kOpen,        // never closed (still in flight at export time)
  kComplete,    // delivered / chunk completed / message completed
  kDropped,     // wire attempt lost to the drop model
  kQueueDrop,   // wire attempt lost to egress tail-drop
  kSuperseded,  // a retransmission was posted while this attempt was in
                // flight (spurious RTO) — the new attempt takes over
};

const char* to_string(SpanKind kind);
const char* to_string(SpanOutcome outcome);

struct Span {
  SimTime begin{};
  SimTime end{};
  SpanKind kind{SpanKind::kMessage};
  SpanOutcome outcome{SpanOutcome::kOpen};
  TraceEventType what{TraceEventType::kPosted};  // instants: which decision
  std::uint16_t track{0};
  std::uint32_t qp{0};
  std::uint64_t msg{kNoMsg};
  std::uint32_t chunk{kNoChunk};   // chunk index (attr.chunk_size units)
  std::uint32_t packet{kNoChunk};  // wire packet index (mtu units), attempts
  std::uint32_t imm{kNoImm};       // wire immediate, attempts only
  std::uint32_t attempt{0};        // attempt ordinal within the chunk
  std::uint64_t bytes{0};
  SpanIndex parent{kNoSpan};  // chunk -> message, attempt/instant -> chunk
  SpanIndex cause{kNoSpan};   // causal predecessor (drop -> rto -> rtx -> ..)
};

class SpanRecorder {
 public:
  SpanRecorder() = default;
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Preallocates the span pool and starts accepting hooks.
  void arm(std::size_t capacity = 1u << 16);
  /// Stops accepting hooks and frees the pool.
  void disarm();
  bool armed() const { return armed_; }
  void clear();

  /// Registers (or re-selects) a per-scheme track group; spans recorded
  /// afterwards belong to it. Track 0 ("default") exists implicitly.
  std::uint16_t track(const std::string& name);

  // ---- typed hooks (call sites guard with telemetry::spanning()) ----
  /// SDR staged one packet: opens message/chunk spans on demand and a fresh
  /// attempt span. `chunk` is the reliability-layer chunk index
  /// (attr.chunk_size units); `packet` the wire packet index (mtu units).
  void on_posted(SimTime t, std::uint32_t qp, std::uint64_t msg,
                 std::uint32_t chunk, std::uint32_t packet, std::uint32_t imm,
                 std::uint64_t bytes);
  /// Channel verdict for an in-flight attempt, joined by immediate:
  /// kDelivered / kDropped / kQueueDrop close the attempt span.
  void on_wire(SimTime t, TraceEventType type, std::uint32_t imm);
  /// Receiver bitmap marked the chunk complete: closes the chunk span.
  void on_chunk_done(SimTime t, std::uint64_t msg, std::uint32_t chunk);
  /// Message fully received: closes the message span and any chunk spans
  /// of it still open.
  void on_msg_complete(SimTime t, std::uint64_t msg);
  /// Retransmission/fallback timeout fired for (msg, chunk): instant span
  /// caused by the chunk's latest drop, and the cause of what follows.
  void on_rto(SimTime t, std::uint64_t msg, std::uint32_t chunk);
  /// Chunk re-sent: instant span; subsequent attempts of the chunk link to
  /// it as their cause.
  void on_retransmit(SimTime t, std::uint64_t msg, std::uint32_t chunk,
                     std::uint64_t bytes);
  /// Any other protocol decision (cts, ack_sent, nack_sent, ec_repair,
  /// ec_fallback, rc rto/retransmit with msg == kNoMsg): instant span
  /// attached to the (msg, chunk) chunk span, else the msg span, else root.
  void on_instant(SimTime t, TraceEventType what, std::uint64_t msg,
                  std::uint32_t chunk);

  // ---- queries ----
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return pool_.size(); }
  std::uint64_t truncated() const { return truncated_; }
  const Span& at(SpanIndex i) const { return pool_[i]; }
  /// Children of `parent` (kNoSpan: root spans), in recording order.
  std::vector<SpanIndex> children(SpanIndex parent) const;
  /// Message span index for `msg`, or kNoSpan.
  SpanIndex find_message(std::uint64_t msg) const;

  // ---- export ----
  /// Complete Chrome trace-event JSON document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}. Open spans are emitted
  /// with end = the last observed sim time and outcome "open".
  std::string to_chrome_json() const;
  /// The bare event objects (comma-separated, no wrapper), with process ids
  /// offset by `pid_base` so several recorders merge into one document.
  void append_chrome_events(std::string& out, int pid_base) const;
  static std::string wrap_chrome_events(const std::string& events);

 private:
  struct ChunkKey {
    std::uint64_t msg;
    std::uint32_t chunk;
    bool operator==(const ChunkKey&) const = default;
  };
  struct ChunkKeyHash {
    std::size_t operator()(const ChunkKey& k) const {
      std::uint64_t h = k.msg * 0x9E3779B97F4A7C15ull;
      h ^= (h >> 29) ^ (static_cast<std::uint64_t>(k.chunk) << 1);
      return static_cast<std::size_t>(h * 0xBF58476D1CE4E5B9ull);
    }
  };
  struct OpenChunk {
    SpanIndex span{kNoSpan};
    // Latest causal predecessor for the chunk's next span: the attempt
    // whose drop started the recovery, then the rto instant, then the
    // retransmit instant, then consumed by the next attempt.
    SpanIndex pending_cause{kNoSpan};
    std::uint32_t attempts{0};
  };

  SpanIndex alloc(SimTime t, SpanKind kind);
  SpanIndex ensure_message(SimTime t, std::uint64_t msg, std::uint32_t qp);
  OpenChunk* ensure_chunk(SimTime t, std::uint64_t msg, std::uint32_t chunk);
  void close(SpanIndex i, SimTime t, SpanOutcome outcome);
  SimTime effective_end(const Span& s) const;

  bool armed_{false};
  std::vector<Span> pool_;
  std::size_t size_{0};
  std::uint64_t truncated_{0};
  SimTime last_t_{};
  std::uint16_t current_track_{0};
  std::vector<std::string> track_names_;
  std::unordered_map<std::uint64_t, SpanIndex> open_msgs_;
  std::unordered_map<ChunkKey, OpenChunk, ChunkKeyHash> open_chunks_;
  std::unordered_map<std::uint32_t, SpanIndex> open_attempts_;  // by imm
};

/// The calling thread's current span recorder: the instance installed with
/// set_thread_spans, or the process-wide default when none is installed.
SpanRecorder& spans();

/// Install `s` as the calling thread's current recorder (nullptr restores
/// the process-wide default) and resync detail::g_spans_on. Returns the
/// previous override; prefer the ScopedTelemetry RAII guard.
SpanRecorder* set_thread_spans(SpanRecorder* s);

/// True when this thread's span recorder accepts hooks; one plain branch.
inline bool spanning() { return detail::g_spans_on; }

}  // namespace sdr::telemetry
