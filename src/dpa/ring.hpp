// Single-producer/single-consumer completion ring.
//
// Models the per-channel completion queues of the multi-channel SDR
// offloading architecture (paper Figure 7): the NIC (producer) deposits one
// raw completion per packet; one DPA worker thread (consumer) drains its
// ring and runs the bitmap-update logic. Lock-free with acquire/release
// indices, power-of-two capacity.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace sdr::dpa {

/// The 8-byte completion record a DPA worker consumes per packet: the
/// 32-bit transport immediate plus the generation of the delivering QP.
struct RawCqe {
  std::uint32_t imm{0};
  std::uint32_t generation{0};
};

class CompletionRing {
 public:
  explicit CompletionRing(std::size_t capacity_pow2 = 1 << 14)
      : mask_(capacity_pow2 - 1), entries_(capacity_pow2) {
    // capacity must be a power of two
    if ((capacity_pow2 & mask_) != 0) {
      entries_.assign(std::size_t{1} << 14, RawCqe{});
      mask_ = entries_.size() - 1;
    }
  }

  /// Producer: returns false when the ring is full (backpressure — the
  /// bench generator spins, hardware would raise a CQ overrun).
  bool push(RawCqe cqe) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    entries_[head & mask_] = cqe;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: returns false when empty.
  bool pop(RawCqe& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = entries_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: drain up to `max` completions with one acquire of the
  /// producer index and one release of the consumer index, instead of an
  /// atomic round-trip per CQE. Returns the number copied out.
  std::size_t pop_batch(RawCqe* out, std::size_t max) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t avail = head - tail;
    if (avail == 0) return 0;
    if (avail > max) avail = max;
    for (std::uint64_t i = 0; i < avail; ++i) {
      out[i] = entries_[(tail + i) & mask_];
    }
    tail_.store(tail + avail, std::memory_order_release);
    return static_cast<std::size_t>(avail);
  }

  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  // Index layout: producer-written head_, consumer-written tail_, and the
  // shared read-only fields (mask_, the vector header) each get their own
  // cache line. Without the third alignas, mask_/entries_ land on tail_'s
  // line and every producer-side read of them is a false-sharing miss
  // against the consumer's tail_ stores.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::size_t mask_;
  std::vector<RawCqe> entries_;
};

}  // namespace sdr::dpa
