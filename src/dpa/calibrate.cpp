#include "dpa/calibrate.hpp"

#include <algorithm>
#include <chrono>

#include "dpa/engine.hpp"
#include "sdr/message_table.hpp"
#include "verbs/types.hpp"

namespace sdr::dpa {

namespace {
using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point begin, Clock::time_point end) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}
}  // namespace

Calibration calibrate(const core::QpAttr& attr, std::size_t iterations) {
  Calibration cal;
  core::MessageTable table(attr);
  core::ImmCodec codec(attr.imm);
  WorkerStats stats;

  // --- per-CQE cost: stream completions for full messages through the
  // real backend path, re-arming slots as messages complete.
  {
    const std::size_t packets = attr.max_packets_per_msg();
    std::size_t slot = 0;
    std::uint32_t generation = 0;
    table.arm(slot, generation, attr.max_msg_size);
    std::size_t pkt = 0;
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < iterations; ++i) {
      const std::uint32_t imm = codec.encode(
          static_cast<std::uint32_t>(slot), static_cast<std::uint32_t>(pkt), 0);
      Engine::process(table, codec, RawCqe{imm, generation}, stats);
      if (++pkt == packets) {
        pkt = 0;
        table.release(slot);
        slot = (slot + 1) % attr.max_inflight;
        if (slot == 0) generation =
            static_cast<std::uint32_t>((generation + 1) % attr.generations);
        table.arm(slot, generation, attr.max_msg_size);
      }
    }
    const auto end = Clock::now();
    cal.ns_per_cqe = elapsed_ns(begin, end) / static_cast<double>(iterations);
  }

  // --- per-repost cost: release + re-arm (bitmap clear dominates).
  {
    core::MessageTable fresh(attr);
    const std::size_t reps = std::max<std::size_t>(1024, iterations / 256);
    const auto begin = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
      const std::size_t slot = i % attr.max_inflight;
      if (i >= attr.max_inflight) fresh.release(slot);
      fresh.arm(slot,
                static_cast<std::uint32_t>((i / attr.max_inflight) %
                                           attr.generations),
                attr.max_msg_size);
    }
    const auto end = Clock::now();
    cal.ns_per_repost = elapsed_ns(begin, end) / static_cast<double>(reps);
  }

  // --- chunk-sync cost: one atomic fetch_or on the host bitmap. Measured
  // as the delta between 1-packet chunks (sync every CQE) and the per-CQE
  // cost above; approximate with a fraction since both paths share code.
  cal.ns_per_chunk_sync = cal.ns_per_cqe * 0.25;
  return cal;
}

double achievable_packet_rate(const Calibration& cal, std::size_t workers) {
  if (cal.ns_per_cqe <= 0.0) return 0.0;
  return static_cast<double>(workers) * 1e9 / cal.ns_per_cqe;
}

double wire_packet_rate(double bandwidth_bps, std::size_t mtu_bytes) {
  return bandwidth_bps /
         (8.0 * static_cast<double>(mtu_bytes + verbs::kPacketHeaderBytes));
}

double modeled_throughput_bps(const Calibration& cal,
                              const core::QpAttr& attr, double bandwidth_bps,
                              std::size_t msg_bytes, std::size_t workers) {
  const double packets =
      static_cast<double>((msg_bytes + attr.mtu - 1) / attr.mtu);
  const double serialization_ns =
      static_cast<double>(msg_bytes) * 8.0 / bandwidth_bps * 1e9;
  const double processing_ns =
      packets * cal.ns_per_cqe / static_cast<double>(workers);
  // The receive repost (slot reallocation) is serial host software on the
  // message's critical path; it cannot be hidden behind the wire.
  const double per_msg_ns =
      std::max(serialization_ns, processing_ns) + cal.ns_per_repost;
  return static_cast<double>(msg_bytes) * 8.0 / (per_msg_ns * 1e-9);
}

}  // namespace sdr::dpa
