// DPA cost calibration and packet-rate scaling model.
//
// The paper's Figs 14-16 measure the offloaded SDR backend on BlueField-3
// hardware with up to 128 DPA threads. This container exposes a single CPU
// core, so the repository reproduces those figures in two steps, as
// documented in DESIGN.md §1:
//   1. MEASURE the per-CQE processing cost of the real backend code
//      (MessageTable::process_completion through dpa::Engine::process) and
//      the per-message receive repost cost on this host;
//   2. FEED the measured costs into the multi-channel scaling model below —
//      workers process disjoint rings, so aggregate packet rate scales
//      linearly until it hits the wire's packet rate (the paper observes
//      exactly this near-linear scaling, §5.4.3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sdr/config.hpp"

namespace sdr::dpa {

struct Calibration {
  double ns_per_cqe{0.0};       // receive-worker cost per packet completion
  double ns_per_repost{0.0};    // receive slot rearm (bitmap clear + bind)
  double ns_per_chunk_sync{0.0};// host chunk-bitmap update (PCIe proxy)
};

/// Measure per-CQE and per-repost costs of the real backend code on this
/// host. `iterations` completions are timed over an armed message table.
Calibration calibrate(const core::QpAttr& attr, std::size_t iterations = 1u << 20);

/// Paper anchor for a BlueField-3 DPA hardware thread: §5.4.2 measures 16
/// receive threads sustaining ~15 Mpps, i.e. ~0.94 Mpps per thread or
/// ~1064 ns per completion. The DPA's 256 energy-efficient cores are far
/// slower than this host's CPU core; figures that project DPA-thread
/// scaling rescale the host calibration to this anchor so relative shapes
/// (saturation points, thread counts) match the paper's hardware.
inline constexpr double kDpaNsPerCqe = 1064.0;

/// Rescale a host calibration to DPA-core speed (all costs scaled by the
/// same factor — the code path is identical, only the core differs).
inline Calibration dpa_anchored(const Calibration& host) {
  const double factor =
      host.ns_per_cqe > 0.0 ? kDpaNsPerCqe / host.ns_per_cqe : 1.0;
  return Calibration{host.ns_per_cqe * factor, host.ns_per_repost * factor,
                     host.ns_per_chunk_sync * factor};
}

/// Packets/s a pool of `workers` DPA threads sustains given the calibrated
/// per-CQE cost (linear multi-channel scaling; rings are disjoint).
double achievable_packet_rate(const Calibration& cal, std::size_t workers);

/// Wire packet rate of a link: bandwidth / (MTU + header) in packets/s.
double wire_packet_rate(double bandwidth_bps, std::size_t mtu_bytes);

/// Modeled SDR goodput for a message of `msg_bytes` on a `bandwidth_bps`
/// link with `workers` receive threads:
///   time/msg = max(serialization, packet processing) + repost
/// The repost (receive slot reallocation: mkey table update + bitmap
/// cleanup) is serial host software on the message's critical path — the
/// reason the paper's Fig 14 shows SDR trailing RC Writes below ~512 KiB.
double modeled_throughput_bps(const Calibration& cal,
                              const core::QpAttr& attr, double bandwidth_bps,
                              std::size_t msg_bytes, std::size_t workers);

}  // namespace sdr::dpa
