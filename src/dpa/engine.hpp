// Software Data Path Accelerator.
//
// Emulates the BlueField-3 DPA of paper §3.4: a set of worker threads, each
// polling a dedicated completion ring and running the receive backend
// (immediate decode -> generation check -> atomic per-packet bitmap update
// -> chunk coalescing into the host bitmap). The bitmap logic is shared
// with the simulator backend via core::MessageTable::process_completion, so
// the threaded engine exercises exactly the protocol code the paper
// offloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "dpa/ring.hpp"
#include "sdr/imm_codec.hpp"
#include "sdr/message_table.hpp"

namespace sdr::dpa {

// alignas(64): each worker increments its own stats on every CQE; the
// per-worker blocks are heap-allocated and, at 32 bytes, two workers'
// counters can otherwise land on one cache line and ping-pong it.
struct alignas(64) WorkerStats {
  std::uint64_t processed{0};
  std::uint64_t chunks_completed{0};
  std::uint64_t messages_completed{0};
  std::uint64_t discarded{0};
};

class Engine {
 public:
  /// `workers` receive DPA threads, each with a `ring_capacity` CQE ring.
  Engine(core::MessageTable& table, std::size_t workers,
         std::size_t ring_capacity = 1 << 14);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::size_t workers() const { return rings_.size(); }
  CompletionRing& ring(std::size_t worker) { return *rings_[worker]; }

  /// Start the worker threads (busy-poll their rings until stop()).
  void start();
  /// Drain-and-stop: workers exit once their rings are empty.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Block until all rings are empty (producers quiesced first).
  void wait_idle() const;

  WorkerStats stats(std::size_t worker) const;
  WorkerStats total_stats() const;

  /// Synchronous single-CQE processing (the simulator-backend path and the
  /// calibration loop use this directly, bypassing threads).
  static void process(core::MessageTable& table, const core::ImmCodec& codec,
                      RawCqe cqe, WorkerStats& stats);

 private:
  void worker_loop(std::size_t index);

  core::MessageTable& table_;
  core::ImmCodec codec_;
  std::vector<std::unique_ptr<CompletionRing>> rings_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace sdr::dpa
