#include "dpa/engine.hpp"

#include <cassert>

namespace sdr::dpa {

Engine::Engine(core::MessageTable& table, std::size_t workers,
               std::size_t ring_capacity)
    : table_(table), codec_(table.attr().imm) {
  assert(workers >= 1);
  rings_.reserve(workers);
  stats_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    rings_.push_back(std::make_unique<CompletionRing>(ring_capacity));
    stats_.push_back(std::make_unique<WorkerStats>());
  }
}

Engine::~Engine() { stop(); }

void Engine::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  stopping_.store(false, std::memory_order_release);
  threads_.reserve(rings_.size());
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void Engine::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

void Engine::wait_idle() const {
  for (const auto& ring : rings_) {
    while (!ring->empty()) std::this_thread::yield();
  }
}

WorkerStats Engine::stats(std::size_t worker) const { return *stats_[worker]; }

WorkerStats Engine::total_stats() const {
  WorkerStats total;
  for (const auto& s : stats_) {
    total.processed += s->processed;
    total.chunks_completed += s->chunks_completed;
    total.messages_completed += s->messages_completed;
    total.discarded += s->discarded;
  }
  return total;
}

void Engine::process(core::MessageTable& table, const core::ImmCodec& codec,
                     RawCqe cqe, WorkerStats& stats) {
  const core::ImmFields fields = codec.decode(cqe.imm);
  const core::ProcessResult result =
      table.process_completion(fields, cqe.generation);
  ++stats.processed;
  if (!result.accepted) {
    ++stats.discarded;
    return;
  }
  if (result.chunk_completed) ++stats.chunks_completed;
  if (result.message_completed) ++stats.messages_completed;
}

void Engine::worker_loop(std::size_t index) {
  CompletionRing& ring = *rings_[index];
  WorkerStats& stats = *stats_[index];
  constexpr std::size_t kBatch = 64;
  RawCqe batch[kBatch];
  while (true) {
    // Drain in batches: one acquire/release pair per kBatch CQEs instead
    // of per CQE, and stats accumulate in locals so the shared counters
    // are written once per batch.
    std::size_t n = ring.pop_batch(batch, kBatch);
    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire) && ring.empty()) return;
      std::this_thread::yield();
      continue;
    }
    WorkerStats local;
    for (std::size_t i = 0; i < n; ++i) {
      process(table_, codec_, batch[i], local);
    }
    stats.processed += local.processed;
    stats.chunks_completed += local.chunks_completed;
    stats.messages_completed += local.messages_completed;
    stats.discarded += local.discarded;
  }
}

}  // namespace sdr::dpa
