#include "sim/drop_model.hpp"

#include "common/logging.hpp"

namespace sdr::sim {

std::vector<std::uint64_t> ScriptedDrop::unused_indices() const {
  const std::uint64_t seen = std::max(counter_, high_water_);
  std::vector<std::uint64_t> unused;
  for (const std::uint64_t idx : drop_) {
    if (idx >= seen) unused.push_back(idx);
  }
  std::sort(unused.begin(), unused.end());
  return unused;
}

std::size_t ScriptedDrop::unused_count() const {
  const std::uint64_t seen = std::max(counter_, high_water_);
  std::size_t n = 0;
  for (const std::uint64_t idx : drop_) {
    n += idx >= seen ? 1 : 0;
  }
  return n;
}

ScriptedDrop::~ScriptedDrop() {
  const std::size_t unused = unused_count();
  if (unused != 0) {
    SDR_WARN("ScriptedDrop destroyed with %zu scripted drop index(es) past "
             "the last send (%llu packets seen) — the script no longer "
             "matches the traffic it targets",
             unused,
             static_cast<unsigned long long>(std::max(counter_, high_water_)));
  }
}

}  // namespace sdr::sim
