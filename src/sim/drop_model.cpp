#include "sim/drop_model.hpp"

// Drop models are header-only; this TU anchors the sim library target.
