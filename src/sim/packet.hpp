// Typed packet payloads for the simulated wire.
//
// The seed design carried upper-layer content as std::any, which heap-boxes
// anything bigger than a pointer and needs an RTTI-backed any_cast on every
// delivery. The payload universe of this simulator is closed — the verbs
// device's WirePacket, or an opaque test/benchmark payload — so a variant
// gives the same flexibility with inline storage and a branch-free
// std::get_if on the receive side.
//
// Layering: verbs/types.hpp is a header-only leaf (it includes nothing from
// sim/), so including it here introduces no dependency cycle; the sdr_sim
// library still links independently of sdr_verbs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>

#include "verbs/types.hpp"

namespace sdr::sim {

/// Opaque payload for tests and microbenchmarks that exercise the channel
/// without modeling the verbs stack.
struct TestPayload {
  std::uint64_t tag{0};
};

/// monostate = headerless filler traffic (cross-traffic generators and
/// link-level tests populate only Packet::bytes).
using PacketPayload =
    std::variant<std::monostate, verbs::WirePacket, TestPayload>;

struct Packet {
  std::uint64_t id{0};   // channel-assigned sequence (debug/tracing)
  std::size_t bytes{0};  // on-wire size including headers
  PacketPayload payload;
};

}  // namespace sdr::sim
