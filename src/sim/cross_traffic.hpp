// Background cross-traffic generator.
//
// Shares a channel with the foreground flow to create genuine congestion:
// bursts of background packets fill the egress buffer, and with a bounded
// queue (Channel::Config::queue_capacity_bytes) foreground packets get
// tail-dropped — preferentially the larger ones, since they overflow a
// nearly-full buffer first. This is the mechanism the paper's Fig 2
// measurement attributes to ISP switch congestion ("drop rates increasing
// for larger packets ... suggest significant switch buffer congestion on
// the ISP side").
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"

namespace sdr::sim {

class CrossTraffic {
 public:
  struct Params {
    /// Offered load during a burst, as a fraction of the channel bandwidth.
    double burst_load{0.9};
    std::size_t packet_bytes{8192};
    /// Mean burst / idle durations (exponentially distributed).
    double mean_burst_s{500e-6};
    double mean_idle_s{500e-6};
    std::uint64_t seed{17};
  };

  CrossTraffic(Simulator& simulator, Channel& channel, Params params)
      : sim_(simulator), channel_(channel), params_(params),
        rng_(params.seed) {}

  /// Begin generating. Runs until stop() or the simulator drains other
  /// events past `until` (the generator self-limits to that horizon so
  /// sim.run() terminates).
  void start(SimTime until) {
    horizon_ = until;
    running_ = true;
    schedule_burst();
  }

  void stop() { running_ = false; }
  std::uint64_t packets_sent() const { return sent_; }

 private:
  void schedule_burst() {
    if (!running_ || sim_.now() >= horizon_) return;
    const double burst_s = rng_.exponential(1.0 / params_.mean_burst_s);
    const SimTime burst_end =
        std::min(horizon_, sim_.now() + SimTime::from_seconds(burst_s));
    send_tick(burst_end);
  }

  void send_tick(SimTime burst_end) {
    if (!running_ || sim_.now() >= horizon_) return;
    if (sim_.now() >= burst_end) {
      // Idle gap, then the next burst.
      const double idle_s = rng_.exponential(1.0 / params_.mean_idle_s);
      sim_.schedule(SimTime::from_seconds(idle_s),
                    [this] { schedule_burst(); });
      return;
    }
    Packet p;
    p.bytes = params_.packet_bytes;
    channel_.send(std::move(p));
    ++sent_;
    const double gap_s =
        injection_time_s(params_.packet_bytes,
                         channel_.bandwidth_bps() * params_.burst_load);
    sim_.schedule(SimTime::from_seconds(gap_s),
                  [this, burst_end] { send_tick(burst_end); });
  }

  Simulator& sim_;
  Channel& channel_;
  Params params_;
  Rng rng_;
  SimTime horizon_{SimTime::zero()};
  bool running_{false};
  std::uint64_t sent_{0};
};

}  // namespace sdr::sim
