// Fixed-capacity, non-allocating callable wrapper for the event hot path.
//
// std::function heap-spills any capture larger than its small-buffer
// optimization (16 bytes on libstdc++), which put one malloc/free pair on
// every scheduled packet event. InlineFunction stores the callable in a
// fixed inline buffer and *rejects larger captures at compile time*: a
// capture that does not fit is a build error, not a silent allocation.
// Handlers that need more state capture a pointer or pool index instead.
//
// Move-only by design — the simulator moves events, never copies them.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sdr::sim {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    static_assert(sizeof(D) <= Capacity,
                  "callable capture exceeds the inline storage budget; "
                  "capture a pointer or pool index instead of the object");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captures must be nothrow-movable (events relocate)");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
    ops_ = &kOps<D>;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static R invoke_impl(void* s, Args&&... args) {
    return (*static_cast<D*>(s))(std::forward<Args>(args)...);
  }
  template <typename D>
  static void relocate_impl(void* from, void* to) noexcept {
    D* src = static_cast<D*>(from);
    ::new (to) D(std::move(*src));
    src->~D();
  }
  template <typename D>
  static void destroy_impl(void* s) noexcept {
    static_cast<D*>(s)->~D();
  }

  template <typename D>
  static constexpr Ops kOps{&invoke_impl<D>, &relocate_impl<D>,
                            &destroy_impl<D>};

  void move_from(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_{nullptr};
};

}  // namespace sdr::sim
