// Discrete-event simulator core.
//
// Protocol-level experiments (message completion times over long-haul
// channels, collective schedules) run on this deterministic engine: a single
// virtual clock and a time-ordered event set. Events scheduled for the
// same timestamp execute in FIFO order of scheduling, which makes every run
// exactly reproducible from the RNG seed regardless of container internals.
//
// The event set is a hierarchical timer wheel (calendar queue), not a binary
// heap: the dominant patterns — short-horizon timer churn (an RTO armed per
// chunk and disarmed by the ACK) and near-future packet deliveries — are
// O(1) to schedule, cancel and fire, where a heap pays an O(log n) sift per
// operation and leaves cancelled entries in the queue until they surface.
//
//  * kWheelLevels levels of 64 buckets each; level l buckets span 2^(6l) ns.
//    An event lands at the level of the highest 6-bit group in which its
//    timestamp differs from the wheel cursor, so near deadlines sit in fine
//    buckets and far ones in coarse buckets that cascade down as the clock
//    approaches (see DESIGN.md §4e for the invariants).
//  * Each level keeps a 64-bit occupancy bitmap; finding the next non-empty
//    bucket is a shift + countr_zero, never a scan over empty buckets.
//  * Bucket membership is intrusive: the doubly-linked list runs through the
//    event slot pool itself, so cancel() unlinks in O(1) and leaves nothing
//    behind — pending memory is exactly the live events (the heap design
//    retained one stale 24-byte entry per cancelled event until it drained).
//  * Events beyond the wheel horizon (2^36 ns ≈ 68.7 s of lookahead, or any
//    timestamp across the next horizon-aligned boundary) wait in a small
//    overflow heap and migrate into the wheel when the cursor approaches:
//    global timeouts and scenario horizon deadlines are rare, so the O(log)
//    fallback is off the hot path.
//
// The hot path is allocation-free in steady state:
//  * Event callables live in a fixed inline buffer (InlineFunction) — a
//    capture that does not fit is a compile error, never a heap spill.
//  * Callables are stored in a generation-tagged slot pool; wheel links are
//    pool indices, so scheduling moves no callable data at all.
//  * EventId is {slot, generation}: cancel() is O(1), fired/cancelled ids
//    go stale by a generation bump, and memory is bounded by the number of
//    *pending* events — not by every event ever scheduled.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "sim/inline_function.hpp"

namespace sdr::sim {

/// Inline storage budget for event callables. Large enough for `this` plus
/// a handful of indices/scalars (the SR/EC timer closures capture at most
/// 32 bytes); small enough that pool slots stay cache-friendly.
inline constexpr std::size_t kEventInlineBytes = 48;

using EventFn = InlineFunction<void(), kEventInlineBytes>;

/// Handle used to cancel a scheduled event (e.g. a retransmission timer
/// disarmed by an ACK). Encodes {pool slot, generation}: when the event
/// fires or is cancelled the slot's generation is bumped, so stale handles
/// are recognized in O(1) without tombstone bookkeeping. A
/// default-constructed EventId is the "no event" value (`!valid()`).
class EventId {
 public:
  constexpr EventId() = default;

  constexpr bool valid() const { return bits_ != 0; }
  constexpr explicit operator bool() const { return valid(); }
  friend constexpr bool operator==(const EventId&, const EventId&) = default;

 private:
  friend class Simulator;
  constexpr EventId(std::uint32_t slot, std::uint32_t generation)
      : bits_((static_cast<std::uint64_t>(generation) << 32) | slot) {}
  constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>(bits_);
  }
  constexpr std::uint32_t generation() const {
    return static_cast<std::uint32_t>(bits_ >> 32);
  }

  // Valid ids always have generation >= 1, so bits_ == 0 never collides
  // with a real {slot 0, generation g} handle.
  std::uint64_t bits_{0};
};

class Simulator {
 public:
  /// Wheel geometry: 6 levels x 64 buckets; level l buckets span 2^(6l) ns,
  /// so the wheel covers 2^36 ns (~68.7 s) of lookahead before the overflow
  /// heap takes over. Exposed so tests can target cascade/overflow edges.
  static constexpr unsigned kWheelBits = 6;
  static constexpr unsigned kWheelSlots = 1u << kWheelBits;   // 64
  static constexpr unsigned kWheelLevels = 6;
  static constexpr std::uint64_t kWheelHorizonNs =
      1ULL << (kWheelBits * kWheelLevels);                    // 2^36

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventId schedule(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventId schedule_at(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran / was
  /// cancelled. O(1): a wheel event is unlinked from its bucket and its
  /// slot retired immediately; an overflow event only bumps the generation
  /// and its heap entry is discarded when it surfaces.
  bool cancel(EventId id);

  /// Run until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Run until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed). Returns the number of events executed.
  /// Events beyond the deadline are never popped, so cancelling them
  /// afterwards behaves exactly as if run_until had not been called.
  std::uint64_t run_until(SimTime deadline);

  /// Execute exactly one event if available. Returns false if queue empty.
  bool step();

  /// Earliest pending event time, if it is at or before `cap`; otherwise
  /// (or when nothing is pending) SimTime::max(). May advance the internal
  /// wheel position (cascading coarse buckets) up to the returned time —
  /// work the next pop would have done anyway, so semantics are unchanged.
  /// The cached lower bound makes repeated probes below the next deadline
  /// a single compare (the batched-delivery inner loop).
  SimTime next_deadline(SimTime cap) {
    if (static_cast<std::uint64_t>(cap.ns) < min_bound_) return SimTime::max();
    return next_deadline_slow(cap);
  }

  /// Move the clock forward to `t` without firing anything. The caller must
  /// have established via next_deadline(t) that no pending event fires at
  /// or before `t`. This is the batched-delivery hook: an event handler can
  /// consume externally queued work (e.g. a channel's in-order packet FIFO)
  /// up to the next pending deadline, keeping now() correct for each item
  /// without paying one schedule/fire round trip per item.
  void advance_now(SimTime t) {
#ifndef NDEBUG
    assert_no_deadline_at_or_before(t);
#endif
    now_ = t;
  }

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }

  /// Pre-size the event pool (avoids growth allocations during the
  /// measured phase of benchmarks).
  void reserve(std::size_t events);

  /// Number of pool slots ever materialized — bounded by the peak number
  /// of simultaneously pending events, not by total events scheduled.
  /// Exposed for memory-boundedness regression tests.
  std::size_t pool_slots() const { return slots_.size(); }

  /// Events currently waiting in the overflow heap (beyond the wheel
  /// horizon), including entries whose event was cancelled but whose heap
  /// node has not yet surfaced. Exposed for wheel edge-case tests.
  std::size_t overflow_pending() const { return overflow_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Bucket tags: which container a live slot currently sits in.
  static constexpr std::uint16_t kNoBucket = 0xFFFF;   // free / being fired
  static constexpr std::uint16_t kInOverflow = 0xFFFE;

  struct OverflowEntry {
    std::uint64_t when;
    std::uint64_t seq;  // FIFO tie-break among same-timestamp events
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // priority_queue with access to the underlying vector's reserve().
  class OverflowHeap
      : public std::priority_queue<OverflowEntry, std::vector<OverflowEntry>,
                                   Later> {
   public:
    void reserve(std::size_t n) { c.reserve(n); }
  };

  struct Slot {
    EventFn fn;
    std::uint64_t when{0};
    std::uint32_t gen{1};
    // In a bucket: doubly-linked neighbours. On the free list: `next` is
    // the chain. In the overflow heap: both unused.
    std::uint32_t next{kNoSlot};
    std::uint32_t prev{kNoSlot};
    std::uint16_t bucket{kNoBucket};  // level*64+index, or a tag above
  };

  struct Bucket {
    std::uint32_t head{kNoSlot};
    std::uint32_t tail{kNoSlot};
  };

  /// Append a live slot to the wheel bucket its timestamp selects relative
  /// to the current cursor (requires (when ^ cursor_) < horizon).
  void wheel_link(std::uint32_t slot);
  /// Remove a slot from its wheel bucket, clearing the occupancy bit when
  /// the bucket empties.
  void wheel_unlink(std::uint32_t slot);
  /// Migrate overflow events whose timestamps entered the wheel's range;
  /// discards stale (cancelled) heap entries as they surface.
  void drain_overflow();
  /// Advance the wheel (cascading coarse buckets, migrating overflow) until
  /// the earliest pending event is at the head of a level-0 bucket, then
  /// return its slot (still linked) with cursor_ == its timestamp. Returns
  /// kNoSlot — without advancing past `cap_ns` — when the earliest event
  /// lies beyond the cap (or none is pending). Stateless between calls:
  /// re-scanning after a cancel or peek is always consistent.
  std::uint32_t peek_next(std::uint64_t cap_ns);
  /// peek_next + unlink: the pop used by run/run_until/step.
  std::uint32_t pop_next(std::uint64_t cap_ns);
  SimTime next_deadline_slow(SimTime cap);
  /// Debug check behind advance_now (no-op in NDEBUG builds).
  void assert_no_deadline_at_or_before(SimTime t);
  /// Consume the slot: destroy the callable, bump the generation, return
  /// the slot to the free list and decrement the live count.
  void retire(std::uint32_t slot);
  /// Move the callable out, retire the slot, then invoke. Retiring first
  /// makes cancel-after-fire return false and lets the handler reuse the
  /// slot when it reschedules.
  void fire(std::uint32_t slot);

  SimTime now_{SimTime::zero()};
  /// Wheel position in ns. Invariants: cursor_ <= now_ whenever user code
  /// runs, and cursor_ never passes the earliest pending timestamp; every
  /// wheel event's timestamp agrees with cursor_ in all 6-bit groups above
  /// its level (see DESIGN.md §4e).
  std::uint64_t cursor_{0};
  std::uint64_t next_seq_{0};
  std::size_t live_events_{0};
  /// Lower bound on every pending timestamp: no event fires before this.
  /// Raised by peek scans, lowered by schedule_at; lets the batched
  /// delivery loop's next_deadline() probes short-circuit to one compare.
  std::uint64_t min_bound_{0};
  std::uint64_t occupancy_[kWheelLevels]{};
  Bucket buckets_[kWheelLevels * kWheelSlots];
  OverflowHeap overflow_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNoSlot};
};

}  // namespace sdr::sim
