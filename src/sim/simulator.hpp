// Discrete-event simulator core.
//
// Protocol-level experiments (message completion times over long-haul
// channels, collective schedules) run on this deterministic engine: a single
// virtual clock and a time-ordered event queue. Events scheduled for the
// same timestamp execute in FIFO order of scheduling (a monotonically
// increasing sequence number breaks ties), which makes every run exactly
// reproducible from the RNG seed regardless of container/queue internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace sdr::sim {

using EventFn = std::function<void()>;

/// Handle used to cancel a scheduled event (e.g. a retransmission timer
/// disarmed by an ACK). Cancelled events stay in the queue but are skipped.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventId schedule(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventId schedule_at(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran / was
  /// cancelled. O(1): the event is tombstoned, not removed.
  bool cancel(EventId id);

  /// Run until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Run until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed). Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);

  /// Execute exactly one event if available. Returns false if queue empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }

 private:
  struct Event {
    SimTime when;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among same-timestamp events
    }
  };

  bool pop_next(Event& out);

  SimTime now_{SimTime::zero()};
  EventId next_id_{1};
  std::size_t live_events_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Tombstones for cancelled events; swept as they surface at the queue top.
  std::vector<bool> cancelled_;
};

}  // namespace sdr::sim
