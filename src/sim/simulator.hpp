// Discrete-event simulator core.
//
// Protocol-level experiments (message completion times over long-haul
// channels, collective schedules) run on this deterministic engine: a single
// virtual clock and a time-ordered event queue. Events scheduled for the
// same timestamp execute in FIFO order of scheduling (a monotonically
// increasing sequence number breaks ties), which makes every run exactly
// reproducible from the RNG seed regardless of container/queue internals.
//
// The hot path is allocation-free in steady state:
//  * Event callables live in a fixed inline buffer (InlineFunction) — a
//    capture that does not fit is a compile error, never a heap spill.
//  * Callables are stored in a generation-tagged slot pool; the priority
//    queue holds 24-byte POD entries {when, seq, slot, gen}, so heap sifts
//    move trivially-copyable data.
//  * EventId is {slot, generation}: cancel() is O(1), fired/cancelled ids
//    go stale by a generation bump, and memory is bounded by the number of
//    *pending* events — not by every event ever scheduled.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "sim/inline_function.hpp"

namespace sdr::sim {

/// Inline storage budget for event callables. Large enough for `this` plus
/// a handful of indices/scalars (the SR/EC timer closures capture at most
/// 32 bytes); small enough that pool slots stay cache-friendly.
inline constexpr std::size_t kEventInlineBytes = 48;

using EventFn = InlineFunction<void(), kEventInlineBytes>;

/// Handle used to cancel a scheduled event (e.g. a retransmission timer
/// disarmed by an ACK). Encodes {pool slot, generation}: when the event
/// fires or is cancelled the slot's generation is bumped, so stale handles
/// are recognized in O(1) without tombstone bookkeeping. A
/// default-constructed EventId is the "no event" value (`!valid()`).
class EventId {
 public:
  constexpr EventId() = default;

  constexpr bool valid() const { return bits_ != 0; }
  constexpr explicit operator bool() const { return valid(); }
  friend constexpr bool operator==(const EventId&, const EventId&) = default;

 private:
  friend class Simulator;
  constexpr EventId(std::uint32_t slot, std::uint32_t generation)
      : bits_((static_cast<std::uint64_t>(generation) << 32) | slot) {}
  constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>(bits_);
  }
  constexpr std::uint32_t generation() const {
    return static_cast<std::uint32_t>(bits_ >> 32);
  }

  // Valid ids always have generation >= 1, so bits_ == 0 never collides
  // with a real {slot 0, generation g} handle.
  std::uint64_t bits_{0};
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  EventId schedule(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at an absolute time (must not be in the past).
  EventId schedule_at(SimTime when, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran / was
  /// cancelled. O(1): the slot's generation is bumped and its callable
  /// destroyed immediately; the stale queue entry (24 bytes of POD) is
  /// discarded when it surfaces at the queue head.
  bool cancel(EventId id);

  /// Run until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Run until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed). Returns the number of events executed.
  /// Events beyond the deadline are never popped, so cancelling them
  /// afterwards behaves exactly as if run_until had not been called.
  std::uint64_t run_until(SimTime deadline);

  /// Execute exactly one event if available. Returns false if queue empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::size_t pending() const { return live_events_; }

  /// Pre-size the event pool and queue (avoids growth allocations during
  /// the measured phase of benchmarks).
  void reserve(std::size_t events);

  /// Number of pool slots ever materialized — bounded by the peak number
  /// of simultaneously pending events, not by total events scheduled.
  /// Exposed for memory-boundedness regression tests.
  std::size_t pool_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct QueueEntry {
    SimTime when;
    std::uint64_t seq;  // FIFO tie-break among same-timestamp events
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // priority_queue with access to the underlying vector's reserve().
  class EventQueue
      : public std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                   Later> {
   public:
    void reserve(std::size_t n) { c.reserve(n); }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen{1};
    std::uint32_t next_free{kNoSlot};
  };

  /// Pop queue entries whose slot generation moved on (cancelled events).
  void drop_stale();
  /// Consume the slot: destroy the callable, bump the generation, return
  /// the slot to the free list and decrement the live count.
  void retire(std::uint32_t slot);
  /// Move the callable out, retire the slot, then invoke. Retiring first
  /// makes cancel-after-fire return false and lets the handler reuse the
  /// slot when it reschedules.
  void fire(std::uint32_t slot);

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{0};
  std::size_t live_events_{0};
  EventQueue queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_{kNoSlot};
};

}  // namespace sdr::sim
