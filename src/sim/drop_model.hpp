// Packet drop models for the long-haul channel.
//
// The paper's measurements (Fig 2) show inter-datacenter drop rates varying
// by three orders of magnitude across trials, correlated with payload size
// (ISP switch-buffer congestion), while private optical networks sit near
// 1e-8. We provide:
//   * IidDrop           — the i.i.d. Bernoulli model used by the analytical
//                         framework (paper §4.2.1 assumes i.i.d. chunk drop).
//   * GilbertElliott    — two-state burst-loss model, used by robustness
//                         tests and the burst-ablation bench.
//   * CongestionDrop    — per-trial congestion intensity modulating a
//                         size-dependent drop probability; reproduces the
//                         Fig 2 variability measurement.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace sdr::sim {

class DropModel {
 public:
  virtual ~DropModel() = default;
  /// Decide the fate of one packet of `bytes` payload.
  virtual bool should_drop(Rng& rng, std::size_t bytes) = 0;
  /// Reset any internal channel state (e.g. at trial boundaries).
  virtual void reset(Rng& /*rng*/) {}
};

/// Independent, identically distributed drops with fixed probability.
class IidDrop final : public DropModel {
 public:
  explicit IidDrop(double p_drop) : p_(p_drop) {}
  bool should_drop(Rng& rng, std::size_t /*bytes*/) override {
    return rng.bernoulli(p_);
  }
  double probability() const { return p_; }

 private:
  double p_;
};

/// Gilbert-Elliott two-state Markov loss: a "good" state with low loss and a
/// "bad" (bursty) state with high loss; transitions occur per packet.
class GilbertElliott final : public DropModel {
 public:
  GilbertElliott(double p_good_to_bad, double p_bad_to_good,
                 double loss_in_good, double loss_in_bad)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        loss_good_(loss_in_good),
        loss_bad_(loss_in_bad) {}

  bool should_drop(Rng& rng, std::size_t /*bytes*/) override {
    if (bad_) {
      if (rng.bernoulli(p_bg_)) bad_ = false;
    } else {
      if (rng.bernoulli(p_gb_)) bad_ = true;
    }
    return rng.bernoulli(bad_ ? loss_bad_ : loss_good_);
  }

  void reset(Rng& rng) override {
    // Start from the stationary distribution.
    const double stationary_bad = p_gb_ / (p_gb_ + p_bg_);
    bad_ = rng.bernoulli(stationary_bad);
  }

  /// Long-run average loss rate (stationary mixture).
  double stationary_loss() const {
    const double pi_bad = p_gb_ / (p_gb_ + p_bg_);
    return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_{false};
};

/// Deterministic fault injection: drops exactly the packets whose (0-based)
/// send index the caller scripted. Used by tests that need to reason about
/// a precise loss pattern — "drop packet 5 of the first message", "drop a
/// burst of m+1 chunks of one submessage" — rather than a rate.
///
/// A scripted index past the last packet actually sent is almost always a
/// test bug (the scenario changed and the script rotted): such indices are
/// reported by unused_indices()/unused_count() and logged at WARN on
/// destruction so they cannot pass silently. The conformance harness
/// (src/check/) additionally treats a non-empty unused set as an oracle
/// failure.
class ScriptedDrop final : public DropModel {
 public:
  explicit ScriptedDrop(std::vector<std::uint64_t> drop_indices)
      : drop_(drop_indices.begin(), drop_indices.end()) {}
  ~ScriptedDrop() override;

  bool should_drop(Rng& /*rng*/, std::size_t /*bytes*/) override {
    return drop_.count(counter_++) != 0;
  }

  void reset(Rng& /*rng*/) override {
    high_water_ = std::max(high_water_, counter_);
    counter_ = 0;
  }

  std::uint64_t packets_seen() const { return counter_; }

  /// Scripted indices no packet has reached yet (across every trial since
  /// construction), sorted ascending.
  std::vector<std::uint64_t> unused_indices() const;
  std::size_t unused_count() const;

 private:
  std::unordered_set<std::uint64_t> drop_;
  std::uint64_t counter_{0};
  std::uint64_t high_water_{0};  // max counter_ over reset() boundaries
};

/// Congestion-modulated drop model for the Fig 2 reproduction.
///
/// Each trial samples a congestion intensity C from a lognormal distribution
/// (heavy tail: most trials are quiet, some hit a congested ISP buffer).
/// The per-packet drop probability grows with payload size (larger packets
/// are more likely to overflow a nearly full buffer):
///     p(bytes) = clamp(base * C * (bytes / ref_bytes)^gamma, 0, p_max)
class CongestionDrop final : public DropModel {
 public:
  struct Params {
    double base_drop = 3e-4;     // median drop at ref packet size
    double ref_bytes = 1024.0;   // reference payload (1 KiB)
    double gamma = 1.6;          // size sensitivity exponent
    double log_sigma = 2.3;      // lognormal sigma: ~3 decades of spread
    double p_max = 0.5;
  };

  explicit CongestionDrop(Params params) : params_(params) {}

  void reset(Rng& rng) override {
    // exp(sigma * N(0,1) - sigma^2/2) has mean 1.
    congestion_ = std::exp(params_.log_sigma * rng.normal() -
                           0.5 * params_.log_sigma * params_.log_sigma);
  }

  bool should_drop(Rng& rng, std::size_t bytes) override {
    return rng.bernoulli(drop_probability(bytes));
  }

  double drop_probability(std::size_t bytes) const {
    const double size_factor =
        std::pow(static_cast<double>(bytes) / params_.ref_bytes, params_.gamma);
    return std::clamp(params_.base_drop * congestion_ * size_factor, 0.0,
                      params_.p_max);
  }

 private:
  Params params_;
  double congestion_{1.0};
};

}  // namespace sdr::sim
