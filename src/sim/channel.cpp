#include "sim/channel.hpp"

#include <cassert>
#include <utility>

namespace sdr::sim {

Channel::Channel(Simulator& simulator, Config config,
                 std::unique_ptr<DropModel> drop_model)
    : sim_(simulator),
      config_(config),
      drop_model_(std::move(drop_model)),
      rng_(config.seed),
      propagation_(SimTime::from_seconds(
          propagation_delay_s(config.distance_km) + config.extra_delay_s)) {
  assert(drop_model_ && "channel requires a drop model");
  drop_model_->reset(rng_);
}

std::size_t Channel::queue_backlog_bytes() const {
  const SimTime now = sim_.now();
  if (next_free_ <= now) return 0;
  const double backlog_s = (next_free_ - now).seconds();
  return static_cast<std::size_t>(backlog_s * config_.bandwidth_bps / 8.0);
}

void Channel::send(Packet packet) {
  packet.id = next_packet_id_++;
  ++stats_.sent_packets;
  stats_.sent_bytes += packet.bytes;

  // Egress buffer: tail-drop when the serializer backlog would overflow
  // the configured queue capacity (congestion loss).
  if (config_.queue_capacity_bytes > 0 &&
      queue_backlog_bytes() + packet.bytes > config_.queue_capacity_bytes) {
    ++stats_.dropped_packets;
    ++stats_.queue_drops;
    return;
  }

  // Serialization: the link transmits packets back-to-back in FIFO order.
  const SimTime start = std::max(sim_.now(), next_free_);
  const SimTime serialization = SimTime::from_seconds(
      injection_time_s(packet.bytes, config_.bandwidth_bps));
  next_free_ = start + serialization;

  if (drop_model_->should_drop(rng_, packet.bytes)) {
    ++stats_.dropped_packets;
    return;  // the bits still occupied the wire; they just never arrive
  }

  SimTime arrival = next_free_ + propagation_;
  if (config_.reorder_probability > 0.0 &&
      rng_.bernoulli(config_.reorder_probability)) {
    ++stats_.reordered_packets;
    arrival += SimTime::from_seconds(config_.reorder_extra_delay_s);
  }

  // Duplication (e.g. a WAN path failover replaying a packet): the copy
  // trails the original by a propagation-scale delay.
  const bool duplicate =
      config_.duplicate_probability > 0.0 &&
      rng_.bernoulli(config_.duplicate_probability);

  // Capture by shared_ptr to keep Packet move-only friendly in std::function.
  auto carried = std::make_shared<Packet>(std::move(packet));
  if (duplicate) {
    ++stats_.duplicated_packets;
    auto copy = std::make_shared<Packet>(*carried);
    sim_.schedule_at(arrival + propagation_, [this, copy]() mutable {
      ++stats_.delivered_packets;
      if (deliver_) deliver_(std::move(*copy));
    });
  }
  sim_.schedule_at(arrival, [this, carried]() mutable {
    ++stats_.delivered_packets;
    if (deliver_) deliver_(std::move(*carried));
  });
}

DuplexLink::DuplexLink(Simulator& simulator, Channel::Config config,
                       std::unique_ptr<DropModel> forward_drop,
                       std::unique_ptr<DropModel> backward_drop) {
  Channel::Config fwd = config;
  Channel::Config bwd = config;
  bwd.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  forward_ = std::make_unique<Channel>(simulator, fwd, std::move(forward_drop));
  backward_ =
      std::make_unique<Channel>(simulator, bwd, std::move(backward_drop));
}

std::unique_ptr<DuplexLink> make_iid_link(Simulator& simulator,
                                          Channel::Config config,
                                          double p_drop_forward,
                                          double p_drop_backward) {
  return std::make_unique<DuplexLink>(
      simulator, config, std::make_unique<IidDrop>(p_drop_forward),
      std::make_unique<IidDrop>(p_drop_backward));
}

}  // namespace sdr::sim
