#include "sim/channel.hpp"

#include <cassert>
#include <utility>

namespace sdr::sim {

Channel::Channel(Simulator& simulator, Config config,
                 std::unique_ptr<DropModel> drop_model)
    : sim_(simulator),
      config_(config),
      drop_model_(std::move(drop_model)),
      rng_(config.seed),
      propagation_(SimTime::from_seconds(
          propagation_delay_s(config.distance_km) + config.extra_delay_s)) {
  assert(drop_model_ && "channel requires a drop model");
  drop_model_->reset(rng_);
  if (telemetry::enabled()) register_metrics();
}

Channel::~Channel() {
  // The drain event captures `this`; disarm it in case the simulator keeps
  // running after the channel is torn down. (Stale handles cancel as
  // no-ops.)
  if (drain_event_.valid()) sim_.cancel(drain_event_);
}

void Channel::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("sim.channel"));
  tele_.bind_counter("sent_packets", &stats_.sent_packets);
  tele_.bind_counter("sent_bytes", &stats_.sent_bytes);
  tele_.bind_counter("dropped_packets", &stats_.dropped_packets);
  tele_.bind_counter("queue_drops", &stats_.queue_drops);
  tele_.bind_counter("reordered_packets", &stats_.reordered_packets);
  tele_.bind_counter("duplicated_packets", &stats_.duplicated_packets);
  tele_.bind_counter("delivered_packets", &stats_.delivered_packets);
  tele_.bind_gauge("drop_rate", [this] { return stats_.drop_rate(); });
  tele_.bind_gauge("queue_backlog_bytes", [this] {
    return static_cast<double>(queue_backlog_bytes());
  });
}

void Channel::trace_packet(telemetry::TraceEventType type,
                           const Packet& packet) {
  // The channel cannot decode the SDR immediate, so wire-level events carry
  // the raw imm (and destination QP) for the trace join; non-verbs payloads
  // trace with sentinel fields only.
  std::uint32_t qp = 0;
  std::uint32_t imm = telemetry::kNoImm;
  if (const auto* wire = std::get_if<verbs::WirePacket>(&packet.payload)) {
    qp = wire->dst_qp;
    imm = wire->imm;
  }
  telemetry::tracer().emit(sim_.now(), type, qp, telemetry::kNoMsg,
                           telemetry::kNoChunk, imm, packet.bytes);
}

void Channel::span_packet(telemetry::TraceEventType type,
                          const Packet& packet) {
  // Span attempts are keyed by the wire immediate; only packets that carry
  // one (SDR data writes/sends) can join — control datagrams and RC ACKs
  // would alias imm 0 otherwise.
  if (const auto* wire = std::get_if<verbs::WirePacket>(&packet.payload)) {
    if (verbs::carries_imm(wire->opcode)) {
      telemetry::spans().on_wire(sim_.now(), type, wire->imm);
    }
  }
}

std::size_t Channel::queue_backlog_bytes() const {
  const SimTime now = sim_.now();
  if (next_free_ <= now) return 0;
  const double backlog_s = (next_free_ - now).seconds();
  return static_cast<std::size_t>(backlog_s * config_.bandwidth_bps / 8.0);
}

void Channel::send(Packet packet) {
  packet.id = next_packet_id_++;
  ++stats_.sent_packets;
  stats_.sent_bytes += packet.bytes;
  if (telemetry::tracing()) {
    trace_packet(telemetry::TraceEventType::kTx, packet);
  }

  // Egress buffer: tail-drop when the serializer backlog would overflow
  // the configured queue capacity (congestion loss).
  if (config_.queue_capacity_bytes > 0 &&
      queue_backlog_bytes() + packet.bytes > config_.queue_capacity_bytes) {
    ++stats_.dropped_packets;
    ++stats_.queue_drops;
    if (telemetry::tracing()) {
      trace_packet(telemetry::TraceEventType::kQueueDrop, packet);
    }
    if (telemetry::spanning()) {
      span_packet(telemetry::TraceEventType::kQueueDrop, packet);
    }
    return;
  }

  // Serialization: the link transmits packets back-to-back in FIFO order.
  const SimTime start = std::max(sim_.now(), next_free_);
  const SimTime serialization = SimTime::from_seconds(
      injection_time_s(packet.bytes, config_.bandwidth_bps));
  next_free_ = start + serialization;

  if (drop_model_->should_drop(rng_, packet.bytes)) {
    ++stats_.dropped_packets;
    if (telemetry::tracing()) {
      trace_packet(telemetry::TraceEventType::kDropped, packet);
    }
    if (telemetry::spanning()) {
      span_packet(telemetry::TraceEventType::kDropped, packet);
    }
    return;  // the bits still occupied the wire; they just never arrive
  }

  SimTime arrival = next_free_ + propagation_;
  bool reordered = false;
  if (config_.reorder_probability > 0.0 &&
      rng_.bernoulli(config_.reorder_probability)) {
    reordered = true;
    ++stats_.reordered_packets;
    if (telemetry::tracing()) {
      trace_packet(telemetry::TraceEventType::kReordered, packet);
    }
    arrival += SimTime::from_seconds(config_.reorder_extra_delay_s);
  }

  // Duplication (e.g. a WAN path failover replaying a packet): the copy
  // trails the original by a propagation-scale delay.
  const bool duplicate =
      config_.duplicate_probability > 0.0 &&
      rng_.bernoulli(config_.duplicate_probability);

  const std::uint32_t slot = acquire_slot(std::move(packet));
  if (duplicate) {
    ++stats_.duplicated_packets;
    if (telemetry::tracing()) {
      trace_packet(telemetry::TraceEventType::kDuplicated, pool_[slot].pkt);
    }
    const std::uint32_t copy = acquire_slot_copy(slot);
    sim_.schedule_at(arrival + propagation_,
                     [this, copy] { deliver_slot(copy); });
  }
  if (reordered) {
    // Held-back packets jump ahead of later FIFO arrivals, so they keep
    // their own delivery event.
    sim_.schedule_at(arrival, [this, slot] { deliver_slot(slot); });
    return;
  }
  fifo_push(slot, arrival);
  // First packet of a burst arms the drain; inside a drain firing the
  // handler re-arms itself after delivering, so a receiver callback that
  // re-enters send() must not schedule a second one.
  if (fifo_count_ == 1 && !in_drain_) {
    drain_event_ = sim_.schedule_at(arrival, [this] { drain_fifo(); });
  }
}

void Channel::fifo_push(std::uint32_t slot, SimTime arrival) {
  assert((fifo_count_ == 0 ||
          fifo_[(fifo_head_ + fifo_count_ - 1) & (fifo_.size() - 1)]
                  .arrival_ns <= arrival.ns) &&
         "FIFO arrivals must be monotone");
  if (fifo_count_ == fifo_.size()) fifo_grow();
  fifo_[(fifo_head_ + fifo_count_) & (fifo_.size() - 1)] =
      FifoEntry{slot, arrival.ns};
  ++fifo_count_;
}

void Channel::fifo_grow() {
  const std::size_t cap = fifo_.empty() ? 64 : fifo_.size() * 2;
  std::vector<FifoEntry> grown(cap);
  for (std::size_t i = 0; i < fifo_count_; ++i) {
    grown[i] = fifo_[(fifo_head_ + i) & (fifo_.size() - 1)];
  }
  fifo_ = std::move(grown);
  fifo_head_ = 0;
}

void Channel::drain_fifo() {
  telemetry::ProfScope prof(telemetry::ProfCategory::kChannel);
  drain_event_ = EventId{};
  in_drain_ = true;
  for (;;) {
    const FifoEntry entry = fifo_[fifo_head_];
    fifo_head_ = (fifo_head_ + 1) & (fifo_.size() - 1);
    --fifo_count_;
    deliver_slot(entry.slot);
    if (fifo_count_ == 0) break;
    const SimTime next_arrival{fifo_[fifo_head_].arrival_ns};
    // Keep delivering from this one firing as long as nothing else in the
    // simulator is due first. A pending event at or before the next
    // arrival (a reordered packet, a duplicate copy, a protocol timer, a
    // callback-scheduled event — the receiver runs inside this loop and
    // may arm new ones) must interleave in its own firing, so hand back to
    // the event core and resume afterwards; rescheduling gets a fresh
    // sequence number, which keeps same-timestamp FIFO order with events
    // scheduled up to this point.
    if (sim_.next_deadline(next_arrival) <= next_arrival) break;
    sim_.advance_now(next_arrival);
  }
  in_drain_ = false;
  if (fifo_count_ != 0) {
    drain_event_ = sim_.schedule_at(SimTime{fifo_[fifo_head_].arrival_ns},
                                    [this] { drain_fifo(); });
  }
}

std::uint32_t Channel::acquire_slot(Packet&& packet) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
  } else {
    pool_.emplace_back();
    slot = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  pool_[slot].pkt = std::move(packet);
  return slot;
}

std::uint32_t Channel::acquire_slot_copy(std::uint32_t from) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
  } else {
    pool_.emplace_back();
    slot = static_cast<std::uint32_t>(pool_.size() - 1);
  }
  // Index after both slots are resolved: the emplace_back above may have
  // reallocated the pool, so no reference to `from` can be held across it.
  pool_[slot].pkt = pool_[from].pkt;
  return slot;
}

void Channel::deliver_slot(std::uint32_t slot) {
  ++stats_.delivered_packets;
  // Move the packet out and free the slot *before* invoking the receiver:
  // the callback may send on this channel again (protocol loops), which
  // can grow the pool and would invalidate any reference into it.
  Packet packet = std::move(pool_[slot].pkt);
  if (telemetry::tracing()) {
    trace_packet(telemetry::TraceEventType::kDelivered, packet);
  }
  if (telemetry::spanning()) {
    span_packet(telemetry::TraceEventType::kDelivered, packet);
  }
  pool_[slot].next_free = free_head_;
  free_head_ = slot;
  if (deliver_) deliver_(std::move(packet));
}

DuplexLink::DuplexLink(Simulator& simulator, Channel::Config config,
                       std::unique_ptr<DropModel> forward_drop,
                       std::unique_ptr<DropModel> backward_drop) {
  Channel::Config fwd = config;
  Channel::Config bwd = config;
  bwd.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  forward_ = std::make_unique<Channel>(simulator, fwd, std::move(forward_drop));
  backward_ =
      std::make_unique<Channel>(simulator, bwd, std::move(backward_drop));
}

std::unique_ptr<DuplexLink> make_iid_link(Simulator& simulator,
                                          Channel::Config config,
                                          double p_drop_forward,
                                          double p_drop_backward) {
  return std::make_unique<DuplexLink>(
      simulator, config, std::make_unique<IidDrop>(p_drop_forward),
      std::make_unique<IidDrop>(p_drop_backward));
}

}  // namespace sdr::sim
