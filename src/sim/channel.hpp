// Long-haul point-to-point channel model.
//
// Models the inter-datacenter link the paper targets: a dedicated fiber path
// with configurable bandwidth, cable distance (propagation delay), a drop
// model and optional packet reordering. Serialization is modeled with a
// link-busy time (packets queue behind each other at the sender), and
// propagation is a pure delay — the standard LogGP-style decomposition the
// paper's T_INJ / RTT notation assumes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "sim/drop_model.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"

namespace sdr::sim {

struct ChannelStats {
  std::uint64_t sent_packets{0};
  std::uint64_t sent_bytes{0};
  std::uint64_t dropped_packets{0};
  std::uint64_t queue_drops{0};  // tail drops from a full egress buffer
  std::uint64_t reordered_packets{0};
  std::uint64_t duplicated_packets{0};
  std::uint64_t delivered_packets{0};

  double drop_rate() const {
    return sent_packets
               ? static_cast<double>(dropped_packets) /
                     static_cast<double>(sent_packets)
               : 0.0;
  }
};

/// Unidirectional channel. Deliveries invoke the receiver callback inside
/// the owning Simulator at the packet arrival time.
class Channel {
 public:
  struct Config {
    double bandwidth_bps = 400 * Gbps;
    double distance_km = 3750.0;          // one-way cable length
    double extra_delay_s = 0.0;           // switch/forwarding latency
    double reorder_probability = 0.0;     // chance a packet is held back
    double reorder_extra_delay_s = 0.0;   // additional delay when held back
    double duplicate_probability = 0.0;   // chance a packet arrives twice
    /// Egress buffer (switch queue) capacity in bytes; 0 = unbounded. When
    /// the serializer backlog plus the arriving packet exceed it, the
    /// packet is tail-dropped — the congestion-loss mechanism the paper's
    /// Fig 2 measurement attributes to ISP switch buffers (losses grow
    /// with packet size because bigger packets overflow a nearly full
    /// queue first).
    std::size_t queue_capacity_bytes = 0;
    std::uint64_t seed = 1;
  };

  using DeliverFn = std::function<void(Packet&&)>;

  Channel(Simulator& simulator, Config config,
          std::unique_ptr<DropModel> drop_model);
  ~Channel();

  /// Register the receive callback (exactly one receiver per channel).
  void set_receiver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Enqueue a packet for transmission. Serialization starts when the link
  /// becomes free; the packet arrives one propagation delay after its last
  /// bit leaves. Dropped packets still consume serialization time.
  void send(Packet packet);

  /// Earliest time a newly posted packet would start serializing.
  SimTime next_free() const { return next_free_; }

  /// Bytes currently waiting in the egress buffer (serializer backlog).
  std::size_t queue_backlog_bytes() const;

  SimTime one_way_delay() const { return propagation_; }
  double bandwidth_bps() const { return config_.bandwidth_bps; }
  const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ChannelStats{}; }

  /// Re-draw trial-level channel state (e.g. congestion intensity).
  void new_trial() { drop_model_->reset(rng_); }

  Rng& rng() { return rng_; }

  /// In-flight packet pool size — bounded by the peak number of packets on
  /// the wire, not by traffic volume. Exposed for regression tests.
  std::size_t pool_size() const { return pool_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  // Free-list pool of in-flight packets: send() parks the packet in a slot
  // and schedules an inline {this, slot} delivery closure, so the steady
  // state allocates nothing per packet (the seed design paid a
  // make_shared plus a std::function heap spill each).
  struct PoolSlot {
    Packet pkt;
    std::uint32_t next_free{kNoSlot};
  };

  // Batched in-order delivery: packets that arrive in send order (the
  // common case — serialization start times are monotone and propagation is
  // constant) go through a per-channel FIFO ring drained by a single
  // self-rescheduling simulator event, so the event core sees one pending
  // delivery per channel instead of one per in-flight packet, and each
  // reschedule is a short serialization-scale delta (a level-0/1 wheel
  // link) instead of a propagation-scale one that must cascade down.
  // Reordered packets and duplicate copies arrive out of FIFO order and
  // keep the one-event-per-packet path.
  struct FifoEntry {
    std::uint32_t slot;
    std::int64_t arrival_ns;
  };

  std::uint32_t acquire_slot(Packet&& packet);
  std::uint32_t acquire_slot_copy(std::uint32_t from);
  void deliver_slot(std::uint32_t slot);
  void fifo_push(std::uint32_t slot, SimTime arrival);
  void fifo_grow();
  void drain_fifo();
  void register_metrics();
  void trace_packet(telemetry::TraceEventType type, const Packet& packet);
  void span_packet(telemetry::TraceEventType type, const Packet& packet);

  Simulator& sim_;
  Config config_;
  std::unique_ptr<DropModel> drop_model_;
  DeliverFn deliver_;
  Rng rng_;
  SimTime propagation_;
  SimTime next_free_{SimTime::zero()};
  ChannelStats stats_;
  std::uint64_t next_packet_id_{0};
  std::vector<PoolSlot> pool_;
  std::uint32_t free_head_{kNoSlot};
  std::vector<FifoEntry> fifo_;  // ring buffer, capacity a power of two
  std::size_t fifo_head_{0};
  std::size_t fifo_count_{0};
  EventId drain_event_;
  bool in_drain_{false};
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

/// A bidirectional link: two independent channels sharing a configuration
/// (bandwidth/distance symmetric, independent drop state per direction).
class DuplexLink {
 public:
  DuplexLink(Simulator& simulator, Channel::Config config,
             std::unique_ptr<DropModel> forward_drop,
             std::unique_ptr<DropModel> backward_drop);

  Channel& forward() { return *forward_; }
  Channel& backward() { return *backward_; }

  /// RTT through this link for a minimal-size packet (2x propagation).
  double rtt_s() const { return 2.0 * forward_->one_way_delay().seconds(); }

 private:
  std::unique_ptr<Channel> forward_;
  std::unique_ptr<Channel> backward_;
};

/// Convenience factory for an i.i.d.-loss duplex link.
std::unique_ptr<DuplexLink> make_iid_link(Simulator& simulator,
                                          Channel::Config config,
                                          double p_drop_forward,
                                          double p_drop_backward = 0.0);

}  // namespace sdr::sim
