#include "sim/simulator.hpp"

#include <cassert>

namespace sdr::sim {

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  if (cancelled_.size() <= id) cancelled_.resize(id + 64, false);
  queue_.push(Event{when, id, std::move(fn)});
  ++live_events_;
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (id < cancelled_.size() && cancelled_[id]) return false;
  if (cancelled_.size() <= id) cancelled_.resize(id + 64, false);
  cancelled_[id] = true;
  // live_events_ intentionally not decremented here: the event object is
  // still queued. pop_next() adjusts when it sweeps the tombstone.
  return true;
}

bool Simulator::pop_next(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; we need to move the closure out, so we
    // copy the small fields and const_cast the function (safe: the element
    // is popped immediately after).
    const Event& top = queue_.top();
    const bool dead = top.id < cancelled_.size() && cancelled_[top.id];
    out.when = top.when;
    out.id = top.id;
    if (!dead) out.fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    --live_events_;
    if (!dead) return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  Event ev;
  while (pop_next(ev)) {
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) break;
    Event ev;
    // pop_next may drain cancelled events past the deadline check; re-check.
    if (!pop_next(ev)) break;
    if (ev.when > deadline) {
      // Rare: the first live event is beyond the deadline. Re-queue it.
      queue_.push(Event{ev.when, ev.id, std::move(ev.fn)});
      ++live_events_;
      break;
    }
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Simulator::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  now_ = ev.when;
  ev.fn();
  return true;
}

}  // namespace sdr::sim
