#include "sim/simulator.hpp"

#include <bit>
#include <cassert>
#include <limits>

#include "telemetry/profiler.hpp"

namespace sdr::sim {

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint64_t w = static_cast<std::uint64_t>(when.ns);
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next;
  } else {
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.when = w;
  ++live_events_;
  if (w < min_bound_) min_bound_ = w;
  if ((w ^ cursor_) >= kWheelHorizonNs) {
    // Beyond the wheel's range: park in the overflow heap. The seq
    // tie-break keeps same-timestamp overflow events in schedule order;
    // they migrate into the wheel (in heap order) before any event at that
    // timestamp can be scheduled directly into a bucket, so overflow and
    // wheel events never interleave out of FIFO order.
    s.bucket = kInOverflow;
    overflow_.push(OverflowEntry{w, next_seq_++, slot, s.gen});
  } else {
    wheel_link(slot);
  }
  return EventId{slot, s.gen};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = id.slot();
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A generation mismatch means the event already fired or was cancelled
  // (each consumption bumps the generation, invalidating old handles).
  if (s.gen != id.generation() || !s.fn) return false;
  if (s.bucket != kInOverflow) wheel_unlink(slot);
  // An overflow event's heap entry stays behind; the generation bump makes
  // it stale and drain_overflow() discards it when it surfaces.
  retire(slot);
  return true;
}

void Simulator::wheel_link(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const std::uint64_t diff = s.when ^ cursor_;
  assert(diff < kWheelHorizonNs && "wheel_link past the horizon");
  const unsigned level =
      diff == 0 ? 0u
                : (63u - static_cast<unsigned>(std::countl_zero(diff))) /
                      kWheelBits;
  const unsigned si =
      static_cast<unsigned>(s.when >> (kWheelBits * level)) & (kWheelSlots - 1);
  const unsigned bi = level * kWheelSlots + si;
  Bucket& b = buckets_[bi];
  s.bucket = static_cast<std::uint16_t>(bi);
  s.next = kNoSlot;
  s.prev = b.tail;
  if (b.tail == kNoSlot) {
    b.head = slot;
  } else {
    slots_[b.tail].next = slot;
  }
  b.tail = slot;
  occupancy_[level] |= 1ULL << si;
}

void Simulator::wheel_unlink(std::uint32_t slot) {
  Slot& s = slots_[slot];
  const unsigned bi = s.bucket;
  assert(bi < kWheelLevels * kWheelSlots && "unlink of unbucketed slot");
  Bucket& b = buckets_[bi];
  if (s.prev == kNoSlot) {
    b.head = s.next;
  } else {
    slots_[s.prev].next = s.next;
  }
  if (s.next == kNoSlot) {
    b.tail = s.prev;
  } else {
    slots_[s.next].prev = s.prev;
  }
  if (b.head == kNoSlot) {
    occupancy_[bi >> kWheelBits] &= ~(1ULL << (bi & (kWheelSlots - 1)));
  }
  s.bucket = kNoBucket;
}

void Simulator::drain_overflow() {
  while (!overflow_.empty()) {
    const OverflowEntry& top = overflow_.top();
    if (slots_[top.slot].gen != top.gen) {
      overflow_.pop();  // cancelled while parked; drop the stale entry
      continue;
    }
    if ((top.when ^ cursor_) >= kWheelHorizonNs) return;
    const std::uint32_t slot = top.slot;
    overflow_.pop();
    wheel_link(slot);
  }
}

std::uint32_t Simulator::peek_next(std::uint64_t cap_ns) {
  if (cap_ns < min_bound_) return kNoSlot;
  for (;;) {
    // Migrate newly-in-range overflow events first: cursor advances below
    // never change overflow eligibility (they only touch bit groups under
    // the one where an out-of-range timestamp differs), so after this call
    // the wheel holds every pending event within the horizon.
    drain_overflow();

    // Level 0: the occupancy bits at/after the cursor's position within the
    // current 64 ns block are exactly the next deadlines in time order.
    const unsigned pos0 = static_cast<unsigned>(cursor_) & (kWheelSlots - 1);
    if (const std::uint64_t occ = occupancy_[0] >> pos0) {
      const unsigned si =
          pos0 + static_cast<unsigned>(std::countr_zero(occ));
      const std::uint64_t deadline =
          (cursor_ & ~static_cast<std::uint64_t>(kWheelSlots - 1)) + si;
      min_bound_ = deadline;  // the level-0 head IS the earliest pending
      if (deadline > cap_ns) return kNoSlot;
      cursor_ = deadline;
      return buckets_[si].head;
    }

    // Coarser levels: cascade the next occupied bucket down. Occupied
    // buckets never sit before the cursor's position at their level (the
    // cursor cannot pass a pending event), so a shifted-bitmap scan finds
    // the earliest one without wrap-around.
    bool cascaded = false;
    for (unsigned level = 1; level < kWheelLevels; ++level) {
      const unsigned shift = kWheelBits * level;
      const unsigned pos =
          static_cast<unsigned>(cursor_ >> shift) & (kWheelSlots - 1);
      const std::uint64_t occ = occupancy_[level] >> pos;
      if (!occ) continue;
      const unsigned si = pos + static_cast<unsigned>(std::countr_zero(occ));
      const std::uint64_t bucket_start =
          (cursor_ & ~((1ULL << (shift + kWheelBits)) - 1)) |
          (static_cast<std::uint64_t>(si) << shift);
      // Everything in this bucket is at or after bucket_start; stopping
      // here leaves the bucket intact so a later run/run_until resumes
      // exactly where this one left off.
      if (bucket_start > cap_ns) {
        if (bucket_start > min_bound_) min_bound_ = bucket_start;
        return kNoSlot;
      }
      if (bucket_start > cursor_) cursor_ = bucket_start;
      // Relink the whole bucket against the advanced cursor. Every entry
      // now agrees with the cursor in this level's bit group, so each lands
      // at a strictly lower level; relinking head-to-tail preserves FIFO
      // order among entries that share a destination bucket.
      Bucket& b = buckets_[level * kWheelSlots + si];
      std::uint32_t head = b.head;
      b.head = b.tail = kNoSlot;
      occupancy_[level] &= ~(1ULL << si);
      while (head != kNoSlot) {
        const std::uint32_t next = slots_[head].next;
        wheel_link(head);
        head = next;
      }
      cascaded = true;
      break;
    }
    if (cascaded) continue;

    // Wheel empty: jump the cursor to the earliest overflow event (skipping
    // entries whose event was cancelled) and let the drain pick it up.
    while (!overflow_.empty() &&
           slots_[overflow_.top().slot].gen != overflow_.top().gen) {
      overflow_.pop();
    }
    if (overflow_.empty()) {
      min_bound_ = std::numeric_limits<std::uint64_t>::max();
      return kNoSlot;
    }
    const std::uint64_t when = overflow_.top().when;
    min_bound_ = when;  // the overflow top IS the earliest pending
    if (when > cap_ns) return kNoSlot;
    cursor_ = when;
  }
}

std::uint32_t Simulator::pop_next(std::uint64_t cap_ns) {
  const std::uint32_t slot = peek_next(cap_ns);
  if (slot != kNoSlot) wheel_unlink(slot);
  return slot;
}

SimTime Simulator::next_deadline_slow(SimTime cap) {
  const std::uint32_t slot = peek_next(static_cast<std::uint64_t>(cap.ns));
  if (slot == kNoSlot) return SimTime::max();
  return SimTime{static_cast<std::int64_t>(cursor_)};
}

void Simulator::assert_no_deadline_at_or_before([[maybe_unused]] SimTime t) {
  assert(t >= now_ && "cannot advance the clock backwards");
  // Side effect of the check (wheel cascading) is semantics-neutral.
  assert(next_deadline(t) == SimTime::max() &&
         "advance_now would skip a pending event");
}

void Simulator::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();  // release captured state immediately
  ++s.gen;
  if (s.gen == 0) s.gen = 1;  // generation 0 is never issued
  s.bucket = kNoBucket;
  s.next = free_head_;
  free_head_ = slot;
  --live_events_;
}

void Simulator::fire(std::uint32_t slot) {
  EventFn fn = std::move(slots_[slot].fn);
  retire(slot);
  // Fallback profiler attribution: handler wall time not claimed by a
  // nested subsystem scope (channel/SR/EC/RC/SDR/collectives) lands in the
  // sim category together with the dispatch itself.
  telemetry::ProfScope prof(telemetry::ProfCategory::kSim);
  fn();
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  for (;;) {
    const std::uint32_t slot =
        pop_next(std::numeric_limits<std::uint64_t>::max());
    if (slot == kNoSlot) break;
    now_ = SimTime{static_cast<std::int64_t>(cursor_)};
    fire(slot);
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  const std::uint64_t cap = static_cast<std::uint64_t>(deadline.ns);
  for (;;) {
    const std::uint32_t slot = pop_next(cap);
    if (slot == kNoSlot) break;
    now_ = SimTime{static_cast<std::int64_t>(cursor_)};
    fire(slot);
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Simulator::step() {
  const std::uint32_t slot =
      pop_next(std::numeric_limits<std::uint64_t>::max());
  if (slot == kNoSlot) return false;
  now_ = SimTime{static_cast<std::int64_t>(cursor_)};
  fire(slot);
  return true;
}

void Simulator::reserve(std::size_t events) {
  slots_.reserve(events);
  overflow_.reserve(events);
}

}  // namespace sdr::sim
