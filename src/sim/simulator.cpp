#include "sim/simulator.hpp"

#include <cassert>

namespace sdr::sim {

EventId Simulator::schedule_at(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slots_.emplace_back();
    slot = static_cast<std::uint32_t>(slots_.size() - 1);
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  queue_.push(QueueEntry{when, next_seq_++, slot, s.gen});
  ++live_events_;
  return EventId{slot, s.gen};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = id.slot();
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // A generation mismatch means the event already fired or was cancelled
  // (each consumption bumps the generation, invalidating old handles).
  if (s.gen != id.generation() || !s.fn) return false;
  retire(slot);
  return true;
}

void Simulator::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();  // release captured state immediately
  ++s.gen;
  if (s.gen == 0) s.gen = 1;  // generation 0 is never issued
  s.next_free = free_head_;
  free_head_ = slot;
  --live_events_;
}

void Simulator::fire(std::uint32_t slot) {
  EventFn fn = std::move(slots_[slot].fn);
  retire(slot);
  fn();
}

void Simulator::drop_stale() {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    if (slots_[top.slot].gen == top.gen) return;
    queue_.pop();
  }
}

std::uint64_t Simulator::run() {
  std::uint64_t executed = 0;
  for (;;) {
    drop_stale();
    if (queue_.empty()) break;
    const QueueEntry top = queue_.top();
    queue_.pop();
    now_ = top.when;
    fire(top.slot);
    ++executed;
  }
  return executed;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t executed = 0;
  for (;;) {
    drop_stale();
    if (queue_.empty() || queue_.top().when > deadline) break;
    const QueueEntry top = queue_.top();
    queue_.pop();
    now_ = top.when;
    fire(top.slot);
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Simulator::step() {
  drop_stale();
  if (queue_.empty()) return false;
  const QueueEntry top = queue_.top();
  queue_.pop();
  now_ = top.when;
  fire(top.slot);
  return true;
}

void Simulator::reserve(std::size_t events) {
  queue_.reserve(events);
  slots_.reserve(events);
}

}  // namespace sdr::sim
