// Fleet traffic model: seeded per-tenant message schedules.
//
// A tenant is a class of traffic sharing one statistical shape — the
// small-op/bulk dichotomy of production RDMA fleets (Storm-style traces):
// message sizes follow a Zipf rank distribution over power-of-two size
// classes (rank 1 = the base size = most frequent), and arrivals follow
// either a Poisson process or a recorded trace replayed through
// TraceArrivals. Every schedule is derived from (tenant seed, connection
// index) with derive_seed, so a fleet plan depends only on the seed and the
// configuration — never on construction order or thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace sdr::fleet {

enum class ArrivalKind : std::uint8_t { kPoisson, kTrace };

/// Statistical shape of one tenant's per-connection traffic.
struct TenantTraffic {
  std::string name{"tenant"};
  /// Endpoint share of this tenant, normalized across the mix.
  double share{1.0};
  /// Mean per-connection arrival rate (Poisson) in messages/s.
  double msgs_per_s{2000.0};
  /// Message size of Zipf rank r is base_msg_bytes << (r - 1).
  std::size_t base_msg_bytes{4096};
  std::size_t size_ranks{4};
  double zipf_s{1.2};
  /// Per-connection in-flight message cap; arrivals beyond it queue.
  std::size_t window{8};
  ArrivalKind arrivals{ArrivalKind::kPoisson};
  /// Recorded arrival offsets (seconds) for kTrace; replayed with wrap.
  std::vector<double> trace_s{};

  std::size_t max_msg_bytes() const {
    return base_msg_bytes << (size_ranks > 0 ? size_ranks - 1 : 0);
  }
};

/// One planned message on one connection.
struct PlannedMessage {
  std::int64_t arrival_ns{0};
  std::uint32_t bytes{0};
};

/// Generate `count` messages for one connection of `tenant`. Arrival times
/// are strictly ordered (Poisson gaps are positive; trace replay is
/// monotone); sizes are drawn independently per message. The generator is
/// seeded from (seed, connection_index) so connections are uncorrelated and
/// the plan is reproducible in isolation.
std::vector<PlannedMessage> plan_messages(const TenantTraffic& tenant,
                                          std::size_t count,
                                          std::uint64_t seed,
                                          std::uint64_t connection_index);

}  // namespace sdr::fleet
