#include "fleet/traffic.hpp"

#include "common/time.hpp"

namespace sdr::fleet {

std::vector<PlannedMessage> plan_messages(const TenantTraffic& tenant,
                                          std::size_t count,
                                          std::uint64_t seed,
                                          std::uint64_t connection_index) {
  std::vector<PlannedMessage> plan;
  plan.reserve(count);
  Rng rng(derive_seed(seed, connection_index));
  const ZipfSampler zipf(tenant.size_ranks, tenant.zipf_s);

  PoissonProcess poisson(tenant.msgs_per_s);
  TraceArrivals trace(tenant.trace_s);

  std::int64_t last_ns = -1;
  for (std::size_t i = 0; i < count; ++i) {
    PlannedMessage msg;
    const double arrival_s = tenant.arrivals == ArrivalKind::kPoisson
                                 ? poisson.next(rng)
                                 : trace.next();
    msg.arrival_ns = SimTime::from_seconds(arrival_s).ns;
    // Integer-ns rounding (and all-zero traces) can collapse neighbours;
    // keep arrivals strictly ordered so per-message latency accounting is
    // unambiguous.
    if (msg.arrival_ns <= last_ns) msg.arrival_ns = last_ns + 1;
    last_ns = msg.arrival_ns;

    const std::size_t rank = zipf.sample(rng);
    msg.bytes = static_cast<std::uint32_t>(tenant.base_msg_bytes
                                           << (rank - 1));
    plan.push_back(msg);
  }
  return plan;
}

}  // namespace sdr::fleet
