#include "fleet/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/payload_pool.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "reliability/reliable_channel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/fabric.hpp"

namespace sdr::fleet {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSr: return "sr";
    case Scheme::kEc: return "ec";
    case Scheme::kRc: return "rc";
  }
  return "?";
}

FleetConfig FleetConfig::defaults() {
  FleetConfig cfg;
  cfg.caps.enabled = true;
  cfg.caps.pcie_desc_s = 16e-9;
  cfg.caps.pcie_doorbell_s = 250e-9;
  cfg.caps.doorbell_batch = 8;
  cfg.caps.sq_depth = 512;
  cfg.caps.write_ops_per_s = 2e6;
  cfg.caps.send_ops_per_s = 1e6;
  cfg.caps.burst_ops = 64.0;

  TenantTraffic small;
  small.name = "smallop";
  small.share = 0.7;
  small.msgs_per_s = 3000.0;
  small.base_msg_bytes = 4096;
  small.size_ranks = 4;  // 4..32 KiB
  small.zipf_s = 1.2;
  small.window = 8;

  TenantTraffic bulk;
  bulk.name = "bulk";
  bulk.share = 0.3;
  bulk.msgs_per_s = 400.0;
  bulk.base_msg_bytes = 64 * 1024;
  bulk.size_ranks = 3;  // 64..256 KiB
  bulk.zipf_s = 1.0;
  bulk.window = 4;

  cfg.tenants = {small, bulk};
  return cfg;
}

namespace {

// EC geometry for fleet-sized messages: one chunk per MTU packet and a
// (4, 2) code give a 16 KiB submessage — small-op messages pad to one
// submessage instead of the single-flow default's 2 MiB.
constexpr std::size_t kEcK = 4;
constexpr std::size_t kEcM = 2;

constexpr std::uint64_t kCollectiveTenant = ~std::uint64_t{0};

std::uint64_t mix_into(std::uint64_t h, std::uint64_t v) {
  return splitmix64_mix(h ^ (v + kSplitMix64Gamma + (h << 6) + (h >> 2)));
}

double percentile_ms(std::vector<std::int64_t>& latencies_ns, double pct) {
  if (latencies_ns.empty()) return 0.0;
  const std::size_t n = latencies_ns.size();
  std::size_t idx = static_cast<std::size_t>(
      pct / 100.0 * static_cast<double>(n - 1) + 0.5);
  if (idx >= n) idx = n - 1;
  std::nth_element(latencies_ns.begin(), latencies_ns.begin() + idx,
                   latencies_ns.end());
  return static_cast<double>(latencies_ns[idx]) * 1e-6;
}

class FleetEngine;

/// One unidirectional fleet connection: a sender endpoint on one DC NIC
/// streaming windowed messages to a receiver endpoint on another.
struct Conn {
  FleetEngine* eng{nullptr};
  std::size_t id{0};
  std::size_t tenant{0};  // index into config tenants; kCollectiveTenant
  std::size_t src_endpoint{0};
  std::size_t window{1};
  bool is_collective{false};

  // Transport: SR/EC use a ReliableChannel, RC a raw QP pair.
  std::unique_ptr<reliability::ReliableChannel> rel;
  verbs::Qp* tx{nullptr};
  verbs::Qp* rx{nullptr};
  std::unique_ptr<verbs::CompletionQueue> rx_cq;
  const verbs::MemoryRegion* rx_mr{nullptr};

  std::vector<PlannedMessage> plan;        // useful bytes + arrival ns
  std::vector<std::uint32_t> wire_bytes;   // scheme-padded post length
  std::size_t max_wire_bytes{0};

  std::size_t next_arrival{0};  // arrivals seen (tenant conns)
  std::size_t next_post{0};     // next index to hand to the protocol
  std::size_t inflight{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};  // receiver done with an error (e.g. EC abort)

  std::vector<std::uint8_t> send_buf;
  std::vector<std::uint8_t> recv_arena;
  std::vector<std::uint32_t> free_slots;
  std::vector<std::uint32_t> slot_of_seq;
  // Outstanding completion callbacks per message: the reliable schemes
  // deliver a receiver done AND a sender done (the sender's message-table
  // slot frees only at the final ACK, ~0.5 RTT after delivery); the window
  // slot is reusable only once both fired. RC has only the receive CQE.
  std::vector<std::uint8_t> parts_left;

  // Collective edges only: per-step completion marks and the length of the
  // contiguous completed prefix. Messages on one channel can complete out
  // of order (a later small step passes an earlier retransmitting one), so
  // the downstream ring release keys off the contiguous prefix, never off
  // a raw completion index.
  std::vector<std::uint8_t> step_done;
  std::size_t steps_contig{0};

  void on_arrival();
  void try_post();
  void start(std::size_t seq);
  void on_recv_done(std::size_t seq, bool ok);
  void part_done(std::size_t seq);
};

/// Per-tenant telemetry rollup: counters + completion-latency histogram
/// exported through the registry ("fleet.<tenant>.*").
struct TenantRollup {
  std::uint64_t posted{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t useful_bytes{0};
  std::uint64_t connections{0};
  std::vector<std::int64_t> latencies_ns;
  telemetry::HistogramHandle latency_hist;
  telemetry::Scope tele;  // last member: unbinds before counters die
};

class FleetEngine {
 public:
  explicit FleetEngine(const FleetConfig& config) : cfg_(config) {}

  FleetResult run();

 private:
  friend struct Conn;

  std::size_t scheme_padded(std::size_t bytes) const {
    if (cfg_.scheme != Scheme::kEc) return bytes;
    const std::size_t sub = kEcK * kMtu;
    return (bytes + sub - 1) / sub * sub;
  }

  void build_topology();
  void build_connections();
  void build_collective();
  std::unique_ptr<Conn> make_conn(std::size_t tenant_idx,
                                  std::size_t src_endpoint,
                                  std::size_t dst_dc,
                                  std::vector<PlannedMessage> plan);
  void kickoff();
  void collect(FleetResult& out);
  void on_completion(Conn& conn, std::size_t seq, std::int64_t latency_ns,
                     std::uint32_t useful);
  void on_failure(Conn& conn, std::size_t seq);
  void on_collective_step(Conn& conn, std::size_t seq);
  void concurrent_delta(std::int64_t d) {
    concurrent_ += d;
    if (concurrent_ > peak_concurrent_) peak_concurrent_ = concurrent_;
  }

  static constexpr std::size_t kMtu = 4096;

  FleetConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<verbs::Fabric> fabric_;
  std::vector<verbs::Nic*> dc_nics_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<Conn*> collective_edges_;  // [participant] -> outgoing edge
  std::vector<TenantRollup> rollups_;    // tenants..., collective last
  std::vector<std::uint64_t> endpoint_bytes_;  // per sender endpoint
  std::vector<std::int64_t> fleet_latencies_ns_;
  std::int64_t concurrent_{0};
  std::int64_t peak_concurrent_{0};
  std::int64_t last_completion_ns_{0};
  std::uint64_t digest_{0};
  std::size_t collective_total_steps_{0};
};

// ---------------------------------------------------------------------------
// Connection behaviour
// ---------------------------------------------------------------------------

void Conn::on_arrival() {
  ++next_arrival;
  eng->concurrent_delta(+1);
  try_post();
  // Self-advancing arrival chain: one pending event per connection.
  if (next_arrival < plan.size()) {
    Conn* self = this;
    const std::int64_t at = plan[next_arrival].arrival_ns;
    eng->sim_.schedule_at(SimTime{at}, [self] { self->on_arrival(); });
  }
}

void Conn::try_post() {
  while (inflight < window && next_post < next_arrival) {
    start(next_post++);
  }
}

void Conn::start(std::size_t seq) {
  if (free_slots.empty()) {
    // Slot exhaustion is a windowing bug (try_post gates on `window`, and
    // collective edges hold one slot per step); popping an empty vector
    // would be silent UB, so fail loudly instead.
    std::fprintf(stderr, "fleet: conn %zu seq %zu: no free payload slot\n",
                 id, seq);
    std::abort();
  }
  const std::uint32_t slot = free_slots.back();
  free_slots.pop_back();
  slot_of_seq[seq] = slot;
  ++inflight;

  const std::uint32_t len = wire_bytes[seq];
  std::uint8_t* dst = recv_arena.data() +
                      static_cast<std::size_t>(slot) * max_wire_bytes;
  if (rel != nullptr) {
    Conn* self = this;
    parts_left[seq] = 2;
    const Status rs = rel->recv(dst, len, [self, seq](const Status& st) {
      self->on_recv_done(seq, static_cast<bool>(st));
    });
    const Status ss = rel->send(
        send_buf.data(), len,
        [self, seq](const Status&) { self->part_done(seq); });
    if (!rs || !ss) {
      // A refused post is a fleet-configuration bug (undersized message
      // table, bad geometry) — fail loudly, never silently drop a message.
      std::fprintf(stderr, "fleet: conn %zu seq %zu post failed: %s%s\n", id,
                   seq, rs ? "" : rs.message().c_str(),
                   ss ? "" : ss.message().c_str());
      std::abort();
    }
    return;
  }
  // RC write-with-immediate: the immediate carries the sequence number, so
  // the receiver-side CQE resolves its message without ordering games.
  parts_left[seq] = 1;
  verbs::WriteWr wr;
  wr.wr_id = seq;
  wr.local_addr = send_buf.data();
  wr.length = len;
  wr.rkey = rx_mr->rkey();
  wr.remote_offset = static_cast<std::size_t>(slot) * max_wire_bytes;
  wr.with_imm = true;
  wr.imm = static_cast<std::uint32_t>(seq);
  wr.signaled = false;
  tx->post_write(wr);
}

void Conn::on_recv_done(std::size_t seq, bool ok) {
  const std::int64_t now_ns = eng->sim_.now().ns;
  eng->concurrent_delta(-1);
  if (!ok) {
    // Receiver gave up (EC global-timeout abort). Free the window slot but
    // never count the message as delivered — and never release the ring
    // dependency on data that did not arrive.
    ++failed;
    eng->on_failure(*this, seq);
    part_done(seq);
    return;
  }
  ++completed;
  eng->on_completion(*this, seq, now_ns - plan[seq].arrival_ns,
                     plan[seq].bytes);
  // The ring dependency releases on delivery, not on the sender's ACK: the
  // downstream participant owns the segment as soon as it lands.
  if (is_collective) eng->on_collective_step(*this, seq);
  part_done(seq);
}

void Conn::part_done(std::size_t seq) {
  if (--parts_left[seq] != 0) return;
  free_slots.push_back(slot_of_seq[seq]);
  --inflight;
  if (!is_collective) try_post();
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

void FleetEngine::build_topology() {
  fabric_ = std::make_unique<verbs::Fabric>(sim_);
  dc_nics_.clear();
  for (std::size_t d = 0; d < cfg_.dcs; ++d) {
    verbs::Nic* nic = fabric_->add_nic();
    nic->set_caps(cfg_.caps);
    dc_nics_.push_back(nic);
  }
  verbs::Fabric::LinkOptions link;
  link.config.bandwidth_bps = cfg_.trunk_bandwidth_bps;
  link.config.distance_km = cfg_.distance_km;
  link.config.queue_capacity_bytes = cfg_.trunk_queue_bytes;
  link.config.seed = derive_seed(cfg_.seed, 0x71u);
  link.p_drop_forward = cfg_.p_drop;
  link.p_drop_backward = cfg_.p_drop;
  link.paths = cfg_.trunk_paths;
  link.path_skew_s = cfg_.path_skew_s;
  for (std::size_t a = 0; a < cfg_.dcs; ++a) {
    for (std::size_t b = a + 1; b < cfg_.dcs; ++b) {
      fabric_->connect(dc_nics_[a], dc_nics_[b], link);
    }
  }
}

std::unique_ptr<Conn> FleetEngine::make_conn(std::size_t tenant_idx,
                                             std::size_t src_endpoint,
                                             std::size_t dst_dc,
                                             std::vector<PlannedMessage> plan) {
  auto conn = std::make_unique<Conn>();
  conn->eng = this;
  conn->id = conns_.size();
  conn->tenant = tenant_idx;
  conn->src_endpoint = src_endpoint;
  conn->is_collective = tenant_idx == kCollectiveTenant;
  conn->plan = std::move(plan);

  const std::size_t src_dc = src_endpoint / cfg_.endpoints_per_dc;
  verbs::Nic* src = dc_nics_[src_dc];
  verbs::Nic* dst = dc_nics_[dst_dc];

  conn->wire_bytes.reserve(conn->plan.size());
  std::size_t max_wire = 0;
  for (const PlannedMessage& m : conn->plan) {
    const std::size_t padded = scheme_padded(m.bytes);
    conn->wire_bytes.push_back(static_cast<std::uint32_t>(padded));
    max_wire = std::max(max_wire, padded);
  }
  conn->max_wire_bytes = max_wire;

  // Collective edges get one slot per ring step: the ring dependency
  // releases step g on receiver completion of step g-1, but the sender
  // side of a slot only frees at the final ACK ~0.5 RTT later — under
  // loss the dependency chain can overtake the trailing ACKs by more than
  // any fixed window, so per-step slots are the only bound that is always
  // safe (plans are small: 2*(dcs-1)*iterations steps).
  const std::size_t window =
      conn->is_collective ? conn->plan.size()
                          : cfg_.tenants[tenant_idx].window;
  conn->window = window;
  conn->send_buf.assign(max_wire, 0xA5);
  conn->recv_arena.assign(window * max_wire, 0);
  conn->free_slots.reserve(window);
  for (std::size_t s = window; s > 0; --s) {
    conn->free_slots.push_back(static_cast<std::uint32_t>(s - 1));
  }
  conn->slot_of_seq.assign(conn->plan.size(), 0);
  conn->parts_left.assign(conn->plan.size(), 0);
  if (conn->is_collective) conn->step_done.assign(conn->plan.size(), 0);

  const double rtt = rtt_s(cfg_.distance_km);
  if (cfg_.scheme == Scheme::kRc) {
    verbs::QpConfig qcfg;
    qcfg.type = verbs::QpType::kRC;
    qcfg.mtu = kMtu;
    qcfg.rc_mode = verbs::RcMode::kGoBackN;
    qcfg.rc_ack_timeout_s = 3.0 * rtt;
    qcfg.rc_retry_limit = 16;
    conn->rx_cq = std::make_unique<verbs::CompletionQueue>(4096);
    verbs::QpConfig rx_cfg = qcfg;
    rx_cfg.recv_cq = conn->rx_cq.get();
    conn->tx = src->create_qp(qcfg);
    conn->rx = dst->create_qp(rx_cfg);
    conn->tx->connect(dst->id(), conn->rx->num());
    conn->rx->connect(src->id(), conn->tx->num());
    conn->rx_mr = dst->pd().register_mr(conn->recv_arena.data(),
                                        conn->recv_arena.size());
    Conn* raw = conn.get();
    conn->rx_cq->set_notify([raw] {
      while (auto cqe = raw->rx_cq->poll_one()) {
        raw->on_recv_done(cqe->imm, true);
      }
    });
  } else {
    reliability::ReliableChannel::Options options;
    options.kind = cfg_.scheme == Scheme::kEc
                       ? reliability::ReliableChannel::Kind::kEcMds
                       : reliability::ReliableChannel::Kind::kSrRto;
    options.profile.bandwidth_bps = cfg_.trunk_bandwidth_bps;
    options.profile.rtt_s = rtt;
    options.profile.p_drop_packet = cfg_.p_drop;
    options.profile.mtu = kMtu;
    options.attr.mtu = kMtu;
    options.control_recv_buffers = 32;
    if (cfg_.scheme == Scheme::kEc) {
      options.attr.chunk_size = kMtu;  // one coded chunk per packet
      options.ec.k = kEcK;
      options.ec.m = kEcM;
    } else {
      // One bitmap bit per chunk: keep the chunk no bigger than the largest
      // message on the connection, rounded to whole MTU packets.
      std::size_t chunk = std::min<std::size_t>(64 * KiB, max_wire);
      chunk = chunk / kMtu * kMtu;
      options.attr.chunk_size = chunk == 0 ? kMtu : chunk;
    }
    options.profile.chunk_bytes = options.attr.chunk_size;
    const std::size_t chunk = options.attr.chunk_size;
    options.attr.max_msg_size =
        std::max<std::size_t>(chunk, (max_wire + chunk - 1) / chunk * chunk);
    // The core maps message number -> table slot round-robin
    // (slot = number % max_inflight), and slot release inside the
    // protocols trails the app done callback: the sender frees at the
    // final ACK, ~0.5 RTT after the receiver reports completion. A table
    // sized to the app window therefore wraps onto slots that are still
    // draining and refuses the post the just-delivered message admitted.
    // Since every connection's plan is finite, size the table so message
    // numbers never wrap it at all: one slot per core message posted over
    // the connection's lifetime. The EC stack posts one core message per
    // data submessage plus one per parity submessage, so an app message of
    // S submessages consumes 2*S message numbers; SR consumes one.
    // Retransmits reuse handles and consume no new numbers. The immediate
    // layout caps the table at imm.max_messages() (1024); worst-case bulk
    // EC plans stay comfortably under it.
    std::size_t slots_per_msg = 1;
    if (cfg_.scheme == Scheme::kEc) {
      const std::size_t sub = kEcK * kMtu;
      slots_per_msg = 2 * std::max<std::size_t>(1, max_wire / sub);
    }
    options.attr.max_inflight = std::min<std::size_t>(
        options.attr.imm.max_messages(),
        conn->plan.size() * slots_per_msg + 4);
    // The CTS is one unreliable datagram on the lossy trunk; at fleet
    // message counts its loss is a certainty (p_drop * messages >> 1) and
    // an un-retried CTS wedges the message forever. A few RTTs of pacing
    // means an in-flight first chunk always wins the race, so retries fire
    // only for genuinely lost CTSes.
    options.sr.cts_retry_s = 4.0 * rtt;
    options.ec.cts_retry_s = 4.0 * rtt;
    options.derive_timeouts();
    conn->rel = std::make_unique<reliability::ReliableChannel>(sim_, *src,
                                                               *dst, options);
  }
  return conn;
}

void FleetEngine::build_connections() {
  const std::size_t per_dc = cfg_.endpoints_per_dc;
  const std::size_t endpoints = cfg_.dcs * per_dc;
  endpoint_bytes_.assign(endpoints, 0);

  // Normalize tenant shares once.
  double total_share = 0.0;
  for (const TenantTraffic& t : cfg_.tenants) total_share += t.share;
  if (total_share <= 0.0) total_share = 1.0;

  const bool collective_on = cfg_.collective && cfg_.dcs >= 2;
  for (std::size_t e = 0; e < endpoints; ++e) {
    const std::size_t dc = e / per_dc;
    const std::size_t local = e % per_dc;
    if (collective_on && local == 0) continue;  // collective participant
    if (cfg_.tenants.empty()) continue;

    // Proportional, deterministic tenant assignment by local position.
    const double pos = (static_cast<double>(local) + 0.5) /
                       static_cast<double>(per_dc);
    std::size_t tenant_idx = cfg_.tenants.size() - 1;
    double cum = 0.0;
    for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
      cum += cfg_.tenants[t].share / total_share;
      if (pos <= cum) {
        tenant_idx = t;
        break;
      }
    }

    // Spread destinations across every other DC.
    const std::size_t dst_dc =
        cfg_.dcs > 1 ? (dc + 1 + (local % (cfg_.dcs - 1))) % cfg_.dcs : dc;
    std::vector<PlannedMessage> plan = plan_messages(
        cfg_.tenants[tenant_idx], cfg_.messages_per_connection,
        derive_seed(cfg_.seed, 0x1000u + tenant_idx), e);
    conns_.push_back(make_conn(tenant_idx, e, dst_dc, std::move(plan)));
    ++rollups_[tenant_idx].connections;
  }
}

void FleetEngine::build_collective() {
  collective_edges_.clear();
  if (!cfg_.collective || cfg_.dcs < 2) return;
  const std::size_t steps_per_iter = 2 * (cfg_.dcs - 1);
  collective_total_steps_ = steps_per_iter * cfg_.collective_iterations;

  for (std::size_t p = 0; p < cfg_.dcs; ++p) {
    const std::size_t src_endpoint = p * cfg_.endpoints_per_dc;  // local 0
    const std::size_t dst_dc = (p + 1) % cfg_.dcs;
    std::vector<PlannedMessage> plan(collective_total_steps_);
    for (PlannedMessage& m : plan) {
      m.arrival_ns = 0;  // stamped when the dependency releases the step
      m.bytes = static_cast<std::uint32_t>(cfg_.collective_segment_bytes);
    }
    conns_.push_back(
        make_conn(kCollectiveTenant, src_endpoint, dst_dc, std::move(plan)));
    collective_edges_.push_back(conns_.back().get());
    ++rollups_.back().connections;
  }
}

void FleetEngine::on_collective_step(Conn& conn, std::size_t seq) {
  // conn is the edge p -> p+1; its receiver (participant p+1) may send
  // ring step s+1 on its own outgoing edge once it has received step s
  // (reduce-scatter/allgather dependency: step s+1 consumes the segment
  // received in step s). Completions on one channel are not ordered —
  // a later small step can pass an earlier retransmitting one — so mark
  // the step and release downstream posts only as the contiguous
  // completed prefix advances; posting on a raw completion index would
  // leave holes in the downstream plan.
  conn.step_done[seq] = 1;
  while (conn.steps_contig < collective_total_steps_ &&
         conn.step_done[conn.steps_contig]) {
    ++conn.steps_contig;
  }
  const std::size_t receiver =
      (conn.id - collective_edges_[0]->id + 1) % collective_edges_.size();
  Conn* edge = collective_edges_[receiver];
  // Edge step s needs upstream step s-1, i.e. s <= conn.steps_contig.
  while (edge->next_post <= conn.steps_contig &&
         edge->next_post < collective_total_steps_) {
    const std::size_t next = edge->next_post++;
    edge->plan[next].arrival_ns = sim_.now().ns;
    edge->next_arrival = edge->next_post;
    concurrent_delta(+1);
    edge->start(next);
  }
}

void FleetEngine::kickoff() {
  for (auto& conn : conns_) {
    if (conn->is_collective || conn->plan.empty()) continue;
    Conn* raw = conn.get();
    sim_.schedule_at(SimTime{conn->plan[0].arrival_ns},
                     [raw] { raw->on_arrival(); });
  }
  // Ring step 0 is released unconditionally on every participant.
  for (Conn* edge : collective_edges_) {
    if (collective_total_steps_ == 0) break;
    edge->plan[0].arrival_ns = 0;
    edge->next_arrival = 1;
    edge->next_post = 1;
    concurrent_delta(+1);
    edge->start(0);
  }
}

void FleetEngine::on_completion(Conn& conn, std::size_t seq,
                                std::int64_t latency_ns,
                                std::uint32_t useful) {
  const std::int64_t now_ns = sim_.now().ns;
  last_completion_ns_ = std::max(last_completion_ns_, now_ns);
  TenantRollup& roll = conn.is_collective ? rollups_.back()
                                          : rollups_[conn.tenant];
  ++roll.completed;
  roll.useful_bytes += useful;
  roll.latencies_ns.push_back(latency_ns);
  roll.latency_hist.record(static_cast<double>(latency_ns) * 1e-9);
  fleet_latencies_ns_.push_back(latency_ns);
  endpoint_bytes_[conn.src_endpoint] += useful;

  digest_ = mix_into(digest_, conn.id);
  digest_ = mix_into(digest_, seq);
  digest_ = mix_into(digest_, static_cast<std::uint64_t>(now_ns));
  digest_ = mix_into(digest_, useful);
}

void FleetEngine::on_failure(Conn& conn, std::size_t seq) {
  TenantRollup& roll = conn.is_collective ? rollups_.back()
                                          : rollups_[conn.tenant];
  ++roll.failed;
  // Failures are part of the fleet outcome: fold a marker distinct from
  // any completion record.
  digest_ = mix_into(digest_, 0xFA11ED);
  digest_ = mix_into(digest_, conn.id);
  digest_ = mix_into(digest_, seq);
}

void FleetEngine::collect(FleetResult& out) {
  out.endpoints = cfg_.dcs * cfg_.endpoints_per_dc;
  out.connections = conns_.size();
  out.peak_concurrent = static_cast<std::uint64_t>(peak_concurrent_);
  out.quiesced = sim_.pending() == 0;
  out.payload_live_slots = common::payload_pool().live_slots();
  out.makespan_s = static_cast<double>(last_completion_ns_) * 1e-9;

  for (verbs::Nic* nic : dc_nics_) {
    out.qps_created += nic->qp_count();
    out.unknown_qp_packets += nic->unknown_qp_packets();
    out.unroutable_packets += nic->unroutable_packets();
  }
  for (const auto& ch : fabric_->channels()) {
    out.trunk_drops += ch->stats().dropped_packets + ch->stats().queue_drops;
  }
  for (const auto& conn : conns_) {
    out.messages_posted += conn->next_post;
    if (conn->rel != nullptr) {
      out.retransmissions += conn->rel->retransmissions();
    } else if (conn->tx != nullptr) {
      out.retransmissions += conn->tx->stats().rc_retransmissions;
    }
  }

  const std::size_t tenant_count = rollups_.size();
  out.tenants.resize(tenant_count);
  for (std::size_t t = 0; t < tenant_count; ++t) {
    TenantRollup& roll = rollups_[t];
    TenantResult& res = out.tenants[t];
    res.name = t < cfg_.tenants.size() ? cfg_.tenants[t].name : "collective";
    res.connections = roll.connections;
    res.posted = roll.posted;
    res.completed = roll.completed;
    res.failed = roll.failed;
    res.useful_bytes = roll.useful_bytes;
    if (out.makespan_s > 0.0) {
      res.goodput_gbps = static_cast<double>(roll.useful_bytes) * 8.0 /
                         out.makespan_s / 1e9;
    }
    res.p50_ms = percentile_ms(roll.latencies_ns, 50.0);
    res.p99_ms = percentile_ms(roll.latencies_ns, 99.0);
    res.p999_ms = percentile_ms(roll.latencies_ns, 99.9);
    out.messages_completed += roll.completed;
    out.messages_failed += roll.failed;
    out.useful_bytes += roll.useful_bytes;
  }
  if (out.makespan_s > 0.0) {
    out.fleet_goodput_gbps =
        static_cast<double>(out.useful_bytes) * 8.0 / out.makespan_s / 1e9;
  }
  out.p50_ms = percentile_ms(fleet_latencies_ns_, 50.0);
  out.p99_ms = percentile_ms(fleet_latencies_ns_, 99.0);
  out.p999_ms = percentile_ms(fleet_latencies_ns_, 99.9);

  // Jain fairness over per-sender-endpoint completed bytes (endpoints that
  // sent nothing because they own no connection are excluded).
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t active = 0;
  for (const auto& conn : conns_) {
    const double x =
        static_cast<double>(endpoint_bytes_[conn->src_endpoint]);
    sum += x;
    sum_sq += x * x;
    ++active;
  }
  if (active > 0 && sum_sq > 0.0) {
    out.jain_fairness =
        sum * sum / (static_cast<double>(active) * sum_sq);
  }

  // Fold the aggregate counters into the digest so "same digest" implies
  // "same fleet outcome", not just same completion sequence.
  std::uint64_t digest = digest_;
  digest = mix_into(digest, out.messages_posted);
  digest = mix_into(digest, out.messages_completed);
  digest = mix_into(digest, out.useful_bytes);
  digest = mix_into(digest, out.peak_concurrent);
  out.digest = digest;
}

FleetResult FleetEngine::run() {
  rollups_.clear();
  const bool collective_on = cfg_.collective && cfg_.dcs >= 2;
  rollups_.resize(cfg_.tenants.size() + 1);  // + collective slot (maybe idle)
  if (telemetry::enabled()) {
    auto& reg = telemetry::registry();
    for (std::size_t t = 0; t < rollups_.size(); ++t) {
      const std::string name =
          t < cfg_.tenants.size() ? cfg_.tenants[t].name : "collective";
      TenantRollup& roll = rollups_[t];
      roll.tele = telemetry::Scope(reg, "fleet." + name);
      roll.tele.bind_counter("messages_posted", &roll.posted);
      roll.tele.bind_counter("messages_completed", &roll.completed);
      roll.tele.bind_counter("messages_failed", &roll.failed);
      roll.tele.bind_counter("useful_bytes", &roll.useful_bytes);
      roll.latency_hist =
          roll.tele.histogram("completion_latency_s", 1e-6, 1e3);
    }
  }

  build_topology();
  build_connections();
  if (collective_on) build_collective();

  // Posted counts: tenant plans are fully posted by construction intent;
  // count them as posted when their arrival fires (next_post advances), so
  // tally after the run instead. Collective steps tally as they release.
  kickoff();
  sim_.run_until(SimTime::from_seconds(cfg_.horizon_s));

  for (const auto& conn : conns_) {
    TenantRollup& roll = conn->is_collective ? rollups_.back()
                                             : rollups_[conn->tenant];
    roll.posted += conn->next_post;
  }

  FleetResult out;
  collect(out);
  return out;
}

}  // namespace

FleetResult run_fleet(const FleetConfig& config) {
  FleetEngine engine(config);
  return engine.run();
}

}  // namespace sdr::fleet
