// Fleet scenario engine: hundreds of endpoints, thousands of concurrent
// messages, one resource-modeled fabric.
//
// The paper evaluates reliability schemes one flow at a time; a planetary
// fleet is the opposite regime — many tenants' flows share DC-to-DC trunks
// and finite NIC injection capacity, and the interesting outputs are
// *fleet-level*: aggregate goodput, Jain fairness across endpoints, and the
// completion-latency tail. This engine builds that regime deterministically:
//
//   * Topology: one NIC per datacenter, fully meshed with ECMP multipath
//     trunks (Fabric). Endpoints are SDR/RC connections multiplexed onto
//     their DC's NIC — the thousand-QP fan-in the dense QPN table exists
//     for. (The software NICs do not forward, so endpoint traffic is the
//     cross-DC traffic the paper's WAN story is about.)
//   * Resource model: NicCaps on every DC NIC (nic_model.hpp) — descriptor
//     and doorbell PCIe costs, SQ-depth backpressure, per-QP/per-verb token
//     buckets — so endpoints contend for injection, not just bandwidth.
//   * Traffic: a seeded tenant mix (traffic.hpp) of Zipf-sized messages
//     with Poisson or trace-driven arrivals, windowed per connection with
//     FIFO backlog, plus a dependency-driven ring collective (reduce-
//     scatter + allgather schedule) running as one tenant among many.
//   * Schemes: every data connection runs the trial's reliability scheme —
//     SDR+SR, SDR+EC (sizes padded to whole submessages), or verbs RC
//     (write-with-immediate, Go-Back-N) as the commodity baseline.
//
// run_fleet() is pure with respect to its config: same config => same
// FleetResult, including the order-sensitive completion digest, on any
// thread of any --jobs=N sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/traffic.hpp"
#include "verbs/nic_model.hpp"

namespace sdr::fleet {

enum class Scheme : std::uint8_t { kSr, kEc, kRc };

const char* scheme_name(Scheme scheme);

struct FleetConfig {
  std::size_t dcs{4};
  std::size_t endpoints_per_dc{64};
  Scheme scheme{Scheme::kSr};

  // ---- inter-DC trunks (full mesh, ECMP) ----
  double trunk_bandwidth_bps{100e9};  // per path
  std::size_t trunk_paths{4};
  double path_skew_s{2e-6};
  double distance_km{1500.0};
  double p_drop{1e-4};
  /// Egress queue per trunk path in bytes; 0 = unbounded.
  std::size_t trunk_queue_bytes{0};

  // ---- NIC injection resource model ----
  verbs::NicCaps caps{};

  // ---- traffic ----
  std::vector<TenantTraffic> tenants{};
  std::size_t messages_per_connection{16};

  // ---- collective tenant (ring over one endpoint per DC) ----
  bool collective{true};
  std::size_t collective_segment_bytes{64 * 1024};
  std::size_t collective_iterations{2};

  std::uint64_t seed{1};
  /// Virtual-time safety net: the run is cut off here if the fleet has not
  /// quiesced (e.g. RC retry storms); incomplete messages are accounted.
  double horizon_s{60.0};

  /// The standard fleet: 4 DCs x 64 endpoints, a 70/30 small-op/bulk
  /// tenant mix, ring collective, NIC model enabled.
  static FleetConfig defaults();
};

struct TenantResult {
  std::string name;
  std::uint64_t connections{0};
  std::uint64_t posted{0};
  std::uint64_t completed{0};
  /// Receiver gave up with an error (EC global-timeout abort): the message
  /// is accounted but never counted as delivered.
  std::uint64_t failed{0};
  std::uint64_t useful_bytes{0};
  double goodput_gbps{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  double p999_ms{0.0};
};

struct FleetResult {
  std::vector<TenantResult> tenants;

  std::uint64_t endpoints{0};
  std::uint64_t connections{0};
  std::uint64_t qps_created{0};
  std::uint64_t messages_posted{0};
  std::uint64_t messages_completed{0};
  std::uint64_t messages_failed{0};
  std::uint64_t useful_bytes{0};
  /// Peak simultaneously outstanding messages (in-flight + queued).
  std::uint64_t peak_concurrent{0};
  std::uint64_t retransmissions{0};
  std::uint64_t trunk_drops{0};
  std::uint64_t unknown_qp_packets{0};
  std::uint64_t unroutable_packets{0};

  double makespan_s{0.0};
  double fleet_goodput_gbps{0.0};
  /// Jain index over per-sender-endpoint completed useful bytes.
  double jain_fairness{0.0};
  double p50_ms{0.0};
  double p99_ms{0.0};
  double p999_ms{0.0};

  /// True when the event queue drained before the horizon.
  bool quiesced{false};
  /// Thread-local payload-pool live slots after the run (0 when every
  /// in-flight packet was released — the sdrcheck fleet oracle).
  std::uint64_t payload_live_slots{0};

  /// Order-sensitive digest over (connection, seq, completion-ns, bytes)
  /// in completion order — integer-only, so bit-identical across runs,
  /// threads and --jobs splits.
  std::uint64_t digest{0};
};

FleetResult run_fleet(const FleetConfig& config);

}  // namespace sdr::fleet
