// Scenario execution arms for the sdrcheck harness.
//
// Each arm runs one Scenario end to end through a different reliability
// stack on a fresh Simulator + NIC pair + DuplexLink:
//
//   * SR arm — sim -> verbs -> SDR core -> SrSender/SrReceiver (RTO or
//     NACK flavor per the scenario, adaptive RTO and mid-flight RTO
//     perturbations included),
//   * EC arm — same data path under EcSender/EcReceiver (Reed-Solomon with
//     SR fallback; message lengths padded to whole submessages),
//   * RC arm — the hardware-reliability baseline: raw RC verbs QPs
//     (go-back-N or selective repeat) carrying the same bytes.
//
// Every arm checks its own per-run oracles (completion by deadline,
// byte-exact delivery, pool/event leaks at teardown, trace monotonicity,
// scripted-drop consumption; the RC arm additionally checks CQE/ePSN
// ordering) and returns the delivered bytes so check.cpp can run the
// differential SR == EC == RC comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"

namespace sdr::check {

struct RunnerOptions {
  /// Arm a private per-arm tracer; the trace feeds the monotonicity oracle
  /// and the failing-timeline rendering.
  bool capture_trace{true};
  std::size_t trace_capacity{1u << 13};
  /// How many trailing trace events to render into ArmResult::timeline on
  /// failure.
  std::size_t timeline_tail{40};
  /// Arm a private per-arm flight recorder; its JSON dump lands in
  /// ArmResult::flight_json (postmortems next to the seed repro line).
  bool capture_flight{false};
  std::size_t flight_capacity{128};
  /// Arm a private per-arm span recorder; the arm's Chrome trace events
  /// land in ArmResult::chrome_events with process ids offset by
  /// span_pid_base (so several arms merge into one Perfetto document).
  bool capture_spans{false};
  std::size_t span_capacity{1u << 14};
  int span_pid_base{0};
};

struct ArmResult {
  std::string name;
  /// Oracle violations; empty means the arm passed.
  std::vector<std::string> failures;
  /// Delivered bytes, messages concatenated in post order (EC padding
  /// stripped) — input to the cross-arm differential oracle.
  std::vector<std::uint8_t> received;
  /// Per-message completion times (sim seconds), -1 when never completed.
  std::vector<double> done_at_s;
  std::uint64_t retransmissions{0};
  /// Rendered tail of the packet-lifecycle trace; filled on failure only.
  std::string timeline;
  /// Flight-recorder JSON dump of this arm (capture_flight runs only).
  std::string flight_json;
  /// Chrome trace events of this arm (capture_spans runs only) — bare
  /// comma-separated objects, combine via SpanRecorder::wrap_chrome_events.
  std::string chrome_events;

  bool ok() const { return failures.empty(); }
};

ArmResult run_sr_arm(const Scenario& s, const RunnerOptions& opts);
ArmResult run_ec_arm(const Scenario& s, const RunnerOptions& opts);
ArmResult run_rc_arm(const Scenario& s, const RunnerOptions& opts);

/// The deterministic payload pattern for message `index` of scenario-seed
/// `seed` (shared by all arms so differential comparison is meaningful).
std::vector<std::uint8_t> message_pattern(std::uint64_t seed,
                                          std::size_t index,
                                          std::size_t bytes);

}  // namespace sdr::check
