#include "check/runner.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/payload_pool.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"
#include "ec/reed_solomon.hpp"
#include "reliability/ec_protocol.hpp"
#include "reliability/sr_protocol.hpp"
#include "sdr/sdr.hpp"
#include "sim/channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/nic.hpp"

namespace sdr::check {

namespace {

// Per-arm RNG stream salts: every arm gets its own channel randomness so a
// differential mismatch cannot hide behind identical drop draws.
constexpr std::uint64_t kSrArmSalt = 0x51;
constexpr std::uint64_t kEcArmSalt = 0xEC;
constexpr std::uint64_t kRcArmSalt = 0x2C;

// RNG stream salt for the far-horizon timer probe (same draws in every arm
// so the perturbation is identical across the differential comparison).
constexpr std::uint64_t kFarTimerStream = 0xFA57;

// Event budget for the post-completion quiescence drain: far above any
// residual timer count a healthy run leaves behind (final-ACK repeats, EC
// global timeouts), far below anything that would mask a timer livelock.
constexpr std::uint64_t kQuiesceBudget = 500000;

double chunk_injection(const Scenario& s) {
  return injection_time_s(s.chunk_bytes(), s.bandwidth_bps);
}

/// Static SR/EC-fallback RTO. Floored by chunk injection backlog so a
/// low-bandwidth scenario doesn't degenerate into a spurious
/// retransmission storm (mirrors ReliableChannel::derive_timeouts).
double base_rto(const Scenario& s) {
  return s.rto_rtt_multiple * std::max(s.rtt_s(), 8.0 * chunk_injection(s));
}

double ack_interval(const Scenario& s) {
  return std::max(s.rtt_s() / 8.0, 4.0 * chunk_injection(s));
}

double mean_drop_probability(const Scenario& s) {
  switch (s.drop) {
    case DropKind::kClean:
      return 0.0;
    case DropKind::kIid:
      return s.iid_p;
    case DropKind::kGilbertElliott: {
      const double pi_bad =
          s.ge_p_good_to_bad / (s.ge_p_good_to_bad + s.ge_p_bad_to_good);
      return pi_bad * s.ge_loss_bad + (1.0 - pi_bad) * s.ge_loss_good;
    }
    case DropKind::kScripted: {
      const std::size_t total = s.total_data_packets();
      return total == 0 ? 0.0
                        : static_cast<double>(s.scripted_drops.size()) /
                              static_cast<double>(total);
    }
  }
  return 0.0;
}

std::unique_ptr<sim::DropModel> make_forward_drop(
    const Scenario& s, sim::ScriptedDrop** scripted_out) {
  *scripted_out = nullptr;
  switch (s.drop) {
    case DropKind::kClean:
      return std::make_unique<sim::IidDrop>(0.0);
    case DropKind::kIid:
      return std::make_unique<sim::IidDrop>(s.iid_p);
    case DropKind::kGilbertElliott:
      return std::make_unique<sim::GilbertElliott>(
          s.ge_p_good_to_bad, s.ge_p_bad_to_good, s.ge_loss_good,
          s.ge_loss_bad);
    case DropKind::kScripted: {
      auto drop = std::make_unique<sim::ScriptedDrop>(s.scripted_drops);
      *scripted_out = drop.get();
      return drop;
    }
  }
  return std::make_unique<sim::IidDrop>(0.0);
}

/// Fresh two-NIC fabric for one arm: forward channel carries the
/// scenario's loss/reorder/duplication, backward (control/ACK) path is
/// lossless (see Scenario docs on the CTS liveness assumption).
struct Fabric {
  sim::Simulator sim;
  std::unique_ptr<verbs::Nic> a;
  std::unique_ptr<verbs::Nic> b;
  sim::ScriptedDrop* scripted{nullptr};
  std::unique_ptr<sim::DuplexLink> link;

  Fabric(const Scenario& s, std::uint64_t arm_salt) {
    sim::Channel::Config cfg;
    cfg.bandwidth_bps = s.bandwidth_bps;
    cfg.distance_km = s.distance_km;
    cfg.reorder_probability = s.reorder_probability;
    cfg.reorder_extra_delay_s = s.reorder_extra_delay_s;
    cfg.duplicate_probability = s.duplicate_probability;
    cfg.seed = derive_seed(s.seed, arm_salt);
    a = std::make_unique<verbs::Nic>(sim, 1);
    b = std::make_unique<verbs::Nic>(sim, 2);
    link = std::make_unique<sim::DuplexLink>(
        sim, cfg, make_forward_drop(s, &scripted),
        std::make_unique<sim::IidDrop>(0.0));
    link->forward().set_receiver(
        [nic = b.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
    link->backward().set_receiver(
        [nic = a.get()](sim::Packet&& p) { nic->deliver(std::move(p)); });
    a->add_route(2, &link->forward());
    b->add_route(1, &link->backward());
    // Draw trial-level drop state (Gilbert-Elliott starts from its
    // stationary distribution, like the benches do).
    link->forward().new_trial();
  }
};

core::QpAttr qp_attr_for(const Scenario& s, bool ec) {
  core::QpAttr attr;
  attr.mtu = s.mtu;
  attr.chunk_size = s.chunk_bytes();
  std::size_t max_bytes = attr.chunk_size;
  for (std::size_t i = 0; i < s.messages.size(); ++i) {
    // EC posts one SDR message per submessage (k data chunks) plus one per
    // parity block (m chunks); SR posts the whole message as one.
    const std::size_t bytes =
        ec ? s.ec_k * attr.chunk_size : s.message_bytes(i);
    max_bytes = std::max(max_bytes, bytes);
  }
  attr.max_msg_size = max_bytes;
  std::size_t inflight = 8;
  if (ec) {
    for (std::size_t i = 0; i < s.messages.size(); ++i) {
      inflight += 2 * (s.ec_padded_chunks(i) / s.ec_k);
    }
  } else {
    inflight += s.messages.size();
  }
  attr.max_inflight = std::min<std::size_t>(inflight, 1024);
  return attr;
}

reliability::LinkProfile profile_for(const Scenario& s) {
  reliability::LinkProfile p;
  p.bandwidth_bps = s.bandwidth_bps;
  p.rtt_s = s.rtt_s();
  p.p_drop_packet = mean_drop_probability(s);
  p.mtu = s.mtu;
  p.chunk_bytes = s.chunk_bytes();
  return p;
}

std::string render_timeline(const std::vector<telemetry::TraceEvent>& events,
                            std::size_t tail) {
  std::string out;
  const std::size_t begin = events.size() > tail ? events.size() - tail : 0;
  if (begin > 0) {
    out += "  ... (" + std::to_string(begin) + " earlier events)\n";
  }
  char buf[160];
  for (std::size_t i = begin; i < events.size(); ++i) {
    const telemetry::TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf), "  t=%.9f %-14s qp=%u", e.t.seconds(),
                  telemetry::to_string(e.type), e.qp);
    out += buf;
    if (e.msg != telemetry::kNoMsg) out += " msg=" + std::to_string(e.msg);
    if (e.chunk != telemetry::kNoChunk) {
      out += " chunk=" + std::to_string(e.chunk);
    }
    if (e.bytes != 0) out += " bytes=" + std::to_string(e.bytes);
    out += "\n";
  }
  return out;
}

/// Shared post-run oracles on the trace: timestamps must never regress
/// (ring order is emission order, which follows the simulator clock).
void check_trace_monotone(const std::vector<telemetry::TraceEvent>& events,
                          ArmResult& r) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].t < events[i - 1].t) {
      r.failures.push_back(
          "trace timestamps regressed at event " + std::to_string(i) +
          ": t=" + std::to_string(events[i].t.seconds()) + " after t=" +
          std::to_string(events[i - 1].t.seconds()));
      return;
    }
  }
}

void check_scripted_consumed(const Fabric& fabric, ArmResult& r) {
  if (fabric.scripted == nullptr) return;
  const std::vector<std::uint64_t> unused = fabric.scripted->unused_indices();
  if (unused.empty()) return;
  std::string msg = "scripted drop indices never reached by any send:";
  for (const std::uint64_t idx : unused) msg += " " + std::to_string(idx);
  r.failures.push_back(std::move(msg));
}

void quiesce_and_check(sim::Simulator& sim, ArmResult& r) {
  std::uint64_t budget = kQuiesceBudget;
  while (sim.pending() != 0 && budget != 0) {
    sim.step();
    --budget;
  }
  if (sim.pending() != 0) {
    r.failures.push_back(
        "event queue did not quiesce after completion (" +
        std::to_string(sim.pending()) +
        " events still pending — timer leak or livelock)");
  }
}

/// Far-horizon timer probe (Scenario::far_timers): schedules timers past
/// the wheel's 2^36 ns horizon so overflow-heap entries coexist with the
/// protocol's event stream for the whole run, cancels every other one to
/// exercise lazy overflow cancellation, then — after the protocol has
/// drained — fires the survivors and asserts they ran in timestamp order
/// (FIFO among equal timestamps) at exactly their deadlines.
struct FarTimerProbe {
  sim::Simulator* sim{nullptr};
  std::vector<std::int64_t> expected;  // survivor deadlines, schedule order
  std::vector<std::int64_t> fired;     // (deadline) appended at fire time
  std::vector<std::string> errors;
  std::int64_t last_ns{0};

  void arm(sim::Simulator& simulator, const Scenario& s) {
    if (!s.far_timers) return;
    sim = &simulator;
    Rng rng(derive_seed(s.seed, kFarTimerStream));
    const auto horizon = static_cast<std::int64_t>(
        sim::Simulator::kWheelHorizonNs);
    for (std::size_t i = 0; i < s.far_timer_count; ++i) {
      const std::int64_t when =
          horizon + static_cast<std::int64_t>(rng.next_below(
                        3 * sim::Simulator::kWheelHorizonNs));
      const sim::EventId id =
          sim->schedule_at(SimTime{when}, [this, when] {
            if (sim->now().ns != when) {
              errors.push_back("far timer fired at t=" +
                               std::to_string(sim->now().ns) +
                               "ns, scheduled for " + std::to_string(when) +
                               "ns");
            }
            fired.push_back(when);
          });
      if (i % 2 == 1) {
        // Cancel every other timer: overflow entries are invalidated
        // lazily, so the heap keeps a stale node until it surfaces.
        if (!sim->cancel(id)) {
          errors.push_back("cancelling far timer " + std::to_string(i) +
                           " failed");
        }
      } else {
        expected.push_back(when);
        last_ns = std::max(last_ns, when);
      }
    }
  }

  /// Run the simulator to the last survivor and check order. Call after
  /// the protocol's own completion checks, before the quiesce oracle.
  void drain_and_check(ArmResult& r) {
    if (sim == nullptr) return;
    sim->run_until(SimTime{last_ns});
    for (std::string& e : errors) r.failures.push_back(std::move(e));
    std::vector<std::int64_t> want = expected;
    std::stable_sort(want.begin(), want.end());
    if (fired != want) {
      r.failures.push_back(
          "far-horizon timers fired out of order: " +
          std::to_string(fired.size()) + " fired of " +
          std::to_string(want.size()) + " expected");
    }
  }
};

/// First differing offset, or SIZE_MAX when equal.
std::size_t first_mismatch(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return static_cast<std::size_t>(-1);
}

// Shared state the scheduled post events and completion callbacks touch.
// Heap-free closures: sim events capture only {pointer, index}.
struct ProtoRun {
  sim::Simulator* sim{nullptr};
  reliability::SrSender* sr_snd{nullptr};
  reliability::SrReceiver* sr_rcv{nullptr};
  reliability::EcSender* ec_snd{nullptr};
  reliability::EcReceiver* ec_rcv{nullptr};
  std::vector<std::vector<std::uint8_t>> src;
  std::vector<std::vector<std::uint8_t>> dst;
  std::vector<const verbs::MemoryRegion*> mr;
  std::vector<double> recv_done;
  std::vector<double> send_done;
  std::vector<std::string> errors;

  void post(std::size_t i) {
    const std::size_t len = src[i].size();
    auto on_recv = [this, i](const Status& st) {
      if (st.is_ok()) {
        recv_done[i] = sim->now().seconds();
      } else {
        errors.push_back("message " + std::to_string(i) +
                         " receive failed: " + st.message());
      }
    };
    auto on_send = [this, i](const Status& st) {
      if (st.is_ok()) {
        send_done[i] = sim->now().seconds();
      } else {
        errors.push_back("message " + std::to_string(i) +
                         " send failed: " + st.message());
      }
    };
    // Receiver first: SDR matches the i-th posted receive to the i-th
    // posted send, and both ends post in the same event.
    Status rs = ec_rcv ? ec_rcv->expect(dst[i].data(), len, mr[i],
                                        std::move(on_recv))
                       : sr_rcv->expect(dst[i].data(), len, mr[i],
                                        std::move(on_recv));
    if (!rs) {
      errors.push_back("message " + std::to_string(i) +
                       " expect() rejected: " + rs.message());
      return;
    }
    Status ss = ec_snd
                    ? ec_snd->write(src[i].data(), len, std::move(on_send))
                    : sr_snd->write(src[i].data(), len, std::move(on_send));
    if (!ss) {
      errors.push_back("message " + std::to_string(i) +
                       " write() rejected: " + ss.message());
    }
  }
};

ArmResult run_protocol_arm(const Scenario& s, const RunnerOptions& opts,
                           bool ec) {
  ArmResult r;
  r.name = ec ? "ec"
              : (s.sr_flavor == SrFlavor::kNack ? "sr_nack" : "sr_rto");
  const std::size_t pool_before = common::payload_pool().live_slots();
  telemetry::Tracer trace;
  if (opts.capture_trace) trace.arm(opts.trace_capacity);
  telemetry::FlightRecorder flight;
  if (opts.capture_flight) flight.arm(opts.flight_capacity);
  telemetry::SpanRecorder span_rec;
  if (opts.capture_spans) {
    span_rec.arm(opts.span_capacity);
    span_rec.track(r.name);
  }
  telemetry::ScopedTelemetry scoped(
      nullptr, opts.capture_trace ? &trace : nullptr,
      opts.capture_spans ? &span_rec : nullptr,
      opts.capture_flight ? &flight : nullptr);
  {
    Fabric fabric(s, ec ? kEcArmSalt : kSrArmSalt);
    core::Context ctx_a(*fabric.a, core::DevAttr{});
    core::Context ctx_b(*fabric.b, core::DevAttr{});
    const core::QpAttr attr = qp_attr_for(s, ec);
    core::Qp* qa = ctx_a.create_qp(attr);
    core::Qp* qb = ctx_b.create_qp(attr);
    if (qa == nullptr || qb == nullptr) {
      r.failures.push_back("QP creation failed (attr invalid?)");
      return r;
    }
    qa->connect(qb->info());
    qb->connect(qa->info());
    reliability::ControlLink ca(*fabric.a), cb(*fabric.b);
    ca.connect(2, cb.qp_number());
    cb.connect(1, ca.qp_number());

    const reliability::LinkProfile profile = profile_for(s);
    const double rto = base_rto(s);
    const double ack_iv = ack_interval(s);
    std::optional<ec::ReedSolomon> codec;
    std::optional<reliability::EcSender> ec_snd;
    std::optional<reliability::EcReceiver> ec_rcv;
    std::optional<reliability::SrSender> sr_snd;
    std::optional<reliability::SrReceiver> sr_rcv;
    if (ec) {
      codec.emplace(s.ec_k, s.ec_m);
      reliability::EcProtoConfig cfg;
      cfg.k = s.ec_k;
      cfg.m = s.ec_m;
      cfg.fallback_rto_s = rto;
      cfg.fallback_ack_interval_s = ack_iv;
      ec_snd.emplace(fabric.sim, *qa, ca, profile, *codec, cfg);
      ec_rcv.emplace(fabric.sim, *qb, cb, profile, *codec, cfg);
    } else {
      reliability::SrProtoConfig cfg;
      cfg.rto_s = rto;
      cfg.ack_interval_s = ack_iv;
      cfg.nack_enabled = s.sr_flavor == SrFlavor::kNack;
      cfg.nack_holdoff_s = s.rtt_s();
      cfg.adaptive_rto = s.adaptive_rto;
      sr_snd.emplace(fabric.sim, *qa, ca, profile, cfg);
      sr_rcv.emplace(fabric.sim, *qb, cb, profile, cfg);
    }

    const std::size_t n = s.messages.size();
    ProtoRun run;
    run.sim = &fabric.sim;
    run.sr_snd = sr_snd ? &*sr_snd : nullptr;
    run.sr_rcv = sr_rcv ? &*sr_rcv : nullptr;
    run.ec_snd = ec_snd ? &*ec_snd : nullptr;
    run.ec_rcv = ec_rcv ? &*ec_rcv : nullptr;
    run.recv_done.assign(n, -1.0);
    run.send_done.assign(n, -1.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bytes =
          ec ? s.ec_padded_chunks(i) * s.chunk_bytes() : s.message_bytes(i);
      run.src.push_back(message_pattern(s.seed, i, bytes));
      run.dst.emplace_back(bytes, 0);
      run.mr.push_back(ctx_b.mr_reg(run.dst[i].data(), bytes));
    }
    for (std::size_t i = 0; i < n; ++i) {
      fabric.sim.schedule(SimTime::from_seconds(s.messages[i].post_delay_s),
                          [p = &run, i] { p->post(i); });
    }
    FarTimerProbe far_probe;
    far_probe.arm(fabric.sim, s);
    if (!ec && s.perturb_rto && sr_snd) {
      fabric.sim.schedule(
          SimTime::from_seconds(s.perturb_at_s),
          [p = &*sr_snd, nr = rto * s.perturb_rto_multiple] {
            p->set_static_rto(nr);
          });
    }

    fabric.sim.run_until(SimTime::from_seconds(s.horizon_s()));

    r.done_at_s = run.recv_done;
    for (std::string& e : run.errors) r.failures.push_back(std::move(e));
    bool all_done = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (run.recv_done[i] < 0.0 || run.send_done[i] < 0.0) {
        all_done = false;
        r.failures.push_back(
            "message " + std::to_string(i) +
            " did not complete by the deadline (recv_done=" +
            (run.recv_done[i] < 0 ? "never"
                                  : std::to_string(run.recv_done[i])) +
            ", send_done=" +
            (run.send_done[i] < 0 ? "never"
                                  : std::to_string(run.send_done[i])) +
            ", horizon=" + std::to_string(s.horizon_s()) + "s)");
      }
    }
    far_probe.drain_and_check(r);
    if (all_done && r.failures.empty()) {
      quiesce_and_check(fabric.sim, r);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t off =
          first_mismatch(run.dst[i].data(), run.src[i].data(),
                         run.src[i].size());
      if (off != static_cast<std::size_t>(-1)) {
        r.failures.push_back("message " + std::to_string(i) +
                             " bytes differ at offset " + std::to_string(off) +
                             " (got " + std::to_string(run.dst[i][off]) +
                             ", want " + std::to_string(run.src[i][off]) +
                             ")");
      }
    }
    check_scripted_consumed(fabric, r);
    r.retransmissions = ec ? ec_snd->stats().fallback_retransmissions
                           : sr_snd->stats().retransmissions;
    for (std::size_t i = 0; i < n; ++i) {
      r.received.insert(r.received.end(), run.dst[i].begin(),
                        run.dst[i].begin() +
                            static_cast<std::ptrdiff_t>(s.message_bytes(i)));
    }
  }
  const std::size_t pool_after = common::payload_pool().live_slots();
  if (pool_after != pool_before) {
    r.failures.push_back("payload-pool slot leak at teardown: " +
                         std::to_string(pool_before) + " live slots before, " +
                         std::to_string(pool_after) + " after");
  }
  if (opts.capture_trace) {
    const std::vector<telemetry::TraceEvent> events = trace.collect();
    check_trace_monotone(events, r);
    if (!r.ok()) r.timeline = render_timeline(events, opts.timeline_tail);
  }
  if (opts.capture_flight) r.flight_json = flight.to_json();
  if (opts.capture_spans) {
    span_rec.append_chrome_events(r.chrome_events, opts.span_pid_base);
  }
  return r;
}

}  // namespace

std::vector<std::uint8_t> message_pattern(std::uint64_t seed,
                                          std::size_t index,
                                          std::size_t bytes) {
  std::vector<std::uint8_t> v(bytes);
  const std::uint64_t mix = splitmix64_mix(seed ^ (0xA5A5A5A5ULL + index));
  for (std::size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<std::uint8_t>(mix + i * 131 + (i >> 8) * 7);
  }
  return v;
}

ArmResult run_sr_arm(const Scenario& s, const RunnerOptions& opts) {
  return run_protocol_arm(s, opts, /*ec=*/false);
}

ArmResult run_ec_arm(const Scenario& s, const RunnerOptions& opts) {
  return run_protocol_arm(s, opts, /*ec=*/true);
}

ArmResult run_rc_arm(const Scenario& s, const RunnerOptions& opts) {
  ArmResult r;
  r.name = s.rc_go_back_n ? "rc_gbn" : "rc_sr";
  const std::size_t pool_before = common::payload_pool().live_slots();
  telemetry::Tracer trace;
  if (opts.capture_trace) trace.arm(opts.trace_capacity);
  telemetry::FlightRecorder flight;
  if (opts.capture_flight) flight.arm(opts.flight_capacity);
  telemetry::SpanRecorder span_rec;
  if (opts.capture_spans) {
    span_rec.arm(opts.span_capacity);
    span_rec.track(r.name);
  }
  telemetry::ScopedTelemetry scoped(
      nullptr, opts.capture_trace ? &trace : nullptr,
      opts.capture_spans ? &span_rec : nullptr,
      opts.capture_flight ? &flight : nullptr);
  {
    Fabric fabric(s, kRcArmSalt);
    verbs::CompletionQueue tx_cq(1 << 12), rx_cq(1 << 12);
    verbs::QpConfig qcfg;
    qcfg.type = verbs::QpType::kRC;
    qcfg.mtu = s.mtu;
    qcfg.rc_mode = s.rc_go_back_n ? verbs::RcMode::kGoBackN
                                  : verbs::RcMode::kSelectiveRepeat;
    std::size_t total_bytes = 0;
    for (std::size_t i = 0; i < s.messages.size(); ++i) {
      total_bytes += s.message_bytes(i);
    }
    // Timeout above the full first-pass injection backlog: a timeout that
    // fires mid-injection would trigger spurious go-back-N storms; loss
    // recovery inside the stream is NAK-driven and does not wait for it.
    qcfg.rc_ack_timeout_s =
        std::max(2.0 * s.rtt_s(),
                 injection_time_s(total_bytes, s.bandwidth_bps));
    qcfg.rc_retry_limit = 64;
    verbs::QpConfig tx_cfg = qcfg;
    tx_cfg.send_cq = &tx_cq;
    verbs::QpConfig rx_cfg = qcfg;
    rx_cfg.recv_cq = &rx_cq;
    verbs::Qp* tx = fabric.a->create_qp(tx_cfg);
    verbs::Qp* rx = fabric.b->create_qp(rx_cfg);
    tx->connect(2, rx->num());
    rx->connect(1, tx->num());

    const std::size_t n = s.messages.size();
    std::vector<std::vector<std::uint8_t>> src;
    std::vector<std::size_t> offset(n, 0);
    std::size_t off = 0;
    for (std::size_t i = 0; i < n; ++i) {
      offset[i] = off;
      src.push_back(message_pattern(s.seed, i, s.message_bytes(i)));
      off += s.message_bytes(i);
    }
    std::vector<std::uint8_t> dst(total_bytes, 0);
    const verbs::MemoryRegion* mr =
        fabric.b->pd().register_mr(dst.data(), dst.size());

    struct RcRun {
      verbs::Qp* tx;
      std::vector<std::vector<std::uint8_t>>* src;
      std::vector<std::size_t>* offset;
      verbs::MemoryKey rkey;
      std::vector<std::string> errors;
    } run{tx, &src, &offset, mr->rkey(), {}};
    for (std::size_t i = 0; i < n; ++i) {
      fabric.sim.schedule(SimTime::from_seconds(s.messages[i].post_delay_s),
                          [p = &run, i] {
                            verbs::WriteWr wr;
                            wr.wr_id = i;
                            wr.local_addr = (*p->src)[i].data();
                            wr.length = (*p->src)[i].size();
                            wr.rkey = p->rkey;
                            wr.remote_offset = (*p->offset)[i];
                            wr.with_imm = true;
                            wr.imm = static_cast<std::uint32_t>(i);
                            if (Status st = p->tx->post_write(wr); !st) {
                              p->errors.push_back(
                                  "post_write rejected: " + st.message());
                            }
                          });
    }
    FarTimerProbe far_probe;
    far_probe.arm(fabric.sim, s);

    fabric.sim.run_until(SimTime::from_seconds(s.horizon_s()));

    for (std::string& e : run.errors) r.failures.push_back(std::move(e));
    // CQE ordering oracle: RC completes strictly in post (== PSN) order on
    // both sides; the receive side additionally proves ePSN monotonicity
    // (a reordered or replayed message would surface out of order here).
    // Posting order is by post_delay (index breaks ties — the simulator's
    // event queue is FIFO at equal times), not by message index.
    std::vector<std::size_t> post_order(n);
    for (std::size_t i = 0; i < n; ++i) post_order[i] = i;
    std::stable_sort(post_order.begin(), post_order.end(),
                     [&s](std::size_t a, std::size_t b) {
                       return s.messages[a].post_delay_s <
                              s.messages[b].post_delay_s;
                     });
    std::size_t tx_seen = 0;
    while (std::optional<verbs::Cqe> cqe = tx_cq.poll_one()) {
      if (cqe->status != verbs::WcStatus::kSuccess) {
        r.failures.push_back("tx CQE for wr " + std::to_string(cqe->wr_id) +
                             " failed with status " +
                             std::to_string(static_cast<int>(cqe->status)));
        ++tx_seen;
        continue;
      }
      if (tx_seen < n && cqe->wr_id != post_order[tx_seen]) {
        r.failures.push_back("tx CQE order violated: got wr " +
                             std::to_string(cqe->wr_id) + ", expected wr " +
                             std::to_string(post_order[tx_seen]) +
                             " (post order)");
      }
      ++tx_seen;
    }
    if (tx_seen != n) {
      r.failures.push_back("only " + std::to_string(tx_seen) + " of " +
                           std::to_string(n) +
                           " messages completed on the sender by the deadline");
    }
    std::size_t rx_seen = 0;
    r.done_at_s.assign(n, -1.0);
    while (std::optional<verbs::Cqe> cqe = rx_cq.poll_one()) {
      if (rx_seen < n && cqe->imm != post_order[rx_seen]) {
        r.failures.push_back("rx CQE order violated (ePSN): got imm " +
                             std::to_string(cqe->imm) + ", expected imm " +
                             std::to_string(post_order[rx_seen]) +
                             " (post order)");
      }
      ++rx_seen;
    }
    if (rx_seen != n) {
      r.failures.push_back("only " + std::to_string(rx_seen) + " of " +
                           std::to_string(n) +
                           " messages completed on the receiver by the "
                           "deadline");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t miss = first_mismatch(
          dst.data() + offset[i], src[i].data(), src[i].size());
      if (miss != static_cast<std::size_t>(-1)) {
        r.failures.push_back("message " + std::to_string(i) +
                             " bytes differ at offset " +
                             std::to_string(miss));
      }
    }
    far_probe.drain_and_check(r);
    if (r.failures.empty()) {
      quiesce_and_check(fabric.sim, r);
    }
    check_scripted_consumed(fabric, r);
    r.retransmissions = tx->stats().rc_retransmissions;
    r.received.insert(r.received.end(), dst.begin(), dst.end());
  }
  const std::size_t pool_after = common::payload_pool().live_slots();
  if (pool_after != pool_before) {
    r.failures.push_back("payload-pool slot leak at teardown: " +
                         std::to_string(pool_before) + " live slots before, " +
                         std::to_string(pool_after) + " after");
  }
  if (opts.capture_trace) {
    const std::vector<telemetry::TraceEvent> events = trace.collect();
    check_trace_monotone(events, r);
    if (!r.ok()) r.timeline = render_timeline(events, opts.timeline_tail);
  }
  if (opts.capture_flight) r.flight_json = flight.to_json();
  if (opts.capture_spans) {
    span_rec.append_chrome_events(r.chrome_events, opts.span_pid_base);
  }
  return r;
}

}  // namespace sdr::check
