// Seed -> scenario mapping for the sdrcheck conformance harness.
//
// A Scenario is a complete, self-describing end-to-end experiment: link
// geometry, loss process, SDR packet geometry, a batch of concurrent
// messages, and the reliability knobs under test. Two invariants make the
// harness reproducible anywhere:
//
//   1. generate_scenario(seed) is a pure function of the seed. All
//      randomness flows through common::Rng (xoshiro256**, pinned by
//      common_test golden vectors), never through std:: distributions whose
//      implementations vary across standard libraries — a CI seed replays
//      bit-for-bit on any machine.
//   2. shrink_scenario(full, level) is a pure function of (scenario,
//      level): the shrink ladder applies `level` deterministic reduction
//      steps, so any failure the shrinker minimizes is reproducible from
//      the single command `sdrcheck --seed=S --shrink-level=K`.
//
// See DESIGN.md §"Testing strategy" for the full seed->scenario catalogue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sdr::check {

/// Forward-path loss process. The control/backward path is kept lossless:
/// CTS datagrams have no retransmission (a documented liveness assumption —
/// the paper's control plane rides a reliable transport), and the harness
/// must never deadlock by design.
enum class DropKind : std::uint8_t { kClean, kIid, kGilbertElliott, kScripted };

/// Which Selective Repeat flavor the SR arm runs (paper §4.1.1).
enum class SrFlavor : std::uint8_t { kRto, kNack };

const char* drop_kind_name(DropKind kind);

struct MessageSpec {
  std::size_t chunks{1};    // message length in SDR chunks
  double post_delay_s{0.0}; // when both endpoints post it (staggered starts)
};

struct Scenario {
  std::uint64_t seed{0};
  int shrink_level{0};

  // Link geometry (symmetric duplex).
  double bandwidth_bps{0.0};
  double distance_km{0.0};
  double reorder_probability{0.0};
  double reorder_extra_delay_s{0.0};
  double duplicate_probability{0.0};

  // Forward-path loss.
  DropKind drop{DropKind::kClean};
  double iid_p{0.0};
  double ge_p_good_to_bad{0.0};
  double ge_p_bad_to_good{1.0};
  double ge_loss_good{0.0};
  double ge_loss_bad{0.0};
  /// Scripted send indices, always < total_data_packets() so every index is
  /// consumed by the first transmission pass of any arm (the unused-index
  /// oracle relies on this bound).
  std::vector<std::uint64_t> scripted_drops;

  // SDR packet geometry: chunk = mtu * packets_per_chunk.
  std::size_t mtu{1024};
  std::size_t packets_per_chunk{1};

  // Traffic: 1-8 concurrent messages.
  std::vector<MessageSpec> messages;

  // Reliability knobs.
  SrFlavor sr_flavor{SrFlavor::kRto};
  bool adaptive_rto{false};
  double rto_rtt_multiple{3.0};
  std::size_t ec_k{8};
  std::size_t ec_m{4};
  bool rc_go_back_n{true};

  // Mid-flight RTO perturbation: at perturb_at_s the SR sender's static RTO
  // is rescaled by perturb_rto_multiple (no-op when adaptive_rto).
  bool perturb_rto{false};
  double perturb_at_s{0.0};
  double perturb_rto_multiple{1.0};

  // Fleet mode (appended generator fields): a seed subset additionally
  // runs a small two-DC fleet (src/fleet/) at this scenario's geometry and
  // loss point and checks the fleet-level oracles — every posted message
  // completes or is accounted as failed, the event queue and payload pool
  // quiesce at the horizon, and per-tenant counters conserve the fleet
  // totals. Shrink rules for these fields are appended to the ladder.
  bool fleet_mode{false};
  std::size_t fleet_endpoints_per_dc{0};
  std::size_t fleet_messages_per_connection{0};
  std::size_t fleet_scheme{0};  // 0 = SR, 1 = EC, 2 = RC
  bool fleet_collective{false};

  // Far-horizon timer perturbation (timer-wheel overflow exercise): the
  // runner schedules this many timers past the wheel's 2^36 ns (~68.7 s)
  // horizon alongside the protocol run, cancels every other one, and
  // asserts the survivors fire in timestamp order at their exact deadlines
  // after the protocol drains. Overflow-heap entries thereby coexist with
  // (and must never disturb) the protocol's event stream.
  bool far_timers{false};
  std::size_t far_timer_count{0};

  std::size_t chunk_bytes() const { return mtu * packets_per_chunk; }
  double rtt_s() const;
  /// Total first-transmission data packets across all messages (parity and
  /// retransmissions excluded).
  std::size_t total_data_packets() const;
  std::size_t total_chunks() const;
  /// Message length in bytes (exact for SR/RC; the EC arm pads to whole
  /// submessages of ec_k chunks).
  std::size_t message_bytes(std::size_t i) const;
  std::size_t ec_padded_chunks(std::size_t i) const;
  /// Deadline by which every message must have completed: generous in RTTs
  /// and injection times so only a genuinely wedged protocol misses it.
  double horizon_s() const;
  /// One-line human summary ("bw=100G dist=250km ge(...) 3 msgs ...").
  std::string describe() const;
};

/// Deterministic seed->scenario mapping (pure; see file header).
Scenario generate_scenario(std::uint64_t seed);

/// Apply `level` shrink steps to `full`. Each step applies the first rule
/// that still bites, in order: halve the message count (floor 1), halve
/// every message's chunk count (floor 1), trim the scripted drop schedule
/// to its first half (floor 4, then 1), disable reordering/duplication/
/// perturbation/far timers. Scripted indices are re-normalized (mod the shrunk
/// packet count, deduplicated) so at least one drop survives every step.
/// Levels beyond the fixpoint return the fixpoint.
Scenario shrink_scenario(const Scenario& full, int level);

/// True when shrink_scenario(s, 1) would change nothing.
bool fully_shrunk(const Scenario& s);

}  // namespace sdr::check
