#include "check/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace sdr::check {

namespace {

// Domain separator for the scenario generator's RNG stream: a harness seed
// never collides with the channel / protocol streams derived from it.
constexpr std::uint64_t kScenarioStream = 0x5D9CC8ECULL;

std::string format_compact(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

const char* drop_kind_name(DropKind kind) {
  switch (kind) {
    case DropKind::kClean: return "clean";
    case DropKind::kIid: return "iid";
    case DropKind::kGilbertElliott: return "gilbert_elliott";
    case DropKind::kScripted: return "scripted";
  }
  return "?";
}

double Scenario::rtt_s() const { return ::sdr::rtt_s(distance_km); }

std::size_t Scenario::total_data_packets() const {
  std::size_t packets = 0;
  for (const MessageSpec& m : messages) {
    packets += m.chunks * packets_per_chunk;
  }
  return packets;
}

std::size_t Scenario::total_chunks() const {
  std::size_t chunks = 0;
  for (const MessageSpec& m : messages) chunks += m.chunks;
  return chunks;
}

std::size_t Scenario::message_bytes(std::size_t i) const {
  return messages[i].chunks * chunk_bytes();
}

std::size_t Scenario::ec_padded_chunks(std::size_t i) const {
  const std::size_t c = messages[i].chunks;
  return (c + ec_k - 1) / ec_k * ec_k;
}

double Scenario::horizon_s() const {
  double max_delay = 0.0;
  std::size_t padded_chunks = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    max_delay = std::max(max_delay, messages[i].post_delay_s);
    padded_chunks += ec_padded_chunks(i);
  }
  // EC sends k+m chunks per k data chunks; double again for retransmission
  // headroom, then allow hundreds of RTT/RTO recovery cycles.
  const double inj =
      injection_time_s(4 * padded_chunks * chunk_bytes(), bandwidth_bps);
  const double rto = rto_rtt_multiple * std::max(rtt_s(), 8.0 * injection_time_s(
                                                              chunk_bytes(),
                                                              bandwidth_bps));
  return 1.0 + max_delay + 400.0 * rtt_s() + 100.0 * inj + 200.0 * rto;
}

std::string Scenario::describe() const {
  std::string out;
  out += "bw=" + format_compact(bandwidth_bps / Gbps) + "G";
  out += " dist=" + format_compact(distance_km) + "km";
  out += " mtu=" + std::to_string(mtu);
  out += " chunk=" + std::to_string(chunk_bytes());
  out += " msgs=" + std::to_string(messages.size()) + "[";
  for (std::size_t i = 0; i < messages.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(messages[i].chunks);
  }
  out += "]ch drop=" + std::string(drop_kind_name(drop));
  switch (drop) {
    case DropKind::kClean:
      break;
    case DropKind::kIid:
      out += "(p=" + format_compact(iid_p) + ")";
      break;
    case DropKind::kGilbertElliott:
      out += "(gb=" + format_compact(ge_p_good_to_bad) +
             ",bg=" + format_compact(ge_p_bad_to_good) +
             ",lg=" + format_compact(ge_loss_good) +
             ",lb=" + format_compact(ge_loss_bad) + ")";
      break;
    case DropKind::kScripted: {
      out += "(n=" + std::to_string(scripted_drops.size()) + ":";
      for (std::size_t i = 0; i < scripted_drops.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(scripted_drops[i]);
      }
      out += ")";
      break;
    }
  }
  if (reorder_probability > 0.0) {
    out += " reorder=" + format_compact(reorder_probability);
  }
  if (duplicate_probability > 0.0) {
    out += " dup=" + format_compact(duplicate_probability);
  }
  out += " sr=" + std::string(sr_flavor == SrFlavor::kNack ? "nack" : "rto");
  if (adaptive_rto) out += "+adaptive";
  out += " rto=" + format_compact(rto_rtt_multiple) + "rtt";
  out += " ec=(" + std::to_string(ec_k) + "," + std::to_string(ec_m) + ")";
  out += " rc=" + std::string(rc_go_back_n ? "gbn" : "sr");
  if (perturb_rto) {
    out += " perturb(rto*=" + format_compact(perturb_rto_multiple) +
           "@t=" + format_compact(perturb_at_s) + ")";
  }
  if (far_timers) {
    out += " far_timers=" + std::to_string(far_timer_count);
  }
  if (fleet_mode) {
    static constexpr const char* kSchemes[] = {"sr", "ec", "rc"};
    out += " fleet(" + std::string(kSchemes[fleet_scheme % 3]) +
           ",epd=" + std::to_string(fleet_endpoints_per_dc) +
           ",mpc=" + std::to_string(fleet_messages_per_connection) +
           (fleet_collective ? ",coll)" : ")");
  }
  return out;
}

Scenario generate_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  Rng rng(derive_seed(seed, kScenarioStream));

  static constexpr double kBandwidths[] = {1 * Gbps, 10 * Gbps, 100 * Gbps,
                                           400 * Gbps};
  s.bandwidth_bps = kBandwidths[rng.next_below(4)];
  // Log-uniform 10..10000 km: RTT from ~0.1 ms (metro) to ~0.1 s
  // (planetary, the paper's regime).
  s.distance_km = 10.0 * std::pow(10.0, 3.0 * rng.next_double());

  static constexpr std::size_t kMtus[] = {512, 1024, 2048, 4096};
  s.mtu = kMtus[rng.next_below(4)];
  static constexpr std::size_t kPpc[] = {1, 2, 4};
  s.packets_per_chunk = kPpc[rng.next_below(3)];

  const double rtt = s.rtt_s();
  const std::size_t n_msgs = 1 + rng.next_below(8);
  s.messages.reserve(n_msgs);
  for (std::size_t i = 0; i < n_msgs; ++i) {
    MessageSpec m;
    m.chunks = 1 + rng.next_below(24);
    m.post_delay_s = rng.next_double() * 4.0 * rtt;
    s.messages.push_back(m);
  }

  if (rng.bernoulli(0.4)) {
    s.reorder_probability = 0.01 + 0.19 * rng.next_double();
    s.reorder_extra_delay_s = (0.1 + 1.9 * rng.next_double()) * rtt;
  }
  if (rng.bernoulli(0.25)) {
    s.duplicate_probability = 0.01 + 0.04 * rng.next_double();
  }

  switch (rng.next_below(4)) {
    case 0:
      s.drop = DropKind::kClean;
      break;
    case 1:
      s.drop = DropKind::kIid;
      // Log-uniform 1e-4 .. ~0.2.
      s.iid_p = std::min(0.2, std::pow(10.0, -4.0 + 3.3 * rng.next_double()));
      break;
    case 2:
      s.drop = DropKind::kGilbertElliott;
      s.ge_p_good_to_bad = 0.001 + 0.049 * rng.next_double();
      s.ge_p_bad_to_good = 0.05 + 0.45 * rng.next_double();
      s.ge_loss_good = 0.01 * rng.next_double();
      s.ge_loss_bad = 0.2 + 0.5 * rng.next_double();
      break;
    case 3: {
      s.drop = DropKind::kScripted;
      const std::uint64_t total = s.total_data_packets();
      const std::uint64_t count =
          1 + rng.next_below(std::min<std::uint64_t>(16, total));
      std::set<std::uint64_t> picked;
      while (picked.size() < count) picked.insert(rng.next_below(total));
      s.scripted_drops.assign(picked.begin(), picked.end());
      break;
    }
  }

  s.sr_flavor = rng.bernoulli(0.5) ? SrFlavor::kNack : SrFlavor::kRto;
  s.adaptive_rto = rng.bernoulli(0.3);
  s.rto_rtt_multiple = 2.0 + 4.0 * rng.next_double();
  static constexpr std::size_t kEcGeom[][2] = {{4, 2}, {8, 4}, {8, 2}};
  const std::size_t g = rng.next_below(3);
  s.ec_k = kEcGeom[g][0];
  s.ec_m = kEcGeom[g][1];
  s.rc_go_back_n = rng.bernoulli(0.5);

  if (!s.adaptive_rto && rng.bernoulli(0.3)) {
    double max_delay = 0.0;
    for (const MessageSpec& m : s.messages) {
      max_delay = std::max(max_delay, m.post_delay_s);
    }
    s.perturb_rto = true;
    s.perturb_at_s = max_delay + (0.5 + 4.5 * rng.next_double()) * rtt;
    s.perturb_rto_multiple = 0.5 + 1.5 * rng.next_double();
  }

  // Appended after every pre-existing draw so the seed->scenario mapping of
  // all earlier fields (and the golden pin of seed 1) is unchanged.
  if (rng.bernoulli(0.35)) {
    s.far_timers = true;
    s.far_timer_count = 8 + rng.next_below(25);  // 8..32 far timers
  }
  if (rng.bernoulli(0.25)) {
    s.fleet_mode = true;
    s.fleet_endpoints_per_dc = 2 + rng.next_below(3);        // 2..4
    s.fleet_messages_per_connection = 3 + rng.next_below(4);  // 3..6
    s.fleet_scheme = rng.next_below(3);
    s.fleet_collective = rng.bernoulli(0.5);
  }
  return s;
}

namespace {

/// Re-fit scripted drop indices to a shrunk packet count: fold each index
/// into range and deduplicate, so a shrink step never silently deletes the
/// whole loss pattern (the failure being minimized usually needs >= 1
/// drop to reproduce).
void refit_scripted(Scenario& s) {
  if (s.drop != DropKind::kScripted || s.scripted_drops.empty()) return;
  const std::uint64_t total = s.total_data_packets();
  std::set<std::uint64_t> folded;
  for (const std::uint64_t idx : s.scripted_drops) {
    folded.insert(total == 0 ? 0 : idx % total);
  }
  s.scripted_drops.assign(folded.begin(), folded.end());
}

/// One shrink step: the first rule that still bites, or no-op at fixpoint.
bool shrink_once(Scenario& s) {
  // Rule 1: halve the message count (keep the first half, rounding up).
  if (s.messages.size() > 1) {
    s.messages.resize((s.messages.size() + 1) / 2);
    refit_scripted(s);
    return true;
  }
  // Rule 2: halve every message's chunk count.
  bool any_big = false;
  for (const MessageSpec& m : s.messages) any_big |= m.chunks > 1;
  if (any_big) {
    for (MessageSpec& m : s.messages) m.chunks = (m.chunks + 1) / 2;
    refit_scripted(s);
    return true;
  }
  // Rule 3: trim the scripted drop schedule (floor 4, then floor 1).
  if (s.drop == DropKind::kScripted && s.scripted_drops.size() > 4) {
    s.scripted_drops.resize(4);
    return true;
  }
  if (s.drop == DropKind::kScripted && s.scripted_drops.size() > 1) {
    s.scripted_drops.resize(1);
    return true;
  }
  // Rule 4: strip the channel/timer mutations.
  if (s.reorder_probability > 0.0 || s.duplicate_probability > 0.0 ||
      s.perturb_rto || s.far_timers) {
    s.reorder_probability = 0.0;
    s.reorder_extra_delay_s = 0.0;
    s.duplicate_probability = 0.0;
    s.perturb_rto = false;
    s.far_timers = false;
    s.far_timer_count = 0;
    return true;
  }
  // Rule 5 (appended): shrink the fleet — fewer endpoints, then fewer
  // messages, then no collective. The mode itself is never disabled: a
  // fleet-oracle failure needs a fleet to reproduce.
  if (s.fleet_mode && s.fleet_endpoints_per_dc > 2) {
    s.fleet_endpoints_per_dc = (s.fleet_endpoints_per_dc + 1) / 2;
    if (s.fleet_endpoints_per_dc < 2) s.fleet_endpoints_per_dc = 2;
    return true;
  }
  if (s.fleet_mode && s.fleet_messages_per_connection > 2) {
    s.fleet_messages_per_connection =
        (s.fleet_messages_per_connection + 1) / 2;
    return true;
  }
  if (s.fleet_mode && s.fleet_collective) {
    s.fleet_collective = false;
    return true;
  }
  return false;
}

}  // namespace

Scenario shrink_scenario(const Scenario& full, int level) {
  Scenario s = full;
  for (int k = 0; k < level; ++k) {
    if (!shrink_once(s)) break;
  }
  s.shrink_level = level;
  return s;
}

bool fully_shrunk(const Scenario& s) {
  Scenario copy = s;
  return !shrink_once(copy);
}

}  // namespace sdr::check
