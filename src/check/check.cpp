#include "check/check.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "ec/gf256_kernels.hpp"
#include "ec/reed_solomon.hpp"
#include "fleet/fleet.hpp"
#include "model/link_params.hpp"
#include "model/protocols.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/span.hpp"

namespace sdr::check {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// The analytic model covers a narrow slice of the scenario space; gate the
/// oracle on exactly that slice so every reported violation is real.
bool model_oracle_applies(const Scenario& s) {
  return s.messages.size() == 1 &&
         (s.drop == DropKind::kClean || s.drop == DropKind::kIid) &&
         s.reorder_probability == 0.0 && s.duplicate_probability == 0.0 &&
         !s.perturb_rto && !s.adaptive_rto;
}

void run_model_oracle(const Scenario& s, const ArmResult& sr,
                      std::vector<std::string>* failures) {
  if (!sr.ok() || sr.done_at_s.empty() || sr.done_at_s[0] < 0.0) {
    return;  // completion oracle already fired; don't double-report
  }
  model::LinkParams link;
  link.bandwidth_bps = s.bandwidth_bps;
  link.rtt_s = s.rtt_s();
  // Scenario loss is per packet; the model wants per chunk.
  const double p_pkt = s.drop == DropKind::kIid ? s.iid_p : 0.0;
  link.p_drop =
      1.0 - std::pow(1.0 - p_pkt, static_cast<double>(s.packets_per_chunk));
  link.chunk_bytes = s.chunk_bytes();

  model::SchemeParams params;
  params.sr = model::SrConfig{s.rto_rtt_multiple};
  const model::Scheme scheme = s.sr_flavor == SrFlavor::kNack
                                   ? model::Scheme::kSrNack
                                   : model::Scheme::kSrRto;
  const double expected = model::expected_completion_s(
      scheme, link, s.messages[0].chunks, params);
  const double measured = sr.done_at_s[0] - s.messages[0].post_delay_s;
  // The sim pays real costs the model abstracts away (ACK cadence, chunk
  // injection backlog under a packet-level drop process, RTO floors), so
  // the band is wide: the oracle exists to catch order-of-magnitude
  // divergence (a wedged retransmit loop, a free lunch), not to validate
  // the model's constants.
  const double upper = 16.0 * expected + 8.0 * s.rtt_s() + 1e-3;
  const double floor =
      0.25 * injection_time_s(s.message_bytes(0), s.bandwidth_bps);
  if (measured > upper) {
    failures->push_back(
        "model oracle: SR completion " + std::to_string(measured) +
        "s exceeds " + std::to_string(upper) + "s (analytic expectation " +
        std::to_string(expected) + "s)");
  } else if (measured < floor) {
    failures->push_back(
        "model oracle: SR completion " + std::to_string(measured) +
        "s is below the injection floor " + std::to_string(floor) +
        "s — data cannot have traversed the link");
  }
}

void run_differential_oracle(const std::vector<ArmResult>& arms,
                             std::vector<std::string>* failures) {
  const ArmResult* reference = nullptr;
  for (const ArmResult& arm : arms) {
    if (!arm.ok()) continue;  // its own oracles already flag it
    if (reference == nullptr) {
      reference = &arm;
      continue;
    }
    if (arm.received.size() != reference->received.size()) {
      failures->push_back("differential oracle: " + arm.name +
                          " delivered " + std::to_string(arm.received.size()) +
                          " bytes but " + reference->name + " delivered " +
                          std::to_string(reference->received.size()));
      continue;
    }
    for (std::size_t i = 0; i < arm.received.size(); ++i) {
      if (arm.received[i] != reference->received[i]) {
        failures->push_back(
            "differential oracle: " + arm.name + " and " + reference->name +
            " delivered different bytes at offset " + std::to_string(i));
        break;
      }
    }
  }
}

/// GF(256) kernel oracle: re-encode the scenario's first submessage worth
/// of payload with the scenario's RS(ec_k, ec_m) geometry under the
/// forced-scalar kernel set and under the dispatched (best-ISA) set, and
/// require byte-identical parity; then erase the maximum m blocks and
/// require both kernel sets to reconstruct the original bytes. Runs on the
/// explicit per-ISA kernel tables (gf_kernels_for), never the process-wide
/// dispatch switch, so parallel seed batches stay race-free.
void run_ec_kernel_oracle(const Scenario& s, std::uint64_t seed,
                          std::vector<std::string>* failures) {
  const std::size_t k = s.ec_k;
  const std::size_t m = s.ec_m;
  const std::size_t block = s.chunk_bytes();
  if (k == 0 || m == 0 || k + m > 256 || block == 0) return;
  const ec::GfKernels* scalar = ec::gf_kernels_for(ec::GfIsa::kScalar);
  const ec::GfKernels& active = ec::gf_kernels();
  if (scalar == nullptr) return;

  const ec::ReedSolomon rs(k, m);
  const std::vector<std::uint8_t> payload =
      message_pattern(seed, 0, k * block);
  std::vector<const std::uint8_t*> data(k);
  for (std::size_t i = 0; i < k; ++i) data[i] = &payload[i * block];

  std::vector<std::uint8_t> parity_scalar(m * block, 0x5C);
  std::vector<std::uint8_t> parity_active(m * block, 0xC5);
  std::vector<std::uint8_t*> ptrs(m);
  for (std::size_t i = 0; i < m; ++i) ptrs[i] = &parity_scalar[i * block];
  rs.encode_with(*scalar, std::span<const std::uint8_t* const>(data),
                 std::span<std::uint8_t* const>(ptrs), block);
  for (std::size_t i = 0; i < m; ++i) ptrs[i] = &parity_active[i * block];
  rs.encode_with(active, std::span<const std::uint8_t* const>(data),
                 std::span<std::uint8_t* const>(ptrs), block);
  if (parity_scalar != parity_active) {
    failures->push_back(
        "gf256 kernel oracle: RS(" + std::to_string(k) + "," +
        std::to_string(m) + ") parity differs between scalar and " +
        ec::isa_name(active.isa) + " kernels");
    return;
  }

  // Decode check: drop the first m data blocks (the hardest pattern — all
  // erasures land on data) under each kernel set.
  for (const ec::GfKernels* kern : {scalar, &active}) {
    std::vector<std::uint8_t> blocks_flat((k + m) * block);
    std::vector<std::uint8_t*> blocks(k + m);
    ec::PresenceMap present(k + m, true);
    for (std::size_t i = 0; i < k; ++i) {
      blocks[i] = &blocks_flat[i * block];
      std::memcpy(blocks[i], data[i], block);
    }
    for (std::size_t i = 0; i < m; ++i) {
      blocks[k + i] = &blocks_flat[(k + i) * block];
      std::memcpy(blocks[k + i], &parity_scalar[i * block], block);
    }
    for (std::size_t i = 0; i < m && i < k; ++i) {
      std::memset(blocks[i], 0, block);
      present[i] = false;
    }
    if (!rs.decode_with(*kern, std::span<std::uint8_t* const>(blocks),
                        present, block)) {
      failures->push_back(std::string("gf256 kernel oracle: decode failed "
                                      "under ") +
                          ec::isa_name(kern->isa) + " kernels");
      return;
    }
    if (std::memcmp(blocks_flat.data(), payload.data(), k * block) != 0) {
      failures->push_back(std::string("gf256 kernel oracle: recovered data "
                                      "differs from original under ") +
                          ec::isa_name(kern->isa) + " kernels");
      return;
    }
  }
}

/// Domain separator for the fleet run's seed stream (decorrelates the fleet
/// traffic from the point-to-point arms above).
constexpr std::uint64_t kFleetStream = 0xF1EE7CULL;

/// The scenario's forward loss as a single i.i.d. rate the fleet fabric can
/// carry, clamped so the RC baseline cannot retry-storm past the horizon.
double fleet_drop_rate(const Scenario& s) {
  double p = 0.0;
  switch (s.drop) {
    case DropKind::kClean: break;
    case DropKind::kIid: p = s.iid_p; break;
    case DropKind::kGilbertElliott: {
      const double denom = s.ge_p_good_to_bad + s.ge_p_bad_to_good;
      const double frac_bad = denom > 0.0 ? s.ge_p_good_to_bad / denom : 0.0;
      p = (1.0 - frac_bad) * s.ge_loss_good + frac_bad * s.ge_loss_bad;
      break;
    }
    case DropKind::kScripted: p = 1e-4; break;
  }
  return std::min(p, 0.01);
}

/// Fleet-mode oracles: run a small two-DC fleet at the scenario's geometry
/// and loss point and check the invariants no scheme may break — every
/// posted message completes or is accounted as failed, the event queue and
/// payload pool quiesce at the horizon, and the per-tenant rollups conserve
/// the fleet totals.
void run_fleet_oracle(const Scenario& s,
                      std::vector<std::string>* failures) {
  fleet::FleetConfig cfg = fleet::FleetConfig::defaults();
  cfg.dcs = 2;
  cfg.endpoints_per_dc = s.fleet_endpoints_per_dc;
  cfg.messages_per_connection = s.fleet_messages_per_connection;
  cfg.scheme = s.fleet_scheme == 0   ? fleet::Scheme::kSr
               : s.fleet_scheme == 1 ? fleet::Scheme::kEc
                                     : fleet::Scheme::kRc;
  cfg.collective = s.fleet_collective;
  cfg.collective_iterations = 1;
  cfg.distance_km = std::clamp(s.distance_km, 10.0, 5000.0);
  cfg.p_drop = fleet_drop_rate(s);
  cfg.seed = derive_seed(s.seed, kFleetStream);

  const fleet::FleetResult r = fleet::run_fleet(cfg);
  const auto fail = [failures](const std::string& what) {
    failures->push_back("fleet oracle: " + what);
  };

  if (!r.quiesced) fail("event queue did not quiesce before the horizon");
  if (r.payload_live_slots != 0) {
    fail("payload pool leaked " + std::to_string(r.payload_live_slots) +
         " live slots after the run");
  }
  if (r.messages_completed + r.messages_failed > r.messages_posted) {
    fail("completed " + std::to_string(r.messages_completed) + " + failed " +
         std::to_string(r.messages_failed) + " exceeds posted " +
         std::to_string(r.messages_posted));
  }
  // A quiesced fleet has no in-flight work left: everything posted must be
  // accounted as completed or failed (RC give-ups land in neither bucket
  // only while events are still pending, which quiesce rules out).
  if (r.quiesced &&
      r.messages_completed + r.messages_failed != r.messages_posted) {
    fail("quiesced with " +
         std::to_string(r.messages_posted - r.messages_completed -
                        r.messages_failed) +
         " posted messages unaccounted");
  }
  std::uint64_t posted = 0, completed = 0, failed = 0, bytes = 0;
  for (const fleet::TenantResult& t : r.tenants) {
    posted += t.posted;
    completed += t.completed;
    failed += t.failed;
    bytes += t.useful_bytes;
  }
  if (posted != r.messages_posted || completed != r.messages_completed ||
      failed != r.messages_failed || bytes != r.useful_bytes) {
    fail("per-tenant rollups do not conserve the fleet totals");
  }
}

}  // namespace

bool SeedReport::ok() const {
  if (!failures.empty()) return false;
  for (const ArmResult& arm : arms) {
    if (!arm.ok()) return false;
  }
  return true;
}

std::string SeedReport::failure_text() const {
  std::string out;
  for (const ArmResult& arm : arms) {
    for (const std::string& f : arm.failures) {
      out += "[" + arm.name + "] " + f + "\n";
    }
  }
  for (const std::string& f : failures) {
    out += "[cross] " + f + "\n";
  }
  return out;
}

const std::string& SeedReport::timeline() const {
  static const std::string kEmpty;
  for (const ArmResult& arm : arms) {
    if (!arm.ok() && !arm.timeline.empty()) return arm.timeline;
  }
  return kEmpty;
}

std::uint64_t SeedReport::digest() const {
  std::uint64_t h = kFnvOffset;
  for (const ArmResult& arm : arms) {
    h = fnv1a(h, arm.name.data(), arm.name.size());
    h = fnv1a(h, arm.received.data(), arm.received.size());
    for (const double t : arm.done_at_s) {
      // Hash the exact bit pattern: "equivalent" floating point is not
      // good enough for the serial-vs-parallel oracle.
      std::uint64_t bits;
      std::memcpy(&bits, &t, sizeof(bits));
      h = fnv1a(h, &bits, sizeof(bits));
    }
    h = fnv1a(h, &arm.retransmissions, sizeof(arm.retransmissions));
  }
  return h;
}

std::string SeedReport::flight_json() const {
  std::string out;
  for (const ArmResult& arm : arms) {
    if (arm.flight_json.empty()) continue;
    if (!out.empty()) out += ",";
    out += "{\"arm\":\"" + arm.name + "\",\"flight\":" + arm.flight_json + "}";
  }
  if (out.empty()) return out;
  return "{\"seed\":" + std::to_string(seed) +
         ",\"shrink_level\":" + std::to_string(shrink_level) +
         ",\"arms\":[" + out + "]}";
}

std::string SeedReport::chrome_json() const {
  std::string events;
  for (const ArmResult& arm : arms) {
    if (arm.chrome_events.empty()) continue;
    if (!events.empty()) events += ",";
    events += arm.chrome_events;
  }
  if (events.empty()) return events;
  return telemetry::SpanRecorder::wrap_chrome_events(events);
}

std::string repro_command(std::uint64_t seed, int shrink_level) {
  std::string cmd = "sdrcheck --seed=" + std::to_string(seed);
  if (shrink_level > 0) {
    cmd += " --shrink-level=" + std::to_string(shrink_level);
  }
  return cmd;
}

SeedReport check_seed(std::uint64_t seed, const CheckOptions& opts,
                      int shrink_level) {
  SeedReport report;
  report.seed = seed;
  report.shrink_level = shrink_level;
  report.scenario = shrink_scenario(generate_scenario(seed), shrink_level);

  RunnerOptions ropts;
  ropts.capture_trace = opts.capture_trace;
  ropts.trace_capacity = opts.trace_capacity;
  ropts.capture_flight = opts.capture_flight;
  ropts.flight_capacity = opts.flight_capacity;
  ropts.capture_spans = opts.capture_spans;
  ropts.span_capacity = opts.span_capacity;

  // Distinct pid ranges per arm so the merged Perfetto document keeps each
  // arm's tracks apart (each arm registers <=1 track + a metadata row).
  ropts.span_pid_base = 0;
  report.arms.push_back(run_sr_arm(report.scenario, ropts));
  ropts.span_pid_base = 8;
  if (opts.run_ec) report.arms.push_back(run_ec_arm(report.scenario, ropts));
  ropts.span_pid_base = 16;
  if (opts.run_rc) report.arms.push_back(run_rc_arm(report.scenario, ropts));

  run_differential_oracle(report.arms, &report.failures);
  if (opts.run_ec) {
    run_ec_kernel_oracle(report.scenario, seed, &report.failures);
  }
  if (opts.model_oracle && model_oracle_applies(report.scenario)) {
    run_model_oracle(report.scenario, report.arms[0], &report.failures);
  }
  if (report.scenario.fleet_mode) {
    run_fleet_oracle(report.scenario, &report.failures);
  }
  return report;
}

ShrinkOutcome shrink_failure(std::uint64_t seed, const CheckOptions& opts) {
  ShrinkOutcome out;
  out.minimal = check_seed(seed, opts, 0);
  out.level = 0;
  // Greedy ladder walk: stop at the first level that passes (the failure
  // needs whatever that step removed) or stops changing the scenario.
  Scenario prev = out.minimal.scenario;
  for (int level = 1; level <= opts.max_shrink_level; ++level) {
    const Scenario next = shrink_scenario(generate_scenario(seed), level);
    if (next.describe() == prev.describe()) break;  // ladder fixpoint
    SeedReport candidate = check_seed(seed, opts, level);
    if (candidate.ok()) break;
    out.minimal = std::move(candidate);
    out.level = level;
    prev = next;
  }
  out.repro = repro_command(seed, out.level);
  return out;
}

BatchResult check_seeds(std::uint64_t base_seed, std::size_t count,
                        const CheckOptions& opts, unsigned jobs) {
  BatchResult batch;
  batch.base_seed = base_seed;
  batch.total = count;

  sweep::ParamGrid grid;
  std::vector<std::int64_t> trials(count);
  std::iota(trials.begin(), trials.end(), 0);
  grid.axis_i64("trial", std::move(trials));

  sweep::SweepOptions sopts;
  sopts.jobs = jobs;
  sopts.base_seed = base_seed;
  // The harness arms its own per-arm tracers; sweep-level capture would
  // only add noise (and the jsonl must stay identical across jobs counts).
  sopts.capture_telemetry = false;

  const sweep::SweepResult result = sweep::run_sweep(
      grid, sopts, [&opts](sweep::Trial& trial) {
        const SeedReport report = check_seed(trial.seed(), opts, 0);
        trial.record("seed", static_cast<std::int64_t>(report.seed));
        trial.record_flag("ok", report.ok());
        trial.record("oracle_failures", static_cast<std::int64_t>(
                                            report.failure_text().empty()
                                                ? 0
                                                : std::count(
                                                      report.failure_text()
                                                          .begin(),
                                                      report.failure_text()
                                                          .end(),
                                                      '\n')));
        trial.record("digest", static_cast<std::int64_t>(report.digest()));
      });

  batch.jsonl = result.to_jsonl();
  for (const sweep::TrialRecord& rec : result.trials) {
    const sweep::TrialRecord::Value* ok = rec.find("ok");
    const bool passed = rec.ok && ok != nullptr && ok->json == "true";
    if (!passed) {
      batch.failing_seeds.push_back(derive_seed(base_seed, rec.index));
    }
  }
  // Shrinking is serial and after the sweep: it re-runs scenarios many
  // times and must not skew the deterministic batch records.
  for (const std::uint64_t seed : batch.failing_seeds) {
    batch.shrunk.push_back(shrink_failure(seed, opts));
  }
  return batch;
}

}  // namespace sdr::check
