// sdrcheck: property-based conformance checking over random scenarios.
//
// check_seed() runs one seed through all enabled arms (SR, EC, RC — see
// runner.hpp) and layers the cross-arm oracles on top of the per-arm ones:
//
//   * differential — SR, EC and RC must deliver byte-identical payloads
//     for the same scenario (every arm reuses message_pattern, so the
//     concatenated `received` buffers must match exactly),
//   * analytic model — for scenarios the closed-form model covers (single
//     message, clean or i.i.d. loss, no reordering/duplication/
//     perturbation, static RTO), the simulated SR completion time must
//     land within a generous tolerance band around
//     model::expected_completion_s,
//   * sweep equivalence — check_seeds() runs seed batches through the
//     sweep engine and records a per-seed digest of the delivered bytes
//     and completion times; to_jsonl() output must be bit-identical at any
//     --jobs level (verified by the harness's own tests and by rerunning
//     the CLI at different job counts).
//
// On failure, shrink_failure() walks the deterministic shrink ladder
// (scenario.hpp) to the smallest level that still fails and emits a
// one-line repro: `sdrcheck --seed=S --shrink-level=K`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/runner.hpp"
#include "check/scenario.hpp"

namespace sdr::check {

struct CheckOptions {
  bool run_ec{true};
  bool run_rc{true};
  /// Compare SR completion time against the analytic model when the
  /// scenario falls inside the model's assumptions.
  bool model_oracle{true};
  bool capture_trace{true};
  std::size_t trace_capacity{1u << 13};
  /// Per-arm flight recorders (bounded rings of protocol state
  /// transitions); their JSON dump is written next to the seed repro line
  /// when an oracle fails.
  bool capture_flight{true};
  std::size_t flight_capacity{128};
  /// Per-arm causal span recorders: a --trace-perfetto replay merges every
  /// arm's spans into one Chrome trace document.
  bool capture_spans{false};
  std::size_t span_capacity{1u << 14};
  /// Upper bound on shrink-ladder steps explored by shrink_failure().
  int max_shrink_level{16};
};

/// Outcome of one seed at one shrink level: the scenario, every arm's
/// result, and the cross-arm oracle verdicts.
struct SeedReport {
  std::uint64_t seed{0};
  int shrink_level{0};
  Scenario scenario;
  std::vector<ArmResult> arms;
  /// Cross-arm oracle failures (differential, model); per-arm failures
  /// live in arms[i].failures.
  std::vector<std::string> failures;

  bool ok() const;
  /// All failures, arm-prefixed, one per line; empty string when ok().
  std::string failure_text() const;
  /// Rendered trace timeline of the first failing arm (empty when ok()).
  const std::string& timeline() const;
  /// Order- and platform-stable digest of delivered bytes + completion
  /// times across arms; drives the serial-vs-parallel equivalence oracle.
  std::uint64_t digest() const;
  /// Merged per-arm flight-recorder dumps:
  /// {"seed":N,"shrink_level":K,"arms":[{"arm":"sr_rto","flight":{...}}]}.
  /// Empty string when no arm captured flight data.
  std::string flight_json() const;
  /// Merged Chrome trace document of every arm's spans (capture_spans
  /// runs); empty string when no arm captured spans.
  std::string chrome_json() const;
};

/// The one-line command that reproduces a (seed, shrink level) run.
std::string repro_command(std::uint64_t seed, int shrink_level);

SeedReport check_seed(std::uint64_t seed, const CheckOptions& opts,
                      int shrink_level = 0);

struct ShrinkOutcome {
  /// Report at the minimal still-failing shrink level.
  SeedReport minimal;
  int level{0};
  std::string repro;
};

/// Given a failing seed, walk shrink levels upward and return the deepest
/// level that still fails (greedy prefix walk; stops at the first passing
/// level or at the ladder fixpoint).
ShrinkOutcome shrink_failure(std::uint64_t seed, const CheckOptions& opts);

struct BatchResult {
  std::uint64_t base_seed{0};
  std::size_t total{0};
  std::vector<std::uint64_t> failing_seeds;
  std::vector<ShrinkOutcome> shrunk;
  /// Deterministic per-seed records (seed, ok, failure count, digest) —
  /// bit-identical for any jobs count.
  std::string jsonl;

  bool ok() const { return failing_seeds.empty(); }
};

/// Run `count` seeds (derive_seed(base_seed, i) each) through the sweep
/// engine with `jobs` workers, then shrink any failures serially.
BatchResult check_seeds(std::uint64_t base_seed, std::size_t count,
                        const CheckOptions& opts, unsigned jobs = 1);

}  // namespace sdr::check
