#include "model/protocols.hpp"

namespace sdr::model {

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSrRto: return "SR RTO";
    case Scheme::kSrNack: return "SR NACK";
    case Scheme::kEcMds: return "EC MDS";
    case Scheme::kEcXor: return "EC XOR";
    case Scheme::kIdeal: return "Ideal";
  }
  return "?";
}

namespace {

EcConfig ec_config_for(Scheme scheme, const SchemeParams& params) {
  EcConfig cfg = params.ec;
  cfg.kind = scheme == Scheme::kEcXor ? EcCodeKind::kXor : EcCodeKind::kMds;
  return cfg;
}

}  // namespace

double expected_completion_s(Scheme scheme, const LinkParams& link,
                             std::uint64_t chunks,
                             const SchemeParams& params) {
  switch (scheme) {
    case Scheme::kSrRto:
      return sr_expected_completion_s(link, chunks, SrConfig{3.0});
    case Scheme::kSrNack:
      return sr_expected_completion_s(link, chunks, SrConfig{1.0});
    case Scheme::kEcMds:
    case Scheme::kEcXor:
      return ec_expected_completion_s(link, chunks,
                                      ec_config_for(scheme, params));
    case Scheme::kIdeal:
      return ideal_completion_s(link, chunks);
  }
  return 0.0;
}

double sample_completion_s(Scheme scheme, Rng& rng, const LinkParams& link,
                           std::uint64_t chunks, const SchemeParams& params) {
  switch (scheme) {
    case Scheme::kSrRto:
      return sr_sample_completion_s(rng, link, chunks, SrConfig{3.0});
    case Scheme::kSrNack:
      return sr_sample_completion_s(rng, link, chunks, SrConfig{1.0});
    case Scheme::kEcMds:
    case Scheme::kEcXor:
      return ec_sample_completion_s(rng, link, chunks,
                                    ec_config_for(scheme, params));
    case Scheme::kIdeal:
      return ideal_completion_s(link, chunks);
  }
  return 0.0;
}

double quantile_completion_s(Scheme scheme, const LinkParams& link,
                             std::uint64_t chunks, double q,
                             const SchemeParams& params) {
  switch (scheme) {
    case Scheme::kSrRto:
      return sr_completion_quantile(link, chunks, SrConfig{3.0}, q);
    case Scheme::kSrNack:
      return sr_completion_quantile(link, chunks, SrConfig{1.0}, q);
    case Scheme::kEcMds:
    case Scheme::kEcXor:
      return ec_completion_quantile(link, chunks,
                                    ec_config_for(scheme, params), q);
    case Scheme::kIdeal:
      return ideal_completion_s(link, chunks);
  }
  return 0.0;
}

DistributionSummary sample_distribution(Scheme scheme, const LinkParams& link,
                                        std::uint64_t chunks, std::uint64_t n,
                                        std::uint64_t seed,
                                        const SchemeParams& params) {
  Rng rng(seed);
  Histogram hist(1e-7, 1e5);
  for (std::uint64_t i = 0; i < n; ++i) {
    hist.record(sample_completion_s(scheme, rng, link, chunks, params));
  }
  DistributionSummary out;
  out.mean = hist.mean();
  out.p50 = hist.percentile(50);
  out.p99 = hist.percentile(99);
  out.p999 = hist.percentile(99.9);
  out.max = hist.max();
  out.samples = n;
  return out;
}

}  // namespace sdr::model
