#include "model/allreduce_model.hpp"

#include <algorithm>
#include <vector>

namespace sdr::model {

double allreduce_sample_s(Rng& rng, const AllreduceParams& params) {
  const auto n = static_cast<std::size_t>(params.datacenters);
  const std::uint64_t rounds = 2 * params.datacenters - 2;
  const std::uint64_t seg_chunks = params.segment_chunks();

  // finish[i] = T(i, r) rolling over rounds.
  std::vector<double> finish(n, 0.0);
  std::vector<double> prev(n, 0.0);
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    prev.swap(finish);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pred = (i + n - 1) % n;
      const double ready = std::max(prev[pred], prev[i]);
      const double step = sample_completion_s(
          params.scheme, rng, params.link, seg_chunks, params.scheme_params);
      finish[i] = ready + step;
    }
  }
  return *std::max_element(finish.begin(), finish.end());
}

DistributionSummary allreduce_distribution(const AllreduceParams& params,
                                           std::uint64_t n,
                                           std::uint64_t seed) {
  Rng rng(seed);
  Histogram hist(1e-6, 1e6);
  for (std::uint64_t i = 0; i < n; ++i) {
    hist.record(allreduce_sample_s(rng, params));
  }
  DistributionSummary out;
  out.mean = hist.mean();
  out.p50 = hist.percentile(50);
  out.p99 = hist.percentile(99);
  out.p999 = hist.percentile(99.9);
  out.max = hist.max();
  out.samples = n;
  return out;
}

double allreduce_expected_lower_bound_s(const AllreduceParams& params) {
  const std::uint64_t rounds = 2 * params.datacenters - 2;
  const std::uint64_t seg_chunks = params.segment_chunks();
  const double c = ideal_completion_s(params.link, seg_chunks);
  const double expected = expected_completion_s(
      params.scheme, params.link, seg_chunks, params.scheme_params);
  const double mu_x = std::max(0.0, expected - c);
  return static_cast<double>(rounds) * (c + mu_x);
}

namespace {

std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t levels = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++levels;
  }
  return levels;
}

}  // namespace

double tree_allreduce_sample_s(Rng& rng, const AllreduceParams& params) {
  const std::uint64_t n = params.datacenters;
  const std::uint64_t levels = ceil_log2(n);
  const std::uint64_t buffer_chunks =
      (params.buffer_bytes + params.link.chunk_bytes - 1) /
      params.link.chunk_bytes;

  double total = 0.0;
  // Reduce phase up the tree, then broadcast mirrors it down: the number
  // of concurrently active edges halves per level going up (and doubles
  // coming down), and each barrier round costs the max over its edges.
  for (int phase = 0; phase < 2; ++phase) {
    for (std::uint64_t level = 0; level < levels; ++level) {
      const std::uint64_t edges =
          std::max<std::uint64_t>(1, n >> (level + 1));
      double round_max = 0.0;
      for (std::uint64_t e = 0; e < edges; ++e) {
        round_max = std::max(
            round_max, sample_completion_s(params.scheme, rng, params.link,
                                           buffer_chunks,
                                           params.scheme_params));
      }
      total += round_max;
    }
  }
  return total;
}

DistributionSummary tree_allreduce_distribution(const AllreduceParams& params,
                                                std::uint64_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  Histogram hist(1e-6, 1e6);
  for (std::uint64_t i = 0; i < n; ++i) {
    hist.record(tree_allreduce_sample_s(rng, params));
  }
  DistributionSummary out;
  out.mean = hist.mean();
  out.p50 = hist.percentile(50);
  out.p99 = hist.percentile(99);
  out.p999 = hist.percentile(99.9);
  out.max = hist.max();
  out.samples = n;
  return out;
}

double tree_allreduce_expected_lower_bound_s(const AllreduceParams& params) {
  const std::uint64_t rounds = 2 * ceil_log2(params.datacenters);
  const std::uint64_t buffer_chunks =
      (params.buffer_bytes + params.link.chunk_bytes - 1) /
      params.link.chunk_bytes;
  const double c = ideal_completion_s(params.link, buffer_chunks);
  const double expected = expected_completion_s(
      params.scheme, params.link, buffer_chunks, params.scheme_params);
  const double mu_x = std::max(0.0, expected - c);
  return static_cast<double>(rounds) * (c + mu_x);
}

}  // namespace sdr::model
