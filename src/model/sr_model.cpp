#include "model/sr_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace sdr::model {

namespace {

/// Retransmission counts with p^(v+1) below this threshold contribute less
/// than ~1e-16 to log-probabilities and are ignored.
int max_relevant_retries(double p_drop) {
  if (p_drop <= 0.0) return 0;
  return static_cast<int>(std::ceil(-16.0 / std::log10(p_drop))) + 2;
}

/// log P(max_i X_i <= t) for the SR chunk-time maximum: chunks are grouped
/// by retransmission count v = floor((t - i*T)/O); count(v) chunks
/// contribute log(1 - p^(v+1)); v beyond the relevance cut contribute ~0.
double log_cdf_max_x(double t, double M, double T, double O, double p) {
  if (t < M * T) return -std::numeric_limits<double>::infinity();
  const int v_cut = max_relevant_retries(p);
  double acc = 0.0;
  const int v_min =
      static_cast<int>(std::floor((t - M * T) / O));  // chunk M's count
  for (int v = v_min; v <= v_min + v_cut; ++v) {
    // Chunks i with v == floor((t - i*T)/O):  (t-(v+1)O)/T < i <= (t-vO)/T
    const double hi_f = std::floor((t - static_cast<double>(v) * O) / T);
    const double lo_f = std::floor((t - static_cast<double>(v + 1) * O) / T);
    const double hi = std::min(hi_f, M);
    const double lo = std::max(lo_f, 0.0);
    const double count = hi - lo;
    if (count <= 0.0) continue;
    if (v < 0) return -std::numeric_limits<double>::infinity();
    acc += count * std::log1p(-std::pow(p, v + 1));
  }
  return acc;
}

}  // namespace

double sr_expected_completion_s(const LinkParams& link, std::uint64_t chunks,
                                const SrConfig& config) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  const auto M = static_cast<double>(chunks);
  if (chunks == 0) return rtt;
  if (p <= 0.0) return M * T + rtt;

  const double O = config.rto_s(link) + T;  // overhead per failed attempt
  const int v_cut = max_relevant_retries(p);
  const auto log_cdf_max = [&](double t) {
    return log_cdf_max_x(t, M, T, O, p);
  };

  // E[max X] = M*T + integral_{M*T}^inf P(max X > t) dt (tail-sum formula).
  const double t0 = M * T;
  const double step = O / 64.0;
  const double horizon = static_cast<double>(v_cut + 2) * O;
  double integral = 0.0;
  for (double off = 0.0; off < horizon; off += step) {
    const double t = t0 + off + 0.5 * step;
    const double tail = -std::expm1(log_cdf_max(t));  // 1 - CDF
    integral += tail * step;
    if (tail < 1e-13 && off > O) break;
  }
  return t0 + integral + rtt;
}

double sr_completion_cdf(const LinkParams& link, std::uint64_t chunks,
                         const SrConfig& config, double t_seconds) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  const auto M = static_cast<double>(chunks);
  if (chunks == 0) return t_seconds >= rtt ? 1.0 : 0.0;
  if (p <= 0.0) return t_seconds >= M * T + rtt ? 1.0 : 0.0;
  const double O = config.rto_s(link) + T;
  // T_SR = max X + RTT.
  const double log_cdf = log_cdf_max_x(t_seconds - rtt, M, T, O, p);
  return std::exp(log_cdf);
}

double sr_completion_quantile(const LinkParams& link, std::uint64_t chunks,
                              const SrConfig& config, double q) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  const auto M = static_cast<double>(chunks);
  if (chunks == 0) return rtt;
  if (p <= 0.0 || q <= 0.0) return M * T + rtt;
  const double O = config.rto_s(link) + T;
  const int v_cut = max_relevant_retries(p);

  double lo = M * T + rtt;
  double hi = lo + static_cast<double>(v_cut + 2) * O;
  if (sr_completion_cdf(link, chunks, config, hi) < q) return hi;  // q ~ 1
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (sr_completion_cdf(link, chunks, config, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double sr_sample_completion_s(Rng& rng, const LinkParams& link,
                              std::uint64_t chunks, const SrConfig& config) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  if (chunks == 0) return rtt;
  if (p <= 0.0) return static_cast<double>(chunks) * T + rtt;

  const double O = config.rto_s(link) + T;

  // Binomial thinning: only the chunks that fail at least once matter.
  std::uint64_t n = rng.binomial(chunks, p);
  n = std::min(n, chunks);
  if (n == 0) return static_cast<double>(chunks) * T + rtt;

  std::vector<std::uint64_t> dropped;
  dropped.reserve(n);
  double max_x = 0.0;
  for (std::uint64_t j = 0; j < n; ++j) {
    const std::uint64_t i = rng.next_below(chunks) + 1;  // 1-based index
    dropped.push_back(i);
    // Z | Z >= 1 has the same law as a fresh Geometric(1-p) (support >= 1).
    const std::uint64_t z = rng.geometric(1.0 - p);
    const double x = static_cast<double>(i) * T +
                     O * static_cast<double>(std::min<std::uint64_t>(z, 1u << 20));
    max_x = std::max(max_x, x);
  }

  // Contribution of the never-dropped chunks: largest index not in the
  // dropped set completes at i*T.
  std::sort(dropped.begin(), dropped.end(), std::greater<>());
  dropped.erase(std::unique(dropped.begin(), dropped.end()), dropped.end());
  std::uint64_t clean_max = chunks;
  for (std::uint64_t d : dropped) {
    if (d == clean_max) {
      --clean_max;
    } else if (d < clean_max) {
      break;
    }
  }
  if (clean_max > 0) {
    max_x = std::max(max_x, static_cast<double>(clean_max) * T);
  }
  return max_x + rtt;
}

double sr_sample_completion_direct_s(Rng& rng, const LinkParams& link,
                                     std::uint64_t chunks,
                                     const SrConfig& config) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  if (chunks == 0) return rtt;
  const double O = config.rto_s(link) + T;
  double max_x = 0.0;
  for (std::uint64_t i = 1; i <= chunks; ++i) {
    const std::uint64_t y = p > 0.0 ? rng.geometric(1.0 - p) : 1;  // transmissions
    const double x = static_cast<double>(i) * T +
                     O * static_cast<double>(std::min<std::uint64_t>(y - 1, 1u << 20));
    max_x = std::max(max_x, x);
  }
  return max_x + rtt;
}

}  // namespace sdr::model
