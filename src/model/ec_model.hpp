// Erasure-coding reliability completion-time model (paper §4.2.3).
//
// A message of M chunks is split into L = M/k data submessages, each
// erasure-coded with m parity chunks. Parity is injected alongside the data
// (bandwidth inflation m/k); a submessage whose losses exceed the code's
// tolerance falls back to Selective Repeat after the receiver's fallback
// timeout FTO expires.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "model/link_params.hpp"
#include "model/sr_model.hpp"

namespace sdr::model {

enum class EcCodeKind { kMds, kXor };

struct EcConfig {
  std::size_t k{32};       // data chunks per submessage
  std::size_t m{8};        // parity chunks per submessage
  EcCodeKind kind{EcCodeKind::kMds};
  /// FTO slack beyond the expected injection time, in RTTs (paper's beta).
  double beta{0.5};
  /// SR configuration used by the fallback retransmission phase.
  SrConfig fallback{3.0};

  double parity_ratio() const {
    return static_cast<double>(k) / static_cast<double>(m);
  }
};

/// Probability that one submessage decodes without fallback (Appendix B).
double ec_submessage_success(const EcConfig& config, double p_drop);

/// Probability that at least one of the L submessages requires fallback.
double ec_fallback_probability(const EcConfig& config, double p_drop,
                               std::uint64_t submessages);

/// Lower-bound expectation E[T_EC(M)] in seconds (paper §4.2.3 terms:
/// injection of data+parity, expected timeout + NACK delivery, expected SR
/// retransmission of failed submessages, final ACK RTT).
double ec_expected_completion_s(const LinkParams& link, std::uint64_t chunks,
                                const EcConfig& config = EcConfig{});

/// One stochastic sample of T_EC(M) in seconds.
double ec_sample_completion_s(Rng& rng, const LinkParams& link,
                              std::uint64_t chunks,
                              const EcConfig& config = EcConfig{});

/// Closed-form CDF of T_EC(M): a mixture of the no-fallback atom at
/// (wire injection + RTT) and, over the conditional number of failed
/// submessages F, the shifted SR retransmission distribution.
double ec_completion_cdf(const LinkParams& link, std::uint64_t chunks,
                         const EcConfig& config, double t_seconds);

/// Inverse CDF by bisection — closed-form EC tails (e.g. q = 0.999).
double ec_completion_quantile(const LinkParams& link, std::uint64_t chunks,
                              const EcConfig& config, double q);

/// Total chunks on the wire (data + parity) for an M-chunk message.
std::uint64_t ec_wire_chunks(const EcConfig& config, std::uint64_t chunks);

}  // namespace sdr::model
