// Parameters of the modeled long-haul link (paper §4.2.1 notation).
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "common/units.hpp"

namespace sdr::model {

struct LinkParams {
  double bandwidth_bps{400 * Gbps};
  double rtt_s{0.025};           // 25 ms ~ 3750 km of fiber
  double p_drop{1e-5};           // per-CHUNK drop probability (i.i.d.)
  std::size_t chunk_bytes{64 * KiB};

  /// T_INJ: time to inject one chunk (paper: inverse of chunk size divided
  /// by link bandwidth).
  double t_inj() const {
    return injection_time_s(chunk_bytes, bandwidth_bps);
  }

  static LinkParams from_distance(double bandwidth_bps, double km,
                                  double p_drop, std::size_t chunk_bytes) {
    LinkParams p;
    p.bandwidth_bps = bandwidth_bps;
    p.rtt_s = rtt_s_of(km);
    p.p_drop = p_drop;
    p.chunk_bytes = chunk_bytes;
    return p;
  }

  static double rtt_s_of(double km) { return ::sdr::rtt_s(km); }
};

/// Ideal (lossless) Write completion time for M chunks: injection + RTT
/// (last chunk propagates, ACK returns). The slowdown figures normalize by
/// this.
inline double ideal_completion_s(const LinkParams& link, std::size_t chunks) {
  return static_cast<double>(chunks) * link.t_inj() + link.rtt_s;
}

}  // namespace sdr::model
