// Unified view over the modeled reliability schemes, as the bench harness
// and the protocol tuner consume them: expectation, stochastic sampler and
// percentile estimation per scheme.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "model/ec_model.hpp"
#include "model/link_params.hpp"
#include "model/sr_model.hpp"

namespace sdr::model {

enum class Scheme {
  kSrRto,    // Selective Repeat, RTO = 3 RTT (paper "SR RTO")
  kSrNack,   // Selective Repeat, NACK ~ RTO = 1 RTT (paper "SR NACK")
  kEcMds,    // EC with an MDS code (Reed-Solomon)
  kEcXor,    // EC with the modulo-group XOR code
  kIdeal,    // lossless reference
};

std::string scheme_name(Scheme scheme);

struct SchemeParams {
  SrConfig sr{3.0};
  EcConfig ec{};  // k, m, kind set per scheme at call sites
};

/// Expected completion time in seconds for `chunks` chunks.
double expected_completion_s(Scheme scheme, const LinkParams& link,
                             std::uint64_t chunks,
                             const SchemeParams& params = SchemeParams{});

/// One stochastic sample.
double sample_completion_s(Scheme scheme, Rng& rng, const LinkParams& link,
                           std::uint64_t chunks,
                           const SchemeParams& params = SchemeParams{});

/// Closed-form q-quantile of the completion time (every scheme has an
/// analytic CDF; the ideal scheme is deterministic).
double quantile_completion_s(Scheme scheme, const LinkParams& link,
                             std::uint64_t chunks, double q,
                             const SchemeParams& params = SchemeParams{});

struct DistributionSummary {
  double mean{0.0};
  double p50{0.0};
  double p99{0.0};
  double p999{0.0};
  double max{0.0};
  std::uint64_t samples{0};
};

/// Sample `n` completions and summarize (mean + tail percentiles). All
/// randomness comes from `seed`, printed by the bench harness for exact
/// reproduction.
DistributionSummary sample_distribution(Scheme scheme, const LinkParams& link,
                                        std::uint64_t chunks, std::uint64_t n,
                                        std::uint64_t seed,
                                        const SchemeParams& params = SchemeParams{});

}  // namespace sdr::model
