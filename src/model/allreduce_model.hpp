// Inter-datacenter ring Allreduce completion model (paper §5.3, Appendix C).
//
// N datacenters run the ring algorithm: 2N-2 sequential rounds, each a
// point-to-point step of buffer_size/N bytes whose duration is drawn from
// the chosen reliability scheme's completion-time distribution. Finish
// times follow the recurrence
//   T(i, r) = max(T(i-1, r-1), T(i, r-1)) + t(i, r-1)
// and the collective completes at max_i T(i, 2N-2). The model samples the
// recurrence to estimate the tail (Fig 13) and exposes the Appendix C
// analytical lower bound (2N-2)(C + mu_X) for tests.
#pragma once

#include <cstdint>

#include "model/protocols.hpp"

namespace sdr::model {

struct AllreduceParams {
  std::uint64_t datacenters{4};
  std::uint64_t buffer_bytes{128ull << 20};  // per-rank buffer
  LinkParams link;                           // per-hop link (chunk_bytes set)
  Scheme scheme{Scheme::kEcMds};
  SchemeParams scheme_params{};

  /// Chunks per ring segment (buffer/N rounded up to whole chunks).
  std::uint64_t segment_chunks() const {
    const std::uint64_t seg = buffer_bytes / datacenters;
    return (seg + link.chunk_bytes - 1) / link.chunk_bytes;
  }
};

/// One sampled end-to-end ring-allreduce completion time (seconds).
double allreduce_sample_s(Rng& rng, const AllreduceParams& params);

/// Distribution over `n` samples.
DistributionSummary allreduce_distribution(const AllreduceParams& params,
                                           std::uint64_t n,
                                           std::uint64_t seed);

/// Appendix C lower bound: (2N-2) * (C + mu_X) where C is the lossless
/// per-stage time and mu_X the expected reliability overhead per stage.
double allreduce_expected_lower_bound_s(const AllreduceParams& params);

/// Binary-tree allreduce (reduce up + broadcast down): 2*ceil(log2 N)
/// barrier-synchronized rounds, each moving the FULL buffer over every
/// active tree edge; a round finishes at the max of its edges' completion
/// times. Appendix C notes the per-stage reliability cost accumulates for
/// any stage-based schedule — the tree trades 2N-2 small stages for
/// 2*log2(N) large ones.
double tree_allreduce_sample_s(Rng& rng, const AllreduceParams& params);

DistributionSummary tree_allreduce_distribution(const AllreduceParams& params,
                                                std::uint64_t n,
                                                std::uint64_t seed);

/// Appendix C-style bound for the tree schedule:
/// 2*ceil(log2 N) * (C + mu_X) with full-buffer stages.
double tree_allreduce_expected_lower_bound_s(const AllreduceParams& params);

}  // namespace sdr::model
