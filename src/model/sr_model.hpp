// Selective Repeat message-completion-time model (paper §4.2.2, Appendix A).
//
// A message of M chunks is injected back-to-back. Chunk i starts at
// t_start(i) = i * T_INJ; each failed transmission costs O = RTO + T_INJ;
// the number of transmissions Y_i is geometric with success 1 - P_drop.
// Completion time is max_i X_i + RTT with X_i = t_start(i) + O*(Y_i - 1).
//
// Two evaluators (paper §5.1.1):
//  * analytical expectation via the tail-sum formula of Appendix A,
//    evaluated by numerically integrating P(max X > t) with the chunks
//    grouped by retransmission count (exact up to quadrature error);
//  * stochastic sampler for percentiles, using binomial thinning so a
//    sample costs O(M * P_drop) instead of O(M).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "model/link_params.hpp"

namespace sdr::model {

struct SrConfig {
  /// RTO as a multiple of RTT. The paper's "SR RTO" scenario uses 3 RTT;
  /// "SR NACK" is approximated as 1 RTT (best-case negative-ack).
  double rto_rtt_multiple{3.0};

  double rto_s(const LinkParams& link) const {
    return rto_rtt_multiple * link.rtt_s;
  }
};

inline SrConfig sr_rto_config() { return SrConfig{3.0}; }
inline SrConfig sr_nack_config() { return SrConfig{1.0}; }

/// Analytical E[T_SR(M)] in seconds (Appendix A).
double sr_expected_completion_s(const LinkParams& link, std::uint64_t chunks,
                                const SrConfig& config = SrConfig{});

/// Closed-form CDF of the completion time: P(T_SR(M) <= t). Appendix A
/// derives the tail; the CDF is its complement evaluated directly from the
/// per-chunk geometric laws.
double sr_completion_cdf(const LinkParams& link, std::uint64_t chunks,
                         const SrConfig& config, double t_seconds);

/// Inverse CDF by bisection: the q-quantile (q in (0,1)) of T_SR(M).
/// Closed-form tails, e.g. q = 0.999 for the paper's p99.9 figures,
/// without Monte-Carlo noise.
double sr_completion_quantile(const LinkParams& link, std::uint64_t chunks,
                              const SrConfig& config, double q);

/// One stochastic sample of T_SR(M) in seconds.
double sr_sample_completion_s(Rng& rng, const LinkParams& link,
                              std::uint64_t chunks,
                              const SrConfig& config = SrConfig{});

/// Direct O(M) reference sampler (used by validation tests to check the
/// fast thinning sampler).
double sr_sample_completion_direct_s(Rng& rng, const LinkParams& link,
                                     std::uint64_t chunks,
                                     const SrConfig& config = SrConfig{});

}  // namespace sdr::model
