#include "model/ec_model.hpp"

#include <algorithm>
#include <cmath>

#include "ec/probability.hpp"

namespace sdr::model {

double ec_submessage_success(const EcConfig& config, double p_drop) {
  return config.kind == EcCodeKind::kMds
             ? ec::p_ec_mds(config.k, config.m, p_drop)
             : ec::p_ec_xor(config.k, config.m, p_drop);
}

double ec_fallback_probability(const EcConfig& config, double p_drop,
                               std::uint64_t submessages) {
  const double p_ok = ec_submessage_success(config, p_drop);
  if (p_ok <= 0.0) return 1.0;
  return -std::expm1(static_cast<double>(submessages) * std::log(p_ok));
}

std::uint64_t ec_wire_chunks(const EcConfig& config, std::uint64_t chunks) {
  const double ratio = config.parity_ratio();
  const auto parity = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(chunks) / ratio));
  return chunks + parity;
}

double ec_expected_completion_s(const LinkParams& link, std::uint64_t chunks,
                                const EcConfig& config) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  if (chunks == 0) return rtt;

  const std::uint64_t wire = ec_wire_chunks(config, chunks);
  const auto L = static_cast<std::uint64_t>(std::max<std::uint64_t>(
      1, (chunks + config.k - 1) / config.k));

  const double p_ok = ec_submessage_success(config, p);
  const double p_fallback = ec_fallback_probability(config, p, L);
  const double expected_failures = static_cast<double>(L) * (1.0 - p_ok);

  // (1) Base: inject data and parity; receiver decodes in place; ACK.
  double t = static_cast<double>(wire) * T + rtt;
  // (2) Expected timeout wait + EC NACK delivery on fallback.
  t += p_fallback * (rtt + config.beta * rtt);
  // (3) Expected SR retransmission of the failed submessages. The final ACK
  // of that phase is already accounted by the SR model's +RTT; remove the
  // double-counted base ACK when fallback happens... the lower bound keeps
  // both terms, matching the paper's additive formulation.
  if (expected_failures > 1e-12) {
    const auto retr_chunks = static_cast<std::uint64_t>(std::llround(
        std::max(1.0, expected_failures * static_cast<double>(config.k))));
    const double t_sr =
        sr_expected_completion_s(link, retr_chunks, config.fallback);
    t += p_fallback * (t_sr - rtt);  // SR phase; its trailing ACK replaces
    // the base ACK already counted in (1), hence the -rtt.
  }
  return t;
}

double ec_completion_cdf(const LinkParams& link, std::uint64_t chunks,
                         const EcConfig& config, double t_seconds) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  if (chunks == 0) return t_seconds >= rtt ? 1.0 : 0.0;
  const std::uint64_t wire = ec_wire_chunks(config, chunks);
  const double base = static_cast<double>(wire) * T;
  const auto L = static_cast<std::uint64_t>(std::max<std::uint64_t>(
      1, (chunks + config.k - 1) / config.k));
  const double p_ok = ec_submessage_success(config, link.p_drop);
  const double p_fail = 1.0 - p_ok;

  // No-fallback branch: completion exactly at base + RTT.
  double cdf = 0.0;
  const double p_clean =
      p_fail <= 0.0 ? 1.0
                    : std::exp(static_cast<double>(L) * std::log(p_ok));
  if (t_seconds >= base + rtt) cdf += p_clean;
  if (p_clean >= 1.0) return std::min(cdf, 1.0);

  // Fallback branch: F >= 1 failed submessages, each retransmitted as k
  // SR chunks after the timeout slack and NACK round trip.
  const double shift = base + config.beta * rtt + rtt;
  for (std::uint64_t f = 1; f <= L; ++f) {
    const double pmf = ec::binomial_pmf(L, f, p_fail);
    if (pmf < 1e-15 && f > L * p_fail + 8) break;
    if (pmf <= 0.0) continue;
    cdf += pmf *
           sr_completion_cdf(link, f * config.k, config.fallback,
                             t_seconds - shift);
  }
  return std::min(cdf, 1.0);
}

double ec_completion_quantile(const LinkParams& link, std::uint64_t chunks,
                              const EcConfig& config, double q) {
  const double rtt = link.rtt_s;
  if (chunks == 0) return rtt;
  const std::uint64_t wire = ec_wire_chunks(config, chunks);
  const double base = static_cast<double>(wire) * link.t_inj();
  double lo = base + rtt - 1e-12;
  // Upper bound: fallback of every submessage at a deep SR quantile.
  const auto L = static_cast<std::uint64_t>(std::max<std::uint64_t>(
      1, (chunks + config.k - 1) / config.k));
  double hi = base + (1.0 + config.beta) * rtt +
              sr_completion_quantile(link, L * config.k, config.fallback,
                                     0.999999);
  if (ec_completion_cdf(link, chunks, config, hi) < q) return hi;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ec_completion_cdf(link, chunks, config, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double ec_sample_completion_s(Rng& rng, const LinkParams& link,
                              std::uint64_t chunks, const EcConfig& config) {
  const double T = link.t_inj();
  const double rtt = link.rtt_s;
  const double p = link.p_drop;
  if (chunks == 0) return rtt;

  const std::uint64_t wire = ec_wire_chunks(config, chunks);
  const auto L = static_cast<std::uint64_t>(std::max<std::uint64_t>(
      1, (chunks + config.k - 1) / config.k));
  const double p_ok = ec_submessage_success(config, p);

  const std::uint64_t failures = rng.binomial(L, 1.0 - p_ok);
  double t = static_cast<double>(wire) * T;
  if (failures == 0) {
    return t + rtt;  // decoded in place; single ACK
  }
  // Fallback: receiver waits for FTO (injection + beta*RTT measured from
  // the first received bit; the injection part coincides with the base
  // term), sends a NACK, and the failed submessages are selectively
  // repeated.
  t += config.beta * rtt;          // timeout slack
  t += rtt;                        // NACK delivery + first retransmissions
  const std::uint64_t retr_chunks = failures * config.k;
  t += sr_sample_completion_s(rng, link, retr_chunks, config.fallback);
  return t;
}

}  // namespace sdr::model
