// Memory registration: protection domain, memory regions, NULL MR, and the
// indirect (zero-based root) memory key table of paper §3.2.2 / Figure 5.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "verbs/types.hpp"

namespace sdr::verbs {

/// A registered memory region. `is_null` models ibv_alloc_null_mr(): writes
/// targeting it are accepted (and complete) but the payload is discarded —
/// the paper's stage-1 late-packet protection (§3.3).
class MemoryRegion {
 public:
  MemoryRegion(MemoryKey lkey, MemoryKey rkey, std::uint8_t* addr,
               std::size_t length, bool is_null)
      : lkey_(lkey), rkey_(rkey), addr_(addr), length_(length),
        is_null_(is_null) {}

  MemoryKey lkey() const { return lkey_; }
  MemoryKey rkey() const { return rkey_; }
  std::uint8_t* addr() const { return addr_; }
  std::size_t length() const { return length_; }
  bool is_null() const { return is_null_; }

  bool contains(std::uint64_t offset, std::size_t len) const {
    return is_null_ || offset + len <= length_;
  }

 private:
  MemoryKey lkey_;
  MemoryKey rkey_;
  std::uint8_t* addr_;
  std::size_t length_;
  bool is_null_;
};

/// Result of resolving a (key, offset, len) remote access.
struct ResolvedAccess {
  std::uint8_t* addr{nullptr};  // nullptr => NULL MR (discard payload)
  bool valid{false};            // false => remote access error
  bool discard{false};          // true  => NULL MR sink
};

/// Indirect memory key: a zero-based table of slots, each `slot_size` bytes
/// of virtual offset space, backed by a (MemoryRegion, base_offset) pair or
/// by the NULL MR. For a QP with maximum message size M, message i targets
/// offsets [i*M, i*M + M) — exactly Figure 5 of the paper.
class IndirectMkeyTable {
 public:
  IndirectMkeyTable(MemoryKey key, std::size_t slot_count,
                    std::size_t slot_size)
      : key_(key), slot_size_(slot_size), slots_(slot_count) {}

  MemoryKey key() const { return key_; }
  std::size_t slot_count() const { return slots_.size(); }
  std::size_t slot_size() const { return slot_size_; }

  /// Bind slot `i` to user memory (mr, base). The slot then serves
  /// offsets [i*slot_size, (i+1)*slot_size).
  Status bind(std::size_t slot, const MemoryRegion* mr, std::uint64_t base);

  /// Bind slot `i` to the NULL MR: arriving writes complete but payload is
  /// discarded (late-packet protection stage 1).
  Status bind_null(std::size_t slot, const MemoryRegion* null_mr);

  ResolvedAccess resolve(std::uint64_t offset, std::size_t len) const;

 private:
  struct Slot {
    const MemoryRegion* mr{nullptr};
    std::uint64_t base{0};
  };
  MemoryKey key_;
  std::size_t slot_size_;
  std::vector<Slot> slots_;
};

/// Protection domain: owns MRs and indirect tables, resolves remote keys.
class ProtectionDomain {
 public:
  ProtectionDomain() = default;
  ProtectionDomain(const ProtectionDomain&) = delete;
  ProtectionDomain& operator=(const ProtectionDomain&) = delete;

  const MemoryRegion* register_mr(std::uint8_t* addr, std::size_t length);
  const MemoryRegion* alloc_null_mr();
  IndirectMkeyTable* create_indirect_table(std::size_t slot_count,
                                           std::size_t slot_size);

  Status deregister_mr(const MemoryRegion* mr);

  /// Resolve a remote access against either a plain MR rkey or an indirect
  /// table key.
  ResolvedAccess resolve(MemoryKey rkey, std::uint64_t offset,
                         std::size_t len) const;

  const MemoryRegion* find_by_lkey(MemoryKey lkey) const;

 private:
  MemoryKey next_key_{0x1000};
  std::unordered_map<MemoryKey, std::unique_ptr<MemoryRegion>> mrs_;
  std::unordered_map<MemoryKey, std::unique_ptr<IndirectMkeyTable>> tables_;
};

}  // namespace sdr::verbs
