#include "verbs/qp.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.hpp"
#include "verbs/nic.hpp"
#include "verbs/nic_model.hpp"

namespace sdr::verbs {

Qp::Qp(Nic& nic, QpNumber num, QpConfig config)
    : nic_(nic), num_(num), config_(config) {
  assert(config_.mtu > 0);
  if (nic_.caps().enabled) {
    injector_ = std::make_unique<Injector>(nic_, *this, nic_.caps());
  }
  if (telemetry::enabled()) register_metrics();
}

Qp::~Qp() {
  if (rc_timer_.valid()) {
    nic_.simulator().cancel(rc_timer_);
    rc_timer_ = {};
  }
}

void Qp::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("verbs.qp"));
  tele_.bind_counter("packets_sent", &stats_.packets_sent);
  tele_.bind_counter("packets_received", &stats_.packets_received);
  tele_.bind_counter("bytes_sent", &stats_.bytes_sent);
  tele_.bind_counter("messages_dropped_epsn", &stats_.messages_dropped_epsn);
  tele_.bind_counter("packets_discarded", &stats_.packets_discarded);
  tele_.bind_counter("rc_retransmissions", &stats_.rc_retransmissions);
  tele_.bind_counter("rc_naks_sent", &stats_.rc_naks_sent);
  tele_.bind_counter("remote_access_errors", &stats_.remote_access_errors);
  tele_.bind_gauge("rc_unacked", [this] {
    return static_cast<double>(rc_unacked_.size());
  });
}

Status Qp::connect(NicId remote_nic, QpNumber remote_qp) {
  remote_nic_ = remote_nic;
  remote_qp_ = remote_qp;
  connected_ = true;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

Status Qp::validate_write(const WriteWr& wr) const {
  if (config_.type == QpType::kUD) {
    return Status(StatusCode::kInvalidArgument,
                  "RDMA Write is not supported on UD queue pairs");
  }
  if (!connected_) {
    return Status(StatusCode::kNotConnected, "QP is not connected");
  }
  if (wr.local_addr == nullptr || wr.length == 0) {
    return Status(StatusCode::kInvalidArgument, "empty write");
  }
  return Status::ok();
}

Status Qp::post_write(const WriteWr& wr) {
  if (Status s = validate_write(wr); !s) return s;
  emit_packets_for_write(wr);
  return Status::ok();
}

void Qp::emit_packets_for_write(const WriteWr& wr) {
  const std::size_t mtu = config_.mtu;
  const std::size_t packets = (wr.length + mtu - 1) / mtu;
  std::size_t sent = 0;

  for (std::size_t p = 0; p < packets; ++p) {
    const std::size_t chunk = std::min(mtu, wr.length - sent);
    WirePacket pkt;
    pkt.dst_nic = remote_nic_;
    pkt.dst_qp = remote_qp_;
    pkt.src_qp = num_;
    pkt.psn = next_psn_++;
    pkt.rkey = wr.rkey;
    pkt.remote_offset = wr.remote_offset + sent;
    // Zero-copy: slice the caller's (registered) buffer directly. The verbs
    // contract keeps it valid until the send completion, which covers every
    // in-flight and RC-unacked reference to this slice.
    pkt.payload = common::PayloadRef::borrow(wr.local_addr + sent, chunk);

    const bool first = (p == 0);
    const bool last = (p + 1 == packets);
    if (first && last) {
      pkt.opcode = wr.with_imm ? Opcode::kWriteOnlyImm : Opcode::kWriteOnly;
    } else if (first) {
      pkt.opcode = Opcode::kWriteFirst;
    } else if (last) {
      pkt.opcode = wr.with_imm ? Opcode::kWriteLastImm : Opcode::kWriteLast;
    } else {
      pkt.opcode = Opcode::kWriteMiddle;
    }
    if (last && wr.with_imm) pkt.imm = wr.imm;

    if (config_.type == QpType::kRC) {
      rc_unacked_.push_back(Unacked{pkt, wr.wr_id, last, wr.signaled});
    }
    send_packet(std::move(pkt));
    sent += chunk;
  }

  if (config_.type == QpType::kRC) {
    rc_arm_timer();
  } else if (wr.signaled) {
    if (injector_ != nullptr) {
      // The packets are parked in the injection pipeline, not on the wire;
      // the completion fires when the last one's wire frontier passes.
      injector_->attach_completion(wr.wr_id,
                                   static_cast<std::uint32_t>(wr.length));
    } else {
      // Unreliable transports complete locally once the last byte has been
      // handed to the wire (injection complete).
      sim::Channel* ch = nic_.route_to(remote_nic_, num_, remote_qp_);
      const SimTime done = ch ? ch->next_free() : nic_.simulator().now();
      const auto wr_id = wr.wr_id;
      const auto bytes = static_cast<std::uint32_t>(wr.length);
      nic_.simulator().schedule_at(done, [this, wr_id, bytes] {
        complete_send(wr_id, bytes, WcStatus::kSuccess);
      });
    }
  }
}

Status Qp::post_send(const SendWr& wr) {
  if (wr.length > config_.mtu) {
    return Status(StatusCode::kInvalidArgument,
                  "two-sided send exceeds one MTU");
  }
  NicId dst_nic = remote_nic_;
  QpNumber dst_qp = remote_qp_;
  if (config_.type == QpType::kUD) {
    dst_nic = wr.dst_nic;
    dst_qp = wr.dst_qp;
    if (dst_qp == 0) {
      return Status(StatusCode::kInvalidArgument, "UD send needs dst_qp");
    }
  } else if (!connected_) {
    return Status(StatusCode::kNotConnected, "QP is not connected");
  }

  WirePacket pkt;
  pkt.dst_nic = dst_nic;
  pkt.dst_qp = dst_qp;
  pkt.src_qp = num_;
  pkt.psn = next_psn_++;
  pkt.opcode = wr.with_imm ? Opcode::kSendOnlyImm : Opcode::kSendOnly;
  pkt.imm = wr.imm;
  if (wr.local_addr != nullptr && wr.length > 0) {
    // Two-sided sends may post from short-lived storage (SDR builds CTS
    // messages on the stack), so the payload is copied once into a pooled,
    // refcounted slot rather than borrowed.
    pkt.payload = common::PayloadRef::pooled_copy(wr.local_addr, wr.length);
  }

  if (config_.type == QpType::kRC) {
    rc_unacked_.push_back(Unacked{pkt, wr.wr_id, true, wr.signaled});
    send_packet(std::move(pkt));
    rc_arm_timer();
  } else {
    send_packet(std::move(pkt));
    if (wr.signaled) {
      if (injector_ != nullptr) {
        injector_->attach_completion(wr.wr_id,
                                     static_cast<std::uint32_t>(wr.length));
      } else {
        sim::Channel* ch = nic_.route_to(dst_nic, num_, dst_qp);
        const SimTime done = ch ? ch->next_free() : nic_.simulator().now();
        const auto wr_id = wr.wr_id;
        const auto bytes = static_cast<std::uint32_t>(wr.length);
        nic_.simulator().schedule_at(done, [this, wr_id, bytes] {
          complete_send(wr_id, bytes, WcStatus::kSuccess);
        });
      }
    }
  }
  return Status::ok();
}

Status Qp::post_recv(const RecvWr& wr) {
  recv_queue_.push_back(wr);
  return Status::ok();
}

void Qp::send_packet(WirePacket&& pkt, bool count_retransmission) {
  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.payload.size();
  if (count_retransmission) {
    ++stats_.rc_retransmissions;
    if (telemetry::tracing()) {
      // PSN stands in for the chunk id at the RC transport level.
      telemetry::tracer().emit(nic_.simulator().now(),
                               telemetry::TraceEventType::kRetransmit, num_,
                               telemetry::kNoMsg, pkt.psn, pkt.imm,
                               pkt.payload.size());
    }
    if (telemetry::spanning()) {
      telemetry::spans().on_instant(nic_.simulator().now(),
                                    telemetry::TraceEventType::kRetransmit,
                                    telemetry::kNoMsg, pkt.psn);
    }
    if (telemetry::flight_recording()) {
      telemetry::flight().record(telemetry::FlightLayer::kRc, num_,
                                 "rc_retransmit", nic_.simulator().now(),
                                 telemetry::kNoMsg, pkt.psn,
                                 pkt.payload.size());
    }
  }
  // First transmissions pay the modeled injection cost; retransmissions are
  // NIC-internal (the hardware replays from its own buffers without
  // re-crossing the host posting path) and bypass it, as do ACK/NAK wire
  // messages, which never enter this function.
  if (injector_ != nullptr && !count_retransmission) {
    const bool is_send_verb = pkt.opcode == Opcode::kSendOnly ||
                              pkt.opcode == Opcode::kSendOnlyImm;
    injector_->post(std::move(pkt), is_send_verb);
    return;
  }
  nic_.send_packet(std::move(pkt));
}

void Qp::complete_send(std::uint64_t wr_id, std::uint32_t bytes,
                       WcStatus status) {
  if (config_.send_cq == nullptr) return;
  Cqe cqe;
  cqe.wr_id = wr_id;
  cqe.qp = num_;
  cqe.status = status;
  cqe.byte_len = bytes;
  cqe.is_recv = false;
  config_.send_cq->push(cqe);
}

// ---------------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------------

void Qp::on_packet(WirePacket&& pkt) {
  ++stats_.packets_received;
  switch (config_.type) {
    case QpType::kUD: receive_ud(std::move(pkt)); break;
    case QpType::kUC: receive_uc(std::move(pkt)); break;
    case QpType::kRC: receive_rc(std::move(pkt)); break;
  }
}

void Qp::deliver_recv_cqe(const WirePacket& pkt, std::uint32_t bytes) {
  if (config_.recv_cq == nullptr) return;
  Cqe cqe;
  cqe.qp = num_;
  cqe.src_qp = pkt.src_qp;
  cqe.status = WcStatus::kSuccess;
  cqe.byte_len = bytes;
  cqe.imm = pkt.imm;
  cqe.imm_valid = carries_imm(pkt.opcode);
  cqe.is_recv = true;
  config_.recv_cq->push(cqe);
}

void Qp::receive_ud(WirePacket&& pkt) {
  if (pkt.opcode != Opcode::kSendOnly && pkt.opcode != Opcode::kSendOnlyImm) {
    ++stats_.packets_discarded;  // UD supports only two-sided sends
    return;
  }
  if (recv_queue_.empty()) {
    ++stats_.packets_discarded;  // receiver-not-ready drop
    return;
  }
  RecvWr rwr = recv_queue_.front();
  recv_queue_.pop_front();
  const std::size_t n = std::min(pkt.payload.size(), rwr.length);
  if (n > 0 && rwr.addr != nullptr) {
    std::memcpy(rwr.addr, pkt.payload.data(), n);
  }
  Cqe cqe;
  cqe.wr_id = rwr.wr_id;
  cqe.qp = num_;
  cqe.src_qp = pkt.src_qp;
  cqe.status = WcStatus::kSuccess;
  cqe.byte_len = static_cast<std::uint32_t>(n);
  cqe.imm = pkt.imm;
  cqe.imm_valid = carries_imm(pkt.opcode);
  cqe.is_recv = true;
  if (config_.recv_cq != nullptr) config_.recv_cq->push(cqe);
}

void Qp::place_write_payload(const WirePacket& pkt, bool& access_ok) {
  // Resolve the target on the first packet of the message; continue the
  // cursor on subsequent packets.
  access_ok = true;
  std::uint8_t*& cursor =
      config_.type == QpType::kRC ? rc_write_cursor_ : uc_write_cursor_;
  bool& discard =
      config_.type == QpType::kRC ? rc_write_discard_ : uc_write_discard_;

  if (is_write_start(pkt.opcode)) {
    const ResolvedAccess access = nic_.pd().resolve(
        pkt.rkey, pkt.remote_offset, pkt.payload.size());
    if (!access.valid) {
      ++stats_.remote_access_errors;
      access_ok = false;
      return;
    }
    cursor = access.addr;
    discard = access.discard;
  }
  if (!discard && cursor != nullptr && !pkt.payload.empty()) {
    std::memcpy(cursor, pkt.payload.data(), pkt.payload.size());
    cursor += pkt.payload.size();
  }
}

void Qp::receive_uc(WirePacket&& pkt) {
  if (pkt.opcode == Opcode::kSendOnly || pkt.opcode == Opcode::kSendOnlyImm) {
    receive_ud(std::move(pkt));  // UC also supports two-sided sends
    return;
  }

  // ePSN tracking (paper §3.2.1): a PSN mismatch mid-message discards the
  // remainder of that message; sync is only regained at the start of a new
  // message (FIRST/ONLY opcode).
  if (pkt.psn != epsn_) {
    if (is_write_start(pkt.opcode)) {
      // New message observed after losing packets: resynchronize. The
      // previous in-flight message (if any) was implicitly lost.
      if (uc_in_message_) {
        ++stats_.messages_dropped_epsn;
        uc_in_message_ = false;
      }
      epsn_ = pkt.psn;  // adopt the sender's numbering
      uc_dropping_ = false;
    } else {
      // Mid-message packet with unexpected PSN: whole message is dropped.
      if (!uc_dropping_) {
        ++stats_.messages_dropped_epsn;
        uc_dropping_ = true;
        uc_in_message_ = false;
      }
      ++stats_.packets_discarded;
      epsn_ = pkt.psn + 1;  // track the wire so a future FIRST resyncs
      return;
    }
  }
  epsn_ = pkt.psn + 1;

  if (uc_dropping_ && !is_write_start(pkt.opcode)) {
    ++stats_.packets_discarded;
    return;
  }
  uc_dropping_ = false;

  bool access_ok = true;
  place_write_payload(pkt, access_ok);
  if (!access_ok) {
    // UC: silently drop the rest of the message on protection error.
    uc_dropping_ = true;
    uc_in_message_ = false;
    return;
  }

  if (is_write_start(pkt.opcode)) {
    uc_in_message_ = true;
    uc_message_bytes_ = 0;
  }
  uc_message_bytes_ += pkt.payload.size();

  if (is_write_end(pkt.opcode)) {
    uc_in_message_ = false;
    if (carries_imm(pkt.opcode)) {
      deliver_recv_cqe(pkt, static_cast<std::uint32_t>(uc_message_bytes_));
    }
  }
}

// ---------------------------------------------------------------------------
// RC: Go-Back-N reliability (the commodity-NIC baseline)
// ---------------------------------------------------------------------------

void Qp::receive_rc(WirePacket&& pkt) {
  telemetry::ProfScope prof(telemetry::ProfCategory::kRc);
  if (pkt.opcode == Opcode::kAck) {
    rc_handle_ack(pkt.psn);
    return;
  }
  if (pkt.opcode == Opcode::kNak) {
    rc_handle_nak(pkt.psn);
    return;
  }
  if (config_.rc_mode == RcMode::kSelectiveRepeat) {
    rc_sr_receive(std::move(pkt));
    return;
  }

  if (pkt.psn != rc_epsn_) {
    ++stats_.packets_discarded;
    if (pkt.psn > rc_epsn_ && !rc_nak_outstanding_) {
      // Gap detected: request Go-Back-N from the expected PSN.
      rc_nak_outstanding_ = true;
      ++stats_.rc_naks_sent;
      if (telemetry::flight_recording()) {
        telemetry::flight().record(telemetry::FlightLayer::kRc, num_,
                                   "rc_nak", nic_.simulator().now(),
                                   telemetry::kNoMsg, rc_epsn_, pkt.psn);
      }
      WirePacket nak;
      nak.dst_nic = remote_nic_;
      nak.dst_qp = pkt.src_qp;
      nak.src_qp = num_;
      nak.psn = rc_epsn_;
      nak.opcode = Opcode::kNak;
      nic_.send_packet(std::move(nak));
    } else if (pkt.psn < rc_epsn_) {
      // Duplicate from a rewind: re-ACK to move the sender forward.
      rc_receiver_maybe_ack(/*force=*/true);
    }
    return;
  }

  rc_nak_outstanding_ = false;
  rc_epsn_ = pkt.psn + 1;
  ++rc_unacked_count_;

  if (pkt.opcode == Opcode::kSendOnly || pkt.opcode == Opcode::kSendOnlyImm) {
    receive_ud(std::move(pkt));
    rc_receiver_maybe_ack(/*force=*/true);
    return;
  }

  bool access_ok = true;
  place_write_payload(pkt, access_ok);
  if (access_ok && is_write_end(pkt.opcode) && carries_imm(pkt.opcode)) {
    deliver_recv_cqe(pkt, static_cast<std::uint32_t>(pkt.payload.size()));
  }
  rc_receiver_maybe_ack(/*force=*/is_write_end(pkt.opcode));
}

void Qp::rc_receiver_maybe_ack(bool force) {
  if (!force && rc_unacked_count_ < config_.rc_ack_every) return;
  rc_unacked_count_ = 0;
  WirePacket ack;
  ack.dst_nic = remote_nic_;
  ack.dst_qp = remote_qp_;
  ack.src_qp = num_;
  ack.psn = rc_epsn_;  // cumulative: everything below this PSN arrived
  ack.opcode = Opcode::kAck;
  nic_.send_packet(std::move(ack));
}

void Qp::rc_handle_ack(Psn acked_up_to) {
  bool progressed = false;
  while (!rc_unacked_.empty() && rc_unacked_.front().pkt.psn < acked_up_to) {
    const Unacked& u = rc_unacked_.front();
    if (u.last_of_wr && u.signaled) {
      complete_send(u.wr_id, static_cast<std::uint32_t>(u.pkt.payload.size()),
                    WcStatus::kSuccess);
    }
    rc_unacked_.pop_front();
    progressed = true;
  }
  if (progressed) {
    rc_acked_psn_ = acked_up_to;
    rc_retries_ = 0;
  }
  if (rc_timer_.valid()) {
    nic_.simulator().cancel(rc_timer_);
    rc_timer_ = {};
  }
  if (!rc_unacked_.empty()) rc_arm_timer();
}

void Qp::rc_handle_nak(Psn expected) {
  if (config_.rc_mode == RcMode::kSelectiveRepeat) {
    // Selective: retransmit only the named packet.
    for (std::size_t i = 0; i < rc_unacked_.size(); ++i) {
      const Unacked& u = rc_unacked_[i];
      if (u.pkt.psn == expected) {
        WirePacket copy = u.pkt;  // payload is a ref bump, not a byte copy
        send_packet(std::move(copy), /*count_retransmission=*/true);
        break;
      }
    }
    return;
  }
  rc_retransmit_from(expected);
}

// ---------------------------------------------------------------------------
// RC Selective Repeat receiver: out-of-order packets are placed directly
// (each packet carries its own RETH offset); completions are delivered in
// order once the cumulative PSN passes them.
// ---------------------------------------------------------------------------

void Qp::rc_place_by_offset(const WirePacket& pkt) {
  const ResolvedAccess access =
      nic_.pd().resolve(pkt.rkey, pkt.remote_offset, pkt.payload.size());
  if (!access.valid) {
    ++stats_.remote_access_errors;
    return;
  }
  if (!access.discard && access.addr != nullptr && !pkt.payload.empty()) {
    std::memcpy(access.addr, pkt.payload.data(), pkt.payload.size());
  }
}

void Qp::rc_sr_receive(WirePacket&& pkt) {
  // Duplicates (already placed, or behind the cumulative point).
  if (pkt.psn < rc_epsn_ || rc_ooo_received_.count(pkt.psn) != 0) {
    ++stats_.packets_discarded;
    rc_receiver_maybe_ack(/*force=*/true);
    return;
  }

  const bool is_send =
      pkt.opcode == Opcode::kSendOnly || pkt.opcode == Opcode::kSendOnlyImm;
  if (is_send) {
    // Two-sided sends consume posted receives and must stay in order; an
    // out-of-order send is NAKed like Go-Back-N.
    if (pkt.psn != rc_epsn_) {
      ++stats_.packets_discarded;
      if (!rc_nak_outstanding_) {
        rc_nak_outstanding_ = true;
        ++stats_.rc_naks_sent;
        if (telemetry::flight_recording()) {
          telemetry::flight().record(telemetry::FlightLayer::kRc, num_,
                                     "rc_nak", nic_.simulator().now(),
                                     telemetry::kNoMsg, rc_epsn_, pkt.psn);
        }
        WirePacket nak;
        nak.dst_nic = remote_nic_;
        nak.dst_qp = pkt.src_qp;
        nak.src_qp = num_;
        nak.psn = rc_epsn_;
        nak.opcode = Opcode::kNak;
        nic_.send_packet(std::move(nak));
      }
      return;
    }
    rc_nak_outstanding_ = false;
    rc_epsn_ = pkt.psn + 1;
    receive_ud(std::move(pkt));
    rc_receiver_maybe_ack(/*force=*/true);
    return;
  }

  // One-sided write: place immediately regardless of order.
  rc_place_by_offset(pkt);
  if (is_write_end(pkt.opcode) && carries_imm(pkt.opcode)) {
    Cqe cqe;
    cqe.qp = num_;
    cqe.src_qp = pkt.src_qp;
    cqe.status = WcStatus::kSuccess;
    cqe.byte_len = static_cast<std::uint32_t>(pkt.payload.size());
    cqe.imm = pkt.imm;
    cqe.imm_valid = true;
    cqe.is_recv = true;
    rc_pending_cqes_.emplace(pkt.psn, cqe);
  }

  bool message_boundary = false;
  if (pkt.psn == rc_epsn_) {
    rc_nak_outstanding_ = false;
    ++rc_epsn_;
    ++rc_unacked_count_;
    // Drain the out-of-order set while it extends the cumulative range.
    while (rc_ooo_received_.erase(rc_epsn_) != 0) {
      ++rc_epsn_;
      ++rc_unacked_count_;
    }
    // Deliver completions now covered by the cumulative point, in order.
    while (!rc_pending_cqes_.empty() &&
           rc_pending_cqes_.begin()->first < rc_epsn_) {
      if (config_.recv_cq != nullptr) {
        config_.recv_cq->push(rc_pending_cqes_.begin()->second);
      }
      rc_pending_cqes_.erase(rc_pending_cqes_.begin());
      message_boundary = true;
    }
    rc_receiver_maybe_ack(/*force=*/message_boundary);
  } else {
    rc_ooo_received_.insert(pkt.psn);
    if (!rc_nak_outstanding_) {
      rc_nak_outstanding_ = true;
      ++stats_.rc_naks_sent;
      if (telemetry::flight_recording()) {
        telemetry::flight().record(telemetry::FlightLayer::kRc, num_,
                                   "rc_nak", nic_.simulator().now(),
                                   telemetry::kNoMsg, rc_epsn_,
                                   rc_ooo_received_.size());
      }
      WirePacket nak;
      nak.dst_nic = remote_nic_;
      nak.dst_qp = pkt.src_qp;
      nak.src_qp = num_;
      nak.psn = rc_epsn_;  // first missing PSN
      nak.opcode = Opcode::kNak;
      nic_.send_packet(std::move(nak));
    }
  }
}

void Qp::rc_arm_timer() {
  if (rc_timer_.valid()) return;  // already armed
  rc_timer_ = nic_.simulator().schedule(
      SimTime::from_seconds(config_.rc_ack_timeout_s), [this] {
        rc_timer_ = {};
        rc_on_timeout();
      });
}

void Qp::rc_on_timeout() {
  telemetry::ProfScope prof(telemetry::ProfCategory::kRc);
  if (rc_unacked_.empty()) return;
  if (telemetry::tracing()) {
    telemetry::tracer().emit(nic_.simulator().now(),
                             telemetry::TraceEventType::kRtoFired, num_,
                             telemetry::kNoMsg, rc_unacked_.front().pkt.psn);
  }
  if (telemetry::spanning()) {
    telemetry::spans().on_instant(nic_.simulator().now(),
                                  telemetry::TraceEventType::kRtoFired,
                                  telemetry::kNoMsg,
                                  rc_unacked_.front().pkt.psn);
  }
  if (telemetry::flight_recording()) {
    telemetry::flight().record(telemetry::FlightLayer::kRc, num_, "rc_rto",
                               nic_.simulator().now(), telemetry::kNoMsg,
                               rc_unacked_.front().pkt.psn,
                               rc_unacked_.size(), rc_retries_);
  }
  ++rc_retries_;
  if (rc_retries_ > config_.rc_retry_limit) {
    // Give up: flush all outstanding work with an error, like hardware
    // transitioning the QP to the error state.
    for (std::size_t i = 0; i < rc_unacked_.size(); ++i) {
      const Unacked& u = rc_unacked_[i];
      if (u.last_of_wr && u.signaled) {
        complete_send(u.wr_id, 0, WcStatus::kRetryExceeded);
      }
    }
    rc_unacked_.clear();
    return;
  }
  rc_retransmit_from(rc_unacked_.front().pkt.psn);
  rc_arm_timer();
}

void Qp::rc_retransmit_from(Psn psn) {
  for (std::size_t i = 0; i < rc_unacked_.size(); ++i) {
    const Unacked& u = rc_unacked_[i];
    if (u.pkt.psn < psn) continue;
    WirePacket copy = u.pkt;  // payload is a ref bump, not a byte copy
    send_packet(std::move(copy), /*count_retransmission=*/true);
  }
  if (rc_timer_.valid()) {
    nic_.simulator().cancel(rc_timer_);
    rc_timer_ = {};
  }
  rc_arm_timer();
}

}  // namespace sdr::verbs
