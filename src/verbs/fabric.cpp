#include "verbs/fabric.hpp"

namespace sdr::verbs {

Nic* Fabric::add_nic() {
  nics_.push_back(std::make_unique<Nic>(
      sim_, static_cast<NicId>(nics_.size() + 1)));
  return nics_.back().get();
}

void Fabric::connect(Nic* a, Nic* b, const LinkOptions& options) {
  auto build_direction = [&](Nic* src, Nic* dst, double p_drop) {
    std::vector<sim::Channel*> paths;
    paths.reserve(options.paths);
    for (std::size_t k = 0; k < options.paths; ++k) {
      sim::Channel::Config cfg = options.config;
      cfg.extra_delay_s += static_cast<double>(k) * options.path_skew_s;
      cfg.seed = link_seed_++;
      channels_.push_back(std::make_unique<sim::Channel>(
          sim_, cfg, std::make_unique<sim::IidDrop>(p_drop)));
      sim::Channel* ch = channels_.back().get();
      ch->set_receiver(
          [dst](sim::Packet&& packet) { dst->deliver(std::move(packet)); });
      paths.push_back(ch);
    }
    if (paths.size() == 1) {
      src->add_route(dst->id(), paths.front());
    } else {
      src->add_multipath_route(dst->id(), std::move(paths));
    }
  };
  build_direction(a, b, options.p_drop_forward);
  build_direction(b, a, options.p_drop_backward);
}

std::vector<Nic*> Fabric::make_ring(std::size_t n,
                                    const LinkOptions& options) {
  std::vector<Nic*> ring;
  ring.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ring.push_back(add_nic());
  for (std::size_t i = 0; i < n; ++i) {
    connect(ring[i], ring[(i + 1) % n], options);
  }
  return ring;
}

std::vector<Nic*> Fabric::make_full_mesh(std::size_t n,
                                         const LinkOptions& options) {
  std::vector<Nic*> mesh;
  mesh.reserve(n);
  for (std::size_t i = 0; i < n; ++i) mesh.push_back(add_nic());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      connect(mesh[i], mesh[j], options);
    }
  }
  return mesh;
}

std::vector<Nic*> Fabric::make_star(std::size_t leaves,
                                    const LinkOptions& options) {
  std::vector<Nic*> star;
  star.reserve(leaves + 1);
  star.push_back(add_nic());  // hub first
  for (std::size_t i = 0; i < leaves; ++i) {
    star.push_back(add_nic());
    connect(star.front(), star.back(), options);
  }
  return star;
}

}  // namespace sdr::verbs
