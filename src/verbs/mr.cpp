#include "verbs/mr.hpp"

namespace sdr::verbs {

Status IndirectMkeyTable::bind(std::size_t slot, const MemoryRegion* mr,
                               std::uint64_t base) {
  if (slot >= slots_.size()) {
    return Status(StatusCode::kOutOfRange, "indirect table slot out of range");
  }
  // MRs smaller than the slot are allowed: accesses beyond the MR end fail
  // at resolve time, matching hardware where the mkey context carries the
  // region length.
  slots_[slot] = Slot{mr, base};
  return Status::ok();
}

Status IndirectMkeyTable::bind_null(std::size_t slot,
                                    const MemoryRegion* null_mr) {
  if (slot >= slots_.size()) {
    return Status(StatusCode::kOutOfRange, "indirect table slot out of range");
  }
  slots_[slot] = Slot{null_mr, 0};
  return Status::ok();
}

ResolvedAccess IndirectMkeyTable::resolve(std::uint64_t offset,
                                          std::size_t len) const {
  const std::size_t slot = offset / slot_size_;
  if (slot >= slots_.size()) return ResolvedAccess{nullptr, false, false};
  const Slot& s = slots_[slot];
  if (s.mr == nullptr) return ResolvedAccess{nullptr, false, false};
  if (s.mr->is_null()) return ResolvedAccess{nullptr, true, true};
  const std::uint64_t within = offset - slot * slot_size_;
  // Accesses must not straddle a slot boundary and must fit in the MR.
  if (within + len > slot_size_) return ResolvedAccess{nullptr, false, false};
  if (!s.mr->contains(s.base + within, len)) {
    return ResolvedAccess{nullptr, false, false};
  }
  return ResolvedAccess{s.mr->addr() + s.base + within, true, false};
}

const MemoryRegion* ProtectionDomain::register_mr(std::uint8_t* addr,
                                                  std::size_t length) {
  const MemoryKey lkey = next_key_++;
  const MemoryKey rkey = next_key_++;
  auto mr = std::make_unique<MemoryRegion>(lkey, rkey, addr, length, false);
  const MemoryRegion* raw = mr.get();
  mrs_.emplace(rkey, std::move(mr));
  return raw;
}

const MemoryRegion* ProtectionDomain::alloc_null_mr() {
  const MemoryKey lkey = next_key_++;
  const MemoryKey rkey = next_key_++;
  auto mr = std::make_unique<MemoryRegion>(lkey, rkey, nullptr, 0, true);
  const MemoryRegion* raw = mr.get();
  mrs_.emplace(rkey, std::move(mr));
  return raw;
}

IndirectMkeyTable* ProtectionDomain::create_indirect_table(
    std::size_t slot_count, std::size_t slot_size) {
  const MemoryKey key = next_key_++;
  auto table = std::make_unique<IndirectMkeyTable>(key, slot_count, slot_size);
  IndirectMkeyTable* raw = table.get();
  tables_.emplace(key, std::move(table));
  return raw;
}

Status ProtectionDomain::deregister_mr(const MemoryRegion* mr) {
  if (mr == nullptr) return Status(StatusCode::kInvalidArgument, "null MR");
  const auto it = mrs_.find(mr->rkey());
  if (it == mrs_.end()) return Status(StatusCode::kNotFound, "unknown MR");
  mrs_.erase(it);
  return Status::ok();
}

ResolvedAccess ProtectionDomain::resolve(MemoryKey rkey, std::uint64_t offset,
                                         std::size_t len) const {
  if (const auto mit = mrs_.find(rkey); mit != mrs_.end()) {
    const MemoryRegion& mr = *mit->second;
    if (mr.is_null()) return ResolvedAccess{nullptr, true, true};
    if (!mr.contains(offset, len)) return ResolvedAccess{nullptr, false, false};
    return ResolvedAccess{mr.addr() + offset, true, false};
  }
  if (const auto tit = tables_.find(rkey); tit != tables_.end()) {
    return tit->second->resolve(offset, len);
  }
  return ResolvedAccess{nullptr, false, false};
}

const MemoryRegion* ProtectionDomain::find_by_lkey(MemoryKey lkey) const {
  for (const auto& [rkey, mr] : mrs_) {
    if (mr->lkey() == lkey) return mr.get();
  }
  return nullptr;
}

}  // namespace sdr::verbs
