// Fabric: a topology builder for multi-NIC simulations.
//
// Owns NICs and the duplex links between them, wires channel receivers to
// NIC delivery, and supports ECMP-style multi-path trunks between a pair of
// NICs (paper §3.4.1: "by spreading traffic across channel QPs, SDR could
// leverage intra-datacenter multi-pathing (e.g., ECMP) and multi-plane
// networks"). Each path of a trunk is an independent channel — its own
// serializer, loss state and (optionally skewed) delay — so multi-path
// reordering emerges naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/drop_model.hpp"
#include "sim/simulator.hpp"
#include "verbs/nic.hpp"

namespace sdr::verbs {

class Fabric {
 public:
  explicit Fabric(sim::Simulator& simulator) : sim_(simulator) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Create a NIC (ids assigned 1, 2, ...).
  Nic* add_nic();
  Nic* nic(std::size_t index) { return nics_[index].get(); }
  std::size_t nic_count() const { return nics_.size(); }

  struct LinkOptions {
    sim::Channel::Config config{};
    double p_drop_forward{0.0};
    double p_drop_backward{0.0};
    /// Number of parallel paths (1 = plain duplex link).
    std::size_t paths{1};
    /// Per-path extra one-way delay skew: path k gets +k*path_skew_s.
    double path_skew_s{0.0};
  };

  /// Connect two NICs bidirectionally (each direction gets `paths`
  /// channels; flows are spread by the NIC's ECMP hash).
  void connect(Nic* a, Nic* b, const LinkOptions& options);

  /// Every channel the fabric owns (one per direction per path), in
  /// creation order — fleet rollups aggregate drop/backlog stats from it.
  const std::vector<std::unique_ptr<sim::Channel>>& channels() const {
    return channels_;
  }

  /// Convenience topologies. Returned NICs are owned by the fabric.
  std::vector<Nic*> make_ring(std::size_t n, const LinkOptions& options);
  std::vector<Nic*> make_full_mesh(std::size_t n, const LinkOptions& options);
  std::vector<Nic*> make_star(std::size_t leaves, const LinkOptions& options);

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<sim::Channel>> channels_;
  std::uint64_t link_seed_{0x7ab71c};
};

}  // namespace sdr::verbs
