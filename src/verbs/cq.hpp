// Completion queue: a bounded ring of CQEs.
//
// SDR's receive backend consumes one CQE per arriving packet (paper §3.2.4);
// DPA worker threads poll dedicated CQs per channel (§3.4.1). The sim-side
// CQ here is single-threaded; the threaded data path uses dpa::CompletionRing.
//
// Storage is a power-of-two ring, not a deque: steady state pushes and
// batched polls touch no allocator. The ring starts small and doubles
// lazily up to the configured capacity, so a 64 Ki-entry CQ costs nothing
// until a burst actually needs the depth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "verbs/types.hpp"

namespace sdr::verbs {

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  /// Completion-channel analog: `fn` runs after each push. The SDR runtime
  /// uses it to drain CQEs event-driven inside the simulator instead of
  /// busy polling (which has no meaning in virtual time).
  void set_notify(std::function<void()> fn) { notify_ = std::move(fn); }

  /// Push a completion; drops (and counts) on overrun like real hardware
  /// raising a CQ error.
  void push(const Cqe& cqe) {
    const std::size_t count = tail_ - head_;
    if (count >= capacity_) {
      ++overruns_;
      return;
    }
    if (count == ring_.size()) grow();
    ring_[tail_ & mask_] = cqe;
    ++tail_;
    if (notify_) notify_();
  }

  /// Poll up to `max` completions (ibv_poll_cq semantics): one batched
  /// drain, no per-entry bookkeeping.
  std::size_t poll(Cqe* out, std::size_t max) {
    std::size_t n = tail_ - head_;
    if (n > max) n = max;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = ring_[(head_ + i) & mask_];
    }
    head_ += n;
    return n;
  }

  std::optional<Cqe> poll_one() {
    if (head_ == tail_) return std::nullopt;
    const Cqe cqe = ring_[head_ & mask_];
    ++head_;
    return cqe;
  }

  /// Pre-grow the ring to hold `n` entries (clamped to the configured
  /// capacity) so the first completions on a fresh CQ do not pay the
  /// initial growth inside the measured data path. Lazy doubling still
  /// covers bursts beyond the pre-sized depth.
  void reserve(std::size_t n) {
    if (n > capacity_) n = capacity_;
    while (ring_.size() < n) grow();
  }

  std::size_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t overruns() const { return overruns_; }

 private:
  void grow() {
    const std::size_t old_size = ring_.size();
    const std::size_t new_size = old_size == 0 ? 64 : old_size * 2;
    std::vector<Cqe> next(new_size);
    for (std::size_t i = head_; i != tail_; ++i) {
      next[i & (new_size - 1)] = ring_[i & mask_];
    }
    ring_ = std::move(next);
    mask_ = new_size - 1;
  }

  std::size_t capacity_;
  std::vector<Cqe> ring_;
  std::size_t mask_{0};
  std::uint64_t head_{0};
  std::uint64_t tail_{0};
  std::uint64_t overruns_{0};
  std::function<void()> notify_;
};

}  // namespace sdr::verbs
