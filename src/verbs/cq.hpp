// Completion queue: a bounded ring of CQEs.
//
// SDR's receive backend consumes one CQE per arriving packet (paper §3.2.4);
// DPA worker threads poll dedicated CQs per channel (§3.4.1). The sim-side
// CQ here is single-threaded; the threaded data path uses dpa::CompletionRing.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "verbs/types.hpp"

namespace sdr::verbs {

class CompletionQueue {
 public:
  explicit CompletionQueue(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  /// Completion-channel analog: `fn` runs after each push. The SDR runtime
  /// uses it to drain CQEs event-driven inside the simulator instead of
  /// busy polling (which has no meaning in virtual time).
  void set_notify(std::function<void()> fn) { notify_ = std::move(fn); }

  /// Push a completion; drops (and counts) on overrun like real hardware
  /// raising a CQ error.
  void push(const Cqe& cqe) {
    if (entries_.size() >= capacity_) {
      ++overruns_;
      return;
    }
    entries_.push_back(cqe);
    if (notify_) notify_();
  }

  /// Poll up to `max` completions (ibv_poll_cq semantics).
  std::size_t poll(Cqe* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && !entries_.empty()) {
      out[n++] = entries_.front();
      entries_.pop_front();
    }
    return n;
  }

  std::optional<Cqe> poll_one() {
    if (entries_.empty()) return std::nullopt;
    Cqe cqe = entries_.front();
    entries_.pop_front();
    return cqe;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t overruns() const { return overruns_; }

 private:
  std::size_t capacity_;
  std::deque<Cqe> entries_;
  std::uint64_t overruns_{0};
  std::function<void()> notify_;
};

}  // namespace sdr::verbs
