#include "verbs/nic_model.hpp"

#include <utility>

#include "verbs/nic.hpp"
#include "verbs/qp.hpp"

namespace sdr::verbs {

Injector::Injector(Nic& nic, Qp& qp, const NicCaps& caps)
    : nic_(nic),
      qp_(qp),
      caps_(caps),
      write_bucket_(caps.write_ops_per_s, caps.burst_ops),
      send_bucket_(caps.send_ops_per_s, caps.burst_ops) {
  if (caps_.doorbell_batch == 0) caps_.doorbell_batch = 1;
  if (telemetry::enabled()) register_metrics();
}

Injector::~Injector() {
  if (drain_event_.valid()) nic_.simulator().cancel(drain_event_);
}

void Injector::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("verbs.injector"));
  tele_.bind_counter("posted_packets", &stats_.posted_packets);
  tele_.bind_counter("doorbells_rung", &stats_.doorbells_rung);
  tele_.bind_counter("sq_full_waits", &stats_.sq_full_waits);
  tele_.bind_counter("token_bucket_waits", &stats_.token_bucket_waits);
  tele_.bind_gauge("sq_outstanding", [this] {
    return static_cast<double>(pending_.size() + outstanding_.size());
  });
}

SimTime Injector::admit(bool is_send_verb) {
  SimTime t = nic_.simulator().now();
  if (post_ready_at_ > t) t = post_ready_at_;

  // SQ-depth backpressure: entries whose wire frontier has passed are
  // complete; if the queue is still full the injection clock waits for the
  // oldest outstanding entry.
  if (caps_.sq_depth > 0) {
    while (!outstanding_.empty() && outstanding_.front() <= t) {
      outstanding_.pop_front();
    }
    if (pending_.size() + outstanding_.size() >= caps_.sq_depth) {
      ++stats_.sq_full_waits;
      if (!outstanding_.empty()) {
        t = outstanding_.front();
        outstanding_.pop_front();
      }
    }
  }

  // Doorbell is paid by the first descriptor of each batch; the batch
  // boundary is the post_chain length. (Simplification: a batch is `doorbell
  // _batch` consecutive posts rather than an explicit flush call — the
  // amortization factor is identical for back-to-back posting.)
  if (descs_since_doorbell_ == 0) {
    t += SimTime::from_seconds(caps_.pcie_doorbell_s);
    ++stats_.doorbells_rung;
  }
  if (++descs_since_doorbell_ >= caps_.doorbell_batch) {
    descs_since_doorbell_ = 0;
  }
  t += SimTime::from_seconds(caps_.pcie_desc_s);

  TokenBucket& bucket = is_send_verb ? send_bucket_ : write_bucket_;
  const SimTime paced = bucket.acquire(1.0, t);
  if (paced > t) {
    ++stats_.token_bucket_waits;
    t = paced;
  }

  post_ready_at_ = t;
  return t;
}

void Injector::post(WirePacket&& pkt, bool is_send_verb) {
  const SimTime release = admit(is_send_verb);
  ++stats_.posted_packets;
  Pending entry;
  entry.pkt = std::move(pkt);
  entry.release = release;
  const bool idle = pending_.empty();
  pending_.push_back(std::move(entry));
  if (idle) arm(release);
}

void Injector::attach_completion(std::uint64_t wr_id, std::uint32_t bytes) {
  if (pending_.empty()) return;  // drained already: nothing outstanding
  Pending& last = pending_[pending_.size() - 1];
  last.wr_id = wr_id;
  last.bytes = bytes;
  last.signaled = true;
}

void Injector::arm(SimTime at) {
  if (drain_event_.valid()) return;
  sim::Simulator& sim = nic_.simulator();
  const SimTime now = sim.now();
  const SimTime delta = at > now ? at - now : SimTime::zero();
  drain_event_ = sim.schedule(delta, [this] {
    drain_event_ = {};
    drain();
  });
}

void Injector::drain() {
  sim::Simulator& sim = nic_.simulator();
  const SimTime now = sim.now();
  while (!pending_.empty() && pending_.front().release <= now) {
    Pending entry = std::move(pending_.front());
    pending_.pop_front();

    const NicId dst_nic = entry.pkt.dst_nic;
    const QpNumber src_qp = entry.pkt.src_qp;
    const QpNumber dst_qp = entry.pkt.dst_qp;
    nic_.send_packet(std::move(entry.pkt));

    // Wire-completion frontier: when this packet's last bit leaves the
    // sender (the channel's serializer), the work request is off the SQ.
    // Clamped monotone so the outstanding ring stays ordered even when a
    // UD QP addresses several destinations.
    sim::Channel* ch = nic_.route_to(dst_nic, src_qp, dst_qp);
    SimTime frontier = ch != nullptr ? ch->next_free() : now;
    if (!outstanding_.empty() && frontier < outstanding_[outstanding_.size() - 1]) {
      frontier = outstanding_[outstanding_.size() - 1];
    }
    outstanding_.push_back(frontier);

    if (entry.signaled) {
      Qp* qp = &qp_;
      const std::uint64_t wr_id = entry.wr_id;
      const std::uint32_t bytes = entry.bytes;
      sim.schedule_at(frontier, [qp, wr_id, bytes] {
        qp->complete_send(wr_id, bytes, WcStatus::kSuccess);
      });
    }
  }
  if (!pending_.empty()) arm(pending_.front().release);
}

}  // namespace sdr::verbs
