// Wire-level and API-level types of the software RDMA device.
//
// This module is a faithful software model of the subset of the Verbs
// contract the SDR middleware consumes (paper §2.3): Unreliable Datagram
// (UD), Unreliable Connected (UC) and Reliable Connection (RC) queue pairs,
// RDMA Write-with-immediate, completion queues with 32-bit immediate data,
// memory regions including the NULL memory region
// (ibv_alloc_null_mr-equivalent), and indirect memory keys.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/payload_pool.hpp"

namespace sdr::verbs {

using QpNumber = std::uint32_t;
using NicId = std::uint32_t;
using MemoryKey = std::uint32_t;
using Psn = std::uint32_t;  // packet sequence number (24-bit on real wire)

inline constexpr std::size_t kDefaultMtu = 4096;
/// Per-packet wire overhead: Eth(14+4) + IP(20) + UDP(8) + BTH(12) +
/// RETH/IMM(16+4) + ICRC(4) ~= 82; we round to 84 to include preamble/IFG
/// amortization. Used for goodput accounting.
inline constexpr std::size_t kPacketHeaderBytes = 84;

enum class QpType : std::uint8_t { kUD, kUC, kRC };

enum class Opcode : std::uint8_t {
  kWriteOnly,        // single-packet RDMA Write
  kWriteOnlyImm,     // single-packet RDMA Write with immediate
  kWriteFirst,       // multi-packet Write: first packet (carries RETH)
  kWriteMiddle,
  kWriteLast,
  kWriteLastImm,
  kSendOnly,         // two-sided send (UD / RC), single packet
  kSendOnlyImm,
  kAck,              // RC acknowledgment
  kNak,              // RC negative acknowledgment (PSN gap)
};

constexpr bool is_write_start(Opcode op) {
  return op == Opcode::kWriteOnly || op == Opcode::kWriteOnlyImm ||
         op == Opcode::kWriteFirst;
}
constexpr bool is_write_end(Opcode op) {
  return op == Opcode::kWriteOnly || op == Opcode::kWriteOnlyImm ||
         op == Opcode::kWriteLast || op == Opcode::kWriteLastImm;
}
constexpr bool carries_imm(Opcode op) {
  return op == Opcode::kWriteOnlyImm || op == Opcode::kWriteLastImm ||
         op == Opcode::kSendOnlyImm;
}

/// One packet on the simulated wire. Payload bytes are carried by
/// reference (common::PayloadRef): RDMA Writes borrow a slice of the
/// registered source buffer directly (zero-copy, like the DMA engine the
/// paper's NIC uses), two-sided sends hold a pooled refcounted copy.
/// Duplicating the packet — channel duplication, the RC retransmit queue —
/// duplicates the reference, never the bytes.
struct WirePacket {
  NicId dst_nic{0};
  QpNumber dst_qp{0};
  QpNumber src_qp{0};
  Psn psn{0};
  Opcode opcode{Opcode::kWriteOnly};
  std::uint32_t imm{0};
  // RDMA Write addressing (RETH): target memory key and offset within it.
  MemoryKey rkey{0};
  std::uint64_t remote_offset{0};
  common::PayloadRef payload;
};

enum class WcStatus : std::uint8_t {
  kSuccess = 0,
  kLocalProtectionError,  // bad lkey / out-of-range local access
  kRemoteAccessError,     // bad rkey / out-of-range remote access
  kRetryExceeded,         // RC gave up retransmitting
  kFlushed,               // QP destroyed with outstanding work
};

/// Completion queue entry. `imm_valid` distinguishes Write (no consumer-side
/// CQE on real hardware) from Write-with-immediate.
struct Cqe {
  std::uint64_t wr_id{0};
  QpNumber qp{0};
  QpNumber src_qp{0};
  WcStatus status{WcStatus::kSuccess};
  std::uint32_t byte_len{0};
  std::uint32_t imm{0};
  bool imm_valid{false};
  bool is_recv{false};
};

/// Send work request: RDMA Write [with immediate] of a local buffer span to
/// (rkey, remote_offset) on the connected peer.
struct WriteWr {
  std::uint64_t wr_id{0};
  const std::uint8_t* local_addr{nullptr};
  std::size_t length{0};
  MemoryKey rkey{0};
  std::uint64_t remote_offset{0};
  bool with_imm{false};
  std::uint32_t imm{0};
  bool signaled{true};
};

/// Two-sided send (UD / RC): at most one MTU of payload.
/// `dst_nic`/`dst_qp` address the datagram for UD queue pairs and are
/// ignored on connected (UC/RC) queue pairs.
struct SendWr {
  std::uint64_t wr_id{0};
  const std::uint8_t* local_addr{nullptr};
  std::size_t length{0};
  bool with_imm{false};
  std::uint32_t imm{0};
  bool signaled{true};
  NicId dst_nic{0};
  QpNumber dst_qp{0};
};

/// Receive work request (UD / RC send consumers).
struct RecvWr {
  std::uint64_t wr_id{0};
  std::uint8_t* addr{nullptr};
  std::size_t length{0};
};

}  // namespace sdr::verbs
