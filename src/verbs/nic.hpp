// The software NIC: owns QPs, a protection domain, and routes packets
// between the simulator channels and the QPs.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "verbs/mr.hpp"
#include "verbs/qp.hpp"
#include "verbs/types.hpp"

namespace sdr::verbs {

class Nic {
 public:
  Nic(sim::Simulator& simulator, NicId id);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  NicId id() const { return id_; }
  sim::Simulator& simulator() { return sim_; }
  ProtectionDomain& pd() { return pd_; }

  Qp* create_qp(const QpConfig& config);
  Qp* find_qp(QpNumber num);
  void destroy_qp(QpNumber num);

  /// Route packets destined to `remote` through `tx`. The channel's
  /// receiver callback must be wired to the remote NIC's deliver().
  void add_route(NicId remote, sim::Channel* tx);

  /// ECMP-style multi-path route (paper §3.4.1): packets are spread over
  /// `paths` by a flow hash of (src QP, dst QP), so each QP pair stays on
  /// one path (in-order per flow) while different channel QPs fan out
  /// across paths.
  void add_multipath_route(NicId remote, std::vector<sim::Channel*> paths);

  /// The path a given flow would take (single-path routes return it).
  sim::Channel* route_to(NicId remote, QpNumber src_qp = 0,
                         QpNumber dst_qp = 0) const;

  /// Hand a wire packet to the fabric (serialization/drop handled by the
  /// channel). Packets to unknown destinations are counted and dropped.
  void send_packet(WirePacket&& pkt);

  /// Channel delivery entry point.
  void deliver(sim::Packet&& packet);

  std::uint64_t unroutable_packets() const { return unroutable_; }
  std::uint64_t unknown_qp_packets() const { return unknown_qp_; }

 private:
  sim::Simulator& sim_;
  NicId id_;
  ProtectionDomain pd_;
  QpNumber next_qp_num_{0x100};
  std::unordered_map<QpNumber, std::unique_ptr<Qp>> qps_;
  std::unordered_map<NicId, std::vector<sim::Channel*>> routes_;
  std::uint64_t unroutable_{0};
  std::uint64_t unknown_qp_{0};
};

/// Convenience: build two NICs connected by a duplex link with i.i.d. loss.
struct NicPair {
  std::unique_ptr<Nic> a;
  std::unique_ptr<Nic> b;
  std::unique_ptr<sim::DuplexLink> link;
};

NicPair make_connected_pair(sim::Simulator& simulator,
                            sim::Channel::Config config, double p_drop_fwd,
                            double p_drop_bwd = 0.0);

}  // namespace sdr::verbs
