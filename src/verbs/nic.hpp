// The software NIC: owns QPs, a protection domain, and routes packets
// between the simulator channels and the QPs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/mr.hpp"
#include "verbs/nic_model.hpp"
#include "verbs/qp.hpp"
#include "verbs/types.hpp"

namespace sdr::verbs {

/// QP numbers are assigned sequentially from this base and never reused, so
/// `num - kFirstQpNumber` indexes a dense table: the per-packet lookup on
/// the fleet fan-in path (thousands of QPs per NIC) is one bounds check and
/// one load instead of a hash probe.
inline constexpr QpNumber kFirstQpNumber = 0x100;

class Nic {
 public:
  Nic(sim::Simulator& simulator, NicId id);
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  NicId id() const { return id_; }
  sim::Simulator& simulator() { return sim_; }
  ProtectionDomain& pd() { return pd_; }

  /// Injection resource model (nic_model.hpp). Set caps before creating
  /// QPs: each QP snapshots them at construction, like hardware context
  /// init. Default caps leave the model disabled (infinitely fast posting).
  void set_caps(const NicCaps& caps) { caps_ = caps; }
  const NicCaps& caps() const { return caps_; }

  Qp* create_qp(const QpConfig& config);
  Qp* find_qp(QpNumber num);
  void destroy_qp(QpNumber num);

  /// Route packets destined to `remote` through `tx`. The channel's
  /// receiver callback must be wired to the remote NIC's deliver().
  void add_route(NicId remote, sim::Channel* tx);

  /// ECMP-style multi-path route (paper §3.4.1): packets are spread over
  /// `paths` by a flow hash of (src QP, dst QP), so each QP pair stays on
  /// one path (in-order per flow) while different channel QPs fan out
  /// across paths.
  void add_multipath_route(NicId remote, std::vector<sim::Channel*> paths);

  /// The path a given flow would take (single-path routes return it).
  sim::Channel* route_to(NicId remote, QpNumber src_qp = 0,
                         QpNumber dst_qp = 0) const;

  /// Hand a wire packet to the fabric (serialization/drop handled by the
  /// channel). Packets to unknown destinations are counted and dropped.
  void send_packet(WirePacket&& pkt);

  /// Channel delivery entry point.
  void deliver(sim::Packet&& packet);

  std::uint64_t unroutable_packets() const { return unroutable_; }
  std::uint64_t unknown_qp_packets() const { return unknown_qp_; }
  std::size_t qp_count() const { return live_qps_; }

 private:
  void register_metrics();

  sim::Simulator& sim_;
  NicId id_;
  ProtectionDomain pd_;
  NicCaps caps_;
  QpNumber next_qp_num_{kFirstQpNumber};
  // Dense QPN-indexed table: slot i holds QP number kFirstQpNumber + i.
  // Destroyed QPs null their slot (numbers are never reused), so a late
  // packet for a dead QP still resolves to "unknown" in O(1).
  std::vector<std::unique_ptr<Qp>> qps_;
  std::size_t live_qps_{0};
  // Dense NicId-indexed route table: every topology in the repo (pairs,
  // rings, meshes, stars, fleets) numbers NICs with small sequential ids.
  std::vector<std::vector<sim::Channel*>> routes_;
  std::uint64_t unroutable_{0};
  std::uint64_t unknown_qp_{0};
  telemetry::Scope tele_;  // last member: unbinds before counters die
};

/// Convenience: build two NICs connected by a duplex link with i.i.d. loss.
struct NicPair {
  std::unique_ptr<Nic> a;
  std::unique_ptr<Nic> b;
  std::unique_ptr<sim::DuplexLink> link;
};

NicPair make_connected_pair(sim::Simulator& simulator,
                            sim::Channel::Config config, double p_drop_fwd,
                            double p_drop_bwd = 0.0);

}  // namespace sdr::verbs
