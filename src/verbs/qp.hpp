// Queue pairs: UD, UC and RC transports of the software RDMA device.
//
// Semantics reproduced from the paper's analysis (§2.3, §3.2.1):
//  * UD  — per-packet two-sided datagrams; receiver consumes posted recv
//          buffers; out-of-order arrival is the application's problem.
//  * UC  — unreliable multi-packet Writes with an expected PSN (ePSN): if a
//          packet's PSN mismatches the ePSN mid-message, the REST of that
//          message is silently discarded and no CQE is raised — the exact
//          behaviour that forces the SDR backend to send one
//          Write-with-immediate per packet.
//  * RC  — reliable connection with Go-Back-N retransmission (ACK/NAK +
//          retransmission timeout), the commodity-NIC baseline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/ring_buffer.hpp"
#include "common/status.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/cq.hpp"
#include "verbs/mr.hpp"
#include "verbs/types.hpp"

namespace sdr::verbs {

class Injector;
class Nic;

/// RC retransmission algorithm implemented "in the ASIC" (paper §1/§2.2:
/// commodity NICs ship Go-Back-N or Selective Repeat).
///  * kGoBackN          — receiver drops out-of-order packets, NAK rewinds
///                        the sender to the expected PSN.
///  * kSelectiveRepeat  — receiver places out-of-order packets (every
///                        packet carries its own RETH offset), NAKs name
///                        the first missing PSN and the sender retransmits
///                        only that packet (IRN/SRNIC-style).
enum class RcMode : std::uint8_t { kGoBackN, kSelectiveRepeat };

struct QpConfig {
  QpType type{QpType::kUC};
  std::size_t mtu{kDefaultMtu};
  CompletionQueue* send_cq{nullptr};
  CompletionQueue* recv_cq{nullptr};
  // RC reliability knobs (ignored by UD/UC).
  RcMode rc_mode{RcMode::kGoBackN};
  double rc_ack_timeout_s{0.1};   // retransmission timeout
  int rc_retry_limit{7};
  std::uint32_t rc_ack_every{16}; // receiver ACK coalescing factor
};

struct QpStats {
  std::uint64_t packets_sent{0};
  std::uint64_t packets_received{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t messages_dropped_epsn{0};  // UC whole-message drops
  std::uint64_t packets_discarded{0};      // recv-side discards
  std::uint64_t rc_retransmissions{0};
  std::uint64_t rc_naks_sent{0};
  std::uint64_t remote_access_errors{0};
};

class Qp {
 public:
  Qp(Nic& nic, QpNumber num, QpConfig config);
  ~Qp();
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  QpNumber num() const { return num_; }
  QpType type() const { return config_.type; }
  std::size_t mtu() const { return config_.mtu; }
  const QpStats& stats() const { return stats_; }
  Nic& nic() { return nic_; }

  /// The injection pipeline modeling this QP's posting path; null when the
  /// owning NIC's caps leave the resource model disabled (the default).
  Injector* injector() { return injector_.get(); }

  /// Connect to a remote QP (no-op requirement for UD, which addresses
  /// per-send; still records a default destination).
  Status connect(NicId remote_nic, QpNumber remote_qp);
  bool connected() const { return connected_; }

  /// RDMA Write [with immediate]. UC/RC only.
  Status post_write(const WriteWr& wr);

  /// Two-sided send. UD (addressed) or RC (connected).
  Status post_send(const SendWr& wr);

  /// Post a receive buffer for two-sided receives.
  Status post_recv(const RecvWr& wr);

  /// Packet entry point, invoked by the owning NIC.
  void on_packet(WirePacket&& pkt);

 private:
  friend class Injector;  // delivers deferred signaled send completions

  // ---- send side ----
  Status validate_write(const WriteWr& wr) const;
  void emit_packets_for_write(const WriteWr& wr);
  void send_packet(WirePacket&& pkt, bool count_retransmission = false);
  void complete_send(std::uint64_t wr_id, std::uint32_t bytes, WcStatus status);

  // ---- receive side ----
  void receive_ud(WirePacket&& pkt);
  void receive_uc(WirePacket&& pkt);
  void receive_rc(WirePacket&& pkt);
  void place_write_payload(const WirePacket& pkt, bool& access_ok);
  void deliver_recv_cqe(const WirePacket& pkt, std::uint32_t bytes);

  // ---- RC reliability ----
  struct Unacked {
    WirePacket pkt;                 // retransmission copy
    std::uint64_t wr_id{0};
    bool last_of_wr{false};
    bool signaled{false};
  };
  void rc_handle_ack(Psn acked_up_to);
  void rc_handle_nak(Psn expected);
  void rc_arm_timer();
  void rc_on_timeout();
  void rc_retransmit_from(Psn psn);
  void rc_receiver_maybe_ack(bool force);

  Nic& nic_;
  QpNumber num_;
  QpConfig config_;
  QpStats stats_;
  // Injection resource model (nic_model.hpp); built only when the owning
  // NIC's caps enable it, so the default egress path is unchanged.
  std::unique_ptr<Injector> injector_;

  bool connected_{false};
  NicId remote_nic_{0};
  QpNumber remote_qp_{0};

  Psn next_psn_{0};  // sender PSN

  // UC receiver message state.
  Psn epsn_{0};
  bool uc_dropping_{false};           // discarding remainder of a message
  bool uc_in_message_{false};
  std::uint8_t* uc_write_cursor_{nullptr};
  bool uc_write_discard_{false};
  std::uint64_t uc_message_bytes_{0};

  // Two-sided receive queue.
  common::RingBuffer<RecvWr> recv_queue_;

  // RC sender state. Ring (not deque): the push/pop-per-packet window must
  // not touch the allocator in steady state, and popped entries release
  // their payload references immediately.
  common::RingBuffer<Unacked> rc_unacked_;
  Psn rc_acked_psn_{0};  // next PSN expected to be acked
  sim::EventId rc_timer_{};
  int rc_retries_{0};

  // RC receiver state.
  Psn rc_epsn_{0};
  std::uint32_t rc_unacked_count_{0};
  bool rc_nak_outstanding_{false};
  std::uint8_t* rc_write_cursor_{nullptr};
  bool rc_write_discard_{false};

  // RC Selective Repeat receiver state: PSNs received ahead of the
  // cumulative point, and completion entries awaiting in-order delivery.
  void rc_sr_receive(WirePacket&& pkt);
  void rc_place_by_offset(const WirePacket& pkt);
  std::unordered_set<Psn> rc_ooo_received_;
  std::map<Psn, Cqe> rc_pending_cqes_;

  void register_metrics();
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

}  // namespace sdr::verbs
