// NIC injection resource model: finite posting capacity for the software
// NIC.
//
// The rest of the verbs layer posts infinitely fast — a work request is on
// the wire the instant post_write/post_send returns, and the only pacing
// comes from channel serialization. That is fine for single-flow protocol
// studies but wrong for fleet scenarios, where hundreds of endpoints share
// one NIC and the *injection* path (PCIe descriptor fetches, doorbells, SQ
// depth, per-verb rate limits) is the contended resource. This model layers
// those costs in without touching the default path:
//
//  * PCIe posting cost      — every descriptor pays pcie_desc_s; the first
//                             descriptor of a doorbell batch also pays
//                             pcie_doorbell_s (MMIO write). Chained posts
//                             amortize the doorbell, exactly the post_chain
//                             optimization real verbs code uses.
//  * SQ-depth backpressure  — at most sq_depth work requests may be
//                             outstanding (posted but their last byte not
//                             yet on the wire). Posting into a full SQ
//                             blocks the injection clock until the oldest
//                             outstanding entry's wire-completion frontier
//                             passes.
//  * Per-verb token buckets — sustained message-rate limits per QP per verb
//                             class (one-sided writes vs two-sided sends),
//                             with a configurable burst. Models the NIC's
//                             processing-unit rate, which caps small-op
//                             throughput long before link bandwidth does.
//
// Everything is computed deterministically in virtual time: a post at sim
// time T is admitted at a release time derived only from (T, prior posts),
// parked in a per-QP ring, and handed to the NIC by a single
// self-rescheduling drain event — the same pattern sim::Channel uses for
// FIFO delivery. With NicCaps::enabled == false (the default) no Injector
// is built and the QP egress path is byte-for-byte the old one.
#pragma once

#include <cstdint>

#include "common/ring_buffer.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "verbs/types.hpp"

namespace sdr::verbs {

class Nic;
class Qp;

/// Injection capabilities of a NIC. Set on the Nic *before* creating QPs
/// (QPs snapshot the caps at construction, like hardware context init).
struct NicCaps {
  bool enabled{false};

  /// PCIe descriptor fetch/processing time per posted packet.
  double pcie_desc_s{16e-9};
  /// Doorbell MMIO cost, paid by the first descriptor of each batch.
  double pcie_doorbell_s{250e-9};
  /// Descriptors per doorbell (post_chain length); >= 1.
  std::uint32_t doorbell_batch{8};

  /// Max outstanding work requests per QP (posted, last byte not yet on
  /// the wire). 0 disables SQ backpressure.
  std::uint32_t sq_depth{256};

  /// Sustained per-QP posting rate for one-sided writes / two-sided sends,
  /// in packets per second. 0 = unlimited (bucket bypassed).
  double write_ops_per_s{0.0};
  double send_ops_per_s{0.0};
  /// Token-bucket burst allowance, in packets.
  double burst_ops{32.0};
};

/// Deterministic token bucket over virtual time. Tokens refill continuously
/// at `rate` up to `burst`; acquire() returns the earliest time at or after
/// `t` when `n` tokens are available and takes them (going momentarily
/// negative is not allowed — the caller's clock is pushed instead).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {}

  bool limited() const { return rate_ > 0.0; }

  SimTime acquire(double n, SimTime t) {
    if (!limited()) return t;
    refill(t);
    if (tokens_ >= n) {
      tokens_ -= n;
      return t;
    }
    const double wait_s = (n - tokens_) / rate_;
    tokens_ = 0.0;
    const SimTime ready = t + SimTime::from_seconds(wait_s);
    last_ = ready;
    return ready;
  }

  /// Token level if refilled to `t` (observer for tests; does not consume).
  double tokens_at(SimTime t) const {
    if (!limited()) return burst_;
    const double dt = (t - last_).seconds();
    const double level = tokens_ + (dt > 0.0 ? dt * rate_ : 0.0);
    return level > burst_ ? burst_ : level;
  }

 private:
  void refill(SimTime t) {
    if (t <= last_) return;
    tokens_ += (t - last_).seconds() * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = t;
  }

  double rate_{0.0};
  double burst_{0.0};
  double tokens_{0.0};
  SimTime last_{SimTime::zero()};
};

struct InjectorStats {
  std::uint64_t posted_packets{0};
  std::uint64_t doorbells_rung{0};
  std::uint64_t sq_full_waits{0};
  std::uint64_t token_bucket_waits{0};
};

/// Per-QP injection pipeline. First transmissions flow through post();
/// NIC-internal traffic (RC ACK/NAK, hardware retransmissions) bypasses it,
/// exactly as it bypasses the host posting path on real NICs.
class Injector {
 public:
  Injector(Nic& nic, Qp& qp, const NicCaps& caps);
  ~Injector();
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Admit one packet: compute its release time against the injection
  /// clock, park it, and arm the drain. `is_send_verb` selects the verb
  /// token bucket (two-sided send vs one-sided write).
  void post(WirePacket&& pkt, bool is_send_verb);

  /// Attach a signaled completion {wr_id, bytes} to the most recently
  /// posted packet: when that packet's last byte leaves the wire, the
  /// owning QP's send CQE fires. Replaces the post-time next_free()
  /// completion the unmodeled path schedules (the packet has not reached
  /// the channel yet when the post returns here).
  void attach_completion(std::uint64_t wr_id, std::uint32_t bytes);

  /// Injection clock: earliest admission time for the next post.
  SimTime post_ready_at() const { return post_ready_at_; }
  std::size_t pending() const { return pending_.size(); }
  const InjectorStats& stats() const { return stats_; }
  const TokenBucket& write_bucket() const { return write_bucket_; }
  const TokenBucket& send_bucket() const { return send_bucket_; }

 private:
  struct Pending {
    WirePacket pkt;
    SimTime release;
    std::uint64_t wr_id{0};
    std::uint32_t bytes{0};
    bool signaled{false};
  };

  SimTime admit(bool is_send_verb);
  void arm(SimTime at);
  void drain();
  void register_metrics();

  Nic& nic_;
  Qp& qp_;
  NicCaps caps_;
  TokenBucket write_bucket_;
  TokenBucket send_bucket_;
  SimTime post_ready_at_{SimTime::zero()};
  std::uint32_t descs_since_doorbell_{0};
  common::RingBuffer<Pending> pending_;
  // Wire-completion frontiers of in-flight work requests, monotone
  // non-decreasing; the front is the oldest outstanding entry.
  common::RingBuffer<SimTime> outstanding_;
  sim::EventId drain_event_{};
  InjectorStats stats_;
  telemetry::Scope tele_;  // last member: unbinds before stats_ dies
};

}  // namespace sdr::verbs
