#include "verbs/cq.hpp"

// CompletionQueue is header-only; this TU anchors the verbs library target.
