#include "verbs/nic.hpp"

#include <utility>
#include <variant>

#include "common/logging.hpp"

namespace sdr::verbs {

Nic::Nic(sim::Simulator& simulator, NicId id) : sim_(simulator), id_(id) {
  if (telemetry::enabled()) register_metrics();
}

void Nic::register_metrics() {
  auto& reg = telemetry::registry();
  tele_ = telemetry::Scope(reg, reg.instance_name("verbs.nic"));
  tele_.bind_counter("unroutable_packets", &unroutable_);
  tele_.bind_counter("unknown_qp_packets", &unknown_qp_);
}

Qp* Nic::create_qp(const QpConfig& config) {
  const QpNumber num = next_qp_num_++;
  auto qp = std::make_unique<Qp>(*this, num, config);
  Qp* raw = qp.get();
  qps_.push_back(std::move(qp));
  ++live_qps_;
  return raw;
}

Qp* Nic::find_qp(QpNumber num) {
  const QpNumber index = num - kFirstQpNumber;
  if (num < kFirstQpNumber || index >= qps_.size()) return nullptr;
  return qps_[index].get();
}

void Nic::destroy_qp(QpNumber num) {
  const QpNumber index = num - kFirstQpNumber;
  if (num < kFirstQpNumber || index >= qps_.size()) return;
  if (qps_[index] != nullptr) {
    qps_[index].reset();
    --live_qps_;
  }
}

void Nic::add_route(NicId remote, sim::Channel* tx) {
  add_multipath_route(remote, {tx});
}

void Nic::add_multipath_route(NicId remote,
                              std::vector<sim::Channel*> paths) {
  if (remote >= routes_.size()) routes_.resize(remote + 1);
  routes_[remote] = std::move(paths);
}

sim::Channel* Nic::route_to(NicId remote, QpNumber src_qp,
                            QpNumber dst_qp) const {
  if (remote >= routes_.size() || routes_[remote].empty()) return nullptr;
  const auto& paths = routes_[remote];
  if (paths.size() == 1) return paths.front();
  // ECMP flow hash: a QP pair is sticky to one path (per-flow ordering),
  // distinct QP pairs spread across paths. Fibonacci-style mixing keeps
  // adjacent QP numbers from clumping onto one path.
  const std::uint64_t flow =
      (static_cast<std::uint64_t>(src_qp) << 32) | dst_qp;
  const std::uint64_t h = flow * 0x9E3779B97F4A7C15ULL;
  return paths[(h >> 40) % paths.size()];
}

void Nic::send_packet(WirePacket&& pkt) {
  sim::Channel* channel = route_to(pkt.dst_nic, pkt.src_qp, pkt.dst_qp);
  if (channel == nullptr) {
    ++unroutable_;
    SDR_WARN("nic %u: no route to nic %u", id_, pkt.dst_nic);
    return;
  }
  sim::Packet wire;
  wire.bytes = pkt.payload.size() + kPacketHeaderBytes;
  wire.payload = std::move(pkt);
  channel->send(std::move(wire));
}

void Nic::deliver(sim::Packet&& packet) {
  auto* pkt = std::get_if<WirePacket>(&packet.payload);
  if (pkt == nullptr) {
    ++unknown_qp_;
    return;
  }
  Qp* qp = find_qp(pkt->dst_qp);
  if (qp == nullptr) {
    // Late packet for a destroyed QP — silently dropped, like hardware.
    ++unknown_qp_;
    return;
  }
  qp->on_packet(std::move(*pkt));
}

NicPair make_connected_pair(sim::Simulator& simulator,
                            sim::Channel::Config config, double p_drop_fwd,
                            double p_drop_bwd) {
  NicPair pair;
  pair.a = std::make_unique<Nic>(simulator, 1);
  pair.b = std::make_unique<Nic>(simulator, 2);
  pair.link = std::make_unique<sim::DuplexLink>(
      simulator, config, std::make_unique<sim::IidDrop>(p_drop_fwd),
      std::make_unique<sim::IidDrop>(p_drop_bwd));
  Nic* a = pair.a.get();
  Nic* b = pair.b.get();
  pair.link->forward().set_receiver(
      [b](sim::Packet&& p) { b->deliver(std::move(p)); });
  pair.link->backward().set_receiver(
      [a](sim::Packet&& p) { a->deliver(std::move(p)); });
  a->add_route(b->id(), &pair.link->forward());
  b->add_route(a->id(), &pair.link->backward());
  return pair;
}

}  // namespace sdr::verbs
