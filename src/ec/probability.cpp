#include "ec/probability.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sdr::ec {

namespace {

// std::lgamma writes the process-global `signgam` — a data race when
// parallel sweep trials evaluate completion models concurrently. The
// argument here is always x >= 1, where the gamma function is positive, so
// the sign output of the reentrant lgamma_r can be discarded.
double lgamma_threadsafe(double x) {
  int sign = 0;
  return ::lgamma_r(x, &sign);
}

}  // namespace

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return lgamma_threadsafe(static_cast<double>(n) + 1.0) -
         lgamma_threadsafe(static_cast<double>(k) + 1.0) -
         lgamma_threadsafe(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t x, double p) {
  if (x > n) return 0.0;
  if (p <= 0.0) return x == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return x == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, x) +
                         static_cast<double>(x) * std::log(p) +
                         static_cast<double>(n - x) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_cdf(std::uint64_t n, std::uint64_t x, double p) {
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return x >= n ? 1.0 : 0.0;
  x = std::min(x, n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= x; ++i) acc += binomial_pmf(n, i, p);
  return std::min(acc, 1.0);
}

double p_ec_mds(std::size_t k, std::size_t m, double p_drop) {
  return binomial_cdf(k + m, m, p_drop);
}

double p_ec_xor(std::size_t k, std::size_t m, double p_drop) {
  // n = chunks per modulo group: k/m data chunks + 1 parity chunk.
  const double n = static_cast<double>(k) / static_cast<double>(m) + 1.0;
  const double q = 1.0 - p_drop;
  const double group_ok =
      std::pow(q, n) + n * p_drop * std::pow(q, n - 1.0);
  return std::pow(std::min(group_ok, 1.0), static_cast<double>(m));
}

double chunk_drop_probability(double p_packet_drop, std::size_t packets) {
  // 1 - (1-p)^N computed via expm1/log1p for small p.
  return -std::expm1(static_cast<double>(packets) * std::log1p(-p_packet_drop));
}

}  // namespace sdr::ec
