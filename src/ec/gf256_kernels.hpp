// Vectorized GF(256) constant-multiply kernels with runtime ISA dispatch.
//
// The erasure-code hot loop is dst[i] (^)= c * src[i]. The scalar form is a
// dependent table load per byte; the vector form is the classic ISA-L
// split-table technique: write x = hi·16 + lo, then
//
//   c * x = Tlo_c[lo] ^ Thi_c[hi]
//
// where Tlo_c / Thi_c are 16-entry tables (c*0..c*15 and c*0x00,c*0x10,...,
// c*0xF0), applied to 16/32/64 lanes at once by PSHUFB / VPSHUFB /
// GF2P8AFFINEQB. The per-constant 2x16-byte tables are derived once from
// the exp/log tables at startup (8 KiB total — resident in L1 while
// encoding).
//
// Dispatch: one CPUID-based resolution at first use picks the best ISA the
// host supports (gfni > avx2 > ssse3 > scalar); the SDR_EC_ISA environment
// variable (scalar|ssse3|avx2|gfni|auto) overrides it for testing, falling
// back to scalar with a logged warning when the requested ISA is
// unavailable. All kernels produce byte-identical output — the property
// tests and the sdrcheck differential oracle enforce this exhaustively.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/cpu.hpp"

namespace sdr::ec {

enum class GfIsa : std::uint8_t {
  kScalar = 0,  // 256-byte row table, one load per byte
  kSsse3 = 1,   // 16-lane pshufb
  kAvx2 = 2,    // 32-lane vpshufb
  kGfni = 3,    // 64-lane gf2p8affineqb (needs avx512bw too)
};

/// A resolved kernel set. All three entry points require dst and src to be
/// non-overlapping; any alignment and any length are fine (vector kernels
/// handle the unaligned head/tail with scalar code).
struct GfKernels {
  GfIsa isa{GfIsa::kScalar};

  /// dst[i] ^= c * src[i].
  void (*mul_acc)(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t n);
  /// dst[i] = c * src[i].
  void (*mul_set)(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                  std::size_t n);
  /// Fused multi-row accumulate: dst[r][i] ^= coeffs[r] * src[i] for every
  /// r < rows. One pass over src feeds all rows (the source block is loaded
  /// once per register group instead of once per parity row) — the shape
  /// ReedSolomon::encode and the decode solve feed cache-blocked runs
  /// through. Rows with coefficient 0 are skipped.
  void (*mul_acc_multi)(std::uint8_t* const* dst, const std::uint8_t* coeffs,
                        std::size_t rows, const std::uint8_t* src,
                        std::size_t n);
};

const char* isa_name(GfIsa isa);

/// True when this binary has the kernel compiled AND the host CPU (plus OS
/// state saving) supports it.
bool isa_supported(GfIsa isa);

/// Best supported tier on this host (kScalar when nothing vectorized fits).
GfIsa best_supported_isa();

/// Outcome of resolving an SDR_EC_ISA override against a feature set.
struct IsaChoice {
  GfIsa isa{GfIsa::kScalar};
  bool fell_back{false};  // requested ISA unknown or unsupported
  std::string message;    // human-readable note when fell_back
};

/// Pure resolution logic (testable without env games): `env` is the raw
/// SDR_EC_ISA value (nullptr / "" / "auto" pick the best tier `features`
/// supports). A recognized but unsupported request falls back to kScalar —
/// never silently to a different vector tier — so a forced-ISA CI run
/// that lands on an old host fails fast in the throughput gate instead of
/// quietly testing the wrong kernels. Unknown strings fall back to auto.
IsaChoice resolve_isa(const char* env, const common::CpuFeatures& features);

/// The process-wide dispatched kernel set. First call resolves CPUID +
/// SDR_EC_ISA (logging the decision at INFO, fallbacks at WARN); later
/// calls are a single atomic load.
const GfKernels& gf_kernels();

/// Kernel set for one specific ISA, bypassing dispatch — the differential
/// oracle and the per-ISA bench lanes compare these directly. Returns
/// nullptr when the tier is not compiled into this binary; the caller must
/// also check isa_supported() before executing a non-scalar tier.
const GfKernels* gf_kernels_for(GfIsa isa);

/// Currently dispatched ISA.
GfIsa active_isa();

/// Force the dispatched set (tests/bench only; not thread-safe against
/// concurrent encodes). Returns the previously active ISA. Forcing an
/// unsupported tier is a no-op that returns the current ISA.
GfIsa force_gf_isa(GfIsa isa);

}  // namespace sdr::ec
