// Common interface for the erasure codecs compared in the paper (§5.1.1):
// an MDS code (Reed-Solomon, like Intel ISA-L) and a RAID-style modulo-group
// XOR code. The EC reliability layer (src/reliability) programs against this
// interface so schemes can be swapped per connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sdr::ec {

/// Block presence map for decode: blocks [0, k) are data, [k, k+m) parity.
using PresenceMap = std::vector<bool>;

class ErasureCodec {
 public:
  virtual ~ErasureCodec() = default;

  virtual std::size_t k() const = 0;  // data blocks per submessage
  virtual std::size_t m() const = 0;  // parity blocks per submessage
  virtual std::string name() const = 0;

  /// Compute the m parity blocks from the k data blocks. All blocks have
  /// identical `block_len`.
  virtual void encode(std::span<const std::uint8_t* const> data,
                      std::span<std::uint8_t* const> parity,
                      std::size_t block_len) const = 0;

  /// Can the data blocks be recovered given this presence pattern?
  virtual bool can_recover(const PresenceMap& present) const = 0;

  /// Reconstruct the missing *data* blocks in place. `blocks` holds all
  /// k+m block pointers; entries marked absent in `present` (data only)
  /// are output buffers to be filled. Returns false if unrecoverable.
  virtual bool decode(std::span<std::uint8_t* const> blocks,
                      const PresenceMap& present,
                      std::size_t block_len) const = 0;
};

}  // namespace sdr::ec
