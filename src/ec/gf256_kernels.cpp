#include "ec/gf256_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "ec/gf256.hpp"

// The vector kernels are compiled with per-function target attributes so a
// generic (-march=x86-64) binary still carries every tier and picks at
// runtime; only the dispatcher consults CPUID. Non-x86 or non-GNU builds
// get the scalar tier alone.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SDR_GF_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace sdr::ec {

namespace {

/// Rows fused per register group in mul_acc_multi: 4 rows keep 8 table
/// vectors + source + mask comfortably inside 16 architectural registers.
constexpr std::size_t kFuseGroup = 4;

// ---------------------------------------------------------------------------
// Per-constant split tables: lo[c][j] = c*j, hi[c][j] = c*(j<<4). Derived
// once from the exp/log-backed full multiplication table.
// ---------------------------------------------------------------------------
struct SplitTables {
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];
};

const SplitTables& split_tables() {
  static const SplitTables tables = [] {
    SplitTables t;
    const Gf256& gf = Gf256::instance();
    for (unsigned c = 0; c < 256; ++c) {
      const std::uint8_t* row = gf.mul_row(static_cast<std::uint8_t>(c));
      for (unsigned j = 0; j < 16; ++j) {
        t.lo[c][j] = row[j];
        t.hi[c][j] = row[j << 4];
      }
    }
    return t;
  }();
  return tables;
}

// ---------------------------------------------------------------------------
// Scalar tier — the reference every vector tier must match byte for byte.
// ---------------------------------------------------------------------------

void scalar_mul_acc(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t c, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    Gf256::xor_acc(dst, src, n);
    return;
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void scalar_mul_set(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t c, std::size_t n) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void scalar_mul_acc_multi(std::uint8_t* const* dst,
                          const std::uint8_t* coeffs, std::size_t rows,
                          const std::uint8_t* src, std::size_t n) {
  for (std::size_t r = 0; r < rows; ++r) {
    scalar_mul_acc(dst[r], src, coeffs[r], n);
  }
}

#if defined(SDR_GF_X86_KERNELS)

// ---------------------------------------------------------------------------
// SSSE3 tier: 16 lanes per pshufb pair.
// ---------------------------------------------------------------------------

template <bool kAccumulate>
__attribute__((target("ssse3"))) void ssse3_mul(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::uint8_t c,
                                                std::size_t n) {
  if (c == 0) {
    if constexpr (!kAccumulate) std::memset(dst, 0, n);
    return;
  }
  const SplitTables& t = split_tables();
  const __m128i vlo =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i vhi =
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo = _mm_shuffle_epi8(vlo, _mm_and_si128(x, mask));
    const __m128i hi = _mm_shuffle_epi8(
        vhi, _mm_and_si128(_mm_srli_epi16(x, 4), mask));
    __m128i prod = _mm_xor_si128(lo, hi);
    if constexpr (kAccumulate) {
      prod = _mm_xor_si128(
          prod, _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), prod);
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  for (; i < n; ++i) {
    if constexpr (kAccumulate) {
      dst[i] ^= row[src[i]];
    } else {
      dst[i] = row[src[i]];
    }
  }
}

__attribute__((target("ssse3"))) void ssse3_mul_acc_multi(
    std::uint8_t* const* dst, const std::uint8_t* coeffs, std::size_t rows,
    const std::uint8_t* src, std::size_t n) {
  const SplitTables& t = split_tables();
  const Gf256& gf = Gf256::instance();
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t r = 0;
  while (r < rows) {
    // Gather the next register group of up to kFuseGroup nonzero rows.
    std::uint8_t* d[kFuseGroup];
    const std::uint8_t* tail_row[kFuseGroup];
    __m128i vlo[kFuseGroup], vhi[kFuseGroup];
    std::size_t g = 0;
    for (; r < rows && g < kFuseGroup; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      d[g] = dst[r];
      tail_row[g] = gf.mul_row(c);
      vlo[g] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
      vhi[g] = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
      ++g;
    }
    if (g == 0) break;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      const __m128i xlo = _mm_and_si128(x, mask);
      const __m128i xhi = _mm_and_si128(_mm_srli_epi16(x, 4), mask);
      for (std::size_t j = 0; j < g; ++j) {
        const __m128i prod = _mm_xor_si128(_mm_shuffle_epi8(vlo[j], xlo),
                                           _mm_shuffle_epi8(vhi[j], xhi));
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(d[j] + i),
            _mm_xor_si128(prod, _mm_loadu_si128(
                                    reinterpret_cast<const __m128i*>(d[j] + i))));
      }
    }
    for (; i < n; ++i) {
      for (std::size_t j = 0; j < g; ++j) d[j][i] ^= tail_row[j][src[i]];
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 tier: 32 lanes per vpshufb pair (the 16-byte tables are broadcast to
// both 128-bit halves — vpshufb shuffles within each half).
// ---------------------------------------------------------------------------

template <bool kAccumulate>
__attribute__((target("avx2"))) void avx2_mul(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::uint8_t c, std::size_t n) {
  if (c == 0) {
    if constexpr (!kAccumulate) std::memset(dst, 0, n);
    return;
  }
  const SplitTables& t = split_tables();
  const __m256i vlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
  const __m256i vhi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_shuffle_epi8(vlo, _mm256_and_si256(x, mask));
    const __m256i hi = _mm256_shuffle_epi8(
        vhi, _mm256_and_si256(_mm256_srli_epi16(x, 4), mask));
    __m256i prod = _mm256_xor_si256(lo, hi);
    if constexpr (kAccumulate) {
      prod = _mm256_xor_si256(
          prod,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  for (; i < n; ++i) {
    if constexpr (kAccumulate) {
      dst[i] ^= row[src[i]];
    } else {
      dst[i] = row[src[i]];
    }
  }
}

__attribute__((target("avx2"))) void avx2_mul_acc_multi(
    std::uint8_t* const* dst, const std::uint8_t* coeffs, std::size_t rows,
    const std::uint8_t* src, std::size_t n) {
  const SplitTables& t = split_tables();
  const Gf256& gf = Gf256::instance();
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t r = 0;
  while (r < rows) {
    std::uint8_t* d[kFuseGroup];
    const std::uint8_t* tail_row[kFuseGroup];
    __m256i vlo[kFuseGroup], vhi[kFuseGroup];
    std::size_t g = 0;
    for (; r < rows && g < kFuseGroup; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      d[g] = dst[r];
      tail_row[g] = gf.mul_row(c);
      vlo[g] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c])));
      vhi[g] = _mm256_broadcastsi128_si256(
          _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c])));
      ++g;
    }
    if (g == 0) break;
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i xlo = _mm256_and_si256(x, mask);
      const __m256i xhi = _mm256_and_si256(_mm256_srli_epi16(x, 4), mask);
      for (std::size_t j = 0; j < g; ++j) {
        const __m256i prod =
            _mm256_xor_si256(_mm256_shuffle_epi8(vlo[j], xlo),
                             _mm256_shuffle_epi8(vhi[j], xhi));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(d[j] + i),
            _mm256_xor_si256(
                prod, _mm256_loadu_si256(
                          reinterpret_cast<const __m256i*>(d[j] + i))));
      }
    }
    for (; i < n; ++i) {
      for (std::size_t j = 0; j < g; ++j) d[j][i] ^= tail_row[j][src[i]];
    }
  }
}

// ---------------------------------------------------------------------------
// GFNI tier: GF2P8AFFINEQB applies the multiply-by-c bit matrix (precomputed
// in Gf256) to 64 bytes per instruction — no split tables needed at all.
// ---------------------------------------------------------------------------

template <bool kAccumulate>
__attribute__((target("gfni,avx512f,avx512bw"))) void gfni_mul(
    std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
    std::size_t n) {
  if (c == 0) {
    if constexpr (!kAccumulate) std::memset(dst, 0, n);
    return;
  }
  const __m512i a = _mm512_set1_epi64(
      static_cast<long long>(Gf256::instance().affine_matrix(c)));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    __m512i prod = _mm512_gf2p8affine_epi64_epi8(x, a, 0);
    if constexpr (kAccumulate) {
      prod = _mm512_xor_si512(
          prod, _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i)));
    }
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i), prod);
  }
  const std::uint8_t* row = Gf256::instance().mul_row(c);
  for (; i < n; ++i) {
    if constexpr (kAccumulate) {
      dst[i] ^= row[src[i]];
    } else {
      dst[i] = row[src[i]];
    }
  }
}

__attribute__((target("gfni,avx512f,avx512bw"))) void gfni_mul_acc_multi(
    std::uint8_t* const* dst, const std::uint8_t* coeffs, std::size_t rows,
    const std::uint8_t* src, std::size_t n) {
  const Gf256& gf = Gf256::instance();
  std::size_t r = 0;
  while (r < rows) {
    std::uint8_t* d[kFuseGroup];
    const std::uint8_t* tail_row[kFuseGroup];
    __m512i a[kFuseGroup];
    std::size_t g = 0;
    for (; r < rows && g < kFuseGroup; ++r) {
      const std::uint8_t c = coeffs[r];
      if (c == 0) continue;
      d[g] = dst[r];
      tail_row[g] = gf.mul_row(c);
      a[g] = _mm512_set1_epi64(static_cast<long long>(gf.affine_matrix(c)));
      ++g;
    }
    if (g == 0) break;
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
      const __m512i x =
          _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
      for (std::size_t j = 0; j < g; ++j) {
        const __m512i prod = _mm512_xor_si512(
            _mm512_gf2p8affine_epi64_epi8(x, a[j], 0),
            _mm512_loadu_si512(reinterpret_cast<const void*>(d[j] + i)));
        _mm512_storeu_si512(reinterpret_cast<void*>(d[j] + i), prod);
      }
    }
    for (; i < n; ++i) {
      for (std::size_t j = 0; j < g; ++j) d[j][i] ^= tail_row[j][src[i]];
    }
  }
}

#endif  // SDR_GF_X86_KERNELS

// ---------------------------------------------------------------------------
// Kernel tables + dispatch
// ---------------------------------------------------------------------------

constexpr GfKernels kScalarTable{GfIsa::kScalar, &scalar_mul_acc,
                                 &scalar_mul_set, &scalar_mul_acc_multi};
#if defined(SDR_GF_X86_KERNELS)
constexpr GfKernels kSsse3Table{GfIsa::kSsse3, &ssse3_mul<true>,
                                &ssse3_mul<false>, &ssse3_mul_acc_multi};
constexpr GfKernels kAvx2Table{GfIsa::kAvx2, &avx2_mul<true>,
                               &avx2_mul<false>, &avx2_mul_acc_multi};
constexpr GfKernels kGfniTable{GfIsa::kGfni, &gfni_mul<true>,
                               &gfni_mul<false>, &gfni_mul_acc_multi};
#endif

bool isa_compiled(GfIsa isa) {
#if defined(SDR_GF_X86_KERNELS)
  (void)isa;
  return true;
#else
  return isa == GfIsa::kScalar;
#endif
}

bool feature_supported(GfIsa isa, const common::CpuFeatures& f) {
  switch (isa) {
    case GfIsa::kScalar: return true;
    case GfIsa::kSsse3: return f.ssse3;
    case GfIsa::kAvx2: return f.avx2;
    case GfIsa::kGfni: return f.gfni && f.avx512bw;
  }
  return false;
}

GfIsa best_for(const common::CpuFeatures& f) {
  for (GfIsa isa : {GfIsa::kGfni, GfIsa::kAvx2, GfIsa::kSsse3}) {
    if (isa_compiled(isa) && feature_supported(isa, f)) return isa;
  }
  return GfIsa::kScalar;
}

/// One-time env + CPUID resolution; later reads are a plain atomic load.
/// force_gf_isa swaps the pointer (tests/bench only).
std::atomic<const GfKernels*>& active_slot() {
  static std::atomic<const GfKernels*> slot{[] {
    const char* env = std::getenv("SDR_EC_ISA");
    const IsaChoice choice = resolve_isa(env, common::cpu_features());
    if (choice.fell_back) {
      SDR_WARN("gf256 dispatch: %s", choice.message.c_str());
    } else if (env != nullptr && *env != '\0') {
      SDR_INFO("gf256 dispatch: SDR_EC_ISA override -> %s",
               isa_name(choice.isa));
    } else {
      SDR_DEBUG("gf256 dispatch: auto-selected %s (%s)",
                isa_name(choice.isa),
                common::cpu_feature_summary().c_str());
    }
    return gf_kernels_for(choice.isa);
  }()};
  return slot;
}

}  // namespace

const char* isa_name(GfIsa isa) {
  switch (isa) {
    case GfIsa::kScalar: return "scalar";
    case GfIsa::kSsse3: return "ssse3";
    case GfIsa::kAvx2: return "avx2";
    case GfIsa::kGfni: return "gfni";
  }
  return "unknown";
}

bool isa_supported(GfIsa isa) {
  return isa_compiled(isa) && feature_supported(isa, common::cpu_features());
}

GfIsa best_supported_isa() { return best_for(common::cpu_features()); }

IsaChoice resolve_isa(const char* env, const common::CpuFeatures& features) {
  IsaChoice out;
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    out.isa = best_for(features);
    return out;
  }
  GfIsa requested = GfIsa::kScalar;
  bool known = false;
  for (GfIsa isa :
       {GfIsa::kScalar, GfIsa::kSsse3, GfIsa::kAvx2, GfIsa::kGfni}) {
    if (std::strcmp(env, isa_name(isa)) == 0) {
      requested = isa;
      known = true;
      break;
    }
  }
  if (!known) {
    out.isa = best_for(features);
    out.fell_back = true;
    out.message = std::string("SDR_EC_ISA='") + env +
                  "' not recognized (scalar|ssse3|avx2|gfni|auto); "
                  "auto-selected " +
                  isa_name(out.isa);
    return out;
  }
  if (isa_compiled(requested) && feature_supported(requested, features)) {
    out.isa = requested;
    return out;
  }
  // Requested-but-unsupported falls back to scalar, never to a different
  // vector tier: a forced-ISA run must not silently test the wrong kernels.
  out.isa = GfIsa::kScalar;
  out.fell_back = true;
  out.message = std::string("SDR_EC_ISA=") + env +
                " requested but unsupported on this host/binary (" +
                common::cpu_feature_summary() + "); falling back to scalar";
  return out;
}

const GfKernels& gf_kernels() {
  return *active_slot().load(std::memory_order_acquire);
}

const GfKernels* gf_kernels_for(GfIsa isa) {
  switch (isa) {
    case GfIsa::kScalar: return &kScalarTable;
#if defined(SDR_GF_X86_KERNELS)
    case GfIsa::kSsse3: return &kSsse3Table;
    case GfIsa::kAvx2: return &kAvx2Table;
    case GfIsa::kGfni: return &kGfniTable;
#else
    default: break;
#endif
  }
  return nullptr;
}

GfIsa active_isa() { return gf_kernels().isa; }

GfIsa force_gf_isa(GfIsa isa) {
  if (!isa_supported(isa)) return active_isa();
  const GfKernels* prev =
      active_slot().exchange(gf_kernels_for(isa), std::memory_order_acq_rel);
  return prev->isa;
}

}  // namespace sdr::ec
