#include "ec/matrix.hpp"

#include <cassert>

namespace sdr::ec {

GfMatrix GfMatrix::identity(std::size_t n) {
  GfMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

GfMatrix GfMatrix::cauchy(std::size_t rows, std::size_t cols,
                          std::uint8_t x_base, std::uint8_t y_base) {
  // x_i = x_base + i, y_j = y_base + j; the caller must keep the two ranges
  // disjoint so x_i + y_j (XOR in GF(2^8)) is never zero.
  const Gf256& gf = Gf256::instance();
  GfMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const auto xi = static_cast<std::uint8_t>(x_base + i);
      const auto yj = static_cast<std::uint8_t>(y_base + j);
      assert((xi ^ yj) != 0 && "Cauchy ranges must be disjoint");
      m.at(i, j) = gf.inv(xi ^ yj);
    }
  }
  return m;
}

GfMatrix GfMatrix::vandermonde(std::size_t rows, std::size_t cols) {
  const Gf256& gf = Gf256::instance();
  GfMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m.at(i, j) = gf.pow(static_cast<std::uint8_t>(j + 1),
                          static_cast<unsigned>(i));
    }
  }
  return m;
}

GfMatrix GfMatrix::multiply(const GfMatrix& other) const {
  assert(cols_ == other.rows_);
  const Gf256& gf = Gf256::instance();
  GfMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(i, k);
      if (a == 0) continue;
      const std::uint8_t* arow = gf.mul_row(a);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) ^= arow[other.at(k, j)];
      }
    }
  }
  return out;
}

bool GfMatrix::invert(GfMatrix& out) const {
  assert(rows_ == cols_);
  const Gf256& gf = Gf256::instance();
  const std::size_t n = rows_;
  GfMatrix work = *this;
  out = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(out.at(pivot, j), out.at(col, j));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t inv = gf.inv(work.at(col, col));
    for (std::size_t j = 0; j < n; ++j) {
      work.at(col, j) = gf.mul(work.at(col, j), inv);
      out.at(col, j) = gf.mul(out.at(col, j), inv);
    }
    // Eliminate the column elsewhere.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = work.at(r, col);
      if (f == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) ^= gf.mul(f, work.at(col, j));
        out.at(r, j) ^= gf.mul(f, out.at(col, j));
      }
    }
  }
  return true;
}

GfMatrix GfMatrix::select_rows(const std::vector<std::size_t>& indices) const {
  GfMatrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(indices[i], j);
    }
  }
  return out;
}

}  // namespace sdr::ec
