// Closed-form decode-success probabilities for the two erasure codes
// (paper Appendix B) plus numerically careful binomial helpers used by the
// completion-time models.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdr::ec {

/// log(n choose k) via lgamma — stable for the large chunk counts the
/// models sweep (messages up to millions of chunks).
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// Binomial(n, p) PMF: P(X == x).
double binomial_pmf(std::uint64_t n, std::uint64_t x, double p);

/// Binomial(n, p) CDF: P(X <= x). Exact summation in the log domain; the
/// models call it with x = m <= 256 so the sum is short.
double binomial_cdf(std::uint64_t n, std::uint64_t x, double p);

/// Appendix B.0.1: probability that an MDS(k, m) submessage decodes —
/// at most m drops among its k+m chunks.
double p_ec_mds(std::size_t k, std::size_t m, double p_drop);

/// Appendix B.0.2: probability that a modulo-group XOR(k, m) submessage
/// decodes — every group of n = k/m + 1 chunks loses at most one chunk:
///   [ (1-p)^n + n p (1-p)^(n-1) ]^m
double p_ec_xor(std::size_t k, std::size_t m, double p_drop);

/// Chunk-level drop probability when one bitmap chunk spans `packets`
/// MTU packets (paper Fig 15): P = 1 - (1 - p_pkt)^packets.
double chunk_drop_probability(double p_packet_drop, std::size_t packets);

}  // namespace sdr::ec
