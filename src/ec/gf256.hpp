// GF(2^8) arithmetic for Reed-Solomon erasure coding.
//
// Field: GF(256) with the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1
// (0x11d, the AES-unrelated but RS-conventional choice used by most storage
// codes). Multiplication uses exp/log tables; the bulk
// multiply-and-accumulate kernel that dominates encode/decode cost uses a
// per-constant 256-byte row of the full multiplication table so the inner
// loop is a single dependent load per byte, which the compiler unrolls well.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace sdr::ec {

class Gf256 {
 public:
  /// Singleton tables (immutable after construction).
  static const Gf256& instance();

  std::uint8_t add(std::uint8_t a, std::uint8_t b) const { return a ^ b; }
  std::uint8_t sub(std::uint8_t a, std::uint8_t b) const { return a ^ b; }

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  std::uint8_t div(std::uint8_t a, std::uint8_t b) const;
  std::uint8_t inv(std::uint8_t a) const;
  std::uint8_t pow(std::uint8_t a, unsigned e) const;

  /// Pointer to the 256-entry row {c*0, c*1, ..., c*255}.
  const std::uint8_t* mul_row(std::uint8_t c) const {
    return mul_table_.data() + static_cast<std::size_t>(c) * 256;
  }

  /// dst[i] ^= c * src[i] for i in [0, n) — the encode/decode hot loop.
  void mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
               std::size_t n) const;

  /// dst[i] = c * src[i].
  void mul_set(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
               std::size_t n) const;

  /// dst[i] ^= src[i] (c == 1 fast path, shared with the XOR code).
  static void xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n);

 private:
  Gf256();

  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint16_t, 256> log_{};
  // Full 256x256 multiplication table (64 KiB — fits in L2 and makes the
  // per-byte kernel a single indexed load).
  std::array<std::uint8_t, 256 * 256> mul_table_{};
  // Per-constant 8x8 GF(2) bit matrices of multiply-by-c, packed for the
  // GF2P8AFFINEQB instruction (GFNI hosts): one qword per constant.
  std::array<std::uint64_t, 256> affine_{};

 public:
  std::uint64_t affine_matrix(std::uint8_t c) const { return affine_[c]; }
};

}  // namespace sdr::ec
