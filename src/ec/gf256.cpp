#include "ec/gf256.hpp"

#include <cassert>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace sdr::ec {

namespace {
constexpr std::uint16_t kPrimitivePoly = 0x11d;
}

const Gf256& Gf256::instance() {
  static const Gf256 gf;
  return gf;
}

Gf256::Gf256() {
  // Generate exp/log tables from the generator alpha = 2.
  std::uint16_t x = 1;
  for (std::size_t i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  // Duplicate so mul() can skip the mod-255 reduction.
  for (std::size_t i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // log(0) is undefined; mul() never reads it

  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t p =
          (a == 0 || b == 0)
              ? 0
              : exp_[log_[a] + log_[b]];
      mul_table_[a * 256 + b] = p;
    }
  }

  // GF2P8AFFINEQB matrices: multiplication by a constant is GF(2)-linear;
  // result bit i = parity(row_i & x) with row_i[j] = bit i of c*(1<<j).
  // The instruction reads row_i from byte (7 - i) of the qword.
  for (unsigned c = 0; c < 256; ++c) {
    std::uint64_t qword = 0;
    for (unsigned i = 0; i < 8; ++i) {
      std::uint8_t row = 0;
      for (unsigned j = 0; j < 8; ++j) {
        const std::uint8_t basis = mul_table_[c * 256 + (1u << j)];
        row |= static_cast<std::uint8_t>(((basis >> i) & 1u) << j);
      }
      qword |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    affine_[c] = qword;
  }
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  assert(a != 0 && "inverse of zero in GF(256)");
  return exp_[255 - log_[a]];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned idx = (static_cast<unsigned>(log_[a]) * e) % 255;
  return exp_[idx];
}

namespace {

#if defined(__GFNI__) && defined(__AVX512F__) && defined(__AVX512BW__)
#define SDR_GF_GFNI 1
/// GFNI path: one GF2P8AFFINEQB applies the multiply-by-c bit matrix to 64
/// bytes at once — the technique behind ISA-L-class MDS throughput.
template <bool kAccumulate>
void gfni_mul(std::uint8_t* dst, const std::uint8_t* src, std::uint64_t matrix,
              const std::uint8_t* row, std::size_t n) {
  const __m512i a = _mm512_set1_epi64(static_cast<long long>(matrix));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i x =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    __m512i prod = _mm512_gf2p8affine_epi64_epi8(x, a, 0);
    if constexpr (kAccumulate) {
      prod = _mm512_xor_si512(
          prod, _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i)));
    }
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i), prod);
  }
  for (; i < n; ++i) {
    if constexpr (kAccumulate) {
      dst[i] ^= row[src[i]];
    } else {
      dst[i] = row[src[i]];
    }
  }
}
#endif  // GFNI

#if defined(__AVX2__)
/// SIMD GF(256) constant multiply via the classic nibble-shuffle technique
/// (the same approach Intel ISA-L uses): c*x = Tlo[x & 0xF] ^ Thi[x >> 4],
/// with the two 16-entry tables applied by PSHUFB across 32 lanes.
/// `kind` selects accumulate (dst ^= c*src) or set (dst = c*src).
template <bool kAccumulate>
void simd_mul(std::uint8_t* dst, const std::uint8_t* src,
              const std::uint8_t* row, std::size_t n) {
  alignas(16) std::uint8_t lo_tab[16];
  alignas(16) std::uint8_t hi_tab[16];
  for (int i = 0; i < 16; ++i) {
    lo_tab[i] = row[i];
    hi_tab[i] = row[i << 4];
  }
  const __m256i vlo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(lo_tab)));
  const __m256i vhi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(hi_tab)));
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i lo = _mm256_shuffle_epi8(vlo, _mm256_and_si256(x, mask));
    const __m256i hi = _mm256_shuffle_epi8(
        vhi, _mm256_and_si256(_mm256_srli_epi16(x, 4), mask));
    __m256i prod = _mm256_xor_si256(lo, hi);
    if constexpr (kAccumulate) {
      prod = _mm256_xor_si256(
          prod, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
  }
  for (; i < n; ++i) {
    if constexpr (kAccumulate) {
      dst[i] ^= row[src[i]];
    } else {
      dst[i] = row[src[i]];
    }
  }
}
#endif  // __AVX2__

}  // namespace

void Gf256::mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t n) const {
  if (c == 0) return;
  if (c == 1) {
    xor_acc(dst, src, n);
    return;
  }
  const std::uint8_t* row = mul_row(c);
#if defined(SDR_GF_GFNI)
  gfni_mul<true>(dst, src, affine_[c], row, n);
#elif defined(__AVX2__)
  simd_mul<true>(dst, src, row, n);
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
#endif
}

void Gf256::mul_set(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t n) const {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  const std::uint8_t* row = mul_row(c);
#if defined(SDR_GF_GFNI)
  gfni_mul<false>(dst, src, affine_[c], row, n);
#elif defined(__AVX2__)
  simd_mul<false>(dst, src, row, n);
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
#endif
}

void Gf256::xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  // Word-wide XOR; the compiler vectorizes this to AVX-512 under
  // -march=native, matching the paper's "~100 lines of C++ with OpenMP and
  // AVX-512" XOR implementation.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace sdr::ec
