#include "ec/gf256.hpp"

#include <cassert>
#include <cstring>

#include "ec/gf256_kernels.hpp"

namespace sdr::ec {

namespace {
constexpr std::uint16_t kPrimitivePoly = 0x11d;
}

const Gf256& Gf256::instance() {
  static const Gf256 gf;
  return gf;
}

Gf256::Gf256() {
  // Generate exp/log tables from the generator alpha = 2.
  std::uint16_t x = 1;
  for (std::size_t i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kPrimitivePoly;
  }
  // Duplicate so mul() can skip the mod-255 reduction.
  for (std::size_t i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // log(0) is undefined; mul() never reads it

  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint8_t p =
          (a == 0 || b == 0)
              ? 0
              : exp_[log_[a] + log_[b]];
      mul_table_[a * 256 + b] = p;
    }
  }

  // GF2P8AFFINEQB matrices: multiplication by a constant is GF(2)-linear;
  // result bit i = parity(row_i & x) with row_i[j] = bit i of c*(1<<j).
  // The instruction reads row_i from byte (7 - i) of the qword.
  for (unsigned c = 0; c < 256; ++c) {
    std::uint64_t qword = 0;
    for (unsigned i = 0; i < 8; ++i) {
      std::uint8_t row = 0;
      for (unsigned j = 0; j < 8; ++j) {
        const std::uint8_t basis = mul_table_[c * 256 + (1u << j)];
        row |= static_cast<std::uint8_t>(((basis >> i) & 1u) << j);
      }
      qword |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
    }
    affine_[c] = qword;
  }
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) const {
  assert(b != 0 && "division by zero in GF(256)");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

std::uint8_t Gf256::inv(std::uint8_t a) const {
  assert(a != 0 && "inverse of zero in GF(256)");
  return exp_[255 - log_[a]];
}

std::uint8_t Gf256::pow(std::uint8_t a, unsigned e) const {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const unsigned idx = (static_cast<unsigned>(log_[a]) * e) % 255;
  return exp_[idx];
}

// The bulk kernels live in gf256_kernels.cpp behind the runtime ISA
// dispatcher (split-table pshufb/vpshufb, gf2p8affineqb, scalar fallback);
// these wrappers keep the historical API while routing through it.

void Gf256::mul_acc(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t n) const {
  if (c == 0) return;
  if (c == 1) {
    xor_acc(dst, src, n);
    return;
  }
  gf_kernels().mul_acc(dst, src, c, n);
}

void Gf256::mul_set(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t c,
                    std::size_t n) const {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  gf_kernels().mul_set(dst, src, c, n);
}

void Gf256::xor_acc(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  // Word-wide XOR; the compiler vectorizes this to AVX-512 under
  // -march=native, matching the paper's "~100 lines of C++ with OpenMP and
  // AVX-512" XOR implementation.
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, 8);
    std::memcpy(&b, src + i, 8);
    a ^= b;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace sdr::ec
