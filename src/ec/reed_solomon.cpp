#include "ec/reed_solomon.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#ifdef SDR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sdr::ec {

namespace {
/// Block-len threshold above which encode parallelizes across byte ranges.
constexpr std::size_t kParallelThreshold = 256 * 1024;
}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m) : k_(k), m_(m) {
  if (k == 0 || m == 0 || k + m > 256) {
    throw std::invalid_argument(
        "ReedSolomon requires 1 <= k, 1 <= m, k + m <= 256");
  }
  // x range [k, k+m), y range [0, k): disjoint, so xi ^ yj != 0... in
  // integer terms they are distinct values < 256, and XOR of distinct
  // values is nonzero.
  parity_rows_ = GfMatrix::cauchy(m, k, static_cast<std::uint8_t>(k), 0);
}

std::string ReedSolomon::name() const {
  return "RS(" + std::to_string(k_) + "," + std::to_string(m_) + ")";
}

void ReedSolomon::encode(std::span<const std::uint8_t* const> data,
                         std::span<std::uint8_t* const> parity,
                         std::size_t block_len) const {
  assert(data.size() == k_ && parity.size() == m_);
  const Gf256& gf = Gf256::instance();

  // Cache-blocked, data-major loop: each 4 KiB sub-range keeps the data
  // slice in L1 across all m parity rows instead of re-streaming every
  // data block once per parity (the layout ISA-L-class encoders use).
  constexpr std::size_t kCacheBlock = 4096;
  auto encode_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t blk = begin; blk < end; blk += kCacheBlock) {
      const std::size_t n = std::min(kCacheBlock, end - blk);
      for (std::size_t p = 0; p < m_; ++p) {
        gf.mul_set(parity[p] + blk, data[0] + blk, parity_rows_.at(p, 0), n);
      }
      for (std::size_t d = 1; d < k_; ++d) {
        const std::uint8_t* src = data[d] + blk;
        for (std::size_t p = 0; p < m_; ++p) {
          gf.mul_acc(parity[p] + blk, src, parity_rows_.at(p, d), n);
        }
      }
    }
  };

#ifdef SDR_HAVE_OPENMP
  if (block_len >= kParallelThreshold) {
    const int threads = omp_get_max_threads();
    const std::size_t chunk = (block_len + threads - 1) / threads;
#pragma omp parallel for schedule(static)
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      if (begin < block_len) {
        encode_range(begin, std::min(block_len, begin + chunk));
      }
    }
    return;
  }
#endif
  encode_range(0, block_len);
}

bool ReedSolomon::can_recover(const PresenceMap& present) const {
  assert(present.size() == k_ + m_);
  std::size_t available = 0;
  for (bool p : present) available += p ? 1 : 0;
  return available >= k_;  // MDS: any k of k+m suffice
}

bool ReedSolomon::decode(std::span<std::uint8_t* const> blocks,
                         const PresenceMap& present,
                         std::size_t block_len) const {
  assert(blocks.size() == k_ + m_ && present.size() == k_ + m_);
  if (!can_recover(present)) return false;

  // Which data blocks are missing?
  std::vector<std::size_t> missing_data;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!present[i]) missing_data.push_back(i);
  }
  if (missing_data.empty()) return true;  // nothing to do

  // Pick k present blocks (prefer data blocks: identity rows make the
  // decode matrix sparser and the row selection cheaper to invert).
  std::vector<std::size_t> chosen;
  chosen.reserve(k_);
  for (std::size_t i = 0; i < k_ + m_ && chosen.size() < k_; ++i) {
    if (present[i]) chosen.push_back(i);
  }

  // Build the k x k matrix mapping data -> chosen blocks and invert it.
  GfMatrix selection(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t src = chosen[r];
    if (src < k_) {
      selection.at(r, src) = 1;  // identity row for a data block
    } else {
      for (std::size_t c = 0; c < k_; ++c) {
        selection.at(r, c) = parity_rows_.at(src - k_, c);
      }
    }
  }
  GfMatrix inverse;
  if (!selection.invert(inverse)) return false;  // cannot happen for Cauchy

  // Reconstruct each missing data block d as:
  //   data[d] = sum_r inverse[d][r] * blocks[chosen[r]]
  const Gf256& gf = Gf256::instance();
  for (std::size_t d : missing_data) {
    std::uint8_t* out = blocks[d];
    bool first = true;
    for (std::size_t r = 0; r < k_; ++r) {
      const std::uint8_t coeff = inverse.at(d, r);
      if (coeff == 0) continue;
      const std::uint8_t* src = blocks[chosen[r]];
      if (first) {
        gf.mul_set(out, src, coeff, block_len);
        first = false;
      } else {
        gf.mul_acc(out, src, coeff, block_len);
      }
    }
    if (first) std::memset(out, 0, block_len);
  }
  return true;
}

}  // namespace sdr::ec
