#include "ec/reed_solomon.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "ec/gf256_kernels.hpp"

#ifdef SDR_HAVE_OPENMP
#include <omp.h>
#endif

namespace sdr::ec {

namespace {
/// Block-len threshold above which encode parallelizes across byte ranges.
constexpr std::size_t kParallelThreshold = 256 * 1024;
/// Sub-range the fused pass works through: the data slice plus the active
/// parity rows stay cache-resident while every coefficient is applied.
constexpr std::size_t kCacheBlock = 4096;
/// k + m <= 256, so fixed stack arrays cover every legal geometry.
constexpr std::size_t kMaxBlocks = 256;
}  // namespace

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m) : k_(k), m_(m) {
  if (k == 0 || m == 0 || k + m > 256) {
    throw std::invalid_argument(
        "ReedSolomon requires 1 <= k, 1 <= m, k + m <= 256");
  }
  // x range [k, k+m), y range [0, k): disjoint, so xi ^ yj != 0... in
  // integer terms they are distinct values < 256, and XOR of distinct
  // values is nonzero.
  parity_rows_ = GfMatrix::cauchy(m, k, static_cast<std::uint8_t>(k), 0);
  parity_by_data_.resize(k_ * m_);
  for (std::size_t d = 0; d < k_; ++d) {
    for (std::size_t p = 0; p < m_; ++p) {
      parity_by_data_[d * m_ + p] = parity_rows_.at(p, d);
    }
  }
}

std::string ReedSolomon::name() const {
  return "RS(" + std::to_string(k_) + "," + std::to_string(m_) + ")";
}

void ReedSolomon::encode(std::span<const std::uint8_t* const> data,
                         std::span<std::uint8_t* const> parity,
                         std::size_t block_len) const {
  encode_with(gf_kernels(), data, parity, block_len);
}

void ReedSolomon::encode_with(const GfKernels& kernels,
                              std::span<const std::uint8_t* const> data,
                              std::span<std::uint8_t* const> parity,
                              std::size_t block_len) const {
  assert(data.size() == k_ && parity.size() == m_);

  // Fused cache-blocked pass: within each 4 KiB sub-range, initialize all m
  // parity rows from data[0], then stream every further data block exactly
  // once through the multi-row kernel, which loads each source vector once
  // per register group while accumulating into the (cache-resident) parity
  // rows. XOR accumulation is order-independent, so the output is
  // byte-identical to the row-at-a-time formulation under any kernel.
  auto encode_range = [&](std::size_t begin, std::size_t end) {
    std::uint8_t* dst[kMaxBlocks];
    for (std::size_t blk = begin; blk < end; blk += kCacheBlock) {
      const std::size_t n = std::min(kCacheBlock, end - blk);
      for (std::size_t p = 0; p < m_; ++p) {
        dst[p] = parity[p] + blk;
        kernels.mul_set(dst[p], data[0] + blk, parity_by_data_[p], n);
      }
      for (std::size_t d = 1; d < k_; ++d) {
        kernels.mul_acc_multi(dst, parity_by_data_.data() + d * m_, m_,
                              data[d] + blk, n);
      }
    }
  };

#ifdef SDR_HAVE_OPENMP
  if (block_len >= kParallelThreshold) {
    const int threads = omp_get_max_threads();
    const std::size_t chunk = (block_len + threads - 1) / threads;
#pragma omp parallel for schedule(static)
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      if (begin < block_len) {
        encode_range(begin, std::min(block_len, begin + chunk));
      }
    }
    return;
  }
#endif
  encode_range(0, block_len);
}

bool ReedSolomon::can_recover(const PresenceMap& present) const {
  assert(present.size() == k_ + m_);
  std::size_t available = 0;
  for (bool p : present) available += p ? 1 : 0;
  return available >= k_;  // MDS: any k of k+m suffice
}

bool ReedSolomon::decode(std::span<std::uint8_t* const> blocks,
                         const PresenceMap& present,
                         std::size_t block_len) const {
  return decode_with(gf_kernels(), blocks, present, block_len);
}

bool ReedSolomon::decode_with(const GfKernels& kernels,
                              std::span<std::uint8_t* const> blocks,
                              const PresenceMap& present,
                              std::size_t block_len) const {
  assert(blocks.size() == k_ + m_ && present.size() == k_ + m_);
  if (!can_recover(present)) return false;

  // Which data blocks are missing?
  std::vector<std::size_t> missing_data;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!present[i]) missing_data.push_back(i);
  }
  if (missing_data.empty()) return true;  // nothing to do

  // Pick k present blocks (prefer data blocks: identity rows make the
  // decode matrix sparser and the row selection cheaper to invert).
  std::vector<std::size_t> chosen;
  chosen.reserve(k_);
  for (std::size_t i = 0; i < k_ + m_ && chosen.size() < k_; ++i) {
    if (present[i]) chosen.push_back(i);
  }

  // Build the k x k matrix mapping data -> chosen blocks and invert it.
  GfMatrix selection(k_, k_);
  for (std::size_t r = 0; r < k_; ++r) {
    const std::size_t src = chosen[r];
    if (src < k_) {
      selection.at(r, src) = 1;  // identity row for a data block
    } else {
      for (std::size_t c = 0; c < k_; ++c) {
        selection.at(r, c) = parity_rows_.at(src - k_, c);
      }
    }
  }
  GfMatrix inverse;
  if (!selection.invert(inverse)) return false;  // cannot happen for Cauchy

  // Reconstruct every missing data block in one fused cache-blocked solve:
  //   data[d] = sum_r inverse[d][r] * blocks[chosen[r]]
  // Source-major, like encode: each chosen block is streamed once per
  // sub-range while accumulating into all missing rows. A zero coefficient
  // in mul_set zero-fills and the multi kernel skips zero rows, so the
  // result matches the old skip-zeroes formulation byte for byte.
  const std::size_t miss = missing_data.size();
  std::vector<std::uint8_t> coeff_by_source(k_ * miss);
  for (std::size_t r = 0; r < k_; ++r) {
    for (std::size_t j = 0; j < miss; ++j) {
      coeff_by_source[r * miss + j] = inverse.at(missing_data[j], r);
    }
  }

  std::uint8_t* out[kMaxBlocks];
  for (std::size_t blk = 0; blk < block_len; blk += kCacheBlock) {
    const std::size_t n = std::min(kCacheBlock, block_len - blk);
    for (std::size_t j = 0; j < miss; ++j) {
      out[j] = blocks[missing_data[j]] + blk;
      kernels.mul_set(out[j], blocks[chosen[0]] + blk, coeff_by_source[j], n);
    }
    for (std::size_t r = 1; r < k_; ++r) {
      kernels.mul_acc_multi(out, coeff_by_source.data() + r * miss, miss,
                            blocks[chosen[r]] + blk, n);
    }
  }
  return true;
}

}  // namespace sdr::ec
