// Systematic Reed-Solomon erasure code over GF(256).
//
// Encoding matrix: the k x k identity stacked on an m x k Cauchy matrix —
// every square submatrix of a Cauchy matrix is invertible, so any k of the
// k+m blocks reconstruct the data (the MDS property, paper Appendix B.0.1).
// This mirrors the role Intel ISA-L plays in the paper's Fig 11.
#pragma once

#include <memory>
#include <vector>

#include "ec/codec.hpp"
#include "ec/matrix.hpp"

namespace sdr::ec {

struct GfKernels;

class ReedSolomon final : public ErasureCodec {
 public:
  /// Requires k + m <= 256 (field size limit) and k, m >= 1.
  ReedSolomon(std::size_t k, std::size_t m);

  std::size_t k() const override { return k_; }
  std::size_t m() const override { return m_; }
  std::string name() const override;

  void encode(std::span<const std::uint8_t* const> data,
              std::span<std::uint8_t* const> parity,
              std::size_t block_len) const override;

  bool can_recover(const PresenceMap& present) const override;

  bool decode(std::span<std::uint8_t* const> blocks,
              const PresenceMap& present,
              std::size_t block_len) const override;

  /// encode()/decode() with an explicit kernel set instead of the
  /// process-wide dispatched one — the differential oracle and the per-ISA
  /// bench lanes run the same pass under forced kernels and compare bytes.
  /// The fused cache-blocked pass reads each source block once per 4 KiB
  /// range while accumulating into all m parity rows (encode) or all
  /// missing data rows (decode), so the kernel always sees long contiguous
  /// runs. Allocation-free on the encode path.
  void encode_with(const GfKernels& kernels,
                   std::span<const std::uint8_t* const> data,
                   std::span<std::uint8_t* const> parity,
                   std::size_t block_len) const;
  bool decode_with(const GfKernels& kernels,
                   std::span<std::uint8_t* const> blocks,
                   const PresenceMap& present, std::size_t block_len) const;

  /// Rows [k, k+m) of the full encoding matrix (the Cauchy part), exposed
  /// for tests that verify the MDS property directly.
  const GfMatrix& parity_matrix() const { return parity_rows_; }

 private:
  std::size_t k_;
  std::size_t m_;
  GfMatrix parity_rows_;  // m x k
  // Transposed coefficients, [d * m + p] = parity_rows_(p, d): the fused
  // encode pass hands the kernel one contiguous coefficient column per
  // data block.
  std::vector<std::uint8_t> parity_by_data_;
};

}  // namespace sdr::ec
