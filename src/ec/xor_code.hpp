// Modulo-group XOR erasure code (paper §5.1.1, Appendix B.0.2).
//
// Parity block i (of m) is the XOR of all data blocks j with j mod m == i —
// a RAID-4-style construction. Each "group" {data blocks of residue i} +
// {parity i} tolerates one lost *data* block. Cheaper than MDS (pure XOR,
// vectorizes trivially) but weaker: the paper's Fig 11 shows XOR hiding its
// encode cost with half the cores of MDS while falling back to SR an order
// of magnitude earlier in drop rate.
#pragma once

#include "ec/codec.hpp"

namespace sdr::ec {

class XorCode final : public ErasureCodec {
 public:
  /// Requires m >= 1 and k >= m (at least one data block per group).
  XorCode(std::size_t k, std::size_t m);

  std::size_t k() const override { return k_; }
  std::size_t m() const override { return m_; }
  std::string name() const override;

  void encode(std::span<const std::uint8_t* const> data,
              std::span<std::uint8_t* const> parity,
              std::size_t block_len) const override;

  bool can_recover(const PresenceMap& present) const override;

  bool decode(std::span<std::uint8_t* const> blocks,
              const PresenceMap& present,
              std::size_t block_len) const override;

 private:
  std::size_t k_;
  std::size_t m_;
};

}  // namespace sdr::ec
