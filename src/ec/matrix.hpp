// Dense matrices over GF(256): construction (Cauchy/Vandermonde) and
// Gauss-Jordan inversion, used to build and invert Reed-Solomon decode
// matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ec/gf256.hpp"

namespace sdr::ec {

class GfMatrix {
 public:
  GfMatrix() = default;
  GfMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  const std::uint8_t* row(std::size_t r) const { return data_.data() + r * cols_; }
  std::uint8_t* row(std::size_t r) { return data_.data() + r * cols_; }

  static GfMatrix identity(std::size_t n);

  /// Cauchy matrix: a_ij = 1 / (x_i + y_j) with all x_i, y_j distinct.
  /// Every square submatrix of a Cauchy matrix is invertible, which gives
  /// the MDS property for the systematic RS code built from it.
  static GfMatrix cauchy(std::size_t rows, std::size_t cols,
                         std::uint8_t x_base, std::uint8_t y_base);

  /// Vandermonde matrix a_ij = j^i (kept for tests comparing constructions;
  /// note a raw Vandermonde stack under identity is NOT guaranteed MDS —
  /// the tests demonstrate why we use Cauchy in production).
  static GfMatrix vandermonde(std::size_t rows, std::size_t cols);

  GfMatrix multiply(const GfMatrix& other) const;

  /// Gauss-Jordan inverse. Returns false if the matrix is singular.
  bool invert(GfMatrix& out) const;

  /// Select a subset of rows into a new matrix.
  GfMatrix select_rows(const std::vector<std::size_t>& indices) const;

  bool operator==(const GfMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<std::uint8_t> data_;
};

}  // namespace sdr::ec
